let () =
  Alcotest.run "lego"
    [
      Test_exec.suite;
      Test_layout.suite;
      Test_algebra.suite;
      Test_symbolic.suite;
      Test_simplify_fuzz.suite;
      Test_affine.suite;
      Test_lang.suite;
      Test_codegen.suite;
      Test_conform.suite;
      Test_f2.suite;
      Test_gpusim.suite;
      Test_fastpath.suite;
      Test_apps.suite;
      Test_tune.suite;
      Test_serve.suite;
    ]
