(* lib/serve: the persistent compile service.  JSON codec round-trips,
   frame framing, store durability (QCheck2 round-trip plus truncation /
   corruption recovery), the (slot, device) cache-identity regression,
   the warm-path contract (zero tuner invocations, >= 10x latency), and
   batch byte-identity across pool widths. *)

module Sv = Lego_serve
module T = Lego_tune
module G = Lego_gpusim

let tmp_name () = Filename.temp_file "lego-test-serve" ".db"

let with_tmp f =
  let path = tmp_name () in
  Sys.remove path;
  (* Store creates it *)
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ---- JSON -------------------------------------------------------------- *)

let json_gen =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let scalar =
             oneof
               [
                 return Sv.Json.Null;
                 map (fun b -> Sv.Json.Bool b) bool;
                 map (fun i -> Sv.Json.Int i) int;
                 map
                   (fun f ->
                     Sv.Json.Float (if Float.is_finite f then f else 0.5))
                   float;
                 map (fun s -> Sv.Json.Str s) (string_size (0 -- 12));
               ]
           in
           if n <= 0 then scalar
           else
             oneof
               [
                 scalar;
                 map (fun xs -> Sv.Json.List xs) (list_size (0 -- 4) (self (n / 2)));
                 map
                   (fun kvs -> Sv.Json.Obj kvs)
                   (list_size (0 -- 4)
                      (pair (string_size (0 -- 6)) (self (n / 2))));
               ]))

let prop_json_round_trip =
  QCheck2.Test.make ~name:"JSON print |> parse is the identity" ~count:500
    ~print:(fun j -> Sv.Json.to_string j) json_gen (fun j ->
      match Sv.Json.of_string (Sv.Json.to_string j) with
      | Ok j' -> Sv.Json.equal j j'
      | Error _ -> false)

let test_json_fixed_points () =
  (* Deterministic printing fixtures: the exact bytes are the contract. *)
  List.iter
    (fun (j, s) ->
      Alcotest.(check string) s s (Sv.Json.to_string j);
      match Sv.Json.of_string s with
      | Ok j' -> Alcotest.(check bool) ("reparse " ^ s) true (Sv.Json.equal j j')
      | Error e -> Alcotest.failf "reparse %s: %s" s e)
    [
      (Sv.Json.Null, "null");
      (Sv.Json.Int 42, "42");
      (Sv.Json.Float 2.0, "2.0");
      (Sv.Json.Float 0.1, "0.1");
      (Sv.Json.Str "a\"b\\c\nd\x01e\xfff", {|"a\"b\\c\nd\u0001e\u00fff"|});
      ( Sv.Json.Obj [ ("b", Sv.Json.Int 1); ("a", Sv.Json.List [] ) ],
        {|{"b":1,"a":[]}|} );
    ];
  (match Sv.Json.of_string "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Sv.Json.to_string (Sv.Json.Float Float.nan) with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "nan printed as %s" s

(* ---- framing ----------------------------------------------------------- *)

let test_frame_round_trip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let payloads =
        [
          Sv.Json.Null;
          Sv.Json.List [ Sv.Json.Int 1; Sv.Json.Str (String.make 5000 'x') ];
          Sv.Json.Obj [ ("op", Sv.Json.Str "stats") ];
        ]
      in
      List.iter (Sv.Protocol.write_frame a) payloads;
      List.iter
        (fun expected ->
          match Sv.Protocol.read_frame b with
          | Ok (Some j) ->
            Alcotest.(check bool) "frame round-trips" true
              (Sv.Json.equal expected j)
          | Ok None -> Alcotest.fail "unexpected EOF"
          | Error e -> Alcotest.fail e)
        payloads;
      (* Clean EOF at a frame boundary... *)
      Unix.close a;
      (match Sv.Protocol.read_frame b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "frame from closed peer"
      | Error e -> Alcotest.failf "clean EOF reported as error: %s" e);
      (* ...but a mid-frame EOF is an error, not a silent truncation. *)
      let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let partial = Bytes.of_string "\x00\x00\x00\x10{\"tru" in
      ignore (Unix.write c partial 0 (Bytes.length partial));
      Unix.close c;
      (match Sv.Protocol.read_frame d with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated frame accepted");
      Unix.close d)

let test_request_round_trip () =
  let reqs =
    [
      Sv.Protocol.Compile
        { layout = "Col(4, 4)"; emit = [ "c"; "mlir" ]; device = "h100" };
      Sv.Protocol.Tune
        {
          Sv.Protocol.slot = "matmul";
          device = "a100";
          budget = Some 64;
          top = None;
          seed = 7;
          oracle = true;
          conform = true;
        };
      Sv.Protocol.Fingerprint { layout = "Col(2, 3)"; device = "rtx4090" };
      Sv.Protocol.Stats;
      Sv.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun r ->
      match Sv.Protocol.request_of_json (Sv.Protocol.json_of_request r) with
      | Ok r' ->
        Alcotest.(check bool) "request round-trips" true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  match Sv.Protocol.request_of_json (Sv.Json.Obj [ ("op", Sv.Json.Str "frob") ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op accepted"

(* ---- store ------------------------------------------------------------- *)

let prop_store_round_trip =
  let kv_gen =
    QCheck2.Gen.(
      list_size (1 -- 12)
        (pair (list_size (1 -- 3) (string_size (0 -- 8))) (json_gen)))
  in
  QCheck2.Test.make ~name:"store put |> close |> open is the identity"
    ~count:30 kv_gen (fun kvs ->
      with_tmp (fun path ->
          let kvs =
            List.map (fun (parts, v) -> (Sv.Store.key parts, v)) kvs
          in
          let s, verdict = Sv.Store.open_ ~path () in
          (match verdict with
          | Sv.Store.Fresh -> ()
          | _ -> QCheck2.Test.fail_report "fresh store not Fresh");
          List.iter (fun (key, v) -> Sv.Store.put s ~key v) kvs;
          Sv.Store.close s;
          let s', verdict' = Sv.Store.open_ ~path () in
          let distinct =
            List.length
              (List.sort_uniq compare (List.map fst kvs))
          in
          (match verdict' with
          | Sv.Store.Loaded n when n = distinct -> ()
          | _ -> QCheck2.Test.fail_report "reload not Loaded(distinct)");
          (* Last put wins per key. *)
          let ok =
            List.for_all
              (fun (key, _) ->
                let last =
                  List.fold_left
                    (fun acc (k, v) -> if k = key then Some v else acc)
                    None kvs
                in
                match (Sv.Store.get s' key, last) with
                | Some a, Some b -> Sv.Json.equal a b
                | _ -> false)
              kvs
          in
          Sv.Store.close s';
          ok))

let populate path n =
  let s, _ = Sv.Store.open_ ~path () in
  for i = 1 to n do
    Sv.Store.put s
      ~key:(Sv.Store.key [ "entry"; string_of_int i ])
      (Sv.Json.Obj
         [ ("i", Sv.Json.Int i); ("payload", Sv.Json.Str (String.make 40 'p')) ])
  done;
  Sv.Store.close s

let test_store_truncation_recovery () =
  with_tmp (fun path ->
      populate path 6;
      let size = (Unix.stat path).Unix.st_size in
      (* Chop the file at every byte length from full down to the bare
         header: the load must never crash, must salvage a prefix, and
         the file must stay appendable afterwards. *)
      let header_len = String.length Sv.Store.header_line in
      let original = In_channel.with_open_bin path In_channel.input_all in
      List.iter
        (fun cut ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub original 0 cut));
          let s, verdict = Sv.Store.open_ ~path () in
          let n = Sv.Store.length s in
          (match verdict with
          | Sv.Store.Loaded l -> Alcotest.(check int) "loaded count" n l
          | Sv.Store.Recovered (l, _why) -> Alcotest.(check int) "salvaged count" n l
          | Sv.Store.Fresh -> Alcotest.fail "existing file loaded as Fresh");
          Alcotest.(check bool)
            (Printf.sprintf "cut %d: salvaged %d <= 6" cut n)
            true (n <= 6);
          (* Salvaged entries are intact. *)
          for i = 1 to n do
            match Sv.Store.get s (Sv.Store.key [ "entry"; string_of_int i ]) with
            | Some v ->
              Alcotest.(check (option int))
                "salvaged value intact" (Some i) (Sv.Json.mem_int "i" v)
            | None -> ()
          done;
          (* Appends after recovery land at a clean boundary. *)
          Sv.Store.put s ~key:(Sv.Store.key [ "post" ]) (Sv.Json.Int 99);
          Sv.Store.close s;
          let s', verdict' = Sv.Store.open_ ~path () in
          (match verdict' with
          | Sv.Store.Loaded _ -> ()
          | _ -> Alcotest.failf "cut %d: post-recovery file not clean" cut);
          Alcotest.(check (option int))
            "post-recovery append survives" (Some 99)
            (Option.bind
               (Sv.Store.get s' (Sv.Store.key [ "post" ]))
               Sv.Json.get_int);
          Sv.Store.close s')
        [ size - 1; size - 17; size - 60; header_len + 3; header_len ])

let test_store_corruption_recovery () =
  with_tmp (fun path ->
      populate path 6;
      (* Flip one payload byte in the middle: the checksum must catch
         it, keep the prefix, truncate the rest — degrade, not crash. *)
      let bytes =
        Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
      in
      let mid = Bytes.length bytes / 2 in
      Bytes.set bytes mid
        (Char.chr (Char.code (Bytes.get bytes mid) lxor 0x5a));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc bytes);
      let s, verdict = Sv.Store.open_ ~path () in
      (match verdict with
      | Sv.Store.Recovered (n, why) ->
        Alcotest.(check bool) "salvaged a strict prefix" true (n < 6);
        Alcotest.(check bool) "warning is non-empty" true (why <> "")
      | Sv.Store.Loaded _ | Sv.Store.Fresh ->
        Alcotest.fail "corruption not reported");
      Sv.Store.close s)

let test_store_foreign_header_cold_start () =
  with_tmp (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not a lego store at all\n");
      let s, verdict = Sv.Store.open_ ~path () in
      (match verdict with
      | Sv.Store.Recovered (0, _) -> ()
      | _ -> Alcotest.fail "foreign file must cold-start as Recovered(0)");
      Sv.Store.put s ~key:(Sv.Store.key [ "k" ]) (Sv.Json.Bool true);
      Sv.Store.close s;
      let s', verdict' = Sv.Store.open_ ~path () in
      (match verdict' with
      | Sv.Store.Loaded 1 -> ()
      | _ -> Alcotest.fail "rewritten store must load clean");
      Sv.Store.close s')

(* ---- cache identity: the (slot, device, dtype) regression ---------------- *)

let test_cache_identity_no_cross_device_contamination () =
  let options =
    {
      T.Tune.default_options with
      T.Tune.budget = 40;
      top = 3;
      conform = false;
    }
  in
  let a100 = T.Slot.matmul_smem ~device:G.Device.a100 () in
  let h100 = T.Slot.matmul_smem ~device:G.Device.h100 () in
  Alcotest.(check string) "a100 identity" "matmul@a100/fp16"
    (T.Slot.identity a100);
  Alcotest.(check string) "h100 identity" "matmul@h100/fp16"
    (T.Slot.identity h100);
  (* One cache shared across devices (the CLI's pattern): tuning a100
     first must not leak its simulations into the h100 search. *)
  let shared = T.Cache.create () in
  let _warm_a100 = T.Tune.search ~options ~cache:shared a100 in
  let h_shared = T.Tune.search ~options ~cache:shared h100 in
  let h_fresh = T.Tune.search ~options ~cache:(T.Cache.create ()) h100 in
  let key (r : T.Tune.result) =
    List.map
      (fun (sc : T.Tune.scored) ->
        let s = Option.get sc.T.Tune.sim in
        (sc.T.Tune.fingerprint, s.T.Slot.time_s, s.T.Slot.s_cycles))
      r.T.Tune.ranking
  in
  Alcotest.(check bool)
    "h100 results identical with and without a100-warmed cache" true
    (key h_shared = key h_fresh);
  (* And the devices genuinely disagree on absolute time (different
     clocks), so a collision would have been visible above. *)
  let t (r : T.Tune.result) =
    (Option.get r.T.Tune.winner.T.Tune.sim).T.Slot.time_s
  in
  Alcotest.(check bool) "a100 and h100 winner times differ" true
    (t _warm_a100 <> t h_fresh)

(* ---- server ------------------------------------------------------------ *)

let tune_req ?(budget = 40) ?(top = 3) () =
  Sv.Protocol.json_of_request
    (Sv.Protocol.Tune
       {
         Sv.Protocol.slot = "matmul";
         device = "a100";
         budget = Some budget;
         top = Some top;
         seed = 0;
         oracle = false;
         conform = false;
       })

let stats_of t =
  match Sv.Server.stats_json t with
  | Sv.Json.Obj _ as j -> j
  | _ -> Alcotest.fail "stats not an object"

let stat name t =
  Option.value ~default:(-1) (Sv.Json.mem_int name (stats_of t))

let test_server_warm_path_zero_searches () =
  with_tmp (fun db ->
      let t = Sv.Server.create ~db ~jobs:1 () in
      let batch = Sv.Json.List [ tune_req () ] in
      let timed () =
        let t0 = Unix.gettimeofday () in
        let r = Sv.Server.handle_batch t batch in
        (Unix.gettimeofday () -. t0, r)
      in
      let cold_t, cold = timed () in
      let warm_t, warm = timed () in
      let first = function
        | Sv.Json.List [ r ] -> r
        | _ -> Alcotest.fail "batch shape"
      in
      Alcotest.(check (option bool)) "cold is a miss" (Some false)
        (Sv.Json.mem_bool "cached" (first cold));
      Alcotest.(check (option bool)) "warm is a hit" (Some true)
        (Sv.Json.mem_bool "cached" (first warm));
      (* Identical payload either way (the "cached" flag apart). *)
      let strip r =
        match r with
        | Sv.Json.Obj fs ->
          Sv.Json.Obj (List.filter (fun (k, _) -> k <> "cached") fs)
        | r -> r
      in
      Alcotest.(check bool) "warm answer = cold answer" true
        (Sv.Json.equal (strip (first cold)) (strip (first warm)));
      Alcotest.(check int) "exactly one tuner invocation" 1 (stat "searches" t);
      Alcotest.(check bool)
        (Printf.sprintf "warm >= 10x faster (cold %.1f ms, warm %.3f ms)"
           (cold_t *. 1e3) (warm_t *. 1e3))
        true
        (warm_t *. 10.0 < cold_t);
      Sv.Server.shutdown t;
      (* Restart on the same db: the tune answer survives (store hit,
         still zero searches) and the per-layout sim records warm-start
         the cache for near-miss searches. *)
      let t2 = Sv.Server.create ~db ~jobs:1 () in
      (match Sv.Server.load t2 with
      | Sv.Store.Loaded n -> Alcotest.(check bool) "entries persisted" true (n > 0)
      | _ -> Alcotest.fail "restart did not load the db");
      Alcotest.(check bool) "cache warm-started from sim records" true
        (stat "cache_entries" t2 > 0);
      let r2 = Sv.Server.handle_batch t2 batch in
      Alcotest.(check (option bool)) "post-restart tune is a store hit"
        (Some true)
        (Sv.Json.mem_bool "cached" (first r2));
      Alcotest.(check int) "zero tuner invocations after restart" 0
        (stat "searches" t2);
      Sv.Server.shutdown t2)

let mixed_batch =
  lazy
    (Sv.Json.List
       [
         Sv.Protocol.json_of_request
           (Sv.Protocol.Compile
              {
                layout = "TileOrderBy(Col(8, 6)).TileBy([4,2],[2,3])";
                emit = [];
                device = "a100";
              });
         Sv.Protocol.json_of_request
           (Sv.Protocol.Compile
              {
                layout = "OrderBy(GenP(antidiag[4,4])).GroupBy([4,4])";
                emit = [ "c" ];
                device = "h100";
              });
         (* duplicate of the first: must read as a hit in-batch *)
         Sv.Protocol.json_of_request
           (Sv.Protocol.Compile
              {
                layout = "TileOrderBy(Col(8, 6)).TileBy([4,2],[2,3])";
                emit = [];
                device = "a100";
              });
         Sv.Protocol.json_of_request
           (Sv.Protocol.Fingerprint
              {
                layout = "OrderBy(GenP(antidiag[4,4])).GroupBy([4,4])";
                device = "a100";
              });
         (* malformed: parse error must stay an error, deterministically *)
         Sv.Protocol.json_of_request
           (Sv.Protocol.Compile
              { layout = "Tile((("; emit = []; device = "a100" });
         tune_req ~budget:24 ~top:2 ();
         Sv.Protocol.json_of_request Sv.Protocol.Stats;
       ])

let test_server_byte_identical_across_jobs () =
  let run jobs =
    let t = Sv.Server.create ~jobs () in
    (* memory-only store: no paths anywhere near the responses *)
    let r1 = Sv.Json.to_string (Sv.Server.handle_batch t (Lazy.force mixed_batch)) in
    let r2 = Sv.Json.to_string (Sv.Server.handle_batch t (Lazy.force mixed_batch)) in
    Sv.Server.shutdown t;
    (r1, r2)
  in
  let c1, w1 = run 1 in
  let c3, w3 = run 3 in
  Alcotest.(check string) "cold batch bytes identical at -j1/-j3" c1 c3;
  Alcotest.(check string) "warm batch bytes identical at -j1/-j3" w1 w3;
  Alcotest.(check bool) "warm differs from cold (cached flags)" true (c1 <> w1)

let test_server_batch_semantics () =
  let t = Sv.Server.create ~jobs:2 () in
  (match Sv.Server.handle_batch t (Sv.Json.Str "nope") with
  | Sv.Json.Obj _ as r ->
    Alcotest.(check (option bool)) "non-array rejected" (Some false)
      (Sv.Json.mem_bool "ok" r)
  | _ -> Alcotest.fail "non-array: expected an error object");
  (match Sv.Server.handle_batch t (Lazy.force mixed_batch) with
  | Sv.Json.List rs ->
    Alcotest.(check int) "submission-order length" 7 (List.length rs);
    let nth = List.nth rs in
    Alcotest.(check (option bool)) "dup compile is an in-batch hit"
      (Some true)
      (Sv.Json.mem_bool "cached" (nth 2));
    Alcotest.(check (option bool)) "malformed layout errors" (Some false)
      (Sv.Json.mem_bool "ok" (nth 4));
    (* distinct devices address distinct store entries *)
    Alcotest.(check bool) "a100 and h100 compile keys differ" true
      (Sv.Json.mem_string "key" (nth 0) <> Sv.Json.mem_string "key" (nth 1));
    (* emit filtering: request 1 asked for "c" only *)
    Alcotest.(check bool) "emit filter keeps c" true
      (Sv.Json.mem_string "c" (nth 1) <> None);
    Alcotest.(check bool) "emit filter drops mlir" true
      (Sv.Json.mem_string "mlir" (nth 1) = None);
    Alcotest.(check bool) "full emit keeps mlir" true
      (Sv.Json.mem_string "mlir" (nth 0) <> None);
    Alcotest.(check (option bool)) "fingerprint op succeeds" (Some true)
      (Sv.Json.mem_bool "ok" (nth 3));
    Alcotest.(check (option int)) "stats sees the fingerprint" (Some 1)
      (Sv.Json.mem_int "fingerprints" (nth 6));
    (* only the malformed layout: a rejected non-array batch is a
       protocol error on the connection, not a request error *)
    Alcotest.(check (option int)) "stats sees 1 error" (Some 1)
      (Sv.Json.mem_int "errors" (nth 6))
  | _ -> Alcotest.fail "batch response not an array");
  Sv.Server.shutdown t

let test_fingerprint_key_matches_server () =
  (* The debug subcommand's key must be the daemon's address. *)
  let layout = "TileOrderBy(Col(8, 6)).TileBy([4,2],[2,3])" in
  let g =
    match Lego_lang.Elab.layout_of_string layout with
    | Ok g -> g
    | Error e -> Alcotest.fail e
  in
  let fp = T.Fingerprint.of_layout g in
  let expected = Sv.Server.compile_key ~fp ~device:"a100" in
  let t = Sv.Server.create ~jobs:1 () in
  (match
     Sv.Server.handle_batch t
       (Sv.Json.List
          [
            Sv.Protocol.json_of_request
              (Sv.Protocol.Fingerprint { layout; device = "a100" });
          ])
   with
  | Sv.Json.List [ r ] ->
    Alcotest.(check (option string)) "fingerprint op reports the store key"
      (Some expected)
      (Sv.Json.mem_string "key" r)
  | _ -> Alcotest.fail "fingerprint round-trip");
  Sv.Server.shutdown t

let suite =
  ( "serve",
    [
      QCheck_alcotest.to_alcotest ~long:false prop_json_round_trip;
      Alcotest.test_case "JSON deterministic printing fixtures" `Quick
        test_json_fixed_points;
      Alcotest.test_case "frame round-trip, EOF and truncation" `Quick
        test_frame_round_trip;
      Alcotest.test_case "protocol request round-trip" `Quick
        test_request_round_trip;
      QCheck_alcotest.to_alcotest ~long:false prop_store_round_trip;
      Alcotest.test_case "store: truncated db degrades, never crashes" `Quick
        test_store_truncation_recovery;
      Alcotest.test_case "store: corrupted record salvages the prefix" `Quick
        test_store_corruption_recovery;
      Alcotest.test_case "store: foreign header cold-starts" `Quick
        test_store_foreign_header_cold_start;
      Alcotest.test_case "cache identity: no a100/h100 cross-contamination"
        `Quick test_cache_identity_no_cross_device_contamination;
      Alcotest.test_case "server: warm path = store hit, zero searches, 10x"
        `Quick test_server_warm_path_zero_searches;
      Alcotest.test_case "server: byte-identical batches at any -j" `Quick
        test_server_byte_identical_across_jobs;
      Alcotest.test_case "server: batch semantics (dup, emit, errors)" `Quick
        test_server_batch_semantics;
      Alcotest.test_case "fingerprint op key = server store key" `Quick
        test_fingerprint_key_matches_server;
    ] )
