(* Tests for the core layout algebra: canonical bijections, pieces,
   OrderBy/GroupBy semantics (including the paper's worked examples),
   sugar, and the gallery of general bijections. *)

open Lego_layout

let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* --- Shape ------------------------------------------------------------ *)

let test_flatten_unflatten () =
  check_int "B [2;3;4] [1;2;3]" ((1 * 12) + (2 * 4) + 3)
    (Shape.flatten_ints [ 2; 3; 4 ] [ 1; 2; 3 ]);
  check_ints "B^-1 roundtrip" [ 1; 2; 3 ] (Shape.unflatten_ints [ 2; 3; 4 ] 23);
  for flat = 0 to 23 do
    check_int "flatten . unflatten = id" flat
      (Shape.flatten_ints [ 2; 3; 4 ] (Shape.unflatten_ints [ 2; 3; 4 ] flat))
  done

let test_shape_validate () =
  Alcotest.check_raises "empty shape" (Invalid_argument "Shape.validate: empty shape")
    (fun () -> Shape.validate []);
  Alcotest.check_raises "non-positive extent"
    (Invalid_argument "Shape.validate: non-positive extent 0") (fun () ->
      Shape.validate [ 2; 0 ])

let test_indices_order () =
  let idx = List.of_seq (Shape.indices [ 2; 2 ]) in
  Alcotest.(check (list (list int)))
    "row-major enumeration"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    idx

(* --- Sigma ------------------------------------------------------------ *)

let test_sigma_basics () =
  let s = Sigma.of_one_based [ 2; 3; 1 ] in
  Alcotest.(check (list string))
    "permute" [ "b"; "c"; "a" ]
    (Sigma.permute s [ "a"; "b"; "c" ]);
  Alcotest.(check (list string))
    "inverse undoes" [ "a"; "b"; "c" ]
    (Sigma.permute (Sigma.inverse s) (Sigma.permute s [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "identity" true (Sigma.is_identity (Sigma.identity 4));
  check_ints "reversal" [ 3; 2; 1; 0 ] (Sigma.to_list (Sigma.reversal 4))

let test_sigma_invalid () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Sigma.of_list: duplicate entry 0") (fun () ->
      ignore (Sigma.of_list [ 0; 0 ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Sigma.of_list: entry 3 out of range 0..1") (fun () ->
      ignore (Sigma.of_list [ 3; 0 ]))

let test_sigma_compose () =
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          let xs = [ 10; 20; 30 ] in
          check_ints "compose law"
            (Sigma.permute s2 (Sigma.permute s1 xs))
            (Sigma.permute (Sigma.compose s2 s1) xs))
        (Sigma.all 3))
    (Sigma.all 3)

(* --- Pieces ----------------------------------------------------------- *)

let test_regp_semantics () =
  (* RegP([2;3], [2;1]) is a transpose: physical shape 3x2. *)
  let p = Piece.reg ~dims:[ 2; 3 ] ~sigma:(Sigma.of_one_based [ 2; 1 ]) in
  check_int "apply (1,2)" ((2 * 2) + 1) (Piece.apply_ints p [ 1; 2 ]);
  check_ints "inv" [ 1; 2 ] (Piece.inv_ints p 5);
  Alcotest.(check (result unit string)) "bijective" (Ok ()) (Check.piece p)

let test_all_regp_bijective () =
  List.iter
    (fun sigma ->
      let p = Piece.reg ~dims:[ 2; 3; 4 ] ~sigma in
      Alcotest.(check (result unit string))
        (Format.asprintf "RegP sigma %a" Sigma.pp sigma)
        (Ok ()) (Check.piece p))
    (Sigma.all 3)

(* --- Paper examples --------------------------------------------------- *)

let fig9_layout () =
  let o1 =
    Order_by.make
      [
        Piece.reg ~dims:[ 2; 2 ] ~sigma:(Sigma.of_one_based [ 2; 1 ]);
        Gallery.antidiag 3;
      ]
  in
  let o2 =
    Order_by.make
      [ Piece.reg ~dims:[ 2; 3; 2; 3 ] ~sigma:(Sigma.of_one_based [ 1; 3; 2; 4 ]) ]
  in
  Group_by.make ~chain:[ o1; o2 ] [ [ 6; 6 ] ]

let test_fig9_golden () =
  let g = fig9_layout () in
  (* The paper: logical [4,2] -> 26 -> O2 -> 23 -> O1 -> 15. *)
  check_int "apply [4,2]" 15 (Group_by.apply_ints g [ 4; 2 ]);
  check_ints "inv 15" [ 4; 2 ] (Group_by.inv_ints g 15);
  let o2_only =
    Group_by.make
      ~chain:
        [
          Order_by.make
            [
              Piece.reg ~dims:[ 2; 3; 2; 3 ]
                ~sigma:(Sigma.of_one_based [ 1; 3; 2; 4 ]);
            ];
        ]
      [ [ 6; 6 ] ]
  in
  check_int "O2 alone maps [4,2] to 23" 23 (Group_by.apply_ints o2_only [ 4; 2 ]);
  Alcotest.(check (result unit string)) "fig 9 bijective" (Ok ()) (Check.layout g)

let test_eq7_layout () =
  (* Equation 7: GroupBy([2,2,2,2,2]).OrderBy(RegP([2,2,2,2,2],[5,2,4,3,1]))
     reproduces the non-contiguous tiling of figure 10 on a 4x8 space. *)
  let g =
    Group_by.make
      ~chain:
        [
          Order_by.make
            [
              Piece.reg ~dims:[ 2; 2; 2; 2; 2 ]
                ~sigma:(Sigma.of_one_based [ 5; 2; 4; 3; 1 ]);
            ];
        ]
      [ [ 2; 2; 2; 2; 2 ] ]
  in
  Alcotest.(check (result unit string)) "eq 7 bijective" (Ok ()) (Check.layout g);
  (* Figure 10: physical offsets of the 4x8 matrix read 0 4 8 12 ... down
     the columns: logical row-major element (0,1) holds value 4. *)
  (* Figure 10's matrix stores value j*4 + i at (i, j) — a column-major
     4x8 space assembled from non-contiguous 2x(2,2) tiles.  Under the
     permutation [5,2,4,3,1] the logical bit assignment that realizes it
     is (i0, j1, i1, j0, j2). *)
  let logical i j = [ i mod 2; (j / 2) mod 2; i / 2; j mod 2; j / 4 ] in
  for i = 0 to 3 do
    for j = 0 to 7 do
      check_int
        (Printf.sprintf "(%d,%d)" i j)
        ((j * 4) + i)
        (Group_by.apply_ints g (logical i j))
    done
  done

let test_grouped_pid_ordering () =
  (* Section 5.2: the computation layout reproduces Triton's grouped
     program-id ordering. *)
  let gm = 3 and npm = 9 and npn = 4 in
  let cl =
    Sugar.tiled_view
      ~order:[ Sugar.col [ npm / gm; 1 ]; Sugar.col [ gm; npn ] ]
      ~group:[ [ npm; npn ] ] ()
  in
  for pid = 0 to (npm * npn) - 1 do
    let group_size = gm * npn in
    let group_id = pid / group_size in
    let expect_m = (group_id * gm) + (pid mod group_size mod gm) in
    let expect_n = pid mod group_size / gm in
    check_ints
      (Printf.sprintf "pid %d" pid)
      [ expect_m; expect_n ]
      (Group_by.inv_ints cl pid)
  done

(* --- Sugar ------------------------------------------------------------ *)

let test_row_col () =
  let row = Sugar.row [ 3; 5 ] and col = Sugar.col [ 3; 5 ] in
  check_int "row (1,2)" ((1 * 5) + 2) (Piece.apply_ints row [ 1; 2 ]);
  check_int "col (1,2)" ((2 * 3) + 1) (Piece.apply_ints col [ 1; 2 ])

let test_interleave () =
  check_ints "sigma 2x3" [ 1; 3; 5; 2; 4; 6 ]
    (Sigma.to_one_based (Sugar.interleave ~d:2 ~q:3));
  check_ints "sigma 3x2" [ 1; 4; 2; 5; 3; 6 ]
    (Sigma.to_one_based (Sugar.interleave ~d:3 ~q:2))

let test_tile_by_strip_mines () =
  (* TileBy([M/BM, K/BK], [BM, BK]) flattens the tiled index to the
     row-major offset of the untiled matrix. *)
  let m = 8 and k = 6 and bm = 2 and bk = 3 in
  let g = Sugar.tiled_view ~group:[ [ m / bm; k / bk ]; [ bm; bk ] ] () in
  for i = 0 to m - 1 do
    for j = 0 to k - 1 do
      check_int
        (Printf.sprintf "(%d,%d)" i j)
        ((i * k) + j)
        (Group_by.apply_ints g [ i / bm; j / bk; i mod bm; j mod bk ])
    done
  done

let test_tiled_view_col_major () =
  let m = 4 and k = 6 and bm = 2 and bk = 3 in
  let g =
    Sugar.tiled_view
      ~order:[ Sugar.col [ m; k ] ]
      ~group:[ [ m / bm; k / bk ]; [ bm; bk ] ]
      ()
  in
  for i = 0 to m - 1 do
    for j = 0 to k - 1 do
      check_int
        (Printf.sprintf "(%d,%d)" i j)
        ((j * m) + i)
        (Group_by.apply_ints g [ i / bm; j / bk; i mod bm; j mod bk ])
    done
  done

let test_full_dims () =
  check_ints "full dims" [ 8; 6 ] (Sugar.full_dims [ [ 4; 2 ]; [ 2; 3 ] ])

(* --- Gallery ---------------------------------------------------------- *)

let test_antidiag_golden () =
  (* Figure 8 / figure 9's 3x3 anti-diagonal order. *)
  let p = Gallery.antidiag 3 in
  let expect = [ (0, 0, 0); (0, 1, 1); (1, 0, 2); (0, 2, 3); (1, 1, 4);
                 (2, 0, 5); (1, 2, 6); (2, 1, 7); (2, 2, 8) ] in
  List.iter
    (fun (i, j, flat) ->
      check_int (Printf.sprintf "antidiag (%d,%d)" i j) flat
        (Piece.apply_ints p [ i; j ]);
      check_ints (Printf.sprintf "antidiag inv %d" flat) [ i; j ]
        (Piece.inv_ints p flat))
    expect

let test_gallery_bijective () =
  List.iter
    (fun (name, piece) ->
      Alcotest.(check (result unit string)) name (Ok ()) (Check.piece piece))
    [
      ("antidiag 1", Gallery.antidiag 1);
      ("antidiag 2", Gallery.antidiag 2);
      ("antidiag 7", Gallery.antidiag 7);
      ("antidiag 16", Gallery.antidiag 16);
      ("antidiag 17", Gallery.antidiag 17);
      ("reverse [3;4;5]", Gallery.reverse [ 3; 4; 5 ]);
      ("morton 2d", Gallery.morton ~d:2 ~bits:3);
      ("morton 3d", Gallery.morton ~d:3 ~bits:2);
      ("hilbert 8", Gallery.hilbert ~bits:3);
      ("hilbert 16", Gallery.hilbert ~bits:4);
      ("swizzle 8x8", Gallery.xor_swizzle ~rows:8 ~cols:8);
      ("swizzle 5x16", Gallery.xor_swizzle ~rows:5 ~cols:16);
      ("cyclic diag 6", Gallery.cyclic_diag 6);
    ]

let test_morton_golden () =
  let p = Gallery.morton ~d:2 ~bits:2 in
  (* Z-order on 4x4: (1,1) -> 3, (2,0) -> 8, (3,3) -> 15. *)
  check_int "morton (1,1)" 3 (Piece.apply_ints p [ 1; 1 ]);
  check_int "morton (2,0)" 8 (Piece.apply_ints p [ 2; 0 ]);
  check_int "morton (3,3)" 15 (Piece.apply_ints p [ 3; 3 ])

let test_hilbert_adjacency () =
  let p = Gallery.hilbert ~bits:3 in
  let prev = ref (Piece.inv_ints p 0) in
  for d = 1 to 63 do
    let cur = Piece.inv_ints p d in
    (match (!prev, cur) with
    | [ x0; y0 ], [ x1; y1 ] ->
      check_int
        (Printf.sprintf "curve step %d is a unit move" d)
        1
        (abs (x1 - x0) + abs (y1 - y0))
    | _ -> Alcotest.fail "hilbert rank");
    prev := cur
  done

let test_of_table () =
  let p =
    Gallery.of_table ~name:"rot" ~dims:[ 2; 3 ] (fun idx ->
        match idx with
        | [ i; j ] -> ((j * 2) + i + 1) mod 6
        | _ -> assert false)
  in
  Alcotest.(check (result unit string)) "table bijective" (Ok ()) (Check.piece p);
  Alcotest.check_raises "non-bijective table rejected"
    (Invalid_argument "Gallery.of_table(bad): not injective at 0") (fun () ->
      ignore (Gallery.of_table ~name:"bad" ~dims:[ 2; 2 ] (fun _ -> 0)))

let test_gallery_lookup () =
  Alcotest.(check bool) "antidiag found" true
    (Gallery.lookup "antidiag" [ 4; 4 ] ~args:[] <> None);
  Alcotest.(check bool) "antidiag needs square" true
    (Gallery.lookup "antidiag" [ 4; 5 ] ~args:[] = None);
  Alcotest.(check bool) "morton needs powers of two" true
    (Gallery.lookup "morton" [ 6; 6 ] ~args:[] = None);
  Alcotest.(check bool) "unknown name" true
    (Gallery.lookup "nope" [ 4; 4 ] ~args:[] = None)

(* --- Validation errors ------------------------------------------------ *)

let test_size_mismatch_rejected () =
  Alcotest.check_raises "OrderBy size mismatch"
    (Invalid_argument
       "Group_by.make: OrderBy covers 4 elements but the grouping has 6")
    (fun () ->
      ignore
        (Group_by.make
           ~chain:[ Order_by.make [ Sugar.row [ 2; 2 ] ] ]
           [ [ 2; 3 ] ]))

(* --- Property tests --------------------------------------------------- *)

let small_factor = QCheck2.Gen.oneofl [ 2; 2; 3; 4 ]

(* A random grouping shape plus a random chain of OrderBys partitioning
   the same dimension list into permuted pieces. *)
let gen_layout =
  let open QCheck2.Gen in
  let* rank = int_range 1 4 in
  let* dims = list_repeat rank small_factor in
  let piece_of_chunk chunk =
    let* choice = int_range 0 2 in
    match (choice, chunk) with
    | 0, [ n; m ] when n = m -> return (Gallery.antidiag n)
    | 1, _ -> return (Gallery.reverse chunk)
    | _ ->
      let+ sigma = oneofl (Sigma.all (List.length chunk)) in
      Piece.reg ~dims:chunk ~sigma
  in
  let rec chunks = function
    | [] -> return []
    | dims ->
      let* take = int_range 1 (min 2 (List.length dims)) in
      let chunk = List.filteri (fun k _ -> k < take) dims in
      let rest = List.filteri (fun k _ -> k >= take) dims in
      let* piece = piece_of_chunk chunk in
      let+ others = chunks rest in
      piece :: others
  in
  let order_by = chunks dims >|= Order_by.make in
  let* n_orders = int_range 0 2 in
  let+ chain = list_repeat n_orders order_by in
  Group_by.make ~chain [ dims ]

let prop_layout_bijective =
  QCheck2.Test.make ~name:"random layouts are bijections" ~count:200 gen_layout
    (fun g -> Check.layout g = Ok ())

let prop_inv_apply_id =
  QCheck2.Test.make ~name:"inv . apply = id on random index" ~count:200
    QCheck2.Gen.(pair gen_layout (int_bound 10_000))
    (fun (g, seed) ->
      let dims = Group_by.dims g in
      let idx =
        List.mapi (fun k n -> (seed / max 1 (k + 1)) mod n) dims
      in
      Group_by.inv_ints g (Group_by.apply_ints g idx) = idx)

let prop_tile_by_is_strip_mining =
  QCheck2.Test.make ~name:"TileBy == division/modulus strip-mining" ~count:100
    QCheck2.Gen.(
      quad (int_range 1 4) (int_range 1 4) (int_range 1 4) (int_range 1 4))
    (fun (tm, tk, bm, bk) ->
      let m = tm * bm and k = tk * bk in
      let g = Sugar.tiled_view ~group:[ [ tm; tk ]; [ bm; bk ] ] () in
      List.for_all
        (fun (i, j) ->
          Group_by.apply_ints g [ i / bm; j / bk; i mod bm; j mod bk ]
          = (i * k) + j)
        (List.concat_map
           (fun i -> List.init k (fun j -> (i, j)))
           (List.init m Fun.id)))

(* --- Parallel bijectivity checking ------------------------------------- *)

(* A 80x80 GenP (6400 elements, past the parallel threshold) whose flat
   map is parameterized by a tweak expressed in pure domain arithmetic,
   so each broken variant exercises one error kind of the checker.  The
   tweaks live in a record so they stay polymorphic across domains. *)
type tweak = { tw : 'a. (module Domain.S with type t = 'a) -> 'a -> 'a }

let big_piece ~name ~tweak_apply ~tweak_inv =
  let w = 80 in
  let flat (type a) (module D : Domain.S with type t = a) idx : a =
    match idx with
    | [ i; j ] -> D.add (D.mul i (D.const w)) j
    | _ -> invalid_arg "big_piece: rank"
  in
  Piece.gen ~name ~dims:[ w; w ]
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          tweak_apply.tw (module D : Domain.S with type t = a)
            (flat (module D) idx));
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) p ->
          let p = tweak_inv.tw (module D : Domain.S with type t = a) p in
          [ D.div p (D.const w); D.rem p (D.const w) ]);
    }

let id_tweak = { tw = (fun (type a) (module _ : Domain.S with type t = a) x -> x) }

let test_parallel_check_matches_sequential () =
  let cases =
    [
      (* Clean: a rotation by 13 is a bijection. *)
      big_piece ~name:"rot13"
        ~tweak_apply:
          { tw = (fun (type a) (module D : Domain.S with type t = a) x ->
                D.rem (D.add x (D.const 13)) (D.const 6400)) }
        ~tweak_inv:
          { tw = (fun (type a) (module D : Domain.S with type t = a) p ->
                D.rem (D.add p (D.const 6387)) (D.const 6400)) };
      (* Duplicate: logical 5000 collides with 4999. *)
      big_piece ~name:"dup"
        ~tweak_apply:
          { tw = (fun (type a) (module D : Domain.S with type t = a) x ->
                D.select (D.eq x (D.const 5000)) (D.const 4999) x) }
        ~tweak_inv:id_tweak;
      (* Bounds: logical 6000 escapes the physical space. *)
      big_piece ~name:"oob"
        ~tweak_apply:
          { tw = (fun (type a) (module D : Domain.S with type t = a) x ->
                D.select (D.eq x (D.const 6000)) (D.const 7000) x) }
        ~tweak_inv:id_tweak;
      (* Roundtrip: inv is wrong at p = 4500. *)
      big_piece ~name:"badinv" ~tweak_apply:id_tweak
        ~tweak_inv:
          { tw = (fun (type a) (module D : Domain.S with type t = a) p ->
                D.select (D.eq p (D.const 4500)) (D.const 4501) p) };
    ]
  in
  List.iter
    (fun p ->
      let seq = Check.piece ~jobs:1 p in
      let par = Check.piece ~jobs:4 p in
      Alcotest.(check (result unit string))
        (Format.asprintf "verdict identical for %a" Piece.pp p)
        seq par)
    cases;
  (* Non-vacuity: the broken variants really do fail. *)
  match List.map (Check.piece ~jobs:4) cases with
  | [ Ok (); Error _; Error _; Error _ ] -> ()
  | _ -> Alcotest.fail "expected one clean and three failing pieces"

let props = [ prop_layout_bijective; prop_inv_apply_id; prop_tile_by_is_strip_mining ]

let suite =
  ( "layout",
    [
      Alcotest.test_case "flatten/unflatten" `Quick test_flatten_unflatten;
      Alcotest.test_case "shape validation" `Quick test_shape_validate;
      Alcotest.test_case "index enumeration" `Quick test_indices_order;
      Alcotest.test_case "sigma basics" `Quick test_sigma_basics;
      Alcotest.test_case "sigma validation" `Quick test_sigma_invalid;
      Alcotest.test_case "sigma composition" `Quick test_sigma_compose;
      Alcotest.test_case "RegP semantics" `Quick test_regp_semantics;
      Alcotest.test_case "RegP bijective for all sigmas" `Quick
        test_all_regp_bijective;
      Alcotest.test_case "figure 9 golden values" `Quick test_fig9_golden;
      Alcotest.test_case "equation 7 layout (figure 10)" `Quick test_eq7_layout;
      Alcotest.test_case "Triton grouped pid ordering" `Quick
        test_grouped_pid_ordering;
      Alcotest.test_case "Row/Col" `Quick test_row_col;
      Alcotest.test_case "interleave permutations" `Quick test_interleave;
      Alcotest.test_case "TileBy strip-mines" `Quick test_tile_by_strip_mines;
      Alcotest.test_case "TileOrderBy Col" `Quick test_tiled_view_col_major;
      Alcotest.test_case "full_dims" `Quick test_full_dims;
      Alcotest.test_case "anti-diagonal golden table" `Quick
        test_antidiag_golden;
      Alcotest.test_case "gallery bijections" `Quick test_gallery_bijective;
      Alcotest.test_case "morton golden" `Quick test_morton_golden;
      Alcotest.test_case "hilbert adjacency" `Quick test_hilbert_adjacency;
      Alcotest.test_case "table-driven pieces" `Quick test_of_table;
      Alcotest.test_case "gallery lookup" `Quick test_gallery_lookup;
      Alcotest.test_case "size mismatch rejected" `Quick
        test_size_mismatch_rejected;
      Alcotest.test_case "parallel check matches sequential" `Quick
        test_parallel_check_matches_sequential;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) props )
