(* Tests for the symbolic engine: normal form, evaluation, ranges, the
   prover, the five Table-1 rules, expansion and the cost model. *)

open Lego_symbolic
module E = Expr
module L = Lego_layout

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let x = E.var "x"
let y = E.var "y"

(* --- Normal form ------------------------------------------------------ *)

let test_constant_folding () =
  check_str "2+3" "5" (E.to_string E.(add (const 2) (const 3)));
  check_str "2*3*x" "6*x" (E.to_string E.(mul (const 2) (mul (const 3) x)));
  check_str "x-x" "0" (E.to_string E.(sub x x));
  check_str "7/2 floor" "3" (E.to_string E.(div (const 7) (const 2)));
  check_str "-7/2 floor" "-4" (E.to_string E.(div (const (-7)) (const 2)));
  check_str "-7 mod 2" "1" (E.to_string E.(md (const (-7)) (const 2)))

let test_like_terms () =
  check_str "x+x" "2*x" (E.to_string E.(add x x));
  check_str "2x+3x-5x" "0" (E.to_string
    E.(add (mul (const 2) x) (add (mul (const 3) x) (mul (const (-5)) x))));
  check_str "x*y + y*x" "2*x*y" (E.to_string E.(add (mul x y) (mul y x)))

let test_distribute_const_over_sum () =
  (* Needed so that differences of equal sums cancel (prover precision). *)
  check_str "-(x+y)+x+y" "0" (E.to_string E.(add (neg (add x y)) (add x y)))

let test_overflow_safe_folding () =
  (* max_int * 2 used to wrap to Const (-2); it must stay symbolic. *)
  (match E.(mul (const max_int) (const 2)) with
  | E.Const n -> Alcotest.failf "max_int * 2 folded to constant %d" n
  | _ -> ());
  (match E.(add (const max_int) (const max_int)) with
  | E.Const n -> Alcotest.failf "max_int + max_int folded to constant %d" n
  | _ -> ());
  (* min_int / -1 is the one constant floor_div that overflows. *)
  (match E.(div (const min_int) (const (-1))) with
  | E.Const n -> Alcotest.failf "min_int / -1 folded to constant %d" n
  | _ -> ());
  (match E.(md (const min_int) (const (-1))) with
  | E.Const n -> Alcotest.failf "min_int mod -1 folded to constant %d" n
  | _ -> ());
  (* Distribution over a sum is skipped when a coefficient would wrap. *)
  let e = E.(mul (const max_int) (add x (const 3))) in
  (match e with
  | E.Const n -> Alcotest.failf "max_int * (x+3) folded to constant %d" n
  | _ -> ());
  (* In-range folds still happen. *)
  check_str "in-range product" "6" (E.to_string E.(mul (const 2) (const 3)));
  check_str "in-range quotient" "-4"
    (E.to_string E.(div (const (-7)) (const 2)))

let test_hash_consing () =
  (* Structurally equal expressions built separately share one node. *)
  let a = E.(add (mul (const 3) x) y) in
  let b = E.(add (mul (const 3) x) y) in
  Alcotest.(check bool) "physically equal" true (a == b);
  Alcotest.(check bool) "equal" true (E.equal a b);
  let stats = E.intern_stats () in
  Alcotest.(check bool) "intern hits recorded" true (stats.E.hits > 0);
  Alcotest.(check bool) "live nodes tracked" true (E.intern_size () > 0)

let test_div_mod_units () =
  check_str "x/1" "x" (E.to_string E.(div x (const 1)));
  check_str "x mod 1" "0" (E.to_string E.(md x (const 1)));
  check_str "0/x" "0" (E.to_string E.(div E.zero x))

let test_select_fold () =
  check_str "select on true" "x" (E.to_string E.(select E.one x y));
  check_str "select same branches" "x" (E.to_string E.(select y x x));
  check_str "x <= x" "1" (E.to_string E.(le x x));
  check_str "x < x" "0" (E.to_string E.(lt x x))

let test_subst_eval () =
  let e = E.(add (mul (const 3) x) (div y (const 2))) in
  let e' = E.subst [ ("x", E.const 4) ] e in
  check_int "eval after subst" ((3 * 4) + (7 / 2))
    (E.eval ~env:(fun _ -> 7) e');
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (E.vars e)

let test_eval_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (E.eval ~env:(fun _ -> 0) E.(div x (E.var "z"))))

(* --- Ranges ----------------------------------------------------------- *)

let env_xy =
  Range.env_of_list [ ("x", Range.of_extent 8); ("y", Range.of_extent 3) ]

let test_range_arith () =
  let r = Range.of_expr env_xy E.(add (mul (const 3) x) y) in
  check_int "lo" 0 r.Range.lo;
  check_int "hi" ((3 * 7) + 2) r.Range.hi;
  let r = Range.of_expr env_xy E.(md (sub x (const 20)) (const 5)) in
  check_int "mod lo" 0 r.Range.lo;
  check_int "mod hi" 4 r.Range.hi;
  let r = Range.of_expr env_xy E.(div x (const 2)) in
  check_int "div hi" 3 r.Range.hi

let test_range_unknown_var () =
  let r = Range.of_expr Range.empty_env x in
  Alcotest.(check bool) "top" true
    (r.Range.lo <= Range.ninf && r.Range.hi >= Range.pinf)

let test_range_select () =
  let r = Range.of_expr env_xy E.(select (lt x (const 100)) y (const 50)) in
  (* Condition is decidable from ranges: only the then-branch counts. *)
  check_int "select hi" 2 r.Range.hi

(* --- Prover ----------------------------------------------------------- *)

let test_prover () =
  Alcotest.(check bool) "x >= 0" true (Prover.nonneg env_xy x);
  Alcotest.(check bool) "x < 8" true (Prover.lt env_xy x (E.const 8));
  Alcotest.(check bool) "not x < 7" false (Prover.lt env_xy x (E.const 7));
  Alcotest.(check bool) "x <= x + y" true (Prover.le env_xy x E.(add x y));
  Alcotest.(check bool) "3x+y in [0,24)" true
    (Prover.in_half_open env_xy E.(add (mul (const 3) x) y) (E.const 24));
  Alcotest.(check bool) "x - 10 not nonneg" false
    (Prover.nonneg env_xy E.(sub x (const 10)))

(* --- Table 1 rules ---------------------------------------------------- *)

let env_qr =
  Range.env_of_list [ ("q", Range.of_extent 100); ("r", Range.of_extent 6) ]

let q = E.var "q"
let r = E.var "r"

let test_rule1_mod_split () =
  let stats = Simplify.stats () in
  let e = E.(md (add (mul (const 6) q) r) (const 6)) in
  check_str "(6q+r) mod 6 -> r" "r"
    (E.to_string (Simplify.simplify ~stats ~env:env_qr e));
  Alcotest.(check bool) "rule 1 fired" true (stats.Simplify.r1 >= 1)

let test_rule2_recombine () =
  let stats = Simplify.stats () in
  let env = Range.env_of_list [ ("x", Range.of_extent 1000) ] in
  let e = E.(add (mul (const 4) (div x (const 4))) (md x (const 4))) in
  check_str "4*(x/4) + x%4 -> x" "x"
    (E.to_string (Simplify.simplify ~stats ~env e));
  check_int "rule 2 fired" 1 stats.Simplify.r2;
  (* Scaled form: 3*a*(x/a) + 3*(x mod a). *)
  let e2 =
    E.(add (mul (const 12) (div x (const 4))) (mul (const 3) (md x (const 4))))
  in
  check_str "scaled recombination" "3*x" (E.to_string (Simplify.simplify ~env e2))

let test_rule3_div_elim () =
  let stats = Simplify.stats () in
  check_str "r/6 -> 0" "0"
    (E.to_string (Simplify.simplify ~stats ~env:env_qr E.(div r (const 6))));
  Alcotest.(check bool) "rule 3 fired" true (stats.Simplify.r3 >= 1)

let test_rule4_mod_elim () =
  let stats = Simplify.stats () in
  check_str "r mod 6 -> r" "r"
    (E.to_string (Simplify.simplify ~stats ~env:env_qr E.(md r (const 6))));
  Alcotest.(check bool) "rule 4 fired" true (stats.Simplify.r4 >= 1)

let test_rule5_div_split () =
  let stats = Simplify.stats () in
  let e = E.(div (add (mul (const 6) q) r) (const 6)) in
  check_str "(6q+r)/6 -> q" "q"
    (E.to_string (Simplify.simplify ~stats ~env:env_qr e));
  Alcotest.(check bool) "rule 5 fired" true (stats.Simplify.r5 >= 1)

let test_pullout_without_bound () =
  (* r unbounded: rule 5 cannot fire, the sound pull-out still splits. *)
  let env = Range.env_of_list [ ("q", Range.of_extent 10) ] in
  let e = E.(div (add (mul (const 6) q) r) (const 6)) in
  check_str "(6q+r)/6 -> q + r/6" "q + r / 6"
    (E.to_string (Simplify.simplify ~env e))

let test_nested_div_mod () =
  let env = Range.env_of_list [ ("x", Range.of_extent 1000) ] in
  check_str "(x/4)/8 -> x/32" "x / 32"
    (E.to_string (Simplify.simplify ~env E.(div (div x (const 4)) (const 8))));
  check_str "(x mod 12) mod 4 -> x mod 4" "x % 4"
    (E.to_string (Simplify.simplify ~env E.(md (md x (const 12)) (const 4))))

let test_fuel_exhaustion_observable () =
  (* (6q + r) mod 6 needs two passes: rule 1 to r mod 6, then rule 4 to r.
     With fuel for a single pass the driver must report exhaustion. *)
  let e = E.(md (add (mul (const 6) q) r) (const 6)) in
  let stats = Simplify.stats () in
  let partial = Simplify.simplify ~stats ~fuel:1 ~env:env_qr e in
  check_str "one pass stops at r mod 6" "r % 6" (E.to_string partial);
  check_int "fuel exhausted once" 1 stats.Simplify.fuel_exhausted;
  check_int "one pass consumed" 1 stats.Simplify.passes;
  let stats = Simplify.stats () in
  let full = Simplify.simplify ~stats ~env:env_qr e in
  check_str "full fuel reaches fixpoint" "r" (E.to_string full);
  check_int "no exhaustion at default fuel" 0 stats.Simplify.fuel_exhausted;
  Alcotest.(check bool) "multiple passes consumed" true
    (stats.Simplify.passes >= 2)

let test_prover_reset_snapshot () =
  Prover.reset ();
  let before = Prover.snapshot () in
  check_int "queries zero after reset" 0 before.Prover.queries;
  Alcotest.(check bool) "goal proves" true (Prover.nonneg env_qr q);
  let after = Prover.snapshot () in
  let delta = Prover.diff after before in
  check_int "one query recorded" 1 delta.Prover.queries;
  check_int "one goal proved" 1 delta.Prover.proved;
  (* The snapshot is a copy, not an alias of the live counters. *)
  ignore (Prover.nonneg env_qr q);
  check_int "snapshot is immutable" 1 after.Prover.queries;
  Prover.reset ();
  check_int "reset zeroes globals" 0 (Prover.global_stats ()).Prover.queries

let test_simplify_memo_consistent () =
  (* The memoized (stats-less) path and the exact (stats) path agree. *)
  let e = E.(div (add (mul (const 6) q) r) (const 6)) in
  let with_stats =
    Simplify.simplify ~stats:(Simplify.stats ()) ~env:env_qr e
  in
  let memo1 = Simplify.simplify ~env:env_qr e in
  let memo2 = Simplify.simplify ~env:env_qr e in
  Alcotest.(check bool) "stats path == memo path" true
    (E.equal with_stats memo1);
  Alcotest.(check bool) "memo is stable" true (memo1 == memo2)

let test_simplify_is_sound_on_samples () =
  (* Differential: simplified expression evaluates identically. *)
  let env = env_qr in
  let exprs =
    [
      E.(md (add (mul (const 6) q) r) (const 6));
      E.(div (add (mul (const 6) q) (add r (const 5))) (const 6));
      E.(add (mul (const 4) (div (add q r) (const 4))) (md (add q r) (const 4)));
      E.(select (lt r (const 6)) q (md q (const 7)));
    ]
  in
  List.iter
    (fun e ->
      let s = Simplify.simplify ~env e in
      for qv = 0 to 99 do
        for rv = 0 to 5 do
          let lookup = function
            | "q" -> qv
            | "r" -> rv
            | v -> Alcotest.failf "unexpected var %s" v
          in
          check_int
            (Printf.sprintf "%s @ q=%d r=%d" (E.to_string e) qv rv)
            (E.eval ~env:lookup e)
            (E.eval ~env:lookup s)
        done
      done)
    exprs

(* --- Expansion and cost ----------------------------------------------- *)

let test_expand () =
  let e = E.(mul (add x (const 1)) (add y (const 2))) in
  check_str "expanded" "2 + y + 2*x + x*y" (E.to_string (Expand.expand e))

let test_cost_model () =
  check_int "ops of x" 0 (Cost.ops x);
  check_int "ops of x+y" 1 (Cost.ops E.(add x y));
  Alcotest.(check bool) "div costs more than add" true
    (Cost.ops E.(div x y) > Cost.ops E.(add x y));
  let cheap = E.(add x y) and pricey = E.(add (mul x y) (div x y)) in
  Alcotest.(check bool) "cheapest picks cheap" true
    (E.equal (Cost.cheapest [ pricey; cheap ]) cheap)

let test_best_of_expansion () =
  (* (x+y)*3 expands to 3x+3y: same evaluation either way. *)
  let env = env_xy in
  let e = E.(mul (add x y) (const 3)) in
  let best = Cost.best_of_expansion ~env e in
  for xv = 0 to 7 do
    for yv = 0 to 2 do
      let lookup = function "x" -> xv | "y" -> yv | _ -> assert false in
      check_int "expansion choice is sound" (E.eval ~env:lookup e)
        (E.eval ~env:lookup best)
    done
  done

(* --- Symbolic layout application -------------------------------------- *)

let test_sym_apply_tiled () =
  let g = L.Sugar.tiled_view ~group:[ [ 4; 2 ]; [ 2; 3 ] ] () in
  check_str "row-major tiled offset" "i3 + 3*i1 + 6*i2 + 12*i0"
    (E.to_string (Sym.apply g))

let test_sym_inv_grouped () =
  let gm = 2 and npm = 6 and npn = 5 in
  let cl =
    L.Sugar.tiled_view
      ~order:[ L.Sugar.col [ npm / gm; 1 ]; L.Sugar.col [ gm; npn ] ]
      ~group:[ [ npm; npn ] ] ()
  in
  match Sym.inv cl with
  | [ m; n ] ->
    check_str "pid_m" "2*(p / 10) + p % 2" (E.to_string m);
    check_str "pid_n" "p % 10 / 2" (E.to_string n)
  | _ -> Alcotest.fail "rank"

let roundtrip_layouts =
  [
    ("tiled", L.Sugar.tiled_view ~group:[ [ 4; 2 ]; [ 2; 3 ] ] ());
    ( "col tiled",
      L.Sugar.tiled_view
        ~order:[ L.Sugar.col [ 8; 6 ] ]
        ~group:[ [ 4; 2 ]; [ 2; 3 ] ]
        () );
    ( "antidiag",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.antidiag 9 ] ]
        [ [ 9; 9 ] ] );
    ( "morton",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.morton ~d:2 ~bits:3 ] ]
        [ [ 8; 8 ] ] );
    ( "swizzle",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.xor_swizzle ~rows:8 ~cols:8 ] ]
        [ [ 8; 8 ] ] );
  ]

let test_symbolic_matches_concrete () =
  List.iter
    (fun (name, g) ->
      match Sym.check_roundtrip g ~samples:200 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    roundtrip_layouts

let test_symbolic_inv_matches_concrete () =
  List.iter
    (fun (name, g) ->
      let exprs = Sym.inv g in
      for p = 0 to min 100 (L.Group_by.numel g - 1) do
        let env v = if v = "p" then p else Alcotest.failf "unexpected %s" v in
        let got = List.map (E.eval ~env) exprs in
        if got <> L.Group_by.inv_ints g p then
          Alcotest.failf "%s: symbolic inv disagrees at %d" name p
      done)
    roundtrip_layouts

(* Property: simplification of random linear/div/mod expressions is
   semantics-preserving over the variable ranges used to justify it. *)
let gen_expr =
  let open QCheck2.Gen in
  let leaf = oneof [ return q; return r; map E.const (int_range 0 9) ] in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            map2 E.add sub sub;
            map2 E.mul (map E.const (int_range 1 6)) sub;
            map2 E.sub sub sub;
            map (fun e -> E.div e (E.const 6)) sub;
            map (fun e -> E.md e (E.const 6)) sub;
            map (fun e -> E.div e (E.const 4)) sub;
            map (fun e -> E.md e (E.const 4)) sub;
          ])
    3

let prop_simplify_sound =
  QCheck2.Test.make ~name:"simplify preserves semantics" ~count:300
    QCheck2.Gen.(triple gen_expr (int_bound 99) (int_bound 5))
    (fun (e, qv, rv) ->
      let s = Simplify.simplify ~env:env_qr e in
      let lookup = function "q" -> qv | "r" -> rv | _ -> 0 in
      E.eval ~env:lookup e = E.eval ~env:lookup s)

let prop_expand_sound =
  QCheck2.Test.make ~name:"expansion preserves semantics" ~count:300
    QCheck2.Gen.(triple gen_expr (int_bound 99) (int_bound 5))
    (fun (e, qv, rv) ->
      let lookup = function "q" -> qv | "r" -> rv | _ -> 0 in
      E.eval ~env:lookup e = E.eval ~env:lookup (Expand.expand e))

let prop_range_sound =
  QCheck2.Test.make ~name:"range analysis bounds evaluation" ~count:300
    QCheck2.Gen.(triple gen_expr (int_bound 99) (int_bound 5))
    (fun (e, qv, rv) ->
      let lookup = function "q" -> qv | "r" -> rv | _ -> 0 in
      let range = Range.of_expr env_qr e in
      let v = E.eval ~env:lookup e in
      Range.contains range v)

let props = [ prop_simplify_sound; prop_expand_sound; prop_range_sound ]

let suite =
  ( "symbolic",
    [
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "overflow-safe constant folding" `Quick
        test_overflow_safe_folding;
      Alcotest.test_case "hash-consing" `Quick test_hash_consing;
      Alcotest.test_case "like terms" `Quick test_like_terms;
      Alcotest.test_case "constant distributes over lone sum" `Quick
        test_distribute_const_over_sum;
      Alcotest.test_case "div/mod units" `Quick test_div_mod_units;
      Alcotest.test_case "select/compare folds" `Quick test_select_fold;
      Alcotest.test_case "subst and eval" `Quick test_subst_eval;
      Alcotest.test_case "division by zero" `Quick test_eval_division_by_zero;
      Alcotest.test_case "range arithmetic" `Quick test_range_arith;
      Alcotest.test_case "range of unknown vars" `Quick test_range_unknown_var;
      Alcotest.test_case "range of select" `Quick test_range_select;
      Alcotest.test_case "prover goals" `Quick test_prover;
      Alcotest.test_case "rule 1: mod split" `Quick test_rule1_mod_split;
      Alcotest.test_case "rule 2: recombination" `Quick test_rule2_recombine;
      Alcotest.test_case "rule 3: div elimination" `Quick test_rule3_div_elim;
      Alcotest.test_case "rule 4: mod elimination" `Quick test_rule4_mod_elim;
      Alcotest.test_case "rule 5: div split" `Quick test_rule5_div_split;
      Alcotest.test_case "unconditioned pull-out" `Quick
        test_pullout_without_bound;
      Alcotest.test_case "nested div/mod" `Quick test_nested_div_mod;
      Alcotest.test_case "fuel exhaustion observable" `Quick
        test_fuel_exhaustion_observable;
      Alcotest.test_case "prover reset/snapshot" `Quick
        test_prover_reset_snapshot;
      Alcotest.test_case "simplify memo consistent" `Quick
        test_simplify_memo_consistent;
      Alcotest.test_case "simplify sound on exhaustive samples" `Quick
        test_simplify_is_sound_on_samples;
      Alcotest.test_case "expansion" `Quick test_expand;
      Alcotest.test_case "cost model" `Quick test_cost_model;
      Alcotest.test_case "cost-guided expansion choice" `Quick
        test_best_of_expansion;
      Alcotest.test_case "symbolic apply of tiled view" `Quick
        test_sym_apply_tiled;
      Alcotest.test_case "symbolic inv of grouped ordering" `Quick
        test_sym_inv_grouped;
      Alcotest.test_case "symbolic apply == concrete" `Quick
        test_symbolic_matches_concrete;
      Alcotest.test_case "symbolic inv == concrete" `Quick
        test_symbolic_inv_matches_concrete;
    ]
    @ List.map (QCheck_alcotest.to_alcotest ~long:false) props )
