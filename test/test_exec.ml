(* Tests for the execution layer (lib/exec): deterministic order of the
   merged results, per-task exception capture with lowest-index re-raise,
   pool reuse, the jobs=1 degenerate pool, and misuse guards. *)

module X = Lego_exec.Exec

exception Boom of int

(* [oversubscribe:true] in the interleaving-sensitive tests: the pool
   clamps spawned domains to the hardware count, so on a small host a
   plain ~jobs:4 pool would degrade to the sequential path and stop
   exercising multi-domain scheduling at all. *)
let test_map_preserves_order () =
  X.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let n = 1000 in
      let xs = Array.init n (fun i -> i) in
      let ys = X.map ~pool xs (fun i -> (i * i) + 1) in
      Alcotest.(check int) "length" n (Array.length ys);
      Array.iteri
        (fun i y -> Alcotest.(check int) (Printf.sprintf "slot %d" i)
            ((i * i) + 1) y)
        ys;
      (* Tiny chunks exercise the work-stealing cursor on many claims. *)
      let zs = X.map ~chunk:1 ~pool xs (fun i -> i - 7) in
      Array.iteri
        (fun i z -> Alcotest.(check int) (Printf.sprintf "chunk1 slot %d" i)
            (i - 7) z)
        zs)

let test_map_empty_and_jobs1 () =
  X.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "empty" 0
        (Array.length (X.map ~pool [||] (fun i -> i)));
      let ys = X.map ~pool [| 10; 20; 30 |] (fun i -> i + 1) in
      Alcotest.(check (list int)) "jobs=1" [ 11; 21; 31 ]
        (Array.to_list ys))

let test_exception_lowest_index_and_no_abort () =
  X.with_pool ~jobs:4 ~oversubscribe:true (fun pool ->
      let n = 200 in
      let ran = Atomic.make 0 in
      let xs = Array.init n (fun i -> i) in
      (* Several tasks raise; the caller must see the lowest-index one,
         and the batch must still run every other task (no early abort —
         that is what makes the failure deterministic at any -j). *)
      (match
         X.map ~chunk:1 ~pool xs (fun i ->
             Atomic.incr ran;
             if i = 17 || i = 3 || i = 150 then raise (Boom i);
             i)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest index wins" 3 i);
      Alcotest.(check int) "all tasks still ran" n (Atomic.get ran);
      (* The pool survives a raising batch. *)
      let ys = X.map ~pool xs (fun i -> 2 * i) in
      Alcotest.(check int) "pool reusable after raise" 398 ys.(199))

let test_pool_reuse_across_batches () =
  X.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "jobs" 3 (X.jobs pool);
      for round = 1 to 20 do
        let xs = Array.init 50 (fun i -> i) in
        let ys = X.map ~pool xs (fun i -> (round * 1000) + i) in
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          ((round * 1000) + 49)
          ys.(49)
      done)

let test_misuse_guards () =
  X.with_pool ~jobs:2 (fun pool ->
      (* Nested map on the same pool would deadlock; it must raise. *)
      (match
         X.map ~pool [| 0 |] (fun _ ->
             X.map ~pool [| 1 |] (fun i -> i))
       with
      | _ -> Alcotest.fail "nested map must be rejected"
      | exception Invalid_argument _ -> ());
      match X.map ~chunk:0 ~pool [| 1 |] (fun i -> i) with
      | _ -> Alcotest.fail "chunk 0 must be rejected"
      | exception Invalid_argument _ -> ());
  (match X.create ~jobs:0 () with
  | _ -> Alcotest.fail "jobs 0 must be rejected"
  | exception Invalid_argument _ -> ());
  (* A shut-down pool refuses further batches. *)
  let pool = X.create ~jobs:2 () in
  X.shutdown pool;
  match X.map ~pool [| 1 |] (fun i -> i) with
  | _ -> Alcotest.fail "map after shutdown must be rejected"
  | exception Invalid_argument _ -> ()

let test_hardware_clamp_preserves_semantics () =
  (* A pool far wider than any host still reports its requested size,
     and produces exactly the same merged results as an oversubscribed
     pool of the same width — the clamp is a scheduling detail, not an
     observable one. *)
  let xs = Array.init 500 (fun i -> i) in
  let clamped =
    X.with_pool ~jobs:32 (fun pool ->
        Alcotest.(check int) "requested size reported" 32 (X.jobs pool);
        X.map ~pool xs (fun i -> (i * 3) - 1))
  in
  let oversub =
    X.with_pool ~jobs:32 ~oversubscribe:true (fun pool ->
        X.map ~pool xs (fun i -> (i * 3) - 1))
  in
  Alcotest.(check bool) "identical results" true (clamped = oversub)

let test_default_jobs_env () =
  let saved = Sys.getenv_opt "LEGO_JOBS" in
  let restore () =
    match saved with
    | Some v -> Unix.putenv "LEGO_JOBS" v
    | None -> Unix.putenv "LEGO_JOBS" ""
  in
  Fun.protect ~finally:restore (fun () ->
      Unix.putenv "LEGO_JOBS" "3";
      Alcotest.(check int) "LEGO_JOBS honoured" 3 (X.default_jobs ());
      Unix.putenv "LEGO_JOBS" "not-a-number";
      Alcotest.(check bool) "garbage falls back to a positive count" true
        (X.default_jobs () >= 1))

let suite =
  ( "exec",
    [
      Alcotest.test_case "map preserves submission order" `Quick
        test_map_preserves_order;
      Alcotest.test_case "empty input and jobs=1" `Quick
        test_map_empty_and_jobs1;
      Alcotest.test_case "lowest-index exception, no early abort" `Quick
        test_exception_lowest_index_and_no_abort;
      Alcotest.test_case "pool reuse across batches" `Quick
        test_pool_reuse_across_batches;
      Alcotest.test_case "misuse guards" `Quick test_misuse_guards;
      Alcotest.test_case "hardware clamp preserves semantics" `Quick
        test_hardware_clamp_preserves_semantics;
      Alcotest.test_case "default_jobs reads LEGO_JOBS" `Quick
        test_default_jobs_env;
    ] )
