(* Tests for template instantiation, the C and Triton printers, CSE and
   the MLIR emitter (validated through the mini-MLIR interpreter). *)

open Lego_layout
open Lego_symbolic
module CG = Lego_codegen
module E = Expr

let check_str = Alcotest.(check string)

(* --- Template engine --------------------------------------------------- *)

let test_template_render () =
  let tpl = "a_ptrs = a_ptr + {{ la_optr }}\nb_ptrs = b_ptr + {{lb_optr}}\n" in
  Alcotest.(check (list string))
    "placeholders" [ "la_optr"; "lb_optr" ]
    (CG.Template.placeholders tpl);
  check_str "rendered" "a_ptrs = a_ptr + X\nb_ptrs = b_ptr + Y\n"
    (CG.Template.render_exn
       ~bindings:[ ("la_optr", "X"); ("lb_optr", "Y") ]
       tpl);
  match CG.Template.render ~bindings:[ ("la_optr", "X") ] tpl with
  | Ok _ -> Alcotest.fail "missing binding not reported"
  | Error msg ->
    Alcotest.(check bool) "names the hole" true
      (Str.string_match (Str.regexp ".*lb_optr.*") msg 0)

let test_template_scanner_edge_cases () =
  (* A marker inside a longer brace run: the scanner must find the inner
     {{x}} rather than give up at the first '{'. *)
  check_str "nested braces" "{X}"
    (CG.Template.render_exn ~bindings:[ ("x", "X") ] "{{{x}}}");
  (* Literal braces that never close stay literal. *)
  check_str "unclosed" "{{x" (CG.Template.render_exn ~bindings:[] "{{x");
  (* A bare opener at end-of-input, and an opener whose marker never
     terminates ("}" is not "}}"), must both survive as literals rather
     than crash the scanner or be half-consumed. *)
  check_str "opener at EOI" "{{" (CG.Template.render_exn ~bindings:[] "{{");
  check_str "opener at EOI after text" "ab{{"
    (CG.Template.render_exn ~bindings:[] "ab{{");
  check_str "single closing brace" "{{ name }"
    (CG.Template.render_exn ~bindings:[ ("name", "V") ] "{{ name }");
  Alcotest.(check (list string)) "unterminated not collected" []
    (CG.Template.placeholders "{{ name }");
  check_str "lone braces" "a {b} c"
    (CG.Template.render_exn ~bindings:[] "a {b} c");
  (* A non-identifier between the braces is not a placeholder. *)
  check_str "bad name stays" "{{bad name}}"
    (CG.Template.render_exn ~bindings:[] "{{bad name}}");
  Alcotest.(check (list string)) "bad name not collected" []
    (CG.Template.placeholders "{{bad name}} {{1x}}");
  (* Adjacent markers and repeats. *)
  check_str "adjacent" "XYX"
    (CG.Template.render_exn
       ~bindings:[ ("a", "X"); ("b", "Y") ]
       "{{a}}{{b}}{{a}}");
  Alcotest.(check (list string))
    "placeholders dedup in order" [ "a"; "b" ]
    (CG.Template.placeholders "{{a}}{{b}}{{a}}")

let test_template_roundtrip () =
  (* Rendering every placeholder with a recognisable token and scanning
     the output must account for every marker: placeholders-compose-
    render sanity over assorted templates. *)
  let templates =
    [
      "no markers at all";
      "{{x}}";
      "lead {{ x }} mid {{y_2}} tail";
      "{{a}}{{a}}{{b}} {{ c }} {";
      "mix {{ok}} {{not ok}} {{_under}}";
    ]
  in
  List.iter
    (fun tpl ->
      let names = CG.Template.placeholders tpl in
      let bindings = List.map (fun n -> (n, "<" ^ n ^ ">")) names in
      let out = CG.Template.render_exn ~bindings tpl in
      List.iter
        (fun (n, v) ->
          let occurs hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec go i =
              i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%S: %s substituted" tpl n)
            true (occurs out v))
        bindings)
    templates

(* --- C printer --------------------------------------------------------- *)

let test_c_printer () =
  let e = E.(add (mul (const 3) (var "i")) (div (var "j") (const 2))) in
  check_str "C text" "3 * i + j / 2" (CG.C_printer.expr e);
  check_str "define" "int off = 3 * i + j / 2;" (CG.C_printer.define ~name:"off" e);
  let f = CG.C_printer.function_def ~name:"f" ~params:[ "i"; "j" ] e in
  Alcotest.(check bool) "device helper" true
    (Str.string_match (Str.regexp ".*__device__.*") f 0)

let test_c_guard () =
  let env = Range.env_of_list [ ("i", Range.of_extent 10) ] in
  Alcotest.(check (result unit string))
    "nonneg dividend passes" (Ok ())
    (CG.C_printer.guard_nonneg ~env E.(div (var "i") (const 2)));
  (match
     CG.C_printer.guard_nonneg ~env E.(div (sub (var "i") (const 100)) (const 2))
   with
  | Ok () -> Alcotest.fail "negative dividend should be rejected"
  | Error _ -> ())

let test_c_precedence_eval () =
  (* The printed text must re-evaluate to the same value (via a tiny
     re-parse through the MLIR pipeline is overkill; spot-check parens). *)
  let e = E.(mul (add (var "i") (const 1)) (var "k")) in
  check_str "parens kept" "k * (1 + i)" (CG.C_printer.expr e)

(* --- Triton printer ---------------------------------------------------- *)

let test_triton_slices () =
  let dl = Sugar.tiled_view ~group:[ [ 8; 4 ]; [ 16; 32 ] ] () in
  let env =
    Range.env_of_list
      [ ("lpid_m", Range.of_extent 8); ("k", Range.of_extent 4) ]
  in
  let s =
    CG.Triton_printer.slice_offset ~env dl
      [ Fix (E.var "lpid_m"); Fix (E.var "k"); All; All ]
  in
  check_str "tile pointer"
    "tl.arange(0, 32)[None, :] + 32 * k + 128 * tl.arange(0, 16)[:, None] + \
     2048 * lpid_m"
    s

let test_triton_single_slice () =
  let dl = Sugar.tiled_view ~group:[ [ 4; 8 ] ] () in
  let s = CG.Triton_printer.slice_offset dl [ Fix (E.var "row"); All ] in
  check_str "1-D slice has no broadcast suffix" "tl.arange(0, 8) + 8 * row" s

let test_triton_slice_errors () =
  let dl = Sugar.tiled_view ~group:[ [ 2; 2; 2 ] ] () in
  Alcotest.check_raises "3 slices rejected"
    (Invalid_argument
       "Triton_printer.slice_offset: at most two sliced dimensions supported")
    (fun () -> ignore (CG.Triton_printer.slice_offset dl [ All; All; All ]))

(* --- CSE ---------------------------------------------------------------- *)

let test_cse_dedups () =
  let shared = E.(mul (var "i") (const 6)) in
  let instrs, roots =
    CG.Cse.lower [ E.(add shared (var "j")); E.(add shared (const 1)) ]
  in
  Alcotest.(check int) "three instructions (mul shared once)" 3
    (List.length instrs);
  Alcotest.(check int) "two roots" 2 (List.length roots)

let gen_small_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof [ return (E.var "i"); return (E.var "j"); map E.const (int_range 0 9) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            map2 E.add sub sub;
            map2 E.mul sub (map E.const (int_range 1 5));
            map (fun e -> E.div e (E.const 3)) sub;
            map (fun e -> E.md e (E.const 4)) sub;
            map3 E.select (map2 E.lt sub sub) sub sub;
          ])
    3

let prop_cse_eval =
  QCheck2.Test.make ~name:"CSE three-address form evaluates identically"
    ~count:300
    QCheck2.Gen.(triple gen_small_expr (int_bound 50) (int_bound 50))
    (fun (e, iv, jv) ->
      let env = function "i" -> iv | "j" -> jv | _ -> 0 in
      let instrs, roots = CG.Cse.lower [ e ] in
      CG.Cse.eval ~env instrs roots = [ E.eval ~env e ])

(* --- MLIR emitter + interpreter ---------------------------------------- *)

let test_mlir_index_func () =
  let g =
    Group_by.make ~chain:[ Order_by.make [ Gallery.antidiag 9 ] ] [ [ 9; 9 ] ]
  in
  let text = CG.Mlir_gen.layout_apply_func ~name:"off" g in
  let m = Lego_mlirsim.Mparser.parse_module text in
  for i = 0 to 8 do
    for j = 0 to 8 do
      Alcotest.(check (list int))
        (Printf.sprintf "(%d,%d)" i j)
        [ Group_by.apply_ints g [ i; j ] ]
        (Lego_mlirsim.Minterp.run_func m "off" [ Int i; Int j ])
    done
  done

let test_mlir_inv_func () =
  let g = Sugar.tiled_view ~group:[ [ 3; 4 ]; [ 2; 2 ] ] () in
  let text = CG.Mlir_gen.layout_inv_func ~name:"inv" g in
  let m = Lego_mlirsim.Mparser.parse_module text in
  for p = 0 to Group_by.numel g - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "p=%d" p)
      (Group_by.inv_ints g p)
      (Lego_mlirsim.Minterp.run_func m "inv" [ Int p ])
  done

let test_mlir_copy_transpose () =
  let m_ = 6 and n_ = 4 in
  let src_l = Sugar.tiled_view ~group:[ [ m_; n_ ] ] () in
  let dst_l =
    Sugar.tiled_view ~order:[ Sugar.col [ m_; n_ ] ] ~group:[ [ m_; n_ ] ] ()
  in
  let text =
    CG.Mlir_gen.copy_func ~name:"transpose"
      ~src_offset:(Sym.apply src_l) ~dst_offset:(Sym.apply dst_l)
      ~dims:[ m_; n_ ]
  in
  let m = Lego_mlirsim.Mparser.parse_module text in
  let src = Array.init (m_ * n_) Fun.id in
  let dst = Array.make (m_ * n_) (-1) in
  ignore (Lego_mlirsim.Minterp.run_func m "transpose" [ Mem src; Mem dst ]);
  for i = 0 to m_ - 1 do
    for j = 0 to n_ - 1 do
      Alcotest.(check int)
        (Printf.sprintf "(%d,%d)" i j)
        src.((i * n_) + j)
        dst.((j * m_) + i)
    done
  done

let gen_layout_for_mlir =
  let open QCheck2.Gen in
  let* d1 = oneofl [ 2; 3; 4 ] and* d2 = oneofl [ 2; 3; 4 ] in
  let* sigma = oneofl (Sigma.all 2) in
  let* use_antidiag = bool in
  let piece =
    if use_antidiag && d1 = d2 then Gallery.antidiag d1
    else Piece.reg ~dims:[ d1; d2 ] ~sigma
  in
  return (Group_by.make ~chain:[ Order_by.make [ piece ] ] [ [ d1; d2 ] ])

let prop_mlir_roundtrip =
  QCheck2.Test.make ~name:"MLIR emit/parse/interp == apply_ints" ~count:60
    gen_layout_for_mlir (fun g ->
      let text = CG.Mlir_gen.layout_apply_func ~name:"f" g in
      let m = Lego_mlirsim.Mparser.parse_module text in
      Seq.for_all
        (fun idx ->
          Lego_mlirsim.Minterp.run_func m "f"
            (List.map (fun i -> Lego_mlirsim.Minterp.Int i) idx)
          = [ Group_by.apply_ints g idx ])
        (Shape.indices (Group_by.dims g)))

(* --- MLIR parser errors ------------------------------------------------- *)

let test_mlir_parse_errors () =
  (match Lego_mlirsim.Mparser.parse_module_result "module {\n  garbage\n}" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error msg ->
    Alcotest.(check bool) "position reported" true
      (Str.string_match (Str.regexp "line 2:.*") msg 0));
  match
    Lego_mlirsim.Mparser.parse_module_result
      "module {\n  func.func @f(%i: index) -> (index) {\n    %t = arith.xori \
       %i, %i : index\n    return %t : index\n  }\n}"
  with
  | Ok _ -> Alcotest.fail "unknown op accepted"
  | Error _ -> ()

let test_mlir_interp_errors () =
  let text =
    "module {\n\
    \  func.func @f(%m: memref<?xindex>) {\n\
    \    %c9 = arith.constant 9 : index\n\
    \    %v = memref.load %m[%c9] : memref<?xindex>\n\
    \    return\n\
    \  }\n\
     }"
  in
  let m = Lego_mlirsim.Mparser.parse_module text in
  Alcotest.check_raises "out of bounds"
    (Lego_mlirsim.Minterp.Runtime_error
       "load out of bounds: %m[9] (size 4)")
    (fun () ->
      ignore (Lego_mlirsim.Minterp.run_func m "f" [ Mem (Array.make 4 0) ]))

let suite =
  ( "codegen",
    [
      Alcotest.test_case "template render" `Quick test_template_render;
      Alcotest.test_case "template scanner edge cases" `Quick
        test_template_scanner_edge_cases;
      Alcotest.test_case "template placeholders/render round-trip" `Quick
        test_template_roundtrip;
      Alcotest.test_case "C printer" `Quick test_c_printer;
      Alcotest.test_case "C floor-division guard" `Quick test_c_guard;
      Alcotest.test_case "C precedence" `Quick test_c_precedence_eval;
      Alcotest.test_case "Triton 2-D slices" `Quick test_triton_slices;
      Alcotest.test_case "Triton 1-D slice" `Quick test_triton_single_slice;
      Alcotest.test_case "Triton slice errors" `Quick test_triton_slice_errors;
      Alcotest.test_case "CSE dedups" `Quick test_cse_dedups;
      Alcotest.test_case "MLIR index func" `Quick test_mlir_index_func;
      Alcotest.test_case "MLIR inverse func" `Quick test_mlir_inv_func;
      Alcotest.test_case "MLIR scf.for transpose" `Quick
        test_mlir_copy_transpose;
      Alcotest.test_case "MLIR parse errors" `Quick test_mlir_parse_errors;
      Alcotest.test_case "MLIR interp errors" `Quick test_mlir_interp_errors;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [ prop_cse_eval; prop_mlir_roundtrip ] )
