(* Tests for the GF(2) engine (lib/f2): bit-matrix algebra laws on
   seeded random matrices, exact agreement of the compiled piece/layout
   matrices with the reference interpreter over entire domains, the
   composition homomorphism, and the closed-form cost oracle against the
   simulator's own access arithmetic. *)

module L = Lego_layout
module F2 = Lego_f2
module G = Lego_gpusim

let pp_mat m = Format.asprintf "%a" F2.Bitmat.pp m

(* --- Random matrices ------------------------------------------------------ *)

let gen_mat ?rows ?cols () =
  let open QCheck2.Gen in
  let dim = function Some d -> pure d | None -> int_range 1 8 in
  dim rows >>= fun rows ->
  dim cols >>= fun cols ->
  list_repeat cols (int_bound ((1 lsl rows) - 1)) >|= fun cs ->
  F2.Bitmat.of_cols ~rows cs

let prop_rank_nullity =
  QCheck2.Test.make ~name:"rank + kernel dimension = column count" ~count:300
    ~print:pp_mat (gen_mat ())
    (fun m ->
      let k = F2.Bitmat.kernel m in
      List.for_all (fun v -> F2.Bitmat.apply m v = 0) k
      && F2.Bitmat.rank m + List.length k = F2.Bitmat.cols m
      &&
      (* Kernel vectors are independent: as columns they have full rank. *)
      (k = []
      || F2.Bitmat.rank (F2.Bitmat.of_cols ~rows:(F2.Bitmat.cols m) k)
         = List.length k))

let prop_image =
  QCheck2.Test.make ~name:"image is a rank-sized basis of the column space"
    ~count:300 ~print:pp_mat (gen_mat ())
    (fun m ->
      let im = F2.Bitmat.image m in
      let rows = F2.Bitmat.rows m in
      let span cs = F2.Bitmat.rank (F2.Bitmat.of_cols ~rows cs) in
      let mcols = List.init (F2.Bitmat.cols m) (F2.Bitmat.col m) in
      List.length im = F2.Bitmat.rank m
      && span im = List.length im
      && span (im @ mcols) = List.length im)

let prop_row_reduce =
  QCheck2.Test.make ~name:"row_reduce preserves rank and is idempotent"
    ~count:300 ~print:pp_mat (gen_mat ())
    (fun m ->
      let r = F2.Bitmat.row_reduce m in
      F2.Bitmat.rank r = F2.Bitmat.rank m
      && F2.Bitmat.equal (F2.Bitmat.row_reduce r) r)

let prop_inverse =
  QCheck2.Test.make ~name:"inverse iff full rank; inverse is two-sided"
    ~count:300 ~print:pp_mat
    QCheck2.Gen.(int_range 1 8 >>= fun n -> gen_mat ~rows:n ~cols:n ())
    (fun m ->
      let n = F2.Bitmat.cols m in
      match F2.Bitmat.inverse m with
      | None -> F2.Bitmat.rank m < n
      | Some mi ->
        F2.Bitmat.rank m = n
        && F2.Bitmat.equal (F2.Bitmat.mul m mi) (F2.Bitmat.identity n)
        && F2.Bitmat.equal (F2.Bitmat.mul mi m) (F2.Bitmat.identity n))

let prop_mul_is_composition =
  QCheck2.Test.make ~name:"mul composes apply" ~count:300
    ~print:(fun (a, b, x) -> Printf.sprintf "%s*%s @ %d" (pp_mat a) (pp_mat b) x)
    QCheck2.Gen.(
      int_range 1 6 >>= fun p ->
      int_range 1 6 >>= fun q ->
      int_range 1 6 >>= fun r ->
      gen_mat ~rows:p ~cols:q () >>= fun a ->
      gen_mat ~rows:q ~cols:r () >>= fun b ->
      int_bound ((1 lsl r) - 1) >|= fun x -> (a, b, x))
    (fun (a, b, x) ->
      F2.Bitmat.apply (F2.Bitmat.mul a b) x = F2.Bitmat.apply a (F2.Bitmat.apply b x))

let prop_transpose =
  QCheck2.Test.make ~name:"transpose swaps entries and is involutive"
    ~count:300 ~print:pp_mat (gen_mat ())
    (fun m ->
      let t = F2.Bitmat.transpose m in
      F2.Bitmat.rows t = F2.Bitmat.cols m
      && F2.Bitmat.cols t = F2.Bitmat.rows m
      && F2.Bitmat.equal (F2.Bitmat.transpose t) m
      && List.for_all
           (fun i ->
             List.for_all
               (fun j -> F2.Bitmat.get t j i = F2.Bitmat.get m i j)
               (List.init (F2.Bitmat.cols m) Fun.id))
           (List.init (F2.Bitmat.rows m) Fun.id))

(* --- Piece matrices vs the interpreter ------------------------------------ *)

let check_piece_exact piece =
  let dims = L.Piece.dims piece in
  let numel = L.Piece.numel piece in
  match F2.Linear.of_piece piece with
  | None ->
    Alcotest.failf "%s: expected a linear form"
      (Format.asprintf "%a" L.Piece.pp piece)
  | Some lin ->
    for x = 0 to numel - 1 do
      let want = L.Piece.apply_ints piece (L.Shape.unflatten_ints dims x) in
      let got = F2.Linear.apply lin x in
      if got <> want then
        Alcotest.failf "%s at %d: interpreter %d, F2 %d"
          (Format.asprintf "%a" L.Piece.pp piece)
          x want got
    done;
    Alcotest.(check bool)
      "piece matrix invertible (pieces are bijections)" true
      (F2.Linear.invertible lin)

let test_linear_pieces_entire_domain () =
  let pieces =
    List.map
      (fun sigma -> L.Piece.reg ~dims:[ 8; 4 ] ~sigma)
      (L.Sigma.all 2)
    @ List.map
        (fun sigma -> L.Piece.reg ~dims:[ 4; 2; 8 ] ~sigma)
        (L.Sigma.all 3)
    @ [
        L.Gallery.xor_swizzle ~rows:8 ~cols:8;
        L.Gallery.reverse [ 4; 8 ];
        L.Gallery.morton ~d:2 ~bits:3;
      ]
    @ List.concat_map
        (fun mask ->
          List.map
            (fun shift ->
              L.Gallery.xor_swizzle_masked ~rows:16 ~cols:8 ~mask ~shift)
            [ 0; 1; 2; 3 ])
        [ 0; 1; 3; 5; 7 ]
  in
  List.iter check_piece_exact pieces

let test_nonlinear_pieces_rejected () =
  let none piece =
    match F2.Linear.of_piece piece with
    | None -> ()
    | Some _ ->
      Alcotest.failf "%s: expected no linear form"
        (Format.asprintf "%a" L.Piece.pp piece)
  in
  (* Outside the family: non-power-of-two extents. *)
  none (L.Piece.reg ~dims:[ 3; 4 ] ~sigma:(L.Sigma.identity 2));
  none (L.Gallery.reverse [ 6 ]);
  (* In-range extents but non-linear maps. *)
  none (L.Gallery.antidiag 8);
  none (L.Gallery.cyclic_diag 8);
  none (L.Gallery.hilbert ~bits:3)

(* --- Whole layouts: agreement, invertibility, composition ----------------- *)

let gen_linear_layout =
  let open QCheck2.Gen in
  let rows = 8 and cols = 8 in
  oneofl (L.Sigma.all 2) >>= fun sigma ->
  int_bound (cols - 1) >>= fun mask ->
  int_bound 3 >>= fun shift ->
  bool >|= fun swizzled ->
  let base =
    L.Group_by.make
      ~chain:[ L.Order_by.make [ L.Piece.reg ~dims:[ rows; cols ] ~sigma ] ]
      [ [ rows; cols ] ]
  in
  if swizzled then
    L.Group_by.prepend
      (L.Order_by.make [ L.Gallery.xor_swizzle_masked ~rows ~cols ~mask ~shift ])
      base
  else base

let pp_layout g = Format.asprintf "%a" L.Group_by.pp g

let prop_layout_matrix_agrees =
  QCheck2.Test.make
    ~name:"layout matrix = interpreter on the whole domain; full rank"
    ~count:100 ~print:pp_layout gen_linear_layout
    (fun g ->
      match F2.Linear.of_layout g with
      | None -> false
      | Some lin ->
        F2.Linear.invertible lin
        && List.for_all
             (fun x ->
               F2.Linear.apply lin x
               = L.Group_by.apply_ints g (L.Shape.unflatten_ints (L.Group_by.dims g) x))
             (List.init (L.Group_by.numel g) Fun.id))

let test_composition_homomorphism () =
  let rows = 16 and cols = 8 in
  let o_sw mask shift =
    L.Order_by.make [ L.Gallery.xor_swizzle_masked ~rows ~cols ~mask ~shift ]
  in
  let o_reg sigma = L.Order_by.make [ L.Piece.reg ~dims:[ rows; cols ] ~sigma ] in
  let lin_of chain =
    Option.get
      (F2.Linear.of_layout (L.Group_by.make ~chain [ [ rows; cols ] ]))
  in
  List.iter
    (fun (o1, o2) ->
      let composed = lin_of [ o1; o2 ] in
      let via_mul = F2.Linear.compose (lin_of [ o1 ]) (lin_of [ o2 ]) in
      Alcotest.(check bool)
        "matrix of chain = product of stage matrices" true
        (F2.Linear.equal composed via_mul))
    [
      (o_sw 5 1, o_reg (L.Sigma.identity 2));
      (o_sw 7 0, o_sw 3 2);
      (o_reg (List.hd (List.rev (L.Sigma.all 2))), o_sw 6 1);
    ]

(* --- The cost oracle vs the simulator's arithmetic ------------------------ *)

let gen_affine_warp =
  let open QCheck2.Gen in
  let lanes = 32 in
  let abits = 10 in
  list_repeat 5 (int_bound ((1 lsl abits) - 1)) >>= fun cs ->
  int_bound ((1 lsl abits) - 1) >>= fun a0 ->
  oneofl [ 1; 2; 4; 8 ] >|= fun elem_bytes ->
  let m = F2.Bitmat.of_cols ~rows:abits cs in
  (Array.init lanes (fun t -> F2.Bitmat.apply m t lxor a0), elem_bytes)

let prop_oracle_matches_access =
  QCheck2.Test.make
    ~name:"oracle rank formulas = Access counting on affine warps" ~count:300
    ~print:(fun (addrs, eb) ->
      Printf.sprintf "elem_bytes %d, addrs [%s]" eb
        (String.concat ";" (Array.to_list (Array.map string_of_int addrs))))
    gen_affine_warp
    (fun (addrs, elem_bytes) ->
      let device = G.Device.a100 in
      match F2.Oracle.of_lanes addrs with
      | None -> false (* affine by construction; must be recognized *)
      | Some (a, _) ->
        let cyc =
          Option.get
            (F2.Oracle.bank_cycles ~nbanks:device.G.Device.smem_banks
               ~bank_bytes:device.G.Device.smem_bank_bytes ~elem_bytes a)
        and txn =
          Option.get
            (F2.Oracle.txn_count ~txn_bytes:device.G.Device.global_txn_bytes
               ~elem_bytes a)
        in
        let l = Array.to_list addrs in
        cyc = G.Access.bank_cycles device ~elem_bytes l
        && txn = G.Access.txn_count device ~elem_bytes l)

let test_of_lanes_rejects_non_affine () =
  (* Identity on the probe basis, broken at the last lane: the verify
     sweep must catch it. *)
  let addrs = Array.init 32 (fun t -> if t = 31 then 0 else t) in
  Alcotest.(check bool) "non-affine rejected" true (F2.Oracle.of_lanes addrs = None);
  (* And the unbroken pattern is accepted with zero constant. *)
  match F2.Oracle.of_lanes (Array.init 32 Fun.id) with
  | Some (a, 0) -> Alcotest.(check int) "identity rank" 5 (F2.Bitmat.rank a)
  | _ -> Alcotest.fail "identity warp not recognized"

let suite =
  ( "f2",
    [
      Alcotest.test_case "linear pieces agree on entire domain" `Quick
        test_linear_pieces_entire_domain;
      Alcotest.test_case "nonlinear pieces rejected" `Quick
        test_nonlinear_pieces_rejected;
      Alcotest.test_case "chain composition = matrix product" `Quick
        test_composition_homomorphism;
      Alcotest.test_case "of_lanes verifies every lane" `Quick
        test_of_lanes_rejects_non_affine;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [
          prop_rank_nullity;
          prop_image;
          prop_row_reduce;
          prop_inverse;
          prop_mul_is_composition;
          prop_transpose;
          prop_layout_matrix_agrees;
          prop_oracle_matches_access;
        ] )
