(* Tests for the surface language: lexer, parser, elaboration, and the
   pretty-printer/parser round-trip. *)

open Lego_layout

let parse_ok text =
  match Lego_lang.Elab.layout_of_string text with
  | Ok g -> g
  | Error e -> Alcotest.failf "parse %S failed: %s" text e

let test_lexer () =
  let tokens = Lego_lang.Lexer.tokenize "OrderBy2([6, 6])." in
  Alcotest.(check int) "token count" 10 (List.length tokens);
  (match tokens with
  | { Lego_lang.Token.token = IDENT "OrderBy2"; pos } :: _ ->
    Alcotest.(check int) "line" 1 pos.Lego_lang.Token.line;
    Alcotest.(check int) "col" 1 pos.Lego_lang.Token.col
  | _ -> Alcotest.fail "first token");
  Alcotest.check_raises "bad character"
    (Lego_lang.Lexer.Lex_error
       ({ Lego_lang.Token.line = 1; col = 5 }, "unexpected character '#'"))
    (fun () -> ignore (Lego_lang.Lexer.tokenize "1, 2#"))

let test_parse_fig9 () =
  let g =
    parse_ok
      "OrderBy2(RegP([2,2],[2,1]), GenP(antidiag[3,3])).OrderBy4(RegP([2,3,2,3],[1,3,2,4])).GroupBy2([6,6])"
  in
  Alcotest.(check int) "apply [4,2]" 15 (Group_by.apply_ints g [ 4; 2 ])

let test_parse_sugar () =
  let g = parse_ok "TileOrderBy(Col(6, 4)).TileBy([3,2],[2,2])" in
  Alcotest.(check int) "numel" 24 (Group_by.numel g);
  Alcotest.(check (result unit string)) "bijective" (Ok ()) (Check.layout g);
  (* Equivalent to the programmatic construction. *)
  let direct =
    Sugar.tiled_view ~order:[ Sugar.col [ 6; 4 ] ] ~group:[ [ 3; 2 ]; [ 2; 2 ] ] ()
  in
  Alcotest.(check bool) "same as Sugar.tiled_view" true (Group_by.equal g direct)

let test_parse_row_col () =
  let g = parse_ok "OrderBy(Row(2, 3)).GroupBy([2, 3])" in
  Alcotest.(check int) "row-major" 5 (Group_by.apply_ints g [ 1; 2 ])

let test_parse_errors () =
  let expect_error text fragment =
    match Lego_lang.Elab.layout_of_string text with
    | Ok _ -> Alcotest.failf "%S should not parse" text
    | Error msg ->
      if
        not
          (Str.string_match
             (Str.regexp (".*" ^ Str.quote fragment ^ ".*"))
             msg 0)
      then Alcotest.failf "%S: error %S lacks %S" text msg fragment
  in
  expect_error "GroupBy(6, 6)" "expected";
  expect_error "OrderBy(RegP([2,2],[2,1]))" "must end in GroupBy";
  expect_error "GroupBy3([6,6])" "annotation";
  expect_error "OrderBy(RegP([2,2],[1,1])).GroupBy([2,2])" "duplicate";
  expect_error "OrderBy(GenP(nope[4,4])).GroupBy([4,4])" "no gallery bijection";
  expect_error "OrderBy(Row(2,2)).GroupBy([2,3])" "OrderBy covers 4 elements";
  expect_error "GroupBy([6,6]).GroupBy([6,6])" "only end a chain";
  (* Over-long literals must surface as positioned errors, not escape as
     a bare [Failure] from [int_of_string]. *)
  expect_error "GroupBy([99999999999999999999999999])" "does not fit";
  expect_error "GroupBy([99999999999999999999999999])" "1:10";
  expect_error "OrderBy99999999999999999999999(Row(2,2)).GroupBy([4])"
    "does not fit"

let test_parse_algebra () =
  (* product(a, b) of strided literals: the 2x2 transpose. *)
  let g =
    parse_ok "OrderBy(product(Strided([2],[2]), Strided([2],[1]))).GroupBy([2,2])"
  in
  let col = parse_ok "OrderBy(Col(2,2)).GroupBy([2,2])" in
  Alcotest.(check bool) "product = Col" true (Group_by.equal g col);
  (* The worked divide example: column tiles of the row-major 8x4 image. *)
  let d = parse_ok "OrderBy(divide(Row(8,4), Strided([4],[4]))).GroupBy([32])" in
  Alcotest.(check (result unit string)) "divide is a bijection" (Ok ())
    (Check.layout d);
  Alcotest.(check int) "first tile walks a column" 12 (Group_by.apply_ints d [ 3 ]);
  Alcotest.(check int) "next tile starts at the next column" 1
    (Group_by.apply_ints d [ 4 ]);
  (* Infix composition through a gallery bijection stays a bijection and
     agrees with composing the pieces by hand. *)
  let c = parse_ok "OrderBy(GenP(antidiag[4,4]) o RegP([4,4],[2,1])).GroupBy([4,4])" in
  Alcotest.(check (result unit string)) "composite is a bijection" (Ok ())
    (Check.layout c);
  let anti = Gallery.antidiag 4 in
  let tile = Piece.reg ~dims:[ 4; 4 ] ~sigma:(Sigma.of_one_based [ 2; 1 ]) in
  Shape.indices [ 4; 4 ]
  |> Seq.iter (fun idx ->
         let expect =
           Piece.apply_ints anti
             (Shape.unflatten_ints [ 4; 4 ] (Piece.apply_ints tile idx))
         in
         Alcotest.(check int) "composite apply" expect (Group_by.apply_ints c idx));
  (* Composition is read left-associatively. *)
  let l = parse_ok "OrderBy(Row(4,4) o Col(4,4) o Row(4,4)).GroupBy([4,4])" in
  let r = parse_ok "OrderBy((Row(4,4) o Col(4,4)) o Row(4,4)).GroupBy([4,4])" in
  Alcotest.(check bool) "left associative" true (Group_by.equal l r)

let test_algebra_errors () =
  let expect_error text fragment =
    match Lego_lang.Elab.layout_of_string text with
    | Ok _ -> Alcotest.failf "%S should not elaborate" text
    | Error msg ->
      if
        not
          (Str.string_match
             (Str.regexp (".*" ^ Str.quote fragment ^ ".*"))
             msg 0)
      then Alcotest.failf "%S: error %S lacks %S" text msg fragment
  in
  (* A failed side condition surfaces as the prover's positioned error. *)
  expect_error "OrderBy(Row(2,3) o Strided([2],[2])).GroupBy([6])"
    "left-divisibility";
  expect_error "OrderBy(Strided([2],[2])).GroupBy([2])" "bijectivity";
  expect_error "OrderBy(divide(Row(4,2), Strided([3],[1]))).GroupBy([8])" "size";
  expect_error "OrderBy(complement(GenP(antidiag[3,3]), 81)).GroupBy([9,9])"
    "not a strided layout"

let test_arity_suffixes_optional () =
  let with_suffix = parse_ok "OrderBy2(Row(6, 6)).GroupBy2([6,6])" in
  let without = parse_ok "OrderBy(Row(6, 6)).GroupBy([6,6])" in
  Alcotest.(check bool) "same layout" true (Group_by.equal with_suffix without)

(* Round-trip: pretty-print then re-parse of random layouts. *)
let gen_layout =
  let open QCheck2.Gen in
  let* d1 = oneofl [ 2; 3; 4 ] and* d2 = oneofl [ 2; 3; 4 ] in
  let dims = [ d1; d2 ] in
  let piece =
    oneof
      [
        (let+ sigma = oneofl (Sigma.all 2) in
         Piece.reg ~dims ~sigma);
        return (Gallery.reverse dims);
        (if d1 = d2 then return (Gallery.antidiag d1)
         else return (Gallery.reverse dims));
      ]
  in
  let* n_orders = int_range 0 2 in
  let+ pieces = list_repeat n_orders piece in
  let chain = List.map (fun p -> Order_by.make [ p ]) pieces in
  Group_by.make ~chain [ dims ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"pp then parse is identity" ~count:200 gen_layout
    (fun g ->
      match Lego_lang.Elab.roundtrip g with
      | Ok g' -> Group_by.equal g g'
      | Error _ -> false)

let suite =
  ( "lang",
    [
      Alcotest.test_case "lexer" `Quick test_lexer;
      Alcotest.test_case "figure 9 notation" `Quick test_parse_fig9;
      Alcotest.test_case "sugar notation" `Quick test_parse_sugar;
      Alcotest.test_case "Row/Col" `Quick test_parse_row_col;
      Alcotest.test_case "errors are reported" `Quick test_parse_errors;
      Alcotest.test_case "algebra operators" `Quick test_parse_algebra;
      Alcotest.test_case "algebra errors" `Quick test_algebra_errors;
      Alcotest.test_case "arity suffixes optional" `Quick
        test_arity_suffixes_optional;
    ]
    @ [ QCheck_alcotest.to_alcotest ~long:false prop_roundtrip ] )
