(* Semantics-preservation fuzz for the simplifier over the shared
   differential-testing corpus (lib/conform): for every layout, the raw
   and simplified symbolic apply/inv expressions must agree on every
   in-range index point, and the layout itself must be a bijection
   (Check.layout). *)

open Lego_symbolic
module E = Expr
module L = Lego_layout

let corpus = Lego_conform.Corpus.all

let var_names dims = List.mapi (fun k _ -> Printf.sprintf "i%d" k) dims

let test_gallery_bijections () =
  List.iter
    (fun (name, layout) ->
      match L.Check.layout layout with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: not a bijection: %s" name e)
    corpus

let test_apply_semantics_preserved () =
  List.iter
    (fun (name, layout) ->
      let dims = L.Group_by.dims layout in
      let names = var_names dims in
      let env = Sym.ranges_of layout in
      let raw = Sym.apply ~simplify:false layout in
      let simplified = Simplify.simplify ~env raw in
      Seq.iter
        (fun idx ->
          let bindings = List.combine names idx in
          let lookup v = List.assoc v bindings in
          let expect = E.eval ~env:lookup raw in
          let got = E.eval ~env:lookup simplified in
          if got <> expect then
            Alcotest.failf "%s: apply disagrees at [%s]: raw %d, simplified %d"
              name
              (String.concat ", " (List.map string_of_int idx))
              expect got)
        (L.Shape.indices dims))
    corpus

let test_inv_semantics_preserved () =
  List.iter
    (fun (name, layout) ->
      let numel = L.Group_by.numel layout in
      let env = Range.env_of_list [ ("p", Range.of_extent numel) ] in
      let raw = Sym.inv ~simplify:false layout in
      let simplified = List.map (Simplify.simplify ~env) raw in
      for p = 0 to numel - 1 do
        let lookup v =
          if v = "p" then p else Alcotest.failf "unexpected var %s" v
        in
        List.iteri
          (fun k (r, s) ->
            let expect = E.eval ~env:lookup r in
            let got = E.eval ~env:lookup s in
            if got <> expect then
              Alcotest.failf
                "%s: inv component %d disagrees at p=%d: raw %d, simplified %d"
                name k p expect got)
          (List.combine raw simplified)
      done)
    corpus

let test_simplified_apply_matches_concrete () =
  (* Not just raw == simplified: the simplified symbolic apply must also
     match the concrete integer-domain layout on every point. *)
  List.iter
    (fun (name, layout) ->
      let dims = L.Group_by.dims layout in
      let names = var_names dims in
      let env = Sym.ranges_of layout in
      let simplified =
        Simplify.simplify ~env (Sym.apply ~simplify:false layout)
      in
      Seq.iter
        (fun idx ->
          let bindings = List.combine names idx in
          let lookup v = List.assoc v bindings in
          let expect = L.Group_by.apply_ints layout idx in
          let got = E.eval ~env:lookup simplified in
          if got <> expect then
            Alcotest.failf "%s: symbolic apply disagrees at [%s]: %d vs %d"
              name
              (String.concat ", " (List.map string_of_int idx))
              got expect)
        (L.Shape.indices dims))
    corpus

let suite =
  ( "simplify-fuzz",
    [
      Alcotest.test_case "gallery layouts are bijections" `Quick
        test_gallery_bijections;
      Alcotest.test_case "apply: raw == simplified on all points" `Quick
        test_apply_semantics_preserved;
      Alcotest.test_case "inv: raw == simplified on all points" `Quick
        test_inv_semantics_preserved;
      Alcotest.test_case "simplified apply == concrete layout" `Quick
        test_simplified_apply_matches_concrete;
    ] )
