(* Tests for the layout autotuner (lib/tune): the masked-swizzle gallery
   family, the candidate space, the static predictor's agreement with the
   simulator, search determinism across pool sizes, and the legoc CLI
   overview. *)

module L = Lego_layout
module T = Lego_tune

(* --- Masked XOR swizzles -------------------------------------------------- *)

let swizzle_layout ~rows ~cols ~mask ~shift =
  L.Group_by.make
    ~chain:
      [ L.Order_by.make [ L.Gallery.xor_swizzle_masked ~rows ~cols ~mask ~shift ] ]
    [ [ rows; cols ] ]

let test_masked_swizzle_bijective () =
  List.iter
    (fun (rows, cols, mask, shift) ->
      match L.Check.layout (swizzle_layout ~rows ~cols ~mask ~shift) with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "swizzlex_m%d_s%d on %dx%d: %s" mask shift rows cols e)
    [
      (8, 8, 7, 0);   (* prefix mask, the classic swizzle *)
      (8, 8, 5, 1);   (* non-prefix mask, shifted key *)
      (16, 4, 3, 2);
      (4, 8, 0, 0);   (* mask 0 = row-major *)
      (1, 4, 1, 0);   (* single row *)
    ];
  (* Parameters are part of the identity: distinct (mask, shift) pairs
     give unequal pieces, equal pairs equal pieces. *)
  let p a b = L.Gallery.xor_swizzle_masked ~rows:8 ~cols:8 ~mask:a ~shift:b in
  Alcotest.(check bool) "same params equal" true (L.Piece.equal (p 5 1) (p 5 1));
  Alcotest.(check bool) "mask differs" false (L.Piece.equal (p 5 1) (p 7 1));
  Alcotest.(check bool) "shift differs" false (L.Piece.equal (p 5 1) (p 5 0))

let test_masked_swizzle_rejects_bad_params () =
  let bad f = Alcotest.(check bool) "rejected" true
      (match f () with
       | exception Invalid_argument _ -> true
       | _ -> false)
  in
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:6 ~mask:1 ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:8 ~mask:8 ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:8 ~mask:(-1) ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:0 ~cols:8 ~mask:1 ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:8 ~mask:1 ~shift:(-1))

let test_masked_swizzle_name_round_trip () =
  (* The printed name re-resolves through the gallery registry (this is
     what makes tuner winners re-parseable as notation). *)
  let piece = L.Gallery.xor_swizzle_masked ~rows:16 ~cols:8 ~mask:5 ~shift:1 in
  (match L.Gallery.lookup "swizzlex_m5_s1" [ 16; 8 ] ~args:[] with
  | Some p -> Alcotest.(check bool) "lookup equals constructor" true
      (L.Piece.equal p piece)
  | None -> Alcotest.fail "swizzlex_m5_s1 not found in gallery");
  (* Out-of-range mask for the given dims must not resolve. *)
  (match L.Gallery.lookup "swizzlex_m8_s0" [ 16; 8 ] ~args:[] with
  | None -> ()
  | Some _ -> Alcotest.fail "mask 8 must be rejected for 8 columns");
  let g = swizzle_layout ~rows:16 ~cols:8 ~mask:5 ~shift:1 in
  let printed = Format.asprintf "%a" L.Group_by.pp g in
  match Lego_lang.Elab.layout_of_string printed with
  | Error e -> Alcotest.failf "%S does not parse: %s" printed e
  | Ok g' ->
    Alcotest.(check bool) "notation round-trips" true (L.Group_by.equal g g')

(* --- Candidate space ------------------------------------------------------ *)

let test_space_closure_dedup_and_seed_stability () =
  let fps sp =
    List.map T.Fingerprint.of_layout (T.Space.closure sp)
  in
  let c0 = fps (T.Space.make ~rows:16 ~cols:8 ()) in
  Alcotest.(check bool) "non-empty" true (c0 <> []);
  let sorted = List.sort_uniq compare c0 in
  Alcotest.(check int) "closure has no duplicates" (List.length c0)
    (List.length sorted);
  (* Same seed, same sequence; different seed, same *set*. *)
  let c0' = fps (T.Space.make ~rows:16 ~cols:8 ()) in
  Alcotest.(check bool) "seed 0 reproducible" true (c0 = c0');
  let c5 = fps (T.Space.make ~seed:5 ~rows:16 ~cols:8 ()) in
  Alcotest.(check bool) "seeds enumerate the same set" true
    (List.sort compare c5 = List.sort compare c0);
  (* Non-power-of-two columns: no swizzle children anywhere. *)
  let odd = fps (T.Space.make ~rows:9 ~cols:9 ()) in
  Alcotest.(check bool) "no swizzles on 9x9" true
    (not
       (List.exists
          (fun fp ->
            let rec has i =
              i + 8 <= String.length fp
              && (String.sub fp i 8 = "swizzlex" || has (i + 1))
            in
            has 0)
          odd))

(* --- Predictor vs simulator ----------------------------------------------- *)

let prepend_swizzle ~mask ~shift g ~rows ~cols =
  L.Group_by.prepend
    (L.Order_by.make [ L.Gallery.xor_swizzle_masked ~rows ~cols ~mask ~shift ])
    g

let test_predictor_agrees_with_simulator () =
  let slot = T.Slot.matmul_smem () in
  let rows = slot.T.Slot.rows and cols = slot.T.Slot.cols in
  let rm = T.Slot.row_major ~rows ~cols in
  let sw = prepend_swizzle ~mask:(cols - 1) ~shift:0 rm ~rows ~cols in
  let check name g expect_cf =
    let sc = T.Predict.score g slot.T.Slot.phases in
    Alcotest.(check bool)
      (name ^ ": predictor verdict") expect_cf
      (T.Predict.conflict_free sc);
    let sim = slot.T.Slot.simulate ~fast:true g in
    Alcotest.(check bool)
      (name ^ ": simulator verdict") expect_cf
      (T.Slot.sim_conflict_free sim)
  in
  check "row-major" rm false;
  check "full-mask swizzle" sw true

(* --- Compiled layout closures ---------------------------------------------- *)

(* The corpus layouts plus a seeded Lgen batch: every flat index must map
   identically through the compiled closure and the structural
   interpreter — this is the contract that keeps fast-path simulations
   bit-identical to the effect-handler reference. *)
let compiled_test_layouts () =
  Lego_conform.Corpus.all
  @ List.init 8 (fun index ->
        ( Printf.sprintf "lgen-2026-%d" index,
          Lego_conform.Lgen.layout_of_seed ~seed:2026 ~index ))

let test_compiled_matches_interpreter () =
  List.iter
    (fun (name, g) ->
      let c = T.Compiled.compile g in
      let dims = T.Compiled.dims c in
      Alcotest.(check (list int)) (name ^ ": dims") (L.Group_by.dims g) dims;
      for flat = 0 to T.Compiled.numel c - 1 do
        let idx = L.Shape.unflatten_ints dims flat in
        let expect = L.Group_by.apply_ints g idx in
        let got = T.Compiled.apply_flat c flat in
        if got <> expect then
          Alcotest.failf "%s: flat %d: compiled %d <> interpreted %d" name flat
            got expect;
        let got' = T.Compiled.apply c idx in
        if got' <> expect then
          Alcotest.failf "%s: idx of flat %d: compiled %d <> interpreted %d"
            name flat got' expect
      done)
    (compiled_test_layouts ())

(* --- Predictor arithmetic vs simulator counters ---------------------------- *)

(* [Predict.bank_cycles] / [Predict.txn_count] must agree {e exactly}
   with what one [Simt.cost_shared] / [cost_global] warp round adds to
   the counters, for warp access patterns drawn from real layouts — the
   soundness condition that lets stage one prune for stage two. *)
let test_predict_arithmetic_matches_simt_costs () =
  let module G = Lego_gpusim in
  let device = G.Device.a100 in
  let buf, _ = G.Mem.create_arena ~label:"diff" G.Mem.F32 4096 ~cap:4096 in
  List.iter
    (fun (name, g) ->
      let c = T.Compiled.of_layout g in
      let n = T.Compiled.numel c in
      List.iteri
        (fun p stride ->
          let addrs =
            List.init device.G.Device.warp_size (fun t ->
                T.Compiled.apply_flat c (((t * stride) + p) mod n))
          in
          (* Shared: one warp round through the simulator's counter. *)
          let cnt = G.Simt.fresh_counters () in
          G.Simt.cost_shared device ~elem_bytes:4 cnt addrs;
          Alcotest.(check int)
            (Printf.sprintf "%s stride %d: bank cycles" name stride)
            (T.Predict.bank_cycles device ~elem_bytes:4 addrs)
            (int_of_float cnt.G.Simt.s_cycles);
          Alcotest.(check int)
            (Printf.sprintf "%s stride %d: accesses" name stride)
            (List.length addrs)
            (int_of_float cnt.G.Simt.s_accesses);
          (* Global: one warp round, cold L2 so every txn counts once. *)
          let cnt = G.Simt.fresh_counters () in
          let l2 = G.L2.create device in
          G.Simt.cost_global device l2 cnt
            (List.map (fun a -> (buf, a mod 4096)) addrs);
          Alcotest.(check int)
            (Printf.sprintf "%s stride %d: txns" name stride)
            (T.Predict.txn_count device ~elem_bytes:4
               (List.map (fun a -> a mod 4096) addrs))
            (int_of_float cnt.G.Simt.g_txns))
        [ 1; 2; 17; 32 ])
    (compiled_test_layouts ())

(* --- Slot fast path vs effect-handler reference ---------------------------- *)

let test_slot_fast_matches_slow () =
  List.iter
    (fun (slot : T.Slot.t) ->
      let rows = slot.T.Slot.rows and cols = slot.T.Slot.cols in
      let rm = T.Slot.row_major ~rows ~cols in
      let layouts =
        (* A second, conflict-shaping candidate per slot: the XOR swizzle
           where columns are a power of two, the anti-diagonal gallery
           layout for NW's 17-wide buffer. *)
        if cols land (cols - 1) = 0 then
          [ ("row-major", rm);
            ("swizzle", prepend_swizzle ~mask:7 ~shift:0 rm ~rows ~cols) ]
        else
          [ ("row-major", rm);
            ( "antidiag",
              L.Group_by.make
                ~chain:[ L.Order_by.make [ L.Gallery.antidiag rows ] ]
                [ [ rows; cols ] ] ) ]
      in
      List.iter
        (fun (lname, g) ->
          let fast = slot.T.Slot.simulate ~fast:true g in
          let slow = slot.T.Slot.simulate ~fast:false g in
          let msg field =
            Printf.sprintf "%s/%s: %s" slot.T.Slot.name lname field
          in
          Alcotest.(check (float 0.0)) (msg "time_s") slow.T.Slot.time_s
            fast.T.Slot.time_s;
          Alcotest.(check (float 0.0)) (msg "s_accesses")
            slow.T.Slot.s_accesses fast.T.Slot.s_accesses;
          Alcotest.(check (float 0.0)) (msg "s_cycles") slow.T.Slot.s_cycles
            fast.T.Slot.s_cycles)
        layouts)
    (T.Slot.all ())

(* --- Search: determinism and rediscovery ---------------------------------- *)

let search_opts jobs =
  { T.Tune.default_options with budget = 48; top = 4; beam = 8; jobs;
    conform = false }

let test_search_deterministic_across_jobs () =
  let slot = T.Slot.matmul_smem () in
  let r1 = T.Tune.search ~options:(search_opts 1) slot in
  let r4 = T.Tune.search ~options:(search_opts 4) slot in
  let key (sc : T.Tune.scored) =
    (sc.T.Tune.fingerprint, (Option.get sc.T.Tune.sim).T.Slot.time_s)
  in
  Alcotest.(check bool) "same winner" true
    (key r1.T.Tune.winner = key r4.T.Tune.winner);
  Alcotest.(check int) "same explored count" r1.T.Tune.explored
    r4.T.Tune.explored;
  Alcotest.(check bool) "same full ranking" true
    (List.map key r1.T.Tune.ranking = List.map key r4.T.Tune.ranking);
  (* The tiny budget still rediscovers the conflict-free swizzle. *)
  Alcotest.(check bool) "winner predicted conflict-free" true
    (T.Predict.conflict_free r1.T.Tune.winner.T.Tune.static_score);
  Alcotest.(check bool) "winner simulated conflict-free" true
    (T.Slot.sim_conflict_free (Option.get r1.T.Tune.winner.T.Tune.sim))

let toy_slot () =
  (* 3x3: no tilings (prime extents), no swizzles (not a power of two) —
     a five-candidate space the default budget covers exhaustively.  The
     fake simulation is a pure function of the layout, so the test stays
     fast and fully deterministic. *)
  let rows = 3 and cols = 3 in
  let phases =
    [
      T.Predict.Shared
        {
          elem_bytes = 4;
          lanes = (fun t -> if t < 9 then Some [ t / 3; t mod 3 ] else None);
        };
    ]
  in
  let simulate ~fast:_ g =
    {
      T.Slot.time_s = float_of_int (L.Group_by.apply_ints g [ 1; 2 ]);
      s_accesses = 9.0;
      s_cycles = 1.0;
    }
  in
  {
    T.Slot.name = "toy";
    descr = "3x3 toy space";
    rows;
    cols;
    phases;
    simulate;
    baselines = [];
    full_warps = false;
  }

let test_small_space_is_exhaustive () =
  let slot = toy_slot () in
  let r =
    T.Tune.search ~options:{ (search_opts 1) with budget = 64; top = 16 } slot
  in
  Alcotest.(check bool) "exhaustive" true r.T.Tune.exhaustive;
  Alcotest.(check int) "explored = space" r.T.Tune.space_size r.T.Tune.explored;
  Alcotest.(check int) "everything simulated" r.T.Tune.space_size
    (List.length r.T.Tune.ranking);
  (* The winner heads a ranking sorted by simulated time. *)
  let times =
    List.map (fun sc -> (Option.get sc.T.Tune.sim).T.Slot.time_s) r.T.Tune.ranking
  in
  Alcotest.(check bool) "ranking sorted" true
    (List.sort compare times = times)

let test_search_rejects_bad_options () =
  let slot = toy_slot () in
  List.iter
    (fun options ->
      Alcotest.(check bool) "rejected" true
        (match T.Tune.search ~options slot with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      { T.Tune.default_options with budget = 0 };
      { T.Tune.default_options with top = 0 };
      { T.Tune.default_options with beam = -1 };
    ]

(* --- legoc CLI overview ---------------------------------------------------- *)

let legoc_exe =
  (* Robust under both `dune runtest` (cwd = test dir) and `dune exec`
     (cwd = workspace root): the built binary sits next to this test in
     the build tree. *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/legoc.exe"

let run_legoc args =
  let cmd = Filename.quote_command legoc_exe args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let test_cli_overview_lists_subcommands () =
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun args ->
      let status, out = run_legoc args in
      Alcotest.(check bool)
        (Printf.sprintf "legoc %s exits 0" (String.concat " " args))
        true
        (status = Unix.WEXITED 0);
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "legoc %s mentions %S" (String.concat " " args) sub)
            true (contains out sub))
        [ "conform"; "tune"; "LAYOUT" ])
    [ []; [ "--help" ] ]

let suite =
  ( "tune",
    [
      Alcotest.test_case "masked swizzles are bijections" `Quick
        test_masked_swizzle_bijective;
      Alcotest.test_case "masked swizzle parameter validation" `Quick
        test_masked_swizzle_rejects_bad_params;
      Alcotest.test_case "swizzle name round-trips" `Quick
        test_masked_swizzle_name_round_trip;
      Alcotest.test_case "space closure: dedup + seed stability" `Quick
        test_space_closure_dedup_and_seed_stability;
      Alcotest.test_case "predictor agrees with simulator" `Quick
        test_predictor_agrees_with_simulator;
      Alcotest.test_case "compiled closures match interpreter" `Quick
        test_compiled_matches_interpreter;
      Alcotest.test_case "predictor arithmetic = simulator costs" `Quick
        test_predict_arithmetic_matches_simt_costs;
      Alcotest.test_case "slot fast path = effect-handler path" `Quick
        test_slot_fast_matches_slow;
      Alcotest.test_case "search deterministic across -j" `Quick
        test_search_deterministic_across_jobs;
      Alcotest.test_case "small space searched exhaustively" `Quick
        test_small_space_is_exhaustive;
      Alcotest.test_case "bad options rejected" `Quick
        test_search_rejects_bad_options;
      Alcotest.test_case "CLI overview lists subcommands" `Quick
        test_cli_overview_lists_subcommands;
    ] )
