(* Tests for the layout autotuner (lib/tune): the masked-swizzle gallery
   family, the candidate space, the static predictor's agreement with the
   simulator, search determinism across pool sizes, and the legoc CLI
   overview. *)

module L = Lego_layout
module T = Lego_tune

(* --- Masked XOR swizzles -------------------------------------------------- *)

let swizzle_layout ~rows ~cols ~mask ~shift =
  L.Group_by.make
    ~chain:
      [ L.Order_by.make [ L.Gallery.xor_swizzle_masked ~rows ~cols ~mask ~shift ] ]
    [ [ rows; cols ] ]

let test_masked_swizzle_bijective () =
  List.iter
    (fun (rows, cols, mask, shift) ->
      match L.Check.layout (swizzle_layout ~rows ~cols ~mask ~shift) with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "swizzlex_m%d_s%d on %dx%d: %s" mask shift rows cols e)
    [
      (8, 8, 7, 0);   (* prefix mask, the classic swizzle *)
      (8, 8, 5, 1);   (* non-prefix mask, shifted key *)
      (16, 4, 3, 2);
      (4, 8, 0, 0);   (* mask 0 = row-major *)
      (1, 4, 1, 0);   (* single row *)
    ];
  (* Parameters are part of the identity: distinct (mask, shift) pairs
     give unequal pieces, equal pairs equal pieces. *)
  let p a b = L.Gallery.xor_swizzle_masked ~rows:8 ~cols:8 ~mask:a ~shift:b in
  Alcotest.(check bool) "same params equal" true (L.Piece.equal (p 5 1) (p 5 1));
  Alcotest.(check bool) "mask differs" false (L.Piece.equal (p 5 1) (p 7 1));
  Alcotest.(check bool) "shift differs" false (L.Piece.equal (p 5 1) (p 5 0))

let test_masked_swizzle_rejects_bad_params () =
  let bad f = Alcotest.(check bool) "rejected" true
      (match f () with
       | exception Invalid_argument _ -> true
       | _ -> false)
  in
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:6 ~mask:1 ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:8 ~mask:8 ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:8 ~mask:(-1) ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:0 ~cols:8 ~mask:1 ~shift:0);
  bad (fun () -> L.Gallery.xor_swizzle_masked ~rows:4 ~cols:8 ~mask:1 ~shift:(-1))

let test_masked_swizzle_name_round_trip () =
  (* The printed name re-resolves through the gallery registry (this is
     what makes tuner winners re-parseable as notation). *)
  let piece = L.Gallery.xor_swizzle_masked ~rows:16 ~cols:8 ~mask:5 ~shift:1 in
  (match L.Gallery.lookup "swizzlex_m5_s1" [ 16; 8 ] ~args:[] with
  | Some p -> Alcotest.(check bool) "lookup equals constructor" true
      (L.Piece.equal p piece)
  | None -> Alcotest.fail "swizzlex_m5_s1 not found in gallery");
  (* Out-of-range mask for the given dims must not resolve. *)
  (match L.Gallery.lookup "swizzlex_m8_s0" [ 16; 8 ] ~args:[] with
  | None -> ()
  | Some _ -> Alcotest.fail "mask 8 must be rejected for 8 columns");
  let g = swizzle_layout ~rows:16 ~cols:8 ~mask:5 ~shift:1 in
  let printed = Format.asprintf "%a" L.Group_by.pp g in
  match Lego_lang.Elab.layout_of_string printed with
  | Error e -> Alcotest.failf "%S does not parse: %s" printed e
  | Ok g' ->
    Alcotest.(check bool) "notation round-trips" true (L.Group_by.equal g g')

(* --- Candidate space ------------------------------------------------------ *)

let test_space_closure_dedup_and_seed_stability () =
  let fps sp =
    List.map T.Fingerprint.of_layout (T.Space.closure sp)
  in
  let c0 = fps (T.Space.make ~rows:16 ~cols:8 ()) in
  Alcotest.(check bool) "non-empty" true (c0 <> []);
  let sorted = List.sort_uniq compare c0 in
  Alcotest.(check int) "closure has no duplicates" (List.length c0)
    (List.length sorted);
  (* Same seed, same sequence; different seed, same *set*. *)
  let c0' = fps (T.Space.make ~rows:16 ~cols:8 ()) in
  Alcotest.(check bool) "seed 0 reproducible" true (c0 = c0');
  let c5 = fps (T.Space.make ~seed:5 ~rows:16 ~cols:8 ()) in
  Alcotest.(check bool) "seeds enumerate the same set" true
    (List.sort compare c5 = List.sort compare c0);
  (* Non-power-of-two columns: no swizzle children anywhere. *)
  let odd = fps (T.Space.make ~rows:9 ~cols:9 ()) in
  Alcotest.(check bool) "no swizzles on 9x9" true
    (not
       (List.exists
          (fun fp ->
            let rec has i =
              i + 8 <= String.length fp
              && (String.sub fp i 8 = "swizzlex" || has (i + 1))
            in
            has 0)
          odd))

(* --- Streaming enumerator vs legacy eager closure -------------------------- *)

(* The pre-streaming eager closure, reconstructed from the public dag
   primitives: breadth-first levels over [children], de-duplicated by
   printed fingerprint.  The stream must reproduce it element for
   element on every non-scale space — the satellite regression guard
   for the Seq rewrite. *)
let legacy_closure sp =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let push g =
    let fp = T.Fingerprint.of_layout g in
    if Hashtbl.mem seen fp then false
    else begin
      Hashtbl.add seen fp ();
      out := g :: !out;
      true
    end
  in
  let rec levels frontier =
    match List.filter push frontier with
    | [] -> ()
    | fresh -> levels (List.concat_map (T.Space.children sp) fresh)
  in
  levels (T.Space.roots sp);
  List.rev !out

let test_stream_matches_legacy_closure () =
  List.iter
    (fun (label, sp) ->
      let want = List.map T.Fingerprint.of_layout (legacy_closure sp) in
      let got = List.map T.Fingerprint.of_layout (T.Space.closure sp) in
      Alcotest.(check bool) (label ^ ": same sequence") true (want = got);
      Alcotest.(check int) (label ^ ": count agrees") (List.length want)
        (T.Space.count sp))
    [
      ("16x8", T.Space.make ~rows:16 ~cols:8 ());
      ("16x8 seed5", T.Space.make ~seed:5 ~rows:16 ~cols:8 ());
      ("9x9", T.Space.make ~rows:9 ~cols:9 ());
      ("16x8 classes", T.Space.make ~classes:true ~rows:16 ~cols:8 ());
      ("16x8 composed", T.Space.make ~composed:true ~rows:16 ~cols:8 ());
    ]

let prop_stream_no_duplicate_fingerprints =
  QCheck2.Test.make ~name:"stream yields no duplicate fingerprints" ~count:25
    ~print:(fun (r, c, seed, scale, classes, composed) ->
      Printf.sprintf "rows=%d cols=%d seed=%d scale=%b classes=%b composed=%b"
        r c seed scale classes composed)
    QCheck2.Gen.(
      oneofl [ 2; 3; 4; 6; 8; 9; 12; 16 ] >>= fun rows ->
      oneofl [ 2; 3; 4; 6; 8; 9; 16 ] >>= fun cols ->
      int_range 0 7 >>= fun seed ->
      bool >>= fun scale ->
      bool >>= fun classes ->
      bool >>= fun composed ->
      pure (rows, cols, seed, scale, classes, composed))
    (fun (rows, cols, seed, scale, classes, composed) ->
      let sp =
        T.Space.make ~seed ~classes ~composed ~scale ~rows ~cols ()
      in
      let fps =
        List.of_seq (Seq.map T.Fingerprint.of_layout (T.Space.stream sp))
      in
      List.length fps = List.length (List.sort_uniq compare fps)
      && T.Space.count sp = List.length fps
      && (scale
         || fps = List.map T.Fingerprint.of_layout (legacy_closure sp)))

let test_scale_space_product_axes () =
  let base = T.Space.make ~rows:32 ~cols:8 () in
  let scaled = T.Space.make ~rows:32 ~cols:8 ~scale:true () in
  let nb = T.Space.count base and ns = T.Space.count scaled in
  Alcotest.(check bool)
    (Printf.sprintf "scale axes multiply the space (%d -> %d)" nb ns)
    true
    (ns > 5 * nb);
  (* The base dag is a prefix of the scale stream: same search, more
     tail — a budget covering only the prefix sees the old space. *)
  let prefix =
    List.of_seq
      (Seq.map T.Fingerprint.of_layout (Seq.take nb (T.Space.stream scaled)))
  in
  Alcotest.(check bool) "base closure is the stream's prefix" true
    (prefix = List.map T.Fingerprint.of_layout (T.Space.closure base))

(* --- Bounded top-K ---------------------------------------------------------- *)

let rec take_k n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take_k (n - 1) xs

let prop_topk_equals_sort_take =
  QCheck2.Test.make ~name:"bounded top-K = sort |> take K" ~count:200
    ~print:(fun (k, xs) ->
      Printf.sprintf "k=%d xs=[%s]" k
        (String.concat ";" (List.map string_of_int xs)))
    QCheck2.Gen.(
      pair (int_range 1 20) (list_size (int_range 0 200) (int_range (-50) 50)))
    (fun (k, xs) ->
      let tk = T.Topk.create ~cap:k ~cmp:compare in
      List.iter (T.Topk.add tk) xs;
      T.Topk.sorted tk = take_k k (List.sort compare xs)
      && T.Topk.size tk = min k (List.length xs))

(* --- Predictor vs simulator ----------------------------------------------- *)

let prepend_swizzle ~mask ~shift g ~rows ~cols =
  L.Group_by.prepend
    (L.Order_by.make [ L.Gallery.xor_swizzle_masked ~rows ~cols ~mask ~shift ])
    g

let test_predictor_agrees_with_simulator () =
  let slot = T.Slot.matmul_smem () in
  let rows = slot.T.Slot.rows and cols = slot.T.Slot.cols in
  let rm = T.Slot.row_major ~rows ~cols in
  let sw = prepend_swizzle ~mask:(cols - 1) ~shift:0 rm ~rows ~cols in
  let check name g expect_cf =
    let sc = T.Predict.score g slot.T.Slot.phases in
    Alcotest.(check bool)
      (name ^ ": predictor verdict") expect_cf
      (T.Predict.conflict_free sc);
    let sim = slot.T.Slot.simulate ~fast:true g in
    Alcotest.(check bool)
      (name ^ ": simulator verdict") expect_cf
      (T.Slot.sim_conflict_free sim)
  in
  check "row-major" rm false;
  check "full-mask swizzle" sw true

(* --- Compiled layout closures ---------------------------------------------- *)

(* The corpus layouts plus a seeded Lgen batch: every flat index must map
   identically through the compiled closure and the structural
   interpreter — this is the contract that keeps fast-path simulations
   bit-identical to the effect-handler reference. *)
let compiled_test_layouts () =
  Lego_conform.Corpus.all
  @ List.init 8 (fun index ->
        ( Printf.sprintf "lgen-2026-%d" index,
          Lego_conform.Lgen.layout_of_seed ~seed:2026 ~index ))

let test_compiled_matches_interpreter () =
  List.iter
    (fun (name, g) ->
      let c = T.Compiled.compile g in
      let dims = T.Compiled.dims c in
      Alcotest.(check (list int)) (name ^ ": dims") (L.Group_by.dims g) dims;
      for flat = 0 to T.Compiled.numel c - 1 do
        let idx = L.Shape.unflatten_ints dims flat in
        let expect = L.Group_by.apply_ints g idx in
        let got = T.Compiled.apply_flat c flat in
        if got <> expect then
          Alcotest.failf "%s: flat %d: compiled %d <> interpreted %d" name flat
            got expect;
        let got' = T.Compiled.apply c idx in
        if got' <> expect then
          Alcotest.failf "%s: idx of flat %d: compiled %d <> interpreted %d"
            name flat got' expect
      done)
    (compiled_test_layouts ())

(* --- Predictor arithmetic vs simulator counters ---------------------------- *)

(* [Predict.bank_cycles] / [Predict.txn_count] must agree {e exactly}
   with what one [Simt.cost_shared] / [cost_global] warp round adds to
   the counters, for warp access patterns drawn from real layouts — the
   soundness condition that lets stage one prune for stage two. *)
let test_predict_arithmetic_matches_simt_costs () =
  let module G = Lego_gpusim in
  let device = G.Device.a100 in
  let buf, _ = G.Mem.create_arena ~label:"diff" G.Mem.F32 4096 ~cap:4096 in
  List.iter
    (fun (name, g) ->
      let c = T.Compiled.of_layout g in
      let n = T.Compiled.numel c in
      List.iteri
        (fun p stride ->
          let addrs =
            List.init device.G.Device.warp_size (fun t ->
                T.Compiled.apply_flat c (((t * stride) + p) mod n))
          in
          (* Shared: one warp round through the simulator's counter. *)
          let cnt = G.Simt.fresh_counters () in
          G.Simt.cost_shared device ~elem_bytes:4 cnt addrs;
          Alcotest.(check int)
            (Printf.sprintf "%s stride %d: bank cycles" name stride)
            (T.Predict.bank_cycles device ~elem_bytes:4 addrs)
            (int_of_float cnt.G.Simt.s_cycles);
          Alcotest.(check int)
            (Printf.sprintf "%s stride %d: accesses" name stride)
            (List.length addrs)
            (int_of_float cnt.G.Simt.s_accesses);
          (* Global: one warp round, cold L2 so every txn counts once. *)
          let cnt = G.Simt.fresh_counters () in
          let l2 = G.L2.create device in
          G.Simt.cost_global device l2 cnt
            (List.map (fun a -> (buf, a mod 4096)) addrs);
          Alcotest.(check int)
            (Printf.sprintf "%s stride %d: txns" name stride)
            (T.Predict.txn_count device ~elem_bytes:4
               (List.map (fun a -> a mod 4096) addrs))
            (int_of_float cnt.G.Simt.g_txns))
        [ 1; 2; 17; 32 ])
    (compiled_test_layouts ())

(* --- Slot fast path vs effect-handler reference ---------------------------- *)

let test_slot_fast_matches_slow () =
  List.iter
    (fun (slot : T.Slot.t) ->
      let rows = slot.T.Slot.rows and cols = slot.T.Slot.cols in
      let rm = T.Slot.row_major ~rows ~cols in
      let layouts =
        (* A second, conflict-shaping candidate per slot: the XOR swizzle
           where columns are a power of two, the anti-diagonal gallery
           layout for NW's 17-wide buffer. *)
        if cols land (cols - 1) = 0 then
          [ ("row-major", rm);
            ("swizzle", prepend_swizzle ~mask:7 ~shift:0 rm ~rows ~cols) ]
        else
          [ ("row-major", rm);
            ( "antidiag",
              L.Group_by.make
                ~chain:[ L.Order_by.make [ L.Gallery.antidiag rows ] ]
                [ [ rows; cols ] ] ) ]
      in
      List.iter
        (fun (lname, g) ->
          let fast = slot.T.Slot.simulate ~fast:true g in
          let slow = slot.T.Slot.simulate ~fast:false g in
          let msg field =
            Printf.sprintf "%s/%s: %s" slot.T.Slot.name lname field
          in
          Alcotest.(check (float 0.0)) (msg "time_s") slow.T.Slot.time_s
            fast.T.Slot.time_s;
          Alcotest.(check (float 0.0)) (msg "s_accesses")
            slow.T.Slot.s_accesses fast.T.Slot.s_accesses;
          Alcotest.(check (float 0.0)) (msg "s_cycles") slow.T.Slot.s_cycles
            fast.T.Slot.s_cycles)
        layouts)
    (T.Slot.all ())

(* --- Search: determinism and rediscovery ---------------------------------- *)

let search_opts jobs =
  { T.Tune.default_options with budget = 48; top = 4; jobs; conform = false }

let test_search_deterministic_across_jobs () =
  let slot = T.Slot.matmul_smem () in
  let r1 = T.Tune.search ~options:(search_opts 1) slot in
  let r4 = T.Tune.search ~options:(search_opts 4) slot in
  let key (sc : T.Tune.scored) =
    (sc.T.Tune.fingerprint, (Option.get sc.T.Tune.sim).T.Slot.time_s)
  in
  Alcotest.(check bool) "same winner" true
    (key r1.T.Tune.winner = key r4.T.Tune.winner);
  Alcotest.(check int) "same explored count" r1.T.Tune.explored
    r4.T.Tune.explored;
  Alcotest.(check bool) "same full ranking" true
    (List.map key r1.T.Tune.ranking = List.map key r4.T.Tune.ranking);
  (* The tiny budget still rediscovers the conflict-free swizzle. *)
  Alcotest.(check bool) "winner predicted conflict-free" true
    (T.Predict.conflict_free r1.T.Tune.winner.T.Tune.static_score);
  Alcotest.(check bool) "winner simulated conflict-free" true
    (T.Slot.sim_conflict_free (Option.get r1.T.Tune.winner.T.Tune.sim))

(* --- Staged funnel: sampled rung, determinism, cache ------------------------ *)

let scored_key (sc : T.Tune.scored) =
  (sc.T.Tune.fingerprint, (Option.get sc.T.Tune.sim).T.Slot.time_s)

let result_key (r : T.Tune.result) =
  ( scored_key r.T.Tune.winner,
    List.map scored_key r.T.Tune.ranking,
    r.T.Tune.explored,
    r.T.Tune.oracle_scored,
    r.T.Tune.sampled_scored,
    r.T.Tune.sim_scored )

let test_funnel_sampled_rung_accounting () =
  let slot = T.Slot.matmul_smem () in
  let options = { (search_opts 1) with sample = 16 } in
  let r = T.Tune.search ~options slot in
  Alcotest.(check int) "explored = budget" 48 r.T.Tune.explored;
  Alcotest.(check int) "sampled rung width" 16 r.T.Tune.sampled_scored;
  Alcotest.(check int) "full rung width" options.T.Tune.top
    (List.length r.T.Tune.ranking);
  Alcotest.(check int) "sim_scored = static + both rungs"
    (48 + 16 + options.T.Tune.top)
    r.T.Tune.sim_scored;
  (* Successive halving widens what reaches simulation (16 sampled
     instead of 4 full), so the funnel's winner can only improve on the
     two-stage search's: the matmul sampled sim scales every counter by
     the block count exactly, so promotion by sampled time finds the
     true best-by-time of the whole retained heap. *)
  let r0 = T.Tune.search ~options:(search_opts 1) slot in
  let time r = (Option.get r.T.Tune.winner.T.Tune.sim).T.Slot.time_s in
  Alcotest.(check bool) "funnel winner no slower than two-stage winner" true
    (time r <= time r0)

let test_funnel_deterministic_across_jobs_and_runs () =
  let slot = T.Slot.matmul_smem () in
  let opts jobs = { (search_opts jobs) with sample = 16; seed = 3 } in
  let r1 = T.Tune.search ~options:(opts 1) slot in
  let r4 = T.Tune.search ~options:(opts 4) slot in
  let r1' = T.Tune.search ~options:(opts 1) slot in
  Alcotest.(check bool) "-j1 = -j4 (winner, top-K, counters)" true
    (result_key r1 = result_key r4);
  Alcotest.(check bool) "same seed, same run" true
    (result_key r1 = result_key r1')

let test_cache_reuses_without_changing_results () =
  let slot = T.Slot.matmul_smem () in
  let options = search_opts 1 in
  let cold = T.Tune.search ~options slot in
  let cache = T.Cache.create () in
  let r1 = T.Tune.search ~options ~cache slot in
  let h1 = T.Cache.hits cache in
  let r2 = T.Tune.search ~options ~cache slot in
  Alcotest.(check bool) "cacheless = cold cache" true
    (result_key cold = result_key r1);
  Alcotest.(check bool) "warm cache: identical result" true
    (result_key r1 = result_key r2);
  Alcotest.(check bool)
    (Printf.sprintf "second search hit the cache (%d -> %d hits)" h1
       (T.Cache.hits cache))
    true
    (T.Cache.hits cache > h1);
  (* A different slot shares the cache object without key collisions. *)
  let nw = T.Slot.nw_smem () in
  let rnw = T.Tune.search ~options ~cache nw in
  let rnw' = T.Tune.search ~options nw in
  Alcotest.(check bool) "cross-slot isolation" true
    (result_key rnw = result_key rnw')

(* Satellite regression: on the tiny nw space with expensive
   per-candidate sims, -j2 used to run ~25% slower than -j1
   (oversubscribed domains + stop-the-world GC handshakes).  With the
   hardware clamp and adaptive chunking, parallel never loses more
   than measurement noise.  The search itself is only ~25ms of work, so
   the two sides are measured in alternating rounds (same load profile)
   and each keeps its best-of-5. *)
let test_nw_parallel_scaling_no_regression () =
  let slot = T.Slot.nw_smem () in
  let one jobs =
    (T.Tune.search ~options:(search_opts jobs) slot).T.Tune.candidates_per_s
  in
  let measure rounds =
    let j1 = ref 0.0 and j2 = ref 0.0 in
    for _ = 1 to rounds do
      j1 := Float.max !j1 (one 1);
      j2 := Float.max !j2 (one 2)
    done;
    (!j1, !j2)
  in
  let j1, j2 =
    let j1, j2 = measure 5 in
    (* Inside the full suite a GC-pressure or scheduling burst can still
       skew one side of a ~25ms measurement; escalate once before
       declaring a regression. *)
    if j2 >= 0.9 *. j1 then (j1, j2) else measure 12
  in
  Alcotest.(check bool)
    (Printf.sprintf "nw j2 %.1f >= 0.9 * j1 %.1f cand/s" j2 j1)
    true
    (j2 >= 0.9 *. j1)

let toy_slot () =
  (* 3x3: no tilings (prime extents), no swizzles (not a power of two) —
     a five-candidate space the default budget covers exhaustively.  The
     fake simulation is a pure function of the layout, so the test stays
     fast and fully deterministic. *)
  let rows = 3 and cols = 3 in
  let phases =
    [
      T.Predict.Shared
        {
          elem_bytes = 4;
          lanes = (fun t -> if t < 9 then Some [ t / 3; t mod 3 ] else None);
        };
    ]
  in
  let simulate ~fast:_ g =
    {
      T.Slot.time_s = float_of_int (L.Group_by.apply_ints g [ 1; 2 ]);
      s_accesses = 9.0;
      s_cycles = 1.0;
      g_txns = 0.0;
    }
  in
  {
    T.Slot.name = "toy";
    descr = "3x3 toy space";
    rows;
    cols;
    device = Lego_gpusim.Device.a100;
    smem_dtype = Lego_gpusim.Mem.F32;
    phases;
    simulate;
    simulate_sampled = None;
    baselines = [];
    full_warps = false;
  }

let test_small_space_is_exhaustive () =
  let slot = toy_slot () in
  let r =
    T.Tune.search ~options:{ (search_opts 1) with budget = 64; top = 16 } slot
  in
  Alcotest.(check bool) "exhaustive" true r.T.Tune.exhaustive;
  Alcotest.(check int) "explored = space" r.T.Tune.space_size r.T.Tune.explored;
  Alcotest.(check int) "everything simulated" r.T.Tune.space_size
    (List.length r.T.Tune.ranking);
  (* The winner heads a ranking sorted by simulated time. *)
  let times =
    List.map (fun sc -> (Option.get sc.T.Tune.sim).T.Slot.time_s) r.T.Tune.ranking
  in
  Alcotest.(check bool) "ranking sorted" true
    (List.sort compare times = times)

(* --- Algebra-built composed candidates ------------------------------------- *)

(* The composed family (masked swizzles composed with logical divides
   through the prover-discharged algebra) must contain a member that
   costs exactly the known conflict-free full-mask swizzle, and a search
   over the composed-extended space must still land on a conflict-free
   winner for the matmul slot. *)
let test_composed_space_rediscovers_swizzle () =
  let slot = T.Slot.matmul_smem () in
  let rows = slot.T.Slot.rows and cols = slot.T.Slot.cols in
  let sp = T.Space.make ~composed:true ~rows ~cols () in
  let family = T.Space.composed sp in
  Alcotest.(check bool) "composed family non-empty" true (family <> []);
  (* The swizzled composites are GenP leaves (no swizzle stacks on
     them); the bare divides stay strided RegP candidates. *)
  Alcotest.(check bool) "family contains GenP composites" true
    (List.exists T.Space.has_gen family);
  Alcotest.(check bool) "family contains strided divides" true
    (List.exists (fun g -> not (T.Space.has_gen g)) family);
  let sim g = (slot.T.Slot.simulate ~fast:true g).T.Slot.time_s in
  let swz_time =
    sim
      (prepend_swizzle ~mask:(cols - 1) ~shift:0
         (T.Slot.row_major ~rows ~cols)
         ~rows ~cols)
  in
  Alcotest.(check bool) "a composed member matches the swizzle cost" true
    (List.exists (fun g -> sim g = swz_time) family);
  let options = { (search_opts 2) with T.Tune.composed = true } in
  let r = T.Tune.search ~options slot in
  Alcotest.(check bool) "winner predicted conflict-free" true
    (T.Predict.conflict_free r.T.Tune.winner.T.Tune.static_score);
  Alcotest.(check bool) "winner simulated conflict-free" true
    (T.Slot.sim_conflict_free (Option.get r.T.Tune.winner.T.Tune.sim));
  (* Without the flag the composed family stays out of the space. *)
  Alcotest.(check (list bool)) "family gated by the flag" []
    (List.map (fun _ -> true) (T.Space.composed (T.Space.make ~rows ~cols ())))

let test_search_rejects_bad_options () =
  let slot = toy_slot () in
  List.iter
    (fun options ->
      Alcotest.(check bool) "rejected" true
        (match T.Tune.search ~options slot with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      { T.Tune.default_options with budget = 0 };
      { T.Tune.default_options with top = 0 };
      { T.Tune.default_options with sample = -1 };
    ]

(* --- Swizzle-name parsing: canonical decimal only -------------------------- *)

let test_parse_swizzlex_decimal_only () =
  (* Regression: [int_of_string_opt] accepts hex/octal/binary and
     underscore separators, so "swizzlex_m0x1f_s0" used to alias
     "swizzlex_m31_s0" under a different name — breaking name
     round-trips, [Piece.equal] on re-parsed winners, and every
     name-keyed memo.  Only the canonical decimal spelling may
     resolve. *)
  (match L.Gallery.parse_swizzlex "swizzlex_m31_s0" with
  | Some (31, 0) -> ()
  | _ -> Alcotest.fail "canonical decimal form must parse");
  (match L.Gallery.parse_swizzlex "swizzlex_m5_s12" with
  | Some (5, 12) -> ()
  | _ -> Alcotest.fail "multi-digit shift must parse");
  List.iter
    (fun name ->
      match L.Gallery.parse_swizzlex name with
      | None -> ()
      | Some (m, s) ->
        Alcotest.failf "%S must not parse (got mask %d shift %d)" name m s)
    [
      "swizzlex_m0x1f_s0" (* hex alias of m31 *);
      "swizzlex_m0o17_s0" (* octal *);
      "swizzlex_m0b101_s0" (* binary *);
      "swizzlex_m1_0_s0" (* underscore separator *);
      "swizzlex_m-1_s0" (* negative *);
      "swizzlex_m05_s0" (* leading zero *);
      "swizzlex_m3_s00" (* leading zero in shift *);
      "swizzlex_m_s0" (* empty mask *);
      "swizzlex_m3_s" (* empty shift *);
    ];
  (* The registry path agrees: aliases do not resolve to pieces. *)
  (match L.Gallery.lookup "swizzlex_m0x1f_s0" [ 128; 32 ] ~args:[] with
  | None -> ()
  | Some _ -> Alcotest.fail "hex alias must not resolve in the gallery");
  match L.Gallery.lookup "swizzlex_m1_0_s0" [ 128; 32 ] ~args:[] with
  | None -> ()
  | Some _ -> Alcotest.fail "underscore alias must not resolve in the gallery"

(* --- F2 oracle vs compiled scoring and measured counters ------------------- *)

let pow2_slots () =
  List.filter
    (fun (s : T.Slot.t) ->
      s.T.Slot.cols land (s.T.Slot.cols - 1) = 0 && s.T.Slot.cols > 1)
    (T.Slot.all ())

let slot_elem_bytes (slot : T.Slot.t) =
  List.fold_left
    (fun acc -> function
      | T.Predict.Shared { elem_bytes; _ } -> max acc elem_bytes
      | T.Predict.Global _ -> acc)
    1 slot.T.Slot.phases

let family_layouts (slot : T.Slot.t) =
  let rows = slot.T.Slot.rows and cols = slot.T.Slot.cols in
  let sp =
    T.Space.make ~classes:true ~elem_bytes:(slot_elem_bytes slot) ~rows ~cols ()
  in
  ( sp,
    List.map
      (fun (mask, shift) ->
        ( (mask, shift),
          prepend_swizzle ~mask ~shift (T.Slot.row_major ~rows ~cols) ~rows
            ~cols ))
      (T.Space.swizzle_family sp) )

(* Over the {e entire} masked-swizzle family of each power-of-two slot,
   the closed-form oracle score must equal the compiled address-level
   score bit for bit — the oracle is exact, not approximate. *)
let test_oracle_score_matches_compiled_full_family () =
  List.iter
    (fun (slot : T.Slot.t) ->
      let _, fam = family_layouts slot in
      List.iter
        (fun ((mask, shift), g) ->
          let compiled = T.Predict.score g slot.T.Slot.phases in
          let oracle = T.Predict.score ~oracle:true g slot.T.Slot.phases in
          if compiled <> oracle then
            Alcotest.failf "%s m%d_s%d: compiled %s <> oracle %s"
              slot.T.Slot.name mask shift
              (Format.asprintf "%a" T.Predict.pp compiled)
              (Format.asprintf "%a" T.Predict.pp oracle);
          (* Every family member is affine, so the oracle path must
             actually engage (not silently fall back). *)
          Alcotest.(check bool)
            (Printf.sprintf "%s m%d_s%d linear" slot.T.Slot.name mask shift)
            true
            (T.Predict.linear_of g <> None))
        fam)
    (pow2_slots ())

(* The oracle's per-phase cycle counts, summed over the slot's phase
   list, must reproduce the measured simulator counters exactly: each
   slot kernel runs every predicted phase a fixed number of times (the
   warp-round multiplier, a structural constant of the kernel), so
   [simulated = k * predicted] with one integer [k] across the whole
   family — any per-member deviation would break the equality. *)
let test_oracle_matches_measured_counters () =
  List.iter
    (fun (slot : T.Slot.t) ->
      let _, fam = family_layouts slot in
      let k = ref 0 in
      List.iter
        (fun ((mask, shift), g) ->
          let sc = T.Predict.score ~oracle:true g slot.T.Slot.phases in
          let sim = slot.T.Slot.simulate ~fast:true g in
          let name = Printf.sprintf "%s m%d_s%d" slot.T.Slot.name mask shift in
          let acc = int_of_float sim.T.Slot.s_accesses in
          if acc mod sc.T.Predict.smem_accesses <> 0 then
            Alcotest.failf "%s: %d accesses not a multiple of predicted %d"
              name acc sc.T.Predict.smem_accesses;
          let k' = acc / sc.T.Predict.smem_accesses in
          if !k = 0 then k := k';
          Alcotest.(check int) (name ^ ": warp-round multiplier") !k k';
          Alcotest.(check int)
            (name ^ ": measured cycles = k * predicted")
            (!k * sc.T.Predict.smem_cycles)
            (int_of_float sim.T.Slot.s_cycles))
        fam;
      (* A Simt effect-handler subsample: the fast path is bit-identical
         by contract (and tested above), but pin a few members to the
         reference interpreter directly. *)
      List.iter
        (fun ((mask, shift), g) ->
          if (mask, shift) = (0, 0) || (mask = 7 && shift = 2) then begin
            let sc = T.Predict.score ~oracle:true g slot.T.Slot.phases in
            let sim = slot.T.Slot.simulate ~fast:false g in
            Alcotest.(check int)
              (Printf.sprintf "%s m%d_s%d: Simt cycles" slot.T.Slot.name mask
                 shift)
              (!k * sc.T.Predict.smem_cycles)
              (int_of_float sim.T.Slot.s_cycles)
          end)
        fam)
    (pow2_slots ())

(* --- F2 equivalence classes ------------------------------------------------ *)

let test_swizzle_classes_partition_and_cost_constancy () =
  List.iter
    (fun (slot : T.Slot.t) ->
      let sp, fam = family_layouts slot in
      let classes = T.Space.swizzle_classes sp in
      (* The classes partition the full family. *)
      let members =
        List.concat_map (fun c -> c.T.Space.sw_members) classes
      in
      Alcotest.(check int)
        (slot.T.Slot.name ^ ": classes cover the family")
        (List.length fam) (List.length members);
      Alcotest.(check int)
        (slot.T.Slot.name ^ ": members are distinct")
        (List.length members)
        (List.length (List.sort_uniq compare members));
      (* The collapse is real: far fewer classes than members. *)
      Alcotest.(check bool)
        (slot.T.Slot.name ^ ": classes < family / 4")
        true
        (4 * List.length classes <= List.length fam);
      (* Every member of a class scores identically on the slot's phase
         list — the invariant that makes searching one representative
         per class complete. *)
      let score_of =
        let tbl = Hashtbl.create 256 in
        List.iter
          (fun (ms, g) ->
            let s = T.Predict.score ~oracle:true g slot.T.Slot.phases in
            Hashtbl.add tbl ms (s.T.Predict.smem_cycles, s.T.Predict.gmem_txns))
          fam;
        Hashtbl.find tbl
      in
      List.iter
        (fun c ->
          let rep = score_of (c.T.Space.sw_mask, c.T.Space.sw_shift) in
          List.iter
            (fun m ->
              if score_of m <> rep then
                Alcotest.failf "%s: class (m%d,s%d) member (m%d,s%d) scores differently"
                  slot.T.Slot.name c.T.Space.sw_mask c.T.Space.sw_shift (fst m)
                  (snd m))
            c.T.Space.sw_members)
        classes)
    (pow2_slots ())

(* --- Oracle-mode search ----------------------------------------------------- *)

let test_oracle_search_reduction () =
  let slot = T.Slot.matmul_smem () in
  let base = { T.Tune.default_options with jobs = 2; conform = false } in
  let pr6 = T.Tune.search ~options:base slot in
  let f2 = T.Tune.search ~options:{ base with oracle = true } slot in
  (* Both paths find a conflict-free swizzle... *)
  Alcotest.(check bool) "f2 winner conflict-free" true
    (T.Slot.sim_conflict_free (Option.get f2.T.Tune.winner.T.Tune.sim));
  Alcotest.(check bool) "f2 winner as good as sampled path" true
    ((Option.get f2.T.Tune.winner.T.Tune.sim).T.Slot.time_s
    <= (Option.get pr6.T.Tune.winner.T.Tune.sim).T.Slot.time_s);
  (* ...but the F2 path simulates an order of magnitude fewer candidates
     at address level: stage one is entirely closed-form. *)
  Alcotest.(check int) "sampled path scores nothing in closed form" 0
    pr6.T.Tune.oracle_scored;
  Alcotest.(check bool)
    (Printf.sprintf "f2 sim_scored %d is >= 10x below sampled %d"
       f2.T.Tune.sim_scored pr6.T.Tune.sim_scored)
    true
    (10 * f2.T.Tune.sim_scored <= pr6.T.Tune.sim_scored);
  (* Oracle mode changes the economics, never the verdicts: winners of
     both searches score identically under both scorers. *)
  List.iter
    (fun (sc : T.Tune.scored) ->
      Alcotest.(check bool) "winner scores agree across paths" true
        (T.Predict.score sc.T.Tune.layout slot.T.Slot.phases
        = T.Predict.score ~oracle:true sc.T.Tune.layout slot.T.Slot.phases))
    [ pr6.T.Tune.winner; f2.T.Tune.winner ]

(* --- legoc CLI overview ---------------------------------------------------- *)

let legoc_exe =
  (* Robust under both `dune runtest` (cwd = test dir) and `dune exec`
     (cwd = workspace root): the built binary sits next to this test in
     the build tree. *)
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/legoc.exe"

let run_legoc args =
  let cmd = Filename.quote_command legoc_exe args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 256 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  (status, Buffer.contents buf)

let test_cli_overview_lists_subcommands () =
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun args ->
      let status, out = run_legoc args in
      Alcotest.(check bool)
        (Printf.sprintf "legoc %s exits 0" (String.concat " " args))
        true
        (status = Unix.WEXITED 0);
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "legoc %s mentions %S" (String.concat " " args) sub)
            true (contains out sub))
        [ "conform"; "tune"; "serve"; "client"; "fingerprint"; "LAYOUT" ])
    [ []; [ "--help" ] ]

let suite =
  ( "tune",
    [
      Alcotest.test_case "masked swizzles are bijections" `Quick
        test_masked_swizzle_bijective;
      Alcotest.test_case "masked swizzle parameter validation" `Quick
        test_masked_swizzle_rejects_bad_params;
      Alcotest.test_case "swizzle name round-trips" `Quick
        test_masked_swizzle_name_round_trip;
      Alcotest.test_case "space closure: dedup + seed stability" `Quick
        test_space_closure_dedup_and_seed_stability;
      Alcotest.test_case "stream = legacy eager closure" `Quick
        test_stream_matches_legacy_closure;
      QCheck_alcotest.to_alcotest ~long:false prop_stream_no_duplicate_fingerprints;
      Alcotest.test_case "scale axes multiply the space" `Quick
        test_scale_space_product_axes;
      QCheck_alcotest.to_alcotest ~long:false prop_topk_equals_sort_take;
      Alcotest.test_case "predictor agrees with simulator" `Quick
        test_predictor_agrees_with_simulator;
      Alcotest.test_case "compiled closures match interpreter" `Quick
        test_compiled_matches_interpreter;
      Alcotest.test_case "predictor arithmetic = simulator costs" `Quick
        test_predict_arithmetic_matches_simt_costs;
      Alcotest.test_case "slot fast path = effect-handler path" `Quick
        test_slot_fast_matches_slow;
      Alcotest.test_case "swizzlex names parse canonical decimal only" `Quick
        test_parse_swizzlex_decimal_only;
      Alcotest.test_case "oracle score = compiled score (full family)" `Quick
        test_oracle_score_matches_compiled_full_family;
      Alcotest.test_case "oracle predictions = measured counters" `Quick
        test_oracle_matches_measured_counters;
      Alcotest.test_case "swizzle classes partition + cost constancy" `Quick
        test_swizzle_classes_partition_and_cost_constancy;
      Alcotest.test_case "oracle search: 10x fewer simulations" `Quick
        test_oracle_search_reduction;
      Alcotest.test_case "search deterministic across -j" `Quick
        test_search_deterministic_across_jobs;
      Alcotest.test_case "funnel: sampled-rung accounting" `Quick
        test_funnel_sampled_rung_accounting;
      Alcotest.test_case "funnel deterministic across -j and runs" `Quick
        test_funnel_deterministic_across_jobs_and_runs;
      Alcotest.test_case "cache reuses without changing results" `Quick
        test_cache_reuses_without_changing_results;
      Alcotest.test_case "nw parallel scaling: j2 >= 0.9 j1" `Quick
        test_nw_parallel_scaling_no_regression;
      Alcotest.test_case "small space searched exhaustively" `Quick
        test_small_space_is_exhaustive;
      Alcotest.test_case "composed space rediscovers the swizzle" `Quick
        test_composed_space_rediscovers_swizzle;
      Alcotest.test_case "bad options rejected" `Quick
        test_search_rejects_bad_options;
      Alcotest.test_case "CLI overview lists subcommands" `Quick
        test_cli_overview_lists_subcommands;
    ] )
