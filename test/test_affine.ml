(* Tests for the stride derivation of section 3.3 (LEGO -> CuTe/Graphene
   shape:stride descriptions) and for partial-tile padding + masks. *)

open Lego_layout
module A = Lego_symbolic.Affine
module E = Lego_symbolic.Expr
module T = Lego_codegen.Triton_printer

let test_eq6_strides () =
  (* The paper's equation 6: tiling a row-major 6x6 into 3x3 blocks gives
     B: (2,2):(18,3) . (3,3):(6,1) — as a 4-D stride table,
     (2,2,3,3):(18,3,6,1). *)
  let g = Sugar.tiled_view ~group:[ [ 2; 2 ]; [ 3; 3 ] ] () in
  match A.of_layout g with
  | None -> Alcotest.fail "tiled view should be affine"
  | Some t ->
    Alcotest.(check string) "CuTe rendering" "(2, 2, 3, 3):(18, 3, 6, 1)"
      (A.to_cute t);
    Alcotest.(check (result unit string)) "validated" (Ok ()) (A.check g t)

let test_col_major_strides () =
  let g =
    Sugar.tiled_view ~order:[ Sugar.col [ 4; 6 ] ] ~group:[ [ 4; 6 ] ] ()
  in
  match A.of_layout g with
  | None -> Alcotest.fail "column-major is affine"
  | Some t ->
    Alcotest.(check string) "strides" "(4, 6):(1, 4)" (A.to_cute t)

let test_nonaffine_rejected () =
  (* Anti-diagonal and Morton orders lie outside the stride algebra —
     the paper's expressiveness argument. *)
  let antidiag =
    Group_by.make ~chain:[ Order_by.make [ Gallery.antidiag 4 ] ] [ [ 4; 4 ] ]
  in
  Alcotest.(check bool) "antidiag has no strides" true
    (A.of_layout antidiag = None);
  let morton =
    Group_by.make
      ~chain:[ Order_by.make [ Gallery.morton ~d:2 ~bits:2 ] ]
      [ [ 4; 4 ] ]
  in
  Alcotest.(check bool) "morton has no strides" true (A.of_layout morton = None)

let test_linearize () =
  let e = E.(add (mul (const 6) (var "i0")) (add (var "i1") (const 5))) in
  (match A.linearize ~vars:[ "i0"; "i1" ] e with
  | Some (5, [ ("i0", 6); ("i1", 1) ]) -> ()
  | _ -> Alcotest.fail "linearize affine");
  Alcotest.(check bool) "division is not affine" true
    (A.linearize ~vars:[ "i0" ] E.(div (var "i0") (const 2)) = None);
  Alcotest.(check bool) "foreign variable rejected" true
    (A.linearize ~vars:[ "i0" ] (E.var "j") = None)

let prop_affine_strides_correct =
  QCheck2.Test.make ~name:"derived strides reproduce the layout" ~count:100
    QCheck2.Gen.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 4) (int_range 1 4))
    (fun (tm, tk, bm, bk) ->
      let g = Sugar.tiled_view ~group:[ [ tm; tk ]; [ bm; bk ] ] () in
      match A.of_layout g with
      | None -> false
      | Some t -> A.check g t = Ok ())

(* --- Partial tiles and masks ------------------------------------------ *)

let test_padded_view () =
  let view, extents = Sugar.padded_tiled_view ~dims:[ 100; 50 ] ~tile:[ 32; 16 ] () in
  Alcotest.(check (list int)) "true extents kept" [ 100; 50 ] extents;
  Alcotest.(check (list int))
    "padded tiled dims" [ 4; 4; 32; 16 ]
    (Group_by.dims view);
  Alcotest.(check (result unit string))
    "padded space is a bijection" (Ok ()) (Check.layout view);
  (* In-bounds offsets match the unpadded row-major space padded to 128x64. *)
  Alcotest.(check int) "offset of (33, 17)" ((33 * 64) + 17)
    (Group_by.apply_ints view [ 33 / 32; 17 / 16; 33 mod 32; 17 mod 16 ])

let test_slice_mask () =
  let _view, extents =
    Sugar.padded_tiled_view ~dims:[ 100; 50 ] ~tile:[ 32; 16 ] ()
  in
  let group = [ [ 4; 4 ]; [ 32; 16 ] ] in
  let mask =
    T.slice_mask ~group ~extents
      [ T.Fix (E.var "pid_m"); T.Fix (E.var "k"); T.All; T.All ]
  in
  match mask with
  | None -> Alcotest.fail "padding requires a mask"
  | Some m ->
    List.iter
      (fun fragment ->
        if not (Str.string_match (Str.regexp (".*" ^ Str.quote fragment ^ ".*")) m 0)
        then Alcotest.failf "mask %S lacks %S" m fragment)
      [ "< 100"; "< 50"; "tl.arange(0, 32)[:, None]"; "tl.arange(0, 16)[None, :]"; " & " ]

let test_no_mask_when_divisible () =
  let _view, extents =
    Sugar.padded_tiled_view ~dims:[ 128; 64 ] ~tile:[ 32; 16 ] ()
  in
  Alcotest.(check bool) "no padding, no mask" true
    (T.slice_mask ~group:[ [ 4; 4 ]; [ 32; 16 ] ] ~extents
       [ T.Fix (E.var "pid_m"); T.Fix (E.var "k"); T.All; T.All ]
    = None)

let test_mask_semantics () =
  (* The mask expression evaluated over all tile cells is exactly the
     in-bounds predicate. *)
  let dims = [ 10; 7 ] in
  let coord_ok pid_m pid_n tm tn =
    let i = (pid_m * 4) + tm and j = (pid_n * 4) + tn in
    i < List.nth dims 0 && j < List.nth dims 1
  in
  (* Rebuild the mask as an expression (what slice_mask renders) and
     compare against the predicate. *)
  let mask_expr =
    E.(
      mul
        (lt
           (add (mul (const 4) (var "pid_m")) (var "tm"))
           (const (List.nth dims 0)))
        (lt
           (add (mul (const 4) (var "pid_n")) (var "tn"))
           (const (List.nth dims 1))))
  in
  for pid_m = 0 to 2 do
    for pid_n = 0 to 1 do
      for tm = 0 to 3 do
        for tn = 0 to 3 do
          let env = function
            | "pid_m" -> pid_m
            | "pid_n" -> pid_n
            | "tm" -> tm
            | "tn" -> tn
            | _ -> 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "(%d,%d,%d,%d)" pid_m pid_n tm tn)
            (coord_ok pid_m pid_n tm tn)
            (E.eval ~env mask_expr <> 0)
        done
      done
    done
  done

(* --- slice_mask refactor: byte identity vs the list-based original ----- *)

(* The original (pre-array) [slice_mask], kept verbatim as a reference:
   the production version replaced its per-dimension [List.nth] walks
   with arrays, and this test pins the refactor to byte-identical
   output.  Internals ([components_of], [render_with_aranges]) are
   re-embedded here since the printer does not export them. *)
module Reference = struct
  module E = Lego_symbolic.Expr
  module R = Lego_symbolic.Range

  let components_of indices dims =
    let slice_count = ref 0 in
    let components, slice_info =
      List.fold_left2
        (fun (components, info) index extent ->
          match index with
          | T.Fix e -> (e :: components, info)
          | T.All ->
            let k = !slice_count in
            incr slice_count;
            let v = T.arange_var k in
            (E.var v :: components, (v, extent) :: info))
        ([], []) indices dims
    in
    (List.rev components, List.rev slice_info)

  let broadcast ~nslices k =
    if nslices = 1 then "" else if k = 0 then "[:, None]" else "[None, :]"

  let replace_all ~sub ~by text =
    let sn = String.length sub and n = String.length text in
    if sn = 0 then text
    else begin
      let buf = Buffer.create n in
      let i = ref 0 in
      while !i <= n - sn do
        if String.sub text !i sn = sub then begin
          Buffer.add_string buf by;
          i := !i + sn
        end
        else begin
          Buffer.add_char buf text.[!i];
          incr i
        end
      done;
      Buffer.add_string buf (String.sub text !i (n - !i));
      Buffer.contents buf
    end

  let render_with_aranges ~slice_info text =
    let nslices = List.length slice_info in
    List.fold_left
      (fun text (k, (v, extent)) ->
        replace_all ~sub:v
          ~by:
            (Printf.sprintf "tl.arange(0, %d)%s" extent (broadcast ~nslices k))
          text)
      text
      (List.mapi (fun k b -> (k, b)) slice_info)

  let slice_mask ?(env = R.empty_env) ~group ~extents indices =
    let dims = List.concat group in
    let d = List.length extents in
    let components, slice_info = components_of indices dims in
    let env =
      List.fold_left
        (fun env (v, extent) -> R.env_add v (R.of_extent extent) env)
        env slice_info
    in
    let q = List.length group in
    let coord k =
      let level_extents = List.map (fun level -> List.nth level k) group in
      let level_components =
        List.init q (fun h -> List.nth components ((h * d) + k))
      in
      Lego_layout.Shape.flatten
        (module Lego_symbolic.Sym.Dom)
        level_extents level_components
    in
    let terms =
      List.filteri
        (fun k _ ->
          let padded_extent =
            List.fold_left (fun acc level -> acc * List.nth level k) 1 group
          in
          padded_extent > List.nth extents k)
        (List.init d Fun.id)
      |> List.map (fun k ->
             let guard =
               Lego_symbolic.Simplify.simplify ~env
                 (E.lt (coord k) (E.const (List.nth extents k)))
             in
             "(" ^ T.expr guard ^ ")")
    in
    match terms with
    | [] -> None
    | terms ->
      Some (render_with_aranges ~slice_info (String.concat " & " terms))
end

let test_slice_mask_byte_identical_to_reference () =
  let fix v = T.Fix (E.var v) in
  let cases =
    [
      (* The padded tiled views the gallery corpus exercises. *)
      ( [ [ 4; 4 ]; [ 32; 16 ] ],
        [ 100; 50 ],
        [ fix "pid_m"; fix "k"; T.All; T.All ] );
      ([ [ 4; 4 ]; [ 32; 16 ] ], [ 128; 64 ], [ fix "pid_m"; fix "k"; T.All; T.All ]);
      ([ [ 3; 2 ]; [ 8; 8 ] ], [ 20; 13 ], [ T.All; fix "pid_n"; T.All; fix "t" ]);
      ([ [ 5 ]; [ 16 ] ], [ 70 ], [ fix "pid"; T.All ]);
      (* Three-level hierarchy with a high rank: the shape where the
         quadratic [List.nth] walks used to bite. *)
      ( [ [ 2; 3; 2; 2 ]; [ 2; 2; 2; 2 ]; [ 4; 2; 3; 2 ] ],
        [ 15; 11; 10; 7 ],
        [ fix "a"; fix "b"; fix "c"; fix "d";
          fix "e"; fix "f"; fix "g"; fix "h";
          T.All; fix "i"; T.All; fix "j" ] );
    ]
  in
  List.iteri
    (fun n (group, extents, indices) ->
      Alcotest.(check (option string))
        (Printf.sprintf "case %d byte-identical" n)
        (Reference.slice_mask ~group ~extents indices)
        (T.slice_mask ~group ~extents indices))
    cases

let suite =
  ( "affine",
    [
      Alcotest.test_case "equation 6 strides" `Quick test_eq6_strides;
      Alcotest.test_case "column-major strides" `Quick test_col_major_strides;
      Alcotest.test_case "non-affine layouts rejected" `Quick
        test_nonaffine_rejected;
      Alcotest.test_case "linearize" `Quick test_linearize;
      Alcotest.test_case "padded tiled view" `Quick test_padded_view;
      Alcotest.test_case "slice masks" `Quick test_slice_mask;
      Alcotest.test_case "no mask when divisible" `Quick
        test_no_mask_when_divisible;
      Alcotest.test_case "mask semantics" `Quick test_mask_semantics;
      Alcotest.test_case "slice_mask byte-identical to list reference" `Quick
        test_slice_mask_byte_identical_to_reference;
    ]
    @ [ QCheck_alcotest.to_alcotest ~long:false prop_affine_strides_correct ] )
