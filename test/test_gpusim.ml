(* Tests for the SIMT simulator: memory model, coalescing, bank
   conflicts, barriers, divergence, sampling, and the roofline metrics. *)

open Lego_gpusim

let run1 ?(grid = (1, 1)) ?(block = (32, 1)) ?(smem_words = 0) body =
  Simt.run ~grid ~block ~smem_words body

let test_buffer_basics () =
  let b = Mem.init Mem.F32 8 float_of_int in
  Alcotest.(check int) "length" 8 (Mem.length b);
  Mem.set b 3 42.0;
  Alcotest.(check (float 0.0)) "get/set" 42.0 (Mem.get b 3);
  Alcotest.(check (float 0.0)) "diff" 39.0
    (Mem.max_abs_diff b (Array.init 8 float_of_int))

let test_coalesced_load () =
  let src = Mem.create Mem.F32 32 in
  let r = run1 (fun ctx -> ignore (Simt.gload src ctx.Simt.tx)) in
  (* 32 consecutive 4-byte loads = 128 bytes = 4 transactions of 32B. *)
  Alcotest.(check (float 0.0)) "txns" 4.0 r.Simt.counters.g_txns;
  Alcotest.(check (float 0.0)) "bytes" 128.0 r.Simt.counters.g_bytes

let test_strided_load () =
  let src = Mem.create Mem.F32 (32 * 8) in
  let r = run1 (fun ctx -> ignore (Simt.gload src (ctx.Simt.tx * 8))) in
  (* Stride 8 elements = 32 bytes: every lane its own transaction. *)
  Alcotest.(check (float 0.0)) "txns" 32.0 r.Simt.counters.g_txns

let test_broadcast_load () =
  let src = Mem.create Mem.F32 4 in
  let r = run1 (fun _ -> ignore (Simt.gload src 0)) in
  Alcotest.(check (float 0.0)) "single txn" 1.0 r.Simt.counters.g_txns

let test_dtype_width_affects_txns () =
  let half = Mem.create Mem.F16 64 in
  let r = run1 (fun ctx -> ignore (Simt.gload half ctx.Simt.tx)) in
  (* 32 consecutive 2-byte loads = 64 bytes = 2 transactions. *)
  Alcotest.(check (float 0.0)) "txns" 2.0 r.Simt.counters.g_txns

let test_bank_conflicts () =
  let degree stride =
    let r =
      run1 ~smem_words:1024 (fun ctx ->
          Simt.sstore (ctx.Simt.tx * stride mod 1024) 1.0)
    in
    r.Simt.counters.s_cycles
  in
  Alcotest.(check (float 0.0)) "stride 1: conflict-free" 1.0 (degree 1);
  Alcotest.(check (float 0.0)) "stride 2: 2-way" 2.0 (degree 2);
  Alcotest.(check (float 0.0)) "stride 16: 16-way" 16.0 (degree 16);
  Alcotest.(check (float 0.0)) "stride 32: fully serialized" 32.0 (degree 32)

let test_bank_conflicts_dtype_aware () =
  (* Banks are byte-addressed (4-byte banks on A100), so the element
     width changes the conflict picture.  F16, stride 1: 32 lanes cover
     64 bytes = 16 words; two lanes share each word (broadcast, free),
     so one cycle. *)
  let degree dtype stride =
    let r =
      Simt.run ~smem_dtype:dtype ~grid:(1, 1) ~block:(32, 1) ~smem_words:1024
        (fun ctx -> Simt.sstore (ctx.Simt.tx * stride mod 1024) 1.0)
    in
    r.Simt.counters.s_cycles
  in
  Alcotest.(check (float 0.0)) "f16 stride 1: conflict-free" 1.0
    (degree Mem.F16 1);
  (* F16, stride 32: lane t hits word t*16, i.e. banks {0, 16} only, 16
     distinct words per bank. *)
  Alcotest.(check (float 0.0)) "f16 stride 32: 16-way" 16.0
    (degree Mem.F16 32);
  (* F32 keeps the word-indexed behaviour (word = element on 4-byte
     banks), so the classic stride-32 full serialization holds. *)
  Alcotest.(check (float 0.0)) "f32 stride 32: 32-way" 32.0
    (degree Mem.F32 32);
  (* F8, stride 1: 32 lanes cover 32 bytes = 8 words, all broadcast. *)
  Alcotest.(check (float 0.0)) "f8 stride 1: conflict-free" 1.0
    (degree Mem.F8 1)

let test_arena_fold_negative_addresses () =
  let _buf, fold = Mem.create_arena Mem.F32 (1 lsl 20) ~cap:1024 in
  List.iter
    (fun addr ->
      let f = fold addr in
      Alcotest.(check bool)
        (Printf.sprintf "fold %d in bounds" addr)
        true
        (f >= 0 && f < 1024))
    [ -1; -5; -1024; -1025; 0; 1023; 1024; 123456789; -123456789 ];
  (* Euclidean: congruent mod cap, so intra-warp deltas survive. *)
  Alcotest.(check int) "fold -5" 1019 (fold (-5));
  Alcotest.(check int) "fold -1024" 0 (fold (-1024));
  Alcotest.(check int) "delta preserved" (fold 7 - fold 6 + 1024)
    (fold (-6) - fold (-7) + 1024)

let test_broadcast_shared_free () =
  let r = run1 ~smem_words:4 (fun _ -> ignore (Simt.sload 0)) in
  Alcotest.(check (float 0.0)) "broadcast is one cycle" 1.0
    r.Simt.counters.s_cycles

let test_barrier_orders_memory () =
  (* Producer threads fill shared memory; all threads read a neighbour's
     slot after the barrier.  Without barrier semantics the read of slot
     (tx+1) mod 32 could see a stale zero. *)
  let out = Mem.create Mem.F32 32 in
  ignore
    (run1 ~smem_words:32 (fun ctx ->
         let tx = ctx.Simt.tx in
         Simt.sstore tx (float_of_int (tx * 10));
         Simt.sync ();
         Simt.gstore out tx (Simt.sload ((tx + 1) mod 32))));
  for tx = 0 to 31 do
    Alcotest.(check (float 0.0))
      (Printf.sprintf "slot %d" tx)
      (float_of_int ((tx + 1) mod 32 * 10))
      (Mem.get out tx)
  done

let test_divergent_threads_complete () =
  (* Odd threads do extra work; everybody must still finish and the
     barrier must hold with partial arrival sets per round. *)
  let out = Mem.create Mem.F32 32 in
  ignore
    (run1 ~smem_words:32 (fun ctx ->
         let tx = ctx.Simt.tx in
         if tx mod 2 = 1 then begin
           Simt.sstore tx 1.0;
           Simt.sstore tx 2.0
         end;
         Simt.sync ();
         Simt.gstore out tx (if tx mod 2 = 1 then Simt.sload tx else -1.0)));
  Alcotest.(check (float 0.0)) "odd wrote" 2.0 (Mem.get out 1);
  Alcotest.(check (float 0.0)) "even skipped" (-1.0) (Mem.get out 0)

let test_out_of_bounds_rejected () =
  let src = Mem.create ~label:"small" Mem.F32 4 in
  Alcotest.check_raises "global OOB"
    (Invalid_argument "Simt: buffer \"small\" access 4 outside 0..3")
    (fun () -> ignore (run1 (fun _ -> ignore (Simt.gload src 4))));
  Alcotest.check_raises "shared OOB"
    (Invalid_argument "Simt: shared access 8 outside 0..7") (fun () ->
      ignore (run1 ~smem_words:8 (fun _ -> Simt.sstore 8 0.0)))

let test_sampling_scales_counters () =
  let src = Mem.create Mem.F32 (64 * 32) in
  let body ctx =
    ignore (Simt.gload src ((ctx.Simt.bx * 32) + ctx.Simt.tx))
  in
  let full = Simt.run ~grid:(64, 1) ~block:(32, 1) ~smem_words:0 body in
  let sampled =
    Simt.run ~sample_blocks:4 ~grid:(64, 1) ~block:(32, 1) ~smem_words:0 body
  in
  Alcotest.(check int) "simulated subset" 4 sampled.Simt.blocks_simulated;
  Alcotest.(check (float 1e-9))
    "scaled bytes equal full bytes" full.Simt.counters.g_bytes
    sampled.Simt.counters.g_bytes

let test_flops_rates () =
  let r =
    run1 (fun _ ->
        Simt.flops Mem.F32 10;
        Simt.flops ~tensor:true Mem.F16 100)
  in
  (* Per-thread counts sum across the 32-lane warp. *)
  Alcotest.(check (float 0.0)) "fp32" 320.0 r.Simt.counters.flops_fp32;
  Alcotest.(check (float 0.0)) "tensor fp16" 3200.0
    r.Simt.counters.flops_tensor_fp16

let test_block_limits () =
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Simt.run: block exceeds device thread limit")
    (fun () ->
      ignore (Simt.run ~grid:(1, 1) ~block:(64, 64) ~smem_words:0 (fun _ -> ())))

let test_metrics_roofline () =
  (* A memory-only kernel is DRAM-bound; adding huge flops makes it
     compute-bound; times are monotone in the dominant term. *)
  let src = Mem.create Mem.F32 (1 lsl 16) in
  let mem_kernel ctx =
    for l = 0 to 63 do
      ignore (Simt.gload src ((ctx.Simt.bx * 2048) + (l * 32) + ctx.Simt.tx))
    done
  in
  let r1 = Simt.run ~grid:(32, 1) ~block:(32, 1) ~smem_words:0 mem_kernel in
  let b1 = Metrics.breakdown r1 in
  Alcotest.(check bool) "dram beats issue" true
    (b1.Metrics.dram_s >= b1.Metrics.issue_s || b1.Metrics.dram_s > 0.0);
  let compute_kernel _ = Simt.flops ~tensor:true Mem.F16 (1 lsl 22) in
  let r2 = Simt.run ~grid:(32, 1) ~block:(32, 1) ~smem_words:0 compute_kernel in
  let b2 = Metrics.breakdown r2 in
  Alcotest.(check bool) "compute dominates" true
    (b2.Metrics.compute_s > b2.Metrics.dram_s);
  Alcotest.(check bool) "total includes launch" true
    (b2.Metrics.total_s > b2.Metrics.compute_s)

let test_occupancy_penalty () =
  (* The same per-block work on a 1-block grid must not be faster than on
     a grid that fills the machine (per-block time comparison). *)
  let body _ = Simt.flops Mem.F32 (1 lsl 18) in
  let small = Simt.run ~grid:(1, 1) ~block:(256, 1) ~smem_words:0 body in
  let large =
    Simt.run ~sample_blocks:2 ~grid:(1080, 1) ~block:(256, 1) ~smem_words:0 body
  in
  let t_small = Metrics.time_s small in
  let t_large_per_block =
    Metrics.time_s large /. 1080.0
  in
  Alcotest.(check bool) "full grid amortizes better" true
    (t_large_per_block < t_small)

(* --- Metrics.breakdown edge cases ---------------------------------------- *)

let zero_counters () : Simt.counters =
  {
    insn_warp = 0.0;
    g_txns = 0.0;
    g_bytes = 0.0;
    l2_hits = 0.0;
    s_accesses = 0.0;
    s_cycles = 0.0;
    flops_fp32 = 0.0;
    flops_fp16 = 0.0;
    flops_fp8 = 0.0;
    flops_tensor_fp16 = 0.0;
    flops_tensor_fp8 = 0.0;
    syncs = 0.0;
  }

let mk_report ?(device = Device.a100) ?(grid = (1, 1)) ?(block = (32, 1))
    counters : Simt.report =
  {
    Simt.device;
    grid;
    block;
    blocks_simulated = fst grid * snd grid;
    launches = 1;
    counters;
  }

let test_breakdown_zero_counters () =
  (* A report with no recorded work costs exactly the launch latency:
     every roofline term is 0 and total = launch, with no division
     blow-ups from the zero counters. *)
  let b = Metrics.breakdown (mk_report (zero_counters ())) in
  Alcotest.(check (float 0.0)) "compute" 0.0 b.Metrics.compute_s;
  Alcotest.(check (float 0.0)) "dram" 0.0 b.Metrics.dram_s;
  Alcotest.(check (float 0.0)) "smem" 0.0 b.Metrics.smem_s;
  Alcotest.(check (float 0.0)) "issue" 0.0 b.Metrics.issue_s;
  Alcotest.(check (float 0.0)) "launch"
    (Device.a100.Device.kernel_launch_us *. 1e-6)
    b.Metrics.launch_s;
  Alcotest.(check (float 0.0)) "total = launch" b.Metrics.launch_s
    b.Metrics.total_s

let test_breakdown_launch_dominated () =
  (* A single tiny block: the 3 us launch latency dwarfs the body. *)
  let r = run1 (fun _ -> Simt.alu 1) in
  let b = Metrics.breakdown r in
  let body = b.Metrics.total_s -. b.Metrics.launch_s in
  Alcotest.(check bool) "body is positive" true (body > 0.0);
  Alcotest.(check bool) "launch dominates" true
    (b.Metrics.launch_s /. b.Metrics.total_s > 0.9);
  Alcotest.(check (float 0.0)) "total = launch + body"
    (b.Metrics.launch_s
    +. Float.max
         (Float.max b.Metrics.compute_s b.Metrics.dram_s)
         (Float.max b.Metrics.l2_s
            (Float.max b.Metrics.smem_s b.Metrics.issue_s)))
    b.Metrics.total_s

let test_sum_times_empty () =
  Alcotest.(check (float 0.0)) "sum of no reports" 0.0 (Metrics.sum_times_s [])

let test_breakdown_exact_values () =
  (* Mirror the model arithmetic (same operations, same order as
     metrics.ml) on hand-picked counters and check bit-exact equality. *)
  let c = zero_counters () in
  c.Simt.s_cycles <- 64.0;
  c.Simt.insn_warp <- 128.0;
  c.Simt.g_bytes <- 1024.0;
  c.Simt.flops_fp32 <- 1e6;
  let b = Metrics.breakdown (mk_report ~grid:(2, 1) ~block:(32, 4) c) in
  let d = Device.a100 in
  (* grid (2,1), block (32,4): exactly 4 warps, so block_fill = 4/8. *)
  let warps_per_block = ((32 * 4) + d.Device.warp_size - 1) / d.Device.warp_size in
  let block_fill = Float.min 1.0 (float_of_int warps_per_block /. 8.0) in
  let util =
    Float.min 1.0 (2.0 /. float_of_int d.Device.num_sms) *. block_fill
  in
  let clock_hz = d.Device.clock_ghz *. 1e9 in
  let sms = float_of_int d.Device.num_sms in
  Alcotest.(check (float 0.0)) "compute"
    (1e6 /. (d.Device.fp32_tflops *. 1e12) /. util)
    b.Metrics.compute_s;
  Alcotest.(check (float 0.0)) "dram"
    (1024.0 /. (d.Device.dram_bw_gbps *. 1e9) /. util)
    b.Metrics.dram_s;
  Alcotest.(check (float 0.0)) "smem"
    (64.0 /. (clock_hz *. sms *. util))
    b.Metrics.smem_s;
  Alcotest.(check (float 0.0)) "issue"
    (128.0
    /. (clock_hz *. sms *. util
       *. float_of_int d.Device.issue_per_sm_per_cycle))
    b.Metrics.issue_s;
  Alcotest.(check (float 0.0)) "l2"
    (1024.0 /. (d.Device.l2_bw_gbps *. 1e9) /. util)
    b.Metrics.l2_s;
  Alcotest.(check (float 0.0)) "total"
    (b.Metrics.launch_s
    +. Float.max
         (Float.max b.Metrics.compute_s b.Metrics.dram_s)
         (Float.max b.Metrics.l2_s
            (Float.max b.Metrics.smem_s b.Metrics.issue_s)))
    b.Metrics.total_s

(* --- Regression tests for the ISSUE 6 cost-model bugfixes ---------------- *)

let test_block_fill_ceiling () =
  (* warps-per-block must be the integer ceiling of threads/32: a
     32-thread block is exactly one warp (fill 1/8), not ~1.97 warps. *)
  let d = Device.a100 in
  Alcotest.(check (float 0.0)) "32 threads = 1 warp" (1.0 /. 8.0)
    (Metrics.block_fill d ~threads:32);
  Alcotest.(check (float 0.0)) "33 threads = 2 warps" (2.0 /. 8.0)
    (Metrics.block_fill d ~threads:33);
  Alcotest.(check (float 0.0)) "256 threads = 8 warps = full" 1.0
    (Metrics.block_fill d ~threads:256)

let test_block_fill_derived_from_device () =
  (* The fill threshold is max_warps_per_sm / 8, not a hardcoded 8:
     presets with the same warp capacity agree everywhere, and the
     RTX 4090 (48 resident warps -> threshold 6) saturates earlier. *)
  List.iter
    (fun threads ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "a100 = h100 at %d threads" threads)
        (Metrics.block_fill Device.a100 ~threads)
        (Metrics.block_fill Device.h100 ~threads))
    [ 32; 6 * 32; 8 * 32; 1024 ];
  (* 6 warps: 6/8 of an A100 SM, but a full RTX 4090 SM. *)
  Alcotest.(check (float 0.0)) "a100 at 6 warps" (6.0 /. 8.0)
    (Metrics.block_fill Device.a100 ~threads:(6 * 32));
  Alcotest.(check (float 0.0)) "rtx4090 at 6 warps" 1.0
    (Metrics.block_fill Device.rtx4090 ~threads:(6 * 32));
  Alcotest.(check (float 0.0)) "rtx4090 at 3 warps" (3.0 /. 6.0)
    (Metrics.block_fill Device.rtx4090 ~threads:(3 * 32))

let test_sampling_spans_grid () =
  (* Proportional stride: with 100 blocks and 40 samples the old
     truncating step (100/40 = 2) stranded blocks 79..99; the sample
     must span the whole grid with no duplicate block. *)
  let idx = Simt.sample_indices ~total:100 ~simulated:40 in
  Alcotest.(check int) "sample size" 40 (List.length idx);
  Alcotest.(check int) "no duplicates" 40
    (List.length (List.sort_uniq compare idx));
  Alcotest.(check bool) "first sample is block 0" true (List.hd idx = 0);
  List.iter
    (fun b -> Alcotest.(check bool) "in range" true (b >= 0 && b < 100))
    idx;
  Alcotest.(check bool) "tail is visited" true (List.exists (fun b -> b >= 95) idx);
  (* End-to-end: a kernel whose cost differs in the grid tail.  Blocks
     >= 80 do a fully strided load (32 txns), earlier blocks a broadcast
     (1 txn); the sampled estimate must account for the tail. *)
  let src = Mem.create Mem.F32 (100 * 32 * 8) in
  let body ctx =
    if ctx.Simt.bx >= 80 then
      ignore (Simt.gload src ((ctx.Simt.bx * 256) + (ctx.Simt.tx * 8)))
    else ignore (Simt.gload src (ctx.Simt.bx * 256))
  in
  let sampled =
    Simt.run ~sample_blocks:40 ~grid:(100, 1) ~block:(32, 1) ~smem_words:0 body
  in
  let expected_raw =
    List.fold_left
      (fun acc b -> acc + if b >= 80 then 32 else 1)
      0
      (Simt.sample_indices ~total:100 ~simulated:40)
  in
  let scale = 100.0 /. 40.0 in
  Alcotest.(check (float 1e-9)) "tail txns are estimated"
    (float_of_int expected_raw *. scale)
    sampled.Simt.counters.g_txns;
  Alcotest.(check bool) "estimate sees the expensive tail" true
    (sampled.Simt.counters.g_txns > 100.0)

let test_raising_kernel_leaves_counters_untouched () =
  (* Bugfix: OOB used to be detected only when the round executed, after
     the access was already costed.  With park-time validation plus
     merge-after-completion, a caller-supplied counters record must stay
     untouched when the launch raises. *)
  let src = Mem.create ~label:"tiny" Mem.F32 4 in
  let c = Simt.fresh_counters () in
  (try
     ignore
       (Simt.run ~counters:c ~grid:(1, 1) ~block:(32, 1) ~smem_words:8
          (fun ctx ->
            Simt.sstore (ctx.Simt.tx mod 8) 1.0;
            Simt.sync ();
            (* lane 5 goes out of bounds *)
            ignore (Simt.gload src (if ctx.Simt.tx = 5 then 4 else 0))));
     Alcotest.fail "kernel should have raised"
   with Invalid_argument _ -> ());
  Alcotest.(check (float 0.0)) "insn" 0.0 c.Simt.insn_warp;
  Alcotest.(check (float 0.0)) "txns" 0.0 c.Simt.g_txns;
  Alcotest.(check (float 0.0)) "bytes" 0.0 c.Simt.g_bytes;
  Alcotest.(check (float 0.0)) "s_accesses" 0.0 c.Simt.s_accesses;
  Alcotest.(check (float 0.0)) "s_cycles" 0.0 c.Simt.s_cycles;
  Alcotest.(check (float 0.0)) "syncs" 0.0 c.Simt.syncs;
  (* and a successful launch accumulates into the same record *)
  let r =
    Simt.run ~counters:c ~grid:(1, 1) ~block:(32, 1) ~smem_words:0 (fun _ ->
        Simt.alu 3)
  in
  Alcotest.(check (float 0.0)) "accumulated" 3.0 c.Simt.insn_warp;
  Alcotest.(check bool) "report shares the record" true (r.Simt.counters == c)

let test_fp8_scalar_rate () =
  (* Bugfix: scalar FP8 was billed at the FP16 rate.  The same flop
     count in FP8 must now be strictly cheaper than in FP16 (2x rate on
     both presets), and exactly at [Device.fp8_tflops]. *)
  let mk fl_field =
    let c = zero_counters () in
    fl_field c;
    Metrics.breakdown (mk_report ~grid:(108, 1) ~block:(256, 1) c)
  in
  let b8 = mk (fun c -> c.Simt.flops_fp8 <- 1e9) in
  let b16 = mk (fun c -> c.Simt.flops_fp16 <- 1e9) in
  Alcotest.(check bool) "fp8 is cheaper than fp16" true
    (b8.Metrics.compute_s < b16.Metrics.compute_s);
  Alcotest.(check (float 0.0)) "fp8 billed at its own rate"
    (1e9 /. (Device.a100.Device.fp8_tflops *. 1e12))
    b8.Metrics.compute_s;
  Alcotest.(check (float 1e-12)) "a100 fp8 = 2x fp16"
    (b16.Metrics.compute_s /. 2.0)
    b8.Metrics.compute_s;
  Alcotest.(check bool) "h100 preset consistent" true
    (Device.h100.Device.fp8_tflops = 2.0 *. Device.h100.Device.fp16_tflops)

let test_l2_hits_and_dram_relief () =
  (* Re-reading a resident working set hits in L2: the second pass adds
     transactions and bytes but only the first pass reaches DRAM. *)
  let src = Mem.create Mem.F32 2048 in
  let body ctx =
    ignore (Simt.gload src (ctx.Simt.tx * 8));
    ignore (Simt.gload src (ctx.Simt.tx * 8))
  in
  let r = Simt.run ~grid:(1, 1) ~block:(32, 1) ~smem_words:0 body in
  Alcotest.(check (float 0.0)) "txns count both passes" 64.0
    r.Simt.counters.g_txns;
  Alcotest.(check (float 0.0)) "second pass hits" 32.0 r.Simt.counters.l2_hits;
  let b = Metrics.breakdown r in
  let d = Device.a100 in
  let util =
    Float.min 1.0 (1.0 /. float_of_int d.Device.num_sms)
    *. Metrics.block_fill d ~threads:32
  in
  Alcotest.(check (float 0.0)) "dram only sees misses"
    (1024.0 (* 32 misses x 32B *) /. (d.Device.dram_bw_gbps *. 1e9) /. util)
    b.Metrics.dram_s;
  (* Streaming kernel: every sector touched once, no hits. *)
  let stream =
    Simt.run ~grid:(4, 1) ~block:(32, 1) ~smem_words:0 (fun ctx ->
        ignore (Simt.gload src ((ctx.Simt.bx * 32) + ctx.Simt.tx)))
  in
  Alcotest.(check (float 0.0)) "streaming never hits" 0.0
    stream.Simt.counters.l2_hits

(* The pre-O(1) L2 replacement policy, kept verbatim as the reference:
   unique last-use ticks, the victim is the minimum tick found by a full
   table scan.  The rewritten recency-list cache must reproduce its
   hit/miss sequence bit for bit (the unique-min-tick victim {e is} the
   list head), it just stops paying O(capacity) per miss. *)
module L2_ref = struct
  type t = {
    capacity : int;
    table : (int * int, int) Hashtbl.t;
    mutable tick : int;
  }

  let create ~capacity = { capacity; table = Hashtbl.create 64; tick = 0 }

  let evict_lru t =
    let victim =
      Hashtbl.fold
        (fun sector tick acc ->
          match acc with
          | Some (_, best) when best <= tick -> acc
          | _ -> Some (sector, tick))
        t.table None
    in
    match victim with
    | Some (sector, _) -> Hashtbl.remove t.table sector
    | None -> ()

  let access t sector =
    t.tick <- t.tick + 1;
    if Hashtbl.mem t.table sector then (
      Hashtbl.replace t.table sector t.tick;
      true)
    else (
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table sector t.tick;
      false)
end

let test_l2_lru_matches_tick_scan_reference () =
  let check ~capacity ~trace name =
    let fast = L2.create_sized ~capacity in
    let slow = L2_ref.create ~capacity in
    List.iteri
      (fun i sector ->
        let h = L2.access fast sector and h' = L2_ref.access slow sector in
        if h <> h' then
          Alcotest.failf "%s: access %d (sector %d,%d): list %b, tick-scan %b"
            name i (fst sector) (snd sector) h h')
      trace
  in
  (* Deterministic eviction-heavy patterns at tiny capacity. *)
  let seq = List.init 64 (fun i -> (0, i mod 7)) in
  check ~capacity:4 ~trace:seq "cyclic working set > capacity";
  check ~capacity:1 ~trace:seq "capacity 1";
  let interleaved =
    List.concat_map (fun i -> [ (0, i mod 5); (1, i mod 3); (0, 2) ]) (List.init 40 Fun.id)
  in
  check ~capacity:3 ~trace:interleaved "two buffers + a hot sector";
  (* Seeded random traces across capacities: hit/miss sequences must be
     identical at every step. *)
  let st = Random.State.make [| 0xCACE; 2026 |] in
  List.iter
    (fun capacity ->
      let trace =
        List.init 2000 (fun _ ->
            (Random.State.int st 3, Random.State.int st (3 * capacity)))
      in
      check ~capacity ~trace (Printf.sprintf "random trace, capacity %d" capacity))
    [ 2; 5; 16; 64 ];
  (* Invalid capacities are rejected. *)
  List.iter
    (fun capacity ->
      Alcotest.(check bool) "bad capacity rejected" true
        (match L2.create_sized ~capacity with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ 0; -3 ]

let suite =
  ( "gpusim",
    [
      Alcotest.test_case "L2 O(1) LRU = tick-scan reference" `Quick
        test_l2_lru_matches_tick_scan_reference;
      Alcotest.test_case "buffers" `Quick test_buffer_basics;
      Alcotest.test_case "coalesced loads" `Quick test_coalesced_load;
      Alcotest.test_case "strided loads" `Quick test_strided_load;
      Alcotest.test_case "broadcast load" `Quick test_broadcast_load;
      Alcotest.test_case "dtype width" `Quick test_dtype_width_affects_txns;
      Alcotest.test_case "bank conflicts" `Quick test_bank_conflicts;
      Alcotest.test_case "bank conflicts are dtype-aware" `Quick
        test_bank_conflicts_dtype_aware;
      Alcotest.test_case "arena folds negative addresses" `Quick
        test_arena_fold_negative_addresses;
      Alcotest.test_case "shared broadcast" `Quick test_broadcast_shared_free;
      Alcotest.test_case "barrier memory ordering" `Quick
        test_barrier_orders_memory;
      Alcotest.test_case "divergence" `Quick test_divergent_threads_complete;
      Alcotest.test_case "bounds checks" `Quick test_out_of_bounds_rejected;
      Alcotest.test_case "block sampling" `Quick test_sampling_scales_counters;
      Alcotest.test_case "flop categories" `Quick test_flops_rates;
      Alcotest.test_case "block limits" `Quick test_block_limits;
      Alcotest.test_case "roofline metrics" `Quick test_metrics_roofline;
      Alcotest.test_case "occupancy penalty" `Quick test_occupancy_penalty;
      Alcotest.test_case "breakdown: all-zero counters" `Quick
        test_breakdown_zero_counters;
      Alcotest.test_case "breakdown: launch-dominated tiny grid" `Quick
        test_breakdown_launch_dominated;
      Alcotest.test_case "sum_times_s []" `Quick test_sum_times_empty;
      Alcotest.test_case "breakdown: exact model values" `Quick
        test_breakdown_exact_values;
      Alcotest.test_case "bugfix: block_fill integer ceiling" `Quick
        test_block_fill_ceiling;
      Alcotest.test_case "bugfix: block_fill threshold from device" `Quick
        test_block_fill_derived_from_device;
      Alcotest.test_case "bugfix: sampling spans the grid tail" `Quick
        test_sampling_spans_grid;
      Alcotest.test_case "bugfix: raising kernel leaves counters untouched"
        `Quick test_raising_kernel_leaves_counters_untouched;
      Alcotest.test_case "bugfix: scalar fp8 rate" `Quick test_fp8_scalar_rate;
      Alcotest.test_case "l2: hits relieve dram" `Quick
        test_l2_hits_and_dram_relief;
    ] )
