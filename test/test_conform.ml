(* Tests for the differential conformance harness (lib/conform): the C
   expression re-parser, the seeded generator, the four-semantics
   cross-check over the gallery corpus and random layouts, and the
   seeded-bug self-test (a deliberately broken simplifier rule must be
   caught and shrunk). *)

module L = Lego_layout
module Conform = Lego_conform.Conform
module Cexpr = Lego_conform.Cexpr
module Lgen = Lego_conform.Lgen
module Shrink = Lego_conform.Shrink

(* --- Cexpr: C parsing and truncating evaluation ------------------------ *)

let eval_str ?(env = fun v -> failwith ("unbound " ^ v)) src =
  match Cexpr.parse src with
  | Error e -> Alcotest.failf "parse %S: %s" src e
  | Ok t -> Cexpr.eval ~env t

let test_cexpr_truncating_semantics () =
  (* C's / and % truncate toward zero; the algebra's floor semantics
     differ on negatives — that asymmetry is the whole point. *)
  Alcotest.(check int) "-7 / 2 truncates" (-3) (eval_str "-7 / 2");
  Alcotest.(check int) "-7 % 2 truncates" (-1) (eval_str "-7 % 2");
  Alcotest.(check int) "floor differs" (-4)
    (Lego_layout.Domain.floor_div (-7) 2);
  Alcotest.(check int) "7 / 2" 3 (eval_str "7 / 2");
  Alcotest.(check int) "precedence" 7 (eval_str "1 + 2 * 3");
  Alcotest.(check int) "parens" 9 (eval_str "(1 + 2) * 3");
  Alcotest.(check int) "unary minus binds tight" (-5) (eval_str "1 - 2 * 3");
  Alcotest.(check int) "ternary true" 10 (eval_str "1 <= 2 ? 10 : 20");
  Alcotest.(check int) "ternary false" 20 (eval_str "3 <= 2 ? 10 : 20");
  Alcotest.(check int) "nested ternary" 3
    (eval_str "0 ? 1 : 1 == 2 ? 2 : 3");
  Alcotest.(check int) "isqrt" 4 (eval_str "lego_isqrt(17)");
  Alcotest.(check int) "vars" 11
    (eval_str ~env:(function "i0" -> 5 | _ -> 3) "2 * i0 + 1");
  (match Cexpr.parse "1 +" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input should not parse");
  match Cexpr.parse "foo(3)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown function should not parse"

let test_cexpr_matches_printer () =
  (* Round-trip: print an expression with the C printer, re-parse it with
     Cexpr, and evaluate both sides on sample points (all values
     non-negative, where C and floor semantics agree). *)
  let module E = Lego_symbolic.Expr in
  let exprs =
    [
      E.(add (mul (const 3) (var "i")) (div (var "j") (const 2)));
      E.(md (add (var "i") (mul (const 7) (var "j"))) (const 5));
      E.(select (lt (var "i") (const 4)) (var "j") (neg (var "i")));
      E.(isqrt (add (mul (var "i") (var "i")) (var "j")));
      E.(mul (add (var "i") (const 1)) (sub (var "j") (const 9)));
      E.(div (md (var "i") (const 6)) (add (var "j") (const 1)));
    ]
  in
  List.iter
    (fun e ->
      let src = Lego_codegen.C_printer.expr e in
      let t =
        match Cexpr.parse src with
        | Ok t -> t
        | Error m -> Alcotest.failf "reparse %S: %s" src m
      in
      for i = 0 to 9 do
        for j = 0 to 9 do
          let env v =
            match v with
            | "i" -> i
            | "j" -> j
            | v -> Alcotest.failf "unbound %s" v
          in
          Alcotest.(check int)
            (Printf.sprintf "%s at i=%d j=%d" src i j)
            (E.eval ~env e) (Cexpr.eval ~env t)
        done
      done)
    exprs

(* --- Generator ---------------------------------------------------------- *)

let test_generator_deterministic_and_valid () =
  for index = 0 to 39 do
    let g = Lgen.layout_of_seed ~seed:7 ~index in
    let g' = Lgen.layout_of_seed ~seed:7 ~index in
    Alcotest.(check bool)
      (Printf.sprintf "#%d deterministic" index)
      true (L.Group_by.equal g g');
    Alcotest.(check bool)
      (Printf.sprintf "#%d small enough" index)
      true
      (L.Group_by.numel g <= 768);
    match L.Check.layout g with
    | Ok () -> ()
    | Error e -> Alcotest.failf "#%d not a bijection: %s" index e
  done;
  (* Different seeds give different streams (overwhelmingly likely for
     any non-degenerate generator; checked over a whole prefix). *)
  let differs =
    List.exists
      (fun index ->
        not
          (L.Group_by.equal
             (Lgen.layout_of_seed ~seed:1 ~index)
             (Lgen.layout_of_seed ~seed:2 ~index)))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "seeds matter" true differs

(* --- Cross-check: gallery corpus and random layouts --------------------- *)

let test_gallery_conforms () =
  List.iter
    (fun (name, g) ->
      match (Conform.check_layout g).Conform.mismatch with
      | None -> ()
      | Some m ->
        Alcotest.failf "%s: [%s] %s" name m.Conform.stage m.Conform.detail)
    Lego_conform.Corpus.all

let test_random_layouts_conform () =
  let report =
    Conform.run ~gallery:false ~random:40 ~seed:2026 ~max_points:512 ()
  in
  Alcotest.(check int) "layouts" 40 report.Conform.layouts;
  Alcotest.(check bool) "points covered" true (report.Conform.points > 0);
  match report.Conform.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: [%s] %s" f.Conform.origin f.Conform.mismatch.Conform.stage
      f.Conform.mismatch.Conform.detail

(* --- Seeded-bug self-test ----------------------------------------------- *)

let test_broken_rule_caught_and_shrunk () =
  Lego_symbolic.Simplify.set_test_only_break_rule true;
  Fun.protect
    ~finally:(fun () ->
      Lego_symbolic.Simplify.set_test_only_break_rule false)
    (fun () ->
      let report = Conform.run ~random:40 ~seed:42 () in
      (match report.Conform.failures with
      | [] ->
        Alcotest.fail
          "the deliberately broken mod-elimination rule was not detected"
      | f :: _ ->
        (* The shrunk layout must itself still fail, and shrinking must
           not grow the layout. *)
        Alcotest.(check bool) "shrunk layout still fails" true
          ((Conform.check_layout f.Conform.shrunk).Conform.mismatch <> None);
        let size g =
          List.fold_left
            (fun a o -> a + List.length (L.Order_by.pieces o))
            (List.length (L.Group_by.shapes g))
            (L.Group_by.chain g)
        in
        Alcotest.(check bool) "shrunk no larger" true
          (size f.Conform.shrunk <= size f.Conform.layout);
        (* The printed reproduction must re-parse to the same layout. *)
        let printed = Format.asprintf "%a" L.Group_by.pp f.Conform.shrunk in
        match Lego_lang.Elab.layout_of_string printed with
        | Error e -> Alcotest.failf "shrunk repro %S does not parse: %s" printed e
        | Ok g ->
          Alcotest.(check bool) "repro round-trips" true
            (L.Group_by.equal g f.Conform.shrunk)))

let test_flag_reset_restores_conformance () =
  (* After disabling the broken rule (which flushes the memo caches), the
     same stream must be clean again. *)
  let report = Conform.run ~gallery:true ~random:10 ~seed:42 () in
  Alcotest.(check int) "clean after reset" 0
    (List.length report.Conform.failures)

let suite =
  ( "conform",
    [
      Alcotest.test_case "C expr: truncating semantics" `Quick
        test_cexpr_truncating_semantics;
      Alcotest.test_case "C expr: printer round-trip" `Quick
        test_cexpr_matches_printer;
      Alcotest.test_case "generator: deterministic, valid, bounded" `Quick
        test_generator_deterministic_and_valid;
      Alcotest.test_case "gallery corpus conforms" `Quick test_gallery_conforms;
      Alcotest.test_case "random layouts conform" `Quick
        test_random_layouts_conform;
      Alcotest.test_case "seeded bug is caught and shrunk" `Quick
        test_broken_rule_caught_and_shrunk;
      Alcotest.test_case "flag reset restores conformance" `Quick
        test_flag_reset_restores_conformance;
    ] )
