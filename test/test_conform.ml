(* Tests for the differential conformance harness (lib/conform): the C
   expression re-parser, the seeded generator, the four-semantics
   cross-check over the gallery corpus and random layouts, and the
   seeded-bug self-test (a deliberately broken simplifier rule must be
   caught and shrunk). *)

module L = Lego_layout
module Conform = Lego_conform.Conform
module Cexpr = Lego_conform.Cexpr
module Lgen = Lego_conform.Lgen
module Shrink = Lego_conform.Shrink

(* --- Cexpr: C parsing and truncating evaluation ------------------------ *)

let eval_str ?(env = fun v -> failwith ("unbound " ^ v)) src =
  match Cexpr.parse src with
  | Error e -> Alcotest.failf "parse %S: %s" src e
  | Ok t -> Cexpr.eval ~env t

let test_cexpr_truncating_semantics () =
  (* C's / and % truncate toward zero; the algebra's floor semantics
     differ on negatives — that asymmetry is the whole point. *)
  Alcotest.(check int) "-7 / 2 truncates" (-3) (eval_str "-7 / 2");
  Alcotest.(check int) "-7 % 2 truncates" (-1) (eval_str "-7 % 2");
  Alcotest.(check int) "floor differs" (-4)
    (Lego_layout.Domain.floor_div (-7) 2);
  Alcotest.(check int) "7 / 2" 3 (eval_str "7 / 2");
  Alcotest.(check int) "precedence" 7 (eval_str "1 + 2 * 3");
  Alcotest.(check int) "parens" 9 (eval_str "(1 + 2) * 3");
  Alcotest.(check int) "unary minus binds tight" (-5) (eval_str "1 - 2 * 3");
  Alcotest.(check int) "ternary true" 10 (eval_str "1 <= 2 ? 10 : 20");
  Alcotest.(check int) "ternary false" 20 (eval_str "3 <= 2 ? 10 : 20");
  Alcotest.(check int) "nested ternary" 3
    (eval_str "0 ? 1 : 1 == 2 ? 2 : 3");
  Alcotest.(check int) "isqrt" 4 (eval_str "lego_isqrt(17)");
  Alcotest.(check int) "vars" 11
    (eval_str ~env:(function "i0" -> 5 | _ -> 3) "2 * i0 + 1");
  (match Cexpr.parse "1 +" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input should not parse");
  match Cexpr.parse "foo(3)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown function should not parse"

let test_cexpr_matches_printer () =
  (* Round-trip: print an expression with the C printer, re-parse it with
     Cexpr, and evaluate both sides on sample points (all values
     non-negative, where C and floor semantics agree). *)
  let module E = Lego_symbolic.Expr in
  let exprs =
    [
      E.(add (mul (const 3) (var "i")) (div (var "j") (const 2)));
      E.(md (add (var "i") (mul (const 7) (var "j"))) (const 5));
      E.(select (lt (var "i") (const 4)) (var "j") (neg (var "i")));
      E.(isqrt (add (mul (var "i") (var "i")) (var "j")));
      E.(mul (add (var "i") (const 1)) (sub (var "j") (const 9)));
      E.(div (md (var "i") (const 6)) (add (var "j") (const 1)));
    ]
  in
  List.iter
    (fun e ->
      let src = Lego_codegen.C_printer.expr e in
      let t =
        match Cexpr.parse src with
        | Ok t -> t
        | Error m -> Alcotest.failf "reparse %S: %s" src m
      in
      for i = 0 to 9 do
        for j = 0 to 9 do
          let env v =
            match v with
            | "i" -> i
            | "j" -> j
            | v -> Alcotest.failf "unbound %s" v
          in
          Alcotest.(check int)
            (Printf.sprintf "%s at i=%d j=%d" src i j)
            (E.eval ~env e) (Cexpr.eval ~env t)
        done
      done)
    exprs

(* --- Generator ---------------------------------------------------------- *)

let test_generator_deterministic_and_valid () =
  for index = 0 to 39 do
    let g = Lgen.layout_of_seed ~seed:7 ~index in
    let g' = Lgen.layout_of_seed ~seed:7 ~index in
    Alcotest.(check bool)
      (Printf.sprintf "#%d deterministic" index)
      true (L.Group_by.equal g g');
    Alcotest.(check bool)
      (Printf.sprintf "#%d small enough" index)
      true
      (L.Group_by.numel g <= 768);
    match L.Check.layout g with
    | Ok () -> ()
    | Error e -> Alcotest.failf "#%d not a bijection: %s" index e
  done;
  (* Different seeds give different streams (overwhelmingly likely for
     any non-degenerate generator; checked over a whole prefix). *)
  let differs =
    List.exists
      (fun index ->
        not
          (L.Group_by.equal
             (Lgen.layout_of_seed ~seed:1 ~index)
             (Lgen.layout_of_seed ~seed:2 ~index)))
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "seeds matter" true differs

(* --- Masked XOR swizzles: generation and shrinking ----------------------- *)

let contains_swizzle g =
  let s = Format.asprintf "%a" L.Group_by.pp g in
  let sub = "swizzlex_m" in
  let n = String.length sub in
  let rec has i =
    i + n <= String.length s && (String.sub s i n = sub || has (i + 1))
  in
  has 0

let test_generator_emits_masked_swizzles () =
  (* The random stream must actually exercise the masked-swizzle family,
     and every generated layout containing one must conform. *)
  let hits = ref [] in
  for index = 0 to 299 do
    let g = Lgen.layout_of_seed ~seed:11 ~index in
    if contains_swizzle g then hits := g :: !hits
  done;
  Alcotest.(check bool) "stream contains masked swizzles" true (!hits <> []);
  List.iter
    (fun g ->
      match (Conform.check_layout ~max_points:256 g).Conform.mismatch with
      | None -> ()
      | Some m ->
        Alcotest.failf "swizzled layout: [%s] %s" m.Conform.stage
          m.Conform.detail)
    !hits

let test_shrink_preserves_swizzle_piece () =
  (* Shrinking a failure whose trigger is the swizzle piece must keep the
     piece while stripping the unrelated OrderBy level and grouping. *)
  let g =
    L.Group_by.make
      ~chain:
        [
          L.Order_by.make
            [ L.Gallery.xor_swizzle_masked ~rows:8 ~cols:8 ~mask:5 ~shift:1 ];
          L.Order_by.make
            [
              L.Piece.reg ~dims:[ 4; 16 ] ~sigma:(L.Sigma.of_one_based [ 2; 1 ]);
            ];
        ]
      [ [ 8; 8 ] ]
  in
  let shrunk = Shrink.minimize contains_swizzle g in
  Alcotest.(check bool) "swizzle survives" true (contains_swizzle shrunk);
  Alcotest.(check int) "unrelated OrderBy dropped" 1
    (List.length (L.Group_by.chain shrunk));
  Alcotest.(check bool) "grouping flattened" true
    (L.Group_by.shapes shrunk = [ [ 64 ] ])

(* --- Cross-check: gallery corpus and random layouts --------------------- *)

let test_gallery_conforms () =
  List.iter
    (fun (name, g) ->
      match (Conform.check_layout g).Conform.mismatch with
      | None -> ()
      | Some m ->
        Alcotest.failf "%s: [%s] %s" name m.Conform.stage m.Conform.detail)
    Lego_conform.Corpus.all

let test_random_layouts_conform () =
  let report =
    Conform.run ~gallery:false ~random:40 ~seed:2026 ~max_points:512 ()
  in
  Alcotest.(check int) "layouts" 40 report.Conform.layouts;
  Alcotest.(check bool) "points covered" true (report.Conform.points > 0);
  match report.Conform.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "%s: [%s] %s" f.Conform.origin f.Conform.mismatch.Conform.stage
      f.Conform.mismatch.Conform.detail

(* --- Seeded-bug self-test ----------------------------------------------- *)

let test_broken_rule_caught_and_shrunk () =
  Lego_symbolic.Simplify.set_test_only_break_rule true;
  Fun.protect
    ~finally:(fun () ->
      Lego_symbolic.Simplify.set_test_only_break_rule false)
    (fun () ->
      let report = Conform.run ~random:40 ~seed:42 () in
      (match report.Conform.failures with
      | [] ->
        Alcotest.fail
          "the deliberately broken mod-elimination rule was not detected"
      | f :: _ ->
        (* The shrunk layout must itself still fail, and shrinking must
           not grow the layout. *)
        Alcotest.(check bool) "shrunk layout still fails" true
          ((Conform.check_layout f.Conform.shrunk).Conform.mismatch <> None);
        let size g =
          List.fold_left
            (fun a o -> a + List.length (L.Order_by.pieces o))
            (List.length (L.Group_by.shapes g))
            (L.Group_by.chain g)
        in
        Alcotest.(check bool) "shrunk no larger" true
          (size f.Conform.shrunk <= size f.Conform.layout);
        (* The printed reproduction must re-parse to the same layout. *)
        let printed = Format.asprintf "%a" L.Group_by.pp f.Conform.shrunk in
        match Lego_lang.Elab.layout_of_string printed with
        | Error e -> Alcotest.failf "shrunk repro %S does not parse: %s" printed e
        | Ok g ->
          Alcotest.(check bool) "repro round-trips" true
            (L.Group_by.equal g f.Conform.shrunk)))

let test_flag_reset_restores_conformance () =
  (* After disabling the broken rule (which flushes the memo caches), the
     same stream must be clean again. *)
  let report = Conform.run ~gallery:true ~random:10 ~seed:42 () in
  Alcotest.(check int) "clean after reset" 0
    (List.length report.Conform.failures)

(* --- Regression: budget accounting -------------------------------------- *)

let test_budget_checked_before_every_layout () =
  (* A zero budget is exhausted before the very first layout — including
     the gallery pass, which an earlier version exempted from the check.
     Nothing may run, and the report must say the budget cut it short. *)
  let report = Conform.run ~gallery:true ~random:5 ~budget_s:0. () in
  Alcotest.(check int) "no layouts checked" 0 report.Conform.layouts;
  Alcotest.(check int) "no points evaluated" 0 report.Conform.points;
  Alcotest.(check bool) "budget_exhausted set" true
    report.Conform.budget_exhausted;
  (* A generous budget on a tiny run must not trip the flag. *)
  let ok = Conform.run ~gallery:false ~random:2 ~budget_s:3600. () in
  Alcotest.(check bool) "budget not exhausted" false
    ok.Conform.budget_exhausted

(* --- Regression: identity-derived sample seeds --------------------------- *)

let with_broken_rule f =
  Lego_symbolic.Simplify.set_test_only_break_rule true;
  Fun.protect
    ~finally:(fun () -> Lego_symbolic.Simplify.set_test_only_break_rule false)
    f

(* Small [max_points] forces sampling on most generated layouts, so these
   tests exercise the seed path rather than the exhaustive one. *)
let sampled_max_points = 32

let failure_key f =
  ( f.Conform.origin,
    f.Conform.repro,
    Format.asprintf "%a" L.Group_by.pp f.Conform.layout,
    Format.asprintf "%a" L.Group_by.pp f.Conform.shrunk,
    f.Conform.mismatch.Conform.stage,
    f.Conform.mismatch.Conform.detail )

let test_sample_seed_independent_of_iteration_order () =
  (* Sample seeds derive from layout identity, so dropping the gallery
     pass must not change which points the random layouts sample — the
     random-origin failures of the two runs must be identical.  (An
     earlier version seeded from a shared counter, so any change in what
     ran before a layout changed its points.) *)
  with_broken_rule (fun () ->
      let with_gallery =
        Conform.run ~gallery:true ~random:25 ~seed:7
          ~max_points:sampled_max_points ()
      in
      let without_gallery =
        Conform.run ~gallery:false ~random:25 ~seed:7
          ~max_points:sampled_max_points ()
      in
      let random_only r =
        List.filter
          (fun f ->
            String.length f.Conform.origin >= 6
            && String.sub f.Conform.origin 0 6 = "random")
          r.Conform.failures
      in
      let a = List.map failure_key (random_only with_gallery) in
      let b = List.map failure_key (random_only without_gallery) in
      Alcotest.(check int) "same random failure count" (List.length a)
        (List.length b);
      List.iter2
        (fun ka kb ->
          Alcotest.(check bool)
            (Printf.sprintf "failure %s identical" (match ka with o, _, _, _, _, _ -> o))
            true (ka = kb))
        a b;
      (* Non-vacuity: at least one of those failures was on a sampled
         (not exhaustively checked) layout, where the seed matters. *)
      let sampled =
        List.exists
          (fun f -> L.Group_by.numel f.Conform.layout > sampled_max_points)
          (random_only with_gallery)
      in
      Alcotest.(check bool) "covers a sampled layout" true sampled)

(* --- Regression: shrinking reproduces from the pure (seed, index) seed --- *)

let test_shrink_reproducible_from_identity_seed () =
  (* Everything in a reported failure — detection, shrinking, the final
     mismatch — must be recomputable from (seed, index) alone.  (An
     earlier version shrank under a {e fresh} sample seed, so the shrunk
     layout could stop failing, or shrink differently, on replay.) *)
  with_broken_rule (fun () ->
      let seed = 7 in
      let report =
        Conform.run ~gallery:false ~random:25 ~seed
          ~max_points:sampled_max_points ()
      in
      let sampled_failures =
        List.filter
          (fun f -> L.Group_by.numel f.Conform.layout > sampled_max_points)
          report.Conform.failures
      in
      Alcotest.(check bool) "at least one sampled failure" true
        (sampled_failures <> []);
      List.iter
        (fun f ->
          let index =
            Scanf.sscanf f.Conform.origin "random layout #%d" (fun i -> i)
          in
          let g = Lgen.layout_of_seed ~seed ~index in
          Alcotest.(check bool) "layout reproduced" true
            (L.Group_by.equal g f.Conform.layout);
          let sample_seed = Conform.random_sample_seed ~seed ~index in
          let check c =
            Conform.check_layout ~max_points:sampled_max_points ~sample_seed c
          in
          Alcotest.(check bool) "mismatch reproduced" true
            ((check g).Conform.mismatch <> None);
          let shrunk =
            Shrink.minimize (fun c -> (check c).Conform.mismatch <> None) g
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: shrunk layout reproduced" f.Conform.origin)
            true
            (L.Group_by.equal shrunk f.Conform.shrunk))
        sampled_failures)

(* --- Determinism across pool sizes --------------------------------------- *)

let same_report r1 r2 =
  (* Structural equality modulo [seconds]. *)
  r1.Conform.layouts = r2.Conform.layouts
  && r1.Conform.points = r2.Conform.points
  && r1.Conform.c_skipped = r2.Conform.c_skipped
  && r1.Conform.budget_exhausted = r2.Conform.budget_exhausted
  && List.map failure_key r1.Conform.failures
     = List.map failure_key r2.Conform.failures

let test_parallel_run_is_deterministic () =
  (* The same corpus, with a seeded failure in it, at -j 1 and -j 4:
     counts, failures, their order, shrunk layouts and repro lines must
     all be bit-identical. *)
  with_broken_rule (fun () ->
      let go jobs gallery =
        Conform.run ~gallery ~random:20 ~seed:7 ~max_points:sampled_max_points
          ~jobs ()
      in
      let r1 = go 1 true and r4 = go 4 true in
      Alcotest.(check bool) "failures found" true (r1.Conform.failures <> []);
      Alcotest.(check bool) "-j 4 == -j 1 (gallery)" true (same_report r1 r4);
      let s1 = go 1 false and s4 = go 4 false in
      Alcotest.(check bool) "-j 4 == -j 1 (no gallery)" true
        (same_report s1 s4))

let test_parallel_run_clean_stream () =
  (* Determinism must also hold on a clean corpus (no failures at all). *)
  let go jobs = Conform.run ~gallery:true ~random:15 ~seed:3 ~jobs () in
  let r1 = go 1 and r4 = go 4 in
  Alcotest.(check int) "no failures" 0 (List.length r1.Conform.failures);
  Alcotest.(check bool) "-j 4 == -j 1" true (same_report r1 r4)

let suite =
  ( "conform",
    [
      Alcotest.test_case "C expr: truncating semantics" `Quick
        test_cexpr_truncating_semantics;
      Alcotest.test_case "C expr: printer round-trip" `Quick
        test_cexpr_matches_printer;
      Alcotest.test_case "generator: deterministic, valid, bounded" `Quick
        test_generator_deterministic_and_valid;
      Alcotest.test_case "generator emits masked swizzles" `Quick
        test_generator_emits_masked_swizzles;
      Alcotest.test_case "shrink preserves the swizzle piece" `Quick
        test_shrink_preserves_swizzle_piece;
      Alcotest.test_case "gallery corpus conforms" `Quick test_gallery_conforms;
      Alcotest.test_case "random layouts conform" `Quick
        test_random_layouts_conform;
      Alcotest.test_case "seeded bug is caught and shrunk" `Quick
        test_broken_rule_caught_and_shrunk;
      Alcotest.test_case "flag reset restores conformance" `Quick
        test_flag_reset_restores_conformance;
      Alcotest.test_case "budget checked before every layout" `Quick
        test_budget_checked_before_every_layout;
      Alcotest.test_case "sample seed independent of iteration order" `Quick
        test_sample_seed_independent_of_iteration_order;
      Alcotest.test_case "shrink reproducible from (seed, index)" `Quick
        test_shrink_reproducible_from_identity_seed;
      Alcotest.test_case "parallel run deterministic (seeded failure)" `Quick
        test_parallel_run_is_deterministic;
      Alcotest.test_case "parallel run deterministic (clean stream)" `Quick
        test_parallel_run_clean_stream;
    ] )
