(* Integration tests: the paper's evaluation kernels compute correct
   values on the simulator and reproduce the relative performance shapes
   of figures 12-14. *)

open Lego_apps

let ok what = Alcotest.(check (result unit string)) what (Ok ())

let small_matmul =
  { (Matmul.default_config 64) with Matmul.bm = 32; bn = 32; bk = 16; gm = 2 }

let test_matmul_numerics () =
  List.iter
    (fun v -> ok (Matmul.variant_name v) (Matmul.check_numerics small_matmul v))
    Matmul.variants

let test_matmul_layout_shapes () =
  let ls = Matmul.layouts small_matmul Matmul.NT in
  Alcotest.(check (list int))
    "A view" [ 2; 4; 32; 16 ]
    (Lego_layout.Group_by.dims ls.Matmul.dla);
  Alcotest.(check (result unit string))
    "CL bijective" (Ok ())
    (Lego_layout.Check.layout ls.Matmul.cl)

let test_matmul_rejects_partial_tiles () =
  Alcotest.(check bool) "indivisible size rejected" true
    (match Matmul.layouts (Matmul.default_config 100) Matmul.NN with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_matmul_rejects_degenerate_configs () =
  (* Every degenerate configuration must die in [check_divisible] with a
     clear [Matmul: ...] message, not deep in layout construction — in
     particular negative extents, which OCaml's [mod] lets through
     ((-128) mod 32 = 0). *)
  let rejected name cfg =
    match Matmul.layouts cfg Matmul.NN with
    | exception Invalid_argument msg ->
      if not (String.length msg >= 7 && String.sub msg 0 7 = "Matmul:") then
        Alcotest.failf "%s: unexpected message %S" name msg
    | _ -> Alcotest.failf "%s: degenerate config accepted" name
  in
  let base = Matmul.default_config 128 in
  rejected "K smaller than BK" { base with Matmul.k = 16 };
  rejected "zero tile" { base with Matmul.bm = 0 };
  rejected "negative M" { base with Matmul.m = -128 };
  rejected "negative tile" { base with Matmul.bk = -32; k = -128 };
  rejected "sub-footprint tile" { base with Matmul.bm = 8; m = 64 };
  (* The boundary case stays accepted. *)
  Alcotest.(check bool) "square 128 accepted" true
    (match Matmul.layouts base Matmul.NN with
    | _ -> true
    | exception Invalid_argument _ -> false)

let test_matmul_systems_comparable () =
  (* Figure 12a: LEGO within a few percent of the Triton reference. *)
  let cfg = Matmul.default_config 2048 in
  List.iter
    (fun v ->
      let lego = Matmul.run_lego cfg v in
      let triton = Matmul.run_triton_ref cfg v in
      let ratio = lego.Matmul.time_s /. triton.Matmul.time_s in
      if ratio > 1.1 || ratio < 0.9 then
        Alcotest.failf "%s: lego/triton ratio %.2f" (Matmul.variant_name v)
          ratio)
    Matmul.variants

let test_matmul_index_cost_reported () =
  Alcotest.(check bool) "positive cost" true
    (Matmul.index_cost small_matmul Matmul.NN > 0)

let test_softmax_numerics () =
  ok "softmax"
    (Softmax.check_numerics
       {
         Softmax.rows = 16;
         cols = 777;
         dtype = Lego_gpusim.Mem.F32;
         compute_values = true;
       })

let test_softmax_fused_beats_eager () =
  (* Figure 12d: the fused kernel wins at large N (less traffic, one
     launch). *)
  let cfg = Softmax.default_config 8192 in
  let fused = Softmax.run_fused cfg and eager = Softmax.run_eager cfg in
  Alcotest.(check bool)
    (Printf.sprintf "fused %.0f GB/s > eager %.0f GB/s" fused.Softmax.gbps
       eager.Softmax.gbps)
    true
    (fused.Softmax.time_s < eager.Softmax.time_s)

let test_group_gemm_shape () =
  (* Figure 12c: grouping many small GEMMs into one launch wins. *)
  let cfg = Group_gemm.default_config ~gemms:8 256 in
  let individual = Group_gemm.run_individual cfg in
  let grouped = Group_gemm.run_grouped cfg in
  Alcotest.(check bool) "grouped faster" true
    (grouped.Matmul.time_s < individual.Matmul.time_s);
  Alcotest.(check (result unit string))
    "pid layout bijective" (Ok ())
    (Lego_layout.Check.layout (Group_gemm.pid_layout cfg))

let test_transpose_numerics () =
  List.iter
    (fun l -> ok "transpose" (Transpose.check_numerics ~smem_layout:l
                                (Transpose.default_config 64)))
    [ Transpose.Unpadded; Transpose.Padded; Transpose.Swizzled ]

let test_transpose_shapes () =
  (* Figure 13: shared-tile beats naive; a conflict-free shared layout
     beats the conflicted one. *)
  let cfg = Transpose.default_config 2048 in
  let naive = Transpose.run_naive cfg in
  let swizzled = Transpose.run_shared ~smem_layout:Transpose.Swizzled cfg in
  let unpadded = Transpose.run_shared ~smem_layout:Transpose.Unpadded cfg in
  let padded = Transpose.run_shared ~smem_layout:Transpose.Padded cfg in
  Alcotest.(check bool) "shared beats naive" true
    (swizzled.Transpose.time_s < naive.Transpose.time_s);
  Alcotest.(check bool) "swizzle beats conflicted" true
    (swizzled.Transpose.time_s < unpadded.Transpose.time_s);
  Alcotest.(check bool) "padding ~ swizzling" true
    (padded.Transpose.time_s < unpadded.Transpose.time_s)

let test_nw_numerics () =
  List.iter
    (fun k -> ok "nw" (Nw.check_numerics k (Nw.default_config 64)))
    [ Nw.RowMajor; Nw.AntiDiagonal ]

let test_nw_speedup_shape () =
  (* Figure 14: the anti-diagonal layout wins, more so at larger sizes. *)
  let speedup len =
    let cfg = Nw.default_config len in
    let rm = Nw.run Nw.RowMajor cfg and ad = Nw.run Nw.AntiDiagonal cfg in
    rm.Nw.time_s /. ad.Nw.time_s
  in
  let s1k = speedup 1024 and s4k = speedup 4096 in
  Alcotest.(check bool)
    (Printf.sprintf "antidiag wins (%.2fx @1k, %.2fx @4k)" s1k s4k)
    true
    (s1k > 1.05 && s4k > s1k)

let test_nw_buff_index () =
  Alcotest.(check int) "row-major" 18 (Nw.buff_index Nw.RowMajor ~b:16 1 1);
  (* Anti-diagonal layout: (1,1) lies on diagonal 2 (third), after
     (0,0),(0,1),(1,0) and (0,2). *)
  Alcotest.(check int) "antidiag" 4 (Nw.buff_index Nw.AntiDiagonal ~b:16 1 1)

let test_fill_input_roundtrip () =
  let ls = Matmul.layouts small_matmul Matmul.TN in
  let f i j = float_of_int ((i * 100) + j) in
  let buf =
    Matmul.fill_input ls.Matmul.dla f ~rows:64 ~cols:64 Lego_gpusim.Mem.F16
  in
  (* Element (3, 5) read back through the layout. *)
  let idx = [ 3 / 32; 5 / 16; 3 mod 32; 5 mod 16 ] in
  Alcotest.(check (float 0.0))
    "readback" (f 3 5)
    (Lego_gpusim.Mem.get buf
       (Lego_layout.Group_by.apply_ints ls.Matmul.dla idx))

let suite =
  ( "apps",
    [
      Alcotest.test_case "matmul numerics (4 variants)" `Quick
        test_matmul_numerics;
      Alcotest.test_case "matmul layouts" `Quick test_matmul_layout_shapes;
      Alcotest.test_case "matmul rejects degenerate configs" `Quick
        test_matmul_rejects_degenerate_configs;
      Alcotest.test_case "matmul rejects partial tiles" `Quick
        test_matmul_rejects_partial_tiles;
      Alcotest.test_case "fig 12a: LEGO ~ Triton" `Slow
        test_matmul_systems_comparable;
      Alcotest.test_case "matmul index cost" `Quick
        test_matmul_index_cost_reported;
      Alcotest.test_case "softmax numerics" `Quick test_softmax_numerics;
      Alcotest.test_case "fig 12d: fused softmax wins" `Quick
        test_softmax_fused_beats_eager;
      Alcotest.test_case "fig 12c: grouped GEMM wins" `Slow
        test_group_gemm_shape;
      Alcotest.test_case "transpose numerics (3 shared layouts)" `Quick
        test_transpose_numerics;
      Alcotest.test_case "fig 13: transpose ordering" `Quick
        test_transpose_shapes;
      Alcotest.test_case "NW numerics (both layouts)" `Quick test_nw_numerics;
      Alcotest.test_case "fig 14: NW speedup shape" `Slow test_nw_speedup_shape;
      Alcotest.test_case "NW buffer indexing" `Quick test_nw_buff_index;
      Alcotest.test_case "fill_input respects layout" `Quick
        test_fill_input_roundtrip;
    ] )
