(* Differential tests for the warp-vectorized fast path: for every
   program, [Fastpath.run p] and [Simt.run (Fastpath.interpret p)] must
   produce bit-identical counters — over hand-written programs covering
   each op and over layout-driven programs from the conformance corpus
   and the seeded random generator. *)

open Lego_gpusim
module L = Lego_layout

let check_counters msg (a : Simt.counters) (b : Simt.counters) =
  let f name x y = Alcotest.(check (float 0.0)) (msg ^ ": " ^ name) x y in
  f "insn_warp" a.Simt.insn_warp b.Simt.insn_warp;
  f "g_txns" a.Simt.g_txns b.Simt.g_txns;
  f "g_bytes" a.Simt.g_bytes b.Simt.g_bytes;
  f "l2_hits" a.Simt.l2_hits b.Simt.l2_hits;
  f "s_accesses" a.Simt.s_accesses b.Simt.s_accesses;
  f "s_cycles" a.Simt.s_cycles b.Simt.s_cycles;
  f "flops_fp32" a.Simt.flops_fp32 b.Simt.flops_fp32;
  f "flops_fp16" a.Simt.flops_fp16 b.Simt.flops_fp16;
  f "flops_fp8" a.Simt.flops_fp8 b.Simt.flops_fp8;
  f "flops_tensor_fp16" a.Simt.flops_tensor_fp16 b.Simt.flops_tensor_fp16;
  f "flops_tensor_fp8" a.Simt.flops_tensor_fp8 b.Simt.flops_tensor_fp8;
  f "syncs" a.Simt.syncs b.Simt.syncs

let differential ?device ?smem_dtype ?sample_blocks ?key ~msg ~grid ~block
    ~smem_words prog =
  let fast =
    Fastpath.run ?device ?smem_dtype ?sample_blocks ?key ~grid ~block
      ~smem_words prog
  in
  let slow =
    Simt.run ?device ?smem_dtype ?sample_blocks ~grid ~block ~smem_words
      (Fastpath.interpret prog)
  in
  check_counters msg fast.Simt.counters slow.Simt.counters;
  fast

let tid ctx = Simt.linear_tid ctx

let test_uniform_ops () =
  let buf = Mem.create Mem.F32 4096 in
  let prog =
    [
      Fastpath.Alu 4;
      Fastpath.Gload (buf, fun ctx -> ((ctx.Simt.bx * 61) + tid ctx) mod 4096);
      Fastpath.Sstore (fun ctx -> (tid ctx * 3) mod 128);
      Fastpath.Sync;
      Fastpath.Sload (fun ctx -> tid ctx mod 128);
      Fastpath.Flops (Mem.F16, true, 8);
      Fastpath.Gstore
        (buf, fun ctx -> ((ctx.Simt.by * 131) + (tid ctx * 2)) mod 4096);
      Fastpath.Alu 0 (* dropped on both paths *);
    ]
  in
  ignore
    (differential ~msg:"uniform" ~grid:(2, 2) ~block:(32, 2) ~smem_words:128
       prog)

let test_masked_ops () =
  let buf = Mem.create Mem.F32 1024 in
  let lane_lt n ctx = ctx.Simt.tx < n in
  let prog =
    [
      Fastpath.Masked (lane_lt 16, Fastpath.Alu 3);
      Fastpath.Masked
        (lane_lt 7, Fastpath.Gload (buf, fun ctx -> tid ctx * 9 mod 1024));
      Fastpath.Masked (lane_lt 20, Fastpath.Sstore (fun ctx -> tid ctx * 2));
      Fastpath.Sync;
      (* mask depending on the block: legal when no cache key is used *)
      Fastpath.Masked
        ( (fun ctx -> (ctx.Simt.bx + ctx.Simt.tx) mod 2 = 0),
          Fastpath.Sload (fun ctx -> tid ctx) );
      Fastpath.Masked (lane_lt 5, Fastpath.Flops (Mem.F32, false, 6));
      (* fully-masked: must cost nothing on either path *)
      Fastpath.Masked ((fun _ -> false), Fastpath.Sstore (fun _ -> 0));
      (* nested masks conjoin *)
      Fastpath.Masked
        ( lane_lt 24,
          Fastpath.Masked
            ((fun ctx -> ctx.Simt.tx >= 8), Fastpath.Sload (fun ctx -> tid ctx))
        );
      Fastpath.Masked (lane_lt 16, Fastpath.Alu 0) (* dropped on both paths *);
    ]
  in
  ignore
    (differential ~msg:"masked" ~grid:(3, 1) ~block:(32, 2) ~smem_words:128
       prog)

let test_partial_warp () =
  (* NW-style 16-thread block: one warp with 16 lanes. *)
  let buf = Mem.create Mem.F32 256 in
  let prog =
    [
      Fastpath.Gload (buf, fun ctx -> (ctx.Simt.bx * 16) + ctx.Simt.tx);
      Fastpath.Sstore (fun ctx -> ctx.Simt.tx * 17 mod 64);
      Fastpath.Sync;
      Fastpath.Masked
        ( (fun ctx -> ctx.Simt.tx mod 3 = 0),
          Fastpath.Sload (fun ctx -> ctx.Simt.tx) );
      Fastpath.Alu 2;
    ]
  in
  ignore
    (differential ~msg:"partial warp" ~grid:(4, 1) ~block:(16, 1)
       ~smem_words:64 prog)

let test_sampled_grid () =
  let buf = Mem.create Mem.F32 (100 * 32) in
  let prog =
    [
      Fastpath.Gload
        ( buf,
          fun ctx ->
            if ctx.Simt.bx >= 80 then (ctx.Simt.bx * 32) + ctx.Simt.tx
            else ctx.Simt.bx * 32 );
      Fastpath.Flops (Mem.F8, false, 4);
    ]
  in
  let r =
    differential ~msg:"sampled" ~sample_blocks:40 ~grid:(100, 1) ~block:(32, 1)
      ~smem_words:0 prog
  in
  Alcotest.(check int) "subset simulated" 40 r.Simt.blocks_simulated

let test_l2_reuse () =
  (* The same working set read twice: the stateful L2 makes the second
     pass all hits; both paths must agree on the hit count too. *)
  let buf = Mem.create Mem.F32 2048 in
  let prog =
    [
      Fastpath.Gload (buf, fun ctx -> tid ctx * 8);
      Fastpath.Gload (buf, fun ctx -> tid ctx * 8);
      Fastpath.Gload (buf, fun ctx -> (tid ctx * 8) + 1);
    ]
  in
  let r =
    differential ~msg:"l2 reuse" ~grid:(1, 1) ~block:(32, 2) ~smem_words:0 prog
  in
  Alcotest.(check bool) "hits observed" true (r.Simt.counters.l2_hits > 0.0)

(* A layout-driven shared-tile program in the shape of the tuner's
   slots: threads store through the layout's physical map, sync, then
   read a shifted pattern back.  Exercises arbitrary [Group_by]s from
   the corpus / generator as address maps. *)
let layout_program g =
  let n = L.Group_by.numel g in
  let dims = L.Group_by.dims g in
  let phys flat = L.Group_by.apply_ints g (L.Shape.unflatten_ints dims flat) in
  [
    Fastpath.Alu 4;
    Fastpath.Sstore (fun ctx -> phys (tid ctx mod n));
    Fastpath.Sync;
    Fastpath.Sload (fun ctx -> phys (((tid ctx * 7) + 3) mod n));
    Fastpath.Masked
      ( (fun ctx -> ctx.Simt.tx < 16),
        Fastpath.Sload (fun ctx -> phys ((tid ctx * 5) mod n)) );
  ]

let check_layout ~msg ~smem_dtype g =
  let n = L.Group_by.numel g in
  ignore
    (differential ~msg ~smem_dtype ~grid:(2, 1) ~block:(32, 2) ~smem_words:n
       (layout_program g))

let test_corpus_layouts () =
  List.iter
    (fun (name, g) -> check_layout ~msg:name ~smem_dtype:Mem.F32 g)
    Lego_conform.Corpus.all

let test_lgen_layouts () =
  for index = 0 to 11 do
    let g = Lego_conform.Lgen.layout_of_seed ~seed:2026 ~index in
    let dt = match index mod 3 with 0 -> Mem.F32 | 1 -> Mem.F16 | _ -> Mem.F8 in
    check_layout
      ~msg:(Printf.sprintf "lgen seed=2026 #%d" index)
      ~smem_dtype:dt g
  done

let test_summary_cache_consistent () =
  (* A keyed run must produce the same counters as an uncached one, on
     the first (cold) and second (fully cached) evaluation alike. *)
  let g = snd (List.hd Lego_conform.Corpus.all) in
  let n = L.Group_by.numel g in
  let prog = layout_program g in
  let run ?key () =
    (Fastpath.run ?key ~grid:(4, 1) ~block:(32, 2) ~smem_words:n prog)
      .Simt.counters
  in
  Fastpath.clear_cache ();
  let plain = run () in
  let cold = run ~key:"test:cache" () in
  let warm = run ~key:"test:cache" () in
  check_counters "cold = plain" cold plain;
  check_counters "warm = plain" warm plain;
  (* and the effect path still agrees *)
  let slow =
    (Simt.run ~grid:(4, 1) ~block:(32, 2) ~smem_words:n
       (Fastpath.interpret prog))
      .Simt.counters
  in
  check_counters "warm = slow" warm slow

let test_masked_sync_rejected () =
  Alcotest.check_raises "masked sync"
    (Invalid_argument "Fastpath: sync must be uniform, not masked") (fun () ->
      ignore
        (Fastpath.run ~grid:(1, 1) ~block:(32, 1) ~smem_words:0
           [ Fastpath.Masked ((fun _ -> true), Fastpath.Sync) ]))

let test_oob_rejected_before_costing () =
  let c = Simt.fresh_counters () in
  (try
     ignore
       (Fastpath.run ~counters:c ~grid:(1, 1) ~block:(32, 1) ~smem_words:8
          [
            Fastpath.Sstore (fun ctx -> ctx.Simt.tx mod 8);
            Fastpath.Sload (fun ctx -> ctx.Simt.tx) (* lanes 8.. go OOB *);
          ]);
     Alcotest.fail "should have raised"
   with Invalid_argument _ -> ());
  Alcotest.(check (float 0.0)) "counters untouched" 0.0
    (c.Simt.insn_warp +. c.Simt.s_accesses +. c.Simt.s_cycles)

let suite =
  ( "fastpath",
    [
      Alcotest.test_case "uniform ops" `Quick test_uniform_ops;
      Alcotest.test_case "masked ops" `Quick test_masked_ops;
      Alcotest.test_case "partial warp" `Quick test_partial_warp;
      Alcotest.test_case "sampled grid" `Quick test_sampled_grid;
      Alcotest.test_case "l2 reuse" `Quick test_l2_reuse;
      Alcotest.test_case "corpus layouts bit-identical" `Quick
        test_corpus_layouts;
      Alcotest.test_case "lgen layouts bit-identical" `Quick test_lgen_layouts;
      Alcotest.test_case "summary cache consistent" `Quick
        test_summary_cache_consistent;
      Alcotest.test_case "masked sync rejected" `Quick test_masked_sync_rejected;
      Alcotest.test_case "oob rejected before costing" `Quick
        test_oob_rejected_before_costing;
    ] )
