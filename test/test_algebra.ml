(* The CuTe-style layout algebra: operator semantics, algebraic laws as
   QCheck2 properties, prover/concrete discharge agreement, and one
   deterministic rejection per side condition.

   The literal CuTe round-trip ((A / B) * B ~ A) is false in general —
   logical product replicates over the complement's order, not A's — so
   the properties below assert the laws that do hold: the tiler
   [concat (complement B n) B] is a bijection on [0, n), logical divide
   is exactly [A o tiler], and composing the divide with the tiler's
   inverse recovers A pointwise. *)

open Lego_layout
module A = Algebra
module D = Lego_symbolic.Discharge

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_layout = function
  | Ok l -> l
  | Error e -> Alcotest.failf "unexpected failure: %a" A.pp_error e

let ok_piece = function
  | Ok p -> p
  | Error e -> Alcotest.failf "unexpected failure: %a" A.pp_error e

let check_cond name expected = function
  | Ok _ -> Alcotest.failf "%s: expected %S failure, got a layout" name expected
  | Error (e : A.error) -> Alcotest.(check string) name expected e.A.cond

(* Both discharges must agree on every emitted obligation, so run each
   rejection through both. *)
let discharges = [ ("concrete", A.concrete); ("prover", D.prover) ]

(* --- generators ------------------------------------------------------- *)

let gen_pow2_extent = QCheck2.Gen.oneofl [ 1; 2; 2; 4; 4; 8 ]

let gen_shape =
  QCheck2.Gen.(int_range 1 3 >>= fun rank -> list_size (pure rank) gen_pow2_extent)

(* A random strided bijection on [0, numel shape): chain strides assigned
   in a random mode order. *)
let gen_bijection_of_shape shape =
  let open QCheck2.Gen in
  let rank = List.length shape in
  oneofl (Sigma.all rank) >>= fun sigma ->
  (* Physical order outermost-first: suffix products over permuted dims. *)
  let pdims = Sigma.permute sigma shape in
  let _, rev =
    List.fold_left
      (fun (acc, out) e -> (acc * e, acc :: out))
      (1, []) (List.rev pdims)
  in
  let lstr = Array.make rank 0 in
  List.iteri (fun k s -> lstr.(Sigma.apply sigma k) <- s) rev;
  pure (A.make ~shape ~stride:(Array.to_list lstr))

let gen_bijection = QCheck2.Gen.(gen_shape >>= gen_bijection_of_shape)

(* An arbitrary (possibly non-injective) layout. *)
let gen_layout =
  let open QCheck2.Gen in
  gen_shape >>= fun shape ->
  list_size (pure (List.length shape)) (oneofl [ 0; 1; 2; 3; 4; 8; 16 ])
  >>= fun stride -> pure (A.make ~shape ~stride)

(* A layout whose complement is defined: a random sub-chain of a random
   bijection on [0, m). *)
let gen_complementable =
  let open QCheck2.Gen in
  gen_bijection >>= fun full ->
  let modes = List.combine (A.shape full) (A.stride full) in
  list_size (pure (List.length modes)) bool >>= fun keep ->
  let kept =
    List.filteri (fun i _ -> List.nth keep i) modes
    |> List.filter (fun (e, _) -> e > 1)
  in
  let sub =
    match kept with
    | [] -> A.id 1
    | kept ->
        A.make ~shape:(List.map fst kept) ~stride:(List.map snd kept)
  in
  pure (sub, A.size full)

let prop name ?(count = 200) gen f = QCheck2.Test.make ~name ~count gen f

(* --- deterministic operator semantics --------------------------------- *)

let test_worked_example () =
  (* The DESIGN/README worked example: dividing the row-major 8x4 layout
     by a column tile (4):(4) — one matrix column per tile. *)
  let a = A.row [ 8; 4 ] in
  let b = A.make ~shape:[ 4 ] ~stride:[ 4 ] in
  check_int "size" 32 (A.size a);
  let d = ok_layout (D.logical_divide a b) in
  check_int "divide preserves size" 32 (A.size d);
  (* The inner mode walks one column of A (stride 4 in the row-major
     image); the outer modes enumerate the remaining columns and rows. *)
  check_int "tile step 0" 0 (A.apply_int d 0);
  check_int "tile step 1" 4 (A.apply_int d 1);
  check_int "tile step 2" 8 (A.apply_int d 2);
  check_int "tile step 3" 12 (A.apply_int d 3);
  check_int "next tile starts at the next column" 1 (A.apply_int d 4)

let test_complement_example () =
  let a = A.make ~shape:[ 4 ] ~stride:[ 8 ] in
  let c = ok_layout (D.complement a 32) in
  check_bool "complement of (4):(8) in 32" true
    (A.equal c (A.make ~shape:[ 8 ] ~stride:[ 1 ]));
  let t = ok_layout (D.tiler a 32) in
  check_bool "tiler is a bijection" true (A.is_bijection t)

let test_product_transpose () =
  (* concat ((complement a 4) o b) a for a=(2):(2), b=(2):(1) is the
     column-major 2x2 layout — the worked example of the summary docs. *)
  let a = A.make ~shape:[ 2 ] ~stride:[ 2 ] in
  let b = A.id 2 in
  let p = ok_layout (D.logical_product a b) in
  check_bool "product is the transpose" true
    (A.equal p (A.make ~shape:[ 2; 2 ] ~stride:[ 1; 2 ]))

let test_coalesce () =
  let t = A.make ~shape:[ 2; 2; 3; 1 ] ~stride:[ 6; 3; 1; 0 ] in
  check_bool "merge chained modes" true (A.equal (A.coalesce t) (A.id 12));
  check_bool "coalesce preserves semantics" true (A.equivalent t (A.coalesce t))

(* --- QCheck2 laws ----------------------------------------------------- *)

let prop_right_identity =
  prop "A o id(size A) = A" gen_layout (fun a ->
      let c = ok_layout (A.compose ~prove:A.concrete a (A.id (A.size a))) in
      A.equivalent a c)

let prop_compose_assoc =
  prop "composition is associative (pow2 bijections)"
    QCheck2.Gen.(
      gen_shape >>= fun shape ->
      triple
        (gen_bijection_of_shape shape)
        (gen_bijection_of_shape shape)
        (gen_bijection_of_shape shape))
    (fun (a, b, c) ->
      let ab = ok_layout (D.compose a b) in
      let bc = ok_layout (D.compose b c) in
      let l = ok_layout (D.compose ab c) in
      let r = ok_layout (D.compose a bc) in
      A.equivalent l r)

let prop_compose_semantics =
  prop "compose agrees with function composition"
    QCheck2.Gen.(
      gen_shape >>= fun shape ->
      pair (gen_bijection_of_shape shape) (gen_bijection_of_shape shape))
    (fun (a, b) ->
      let ab = ok_layout (D.compose a b) in
      A.size ab = A.size b
      && List.for_all
           (fun x -> A.apply_int ab x = A.apply_int a (A.apply_int b x))
           (List.init (A.size b) Fun.id))

let prop_complement_exact_cover =
  prop "complement is disjoint from A and covers [0, m)" gen_complementable
    (fun (a, m) ->
      let c = ok_layout (D.complement a m) in
      let seen = Array.make m false in
      let ok = ref (A.size a * A.size c = m) in
      for i = 0 to A.size a - 1 do
        for j = 0 to A.size c - 1 do
          let off = A.apply_int a i + A.apply_int c j in
          if off < 0 || off >= m || seen.(off) then ok := false
          else seen.(off) <- true
        done
      done;
      !ok && Array.for_all Fun.id seen)

let prop_tiler_bijection =
  prop "tiler B m is a bijection on [0, m)" gen_complementable (fun (b, m) ->
      let t = ok_layout (D.tiler b m) in
      A.is_bijection t
      &&
      let seen = Array.make m false in
      List.for_all
        (fun x ->
          let y = A.apply_int t x in
          y >= 0 && y < m && not seen.(y) && (seen.(y) <- true; true))
        (List.init m Fun.id))

let prop_divide_is_compose_tiler =
  prop "A / B = A o tiler(B, size A), and undoing the tiler recovers A"
    QCheck2.Gen.(
      gen_bijection >>= fun a ->
      gen_shape >>= fun bshape ->
      gen_bijection_of_shape bshape >>= fun b -> pure (a, b))
    (fun (a, b) ->
      QCheck2.assume (A.size a mod A.size b = 0);
      let d = ok_layout (D.logical_divide a b) in
      let t = ok_layout (D.tiler b (A.size a)) in
      List.for_all
        (fun x -> A.apply_int d x = A.apply_int a (A.apply_int t x))
        (List.init (A.size a) Fun.id)
      &&
      match A.inverse t with
      | None -> false
      | Some t_inv ->
          let back = ok_layout (D.compose d t_inv) in
          A.equivalent back a)

let prop_product_replicates =
  prop "tiler B n = logical_product B (id (n / size B))" gen_complementable
    (fun (b, m) ->
      QCheck2.assume (A.size b >= 1 && m mod A.size b = 0);
      let t = ok_layout (D.tiler b m) in
      let p = ok_layout (D.logical_product b (A.id (m / A.size b))) in
      A.equivalent t p)

let prop_inverse =
  prop "inverse undoes a bijection" gen_bijection (fun l ->
      match A.inverse l with
      | None -> false
      | Some inv ->
          List.for_all
            (fun x -> A.apply_int inv (A.apply_int l x) = x)
            (List.init (A.size l) Fun.id))

let prop_piece_roundtrip =
  prop "to_piece / of_piece preserve the flat function" gen_bijection (fun l ->
      let p = match D.to_piece l with
        | Ok p -> p
        | Error e -> Alcotest.failf "to_piece: %a" A.pp_error e
      in
      let back = match A.of_piece p with
        | Some b -> b
        | None -> Alcotest.fail "of_piece: not strided"
      in
      A.equivalent l back
      && List.for_all
           (fun x ->
             let idx = Shape.unflatten_ints (Piece.dims p) x in
             Piece.apply_ints p idx = A.apply_int l x)
           (List.init (A.size l) Fun.id))

let prop_compose_pieces =
  prop "compose_pieces is function composition (strided or composite)"
    QCheck2.Gen.(
      gen_shape >>= fun shape ->
      pair (gen_bijection_of_shape shape) (gen_bijection_of_shape shape))
    (fun (la, lb) ->
      let a = ok_piece (D.to_piece la) and b = ok_piece (D.to_piece lb) in
      let c = ok_piece (D.compose_pieces a b) in
      Piece.numel c = Piece.numel b
      && List.for_all
           (fun x ->
             let expect =
               A.apply_int la (A.apply_int lb x)
             in
             let idx = Shape.unflatten_ints (Piece.dims c) x in
             Piece.apply_ints c idx = expect
             && Shape.flatten_ints (Piece.dims c) (Piece.inv_ints c expect) = x)
           (List.init (Piece.numel b) Fun.id))

let prop_discharge_agreement =
  prop "prover and concrete discharges agree"
    QCheck2.Gen.(pair gen_layout gen_layout)
    (fun (a, b) ->
      let same r1 r2 =
        match (r1, r2) with
        | Ok l1, Ok l2 -> A.equal l1 l2
        | Error (e1 : A.error), Error e2 -> e1.A.cond = e2.A.cond
        | _ -> false
      in
      same (A.compose ~prove:A.concrete a b) (D.compose a b)
      && same
           (A.complement ~prove:A.concrete a (A.size a * 2))
           (D.complement a (A.size a * 2)))

(* --- rejection per side condition ------------------------------------- *)

let test_rejections () =
  List.iter
    (fun (dname, prove) ->
      let name cond = Printf.sprintf "%s/%s" dname cond in
      (* Left-divisibility: B's stride 2 cannot split the extent-3 mode. *)
      check_cond (name "left-divisibility") "left-divisibility"
        (A.compose ~prove (A.row [ 2; 3 ]) (A.make ~shape:[ 2 ] ~stride:[ 2 ]));
      (* Size: B's image walks outside A's domain. *)
      check_cond (name "compose size") "size"
        (A.compose ~prove (A.id 4) (A.make ~shape:[ 2 ] ~stride:[ 4 ]));
      (* Injectivity: stride-0 mode with extent > 1 has no complement. *)
      check_cond (name "injectivity") "injectivity"
        (A.complement ~prove (A.make ~shape:[ 2 ] ~stride:[ 0 ]) 4);
      (* Disjointness: block of size 2 at stride 1 overlaps stride 3. *)
      check_cond (name "disjointness") "disjointness"
        (A.complement ~prove (A.make ~shape:[ 2; 2 ] ~stride:[ 3; 1 ]) 12);
      (* Coverage: a block of 4 cannot tile a codomain of 6. *)
      check_cond (name "coverage") "coverage"
        (A.complement ~prove (A.id 4) 6);
      (* Bijectivity: (2):(2) misses every odd offset. *)
      check_cond (name "bijectivity") "bijectivity"
        (A.to_piece ~prove (A.make ~shape:[ 2 ] ~stride:[ 2 ]));
      (* Divide size: a tile of 3 cannot divide 8 elements. *)
      check_cond (name "divide size") "size"
        (A.logical_divide ~prove (A.row [ 4; 2 ]) (A.id 3));
      (* Piece composition: element counts must agree. *)
      check_cond (name "piece size") "size"
        (A.compose_pieces ~prove
           (Piece.reg ~dims:[ 4 ] ~sigma:(Sigma.identity 1))
           (Piece.reg ~dims:[ 2 ] ~sigma:(Sigma.identity 1))))
    discharges

let test_gen_fallback () =
  (* Composing through a gallery GenP cannot stay strided: the result is
     a composite GenP that still evaluates in every domain. *)
  let sw = Gallery.xor_swizzle ~rows:4 ~cols:4 in
  let tile = Piece.reg ~dims:[ 4; 4 ] ~sigma:(Sigma.reversal 2) in
  let c =
    match D.compose_pieces sw tile with
    | Ok p -> p
    | Error e -> Alcotest.failf "compose_pieces: %a" A.pp_error e
  in
  (match c with
  | Piece.Gen _ -> ()
  | Piece.Reg _ -> Alcotest.fail "expected a composite GenP");
  for x = 0 to 15 do
    let idx = Shape.unflatten_ints (Piece.dims c) x in
    let expect =
      Piece.apply_ints sw
        (Shape.unflatten_ints (Piece.dims sw) (Piece.apply_ints tile idx))
    in
    check_int "composite apply" expect (Piece.apply_ints c idx);
    check_int "composite inv" x
      (Shape.flatten_ints (Piece.dims c) (Piece.inv_ints c expect))
  done

let test_make_validation () =
  Alcotest.check_raises "negative stride"
    (Invalid_argument "Algebra.make: negative stride") (fun () ->
      ignore (A.make ~shape:[ 2 ] ~stride:[ -1 ]));
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Algebra.make: shape/stride rank mismatch") (fun () ->
      ignore (A.make ~shape:[ 2 ] ~stride:[ 1; 2 ]))

let suite =
  ( "algebra",
    [
      Alcotest.test_case "worked divide example" `Quick test_worked_example;
      Alcotest.test_case "complement example" `Quick test_complement_example;
      Alcotest.test_case "product transpose" `Quick test_product_transpose;
      Alcotest.test_case "coalesce" `Quick test_coalesce;
      Alcotest.test_case "per-condition rejections" `Quick test_rejections;
      Alcotest.test_case "GenP composite fallback" `Quick test_gen_fallback;
      Alcotest.test_case "make validation" `Quick test_make_validation;
    ]
    @ List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [
          prop_right_identity;
          prop_compose_assoc;
          prop_compose_semantics;
          prop_complement_exact_cover;
          prop_tiler_bijection;
          prop_divide_is_compose_tiler;
          prop_product_replicates;
          prop_inverse;
          prop_piece_roundtrip;
          prop_compose_pieces;
          prop_discharge_agreement;
        ] )
