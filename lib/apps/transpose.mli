(** 2-D matrix transpose (figure 13 of the paper).

    The paper compares MLIR-generated GPU code against the NVIDIA SDK
    CUDA kernels, in shared-memory and non-shared variants; both pairs
    perform equivalently, the interesting gap being naive (uncoalesced
    writes) versus shared-tile (both sides coalesced).  The shared tile's
    bank behaviour is itself a LEGO layout choice: unpadded row-major
    conflicts, an XOR-swizzled layout (from {!Lego_layout.Gallery}) does
    not. *)

type smem_layout =
  | Unpadded
  | Padded
  | Swizzled
  | Layout of Lego_layout.Group_by.t
      (** Any LEGO view of the [tile x tile] logical space — the hook the
          autotuner uses to try arbitrary shared-memory candidates. *)

type config = {
  m : int;
  n : int;
  tile : int;  (** square tile edge, default 32 *)
  compute_values : bool;
}

val default_config : ?tile:int -> int -> config

type result = {
  time_s : float;
  gbps : float;
  reports : Lego_gpusim.Simt.report list;
}

val run_naive :
  ?device:Lego_gpusim.Device.t -> ?sample_blocks:int -> config -> result
(** Direct [out[j][i] = in[i][j]]: reads coalesce, writes do not. *)

val run_shared :
  ?device:Lego_gpusim.Device.t ->
  ?sample_blocks:int ->
  ?smem_layout:smem_layout ->
  config ->
  result
(** Tile staged through shared memory; both global accesses coalesce. *)

val check_numerics : ?smem_layout:smem_layout -> config -> (unit, string) Stdlib.result
