module L = Lego_layout
module G = Lego_gpusim
open G

type layout_kind = RowMajor | AntiDiagonal

type config = {
  length : int;
  b : int;
  penalty : int;
  compute_values : bool;
}

let default_config ?(b = 16) ?(penalty = 10) length =
  if length mod b <> 0 then
    invalid_arg "Nw.default_config: length must be a multiple of b";
  { length; b; penalty; compute_values = false }

type result = {
  time_s : float;
  cells_per_s : float;
  reports : Simt.report list;
  scores : Mem.buffer;
}

(* Domain-local: [buff_index] is called from execution-layer worker
   domains (one bench configuration per task), so the memo must not be
   shared mutable state. *)
let antidiag_piece = Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let buff_index kind ~b i j =
  match kind with
  | RowMajor -> (i * (b + 1)) + j
  | AntiDiagonal ->
    let memo = Domain.DLS.get antidiag_piece in
    let piece =
      match Hashtbl.find_opt memo (b + 1) with
      | Some p -> p
      | None ->
        let p = L.Gallery.antidiag (b + 1) in
        Hashtbl.add memo (b + 1) p;
        p
    in
    L.Piece.apply_ints piece [ i; j ]

(* Deterministic pseudo-random similarity matrix, as Rodinia's generator. *)
let reference_entry i j = ((i * 7919) + (j * 104729)) mod 21 - 10

let cpu_reference cfg =
  let n = cfg.length + 1 in
  let f = Array.make (n * n) 0 in
  for i = 0 to cfg.length do
    f.(i * n) <- -i * cfg.penalty;
    f.(i) <- -i * cfg.penalty
  done;
  for i = 1 to cfg.length do
    for j = 1 to cfg.length do
      let diag = f.(((i - 1) * n) + (j - 1)) + reference_entry i j in
      let up = f.(((i - 1) * n) + j) - cfg.penalty in
      let left = f.((i * n) + (j - 1)) - cfg.penalty in
      f.((i * n) + j) <- max diag (max up left)
    done
  done;
  f

(* One kernel launch processes all tiles on one anti-diagonal of the tile
   grid; [ti_lo] is the first tile row on that diagonal. *)
let tile_kernel cfg ~sbuff ~addr_cost scores ~wrap ~d ~ti_lo (ctx : Simt.ctx)
    =
  let b = cfg.b and n = cfg.length + 1 in
  let ti = ti_lo + ctx.bx in
  let tj = d - ti in
  let tx = ctx.tx in
  let base_i = ti * b and base_j = tj * b in
  let sref_base = (b + 1) * (b + 1) in
  (* Stage boundaries: top row, left column, corner. *)
  Simt.alu addr_cost;
  Simt.sstore (sbuff 0 (tx + 1)) (Simt.gload scores (wrap ((base_i * n) + base_j + tx + 1)));
  Simt.alu addr_cost;
  Simt.sstore (sbuff (tx + 1) 0) (Simt.gload scores (wrap (((base_i + tx + 1) * n) + base_j)));
  if tx = 0 then begin
    Simt.alu addr_cost;
    Simt.sstore (sbuff 0 0) (Simt.gload scores (wrap ((base_i * n) + base_j)))
  end;
  (* Stage the reference tile (row per thread). *)
  for jj = 0 to b - 1 do
    let i = base_i + tx + 1 and j = base_j + jj + 1 in
    Simt.sstore (sref_base + (tx * b) + jj) (float_of_int (reference_entry i j))
  done;
  Simt.sync ();
  (* Forward wavefront over the 2b-1 anti-diagonals of the tile. *)
  for s = 0 to (2 * b) - 2 do
    let i = tx + 1 and j = s - tx + 1 in
    if j >= 1 && j <= b then begin
      Simt.alu (4 * addr_cost);
      let diag = Simt.sload (sbuff (i - 1) (j - 1)) in
      let up = Simt.sload (sbuff (i - 1) j) in
      let left = Simt.sload (sbuff i (j - 1)) in
      let r = Simt.sload (sref_base + ((i - 1) * b) + (j - 1)) in
      Simt.flops Mem.I32 4;
      let v =
        Float.max
          (diag +. r)
          (Float.max (up -. float_of_int cfg.penalty)
             (left -. float_of_int cfg.penalty))
      in
      Simt.sstore (sbuff i j) v
    end;
    Simt.sync ()
  done;
  (* Write the tile interior back, thread per column so the global
     stores of a round are consecutive (coalesced), as in Rodinia. *)
  for ii = 0 to b - 1 do
    let i = ii + 1 and j = tx + 1 in
    Simt.alu addr_cost;
    let v = Simt.sload (sbuff i j) in
    Simt.gstore scores (wrap (((base_i + i) * n) + base_j + j)) v
  done

(* Fully parameterized driver: [sbuff] maps logical [(i, j)] of the
   [(b+1) x (b+1)] score buffer to a shared-memory word, [addr_cost] is
   the per-access ALU charge of evaluating that map on a GPU.  The
   autotuner calls this directly with candidate layouts. *)
let run_custom ?(device = Device.a100) ~sbuff ~addr_cost cfg =
  let n = cfg.length + 1 in
  let nb = cfg.length / cfg.b in
  let cap = if cfg.compute_values then n * n else 1 lsl 22 in
  let scores, wrap = Mem.create_arena ~label:"scores" Mem.I32 (n * n) ~cap in
  for i = 0 to cfg.length do
    Mem.set scores (wrap (i * n)) (float_of_int (-i * cfg.penalty));
    Mem.set scores (wrap i) (float_of_int (-i * cfg.penalty))
  done;
  let smem_words = ((cfg.b + 1) * (cfg.b + 1)) + (cfg.b * cfg.b) in
  let reports = ref [] in
  for d = 0 to (2 * nb) - 2 do
    let ti_lo = max 0 (d - nb + 1) and ti_hi = min d (nb - 1) in
    let blocks = ti_hi - ti_lo + 1 in
    let sample_blocks = if cfg.compute_values then None else Some 2 in
    let r =
      Simt.run ~device ?sample_blocks ~grid:(blocks, 1) ~block:(cfg.b, 1)
        ~smem_words
        (tile_kernel cfg ~sbuff ~addr_cost scores ~wrap ~d ~ti_lo)
    in
    reports := r :: !reports
  done;
  let reports = List.rev !reports in
  let time_s = Metrics.sum_times_s reports in
  let cells = float_of_int cfg.length *. float_of_int cfg.length in
  { time_s; cells_per_s = cells /. time_s; reports; scores }

let run ?device kind cfg =
  run_custom ?device
    ~sbuff:(buff_index kind ~b:cfg.b)
    ~addr_cost:(if kind = AntiDiagonal then 8 else 2)
    cfg

let check_numerics kind cfg =
  let cfg = { cfg with compute_values = true } in
  let { scores; _ } = run kind cfg in
  let expect = cpu_reference cfg in
  let n = cfg.length + 1 in
  let bad = ref None in
  for i = 0 to cfg.length do
    for j = 0 to cfg.length do
      if !bad = None then begin
        let got = int_of_float (Mem.get scores ((i * n) + j)) in
        if got <> expect.((i * n) + j) then
          bad := Some (i, j, got, expect.((i * n) + j))
      end
    done
  done;
  match !bad with
  | None -> Ok ()
  | Some (i, j, got, want) ->
    Error
      (Printf.sprintf "NW %s: F[%d][%d] = %d, expected %d"
         (match kind with RowMajor -> "row-major" | AntiDiagonal -> "antidiag")
         i j got want)
