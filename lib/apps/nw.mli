(** Needleman–Wunsch (Rodinia), figure 14 of the paper.

    The CUDA implementation keeps a [(b+1) x (b+1)] score buffer in shared
    memory and updates its anti-diagonals in parallel; with the standard
    row-major layout those accesses are stride-[b], i.e. heavily
    bank-conflicted.  The paper replaces the buffer's layout with the
    anti-diagonal order of figure 8 (through an [Arr2D] wrapper whose
    indexing LEGO generates), making wavefront accesses unit-stride and
    gaining 1.4-2.1x.  [run] reproduces both variants on the simulator;
    the kernels also compute the real DP scores so small instances can be
    validated against {!cpu_reference}. *)

type layout_kind = RowMajor | AntiDiagonal

type config = {
  length : int;  (** sequence length; must be a multiple of [b] *)
  b : int;  (** CUDA block edge (Rodinia uses 16) *)
  penalty : int;
  compute_values : bool;
}

val default_config : ?b:int -> ?penalty:int -> int -> config

type result = {
  time_s : float;
  cells_per_s : float;  (** DP cell updates per second *)
  reports : Lego_gpusim.Simt.report list;
  scores : Lego_gpusim.Mem.buffer;  (** the [(L+1)^2] DP matrix *)
}

val buff_index : layout_kind -> b:int -> int -> int -> int
(** The shared-buffer offset of logical [(i, j)] under the chosen layout
    (the [Arr2D] operator of the paper, LEGO-generated in the
    anti-diagonal case). *)

val run :
  ?device:Lego_gpusim.Device.t -> layout_kind -> config -> result

val run_custom :
  ?device:Lego_gpusim.Device.t ->
  sbuff:(int -> int -> int) ->
  addr_cost:int ->
  config ->
  result
(** [run_custom ~sbuff ~addr_cost cfg] runs the same kernel with an
    arbitrary shared score-buffer layout: [sbuff i j] is the shared word
    of logical [(i, j)] over the [(b+1) x (b+1)] space and [addr_cost]
    the per-access ALU charge of that address computation.  [run] is the
    special case using {!buff_index} (cost 2 row-major, 8 anti-diagonal);
    the autotuner feeds candidate layouts through this entry point. *)

val cpu_reference : config -> int array
(** Sequential DP over the same random inputs. *)

val check_numerics : layout_kind -> config -> (unit, string) Stdlib.result
