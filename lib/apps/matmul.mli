(** Tiled matrix multiplication, layout-independently expressed (section 5
    of the paper).

    The kernel template is fixed; the computation layout (Triton's grouped
    program-id ordering) and the data layouts of A, B and C are LEGO
    layouts supplied separately, so the four transpose variants of
    figures 12a/12b differ {e only} in the [Row]/[Col] pieces handed to
    the template — the paper's headline usability claim. *)

type variant = NN | NT | TN | TT
(** Whether A and B are row-major (N) or column-major (T): [NT] computes
    A * B with B stored transposed, etc. *)

val variant_name : variant -> string
val variants : variant list

type config = {
  m : int;
  n : int;
  k : int;
  bm : int;  (** tile size in M *)
  bn : int;
  bk : int;
  gm : int;  (** program-id group size (Triton's GROUP_SIZE_M) *)
  dtype : Lego_gpusim.Mem.dtype;
  tensor : bool;  (** use tensor-core rates *)
  compute_values : bool;
      (** run the real arithmetic (numerics checks; keep sizes small) *)
}

val default_config : ?dtype:Lego_gpusim.Mem.dtype -> int -> config
(** Square problem of the given size with the paper's tile setup
    (128x128x32 tiles, GM=8, tensor cores, values off). *)

type layouts = {
  cl : Lego_layout.Group_by.t;  (** program-id (computation) layout *)
  dla : Lego_layout.Group_by.t;  (** A: [m/bm, k/bk, bm, bk] tiled view *)
  dlb : Lego_layout.Group_by.t;
  dlc : Lego_layout.Group_by.t;
}

val layouts : config -> variant -> layouts
(** Raises [Invalid_argument] with a [Matmul: ...] message when the
    configuration is degenerate: a non-positive problem or tile extent
    (negative multiples satisfy OCaml's [mod], so they are rejected
    explicitly), a problem extent not divisible by its tile, or a tile
    below the kernel's 16x16 thread footprint.  The [run_*] entry points
    validate through this same check before touching any buffer. *)

val index_cost : config -> variant -> int
(** Weighted operation count of the (simplified) generated index
    expressions per A/B/C address — the cost the kernel charges as index
    arithmetic. *)

val fill_input :
  Lego_layout.Group_by.t -> (int -> int -> float) -> rows:int -> cols:int ->
  Lego_gpusim.Mem.dtype -> Lego_gpusim.Mem.buffer
(** Materialize logical element [(i, j) -> f i j] into a buffer laid out
    physically by the given LEGO layout. *)

type result = {
  time_s : float;
  gflops : float;
  reports : Lego_gpusim.Simt.report list;
}

val run_lego :
  ?device:Lego_gpusim.Device.t ->
  ?sample_blocks:int ->
  config ->
  variant ->
  result
(** The LEGO-generated kernel. *)

val run_triton_ref :
  ?device:Lego_gpusim.Device.t ->
  ?sample_blocks:int ->
  config ->
  variant ->
  result
(** The hand-written Triton reference (figure 1): same tiling, pointer
    arithmetic modeled after the reference kernel's incremental updates. *)

val run_cublas :
  ?device:Lego_gpusim.Device.t ->
  ?sample_blocks:int ->
  config ->
  variant ->
  result
(** Library baseline: autotunes the tile configuration per problem size
    from a small palette, as cuBLAS heuristics do. *)

val check_numerics : config -> variant -> (unit, string) Stdlib.result
(** Run with real values against a CPU reference ([compute_values] is
    forced on; use small sizes). *)
