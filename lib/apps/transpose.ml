module L = Lego_layout
module G = Lego_gpusim
open G

type smem_layout =
  | Unpadded
  | Padded
  | Swizzled
  | Layout of L.Group_by.t

type config = { m : int; n : int; tile : int; compute_values : bool }

let default_config ?(tile = 32) size =
  { m = size; n = size; tile; compute_values = false }

type result = {
  time_s : float;
  gbps : float;
  reports : Simt.report list;
}

let check cfg =
  if cfg.m mod cfg.tile <> 0 || cfg.n mod cfg.tile <> 0 then
    invalid_arg "Transpose: matrix must be divisible into tiles"

(* Both offsets are LEGO views indexed by the INPUT coordinates (i, j):
   the input is the row-major [m x n] view, and the output offset is the
   same logical index through a column-major-ordered view — transposition
   is purely a layout change, which is the point of the paper's
   figure 13 example. *)
let in_layout cfg = L.Sugar.tiled_view ~group:[ [ cfg.m; cfg.n ] ] ()

let out_layout cfg =
  L.Sugar.tiled_view
    ~order:[ L.Sugar.col [ cfg.m; cfg.n ] ]
    ~group:[ [ cfg.m; cfg.n ] ]
    ()

let useful_bytes cfg = 2.0 *. float_of_int (cfg.m * cfg.n) *. 4.0

let finish cfg reports =
  let time_s = Metrics.sum_times_s reports in
  {
    time_s;
    gbps = Metrics.gbps ~useful_bytes:(useful_bytes cfg) time_s;
    reports;
  }

let arena_cap = 1 lsl 22

let run_naive ?(device = Device.a100) ?(sample_blocks = 4) cfg =
  check cfg;
  let inp, wi = Mem.create_arena ~label:"in" Mem.F32 (cfg.m * cfg.n) ~cap:arena_cap in
  let out, wo = Mem.create_arena ~label:"out" Mem.F32 (cfg.m * cfg.n) ~cap:arena_cap in
  let li = in_layout cfg and lo = out_layout cfg in
  let t = cfg.tile in
  let kern (ctx : Simt.ctx) =
    (* One warp-wide row of the tile per thread row; each thread walks the
       tile column-wise so that reads coalesce and writes do not. *)
    for r = 0 to (t * t / 256) - 1 do
      let i = (ctx.by * t) + (ctx.ty + (r * (256 / t))) in
      let j = (ctx.bx * t) + ctx.tx in
      Simt.alu 4;
      let v = Simt.gload inp (wi (L.Group_by.apply_ints li [ i; j ])) in
      (* The transposed view's offset for the same (i, j) — strided. *)
      Simt.gstore out (wo (L.Group_by.apply_ints lo [ i; j ])) v
    done
  in
  let report =
    Simt.run ~device ~sample_blocks
      ~grid:(cfg.n / t, cfg.m / t)
      ~block:(t, 256 / t) ~smem_words:0 kern
  in
  finish cfg [ report ]

let smem_view cfg layout =
  let t = cfg.tile in
  match layout with
  | Unpadded ->
    ((fun i j -> (i * t) + j), t * t)
  | Padded ->
    ((fun i j -> (i * (t + 1)) + j), t * (t + 1))
  | Swizzled ->
    let piece = L.Gallery.xor_swizzle ~rows:t ~cols:t in
    ((fun i j -> L.Piece.apply_ints piece [ i; j ]), t * t)
  | Layout g ->
    if L.Group_by.shapes g <> [ [ t; t ] ] then
      invalid_arg "Transpose: custom shared layout must view [tile; tile]";
    ((fun i j -> L.Group_by.apply_ints g [ i; j ]), L.Group_by.numel g)

let run_shared ?(device = Device.a100) ?(sample_blocks = 4)
    ?(smem_layout = Swizzled) cfg =
  check cfg;
  let inp, wi = Mem.create_arena ~label:"in" Mem.F32 (cfg.m * cfg.n) ~cap:arena_cap in
  let out, wo = Mem.create_arena ~label:"out" Mem.F32 (cfg.m * cfg.n) ~cap:arena_cap in
  let li = in_layout cfg and lo = out_layout cfg in
  let t = cfg.tile in
  let saddr, swords = smem_view cfg smem_layout in
  let rows_per_iter = 256 / t in
  let kern (ctx : Simt.ctx) =
    (* Stage the tile: coalesced reads, shared stores (possibly
       conflicting, depending on the shared layout)... *)
    for r = 0 to (t / rows_per_iter) - 1 do
      let ti = ctx.ty + (r * rows_per_iter) in
      let i = (ctx.by * t) + ti and j = (ctx.bx * t) + ctx.tx in
      Simt.alu 4;
      let v = Simt.gload inp (wi (L.Group_by.apply_ints li [ i; j ])) in
      Simt.sstore (saddr ti ctx.tx) v
    done;
    Simt.sync ();
    (* ...then write the transposed tile with coalesced global stores;
       the shared reads walk a column of the tile. *)
    for r = 0 to (t / rows_per_iter) - 1 do
      let tj = ctx.ty + (r * rows_per_iter) in
      let oi = (ctx.bx * t) + tj and oj = (ctx.by * t) + ctx.tx in
      Simt.alu 4;
      let v = Simt.sload (saddr ctx.tx tj) in
      (* Element (i, j) = (oj, oi) of the input lands at out[oi][oj]. *)
      Simt.gstore out (wo (L.Group_by.apply_ints lo [ oj; oi ])) v
    done
  in
  let report =
    Simt.run ~device ~sample_blocks
      ~grid:(cfg.n / t, cfg.m / t)
      ~block:(t, rows_per_iter) ~smem_words:swords kern
  in
  finish cfg [ report ]

let check_numerics ?(smem_layout = Swizzled) cfg =
  check cfg;
  let cfg = { cfg with compute_values = true } in
  let inp = Mem.init ~label:"in" Mem.F32 (cfg.m * cfg.n) (fun i -> float_of_int i) in
  let out = Mem.create ~label:"out" Mem.F32 (cfg.m * cfg.n) in
  let li = in_layout cfg and lo = out_layout cfg in
  let t = cfg.tile in
  let saddr, swords = smem_view cfg smem_layout in
  let rows_per_iter = 256 / t in
  let kern (ctx : Simt.ctx) =
    for r = 0 to (t / rows_per_iter) - 1 do
      let ti = ctx.ty + (r * rows_per_iter) in
      let i = (ctx.by * t) + ti and j = (ctx.bx * t) + ctx.tx in
      let v = Simt.gload inp (L.Group_by.apply_ints li [ i; j ]) in
      Simt.sstore (saddr ti ctx.tx) v
    done;
    Simt.sync ();
    for r = 0 to (t / rows_per_iter) - 1 do
      let tj = ctx.ty + (r * rows_per_iter) in
      let oi = (ctx.bx * t) + tj and oj = (ctx.by * t) + ctx.tx in
      let v = Simt.sload (saddr ctx.tx tj) in
      Simt.gstore out (L.Group_by.apply_ints lo [ oj; oi ]) v
    done
  in
  let _ =
    Simt.run ~grid:(cfg.n / t, cfg.m / t) ~block:(t, rows_per_iter)
      ~smem_words:swords kern
  in
  (* Same logical (i, j), two views: the output under the column-major
     view must equal the input under the row-major view. *)
  let worst = ref 0.0 in
  for i = 0 to cfg.m - 1 do
    for j = 0 to cfg.n - 1 do
      let got = Mem.get out (L.Group_by.apply_ints lo [ i; j ]) in
      let expect = Mem.get inp (L.Group_by.apply_ints li [ i; j ]) in
      worst := Float.max !worst (Float.abs (got -. expect))
    done
  done;
  if !worst = 0.0 then Ok ()
  else Error (Printf.sprintf "transpose: max |err| = %g" !worst)
