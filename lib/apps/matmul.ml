module L = Lego_layout
module S = Lego_symbolic
module G = Lego_gpusim
open G

type variant = NN | NT | TN | TT

let variant_name = function
  | NN -> "AB"
  | NT -> "AB^T"
  | TN -> "A^TB"
  | TT -> "A^TB^T"

let variants = [ NN; NT; TN; TT ]

type config = {
  m : int;
  n : int;
  k : int;
  bm : int;
  bn : int;
  bk : int;
  gm : int;
  dtype : Mem.dtype;
  tensor : bool;
  compute_values : bool;
}

let default_config ?(dtype = Mem.F16) size =
  {
    m = size;
    n = size;
    k = size;
    bm = 128;
    bn = 128;
    bk = 32;
    gm = 8;
    dtype;
    tensor = true;
    compute_values = false;
  }

type layouts = {
  cl : L.Group_by.t;
  dla : L.Group_by.t;
  dlb : L.Group_by.t;
  dlc : L.Group_by.t;
}

let check_divisible cfg =
  (* Positivity first: OCaml's [mod] lets negative multiples through
     ((-128) mod 32 = 0), so a divisibility check alone would accept
     negative problem or tile extents and fail much later, deep in
     layout construction, with an unrelated message. *)
  let pos what v =
    if v <= 0 then
      invalid_arg (Printf.sprintf "Matmul: %s (%d) must be positive" what v)
  in
  pos "M" cfg.m;
  pos "N" cfg.n;
  pos "K" cfg.k;
  pos "BM" cfg.bm;
  pos "BN" cfg.bn;
  pos "BK" cfg.bk;
  let ok what a b =
    if a mod b <> 0 then
      invalid_arg
        (Printf.sprintf "Matmul: %s (%d) must be divisible by its tile (%d)"
           what a b)
  in
  ok "M" cfg.m cfg.bm;
  ok "N" cfg.n cfg.bn;
  ok "K" cfg.k cfg.bk;
  ok "BM" cfg.bm 16;
  ok "BN" cfg.bn 16;
  ok "BM*BK" (cfg.bm * cfg.bk) 256;
  ok "BK*BN" (cfg.bk * cfg.bn) 256

let data_layout ~rows ~cols ~brows ~bcols major =
  let order =
    match major with
    | `Row -> L.Sugar.row [ rows; cols ]
    | `Col -> L.Sugar.col [ rows; cols ]
  in
  L.Sugar.tiled_view ~order:[ order ]
    ~group:[ [ rows / brows; cols / bcols ]; [ brows; bcols ] ]
    ()

let layouts cfg variant =
  check_divisible cfg;
  let num_pid_m = cfg.m / cfg.bm and num_pid_n = cfg.n / cfg.bn in
  let gm = if cfg.gm > 0 && num_pid_m mod cfg.gm = 0 then cfg.gm else 1 in
  let cl =
    L.Sugar.tiled_view
      ~order:
        [ L.Sugar.col [ num_pid_m / gm; 1 ]; L.Sugar.col [ gm; num_pid_n ] ]
      ~group:[ [ num_pid_m; num_pid_n ] ]
      ()
  in
  let a_major, b_major =
    match variant with
    | NN -> (`Row, `Row)
    | NT -> (`Row, `Col)
    | TN -> (`Col, `Row)
    | TT -> (`Col, `Col)
  in
  {
    cl;
    dla = data_layout ~rows:cfg.m ~cols:cfg.k ~brows:cfg.bm ~bcols:cfg.bk a_major;
    dlb = data_layout ~rows:cfg.k ~cols:cfg.n ~brows:cfg.bk ~bcols:cfg.bn b_major;
    dlc = data_layout ~rows:cfg.m ~cols:cfg.n ~brows:cfg.bm ~bcols:cfg.bn `Row;
  }

let addr_costs cfg variant =
  let ls = layouts cfg variant in
  let cost l = S.Cost.ops (S.Sym.apply l) in
  (cost ls.dla, cost ls.dlb, cost ls.dlc)

let index_cost cfg variant =
  let a, b, c = addr_costs cfg variant in
  a + b + c

let fill_input layout f ~rows ~cols dtype =
  let buf = Mem.create ~label:"input" dtype (rows * cols) in
  let dims = L.Group_by.dims layout in
  let brows, bcols =
    match dims with
    | [ _tr; _tc; brows; bcols ] -> (brows, bcols)
    | _ -> invalid_arg "Matmul.fill_input: expected a 2-level tiled layout"
  in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let idx = [ i / brows; j / bcols; i mod brows; j mod bcols ] in
      Mem.set buf (L.Group_by.apply_ints layout idx) (f i j)
    done
  done;
  buf

type result = {
  time_s : float;
  gflops : float;
  reports : Simt.report list;
}

(* The layout-independent kernel template: stage A and B tiles through
   shared memory, accumulate a per-thread fragment, write C back.  All
   addresses come from the supplied LEGO layouts. *)
let kernel ~cfg ~ls ~majors:(a_major, b_major) ~alu_a ~alu_b ~alu_c ~k_tiles
    ~a_buf ~b_buf ~c_buf ~wrap_a ~wrap_b ~wrap_c ~sa ~sb (ctx : Simt.ctx) =
  let tid = Simt.linear_tid ctx in
  let pid = ctx.bx in
  let lpid_m, lpid_n =
    match L.Group_by.inv_ints ls.cl pid with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  let fm = cfg.bm / 16 and fn = cfg.bn / 16 in
  let acc =
    if cfg.compute_values then Array.make (fm * fn) 0.0 else [||]
  in
  let nthreads = 256 in
  let a_elems = cfg.bm * cfg.bk / nthreads in
  let b_elems = cfg.bk * cfg.bn / nthreads in
  for kt = 0 to k_tiles - 1 do
    (* Stage the A tile.  The index expression is evaluated once per tile
       as a vectorized tensor computation (Triton semantics), so its cost
       is charged per tile, not per element. *)
    Simt.alu alu_a;
    for l = 0 to a_elems - 1 do
      let e = tid + (l * nthreads) in
      (* Walk the tile along its physically contiguous dimension so that
         consecutive threads load consecutive addresses — the assignment a
         layout-driven generator derives from the data layout. *)
      let tm, tk =
        match a_major with
        | `Row -> (e / cfg.bk, e mod cfg.bk)
        | `Col -> (e mod cfg.bm, e / cfg.bm)
      in
      let g = wrap_a (L.Group_by.apply_ints ls.dla [ lpid_m; kt; tm; tk ]) in
      let v = Simt.gload a_buf g in
      Simt.sstore ((tm * cfg.bk) + tk) v;
      if cfg.compute_values then sa.((tm * cfg.bk) + tk) <- v
    done;
    (* Stage the B tile. *)
    Simt.alu alu_b;
    for l = 0 to b_elems - 1 do
      let e = tid + (l * nthreads) in
      let tk, tn =
        match b_major with
        | `Row -> (e / cfg.bn, e mod cfg.bn)
        | `Col -> (e mod cfg.bk, e / cfg.bk)
      in
      let g = wrap_b (L.Group_by.apply_ints ls.dlb [ kt; lpid_n; tk; tn ]) in
      let v = Simt.gload b_buf g in
      Simt.sstore ((cfg.bm * cfg.bk) + (tk * cfg.bn) + tn) v;
      if cfg.compute_values then sb.((tk * cfg.bn) + tn) <- v
    done;
    Simt.sync ();
    (* Fragment loads modelling ldmatrix: one vectorized shared read per
       fragment row/column. *)
    for f = 0 to fm - 1 do
      ignore (Simt.sload ((((ctx.ty * fm) + f) * cfg.bk) mod (cfg.bm * cfg.bk)))
    done;
    for f = 0 to fn - 1 do
      ignore
        (Simt.sload
           (cfg.bm * cfg.bk + (((ctx.tx * fn) + f) mod (cfg.bk * cfg.bn))))
    done;
    Simt.flops ~tensor:cfg.tensor cfg.dtype (2 * fm * fn * cfg.bk);
    if cfg.compute_values then
      for fi = 0 to fm - 1 do
        let row = (ctx.ty * fm) + fi in
        for fj = 0 to fn - 1 do
          let col = (ctx.tx * fn) + fj in
          let s = ref acc.((fi * fn) + fj) in
          for kk = 0 to cfg.bk - 1 do
            s := !s +. (sa.((row * cfg.bk) + kk) *. sb.((kk * cfg.bn) + col))
          done;
          acc.((fi * fn) + fj) <- !s
        done
      done;
    Simt.sync ()
  done;
  (* Write the C fragment (index tensor computed once). *)
  Simt.alu alu_c;
  for fi = 0 to fm - 1 do
    for fj = 0 to fn - 1 do
      let tm = (ctx.ty * fm) + fi and tn = (ctx.tx * fn) + fj in
      let g = wrap_c (L.Group_by.apply_ints ls.dlc [ lpid_m; lpid_n; tm; tn ]) in
      let v = if cfg.compute_values then acc.((fi * fn) + fj) else 0.0 in
      Simt.gstore c_buf g v
    done
  done

let majors_of = function
  | NN -> (`Row, `Row)
  | NT -> (`Row, `Col)
  | TN -> (`Col, `Row)
  | TT -> (`Col, `Col)

let arena_cap = 1 lsl 22

let run_generic ?(device = Device.a100) ?sample_blocks ~alu ~cfg ~variant
    ?(wraps = (Fun.id, Fun.id, Fun.id)) ~a_buf ~b_buf ~c_buf () =
  let ls = layouts cfg variant in
  let alu_a, alu_b, alu_c = alu in
  let full_k_tiles = cfg.k / cfg.bk in
  (* Perf runs truncate the (uniform) K loop and rescale the body time. *)
  let k_tiles =
    if cfg.compute_values then full_k_tiles else min full_k_tiles 8
  in
  let grid = ((cfg.m / cfg.bm) * (cfg.n / cfg.bn), 1) in
  let sample_blocks = if cfg.compute_values then None else sample_blocks in
  let sa = Array.make (cfg.bm * cfg.bk) 0.0
  and sb = Array.make (cfg.bk * cfg.bn) 0.0 in
  let smem_words = (cfg.bm * cfg.bk) + (cfg.bk * cfg.bn) in
  let wrap_a, wrap_b, wrap_c = wraps in
  let report =
    Simt.run ~device ?sample_blocks ~grid ~block:(16, 16) ~smem_words
      (kernel ~cfg ~ls ~majors:(majors_of variant) ~alu_a ~alu_b ~alu_c
         ~k_tiles ~a_buf ~b_buf ~c_buf ~wrap_a ~wrap_b ~wrap_c ~sa ~sb)
  in
  let b = Metrics.breakdown report in
  let scale = float_of_int full_k_tiles /. float_of_int k_tiles in
  let time_s = b.Metrics.launch_s +. ((b.Metrics.total_s -. b.Metrics.launch_s) *. scale) in
  let useful_flops = 2.0 *. float_of_int cfg.m *. float_of_int cfg.n *. float_of_int cfg.k in
  { time_s; gflops = Metrics.gflops ~useful_flops time_s; reports = [ report ] }

(* Performance runs sample a few blocks; the operands need not be
   materialized at full size (see Mem.create_arena). *)
let dummy_buffers cfg =
  let a, wa = Mem.create_arena ~label:"A" cfg.dtype (cfg.m * cfg.k) ~cap:arena_cap in
  let b, wb = Mem.create_arena ~label:"B" cfg.dtype (cfg.k * cfg.n) ~cap:arena_cap in
  let c, wc = Mem.create_arena ~label:"C" cfg.dtype (cfg.m * cfg.n) ~cap:arena_cap in
  ((a, b, c), (wa, wb, wc))

let run_lego ?device ?(sample_blocks = 2) cfg variant =
  let (a_buf, b_buf, c_buf), wraps = dummy_buffers cfg in
  run_generic ?device ~sample_blocks ~alu:(addr_costs cfg variant) ~cfg
    ~variant ~wraps ~a_buf ~b_buf ~c_buf ()

(* The hand-written reference of figure 1 strength-reduces its pointers
   (a_ptrs += BK * stride per iteration), so its per-address arithmetic is
   a small constant; transposed loads pay one extra op (the paper notes
   Triton's slight edge on A^T B^T and slight loss on A^T B in FP8). *)
let triton_addr_cost variant =
  match variant with
  | NN -> (3, 3, 4)
  | NT -> (3, 4, 4)
  | TN -> (5, 3, 4)
  | TT -> (4, 4, 4)

let run_triton_ref ?device ?(sample_blocks = 2) cfg variant =
  let (a_buf, b_buf, c_buf), wraps = dummy_buffers cfg in
  run_generic ?device ~sample_blocks ~alu:(triton_addr_cost variant) ~cfg
    ~variant ~wraps ~a_buf ~b_buf ~c_buf ()

let cublas_palette = [ (64, 64, 32); (128, 128, 32); (256, 128, 32) ]

let run_cublas ?device ?(sample_blocks = 2) cfg variant =
  (* Library heuristics: try a small palette of tile shapes, keep the
     fastest legal one. *)
  let candidates =
    List.filter_map
      (fun (bm, bn, bk) ->
        let cfg' = { cfg with bm; bn; bk; gm = 8 } in
        match layouts cfg' variant with
        | _ -> Some cfg'
        | exception Invalid_argument _ -> None)
      cublas_palette
  in
  let candidates = if candidates = [] then [ cfg ] else candidates in
  let results =
    List.map
      (fun cfg' ->
        let (a_buf, b_buf, c_buf), wraps = dummy_buffers cfg' in
        run_generic ?device ~sample_blocks ~alu:(3, 3, 3) ~cfg:cfg' ~variant
          ~wraps ~a_buf ~b_buf ~c_buf ())
      candidates
  in
  List.fold_left
    (fun best r -> if r.time_s < best.time_s then r else best)
    (List.hd results) (List.tl results)

let cpu_reference cfg fa fb =
  Array.init (cfg.m * cfg.n) (fun idx ->
      let i = idx / cfg.n and j = idx mod cfg.n in
      let acc = ref 0.0 in
      for kk = 0 to cfg.k - 1 do
        acc := !acc +. (fa i kk *. fb kk j)
      done;
      !acc)

let check_numerics cfg variant =
  let cfg = { cfg with compute_values = true } in
  let ls = layouts cfg variant in
  let fa i j = Float.of_int (((i * 7) + (j * 3)) mod 11) -. 5.0 in
  let fb i j = Float.of_int (((i * 5) + (j * 2)) mod 13) -. 6.0 in
  let a_buf = fill_input ls.dla fa ~rows:cfg.m ~cols:cfg.k cfg.dtype in
  let b_buf = fill_input ls.dlb fb ~rows:cfg.k ~cols:cfg.n cfg.dtype in
  let c_buf = Mem.create ~label:"C" cfg.dtype (cfg.m * cfg.n) in
  let _ =
    run_generic ~alu:(addr_costs cfg variant) ~cfg ~variant ~a_buf ~b_buf
      ~c_buf ()
  in
  let expect = cpu_reference cfg fa fb in
  (* C is written through dlc (row-major tiled = plain row-major order
     after flattening); read it back through the layout. *)
  let worst = ref 0.0 in
  for i = 0 to cfg.m - 1 do
    for j = 0 to cfg.n - 1 do
      let idx = [ i / cfg.bm; j / cfg.bn; i mod cfg.bm; j mod cfg.bn ] in
      let got = Mem.get c_buf (L.Group_by.apply_ints ls.dlc idx) in
      worst := Float.max !worst (Float.abs (got -. expect.((i * cfg.n) + j)))
    done
  done;
  if !worst <= 1e-6 then Ok ()
  else
    Error
      (Printf.sprintf "matmul %s: max |err| = %g" (variant_name variant) !worst)
