type dtype = F8 | F16 | F32 | I32

let dtype_bytes = function F8 -> 1 | F16 -> 2 | F32 -> 4 | I32 -> 4
let dtype_name = function F8 -> "fp8" | F16 -> "fp16" | F32 -> "fp32" | I32 -> "i32"

type buffer = { id : int; label : string; dtype : dtype; data : float array }

(* Atomic: buffers are created from execution-layer worker domains (the
   bench sweeps run one simulated kernel configuration per task), and ids
   must stay distinct so coalescing never conflates two buffers. *)
let next_id = Atomic.make 0

let create ?(label = "buf") dtype n =
  { id = 1 + Atomic.fetch_and_add next_id 1; label; dtype; data = Array.make n 0.0 }

let of_array ?(label = "buf") dtype data =
  { id = 1 + Atomic.fetch_and_add next_id 1; label; dtype; data = Array.copy data }

let init ?(label = "buf") dtype n f =
  { id = 1 + Atomic.fetch_and_add next_id 1; label; dtype; data = Array.init n f }

let length b = Array.length b.data
let get b i = b.data.(i)
let set b i v = b.data.(i) <- v
let to_array b = Array.copy b.data

let fill_random ?(seed = 42) b =
  let state = Random.State.make [| seed; b.id |] in
  Array.iteri
    (fun i _ -> b.data.(i) <- (Random.State.float state 2.0) -. 1.0)
    b.data

let create_arena ?label dtype requested ~cap =
  if cap <= 0 then invalid_arg "Mem.create_arena: cap must be positive";
  if requested <= cap then (create ?label dtype requested, Fun.id)
  else
    let buf = create ?label dtype cap in
    (* Euclidean remainder: OCaml [mod] is negative for negative addresses
       and would fold them out of bounds. *)
    let fold addr =
      let r = addr mod cap in
      if r < 0 then r + cap else r
    in
    (buf, fold)

let max_abs_diff b expected =
  if Array.length expected <> Array.length b.data then
    invalid_arg "Mem.max_abs_diff: length mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. expected.(i))))
    b.data;
  !worst
