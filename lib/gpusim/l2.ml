(* O(1) exact LRU: an intrusive doubly-linked recency list threaded
   through slot indices of growable arrays (no per-node allocation), plus
   a sector -> slot table.  [head] is the least-recently-used slot,
   [tail] the most-recently-used; every access unlinks its slot and
   re-appends it at the tail, and a miss at capacity recycles the head
   slot in place.  The observable hit/miss sequence is identical to the
   previous tick-scan implementation (unique ticks made its minimum the
   unique least-recently-touched sector — exactly this list's head); only
   the per-access cost changes, from O(resident sectors) on a full-cache
   miss to O(1). *)

type t = {
  capacity : int;
  slot_of : (int * int, int) Hashtbl.t; (* sector -> slot *)
  mutable sector : (int * int) array; (* slot -> sector *)
  mutable next : int array; (* slot -> towards MRU, -1 at tail *)
  mutable prev : int array; (* slot -> towards LRU, -1 at head *)
  mutable head : int; (* LRU slot, -1 when empty *)
  mutable tail : int; (* MRU slot, -1 when empty *)
  mutable size : int;
}

let create_sized ~capacity =
  if capacity < 1 then invalid_arg "L2.create_sized: capacity must be >= 1";
  {
    capacity;
    slot_of = Hashtbl.create 1024;
    sector = [||];
    next = [||];
    prev = [||];
    head = -1;
    tail = -1;
    size = 0;
  }

let create (device : Device.t) =
  create_sized
    ~capacity:(max 1 (device.Device.l2_bytes / device.Device.global_txn_bytes))

(* Slots are only ever added until [capacity] and then recycled, so the
   arrays grow geometrically up to the working set, never to the (much
   larger) nominal capacity. *)
let ensure_slot t =
  if t.size >= Array.length t.sector then begin
    let n = max 16 (min t.capacity (2 * Array.length t.sector)) in
    let grow a fill =
      let b = Array.make n fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.sector <- grow t.sector (0, 0);
    t.next <- grow t.next (-1);
    t.prev <- grow t.prev (-1)
  end

let unlink t s =
  let p = t.prev.(s) and n = t.next.(s) in
  if p >= 0 then t.next.(p) <- n else t.head <- n;
  if n >= 0 then t.prev.(n) <- p else t.tail <- p

let append_mru t s =
  t.prev.(s) <- t.tail;
  t.next.(s) <- -1;
  if t.tail >= 0 then t.next.(t.tail) <- s else t.head <- s;
  t.tail <- s

let access t sector =
  match Hashtbl.find_opt t.slot_of sector with
  | Some s ->
    unlink t s;
    append_mru t s;
    true
  | None ->
    (if t.size >= t.capacity then begin
       (* Recycle the LRU slot in place. *)
       let s = t.head in
       unlink t s;
       Hashtbl.remove t.slot_of t.sector.(s);
       t.sector.(s) <- sector;
       Hashtbl.add t.slot_of sector s;
       append_mru t s
     end
     else begin
       ensure_slot t;
       let s = t.size in
       t.size <- t.size + 1;
       t.sector.(s) <- sector;
       Hashtbl.add t.slot_of sector s;
       append_mru t s
     end);
    false
