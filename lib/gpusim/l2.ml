type t = {
  capacity : int;
  table : (int * int, int) Hashtbl.t;  (* sector -> last-use tick *)
  mutable tick : int;
}

let create (device : Device.t) =
  let capacity = max 1 (device.Device.l2_bytes / device.Device.global_txn_bytes) in
  { capacity; table = Hashtbl.create 1024; tick = 0 }

let evict_lru t =
  (* Deterministic LRU: the victim is the sector with the smallest
     last-use tick; ties are impossible because ticks are unique. *)
  let victim =
    Hashtbl.fold
      (fun sector tick acc ->
        match acc with
        | Some (_, best) when best <= tick -> acc
        | _ -> Some (sector, tick))
      t.table None
  in
  match victim with
  | Some (sector, _) -> Hashtbl.remove t.table sector
  | None -> ()

let access t sector =
  t.tick <- t.tick + 1;
  if Hashtbl.mem t.table sector then (
    Hashtbl.replace t.table sector t.tick;
    true)
  else (
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    Hashtbl.replace t.table sector t.tick;
    false)
