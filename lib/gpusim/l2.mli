(** Deterministic L2 sector-cache model.

    The L2 is modeled as a fully-associative cache of
    [Device.l2_bytes / Device.global_txn_bytes] sectors with exact LRU
    replacement, cold at every kernel launch.  One instance is created
    per {!Simt.run}; both the effect-handler path and the fast path
    drive it over the {e same} canonical access order (warps in
    ascending id, loads before stores within a warp batch, segments in
    ascending [(buffer id, segment)] order), so the hit counters are
    reproducible and bit-identical across paths.

    Eviction scans the table, which is fine for the corpus this
    simulator runs (working sets stay well under the A100/H100
    capacities, so evictions are rare to nonexistent). *)

type t

val create : Device.t -> t
(** [create d] is an empty (cold) cache for device [d]. *)

val access : t -> int * int -> bool
(** [access t (buffer_id, segment)] touches one sector and returns
    [true] on a hit, [false] on a miss (the sector is resident
    afterwards either way). *)
