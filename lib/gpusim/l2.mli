(** Deterministic L2 sector-cache model.

    The L2 is modeled as a fully-associative cache of
    [Device.l2_bytes / Device.global_txn_bytes] sectors with exact LRU
    replacement, cold at every kernel launch.  One instance is created
    per {!Simt.run}; both the effect-handler path and the fast path
    drive it over the {e same} canonical access order (warps in
    ascending id, loads before stores within a warp batch, segments in
    ascending [(buffer id, segment)] order), so the hit counters are
    reproducible and bit-identical across paths.

    Recency is an intrusive doubly-linked list threaded through slot
    arrays, so every access — eviction at capacity included — is O(1);
    working sets larger than the cache keep the simulator linear instead
    of quadratic in the resident sector count. *)

type t

val create : Device.t -> t
(** [create d] is an empty (cold) cache for device [d]. *)

val create_sized : capacity:int -> t
(** A cold cache holding exactly [capacity] sectors — the eviction path
    at test scale.  Raises [Invalid_argument] when [capacity < 1]. *)

val access : t -> int * int -> bool
(** [access t (buffer_id, segment)] touches one sector and returns
    [true] on a hit, [false] on a miss (the sector is resident
    afterwards either way). *)
