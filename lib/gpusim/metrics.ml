type breakdown = {
  launch_s : float;
  compute_s : float;
  dram_s : float;
  l2_s : float;
  smem_s : float;
  issue_s : float;
  total_s : float;
}

let block_fill (d : Device.t) ~threads =
  (* Integer ceiling: a 32-thread block is exactly one warp, a 33-thread
     block two.  A block fills its share of an SM once it brings one
     eighth of the device's resident-warp capacity (the typical
     concurrent-block count) — 8 warps on A100/H100, 6 on RTX 4090 —
     rather than a hardcoded 8; smaller blocks waste issue slots
     proportionally. *)
  let warps_per_block =
    (threads + d.Device.warp_size - 1) / d.Device.warp_size
  in
  let full_warps = max 1 (d.Device.max_warps_per_sm / 8) in
  Float.min 1.0 (float_of_int warps_per_block /. float_of_int full_warps)

let breakdown (r : Simt.report) =
  let d = r.device in
  let gx, gy = r.grid in
  let blocks = float_of_int (gx * gy) in
  let sms = float_of_int d.Device.num_sms in
  (* Occupancy: fraction of the chip the grid can keep busy. *)
  let bx, by = r.block in
  let util = Float.min 1.0 (blocks /. sms) *. block_fill d ~threads:(bx * by) in
  let util = Float.max util 1e-6 in
  let c = r.counters in
  let tera t = t *. 1e12 in
  let compute_s =
    (c.Simt.flops_fp32 /. tera d.Device.fp32_tflops)
    +. (c.Simt.flops_fp16 /. tera d.Device.fp16_tflops)
    +. (c.Simt.flops_fp8 /. tera d.Device.fp8_tflops)
    +. (c.Simt.flops_tensor_fp16 /. tera d.Device.tensor_fp16_tflops)
    +. (c.Simt.flops_tensor_fp8 /. tera d.Device.tensor_fp8_tflops)
  in
  let compute_s = compute_s /. util in
  (* DRAM only sees L2 misses; every transaction still crosses the L2. *)
  let miss_bytes =
    c.Simt.g_bytes
    -. (c.Simt.l2_hits *. float_of_int d.Device.global_txn_bytes)
  in
  let miss_bytes = Float.max miss_bytes 0.0 in
  let dram_s = miss_bytes /. (d.Device.dram_bw_gbps *. 1e9) /. util in
  let l2_s = c.Simt.g_bytes /. (d.Device.l2_bw_gbps *. 1e9) /. util in
  let clock_hz = d.Device.clock_ghz *. 1e9 in
  (* One shared-memory instruction retires per SM per cycle; conflicts
     serialize into extra cycles. *)
  let smem_s = c.Simt.s_cycles /. (clock_hz *. sms *. util) in
  let issue_s =
    c.Simt.insn_warp
    /. (clock_hz *. sms *. util *. float_of_int d.Device.issue_per_sm_per_cycle)
  in
  let launch_s = d.Device.kernel_launch_us *. 1e-6 in
  let body =
    Float.max
      (Float.max compute_s dram_s)
      (Float.max l2_s (Float.max smem_s issue_s))
  in
  {
    launch_s;
    compute_s;
    dram_s;
    l2_s;
    smem_s;
    issue_s;
    total_s = launch_s +. body;
  }

let time_s r = (breakdown r).total_s
let sum_times_s rs = List.fold_left (fun acc r -> acc +. time_s r) 0.0 rs
let gflops ~useful_flops t = useful_flops /. t /. 1e9
let gbps ~useful_bytes t = useful_bytes /. t /. 1e9

let pp_breakdown ppf b =
  Format.fprintf ppf
    "total=%.3gus (launch=%.3g compute=%.3g dram=%.3g l2=%.3g smem=%.3g \
     issue=%.3g)"
    (b.total_s *. 1e6) (b.launch_s *. 1e6) (b.compute_s *. 1e6)
    (b.dram_s *. 1e6) (b.l2_s *. 1e6) (b.smem_s *. 1e6) (b.issue_s *. 1e6)
