(** Global-memory buffers for the simulator.

    All element types are stored as [float] values; the [dtype] tag only
    affects memory-traffic accounting (byte width) and FLOP-rate
    selection. *)

type dtype = F8 | F16 | F32 | I32

val dtype_bytes : dtype -> int
val dtype_name : dtype -> string

type buffer = private {
  id : int;
  label : string;
  dtype : dtype;
  data : float array;
}

val create : ?label:string -> dtype -> int -> buffer
val of_array : ?label:string -> dtype -> float array -> buffer
val init : ?label:string -> dtype -> int -> (int -> float) -> buffer
val length : buffer -> int
val get : buffer -> int -> float
val set : buffer -> int -> float -> unit
val to_array : buffer -> float array
val fill_random : ?seed:int -> buffer -> unit
(** Uniform values in [-1, 1] (deterministic per seed). *)

val max_abs_diff : buffer -> float array -> float

val create_arena :
  ?label:string -> dtype -> int -> cap:int -> buffer * (int -> int)
(** [create_arena dtype requested ~cap] allocates [min requested cap]
    elements and returns the buffer together with an address-folding
    function (the identity when everything fits).  Sampled performance
    runs use it to touch representative addresses without materializing
    multi-gigabyte operands; folding preserves intra-warp address deltas,
    so coalescing behaviour is unchanged.  Folding is a Euclidean
    remainder, so negative addresses land in [0 .. cap-1] rather than out
    of bounds. *)
