(** Pure warp-access cost arithmetic, shared by the effect-handler
    simulator ({!Simt}), the vectorized fast path ({!Fastpath}) and the
    tuner's static predictor ([Lego_tune.Predict]).  Keeping one copy of
    the bank-conflict and coalescing rules is what makes the fast path's
    bit-identity guarantee (and the Predict-vs-Simt differential test)
    meaningful. *)

module Seg : Set.S with type elt = int * int
(** Distinct global-memory transaction segments, keyed by
    [(buffer id, byte segment index)]. *)

val bank_cycles : Device.t -> elem_bytes:int -> int list -> int
(** [bank_cycles d ~elem_bytes addrs] is the number of shared-memory
    cycles a warp needs for one access to element addresses [addrs]:
    the maximum, over banks, of the number of {e distinct} words
    requested from that bank (broadcast of one word is free), and at
    least 1 — an empty or fully-broadcast access still costs a cycle. *)

val segments : Device.t -> (Mem.buffer * int) list -> Seg.t
(** [segments d accesses] is the set of distinct
    [(buffer id, segment)] global-memory transactions touched by a
    warp's accesses, where a segment covers
    [d.global_txn_bytes] consecutive bytes. *)

val txn_count : Device.t -> elem_bytes:int -> int list -> int
(** [txn_count d ~elem_bytes addrs] is the number of distinct segments
    covered by element addresses [addrs] of a single buffer. *)

val bank_cycles_arr : Device.t -> elem_bytes:int -> int array -> int -> int
(** [bank_cycles_arr d ~elem_bytes a n] is {!bank_cycles} over the
    first [n] entries of [a] — the allocation-free form the scoring
    hot loops use ({!bank_cycles} is a wrapper over it, so the two can
    never disagree). *)

val txn_count_arr : Device.t -> elem_bytes:int -> int array -> int -> int
(** [txn_count_arr d ~elem_bytes a n] is {!txn_count} over the first
    [n] entries of [a]. *)
