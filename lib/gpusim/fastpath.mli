(** Warp-vectorized fast path for convergent kernels.

    A {!program} is a straight-line warp program: every thread executes
    the same op sequence, with per-lane addresses given as functions of
    the thread context and divergence expressed as {e predication}
    ([Masked]) rather than control flow.  For such programs the
    lock-step fiber machinery of {!Simt} is pure overhead — each round's
    per-warp access batch is exactly [{addr ctx | lane in warp, masks
    hold}] — so {!run} evaluates all lanes of a warp in one call and
    costs the batch directly, with no fibers, no memory traffic, and an
    optional per-warp summary cache.  Kernels with genuinely divergent
    control flow (data-dependent loops, per-lane trip counts) stay on
    the effect-handler interpreter.

    {2 Equivalence contract}

    [run p] and [Simt.run (interpret p)] produce {e bit-identical}
    counters: both paths share one implementation of the cost arithmetic
    ({!Access}, [Simt.cost_global], [Simt.record_flops]), drive the
    per-launch {!L2} over the same canonical order (program order,
    warps ascending, segments ascending), and scale sampled grids with
    the same float operations.  All counter increments are
    integer-valued, so sums are exact and grouping cannot introduce
    rounding skew.  The conformance suite checks this differentially
    over the gallery and seeded random layouts.

    {2 Caching contract}

    When [~key] is passed to {!run}, shared-memory summaries and the
    active-lane counts of predicated [Alu]/[Flops] ops are cached per
    [(key, op index, warp)] in domain-local storage.  This is sound
    only if the program's shared addresses and masks are {e
    block-independent} (functions of [tx]/[ty] alone) and [key]
    uniquely identifies the program's shared-access and predication
    structure (e.g. ["slot:" ^ layout fingerprint]).  Global addresses may depend on
    the block freely — they are never cached because the L2 state is
    launch-wide. *)

type addr = Simt.ctx -> int
type mask = Simt.ctx -> bool

type op =
  | Gload of Mem.buffer * addr
  | Gstore of Mem.buffer * addr
  | Sload of addr
  | Sstore of addr
  | Flops of Mem.dtype * bool * int
  | Alu of int  (** [Alu n] with [n <= 0] occupies no round (dropped). *)
  | Sync
  | Masked of mask * op
      (** Predication: masked-off lanes cost nothing but stay
          converged.  Nesting conjoins masks; [Masked (_, Sync)] is
          rejected. *)

type program = op list

val interpret : program -> Simt.ctx -> unit
(** The effect-handler derivation of a program: a kernel for
    {!Simt.run} in which active lanes perform the op and masked-off
    lanes park a {!Simt.noop} round.  This is the reference semantics
    {!run} is checked against. *)

val run :
  ?device:Device.t ->
  ?smem_dtype:Mem.dtype ->
  ?sample_blocks:int ->
  ?counters:Simt.counters ->
  ?key:string ->
  grid:int * int ->
  block:int * int ->
  smem_words:int ->
  program ->
  Simt.report
(** Vectorized evaluation; same signature, validation, sampling,
    guards, and report as {!Simt.run} (plus [?key], see the caching
    contract above).  Addresses are validated before any cost is
    recorded, and accumulation into [?counters] happens only after the
    launch completes. *)

val clear_cache : unit -> unit
(** Drop this domain's per-warp summary cache (tests / benchmarks). *)
