type addr = Simt.ctx -> int
type mask = Simt.ctx -> bool

type op =
  | Gload of Mem.buffer * addr
  | Gstore of Mem.buffer * addr
  | Sload of addr
  | Sstore of addr
  | Flops of Mem.dtype * bool * int
  | Alu of int
  | Sync
  | Masked of mask * op

type program = op list

let rec validate = function
  | Masked (_, Sync) -> invalid_arg "Fastpath: sync must be uniform, not masked"
  | Masked (_, inner) -> validate inner
  | Gload _ | Gstore _ | Sload _ | Sstore _ | Flops _ | Alu _ | Sync -> ()

(* [Simt.alu n] only performs for n > 0, so an [Alu n <= 0] op occupies
   no round on the effect path.  Dropping it here (even under a mask,
   where the masked-off lanes would otherwise park a [noop] round the
   active lanes never join) keeps both paths aligned. *)
let rec live = function
  | Alu n -> n > 0
  | Masked (_, inner) -> live inner
  | _ -> true

let normalize prog =
  List.iter validate prog;
  List.filter live prog

(* --- The effect-handler derivation ------------------------------------- *)

let rec exec active ctx op =
  match op with
  | Masked (m, inner) -> exec (active && m ctx) ctx inner
  | Sync -> Simt.sync ()
  | _ when not active -> Simt.noop ()
  | Gload (b, a) -> ignore (Simt.gload b (a ctx))
  | Gstore (b, a) -> Simt.gstore b (a ctx) 0.0
  | Sload a -> ignore (Simt.sload (a ctx))
  | Sstore a -> Simt.sstore (a ctx) 0.0
  | Flops (dt, tensor, n) -> Simt.flops ~tensor dt n
  | Alu n -> Simt.alu n

let interpret prog =
  let prog = normalize prog in
  fun ctx -> List.iter (exec true ctx) prog

(* --- The vectorized runner --------------------------------------------- *)

(* Per-(key, op index, warp) summary: for shared ops the active-lane
   count and bank cycles; for [Alu]/[Flops] the active-lane count alone
   ([s_cyc] unused).  [s_active = 0] marks a fully-masked warp (the op
   costs nothing for it).  Sound for the same reason shared summaries
   are: the caching contract requires block-independent masks, so a
   warp's surviving-lane count is a constant of (key, op, warp).  The
   cache lives in domain-local storage so concurrent tuner domains
   never contend or mix entries mid-update. *)
type summary = { s_active : int; s_cyc : int }

(* The key string carries a layout fingerprint, so it is long; intern it
   to an int once per [run] call and pack (id, op, warp) into a single
   int key ([id lsl 20 lor oi lsl 6 lor w]) so cache hits hash an
   immediate and allocate nothing.  Programs of 2^14 ops or more do not
   fit the packing and simply run uncached; warps per block are bounded
   by [max_threads_per_block / warp_size <= 64] at validation. *)
type cache_state = {
  key_ids : (string, int) Hashtbl.t;
  summaries : (int, summary) Hashtbl.t;
}

let cache : cache_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { key_ids = Hashtbl.create 64; summaries = Hashtbl.create 4096 })

let key_id st k =
  match Hashtbl.find_opt st.key_ids k with
  | Some id -> id
  | None ->
    let id = Hashtbl.length st.key_ids in
    Hashtbl.add st.key_ids k id;
    id

let clear_cache () =
  let st = Domain.DLS.get cache in
  Hashtbl.reset st.key_ids;
  Hashtbl.reset st.summaries

let run ?(device = Device.a100) ?(smem_dtype = Mem.F32) ?sample_blocks
    ?counters ?key ~grid:(gdx, gdy) ~block:(bdx, bdy) ~smem_words prog =
  if gdx <= 0 || gdy <= 0 then invalid_arg "Simt.run: empty grid";
  if bdx <= 0 || bdy <= 0 then invalid_arg "Simt.run: empty block";
  if bdx * bdy > device.Device.max_threads_per_block then
    invalid_arg "Simt.run: block exceeds device thread limit";
  let total_blocks = gdx * gdy in
  let simulated =
    match sample_blocks with
    | None -> total_blocks
    | Some n when n <= 0 -> invalid_arg "Simt.run: sample_blocks must be > 0"
    | Some n -> min n total_blocks
  in
  let prog = Array.of_list (normalize prog) in
  let c = Simt.fresh_counters () in
  let l2 = L2.create device in
  let elem_bytes = Mem.dtype_bytes smem_dtype in
  let nthreads = bdx * bdy in
  let ws = device.Device.warp_size in
  let nwarps = (nthreads + ws - 1) / ws in
  let st = Domain.DLS.get cache in
  let kid =
    match key with
    | Some k when Array.length prog < 16384 && nwarps <= 64 ->
      Some (key_id st k)
    | _ -> None
  in
  let sbuf = Array.make ws 0 in
  let guard_shared a =
    if a < 0 || a >= smem_words then
      invalid_arg
        (Printf.sprintf "Simt: shared access %d outside 0..%d" a
           (smem_words - 1))
  in
  let guard_global (b : Mem.buffer) a =
    if a < 0 || a >= Array.length b.Mem.data then
      invalid_arg
        (Printf.sprintf "Simt: buffer %S access %d outside 0..%d" b.Mem.label a
           (Array.length b.Mem.data - 1))
  in
  let rec unwrap masks = function
    | Masked (m, inner) -> unwrap (m :: masks) inner
    | op -> (op, masks)
  in
  let bump_shared n cyc =
    c.Simt.s_accesses <- c.Simt.s_accesses +. float_of_int n;
    c.Simt.s_cycles <- c.Simt.s_cycles +. float_of_int cyc;
    c.Simt.insn_warp <- c.Simt.insn_warp +. 1.0
  in
  List.iter
    (fun b ->
      let bx = b mod gdx and by = b / gdx in
      let ctxs =
        Array.init nthreads (fun tid ->
            {
              Simt.bx;
              by;
              tx = tid mod bdx;
              ty = tid / bdx;
              bdx;
              bdy;
              gdx;
              gdy;
            })
      in
      (* The per-warp workers are allocated once per block, and cache
         hits touch nothing but the packed int key: the op loop
         allocates only when it actually computes a summary or a
         global batch. *)
      (* Lanes of this warp surviving every mask, ascending tid. *)
      let active masks lo hi =
        let acc = ref [] in
        for tid = hi downto lo do
          let ctx = ctxs.(tid) in
          if List.for_all (fun m -> m ctx) masks then acc := ctx :: !acc
        done;
        !acc
      in
      let shared_summary masks lo hi a =
        let n = ref 0 in
        for tid = lo to hi do
          let ctx = ctxs.(tid) in
          if List.for_all (fun m -> m ctx) masks then begin
            let addr = a ctx in
            guard_shared addr;
            sbuf.(!n) <- addr;
            incr n
          end
        done;
        if !n = 0 then { s_active = 0; s_cyc = 0 }
        else
          {
            s_active = !n;
            s_cyc = Access.bank_cycles_arr device ~elem_bytes sbuf !n;
          }
      in
      let activity masks lo hi =
        let k = ref 0 in
        for tid = lo to hi do
          if List.for_all (fun m -> m ctxs.(tid)) masks then incr k
        done;
        { s_active = !k; s_cyc = 0 }
      in
      let cached_shared masks lo hi a oi w =
        match kid with
        | None -> shared_summary masks lo hi a
        | Some k -> (
          let ck = (k lsl 20) lor (oi lsl 6) lor w in
          match Hashtbl.find_opt st.summaries ck with
          | Some s -> s
          | None ->
            let s = shared_summary masks lo hi a in
            Hashtbl.add st.summaries ck s;
            s)
      in
      let cached_activity masks lo hi oi w =
        match kid with
        | None -> activity masks lo hi
        | Some k -> (
          let ck = (k lsl 20) lor (oi lsl 6) lor w in
          match Hashtbl.find_opt st.summaries ck with
          | Some s -> s
          | None ->
            let s = activity masks lo hi in
            Hashtbl.add st.summaries ck s;
            s)
      in
      Array.iteri
        (fun oi wrapped ->
          let op, masks = unwrap [] wrapped in
          for w = 0 to nwarps - 1 do
            let lo = w * ws and hi = min nthreads ((w + 1) * ws) - 1 in
            match op with
            | Sload a | Sstore a ->
              let s = cached_shared masks lo hi a oi w in
              if s.s_active > 0 then bump_shared s.s_active s.s_cyc
            | Gload (buf, a) | Gstore (buf, a) -> (
              match active masks lo hi with
              | [] -> ()
              | lanes ->
                let pairs =
                  List.map
                    (fun ctx ->
                      let addr = a ctx in
                      guard_global buf addr;
                      (buf, addr))
                    lanes
                in
                Simt.cost_global device l2 c pairs)
            | Flops (dt, tensor, n) ->
              let s = cached_activity masks lo hi oi w in
              if s.s_active > 0 then Simt.record_flops c dt tensor n s.s_active
            | Alu n ->
              let s = cached_activity masks lo hi oi w in
              if s.s_active > 0 then
                c.Simt.insn_warp <- c.Simt.insn_warp +. float_of_int n
            | Sync ->
              c.Simt.syncs <- c.Simt.syncs +. 1.0;
              c.Simt.insn_warp <- c.Simt.insn_warp +. 1.0
            | Masked _ -> assert false
          done)
        prog)
    (Simt.sample_indices ~total:total_blocks ~simulated);
  if simulated < total_blocks then
    Simt.scale_counters c
      (float_of_int total_blocks /. float_of_int simulated);
  let c =
    match counters with
    | None -> c
    | Some t ->
      Simt.accumulate ~into:t c;
      t
  in
  {
    Simt.device;
    grid = (gdx, gdy);
    block = (bdx, bdy);
    blocks_simulated = simulated;
    launches = 1;
    counters = c;
  }
