type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  clock_ghz : float;
  dram_bw_gbps : float;
  l2_bytes : int;
  l2_bw_gbps : float;
  smem_banks : int;
  smem_bank_bytes : int;
  global_txn_bytes : int;
  fp32_tflops : float;
  fp16_tflops : float;
  fp8_tflops : float;
  tensor_fp16_tflops : float;
  tensor_fp8_tflops : float;
  issue_per_sm_per_cycle : int;
  kernel_launch_us : float;
  max_threads_per_block : int;
  max_warps_per_sm : int;
}

let a100 =
  {
    name = "A100-80GB (simulated)";
    num_sms = 108;
    warp_size = 32;
    clock_ghz = 1.41;
    dram_bw_gbps = 1935.0;
    l2_bytes = 40 * 1024 * 1024;
    l2_bw_gbps = 4500.0;
    smem_banks = 32;
    smem_bank_bytes = 4;
    global_txn_bytes = 32;
    fp32_tflops = 19.5;
    fp16_tflops = 78.0;
    fp8_tflops = 156.0;
    tensor_fp16_tflops = 312.0;
    tensor_fp8_tflops = 624.0;
    issue_per_sm_per_cycle = 4;
    kernel_launch_us = 3.0;
    max_threads_per_block = 1024;
    max_warps_per_sm = 64;
  }

let h100 =
  {
    name = "H100-SXM (simulated)";
    num_sms = 132;
    warp_size = 32;
    clock_ghz = 1.83;
    dram_bw_gbps = 3350.0;
    l2_bytes = 50 * 1024 * 1024;
    l2_bw_gbps = 8000.0;
    smem_banks = 32;
    smem_bank_bytes = 4;
    global_txn_bytes = 32;
    fp32_tflops = 67.0;
    fp16_tflops = 134.0;
    fp8_tflops = 268.0;
    tensor_fp16_tflops = 989.0;
    tensor_fp8_tflops = 1979.0;
    issue_per_sm_per_cycle = 4;
    kernel_launch_us = 3.0;
    max_threads_per_block = 1024;
    max_warps_per_sm = 64;
  }

(* Ada consumer part: fewer resident warps per SM (48 vs the data-center
   64), which is what makes its block-fill threshold differ from the
   A100/H100 presets. *)
let rtx4090 =
  {
    name = "RTX 4090 (simulated)";
    num_sms = 128;
    warp_size = 32;
    clock_ghz = 2.52;
    dram_bw_gbps = 1008.0;
    l2_bytes = 72 * 1024 * 1024;
    l2_bw_gbps = 5000.0;
    smem_banks = 32;
    smem_bank_bytes = 4;
    global_txn_bytes = 32;
    fp32_tflops = 82.6;
    fp16_tflops = 82.6;
    fp8_tflops = 165.2;
    tensor_fp16_tflops = 330.3;
    tensor_fp8_tflops = 660.6;
    issue_per_sm_per_cycle = 4;
    kernel_launch_us = 3.0;
    max_threads_per_block = 1024;
    max_warps_per_sm = 48;
  }

let scale d f =
  {
    d with
    dram_bw_gbps = d.dram_bw_gbps *. f;
    l2_bw_gbps = d.l2_bw_gbps *. f;
    fp32_tflops = d.fp32_tflops *. f;
    fp16_tflops = d.fp16_tflops *. f;
    fp8_tflops = d.fp8_tflops *. f;
    tensor_fp16_tflops = d.tensor_fp16_tflops *. f;
    tensor_fp8_tflops = d.tensor_fp8_tflops *. f;
  }

(* Preset registry: the short names the CLI, the compile service and the
   store keys use.  [t.name] is the human-readable marketing string;
   these keys are stable identifiers (lowercase, no spaces) safe to bake
   into content addresses. *)
let presets = [ ("a100", a100); ("h100", h100); ("rtx4090", rtx4090) ]
let find name = List.assoc_opt (String.lowercase_ascii name) presets

let preset_name d =
  List.find_map (fun (k, p) -> if p == d || p = d then Some k else None) presets
