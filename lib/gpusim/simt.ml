open Effect
open Effect.Deep

type ctx = {
  bx : int;
  by : int;
  tx : int;
  ty : int;
  bdx : int;
  bdy : int;
  gdx : int;
  gdy : int;
}

let linear_tid ctx = (ctx.ty * ctx.bdx) + ctx.tx

type _ Effect.t +=
  | E_gload : Mem.buffer * int -> float Effect.t
  | E_gstore : Mem.buffer * int * float -> unit Effect.t
  | E_sload : int -> float Effect.t
  | E_sstore : int * float -> unit Effect.t
  | E_sync : unit Effect.t
  | E_flops : Mem.dtype * bool * int -> unit Effect.t
  | E_alu : int -> unit Effect.t

let gload buf i = perform (E_gload (buf, i))
let gstore buf i v = perform (E_gstore (buf, i, v))
let sload i = perform (E_sload i)
let sstore i v = perform (E_sstore (i, v))
let sync () = perform E_sync
let flops ?(tensor = false) dt n = perform (E_flops (dt, tensor, n))
let alu n = if n > 0 then perform (E_alu n)

type counters = {
  mutable insn_warp : float;
  mutable g_txns : float;
  mutable g_bytes : float;
  mutable s_accesses : float;
  mutable s_cycles : float;
  mutable flops_fp32 : float;
  mutable flops_fp16 : float;
  mutable flops_fp8 : float;
  mutable flops_tensor_fp16 : float;
  mutable flops_tensor_fp8 : float;
  mutable syncs : float;
}

let fresh_counters () =
  {
    insn_warp = 0.0;
    g_txns = 0.0;
    g_bytes = 0.0;
    s_accesses = 0.0;
    s_cycles = 0.0;
    flops_fp32 = 0.0;
    flops_fp16 = 0.0;
    flops_fp8 = 0.0;
    flops_tensor_fp16 = 0.0;
    flops_tensor_fp8 = 0.0;
    syncs = 0.0;
  }

type report = {
  device : Device.t;
  grid : int * int;
  block : int * int;
  blocks_simulated : int;
  launches : int;
  counters : counters;
}

(* A fiber parked on its next device operation. *)
type parked =
  | P_gload of Mem.buffer * int * (float, unit) continuation
  | P_gstore of Mem.buffer * int * float * (unit, unit) continuation
  | P_sload of int * (float, unit) continuation
  | P_sstore of int * float * (unit, unit) continuation
  | P_sync of (unit, unit) continuation
  | P_flops of Mem.dtype * bool * int * (unit, unit) continuation
  | P_alu of int * (unit, unit) continuation

let is_sync = function P_sync _ -> true | _ -> false

module Seg = Set.Make (struct
  type t = int * int

  let compare = compare
end)

module IntSet = Set.Make (Int)

(* Cost a warp's batch of global accesses: one transaction per distinct
   (buffer, segment) pair. *)
let cost_global device c accesses =
  let segs =
    List.fold_left
      (fun acc (buf, addr) ->
        let bytes = Mem.dtype_bytes buf.Mem.dtype in
        Seg.add (buf.Mem.id, addr * bytes / device.Device.global_txn_bytes) acc)
      Seg.empty accesses
  in
  let n = Seg.cardinal segs in
  c.g_txns <- c.g_txns +. float_of_int n;
  c.g_bytes <- c.g_bytes +. float_of_int (n * device.Device.global_txn_bytes);
  c.insn_warp <- c.insn_warp +. 1.0

(* Cost a warp's batch of shared accesses: the bank-conflict degree is the
   largest number of distinct bank words hitting one bank.  Banks are
   [smem_bank_bytes] wide and interleaved by byte address, so the element
   width matters: two F16 elements sharing one 4-byte bank word are a
   single (broadcast) access, while element strides that only look
   conflict-free in word units may serialize. *)
let cost_shared device ~elem_bytes c addrs =
  let banks = Hashtbl.create 8 in
  List.iter
    (fun addr ->
      let word = addr * elem_bytes / device.Device.smem_bank_bytes in
      let bank = word mod device.Device.smem_banks in
      let set =
        Option.value ~default:IntSet.empty (Hashtbl.find_opt banks bank)
      in
      Hashtbl.replace banks bank (IntSet.add word set))
    addrs;
  let degree =
    Hashtbl.fold (fun _ set acc -> max acc (IntSet.cardinal set)) banks 0
  in
  c.s_accesses <- c.s_accesses +. float_of_int (List.length addrs);
  c.s_cycles <- c.s_cycles +. float_of_int (max degree 1);
  c.insn_warp <- c.insn_warp +. 1.0

let record_flops c dt tensor n warp_count =
  let fl = float_of_int (n * warp_count) in
  (match (dt, tensor) with
  | Mem.F32, _ | Mem.I32, _ -> c.flops_fp32 <- c.flops_fp32 +. fl
  | Mem.F16, false -> c.flops_fp16 <- c.flops_fp16 +. fl
  | Mem.F16, true -> c.flops_tensor_fp16 <- c.flops_tensor_fp16 +. fl
  | Mem.F8, false -> c.flops_fp8 <- c.flops_fp8 +. fl
  | Mem.F8, true -> c.flops_tensor_fp8 <- c.flops_tensor_fp8 +. fl);
  c.insn_warp <- c.insn_warp +. 1.0

let run_block ~device ~counters ~smem_elem_bytes ~block:(bdx, bdy)
    ~grid:(gdx, gdy) ~smem_words ~bx ~by body =
  let nthreads = bdx * bdy in
  let smem = Array.make smem_words 0.0 in
  let slots : parked option array = Array.make nthreads None in
  let cur = ref 0 in
  let remaining = ref nthreads in
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> decr remaining);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_gload (b, i) ->
            Some
              (fun (k : (a, unit) continuation) ->
                slots.(!cur) <- Some (P_gload (b, i, k)))
          | E_gstore (b, i, v) ->
            Some (fun k -> slots.(!cur) <- Some (P_gstore (b, i, v, k)))
          | E_sload i -> Some (fun k -> slots.(!cur) <- Some (P_sload (i, k)))
          | E_sstore (i, v) ->
            Some (fun k -> slots.(!cur) <- Some (P_sstore (i, v, k)))
          | E_sync -> Some (fun k -> slots.(!cur) <- Some (P_sync k))
          | E_flops (dt, tensor, n) ->
            Some (fun k -> slots.(!cur) <- Some (P_flops (dt, tensor, n, k)))
          | E_alu n -> Some (fun k -> slots.(!cur) <- Some (P_alu (n, k)))
          | _ -> None);
    }
  in
  (* Launch every thread fiber; each runs to its first device op. *)
  for ty = 0 to bdy - 1 do
    for tx = 0 to bdx - 1 do
      let ctx = { bx; by; tx; ty; bdx; bdy; gdx; gdy } in
      cur := linear_tid ctx;
      match_with body ctx handler
    done
  done;
  let resume_unit tid (k : (unit, unit) continuation) =
    cur := tid;
    continue k ()
  in
  let resume_float tid (k : (float, unit) continuation) v =
    cur := tid;
    continue k v
  in
  let warp_of tid = tid / device.Device.warp_size in
  let guard_shared addr =
    if addr < 0 || addr >= smem_words then
      invalid_arg
        (Printf.sprintf "Simt: shared access %d outside 0..%d" addr
           (smem_words - 1))
  in
  let guard_global (b : Mem.buffer) addr =
    if addr < 0 || addr >= Array.length b.Mem.data then
      invalid_arg
        (Printf.sprintf "Simt: buffer %S access %d outside 0..%d" b.Mem.label
           addr
           (Array.length b.Mem.data - 1))
  in
  (* Lock-step rounds. *)
  while !remaining > 0 do
    let round =
      Array.to_list
        (Array.mapi (fun tid op -> Option.map (fun op -> (tid, op)) op) slots)
      |> List.filter_map Fun.id
    in
    if round = [] then
      (* All fibers finished between rounds. *)
      ()
    else begin
      let nonsync = List.filter (fun (_, op) -> not (is_sync op)) round in
      let ready = if nonsync = [] then round else nonsync in
      (* Clear the processed slots before resuming (fibers re-park). *)
      List.iter (fun (tid, _) -> slots.(tid) <- None) ready;
      (* Group by warp to account for coalescing and bank conflicts. *)
      let by_warp = Hashtbl.create 8 in
      List.iter
        (fun (tid, op) ->
          let w = warp_of tid in
          Hashtbl.replace by_warp w
            ((tid, op)
            :: Option.value ~default:[] (Hashtbl.find_opt by_warp w)))
        ready;
      Hashtbl.iter
        (fun _w ops ->
          let gloads =
            List.filter_map
              (function _, P_gload (b, i, _) -> Some (b, i) | _ -> None)
              ops
          and gstores =
            List.filter_map
              (function _, P_gstore (b, i, _, _) -> Some (b, i) | _ -> None)
              ops
          and sloads =
            List.filter_map
              (function _, P_sload (i, _) -> Some i | _ -> None)
              ops
          and sstores =
            List.filter_map
              (function _, P_sstore (i, _, _) -> Some i | _ -> None)
              ops
          in
          if gloads <> [] then cost_global device counters gloads;
          if gstores <> [] then cost_global device counters gstores;
          if sloads <> [] then
            cost_shared device ~elem_bytes:smem_elem_bytes counters sloads;
          if sstores <> [] then
            cost_shared device ~elem_bytes:smem_elem_bytes counters sstores;
          (* flops / alu / sync of the warp this round *)
          let flop_groups = Hashtbl.create 4 in
          let alu_max = ref 0 in
          let sync_count = ref 0 in
          List.iter
            (fun (_, op) ->
              match op with
              | P_flops (dt, tensor, n, _) ->
                let key = (dt, tensor) in
                Hashtbl.replace flop_groups key
                  (n
                  + Option.value ~default:0 (Hashtbl.find_opt flop_groups key))
              | P_alu (n, _) ->
                (* Lock-stepped threads execute the same scalar ops, so a
                   warp's integer work this round is the widest thread's
                   count of warp instructions, not the sum. *)
                alu_max := max !alu_max n
              | P_sync _ -> incr sync_count
              | P_gload _ | P_gstore _ | P_sload _ | P_sstore _ -> ())
            ops;
          Hashtbl.iter
            (fun (dt, tensor) n -> record_flops counters dt tensor n 1)
            flop_groups;
          if !alu_max > 0 then
            counters.insn_warp <- counters.insn_warp +. float_of_int !alu_max;
          if !sync_count > 0 then begin
            counters.syncs <- counters.syncs +. 1.0;
            counters.insn_warp <- counters.insn_warp +. 1.0
          end)
        by_warp;
      (* Execute stores before loads for deterministic same-round access. *)
      List.iter
        (fun (_, op) ->
          match op with
          | P_gstore (b, i, v, _) ->
            guard_global b i;
            b.Mem.data.(i) <- v
          | P_sstore (i, v, _) ->
            guard_shared i;
            smem.(i) <- v
          | _ -> ())
        ready;
      List.iter
        (fun (tid, op) ->
          match op with
          | P_gload (b, i, k) ->
            guard_global b i;
            resume_float tid k b.Mem.data.(i)
          | P_sload (i, k) ->
            guard_shared i;
            resume_float tid k smem.(i)
          | P_gstore (_, _, _, k)
          | P_sstore (_, _, k)
          | P_sync k
          | P_flops (_, _, _, k)
          | P_alu (_, k) ->
            resume_unit tid k)
        ready
    end
  done

let run ?(device = Device.a100) ?(smem_dtype = Mem.F32) ?sample_blocks
    ~grid:(gdx, gdy) ~block:(bdx, bdy) ~smem_words body =
  if gdx <= 0 || gdy <= 0 then invalid_arg "Simt.run: empty grid";
  if bdx <= 0 || bdy <= 0 then invalid_arg "Simt.run: empty block";
  if bdx * bdy > device.Device.max_threads_per_block then
    invalid_arg "Simt.run: block exceeds device thread limit";
  let total_blocks = gdx * gdy in
  let simulated =
    match sample_blocks with
    | None -> total_blocks
    | Some n when n <= 0 -> invalid_arg "Simt.run: sample_blocks must be > 0"
    | Some n -> min n total_blocks
  in
  let counters = fresh_counters () in
  (* Evenly strided sample across the whole grid. *)
  let step = total_blocks / simulated in
  let smem_elem_bytes = Mem.dtype_bytes smem_dtype in
  for s = 0 to simulated - 1 do
    let b = s * step in
    let bx = b mod gdx and by = b / gdx in
    run_block ~device ~counters ~smem_elem_bytes ~block:(bdx, bdy)
      ~grid:(gdx, gdy) ~smem_words ~bx ~by body
  done;
  let scale = float_of_int total_blocks /. float_of_int simulated in
  if simulated < total_blocks then begin
    counters.insn_warp <- counters.insn_warp *. scale;
    counters.g_txns <- counters.g_txns *. scale;
    counters.g_bytes <- counters.g_bytes *. scale;
    counters.s_accesses <- counters.s_accesses *. scale;
    counters.s_cycles <- counters.s_cycles *. scale;
    counters.flops_fp32 <- counters.flops_fp32 *. scale;
    counters.flops_fp16 <- counters.flops_fp16 *. scale;
    counters.flops_fp8 <- counters.flops_fp8 *. scale;
    counters.flops_tensor_fp16 <- counters.flops_tensor_fp16 *. scale;
    counters.flops_tensor_fp8 <- counters.flops_tensor_fp8 *. scale;
    counters.syncs <- counters.syncs *. scale
  end;
  {
    device;
    grid = (gdx, gdy);
    block = (bdx, bdy);
    blocks_simulated = simulated;
    launches = 1;
    counters;
  }

