open Effect
open Effect.Deep

type ctx = {
  bx : int;
  by : int;
  tx : int;
  ty : int;
  bdx : int;
  bdy : int;
  gdx : int;
  gdy : int;
}

let linear_tid ctx = (ctx.ty * ctx.bdx) + ctx.tx

type _ Effect.t +=
  | E_gload : Mem.buffer * int -> float Effect.t
  | E_gstore : Mem.buffer * int * float -> unit Effect.t
  | E_sload : int -> float Effect.t
  | E_sstore : int * float -> unit Effect.t
  | E_sync : unit Effect.t
  | E_flops : Mem.dtype * bool * int -> unit Effect.t
  | E_alu : int -> unit Effect.t
  | E_noop : unit Effect.t

let gload buf i = perform (E_gload (buf, i))
let gstore buf i v = perform (E_gstore (buf, i, v))
let sload i = perform (E_sload i)
let sstore i v = perform (E_sstore (i, v))
let sync () = perform E_sync
let flops ?(tensor = false) dt n = perform (E_flops (dt, tensor, n))
let alu n = if n > 0 then perform (E_alu n)
let noop () = perform E_noop

type counters = {
  mutable insn_warp : float;
  mutable g_txns : float;
  mutable g_bytes : float;
  mutable l2_hits : float;
  mutable s_accesses : float;
  mutable s_cycles : float;
  mutable flops_fp32 : float;
  mutable flops_fp16 : float;
  mutable flops_fp8 : float;
  mutable flops_tensor_fp16 : float;
  mutable flops_tensor_fp8 : float;
  mutable syncs : float;
}

let fresh_counters () =
  {
    insn_warp = 0.0;
    g_txns = 0.0;
    g_bytes = 0.0;
    l2_hits = 0.0;
    s_accesses = 0.0;
    s_cycles = 0.0;
    flops_fp32 = 0.0;
    flops_fp16 = 0.0;
    flops_fp8 = 0.0;
    flops_tensor_fp16 = 0.0;
    flops_tensor_fp8 = 0.0;
    syncs = 0.0;
  }

type report = {
  device : Device.t;
  grid : int * int;
  block : int * int;
  blocks_simulated : int;
  launches : int;
  counters : counters;
}

(* A fiber parked on its next device operation. *)
type parked =
  | P_gload of Mem.buffer * int * (float, unit) continuation
  | P_gstore of Mem.buffer * int * float * (unit, unit) continuation
  | P_sload of int * (float, unit) continuation
  | P_sstore of int * float * (unit, unit) continuation
  | P_sync of (unit, unit) continuation
  | P_flops of Mem.dtype * bool * int * (unit, unit) continuation
  | P_alu of int * (unit, unit) continuation
  | P_noop of (unit, unit) continuation

let is_sync = function P_sync _ -> true | _ -> false

(* Cost a warp's batch of global accesses: one transaction per distinct
   (buffer, segment) pair, each filtered through the launch's L2.
   [Access.Seg.fold] iterates segments in ascending order, so the L2
   sees a canonical access sequence regardless of lane order. *)
let cost_global device l2 c accesses =
  let segs = Access.segments device accesses in
  let n = Access.Seg.cardinal segs in
  let hits =
    Access.Seg.fold
      (fun seg acc -> if L2.access l2 seg then acc + 1 else acc)
      segs 0
  in
  c.g_txns <- c.g_txns +. float_of_int n;
  c.g_bytes <- c.g_bytes +. float_of_int (n * device.Device.global_txn_bytes);
  c.l2_hits <- c.l2_hits +. float_of_int hits;
  c.insn_warp <- c.insn_warp +. 1.0

(* Cost a warp's batch of shared accesses: the bank-conflict degree is the
   largest number of distinct bank words hitting one bank.  Banks are
   [smem_bank_bytes] wide and interleaved by byte address, so the element
   width matters: two F16 elements sharing one 4-byte bank word are a
   single (broadcast) access, while element strides that only look
   conflict-free in word units may serialize. *)
let cost_shared device ~elem_bytes c addrs =
  c.s_accesses <- c.s_accesses +. float_of_int (List.length addrs);
  c.s_cycles <-
    c.s_cycles +. float_of_int (Access.bank_cycles device ~elem_bytes addrs);
  c.insn_warp <- c.insn_warp +. 1.0

let record_flops c dt tensor n warp_count =
  let fl = float_of_int (n * warp_count) in
  (match (dt, tensor) with
  | Mem.F32, _ | Mem.I32, _ -> c.flops_fp32 <- c.flops_fp32 +. fl
  | Mem.F16, false -> c.flops_fp16 <- c.flops_fp16 +. fl
  | Mem.F16, true -> c.flops_tensor_fp16 <- c.flops_tensor_fp16 +. fl
  | Mem.F8, false -> c.flops_fp8 <- c.flops_fp8 +. fl
  | Mem.F8, true -> c.flops_tensor_fp8 <- c.flops_tensor_fp8 +. fl);
  c.insn_warp <- c.insn_warp +. 1.0

let run_block ~device ~l2 ~counters ~smem_elem_bytes ~block:(bdx, bdy)
    ~grid:(gdx, gdy) ~smem_words ~bx ~by body =
  let nthreads = bdx * bdy in
  let smem = Array.make smem_words 0.0 in
  let slots : parked option array = Array.make nthreads None in
  let cur = ref 0 in
  let remaining = ref nthreads in
  (* Addresses are validated here, when the op is parked, so an
     out-of-bounds access raises before any cost reaches [counters]. *)
  let guard_shared addr =
    if addr < 0 || addr >= smem_words then
      invalid_arg
        (Printf.sprintf "Simt: shared access %d outside 0..%d" addr
           (smem_words - 1))
  in
  let guard_global (b : Mem.buffer) addr =
    if addr < 0 || addr >= Array.length b.Mem.data then
      invalid_arg
        (Printf.sprintf "Simt: buffer %S access %d outside 0..%d" b.Mem.label
           addr
           (Array.length b.Mem.data - 1))
  in
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> decr remaining);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_gload (b, i) ->
            Some
              (fun (k : (a, unit) continuation) ->
                guard_global b i;
                slots.(!cur) <- Some (P_gload (b, i, k)))
          | E_gstore (b, i, v) ->
            Some
              (fun k ->
                guard_global b i;
                slots.(!cur) <- Some (P_gstore (b, i, v, k)))
          | E_sload i ->
            Some
              (fun k ->
                guard_shared i;
                slots.(!cur) <- Some (P_sload (i, k)))
          | E_sstore (i, v) ->
            Some
              (fun k ->
                guard_shared i;
                slots.(!cur) <- Some (P_sstore (i, v, k)))
          | E_sync -> Some (fun k -> slots.(!cur) <- Some (P_sync k))
          | E_flops (dt, tensor, n) ->
            Some (fun k -> slots.(!cur) <- Some (P_flops (dt, tensor, n, k)))
          | E_alu n -> Some (fun k -> slots.(!cur) <- Some (P_alu (n, k)))
          | E_noop -> Some (fun k -> slots.(!cur) <- Some (P_noop k))
          | _ -> None);
    }
  in
  (* Launch every thread fiber; each runs to its first device op. *)
  for ty = 0 to bdy - 1 do
    for tx = 0 to bdx - 1 do
      let ctx = { bx; by; tx; ty; bdx; bdy; gdx; gdy } in
      cur := linear_tid ctx;
      match_with body ctx handler
    done
  done;
  let resume_unit tid (k : (unit, unit) continuation) =
    cur := tid;
    continue k ()
  in
  let resume_float tid (k : (float, unit) continuation) v =
    cur := tid;
    continue k v
  in
  let warp_of tid = tid / device.Device.warp_size in
  (* Lock-step rounds. *)
  while !remaining > 0 do
    let round =
      Array.to_list
        (Array.mapi (fun tid op -> Option.map (fun op -> (tid, op)) op) slots)
      |> List.filter_map Fun.id
    in
    if round = [] then
      (* All fibers finished between rounds. *)
      ()
    else begin
      let nonsync = List.filter (fun (_, op) -> not (is_sync op)) round in
      let ready = if nonsync = [] then round else nonsync in
      (* Clear the processed slots before resuming (fibers re-park). *)
      List.iter (fun (tid, _) -> slots.(tid) <- None) ready;
      (* Group by warp to account for coalescing and bank conflicts.
         Warps are visited in ascending id so the (stateful) L2 model
         sees a canonical access order. *)
      let by_warp = Hashtbl.create 8 in
      List.iter
        (fun (tid, op) ->
          let w = warp_of tid in
          Hashtbl.replace by_warp w
            ((tid, op)
            :: Option.value ~default:[] (Hashtbl.find_opt by_warp w)))
        ready;
      let warps =
        Hashtbl.fold (fun w _ acc -> w :: acc) by_warp []
        |> List.sort_uniq compare
      in
      List.iter
        (fun w ->
          let ops = Hashtbl.find by_warp w in
          let gloads =
            List.filter_map
              (function _, P_gload (b, i, _) -> Some (b, i) | _ -> None)
              ops
          and gstores =
            List.filter_map
              (function _, P_gstore (b, i, _, _) -> Some (b, i) | _ -> None)
              ops
          and sloads =
            List.filter_map
              (function _, P_sload (i, _) -> Some i | _ -> None)
              ops
          and sstores =
            List.filter_map
              (function _, P_sstore (i, _, _) -> Some i | _ -> None)
              ops
          in
          if gloads <> [] then cost_global device l2 counters gloads;
          if gstores <> [] then cost_global device l2 counters gstores;
          if sloads <> [] then
            cost_shared device ~elem_bytes:smem_elem_bytes counters sloads;
          if sstores <> [] then
            cost_shared device ~elem_bytes:smem_elem_bytes counters sstores;
          (* flops / alu / sync of the warp this round *)
          let flop_groups = Hashtbl.create 4 in
          let alu_max = ref 0 in
          let sync_count = ref 0 in
          List.iter
            (fun (_, op) ->
              match op with
              | P_flops (dt, tensor, n, _) ->
                let key = (dt, tensor) in
                Hashtbl.replace flop_groups key
                  (n
                  + Option.value ~default:0 (Hashtbl.find_opt flop_groups key))
              | P_alu (n, _) ->
                (* Lock-stepped threads execute the same scalar ops, so a
                   warp's integer work this round is the widest thread's
                   count of warp instructions, not the sum. *)
                alu_max := max !alu_max n
              | P_sync _ -> incr sync_count
              | P_noop _ | P_gload _ | P_gstore _ | P_sload _ | P_sstore _ ->
                ())
            ops;
          Hashtbl.iter
            (fun (dt, tensor) n -> record_flops counters dt tensor n 1)
            flop_groups;
          if !alu_max > 0 then
            counters.insn_warp <- counters.insn_warp +. float_of_int !alu_max;
          if !sync_count > 0 then begin
            counters.syncs <- counters.syncs +. 1.0;
            counters.insn_warp <- counters.insn_warp +. 1.0
          end)
        warps;
      (* Execute stores before loads for deterministic same-round access. *)
      List.iter
        (fun (_, op) ->
          match op with
          | P_gstore (b, i, v, _) -> b.Mem.data.(i) <- v
          | P_sstore (i, v, _) -> smem.(i) <- v
          | _ -> ())
        ready;
      List.iter
        (fun (tid, op) ->
          match op with
          | P_gload (b, i, k) -> resume_float tid k b.Mem.data.(i)
          | P_sload (i, k) -> resume_float tid k smem.(i)
          | P_gstore (_, _, _, k)
          | P_sstore (_, _, k)
          | P_sync k
          | P_flops (_, _, _, k)
          | P_alu (_, k)
          | P_noop k ->
            resume_unit tid k)
        ready
    end
  done

(* Evenly strided sample across the whole grid: block [s] of the sample
   maps to [s * total / simulated], so the first sample is block 0, the
   stride is proportional, and the last sample lands within one stride
   of the grid tail (no stranded suffix). *)
let sample_indices ~total ~simulated =
  List.init simulated (fun s -> s * total / simulated)

let accumulate ~into:t c =
  t.insn_warp <- t.insn_warp +. c.insn_warp;
  t.g_txns <- t.g_txns +. c.g_txns;
  t.g_bytes <- t.g_bytes +. c.g_bytes;
  t.l2_hits <- t.l2_hits +. c.l2_hits;
  t.s_accesses <- t.s_accesses +. c.s_accesses;
  t.s_cycles <- t.s_cycles +. c.s_cycles;
  t.flops_fp32 <- t.flops_fp32 +. c.flops_fp32;
  t.flops_fp16 <- t.flops_fp16 +. c.flops_fp16;
  t.flops_fp8 <- t.flops_fp8 +. c.flops_fp8;
  t.flops_tensor_fp16 <- t.flops_tensor_fp16 +. c.flops_tensor_fp16;
  t.flops_tensor_fp8 <- t.flops_tensor_fp8 +. c.flops_tensor_fp8;
  t.syncs <- t.syncs +. c.syncs

let scale_counters c scale =
  c.insn_warp <- c.insn_warp *. scale;
  c.g_txns <- c.g_txns *. scale;
  c.g_bytes <- c.g_bytes *. scale;
  c.l2_hits <- c.l2_hits *. scale;
  c.s_accesses <- c.s_accesses *. scale;
  c.s_cycles <- c.s_cycles *. scale;
  c.flops_fp32 <- c.flops_fp32 *. scale;
  c.flops_fp16 <- c.flops_fp16 *. scale;
  c.flops_fp8 <- c.flops_fp8 *. scale;
  c.flops_tensor_fp16 <- c.flops_tensor_fp16 *. scale;
  c.flops_tensor_fp8 <- c.flops_tensor_fp8 *. scale;
  c.syncs <- c.syncs *. scale

let run ?(device = Device.a100) ?(smem_dtype = Mem.F32) ?sample_blocks
    ?counters ~grid:(gdx, gdy) ~block:(bdx, bdy) ~smem_words body =
  if gdx <= 0 || gdy <= 0 then invalid_arg "Simt.run: empty grid";
  if bdx <= 0 || bdy <= 0 then invalid_arg "Simt.run: empty block";
  if bdx * bdy > device.Device.max_threads_per_block then
    invalid_arg "Simt.run: block exceeds device thread limit";
  let total_blocks = gdx * gdy in
  let simulated =
    match sample_blocks with
    | None -> total_blocks
    | Some n when n <= 0 -> invalid_arg "Simt.run: sample_blocks must be > 0"
    | Some n -> min n total_blocks
  in
  let target = counters in
  let counters = fresh_counters () in
  let l2 = L2.create device in
  let smem_elem_bytes = Mem.dtype_bytes smem_dtype in
  List.iter
    (fun b ->
      let bx = b mod gdx and by = b / gdx in
      run_block ~device ~l2 ~counters ~smem_elem_bytes ~block:(bdx, bdy)
        ~grid:(gdx, gdy) ~smem_words ~bx ~by body)
    (sample_indices ~total:total_blocks ~simulated);
  if simulated < total_blocks then
    scale_counters counters
      (float_of_int total_blocks /. float_of_int simulated);
  let counters =
    match target with
    | None -> counters
    | Some t ->
      accumulate ~into:t counters;
      t
  in
  {
    device;
    grid = (gdx, gdy);
    block = (bdx, bdy);
    blocks_simulated = simulated;
    launches = 1;
    counters;
  }
