(** A SIMT GPU simulator.

    Kernels are plain OCaml functions of a thread context.  Every thread
    of a block runs as a fiber (OCaml 5 effect handlers); fibers advance
    in lock-step rounds, so the simulator sees, per round and per warp,
    the set of addresses a warp touches together — exactly the
    information needed to model global-memory coalescing and
    shared-memory bank conflicts, the two mechanisms behind the paper's
    CUDA/MLIR evaluation (figures 13 and 14).

    Cost accounting (see {!Metrics} for the time model):
    - a warp's global access costs one transaction per distinct
      [global_txn_bytes] segment touched; each segment is filtered
      through a per-launch {!L2} sector cache and hits are counted;
    - a warp's shared access costs one cycle per maximal bank-conflict
      degree (same-address broadcast is free);
    - [flops]/[alu] record arithmetic work;
    - control rounds cost one issued warp-instruction each.

    Addresses are validated when an op parks, {e before} any cost is
    recorded, so a failed launch cannot leave partially-mutated counters
    behind (accumulation into a caller-supplied [?counters] record only
    happens after the launch completes).

    Large grids can be sampled: only a representative subset of blocks is
    executed and the counters are scaled — block interactions do not
    exist in the model, so the scaling is exact for uniform grids. *)

type ctx = {
  bx : int;
  by : int;
  tx : int;
  ty : int;
  bdx : int;
  bdy : int;
  gdx : int;
  gdy : int;
}

val linear_tid : ctx -> int

(** {2 Device operations (valid only inside a running kernel)} *)

val gload : Mem.buffer -> int -> float
val gstore : Mem.buffer -> int -> float -> unit

val sload : int -> float
(** Shared-memory load of one element (the element width is the [run]
    call's [smem_dtype], F32 by default). *)

val sstore : int -> float -> unit
val sync : unit -> unit
(** Block-wide barrier. *)

val flops : ?tensor:bool -> Mem.dtype -> int -> unit
(** Record [n] floating-point operations of the given precision;
    [tensor:true] uses the tensor-core rate. *)

val alu : int -> unit
(** Record [n] integer/index-arithmetic operations (one warp instruction
    each) — kernels pass the {!Lego_symbolic.Cost.ops} count of their
    index expressions here, tying the paper's cost model to the
    simulation. *)

val noop : unit -> unit
(** Park for one lock-step round without doing (or costing) anything.
    Predicated kernels have masked-off lanes call [noop] wherever active
    lanes perform a real op, keeping the warp converged so the per-warp
    batching (and the {!Fastpath} equivalence) stays exact. *)

(** {2 Running kernels} *)

type counters = {
  mutable insn_warp : float;
  mutable g_txns : float;
  mutable g_bytes : float;
  mutable l2_hits : float;
  mutable s_accesses : float;
  mutable s_cycles : float;
  mutable flops_fp32 : float;
  mutable flops_fp16 : float;
  mutable flops_fp8 : float;
  mutable flops_tensor_fp16 : float;
  mutable flops_tensor_fp8 : float;
  mutable syncs : float;
}

val fresh_counters : unit -> counters

type report = {
  device : Device.t;
  grid : int * int;
  block : int * int;
  blocks_simulated : int;
  launches : int;
  counters : counters;
}

(** {2 Warp cost kernels (shared with {!Fastpath} and the tuner)} *)

val cost_global :
  Device.t -> L2.t -> counters -> (Mem.buffer * int) list -> unit
(** Cost one warp-wide batch of global accesses: one transaction per
    distinct [(buffer, segment)] pair, in ascending segment order
    through [l2], plus one issued warp instruction. *)

val cost_shared : Device.t -> elem_bytes:int -> counters -> int list -> unit
(** Cost one warp-wide batch of shared accesses at the bank-conflict
    degree of {!Access.bank_cycles}, plus one issued warp instruction. *)

val record_flops : counters -> Mem.dtype -> bool -> int -> int -> unit

val scale_counters : counters -> float -> unit
(** Multiply every counter in place (sampled-grid extrapolation).
    Shared with {!Fastpath} so both paths scale with the identical
    float operations. *)

val accumulate : into:counters -> counters -> unit
(** Add every counter of the second record into [into]. *)

val sample_indices : total:int -> simulated:int -> int list
(** The block ids simulated by a sampled run: [s * total / simulated]
    for [s] in [0 .. simulated-1] — proportionally strided, so the
    sample spans the whole grid (no stranded tail) with no duplicates
    whenever [simulated <= total]. *)

val run :
  ?device:Device.t ->
  ?smem_dtype:Mem.dtype ->
  ?sample_blocks:int ->
  ?counters:counters ->
  grid:int * int ->
  block:int * int ->
  smem_words:int ->
  (ctx -> unit) ->
  report
(** [run ~grid:(gx, gy) ~block:(bx, by) ~smem_words f] executes [f] for
    every thread of every (sampled) block and returns the scaled cost
    report.  [smem_dtype] (default [F32]) is the element type behind
    {!sload}/{!sstore} indices: bank conflicts are computed on byte
    addresses ([index * element bytes]), so sub-word dtypes (F16/F8) pack
    several elements into one [Device.smem_bank_bytes] bank word.  When
    [?counters] is given, the launch's (scaled) counters are added into
    it after the launch completes and the same record is returned in the
    report; a launch that raises leaves it untouched.  Raises
    [Invalid_argument] for out-of-range shared accesses, out-of-bounds
    buffer accesses, or block sizes beyond the device limit — at the
    moment the offending op parks, before it is costed. *)
