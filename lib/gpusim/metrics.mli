(** Roofline time model turning simulator counters into kernel times.

    A kernel's time is the launch overhead plus the maximum of its
    compute-, DRAM-, L2-, shared-memory- and issue-limited times — the
    standard roofline approximation.  DRAM traffic only counts L2
    {e misses} (times the sector size), so compute-dense kernels whose
    working set fits in L2 are no longer spuriously DRAM-bound; all
    transactions still pay the L2-bandwidth term.  Small grids scale
    throughput by SM occupancy, which is what makes per-GEMM launches
    lose to grouped launches in the paper's figure 12c. *)

type breakdown = {
  launch_s : float;
  compute_s : float;
  dram_s : float;
  l2_s : float;
  smem_s : float;
  issue_s : float;
  total_s : float;
}

val block_fill : Device.t -> threads:int -> float
(** [block_fill d ~threads] is the fraction of an SM's issue slots a
    block of [threads] threads keeps busy: the block's warp count
    (integer {e ceiling} of [threads / warp_size]) over the device's
    full-occupancy threshold [max 1 (max_warps_per_sm / 8)], clamped to
    1.  On A100/H100 (64 resident warps) the threshold is 8 — a
    32-thread block is exactly one warp (1/8), a 33-thread block two
    (2/8); on RTX 4090 (48 resident warps) it is 6, so 6 warps already
    saturate. *)

val breakdown : Simt.report -> breakdown

val time_s : Simt.report -> float
(** [breakdown.total_s]. *)

val sum_times_s : Simt.report list -> float
(** Serialized launches: the sum of per-launch times. *)

val gflops : useful_flops:float -> float -> float
(** [gflops ~useful_flops time_s]: throughput in GFLOP/s based on the
    algorithmic (not simulated) operation count, as the paper plots. *)

val gbps : useful_bytes:float -> float -> float

val pp_breakdown : Format.formatter -> breakdown -> unit
