module Seg = Set.Make (struct
  type t = int * int

  let compare = compare
end)

(* A warp batch is at most [warp_size] (= 32) addresses, so distinct
   counting is done by quadratic scan over two small scratch arrays —
   no hashing, no allocation beyond the scratch.  These two functions
   are the hot inner loop of both the simulator's warp rounds and the
   tuner's static phase scoring (thousands of calls per candidate).
   The array variants are the implementation; the list variants wrap
   them, so there is exactly one copy of each counting rule. *)

(* Bank and segment geometry is power-of-two on every real device, so
   the per-address divisions strength-reduce to shifts; the division
   form remains for exotic configurations.  [lsr] agrees with [/] only
   for non-negative values, which the guards upstream (and layout
   bijectivity) ensure — the [addr >= 0] test keeps the two forms
   identical even on unguarded inputs. *)
let pow2 x = x > 0 && x land (x - 1) = 0

let log2 x =
  let k = ref 0 in
  let v = ref x in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

let bank_cycles_arr (device : Device.t) ~elem_bytes addrs n =
  let nbanks = device.Device.smem_banks in
  let bb = device.Device.smem_bank_bytes in
  let shift = if pow2 bb then log2 bb else -1 in
  let bmask = if pow2 nbanks then nbanks - 1 else -1 in
  let words = Array.make device.Device.warp_size 0 in
  let degree = Array.make nbanks 0 in
  let nw = ref 0 in
  (* Unsafe accesses below are bounded by construction: [i < !nw <=
     warp_size] (the explicit batch check guards the only growth), and
     [bank < nbanks] because it is a remainder by [nbanks]. *)
  for k = 0 to n - 1 do
    let b = Array.unsafe_get addrs k * elem_bytes in
    let word = if shift >= 0 && b >= 0 then b lsr shift else b / bb in
    (* Distinct words only: same-word lanes broadcast in one cycle. *)
    let dup = ref false in
    for i = 0 to !nw - 1 do
      if Array.unsafe_get words i = word then dup := true
    done;
    if not !dup then begin
      if !nw >= Array.length words then invalid_arg "Access: batch > warp";
      Array.unsafe_set words !nw word;
      incr nw;
      let bank =
        if bmask >= 0 && word >= 0 then word land bmask else word mod nbanks
      in
      degree.(bank) <- degree.(bank) + 1
    end
  done;
  let worst = ref 1 in
  for b = 0 to nbanks - 1 do
    if Array.unsafe_get degree b > !worst then worst := Array.unsafe_get degree b
  done;
  !worst

let bank_cycles device ~elem_bytes addrs =
  let a = Array.of_list addrs in
  bank_cycles_arr device ~elem_bytes a (Array.length a)

let segments (device : Device.t) accesses =
  List.fold_left
    (fun acc (buf, addr) ->
      let bytes = Mem.dtype_bytes buf.Mem.dtype in
      Seg.add (buf.Mem.id, addr * bytes / device.Device.global_txn_bytes) acc)
    Seg.empty accesses

let txn_count_arr (device : Device.t) ~elem_bytes addrs n =
  let tb = device.Device.global_txn_bytes in
  let shift = if pow2 tb then log2 tb else -1 in
  let segs = Array.make device.Device.warp_size 0 in
  let ns = ref 0 in
  for k = 0 to n - 1 do
    let b = Array.unsafe_get addrs k * elem_bytes in
    let seg = if shift >= 0 && b >= 0 then b lsr shift else b / tb in
    let dup = ref false in
    for i = 0 to !ns - 1 do
      if Array.unsafe_get segs i = seg then dup := true
    done;
    if not !dup then begin
      if !ns >= Array.length segs then invalid_arg "Access: batch > warp";
      Array.unsafe_set segs !ns seg;
      incr ns
    end
  done;
  !ns

let txn_count device ~elem_bytes addrs =
  let a = Array.of_list addrs in
  txn_count_arr device ~elem_bytes a (Array.length a)
