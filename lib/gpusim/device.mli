(** GPU device models for the simulator.

    The paper's evaluation machine is an NVIDIA A100-80GB; {!a100}
    reproduces its headline rates ({!h100} is provided for what-if
    comparisons).  Only ratios matter for the reproduction (the paper's
    claims are relative), but realistic constants keep the reported
    GFLOP/s and GB/s in familiar territory. *)

type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  clock_ghz : float;
  dram_bw_gbps : float;  (** achievable global-memory bandwidth, GB/s *)
  l2_bytes : int;  (** L2 data-cache capacity *)
  l2_bw_gbps : float;  (** achievable L2 bandwidth, GB/s *)
  smem_banks : int;
  smem_bank_bytes : int;
  global_txn_bytes : int;
      (** global-memory transaction granularity; also the L2 sector
          size tracked by {!L2} *)
  fp32_tflops : float;
  fp16_tflops : float;  (** CUDA-core half rate *)
  fp8_tflops : float;
      (** CUDA-core scalar FP8 rate.  A100 has no FP8 units; the paper's
          FP8 benchmark exercises INT8/FP8-rate paths, modeled at 2x the
          scalar FP16 rate, consistently with the tensor-core entry
          below. *)
  tensor_fp16_tflops : float;
  tensor_fp8_tflops : float;
      (** A100 tensor cores do not speed FP8 beyond FP16; the paper's FP8
          benchmark exercises INT8/FP8-rate paths, modeled at 2x FP16. *)
  issue_per_sm_per_cycle : int;  (** warp instructions per SM per cycle *)
  kernel_launch_us : float;
  max_threads_per_block : int;
  max_warps_per_sm : int;
      (** resident-warp capacity of one SM; {!Metrics.block_fill}
          derives its full-occupancy threshold from this instead of a
          hardcoded warp count, so presets with smaller warp capacity
          (e.g. {!rtx4090}) saturate with smaller blocks *)
}

val a100 : t
val h100 : t

val rtx4090 : t
(** Ada consumer part: 48 resident warps per SM (vs 64 on A100/H100),
    i.e. a lower block-fill saturation point. *)

val scale : t -> float -> t
(** [scale d f] multiplies every throughput of [d] by [f] (for
    what-if/ablation experiments). *)

val presets : (string * t) list
(** The named device presets (["a100"]; ["h100"]; ["rtx4090"]) under
    stable lowercase keys — the identifiers the CLI's [--device], the
    compile service's requests and the content-addressed store keys use
    (never [t.name], whose marketing string is free to change). *)

val find : string -> t option
(** Preset by key, case-insensitive. *)

val preset_name : t -> string option
(** The preset key of a device, when it is one of {!presets} (a
    [scale]d or hand-built device has none). *)
