(* Reusable scoring cache, persisting across slot searches in one run.

   Keys are (slot identity, fingerprint digest), where the identity is
   [Slot.identity] — name plus device preset plus smem dtype: the
   static score and the sims depend on the slot's phase list, kernel,
   device model and element width, so identical layouts under
   different slots (or the same slot under a different device/dtype)
   must not collide, while repeated searches of the same slot
   (re-tuning with different budgets, the CLI tuning several shapes
   that share a slot) hit.

   Concurrency contract (the tuner's): [find] is a pure read and is
   the only operation a parallel section may call; [ensure] and the
   tallies mutate and run only between parallel sections.  Entries are
   mutable records so a rung can fill in the field it computed without
   re-hashing. *)

type entry = {
  mutable static_ : Predict.score option;
  mutable linear : bool option;
      (* [Some l]: F₂-linearity was decided, and [static_] came from the
         oracle path iff [l].  A static score cached by a non-oracle
         search is still exact for an oracle search (the paths are
         bit-identical) — but only reusable once linearity is known,
         because the oracle search counts oracle-scored candidates. *)
  mutable sampled : Slot.sim option;
  mutable full : Slot.sim option;
}

type t = {
  tbl : (string * string, entry) Hashtbl.t;
  max_entries : int;
  mutable hits : int;
  mutable misses : int;
}

let default_max_entries = 1 lsl 18

let create ?(max_entries = default_max_entries) () =
  if max_entries < 0 then invalid_arg "Cache.create: max_entries < 0";
  { tbl = Hashtbl.create 1024; max_entries; hits = 0; misses = 0 }

let find t ~slot ~fp_digest = Hashtbl.find_opt t.tbl (slot, fp_digest)

let fresh () = { static_ = None; linear = None; sampled = None; full = None }

(* At capacity the returned entry is transient (filled by the caller,
   then dropped): the cache degrades to a no-op rather than growing
   without bound under a 10⁶-candidate stream. *)
let ensure t ~slot ~fp_digest =
  match Hashtbl.find_opt t.tbl (slot, fp_digest) with
  | Some e -> e
  | None ->
    let e = fresh () in
    if Hashtbl.length t.tbl < t.max_entries then
      Hashtbl.add t.tbl (slot, fp_digest) e;
    e

(* Persistence hook for the compile service: walk every entry so sims
   can be flushed to (or injected from) the on-disk store.  Sequential
   sections only, like every other mutator-adjacent operation. *)
let iter t f = Hashtbl.iter (fun (slot, fp_digest) e -> f ~slot ~fp_digest e) t.tbl

let note_hits t n = t.hits <- t.hits + n
let note_misses t n = t.misses <- t.misses + n
let hits t = t.hits
let misses t = t.misses
let length t = Hashtbl.length t.tbl
