(** Stable textual fingerprints of layouts.

    The tuner's memo cache, deduplication, and every deterministic
    tie-break are keyed by this fingerprint: a pure function of the
    layout's structure (its printed dotted notation), independent of
    physical equality, hashing seeds, or domain.  [GenP] parameters
    appear because the gallery encodes them in piece names. *)

val of_layout : Lego_layout.Group_by.t -> string
val compare : string -> string -> int

val digest : Lego_layout.Group_by.t -> string
(** The 16-byte [Digest.string] (MD5) of {!of_layout} — the
    bounded-memory identity key the streaming enumerator and
    {!Cache} use at 10⁵–10⁶ candidates, where retaining full printed
    fingerprints would dominate the deduplication set.  Callers already
    holding the printed fingerprint can compute the same key with
    [Digest.string fp]. *)
