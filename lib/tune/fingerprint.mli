(** Stable textual fingerprints of layouts.

    The tuner's memo cache, deduplication, and every deterministic
    tie-break are keyed by this fingerprint: a pure function of the
    layout's structure (its printed dotted notation), independent of
    physical equality, hashing seeds, or domain.  [GenP] parameters
    appear because the gallery encodes them in piece names. *)

val of_layout : Lego_layout.Group_by.t -> string
val compare : string -> string -> int
