module L = Lego_layout

type t = { rows : int; cols : int; seed : int }

let make ?(seed = 0) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Space.make: extents must be positive";
  { rows; cols; seed }

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* A candidate is always the plain 2-D logical view over some reordering
   chain, so every consumer can address it as [apply_ints g [i; j]]. *)
let view2 sp chain = L.Group_by.make ~chain [ [ sp.rows; sp.cols ] ]

let of_piece sp p = view2 sp [ L.Order_by.make [ p ] ]

(* Seeded in-family shuffling.  Seed 0 is the canonical order (cheap,
   conflict-free-first families lead); any other seed permutes each
   family with a stream derived only from [(seed, tag)], so the space is
   a pure function of the seed — never of timing or of traversal
   interleaving. *)
let shuffle sp ~tag xs =
  if sp.seed = 0 then xs
  else begin
    let st = Random.State.make [| sp.seed; Hashtbl.hash tag |] in
    let arr = Array.of_list xs in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr
  end

let has_gen g =
  List.exists
    (fun o ->
      List.exists
        (function L.Piece.Gen _ -> true | L.Piece.Reg _ -> false)
        (L.Order_by.pieces o))
    (L.Group_by.chain g)

(* Sigma roots: one RegP over the full 2-D space per permutation. *)
let sigma_roots sp =
  List.map
    (fun sigma ->
      of_piece sp (L.Piece.reg ~dims:[ sp.rows; sp.cols ] ~sigma))
    (L.Sigma.all 2)

(* Gallery roots: the paper's named bijections, where the shape admits
   them. *)
let gallery_roots sp =
  let square = sp.rows = sp.cols in
  let pow2 = square && is_pow2 sp.rows && sp.rows > 1 in
  List.concat
    [
      (if square then [ of_piece sp (L.Gallery.antidiag sp.rows) ] else []);
      (if square then [ of_piece sp (L.Gallery.cyclic_diag sp.rows) ] else []);
      [ of_piece sp (L.Gallery.reverse [ sp.rows; sp.cols ]) ];
      (if pow2 then
         let bits = ref 0 and m = ref sp.rows in
         while !m > 1 do
           incr bits;
           m := !m / 2
         done;
         [
           of_piece sp (L.Gallery.morton ~d:2 ~bits:!bits);
           of_piece sp (L.Gallery.hilbert ~bits:!bits);
         ]
       else []);
    ]

let roots sp =
  shuffle sp ~tag:"roots" (sigma_roots sp) @
  shuffle sp ~tag:"gallery" (gallery_roots sp)

(* Non-trivial factorizations [outer * inner = n, both > 1]. *)
let divisor_pairs n =
  let rec go d acc =
    if d > n / 2 then List.rev acc
    else go (d + 1) (if n mod d = 0 then (d, n / d) :: acc else acc)
  in
  go 2 []

(* Two-level tilings of the space: [TileOrderBy(P_outer, P_inner)] over
   every non-trivial divisor split of each extent and every sigma pair. *)
let tilings sp =
  let rows_splits = divisor_pairs sp.rows and cols_splits = divisor_pairs sp.cols in
  let sigmas = L.Sigma.all 2 in
  List.concat_map
    (fun (ro, ri) ->
      List.concat_map
        (fun (co, ci) ->
          List.concat_map
            (fun so ->
              List.map
                (fun si ->
                  view2 sp
                    (L.Sugar.tile_order_by
                       [
                         L.Piece.reg ~dims:[ ro; co ] ~sigma:so;
                         L.Piece.reg ~dims:[ ri; ci ] ~sigma:si;
                       ]))
                sigmas)
            sigmas)
        cols_splits)
    rows_splits

(* XOR-swizzle refinements: prepend a [swizzlex] GenP as the outermost
   reordering of a swizzle-free candidate.  Prefix masks only, widest
   (the classic full-column swizzle) first, so a tiny budget meets the
   known-good layout early. *)
let swizzles sp g =
  if (not (is_pow2 sp.cols)) || sp.cols = 1 || has_gen g then []
  else begin
    let masks =
      let rec go m acc = if m < 1 then List.rev acc else go (m / 2) (m :: acc) in
      go (sp.cols - 1) []
    in
    List.concat_map
      (fun mask ->
        List.map
          (fun shift ->
            L.Group_by.prepend
              (L.Order_by.make
                 [
                   L.Gallery.xor_swizzle_masked ~rows:sp.rows ~cols:sp.cols
                     ~mask ~shift;
                 ])
              g)
          [ 0; 1; 2 ])
      masks
  end

(* Is [g] a bare sigma root (single chain entry, single RegP covering the
   whole space)?  Only those refine into tilings; every swizzle-free
   candidate refines into swizzles. *)
let is_sigma_root g =
  match L.Group_by.chain g with
  | [ o ] -> (
    match L.Order_by.pieces o with
    | [ L.Piece.Reg { dims; _ } ] -> List.length dims = 2
    | _ -> false)
  | _ -> false

let children sp g =
  let sw = shuffle sp ~tag:"swizzles" (swizzles sp g) in
  let tl = if is_sigma_root g then shuffle sp ~tag:"tilings" (tilings sp) else [] in
  sw @ tl

let closure sp =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let push g =
    let fp = Fingerprint.of_layout g in
    if Hashtbl.mem seen fp then false
    else begin
      Hashtbl.add seen fp ();
      acc := g :: !acc;
      true
    end
  in
  let rec levels frontier =
    match List.filter push frontier with
    | [] -> ()
    | fresh -> levels (List.concat_map (children sp) fresh)
  in
  levels (roots sp);
  List.rev !acc
