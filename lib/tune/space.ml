module L = Lego_layout

type t = {
  rows : int;
  cols : int;
  seed : int;
  classes : bool;
  composed : bool;
  elem_bytes : int;
  scale : bool;
}

let make ?(seed = 0) ?(classes = false) ?(composed = false) ?(elem_bytes = 4)
    ?(scale = false) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Space.make: extents must be positive";
  if elem_bytes <= 0 then
    invalid_arg "Space.make: elem_bytes must be positive";
  { rows; cols; seed; classes; composed; elem_bytes; scale }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let k = ref 0 in
  let v = ref n in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

(* A candidate is always the plain 2-D logical view over some reordering
   chain, so every consumer can address it as [apply_ints g [i; j]]. *)
let view2 sp chain = L.Group_by.make ~chain [ [ sp.rows; sp.cols ] ]

let of_piece sp p = view2 sp [ L.Order_by.make [ p ] ]

(* Seeded in-family shuffling.  Seed 0 is the canonical order (cheap,
   conflict-free-first families lead); any other seed permutes each
   family with a stream derived only from [(seed, tag)], so the space is
   a pure function of the seed — never of timing or of traversal
   interleaving. *)
let shuffle sp ~tag xs =
  if sp.seed = 0 then xs
  else begin
    let st = Random.State.make [| sp.seed; Hashtbl.hash tag |] in
    let arr = Array.of_list xs in
    for i = Array.length arr - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr
  end

let has_gen g =
  List.exists
    (fun o ->
      List.exists
        (function L.Piece.Gen _ -> true | L.Piece.Reg _ -> false)
        (L.Order_by.pieces o))
    (L.Group_by.chain g)

(* Sigma roots: one RegP over the full 2-D space per permutation. *)
let sigma_roots sp =
  List.map
    (fun sigma ->
      of_piece sp (L.Piece.reg ~dims:[ sp.rows; sp.cols ] ~sigma))
    (L.Sigma.all 2)

(* Gallery roots: the paper's named bijections, where the shape admits
   them. *)
let gallery_roots sp =
  let square = sp.rows = sp.cols in
  let pow2 = square && is_pow2 sp.rows && sp.rows > 1 in
  List.concat
    [
      (if square then [ of_piece sp (L.Gallery.antidiag sp.rows) ] else []);
      (if square then [ of_piece sp (L.Gallery.cyclic_diag sp.rows) ] else []);
      [ of_piece sp (L.Gallery.reverse [ sp.rows; sp.cols ]) ];
      (if pow2 then
         let bits = ref 0 and m = ref sp.rows in
         while !m > 1 do
           incr bits;
           m := !m / 2
         done;
         [
           of_piece sp (L.Gallery.morton ~d:2 ~bits:!bits);
           of_piece sp (L.Gallery.hilbert ~bits:!bits);
         ]
       else []);
    ]

(* Algebra-built composite roots: a masked XOR swizzle composed — at the
   piece level, through the prover-discharged layout algebra — with the
   logical divide of the row-major space by a column tile.  The row tile
   [(cols):(1)] divides to the identity, so its composites are the plain
   swizzles routed through the algebra; the column tiles [(ri):(cols)]
   interleave sub-columns under the swizzle.  Every candidate carries a
   GenP piece, so the family is a set of leaves in the refinement dag
   (no swizzle stacks on it). *)
let composed sp =
  if (not sp.composed) || (not (is_pow2 sp.cols)) || sp.cols = 1 then []
  else begin
    let module A = L.Algebra in
    let module D = Lego_symbolic.Discharge in
    let get what = function
      | Ok v -> v
      | Error e ->
        invalid_arg
          (Format.asprintf "Space.composed (%s): %a" what A.pp_error e)
    in
    let a = A.row [ sp.rows; sp.cols ] in
    let tile_piece tile =
      get "divide" (Result.bind (D.logical_divide a tile) D.to_piece)
    in
    let tiles =
      A.make ~shape:[ sp.cols ] ~stride:[ 1 ]
      :: List.filter_map
           (fun ri ->
             if ri > 1 && sp.rows mod ri = 0 then
               Some (A.make ~shape:[ ri ] ~stride:[ sp.cols ])
             else None)
           [ 2; 4 ]
    in
    let masks =
      List.filter
        (fun m -> m > 0)
        (List.sort_uniq compare
           [ sp.cols - 1; (sp.cols - 1) / 2; (sp.cols - 1) / 4 ])
    in
    List.concat_map
      (fun tile ->
        let tp = tile_piece tile in
        (* The bare divided layout, then its swizzled composites. *)
        of_piece sp tp
        :: List.concat_map
             (fun mask ->
               List.map
                 (fun shift ->
                   let swz =
                     L.Gallery.xor_swizzle_masked ~rows:sp.rows ~cols:sp.cols
                       ~mask ~shift
                   in
                   of_piece sp (get "compose" (D.compose_pieces swz tp)))
                 [ 0; 1 ])
             masks)
      tiles
  end

let roots sp =
  shuffle sp ~tag:"roots" (sigma_roots sp) @
  shuffle sp ~tag:"gallery" (gallery_roots sp) @
  shuffle sp ~tag:"composed" (composed sp)

(* Non-trivial factorizations [outer * inner = n, both > 1]. *)
let divisor_pairs n =
  let rec go d acc =
    if d > n / 2 then List.rev acc
    else go (d + 1) (if n mod d = 0 then (d, n / d) :: acc else acc)
  in
  go 2 []

(* Two-level tilings of the space: [TileOrderBy(P_outer, P_inner)] over
   every non-trivial divisor split of each extent and every sigma pair. *)
let tilings sp =
  let rows_splits = divisor_pairs sp.rows and cols_splits = divisor_pairs sp.cols in
  let sigmas = L.Sigma.all 2 in
  List.concat_map
    (fun (ro, ri) ->
      List.concat_map
        (fun (co, ci) ->
          List.concat_map
            (fun so ->
              List.map
                (fun si ->
                  view2 sp
                    (L.Sugar.tile_order_by
                       [
                         L.Piece.reg ~dims:[ ro; co ] ~sigma:so;
                         L.Piece.reg ~dims:[ ri; ci ] ~sigma:si;
                       ]))
                sigmas)
            sigmas)
        cols_splits)
    rows_splits

(* Bank geometry shared by every device preset (A100/H100): 32 banks of
   4-byte words, 32-lane warps.  The class key below only needs the word
   size and the warp width; both are fixed across the presets, so the
   space stays a pure function of [(rows, cols, seed, elem_bytes)]. *)
let bank_bytes = 4
let warp_lanes = 32

(* The number of bits indexing [0 .. n-1]. *)
let num_bits n = if n <= 1 then 0 else log2 (n - 1) + 1

type swizzle_class = {
  sw_mask : int;
  sw_shift : int;
  sw_members : (int * int) list;
}

(* The full masked-swizzle grid for this shape: every legal mask crossed
   with every shift that can still reach a row bit (larger shifts clear
   the key entirely, i.e. repeat mask = 0). *)
let swizzle_family sp =
  if (not (is_pow2 sp.cols)) || sp.cols = 1 then []
  else begin
    let shifts = max 1 (num_bits sp.rows) in
    List.concat_map
      (fun shift -> List.init sp.cols (fun mask -> (mask, shift)))
      (List.init shifts Fun.id)
  end

(* Provable cost-equivalence classes of the masked-swizzle family over
   GF(2) (DESIGN.md section 12).  The swizzle xors [key(i) = (i >> shift)
   land mask] into the column bits; as an F₂ map [K] from row bits to
   column bits, only the rows of [K] that reach a distinct bank {e word}
   matter — key bits below [log2 (bank_bytes / elem_bytes)] land in
   sub-word address bits and cannot change any bank or transaction count.
   Two members with the same pair of images

     (im K̃ restricted to the warp-sweep lane bits,  im K̃)

   differ by an invertible change of row-space basis that fixes the lane
   subspace — a relabeling of which row activates which key, under which
   every warp sweep (full-row phases are key-independent; full-column
   phases see the same rank, hence the same coset multiplicity) costs
   identically.  One canonical representative per class is enough for
   the search; the collapse is exact, not heuristic (the test suite
   checks every member of every class scores identically on the slot
   phase lists). *)
let swizzle_class_key sp (mask, shift) =
  let rbits = log2 sp.rows and vbits = min (log2 sp.rows) (log2 warp_lanes) in
  let wshift = max 0 (log2 bank_bytes - log2 sp.elem_bytes) in
  let im limit =
    let acc = ref 0 in
    for b = wshift to log2 sp.cols - 1 do
      if mask land (1 lsl b) <> 0 && b + shift < limit then
        acc := !acc lor (1 lsl b)
    done;
    !acc
  in
  (im vbits, im rbits)

let popcount x =
  let c = ref 0 and v = ref x in
  while !v <> 0 do
    incr c;
    v := !v land (!v - 1)
  done;
  !c

let swizzle_classes sp =
  if
    (not (is_pow2 sp.cols))
    || sp.cols = 1
    || (not (is_pow2 sp.rows))
    || not (is_pow2 sp.elem_bytes)
  then []
  else begin
    (* Iterate shifts-then-masks ascending: the first member of each
       class is its lexicographic (shift, mask) minimum — the canonical
       representative. *)
    let order = Hashtbl.create 64 and members = Hashtbl.create 64 in
    let keys = ref [] in
    List.iter
      (fun shift ->
        List.iter
          (fun mask ->
            let key = swizzle_class_key sp (mask, shift) in
            if not (Hashtbl.mem order key) then begin
              Hashtbl.add order key (List.length !keys);
              keys := key :: !keys
            end;
            Hashtbl.add members key (mask, shift))
          (List.init sp.cols Fun.id))
      (List.init (max 1 (num_bits sp.rows)) Fun.id);
    let classes =
      List.rev_map
        (fun key ->
          let ms = List.rev (Hashtbl.find_all members key) in
          let mask, shift = List.hd ms in
          (key, { sw_mask = mask; sw_shift = shift; sw_members = ms }))
        !keys
    in
    (* Highest-rank (fewest-conflict) classes first, so a tiny budget
       still meets the conflict-free swizzle early; ties in canonical
       representative order. *)
    List.map snd
      (List.stable_sort
         (fun ((v1, f1), c1) ((v2, f2), c2) ->
           let c = compare (popcount v2) (popcount v1) in
           if c <> 0 then c
           else
             let c = compare (popcount f2) (popcount f1) in
             if c <> 0 then c
             else compare (c1.sw_shift, c1.sw_mask) (c2.sw_shift, c2.sw_mask))
         classes)
  end

(* XOR-swizzle refinements: prepend a [swizzlex] GenP as the outermost
   reordering of a swizzle-free candidate.  The default family samples
   prefix masks only, widest (the classic full-column swizzle) first, so
   a tiny budget meets the known-good layout early; [classes] mode
   instead enumerates one canonical representative per provable
   F₂ cost-equivalence class of the {e full} mask/shift grid — complete
   coverage of the family with far fewer candidates. *)
let swizzles sp g =
  if (not (is_pow2 sp.cols)) || sp.cols = 1 || has_gen g then []
  else begin
    let pairs =
      let class_reps =
        if sp.classes then
          List.filter_map
            (fun c ->
              (* The trivial class (no word-relevant key bit) is the
                 parent itself, cost-wise; skip it. *)
              if swizzle_class_key sp (c.sw_mask, c.sw_shift) = (0, 0) then None
              else Some (c.sw_mask, c.sw_shift))
            (swizzle_classes sp)
        else []
      in
      if class_reps <> [] then class_reps
      else
        let masks =
          let rec go m acc =
            if m < 1 then List.rev acc else go (m / 2) (m :: acc)
          in
          go (sp.cols - 1) []
        in
        List.concat_map
          (fun mask -> List.map (fun shift -> (mask, shift)) [ 0; 1; 2 ])
          masks
    in
    List.map
      (fun (mask, shift) ->
        L.Group_by.prepend
          (L.Order_by.make
             [
               L.Gallery.xor_swizzle_masked ~rows:sp.rows ~cols:sp.cols ~mask
                 ~shift;
             ])
          g)
      pairs
  end

(* Is [g] a bare sigma root (single chain entry, single RegP covering the
   whole space)?  Only those refine into tilings; every swizzle-free
   candidate refines into swizzles. *)
let is_sigma_root g =
  match L.Group_by.chain g with
  | [ o ] -> (
    match L.Order_by.pieces o with
    | [ L.Piece.Reg { dims; _ } ] -> List.length dims = 2
    | _ -> false)
  | _ -> false

let children sp g =
  let sw = shuffle sp ~tag:"swizzles" (swizzles sp g) in
  let tl = if is_sigma_root g then shuffle sp ~tag:"tilings" (tilings sp) else [] in
  sw @ tl

(* ---- Streaming enumeration (the mega-space path) ----------------------

   Everything below generates candidates {e lazily}: the full scale
   product space (10^5-10^6 layouts on the matmul shape) is never
   materialized — the consumer pulls candidates one at a time, and the
   only per-space state is the 16-byte-digest dedup set.  The sequence
   is a pure function of the space record: re-traversing a stream from
   the start rebuilds a fresh dedup table inside the outer thunk, so
   every traversal yields the identical sequence. *)

(* Breadth-first levels of the refinement dag, as a lazy sequence,
   duplicates included.  Unlike the old eager closure this expands the
   children of duplicate frontier entries too — [children] is a pure
   function of the candidate, so those children are themselves
   duplicates of ones generated earlier in the level and the {e
   deduplicated} sequence is unchanged; levels still empty out because
   only swizzle-free candidates have children and no child is
   swizzle-free. *)
let rec bfs_levels sp frontier =
  fun () ->
    match frontier with
    | [] -> Seq.Nil
    | _ ->
      Seq.append
        (List.to_seq frontier)
        (fun () -> bfs_levels sp (List.concat_map (children sp) frontier) ())
        ()

(* Ordered factorizations of [n] into exactly [k] factors, all > 1
   (level-major: the head is the outermost tile extent). *)
let rec factorizations n k =
  if k <= 1 then if n > 1 then [ [ n ] ] else []
  else
    List.concat_map
      (fun (d, rest) ->
        List.map (fun f -> d :: f) (factorizations rest (k - 1)))
      (divisor_pairs n)

(* Three-level tilings: [TileOrderBy(P1, P2, P3)] over every ordered
   3-factorization of each extent and every sigma triple — the deep
   hierarchy axis of the scale space. *)
let deep_tilings sp =
  let sigmas = L.Sigma.all 2 in
  List.concat_map
    (fun rf ->
      List.concat_map
        (fun cf ->
          let levels = List.combine rf cf in
          List.concat_map
            (fun s1 ->
              List.concat_map
                (fun s2 ->
                  List.map
                    (fun s3 ->
                      view2 sp
                        (L.Sugar.tile_order_by
                           (List.map2
                              (fun (r, c) s -> L.Piece.reg ~dims:[ r; c ] ~sigma:s)
                              levels [ s1; s2; s3 ])))
                    sigmas)
                sigmas)
            sigmas)
        (factorizations sp.cols 3))
    (factorizations sp.rows 3)

(* Vectorization-width tilings: one dimension split off as a contiguous
   innermost vector ([1; v] along columns, [w; 1] along rows) under each
   outer sigma — the register/LDGSTS-width axis.  [tilings] never emits
   these (it requires both extents of a level to be non-trivial). *)
let vector_tilings sp =
  let sigmas = L.Sigma.all 2 in
  let id2 = L.Sigma.identity 2 in
  let widths n = List.map fst (divisor_pairs n) in
  List.concat_map
    (fun v ->
      List.map
        (fun so ->
          view2 sp
            (L.Sugar.tile_order_by
               [
                 L.Piece.reg ~dims:[ sp.rows; sp.cols / v ] ~sigma:so;
                 L.Piece.reg ~dims:[ 1; v ] ~sigma:id2;
               ]))
        sigmas)
    (widths sp.cols)
  @ List.concat_map
      (fun w ->
        List.map
          (fun so ->
            view2 sp
              (L.Sugar.tile_order_by
                 [
                   L.Piece.reg ~dims:[ sp.rows / w; sp.cols ] ~sigma:so;
                   L.Piece.reg ~dims:[ w; 1 ] ~sigma:id2;
                 ]))
          sigmas)
      (widths sp.rows)

(* The scale product axes: every swizzle-free base (sigma roots,
   two-level, three-level and vectorization tilings) crossed with the
   {e full} masked-swizzle grid (every mask >= 1, every shift — not the
   prefix-mask sample [swizzles] takes).  Generated lazily base by
   base; overlaps with the sampled closure are removed by the dedup
   wrapper downstream.  Mask 0 is excluded: it prepends a stage that is
   the identity map under a new name, a structural near-duplicate with
   no cost signal. *)
let scale_stream sp =
  if not sp.scale then Seq.empty
  else begin
    let bases =
      shuffle sp ~tag:"scale-bases"
        (sigma_roots sp @ tilings sp @ deep_tilings sp @ vector_tilings sp)
    in
    let pairs =
      shuffle sp ~tag:"scale-grid"
        (List.filter (fun (mask, _) -> mask > 0) (swizzle_family sp))
    in
    Seq.concat_map
      (fun base ->
        Seq.cons base
          (Seq.map
             (fun (mask, shift) ->
               L.Group_by.prepend
                 (L.Order_by.make
                    [
                      L.Gallery.xor_swizzle_masked ~rows:sp.rows ~cols:sp.cols
                        ~mask ~shift;
                    ])
                 base)
             (List.to_seq pairs)))
      (List.to_seq bases)
  end

(* Digest-keyed deduplication.  The table lives inside the outermost
   thunk: each traversal-from-the-start gets a fresh table (so streams
   are re-traversable), while a partially consumed tail continues with
   the table its traversal built.  Keys are {!Fingerprint.digest} — 16
   bytes per distinct candidate, the only O(space)-sized state of a
   streaming search. *)
let dedup seq =
  fun () ->
    let seen = Hashtbl.create 1024 in
    let rec go s () =
      match s () with
      | Seq.Nil -> Seq.Nil
      | Seq.Cons (g, tl) ->
        let d = Fingerprint.digest g in
        if Hashtbl.mem seen d then go tl ()
        else begin
          Hashtbl.add seen d ();
          Seq.Cons (g, go tl)
        end
    in
    go seq ()

let stream sp =
  dedup (Seq.append (bfs_levels sp (roots sp)) (scale_stream sp))

let count sp = Seq.length (stream sp)
let closure sp = List.of_seq (stream sp)
