module L = Lego_layout
module G = Lego_gpusim
module F = Lego_gpusim.Fastpath
module Sym = Lego_symbolic

type sim = {
  time_s : float;
  s_accesses : float;
  s_cycles : float;
  g_txns : float;
}

type t = {
  name : string;
  descr : string;
  rows : int;
  cols : int;
  device : G.Device.t;
  smem_dtype : G.Mem.dtype;
  phases : Predict.phase list;
  simulate : fast:bool -> L.Group_by.t -> sim;
  simulate_sampled : (fast:bool -> L.Group_by.t -> sim) option;
  baselines : (string * sim Lazy.t) list;
  full_warps : bool;
}

(* The cache/store identity of a slot: simulation results depend on the
   device model and the shared-memory element width, not just the slot
   name — "matmul" tuned on an A100 must never satisfy a lookup for
   "matmul" on an H100 (the regression the (name, fingerprint)-only key
   had).  Device identity prefers the stable preset key; a scaled or
   hand-built device falls back to its free-form name. *)
let identity t =
  let dev =
    match G.Device.preset_name t.device with
    | Some k -> k
    | None -> t.device.G.Device.name
  in
  Printf.sprintf "%s@%s/%s" t.name dev (G.Mem.dtype_name t.smem_dtype)

let sim_of_reports reports =
  let acc, cyc, txn =
    List.fold_left
      (fun (a, c, t) (r : G.Simt.report) ->
        ( a +. r.counters.G.Simt.s_accesses,
          c +. r.counters.G.Simt.s_cycles,
          t +. r.counters.G.Simt.g_txns ))
      (0.0, 0.0, 0.0) reports
  in
  {
    time_s = G.Metrics.sum_times_s reports;
    s_accesses = acc;
    s_cycles = cyc;
    g_txns = txn;
  }

(* Zero shared conflicts in a finished simulation: every warp-wide shared
   round ran in one cycle.  Only meaningful when every shared round uses
   a full warp (each round then contributes warp_size accesses and >= 1
   cycle), which the slots below assert via [full_warps]. *)
let sim_conflict_free ?(device = G.Device.a100) s =
  s.s_accesses > 0.0
  && s.s_cycles = s.s_accesses /. float_of_int device.G.Device.warp_size

(* Per-access address-computation charge fed to the [Alu] ops.  The raw
   symbolic op count wildly overstates bitwise GenP bijections: the
   expression language has no XOR, so [Gallery.xor_word] expands each bit
   through add/mul/div arithmetic (~150 ops for a 5-bit swizzle), while
   the CUDA/Triton code the paper generates lowers the same swizzle to a
   couple of LOP3/SHF instructions.  Capping the modeled cost keeps the
   roofline honest — cheap strided layouts still win the tie at 2-8 ops,
   but no layout is charged more address arithmetic than a short
   hardware instruction sequence. *)
let addr_ops_cap = 16
let addr_ops g = min addr_ops_cap (Sym.Cost.ops (Sym.Sym.apply g))

let row_major ~rows ~cols =
  L.Group_by.make
    ~chain:
      [
        L.Order_by.make
          [ L.Piece.reg ~dims:[ rows; cols ] ~sigma:(L.Sigma.identity 2) ];
      ]
    [ [ rows; cols ] ]

(* The candidate's (i, j) -> shared-word map; the slot kernels accept
   any layout whose logical view is [rows x cols] (hierarchy
   regroupings included — only the concatenated dims matter).
   [fast:true] evaluates through the compiled closure; [fast:false]
   through the structural interpreter, reproducing the pre-fast-path
   per-access cost — the values are identical either way (the
   {!Compiled} contract), so counters stay bit-identical. *)
let layout_addr ~fast ~name ~rows ~cols g =
  let c = Compiled.of_layout g in
  if Compiled.dims c <> [ rows; cols ] then
    invalid_arg
      (Printf.sprintf "%s slot: layout must view [%d; %d]" name rows cols);
  if fast then fun i j -> Compiled.apply_flat c ((i * cols) + j)
  else fun i j -> L.Group_by.apply_ints g [ i; j ]

(* Run one launch of a warp program on the selected path.  [fast:false]
   is the effect-handler reference: the {e same} program interpreted
   through {!Lego_gpusim.Simt} fibers — counters are bit-identical by
   the {!Lego_gpusim.Fastpath} contract, only the wall-clock differs. *)
let launch ~fast ~device ?smem_dtype ?sample_blocks ?key ~grid ~block
    ~smem_words prog =
  if fast then
    F.run ~device ?smem_dtype ?sample_blocks ?key ~grid ~block ~smem_words prog
  else
    G.Simt.run ~device ?smem_dtype ?sample_blocks ~grid ~block ~smem_words
      (F.interpret prog)

(* FP16 matmul staging tile (the paper's figure 13 shared-memory GEMM
   operand): a 128 x 32 half-precision tile is staged row-wise by 8 warps
   and then consumed column-wise, 4 columns per warp in 4 row-parts.
   Row-major storage makes the column reads 16-way bank conflicted (two
   F16 elements share each 4-byte bank word); the paper's hand-written
   fix is the XOR swizzle the tuner should rediscover. *)
let matmul_smem ?(device = G.Device.a100) () =
  let rows = 128 and cols = 32 in
  let program ~fast g =
    let saddr = layout_addr ~fast ~name:"matmul" ~rows ~cols g in
    let aops = addr_ops g in
    (* Stage: warp [ty] stores rows ty, ty+8, ... — lane tx = column. *)
    List.concat
      (List.init (rows / 8) (fun l ->
           [
             F.Alu aops;
             F.Sstore
               (fun (ctx : G.Simt.ctx) -> saddr (ctx.ty + (8 * l)) ctx.tx);
           ]))
    @ [ F.Sync ]
    (* Consume: warp [ty] reads columns 4ty .. 4ty+3, lane tx = row
       within each 32-row part. *)
    @ List.concat
        (List.init 4 (fun co ->
             List.concat
               (List.init (rows / 32) (fun p ->
                    [
                      F.Alu aops;
                      F.Sload
                        (fun (ctx : G.Simt.ctx) ->
                          saddr ((p * 32) + ctx.tx) ((4 * ctx.ty) + co));
                    ]))))
  in
  (* All four blocks run the identical program (no block-dependent
     address anywhere), so the sampled rung simulates one block — same
     per-warp rounds, a quarter of the work, and it may share the full
     run's summary-cache key because the cache is per (key, op, warp). *)
  let simulate_blocks ?sample_blocks ~fast g =
    let r =
      launch ~fast ~device ~smem_dtype:G.Mem.F16 ?sample_blocks
        ~key:("matmul:" ^ Fingerprint.of_layout g)
        ~grid:(4, 1) ~block:(32, 8) ~smem_words:(rows * cols)
        (program ~fast g)
    in
    sim_of_reports [ r ]
  in
  let simulate ~fast g = simulate_blocks ~fast g in
  let phases =
    List.init 32 (fun r ->
        Predict.Shared { elem_bytes = 2; lanes = (fun t -> Some [ r; t ]) })
    @ List.init cols (fun c ->
          Predict.Shared { elem_bytes = 2; lanes = (fun t -> Some [ t; c ]) })
  in
  {
    name = "matmul";
    descr = "128x32 FP16 matmul staging tile (shared memory)";
    rows;
    cols;
    device;
    smem_dtype = G.Mem.F16;
    phases;
    simulate;
    simulate_sampled =
      Some (fun ~fast g -> simulate_blocks ~sample_blocks:1 ~fast g);
    baselines =
      [ ("row-major", lazy (simulate ~fast:true (row_major ~rows ~cols))) ];
    full_warps = true;
  }

(* 32x32 FP32 transpose tile (figure 13): the shared-staged transpose of
   {!Lego_apps.Transpose.run_shared} expressed as a warp program — the
   candidate is the shared tile layout, the global views are the
   row-major input and column-major-ordered output of the app.  The
   "naive" baseline is the no-shared-memory kernel with uncoalesced
   global writes — the gap the paper's shared variant closes. *)
let transpose_smem ?(device = G.Device.a100) () =
  let rows = 32 and cols = 32 in
  let size = 1024 in
  let t = 32 in
  let rows_per_iter = 256 / t in
  let cfg = Lego_apps.Transpose.default_config ~tile:t size in
  let arena_cap = 1 lsl 22 in
  let inp, wi =
    G.Mem.create_arena ~label:"in" G.Mem.F32 (size * size) ~cap:arena_cap
  in
  let out, wo =
    G.Mem.create_arena ~label:"out" G.Mem.F32 (size * size) ~cap:arena_cap
  in
  (* Input is the row-major view, output the same logical index through
     a column-major-ordered view (transposition as a pure layout
     change); both compile to stride arithmetic, so even these
     million-element views go through the fast path without tables. *)
  let li = L.Sugar.tiled_view ~group:[ [ size; size ] ] () in
  let lo =
    L.Sugar.tiled_view
      ~order:[ L.Sugar.col [ size; size ] ]
      ~group:[ [ size; size ] ]
      ()
  in
  let cli = Compiled.compile li and clo = Compiled.compile lo in
  let program ~fast g =
    let saddr = layout_addr ~fast ~name:"transpose" ~rows ~cols g in
    let iaddr, oaddr =
      if fast then
        ( (fun i j -> Compiled.apply_flat cli ((i * size) + j)),
          fun oj oi -> Compiled.apply_flat clo ((oj * size) + oi) )
      else
        ( (fun i j -> L.Group_by.apply_ints li [ i; j ]),
          fun oj oi -> L.Group_by.apply_ints lo [ oj; oi ] )
    in
    (* Stage the tile: coalesced reads, shared stores (possibly
       conflicting, depending on the candidate layout)... *)
    List.concat
      (List.init (t / rows_per_iter) (fun r ->
           [
             F.Alu 4;
             F.Gload
               ( inp,
                 fun (ctx : G.Simt.ctx) ->
                   let i = (ctx.by * t) + ctx.ty + (r * rows_per_iter)
                   and j = (ctx.bx * t) + ctx.tx in
                   wi (iaddr i j) );
             F.Sstore
               (fun (ctx : G.Simt.ctx) ->
                 saddr (ctx.ty + (r * rows_per_iter)) ctx.tx);
           ]))
    @ [ F.Sync ]
    (* ...then write the transposed tile with coalesced global stores;
       the shared reads walk a column of the tile. *)
    @ List.concat
        (List.init (t / rows_per_iter) (fun r ->
             [
               F.Alu 4;
               F.Sload
                 (fun (ctx : G.Simt.ctx) ->
                   saddr ctx.tx (ctx.ty + (r * rows_per_iter)));
               F.Gstore
                 ( out,
                   fun (ctx : G.Simt.ctx) ->
                     let tj = ctx.ty + (r * rows_per_iter) in
                     let oi = (ctx.bx * t) + tj and oj = (ctx.by * t) + ctx.tx in
                     wo (oaddr oj oi) );
             ]))
  in
  (* Shared addresses are block-independent; only the global streams
     vary with (bx, by), and they are sampled-and-scaled by the grid
     sampler either way, so one block instead of four ranks sampled
     candidates on the same structure at a quarter of the work. *)
  let simulate_blocks ~sample_blocks ~fast g =
    let r =
      launch ~fast ~device ~sample_blocks
        ~key:("transpose:" ^ Fingerprint.of_layout g)
        ~grid:(size / t, size / t)
        ~block:(t, rows_per_iter) ~smem_words:(rows * cols)
        (program ~fast g)
    in
    sim_of_reports [ r ]
  in
  let simulate ~fast g = simulate_blocks ~sample_blocks:4 ~fast g in
  let phases =
    List.init rows (fun ti ->
        Predict.Shared { elem_bytes = 4; lanes = (fun t -> Some [ ti; t ]) })
    @ List.init cols (fun tj ->
          Predict.Shared { elem_bytes = 4; lanes = (fun t -> Some [ t; tj ]) })
  in
  {
    name = "transpose";
    descr = "32x32 FP32 transpose tile (shared memory)";
    rows;
    cols;
    device;
    smem_dtype = G.Mem.F32;
    phases;
    simulate;
    simulate_sampled =
      Some (fun ~fast g -> simulate_blocks ~sample_blocks:1 ~fast g);
    baselines =
      [
        ( "naive",
          lazy
            (let r = Lego_apps.Transpose.run_naive ~device cfg in
             sim_of_reports r.reports) );
        ( "row-major-smem",
          lazy (simulate ~fast:true (row_major ~rows ~cols)) );
      ];
    full_warps = true;
  }

(* Needleman-Wunsch 17x17 score buffer (figure 14): wavefront updates
   walk anti-diagonals, so row-major storage serializes on banks; the
   paper's fix is the anti-diagonal layout of figure 8.  17 is prime and
   not a power of two, so the space here is just the sigma and gallery
   roots — always exhaustive.

   The tile kernel of {!Lego_apps.Nw} is expressed as a {e predicated}
   warp program: the [tx = 0] corner staging and the shrinking wavefront
   fronts become [Masked] ops, so the warp stays converged and the fast
   path applies.  All 2nb-1 diagonal launches share one op structure
   (only global offsets shift with the diagonal), which is exactly what
   the per-warp summary cache exploits across launches. *)
let nw_smem ?(device = G.Device.a100) () =
  let b = 16 in
  let rows = b + 1 and cols = b + 1 in
  let length = 512 in
  let n = length + 1 in
  let nb = length / b in
  let scores, wrap =
    G.Mem.create_arena ~label:"scores" G.Mem.I32 (n * n) ~cap:(1 lsl 22)
  in
  let sref_base = (b + 1) * (b + 1) in
  let smem_words = sref_base + (b * b) in
  (* The program is built {e once} per candidate and reused for all
     2nb-1 diagonal launches: only the global base offsets shift with
     the diagonal, so they read the [d]/[ti_lo] refs the launch loop
     updates.  Shared addresses and masks never touch the refs, which
     is what makes the one-key-per-candidate summary cache sound. *)
  let program ~sbuff ~ac ~d ~ti_lo =
    let base_i (ctx : G.Simt.ctx) = (!ti_lo + ctx.bx) * b
    and base_j (ctx : G.Simt.ctx) = (!d - !ti_lo - ctx.bx) * b in
    let lane0 (ctx : G.Simt.ctx) = ctx.tx = 0 in
    (* Stage boundaries: top row, left column, corner (lane 0 only). *)
    [
      F.Alu ac;
      F.Gload
        (scores, fun ctx -> wrap ((base_i ctx * n) + base_j ctx + ctx.tx + 1));
      F.Sstore (fun ctx -> sbuff 0 (ctx.G.Simt.tx + 1));
      F.Alu ac;
      F.Gload
        ( scores,
          fun ctx -> wrap (((base_i ctx + ctx.tx + 1) * n) + base_j ctx) );
      F.Sstore (fun ctx -> sbuff (ctx.G.Simt.tx + 1) 0);
      F.Masked (lane0, F.Alu ac);
      F.Masked
        (lane0, F.Gload (scores, fun ctx -> wrap ((base_i ctx * n) + base_j ctx)));
      F.Masked (lane0, F.Sstore (fun _ -> sbuff 0 0));
    ]
    (* Stage the reference tile (row per thread). *)
    @ List.init b (fun jj ->
          F.Sstore (fun (ctx : G.Simt.ctx) -> sref_base + (ctx.tx * b) + jj))
    @ [ F.Sync ]
    (* Forward wavefront over the 2b-1 anti-diagonals of the tile: lane
       tx updates cell (tx+1, s-tx+1) when it lies in the tile. *)
    @ List.concat
        (List.init ((2 * b) - 1) (fun s ->
             let active (ctx : G.Simt.ctx) =
               let j = s - ctx.tx + 1 in
               j >= 1 && j <= b
             in
             [
               F.Masked (active, F.Alu (4 * ac));
               F.Masked
                 ( active,
                   F.Sload (fun (ctx : G.Simt.ctx) -> sbuff ctx.tx (s - ctx.tx))
                 );
               F.Masked
                 ( active,
                   F.Sload
                     (fun (ctx : G.Simt.ctx) -> sbuff ctx.tx (s - ctx.tx + 1))
                 );
               F.Masked
                 ( active,
                   F.Sload
                     (fun (ctx : G.Simt.ctx) -> sbuff (ctx.tx + 1) (s - ctx.tx))
                 );
               F.Masked
                 ( active,
                   F.Sload
                     (fun (ctx : G.Simt.ctx) ->
                       sref_base + (ctx.tx * b) + (s - ctx.tx)) );
               F.Masked (active, F.Flops (G.Mem.I32, false, 4));
               F.Masked
                 ( active,
                   F.Sstore
                     (fun (ctx : G.Simt.ctx) ->
                       sbuff (ctx.tx + 1) (s - ctx.tx + 1)) );
               F.Sync;
             ]))
    (* Write the tile interior back, thread per column so the global
       stores of a round are consecutive (coalesced), as in Rodinia. *)
    @ List.concat
        (List.init b (fun ii ->
             [
               F.Alu ac;
               F.Sload
                 (fun (ctx : G.Simt.ctx) -> sbuff (ii + 1) (ctx.tx + 1));
               F.Gstore
                 ( scores,
                   fun ctx ->
                     wrap
                       (((base_i ctx + ii + 1) * n) + base_j ctx + ctx.tx + 1)
                 );
             ]))
  in
  (* [diags] selects which of the 2nb-1 wavefront launches to run, in
     ascending order (the L2 state threads through them).  The full
     simulation runs them all; the sampled rung runs only the widest
     diagonal (dv = nb-1, every block active) — the shared-conflict
     structure is identical on every diagonal (addresses are
     block-independent), so one launch ranks candidates on the same
     signal at 1/(2nb-1) of the work. *)
  let simulate_with ~fast ~key ~sbuff ~ac diags =
    let d = ref 0 and ti_lo = ref 0 in
    let prog = program ~sbuff ~ac ~d ~ti_lo in
    let reports = ref [] in
    List.iter
      (fun dv ->
        d := dv;
        ti_lo := max 0 (dv - nb + 1);
        let ti_hi = min dv (nb - 1) in
        let blocks = ti_hi - !ti_lo + 1 in
        let r =
          launch ~fast ~device ~sample_blocks:2 ~key ~grid:(blocks, 1)
            ~block:(b, 1) ~smem_words prog
        in
        reports := r :: !reports)
      diags;
    sim_of_reports (List.rev !reports)
  in
  let all_diags = List.init ((2 * nb) - 1) Fun.id in
  let simulate ~fast g =
    let sbuff = layout_addr ~fast ~name:"nw" ~rows ~cols g in
    simulate_with ~fast ~key:("nw:" ^ Fingerprint.of_layout g) ~sbuff
      ~ac:(addr_ops g) all_diags
  in
  let simulate_sampled ~fast g =
    let sbuff = layout_addr ~fast ~name:"nw" ~rows ~cols g in
    simulate_with ~fast ~key:("nw:" ^ Fingerprint.of_layout g) ~sbuff
      ~ac:(addr_ops g) [ nb - 1 ]
  in
  (* Wavefront step [s]: active lane [t] updates cell (t+1, s-t+1) from
     its west, north and north-west neighbours.  Sample a mid and a full
     diagonal. *)
  let wavefront s (di, dj) =
    Predict.Shared
      {
        elem_bytes = 4;
        lanes =
          (fun t ->
            let i = t + 1 and j = s - t + 1 in
            if t < b && j >= 1 && j <= b then Some [ i + di; j + dj ] else None);
      }
  in
  let phases =
    List.concat_map
      (fun s ->
        [
          wavefront s (-1, -1);
          wavefront s (-1, 0);
          wavefront s (0, -1);
          wavefront s (0, 0);
        ])
      [ b / 2; b - 1 ]
  in
  let antidiag_layout =
    L.Group_by.make
      ~chain:[ L.Order_by.make [ L.Gallery.antidiag (b + 1) ] ]
      [ [ b + 1; b + 1 ] ]
  in
  {
    name = "nw";
    descr = "17x17 FP32 Needleman-Wunsch score buffer (shared memory)";
    rows;
    cols;
    device;
    smem_dtype = G.Mem.F32;
    phases;
    simulate;
    simulate_sampled = Some simulate_sampled;
    baselines =
      [
        ("row-major", lazy (simulate ~fast:true (row_major ~rows ~cols)));
        ("antidiag", lazy (simulate ~fast:true antidiag_layout));
      ];
    full_warps = false;
  }

let all ?device () =
  [ matmul_smem ?device (); transpose_smem ?device (); nw_smem ?device () ]

let find ?device name =
  List.find_opt (fun s -> s.name = name) (all ?device ())
