module L = Lego_layout
module G = Lego_gpusim
module Sym = Lego_symbolic

type sim = { time_s : float; s_accesses : float; s_cycles : float }

type t = {
  name : string;
  descr : string;
  rows : int;
  cols : int;
  phases : Predict.phase list;
  simulate : L.Group_by.t -> sim;
  baselines : (string * sim Lazy.t) list;
  full_warps : bool;
}

let sim_of_reports reports =
  let acc, cyc =
    List.fold_left
      (fun (a, c) (r : G.Simt.report) ->
        ( a +. r.counters.G.Simt.s_accesses,
          c +. r.counters.G.Simt.s_cycles ))
      (0.0, 0.0) reports
  in
  { time_s = G.Metrics.sum_times_s reports; s_accesses = acc; s_cycles = cyc }

(* Zero shared conflicts in a finished simulation: every warp-wide shared
   round ran in one cycle.  Only meaningful when every shared round uses
   a full warp (each round then contributes warp_size accesses and >= 1
   cycle), which the slots below assert via [full_warps]. *)
let sim_conflict_free ?(device = G.Device.a100) s =
  s.s_accesses > 0.0
  && s.s_cycles = s.s_accesses /. float_of_int device.G.Device.warp_size

(* Per-access address-computation charge fed to [Simt.alu].  The raw
   symbolic op count wildly overstates bitwise GenP bijections: the
   expression language has no XOR, so [Gallery.xor_word] expands each bit
   through add/mul/div arithmetic (~150 ops for a 5-bit swizzle), while
   the CUDA/Triton code the paper generates lowers the same swizzle to a
   couple of LOP3/SHF instructions.  Capping the modeled cost keeps the
   roofline honest — cheap strided layouts still win the tie at 2-8 ops,
   but no layout is charged more address arithmetic than a short
   hardware instruction sequence. *)
let addr_ops_cap = 16
let addr_ops g = min addr_ops_cap (Sym.Cost.ops (Sym.Sym.apply g))

let row_major ~rows ~cols =
  L.Group_by.make
    ~chain:
      [
        L.Order_by.make
          [ L.Piece.reg ~dims:[ rows; cols ] ~sigma:(L.Sigma.identity 2) ];
      ]
    [ [ rows; cols ] ]

(* FP16 matmul staging tile (the paper's figure 13 shared-memory GEMM
   operand): a 128 x 32 half-precision tile is staged row-wise by 8 warps
   and then consumed column-wise, 4 columns per warp in 4 row-parts.
   Row-major storage makes the column reads 16-way bank conflicted (two
   F16 elements share each 4-byte bank word); the paper's hand-written
   fix is the XOR swizzle the tuner should rediscover. *)
let matmul_smem ?(device = G.Device.a100) () =
  let rows = 128 and cols = 32 in
  let simulate g =
    let saddr i j = L.Group_by.apply_ints g [ i; j ] in
    let aops = addr_ops g in
    let kern (ctx : G.Simt.ctx) =
      (* Stage: warp [ty] stores rows ty, ty+8, ... — lane tx = column. *)
      for l = 0 to (rows / 8) - 1 do
        let r = ctx.ty + (8 * l) in
        G.Simt.alu aops;
        G.Simt.sstore (saddr r ctx.tx) 1.0
      done;
      G.Simt.sync ();
      (* Consume: warp [ty] reads columns 4ty .. 4ty+3, lane tx = row
         within each 32-row part. *)
      for c = 4 * ctx.ty to (4 * ctx.ty) + 3 do
        for p = 0 to (rows / 32) - 1 do
          G.Simt.alu aops;
          ignore (G.Simt.sload (saddr ((p * 32) + ctx.tx) c))
        done
      done
    in
    let r =
      G.Simt.run ~device ~smem_dtype:G.Mem.F16 ~grid:(4, 1) ~block:(32, 8)
        ~smem_words:(rows * cols) kern
    in
    sim_of_reports [ r ]
  in
  let phases =
    List.init 32 (fun r ->
        Predict.Shared { elem_bytes = 2; lanes = (fun t -> Some [ r; t ]) })
    @ List.init cols (fun c ->
          Predict.Shared { elem_bytes = 2; lanes = (fun t -> Some [ t; c ]) })
  in
  {
    name = "matmul";
    descr = "128x32 FP16 matmul staging tile (shared memory)";
    rows;
    cols;
    phases;
    simulate;
    baselines = [ ("row-major", lazy (simulate (row_major ~rows ~cols))) ];
    full_warps = true;
  }

(* 32x32 FP32 transpose tile (figure 13): simulated end-to-end through
   {!Lego_apps.Transpose.run_shared} with the candidate as the shared
   tile layout.  The "naive" baseline is the no-shared-memory kernel with
   uncoalesced global writes — the gap the paper's shared variant
   closes. *)
let transpose_smem ?(device = G.Device.a100) () =
  let rows = 32 and cols = 32 in
  let cfg = Lego_apps.Transpose.default_config ~tile:32 1024 in
  let simulate g =
    let r =
      Lego_apps.Transpose.run_shared ~device ~smem_layout:(Layout g) cfg
    in
    sim_of_reports r.reports
  in
  let phases =
    List.init rows (fun ti ->
        Predict.Shared { elem_bytes = 4; lanes = (fun t -> Some [ ti; t ]) })
    @ List.init cols (fun tj ->
          Predict.Shared { elem_bytes = 4; lanes = (fun t -> Some [ t; tj ]) })
  in
  {
    name = "transpose";
    descr = "32x32 FP32 transpose tile (shared memory)";
    rows;
    cols;
    phases;
    simulate;
    baselines =
      [
        ( "naive",
          lazy
            (let r = Lego_apps.Transpose.run_naive ~device cfg in
             sim_of_reports r.reports) );
        ( "row-major-smem",
          lazy
            (let r =
               Lego_apps.Transpose.run_shared ~device ~smem_layout:Unpadded cfg
             in
             sim_of_reports r.reports) );
      ];
    full_warps = true;
  }

(* Needleman-Wunsch 17x17 score buffer (figure 14): wavefront updates
   walk anti-diagonals, so row-major storage serializes on banks; the
   paper's fix is the anti-diagonal layout of figure 8.  17 is prime and
   not a power of two, so the space here is just the sigma and gallery
   roots — always exhaustive. *)
let nw_smem ?(device = G.Device.a100) () =
  let b = 16 in
  let rows = b + 1 and cols = b + 1 in
  let cfg = Lego_apps.Nw.default_config ~b 512 in
  let simulate g =
    let sbuff i j = L.Group_by.apply_ints g [ i; j ] in
    let r = Lego_apps.Nw.run_custom ~device ~sbuff ~addr_cost:(addr_ops g) cfg in
    sim_of_reports r.reports
  in
  (* Wavefront step [s]: active lane [t] updates cell (t+1, s-t+1) from
     its west, north and north-west neighbours.  Sample a mid and a full
     diagonal. *)
  let wavefront s (di, dj) =
    Predict.Shared
      {
        elem_bytes = 4;
        lanes =
          (fun t ->
            let i = t + 1 and j = s - t + 1 in
            if t < b && j >= 1 && j <= b then Some [ i + di; j + dj ] else None);
      }
  in
  let phases =
    List.concat_map
      (fun s ->
        [
          wavefront s (-1, -1);
          wavefront s (-1, 0);
          wavefront s (0, -1);
          wavefront s (0, 0);
        ])
      [ b / 2; b - 1 ]
  in
  {
    name = "nw";
    descr = "17x17 FP32 Needleman-Wunsch score buffer (shared memory)";
    rows;
    cols;
    phases;
    simulate;
    baselines =
      [
        ( "row-major",
          lazy
            (let r = Lego_apps.Nw.run ~device Lego_apps.Nw.RowMajor cfg in
             sim_of_reports r.reports) );
        ( "antidiag",
          lazy
            (let r = Lego_apps.Nw.run ~device Lego_apps.Nw.AntiDiagonal cfg in
             sim_of_reports r.reports) );
      ];
    full_warps = false;
  }

let all ?device () =
  [ matmul_smem ?device (); transpose_smem ?device (); nw_smem ?device () ]

let find ?device name =
  List.find_opt (fun s -> s.name = name) (all ?device ())
