(** The layout autotuner: closes the loop between the layout algebra and
    the simulator's cost model (DESIGN.md sections 10 and 14).

    A staged funnel over the lazy {!Space.stream} of candidates for one
    {!Slot}:

    + {b static pass} — the stream (pre-deduplicated, never
      materialized) flows through the cheap {!Predict} pre-filter in
      chunks scored in parallel, under a candidate budget; only a
      bounded top-K heap of the best survivors plus counters are
      retained, so ranking memory is O(K) at 10⁵–10⁶ candidates;
    + {b sampled rung} (successive halving; active when the slot has a
      [simulate_sampled] and the rung is wider than [top]) — every heap
      survivor runs the cheap sampled simulation, the best [top]
      promote;
    + {b full rung} — the promoted finalists run the slot's full
      {!Lego_gpusim.Simt} simulation and are ranked by roofline time;
    + the winner is cross-checked through the {!Lego_conform.Conform}
      four-semantics differential harness before being reported.

    Results are bit-identical at any [jobs]: parallelism only ever runs
    inside {!Lego_exec.Exec.map} (submission-order merge), all search
    decisions are sequential over totally ordered keys, the top-K
    retained set is order-independent under its total comparator, and
    the {!Cache} is read (purely) inside parallel sections but written
    only between them — a warm cache changes wall-clock, never results
    or counters. *)

type options = {
  budget : int;  (** Max candidates scored by the static pass (256). *)
  top : int;  (** Finalists fully simulated (default 8). *)
  sample : int;
      (** Width of the sampled rung; 0 (default) = automatic — [4 * top]
          in scale mode, disabled otherwise (which reproduces the
          pre-funnel two-stage search exactly). *)
  seed : int;  (** Space-enumeration seed; 0 = canonical order. *)
  jobs : int;  (** {!Lego_exec.Exec} pool size (default 1). *)
  conform : bool;  (** Four-semantics check of the winner (default on). *)
  conform_points : int;  (** Points for that check (default 2048). *)
  fastpath : bool;
      (** Use compiled layout closures in the static pass and the
          warp-vectorized {!Lego_gpusim.Fastpath} in the sim rungs
          (default on).  [false] keeps the interpreter + effect-handler
          reference path — same scores, same counters, same ranking;
          only the wall-clock (and so [candidates_per_s]) differs.
          Kept for before/after benchmarking. *)
  oracle : bool;
      (** F₂ mode (default off): the static pass scores affine-linear
          candidates in closed form ({!Predict.score}'s [~oracle], exact
          — bit-identical scores), and the swizzle family is enumerated
          by GL(n, F₂) cost-equivalence class ({!Space.swizzle_classes})
          instead of mask/shift sampling, so the {e whole} masked-swizzle
          grid is covered with a fraction of the candidates. *)
  composed : bool;
      (** Include the {!Space.composed} roots (default off): candidates
          built by the prover-discharged layout algebra — masked
          swizzles composed with logical divides of the row-major
          space. *)
  scale : bool;
      (** Mega-space mode (default off): the {!Space} crosses its scale
          product axes (three-level tilings x vectorization widths x
          the full masked-swizzle grid — ~1.8 x 10⁵ candidates on the
          matmul shape), the sampled rung turns on, per-candidate memo
          tables are bypassed ({!Predict.score}'s [~memoize:false]) and
          the symbolic op count switches to the shared-prefix
          {!Predict.decomposed_ops} surrogate.  Raise [budget]
          accordingly ([legoc tune --scale] uses 250000). *)
}

val default_options : options

type scored = {
  layout : Lego_layout.Group_by.t;
  fingerprint : string;
  static_score : Predict.score;
  sim : Slot.sim option;  (** Present for full-rung finalists. *)
}

type result = {
  slot : Slot.t;
  winner : scored;  (** Best simulated time (fingerprint tie-break). *)
  ranking : scored list;  (** All fully simulated finalists, best first. *)
  explored : int;  (** Candidates statically scored. *)
  space_size : int;
      (** Size of the full candidate space.  Free when the stream
          drained (it equals [explored]); computed by one extra
          {!Space.count} traversal, outside the timed sections, when
          the budget truncated the stream. *)
  exhaustive : bool;  (** The stream drained within the budget. *)
  oracle_scored : int;
      (** Candidates the static pass scored purely in closed form (0
          unless [options.oracle]). *)
  sampled_scored : int;
      (** Candidates the sampled rung simulated (0 when the rung is
          inactive). *)
  sim_scored : int;
      (** Candidates whose score involved address-level evaluation:
          static-pass non-oracle scores plus both sim rungs — the
          denominator the F₂ path shrinks.  Counts rung membership, not
          sim invocations, so it is independent of cache warmth. *)
  static_seconds : float;
  sim_seconds : float;
  candidates_per_s : float;  (** [explored / (static + sim)] wall time. *)
  conform : Lego_conform.Conform.outcome option;
  baselines : (string * Slot.sim) list;  (** The slot's references. *)
}

val search : ?options:options -> ?cache:Cache.t -> Slot.t -> result
(** Runs the funnel.  [cache], when given, persists static scores
    (non-scale spaces only), F₂-linearity verdicts and both rungs' sim
    results across searches in a run — re-tuning the same slot (wider
    budget, different [top], before/after comparisons) reuses instead
    of recomputing; see {!Cache} for the exact reuse and soundness
    rules.  Raises [Invalid_argument] when [budget] or [top] is < 1, or
    [sample] < 0. *)

val conform_ok : result -> bool option
(** [Some true] = checked clean, [Some false] = mismatch found, [None] =
    check disabled. *)

val pp_scored : Format.formatter -> scored -> unit
val pp_result : Format.formatter -> result -> unit
