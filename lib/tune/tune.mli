(** The layout autotuner: closes the loop between the layout algebra and
    the simulator's cost model (DESIGN.md section 10).

    Two-stage search over a {!Space} of candidates for one {!Slot}:

    + every enumerated candidate is scored by the cheap static
      {!Predict} pre-filter (symbolic op count + analytic bank-conflict /
      coalescing prediction) — beam-limited breadth-first under a
      candidate budget, exhaustive when the budget covers the space;
    + the statically best [top] survivors run the slot's full
      {!Lego_gpusim.Simt} simulation and are ranked by roofline time;
    + the winner is cross-checked through the {!Lego_conform.Conform}
      four-semantics differential harness before being reported.

    Results are bit-identical at any [jobs]: parallelism only ever runs
    inside {!Lego_exec.Exec.map} (submission-order merge), all search
    decisions are sequential over totally ordered keys, and the memo
    cache is touched only between parallel sections. *)

type options = {
  budget : int;  (** Max candidates scored by stage one (default 256). *)
  top : int;  (** Survivors simulated by stage two (default 8). *)
  beam : int;  (** Beam width for refinement (default 16). *)
  seed : int;  (** Space-enumeration seed; 0 = canonical order. *)
  jobs : int;  (** {!Lego_exec.Exec} pool size (default 1). *)
  conform : bool;  (** Four-semantics check of the winner (default on). *)
  conform_points : int;  (** Points for that check (default 2048). *)
  fastpath : bool;
      (** Use compiled layout closures in stage one and the
          warp-vectorized {!Lego_gpusim.Fastpath} in stage two (default
          on).  [false] keeps the interpreter + effect-handler reference
          path — same scores, same counters, same ranking; only the
          wall-clock (and so [candidates_per_s]) differs.  Kept for
          before/after benchmarking. *)
  oracle : bool;
      (** F₂ mode (default off): stage one scores affine-linear
          candidates in closed form ({!Predict.score}'s [~oracle], exact
          — bit-identical scores), and the swizzle family is enumerated
          by GL(n, F₂) cost-equivalence class ({!Space.swizzle_classes})
          instead of mask/shift sampling, so the {e whole} masked-swizzle
          grid is covered with a fraction of the candidates. *)
  composed : bool;
      (** Include the {!Space.composed} roots (default off): candidates
          built by the prover-discharged layout algebra — masked
          swizzles composed with logical divides of the row-major
          space. *)
}

val default_options : options

type scored = {
  layout : Lego_layout.Group_by.t;
  fingerprint : string;
  static_score : Predict.score;
  sim : Slot.sim option;  (** Present for stage-two survivors. *)
}

type result = {
  slot : Slot.t;
  winner : scored;  (** Best simulated time (fingerprint tie-break). *)
  ranking : scored list;  (** All simulated survivors, best first. *)
  explored : int;  (** Candidates statically scored. *)
  space_size : int;  (** Size of the full candidate closure. *)
  exhaustive : bool;  (** [explored = space_size]. *)
  oracle_scored : int;
      (** Candidates stage one scored purely in closed form (0 unless
          [options.oracle]). *)
  sim_scored : int;
      (** Candidates whose score involved address-level evaluation:
          stage-one non-oracle scores plus stage-two simulations —
          the denominator the F₂ path shrinks. *)
  static_seconds : float;
  sim_seconds : float;
  candidates_per_s : float;  (** [explored / (static + sim)] wall time. *)
  conform : Lego_conform.Conform.outcome option;
  baselines : (string * Slot.sim) list;  (** The slot's references. *)
}

val search : ?options:options -> Slot.t -> result
(** Raises [Invalid_argument] when [budget], [top] or [beam] is < 1. *)

val conform_ok : result -> bool option
(** [Some true] = checked clean, [Some false] = mismatch found, [None] =
    check disabled. *)

val pp_scored : Format.formatter -> scored -> unit
val pp_result : Format.formatter -> result -> unit
