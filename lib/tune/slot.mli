(** Kernel slots: the tuner's view of one shared-memory layout decision
    inside one kernel.

    A slot bundles everything the two search stages need: the logical
    shape of the space being laid out (for {!Space}), a list of
    representative warp access phases (for the {!Predict} pre-filter),
    and a full simulation returning the roofline time (the stage-two
    ground truth).  Each slot's kernel is a single
    {!Lego_gpusim.Fastpath.program} — [simulate ~fast:true] runs it on
    the warp-vectorized fast path (compiled layout closures, per-warp
    summary cache), [simulate ~fast:false] interprets the {e same}
    program through the {!Lego_gpusim.Simt} effect handler; the two
    produce bit-identical counters, only the wall-clock differs.  The
    three slots below are the paper's three hand-tuned layout decisions
    (figures 13-14). *)

type sim = {
  time_s : float;  (** {!Lego_gpusim.Metrics.sum_times_s} of the run. *)
  s_accesses : float;  (** Summed shared-access lanes. *)
  s_cycles : float;  (** Summed shared bank cycles. *)
  g_txns : float;  (** Summed global memory transactions. *)
}

type t = {
  name : string;
  descr : string;
  rows : int;
  cols : int;  (** Logical shape of the layout under search. *)
  device : Lego_gpusim.Device.t;
      (** The device model the slot's simulations run on — part of the
          slot's cache identity (see {!identity}). *)
  smem_dtype : Lego_gpusim.Mem.dtype;
      (** Shared-memory element type of the slot's kernel, likewise part
          of the identity (bank-conflict structure depends on it). *)
  phases : Predict.phase list;
      (** Representative warp phases for the static pre-filter. *)
  simulate : fast:bool -> Lego_layout.Group_by.t -> sim;
      (** Full simulation of the kernel with the candidate layout;
          [fast] selects the warp-vectorized path or the effect-handler
          reference (bit-identical counters). *)
  simulate_sampled : (fast:bool -> Lego_layout.Group_by.t -> sim) option;
      (** Cheap sampled simulation for the funnel's middle rung: the
          same kernel on a grid / launch subset chosen so the shared
          conflict structure is fully represented (one block of the
          uniform matmul grid, one transpose tile, nw's widest
          diagonal).  Its absolute numbers are {e not} comparable to
          [simulate]'s — it ranks candidates for promotion, never
          reports.  [None] means the slot has no cheaper granularity
          and the funnel promotes straight to full simulation. *)
  baselines : (string * sim Lazy.t) list;
      (** Named reference layouts (forced at most once). *)
  full_warps : bool;
      (** Every shared round uses a full warp — makes
          {!sim_conflict_free} meaningful. *)
}

val identity : t -> string
(** The slot's cache/store identity: ["name@device/dtype"] (e.g.
    ["matmul@a100/fp16"]).  {!Tune.search} keys its {!Cache} — and the
    compile service keys its persistent store — by this, not the bare
    name, so the same slot tuned under different device presets or
    shared-memory dtypes never cross-contaminates.  Uses the stable
    {!Lego_gpusim.Device.preset_name} when the device is a preset. *)

val sim_conflict_free : ?device:Lego_gpusim.Device.t -> sim -> bool
(** The simulation ran every warp-wide shared round at bank degree 1
    (only meaningful under [full_warps]). *)

val row_major : rows:int -> cols:int -> Lego_layout.Group_by.t
(** The identity layout of the slot's shape — the universal baseline. *)

val matmul_smem : ?device:Lego_gpusim.Device.t -> unit -> t
(** 128 x 32 FP16 matmul staging tile: stored row-wise, consumed
    column-wise; row-major storage is 16-way conflicted, the XOR swizzle
    is the known fix. *)

val transpose_smem : ?device:Lego_gpusim.Device.t -> unit -> t
(** 32 x 32 FP32 transpose tile ({!Lego_apps.Transpose.run_shared}'s
    kernel as a warp program); baselines include the naive
    no-shared-memory kernel. *)

val nw_smem : ?device:Lego_gpusim.Device.t -> unit -> t
(** 17 x 17 FP32 Needleman-Wunsch score buffer ({!Lego_apps.Nw}'s tile
    kernel as a {e predicated} warp program — the shrinking wavefront
    fronts become [Masked] ops, so the warp stays converged); the
    anti-diagonal gallery layout is the paper's fix. *)

val all : ?device:Lego_gpusim.Device.t -> unit -> t list
val find : ?device:Lego_gpusim.Device.t -> string -> t option
