module L = Lego_layout
module G = Lego_gpusim

type phase =
  | Shared of { elem_bytes : int; lanes : int -> int list option }
  | Global of { elem_bytes : int; addrs : int -> int option }

type score = {
  smem_phases : int;
  smem_accesses : int;
  smem_cycles : int;
  gmem_txns : int;
  ops : int;
}

let conflict_free s = s.smem_phases > 0 && s.smem_cycles = s.smem_phases

(* The warp-access arithmetic is {!Lego_gpusim.Access} — the {e same}
   code the simulator's [cost_shared]/[cost_global] run, so predictor
   and simulator cannot drift (the conformance suite checks the
   agreement differentially anyway). *)
let bank_cycles (device : G.Device.t) ~elem_bytes addrs =
  G.Access.bank_cycles device ~elem_bytes addrs

let txn_count (device : G.Device.t) ~elem_bytes addrs =
  G.Access.txn_count device ~elem_bytes addrs

let interpret_score ~device ~apply ~ops phases =
  let lanes_of f =
    List.filter_map f (List.init device.G.Device.warp_size Fun.id)
  in
  List.fold_left
    (fun acc phase ->
      match phase with
      | Shared { elem_bytes; lanes } ->
        let addrs = List.map apply (lanes_of lanes) in
        if addrs = [] then acc
        else
          {
            acc with
            smem_phases = acc.smem_phases + 1;
            smem_accesses = acc.smem_accesses + List.length addrs;
            smem_cycles =
              acc.smem_cycles + bank_cycles device ~elem_bytes addrs;
          }
      | Global { elem_bytes; addrs } ->
        let addrs = lanes_of addrs in
        if addrs = [] then acc
        else
          { acc with gmem_txns = acc.gmem_txns + txn_count device ~elem_bytes addrs })
    { smem_phases = 0; smem_accesses = 0; smem_cycles = 0; gmem_txns = 0; ops }
    phases

(* Phase lanes are a property of the {e slot}, not the candidate: every
   candidate in a space shares the same logical dims, so each shared
   phase's active-lane logical indices flatten to the same int array
   once, and scoring a candidate is then one compiled-closure call per
   lane.  Global phases never route through the candidate at all, so
   their transaction total is a constant of the phase list.  One-entry
   cache, keyed by physical equality of the phase list (the slot record
   holds one list for the whole search), domain-local because scoring
   runs inside [Exec.map] workers. *)
type precomp = {
  p_phases : phase list;
  p_dims : L.Shape.t;
  p_warp : int;
  p_uniq : int array;  (** Distinct flat logical indices, all phases. *)
  p_shared : (int * int array) list;
      (** (elem_bytes, positions into [p_uniq]).  Phases overlap heavily
          (a store sweep and a load sweep cover the same tile), so each
          distinct index is evaluated through the candidate once and the
          phases gather from the shared value buffer. *)
  p_gmem_txns : int;
}

let precomp_cache : precomp option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let precompute ~(device : G.Device.t) ~dims phases =
  let lanes_of f =
    List.filter_map f (List.init device.warp_size Fun.id)
  in
  let pos_of = Hashtbl.create 256 in
  let uniq = ref [] and nuniq = ref 0 in
  let position flat =
    match Hashtbl.find_opt pos_of flat with
    | Some p -> p
    | None ->
      let p = !nuniq in
      Hashtbl.add pos_of flat p;
      uniq := flat :: !uniq;
      incr nuniq;
      p
  in
  let shared, txns =
    List.fold_left
      (fun (shared, txns) phase ->
        match phase with
        | Shared { elem_bytes; lanes } ->
          let pos =
            List.map
              (fun idx -> position (L.Shape.flatten_ints dims idx))
              (lanes_of lanes)
          in
          ((elem_bytes, Array.of_list pos) :: shared, txns)
        | Global { elem_bytes; addrs } ->
          let addrs = lanes_of addrs in
          ( shared,
            if addrs = [] then txns
            else txns + txn_count device ~elem_bytes addrs ))
      ([], 0) phases
  in
  {
    p_phases = phases;
    p_dims = dims;
    p_warp = device.warp_size;
    p_uniq = Array.of_list (List.rev !uniq);
    p_shared = List.rev shared;
    p_gmem_txns = txns;
  }

(* Scratch buffers for the scoring loop — per domain, grown to the
   largest slot ever scored, so per-candidate evaluation allocates
   nothing: [vals] holds the candidate's value at each distinct
   logical index, [batch] one phase's gathered warp addresses. *)
let scratch : (int array ref * int array ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref [||], ref [||]))

let scratch_get n =
  let r = fst (Domain.DLS.get scratch) in
  if Array.length !r < n then r := Array.make n 0;
  !r

let batch_get n =
  let r = snd (Domain.DLS.get scratch) in
  if Array.length !r < n then r := Array.make n 0;
  !r

let compiled_score ~(device : G.Device.t) c ~ops phases =
  let dims = Compiled.dims c in
  let cache = Domain.DLS.get precomp_cache in
  let pc =
    match !cache with
    | Some pc
      when pc.p_phases == phases && pc.p_warp = device.warp_size
           && pc.p_dims = dims ->
      pc
    | _ ->
      let pc = precompute ~device ~dims phases in
      cache := Some pc;
      pc
  in
  let nu = Array.length pc.p_uniq in
  let vals = scratch_get nu in
  let batch = batch_get device.warp_size in
  for i = 0 to nu - 1 do
    vals.(i) <- Compiled.apply_flat c pc.p_uniq.(i)
  done;
  List.fold_left
    (fun acc (elem_bytes, pos) ->
      let n = Array.length pos in
      if n = 0 then acc
      else begin
        for i = 0 to n - 1 do
          batch.(i) <- vals.(pos.(i))
        done;
        {
          acc with
          smem_phases = acc.smem_phases + 1;
          smem_accesses = acc.smem_accesses + n;
          smem_cycles =
            acc.smem_cycles
            + G.Access.bank_cycles_arr device ~elem_bytes batch n;
        }
      end)
    {
      smem_phases = 0;
      smem_accesses = 0;
      smem_cycles = 0;
      gmem_txns = pc.p_gmem_txns;
      ops;
    }
    pc.p_shared

let score ?(device = G.Device.a100) ?(compiled = true) ?weights
    (g : L.Group_by.t) phases =
  let ops = Lego_symbolic.Cost.ops ?weights (Lego_symbolic.Sym.apply g) in
  if compiled then compiled_score ~device (Compiled.of_layout g) ~ops phases
  else interpret_score ~device ~apply:(L.Group_by.apply_ints g) ~ops phases

(* Total order used for pruning and beam survival: fewest conflict cycles
   first, then fewest global transactions, then cheapest index
   arithmetic; the fingerprint breaks remaining ties so the order never
   depends on traversal or scheduling. *)
let compare_ranked (s1, fp1) (s2, fp2) =
  let c = compare s1.smem_cycles s2.smem_cycles in
  if c <> 0 then c
  else
    let c = compare s1.gmem_txns s2.gmem_txns in
    if c <> 0 then c
    else
      let c = compare s1.ops s2.ops in
      if c <> 0 then c else Fingerprint.compare fp1 fp2

let pp ppf s =
  Format.fprintf ppf
    "smem %d cyc / %d phases (%s), gmem %d txns, %d ops"
    s.smem_cycles s.smem_phases
    (if conflict_free s then "conflict-free" else "conflicted")
    s.gmem_txns s.ops
