module L = Lego_layout
module G = Lego_gpusim
module F2 = Lego_f2

type phase =
  | Shared of { elem_bytes : int; lanes : int -> int list option }
  | Global of { elem_bytes : int; addrs : int -> int option }

type score = {
  smem_phases : int;
  smem_accesses : int;
  smem_cycles : int;
  gmem_txns : int;
  ops : int;
}

let conflict_free s = s.smem_phases > 0 && s.smem_cycles = s.smem_phases

(* The warp-access arithmetic is {!Lego_gpusim.Access} — the {e same}
   code the simulator's [cost_shared]/[cost_global] run, so predictor
   and simulator cannot drift (the conformance suite checks the
   agreement differentially anyway). *)
let bank_cycles (device : G.Device.t) ~elem_bytes addrs =
  G.Access.bank_cycles device ~elem_bytes addrs

let txn_count (device : G.Device.t) ~elem_bytes addrs =
  G.Access.txn_count device ~elem_bytes addrs

let interpret_score ~device ~apply ~ops phases =
  let lanes_of f =
    List.filter_map f (List.init device.G.Device.warp_size Fun.id)
  in
  List.fold_left
    (fun acc phase ->
      match phase with
      | Shared { elem_bytes; lanes } ->
        let addrs = List.map apply (lanes_of lanes) in
        if addrs = [] then acc
        else
          {
            acc with
            smem_phases = acc.smem_phases + 1;
            smem_accesses = acc.smem_accesses + List.length addrs;
            smem_cycles =
              acc.smem_cycles + bank_cycles device ~elem_bytes addrs;
          }
      | Global { elem_bytes; addrs } ->
        let addrs = lanes_of addrs in
        if addrs = [] then acc
        else
          { acc with gmem_txns = acc.gmem_txns + txn_count device ~elem_bytes addrs })
    { smem_phases = 0; smem_accesses = 0; smem_cycles = 0; gmem_txns = 0; ops }
    phases

(* Phase lanes are a property of the {e slot}, not the candidate: every
   candidate in a space shares the same logical dims, so each shared
   phase's active-lane logical indices flatten to the same int array
   once, and scoring a candidate is then one compiled-closure call per
   lane.  Global phases never route through the candidate at all, so
   their transaction total is a constant of the phase list.  One-entry
   cache, keyed by physical equality of the phase list (the slot record
   holds one list for the whole search), domain-local because scoring
   runs inside [Exec.map] workers. *)
type shared_phase = {
  sp_elem : int;
  sp_pos : int array;
      (** Positions into [p_uniq].  Phases overlap heavily (a store
          sweep and a load sweep cover the same tile), so each distinct
          index is evaluated through the candidate once and the phases
          gather from the shared value buffer. *)
  sp_lane : (F2.Bitmat.t * int) option;
      (** The lane-to-flat-logical-index map as an affine F₂ form, when
          the phase drives a full warp and the map is affine — the
          precondition for the closed-form oracle.  A property of the
          slot, so it is recognized here, once, not per candidate. *)
}

type precomp = {
  p_phases : phase list;
  p_dims : L.Shape.t;
  p_warp : int;
  p_uniq : int array;  (** Distinct flat logical indices, all phases. *)
  p_shared : shared_phase list;
  p_gmem_txns : int;
}

let precomp_cache : precomp option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let precompute ~(device : G.Device.t) ~dims phases =
  let lanes_of f =
    List.filter_map f (List.init device.warp_size Fun.id)
  in
  let pos_of = Hashtbl.create 256 in
  let uniq = ref [] and nuniq = ref 0 in
  let position flat =
    match Hashtbl.find_opt pos_of flat with
    | Some p -> p
    | None ->
      let p = !nuniq in
      Hashtbl.add pos_of flat p;
      uniq := flat :: !uniq;
      incr nuniq;
      p
  in
  let shared, txns =
    List.fold_left
      (fun (shared, txns) phase ->
        match phase with
        | Shared { elem_bytes; lanes } ->
          let flats =
            List.map
              (fun idx -> L.Shape.flatten_ints dims idx)
              (lanes_of lanes)
          in
          let pos = List.map position flats in
          let lane =
            if List.length flats = device.warp_size then
              F2.Oracle.of_lanes (Array.of_list flats)
            else None
          in
          ( { sp_elem = elem_bytes; sp_pos = Array.of_list pos; sp_lane = lane }
            :: shared,
            txns )
        | Global { elem_bytes; addrs } ->
          let addrs = lanes_of addrs in
          let t =
            if addrs = [] then 0
            else begin
              (* Global patterns never route through the candidate, so
                 they are counted once here — in closed form when the
                 warp pattern is affine (2^rank of the segment map,
                 exactly {!Lego_gpusim.Access.txn_count}'s distinct-
                 segment count), by enumeration otherwise. *)
              let arr = Array.of_list addrs in
              let closed =
                if Array.length arr = device.warp_size then
                  match F2.Oracle.of_lanes arr with
                  | Some (a, _) ->
                    F2.Oracle.txn_count ~txn_bytes:device.global_txn_bytes
                      ~elem_bytes a
                  | None -> None
                else None
              in
              match closed with
              | Some t -> t
              | None -> txn_count device ~elem_bytes addrs
            end
          in
          (shared, txns + t))
      ([], 0) phases
  in
  {
    p_phases = phases;
    p_dims = dims;
    p_warp = device.warp_size;
    p_uniq = Array.of_list (List.rev !uniq);
    p_shared = List.rev shared;
    p_gmem_txns = txns;
  }

(* Scratch buffers for the scoring loop — per domain, grown to the
   largest slot ever scored, so per-candidate evaluation allocates
   nothing: [vals] holds the candidate's value at each distinct
   logical index, [batch] one phase's gathered warp addresses. *)
let scratch : (int array ref * int array ref) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> (ref [||], ref [||]))

let scratch_get n =
  let r = fst (Domain.DLS.get scratch) in
  if Array.length !r < n then r := Array.make n 0;
  !r

let batch_get n =
  let r = snd (Domain.DLS.get scratch) in
  if Array.length !r < n then r := Array.make n 0;
  !r

let precomp_for ~(device : G.Device.t) ~dims phases =
  let cache = Domain.DLS.get precomp_cache in
  match !cache with
  | Some pc
    when pc.p_phases == phases && pc.p_warp = device.warp_size
         && pc.p_dims = dims ->
    pc
  | _ ->
    let pc = precompute ~device ~dims phases in
    cache := Some pc;
    pc

let fold_shared ~(device : G.Device.t) ~eval_vals ~cycles_of ~ops pc =
  let batch = batch_get device.warp_size in
  let vals_ready = ref false in
  let vals () =
    let v = scratch_get (Array.length pc.p_uniq) in
    if not !vals_ready then begin
      eval_vals v;
      vals_ready := true
    end;
    v
  in
  List.fold_left
    (fun acc sp ->
      let n = Array.length sp.sp_pos in
      if n = 0 then acc
      else begin
        let cycles =
          match cycles_of sp with
          | Some c -> c
          | None ->
            let v = vals () in
            for i = 0 to n - 1 do
              batch.(i) <- v.(sp.sp_pos.(i))
            done;
            G.Access.bank_cycles_arr device ~elem_bytes:sp.sp_elem batch n
        in
        {
          acc with
          smem_phases = acc.smem_phases + 1;
          smem_accesses = acc.smem_accesses + n;
          smem_cycles = acc.smem_cycles + cycles;
        }
      end)
    {
      smem_phases = 0;
      smem_accesses = 0;
      smem_cycles = 0;
      gmem_txns = pc.p_gmem_txns;
      ops;
    }
    pc.p_shared

let compiled_score ~(device : G.Device.t) c ~ops phases =
  let pc = precomp_for ~device ~dims:(Compiled.dims c) phases in
  fold_shared ~device ~ops pc
    ~eval_vals:(fun vals ->
      Array.iteri (fun i u -> vals.(i) <- Compiled.apply_flat c u) pc.p_uniq)
    ~cycles_of:(fun _ -> None)

(* Closed-form scoring of an F₂-linear candidate: each full-warp affine
   phase composes its lane map with the candidate matrix and reads the
   conflict multiplicity off two ranks — no per-lane evaluation at all.
   Phases outside the affine precondition (partial warps, non-affine
   lane maps, odd geometry) fall back to evaluating the candidate {e
   through the matrix} and counting with the simulator's own
   {!Lego_gpusim.Access} arithmetic, so the score stays exact — and
   bit-identical to {!compiled_score} — in every case. *)
let oracle_score ~(device : G.Device.t) lin ~ops ~dims phases =
  let pc = precomp_for ~device ~dims phases in
  fold_shared ~device ~ops pc
    ~eval_vals:(fun vals ->
      Array.iteri (fun i u -> vals.(i) <- F2.Linear.apply lin u) pc.p_uniq)
    ~cycles_of:(fun sp ->
      match sp.sp_lane with
      | Some lane ->
        let a, _ = F2.Oracle.compose_warp lin lane in
        F2.Oracle.bank_cycles ~nbanks:device.smem_banks
          ~bank_bytes:device.smem_bank_bytes ~elem_bytes:sp.sp_elem a
      | None -> None)

let linear_memo : (string, F2.Linear.t option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let linear_of ?(memoize = true) g =
  if not memoize then F2.Linear.of_layout g
  else begin
    let tbl = Domain.DLS.get linear_memo in
    let fp = Fingerprint.of_layout g in
    match Hashtbl.find_opt tbl fp with
    | Some r -> r
    | None ->
      let r = F2.Linear.of_layout g in
      Hashtbl.add tbl fp r;
      r
  end

(* Per-dimension decomposition of the symbolic op count.  A chain stage
   contributes the same index arithmetic whatever the other stages are,
   so the op cost of a candidate decomposes (up to the constant glue the
   default weights assign to composition, which is identical for every
   candidate of a family) into a sum of per-stage costs.  At mega-space
   scale candidates share stages heavily — every member of a swizzle
   grid shares its base tiling, every tiling shares pieces — so
   memoizing per {e stage} instead of per candidate turns the dominant
   [Sym.apply]+[Cost.ops] cost into a table hit for all but the first
   carrier of each stage.  The decomposition is a ranking surrogate, not
   the exact whole-layout count; [score ?ops] lets the funnel choose it
   explicitly while every other caller keeps the exact count. *)
let stage_memo : (string, int) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let stage_ops (o : L.Order_by.t) =
  let wrap = L.Group_by.make ~chain:[ o ] [ [ L.Order_by.numel o ] ] in
  let key = Fingerprint.of_layout wrap in
  let tbl = Domain.DLS.get stage_memo in
  match Hashtbl.find_opt tbl key with
  | Some n -> n
  | None ->
    let n = Lego_symbolic.Cost.ops (Lego_symbolic.Sym.apply wrap) in
    Hashtbl.add tbl key n;
    n

let decomposed_ops (g : L.Group_by.t) =
  match L.Group_by.chain g with
  | [] -> Lego_symbolic.Cost.ops (Lego_symbolic.Sym.apply g)
  | chain -> List.fold_left (fun acc o -> acc + stage_ops o) 0 chain

let score ?(device = G.Device.a100) ?(compiled = true) ?(oracle = false)
    ?(memoize = true) ?ops ?weights (g : L.Group_by.t) phases =
  let ops =
    match ops with
    | Some n -> n
    | None -> Lego_symbolic.Cost.ops ?weights (Lego_symbolic.Sym.apply g)
  in
  match if oracle then linear_of ~memoize g else None with
  | Some lin -> oracle_score ~device lin ~ops ~dims:(L.Group_by.dims g) phases
  | None ->
    if compiled then
      let c = if memoize then Compiled.of_layout g else Compiled.compile g in
      compiled_score ~device c ~ops phases
    else interpret_score ~device ~apply:(L.Group_by.apply_ints g) ~ops phases

(* Total order used for pruning and beam survival: fewest conflict cycles
   first, then fewest global transactions, then cheapest index
   arithmetic; the fingerprint breaks remaining ties so the order never
   depends on traversal or scheduling. *)
let compare_ranked (s1, fp1) (s2, fp2) =
  let c = compare s1.smem_cycles s2.smem_cycles in
  if c <> 0 then c
  else
    let c = compare s1.gmem_txns s2.gmem_txns in
    if c <> 0 then c
    else
      let c = compare s1.ops s2.ops in
      if c <> 0 then c else Fingerprint.compare fp1 fp2

let pp ppf s =
  Format.fprintf ppf
    "smem %d cyc / %d phases (%s), gmem %d txns, %d ops"
    s.smem_cycles s.smem_phases
    (if conflict_free s then "conflict-free" else "conflicted")
    s.gmem_txns s.ops
