module L = Lego_layout
module G = Lego_gpusim

type phase =
  | Shared of { elem_bytes : int; lanes : int -> int list option }
  | Global of { elem_bytes : int; addrs : int -> int option }

type score = {
  smem_phases : int;
  smem_accesses : int;
  smem_cycles : int;
  gmem_txns : int;
  ops : int;
}

let conflict_free s = s.smem_phases > 0 && s.smem_cycles = s.smem_phases

(* Mirror of [Simt.cost_shared]: banks are [smem_bank_bytes] wide and
   interleaved by byte address; the cost of a warp access is the largest
   number of distinct bank words hitting one bank (same-word broadcast is
   free). *)
let bank_cycles (device : G.Device.t) ~elem_bytes addrs =
  let banks = Hashtbl.create 8 in
  List.iter
    (fun addr ->
      let word = addr * elem_bytes / device.smem_bank_bytes in
      let bank = word mod device.smem_banks in
      let set =
        Option.value ~default:[] (Hashtbl.find_opt banks bank)
      in
      if not (List.mem word set) then Hashtbl.replace banks bank (word :: set))
    addrs;
  Hashtbl.fold (fun _ set acc -> max acc (List.length set)) banks 1

(* Mirror of [Simt.cost_global]: one transaction per distinct
   [global_txn_bytes] segment the warp touches. *)
let txn_count (device : G.Device.t) ~elem_bytes addrs =
  let segs = Hashtbl.create 8 in
  List.iter
    (fun addr -> Hashtbl.replace segs (addr * elem_bytes / device.global_txn_bytes) ())
    addrs;
  Hashtbl.length segs

let score ?(device = G.Device.a100) ?weights (g : L.Group_by.t) phases =
  let ops = Lego_symbolic.Cost.ops ?weights (Lego_symbolic.Sym.apply g) in
  let lanes_of f =
    List.filter_map f (List.init device.warp_size Fun.id)
  in
  List.fold_left
    (fun acc phase ->
      match phase with
      | Shared { elem_bytes; lanes } ->
        let addrs =
          List.map (fun idx -> L.Group_by.apply_ints g idx) (lanes_of lanes)
        in
        if addrs = [] then acc
        else
          {
            acc with
            smem_phases = acc.smem_phases + 1;
            smem_accesses = acc.smem_accesses + List.length addrs;
            smem_cycles =
              acc.smem_cycles + bank_cycles device ~elem_bytes addrs;
          }
      | Global { elem_bytes; addrs } ->
        let addrs = lanes_of addrs in
        if addrs = [] then acc
        else
          { acc with gmem_txns = acc.gmem_txns + txn_count device ~elem_bytes addrs })
    { smem_phases = 0; smem_accesses = 0; smem_cycles = 0; gmem_txns = 0; ops }
    phases

(* Total order used for pruning and beam survival: fewest conflict cycles
   first, then fewest global transactions, then cheapest index
   arithmetic; the fingerprint breaks remaining ties so the order never
   depends on traversal or scheduling. *)
let compare_ranked (s1, fp1) (s2, fp2) =
  let c = compare s1.smem_cycles s2.smem_cycles in
  if c <> 0 then c
  else
    let c = compare s1.gmem_txns s2.gmem_txns in
    if c <> 0 then c
    else
      let c = compare s1.ops s2.ops in
      if c <> 0 then c else Fingerprint.compare fp1 fp2

let pp ppf s =
  Format.fprintf ppf
    "smem %d cyc / %d phases (%s), gmem %d txns, %d ops"
    s.smem_cycles s.smem_phases
    (if conflict_free s then "conflict-free" else "conflicted")
    s.gmem_txns s.ops
