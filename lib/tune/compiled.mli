(** Layouts compiled to specialized flat-index closures.

    [Group_by.apply_ints] re-traverses the layout structure and
    allocates intermediate index lists on every call; at ~10³ address
    evaluations per candidate that is most of the tuner's static stage.
    {!compile} walks the structure {e once} and builds an [int -> int]
    closure over precomputed strides: [Reg] pieces become pure
    mixed-radix digit arithmetic (no table, so views of any size
    compile), [Gen] pieces a lazily-filled table (each address evaluated
    symbolically at most once).  The closure computes exactly
    [Group_by.apply_ints] — checked differentially over the conformance
    corpus — so fast-path simulations driven by compiled addresses stay
    bit-identical to the interpreter. *)

type t

val dims : t -> Lego_layout.Shape.t
val numel : t -> int

val compile : Lego_layout.Group_by.t -> t

val of_layout : Lego_layout.Group_by.t -> t
(** {!compile} memoized per {!Fingerprint} in domain-local storage —
    the "compile once per fingerprint" half of the fast path. *)

val apply_flat : t -> int -> int
(** [apply_flat c flat] = [Group_by.apply_ints g (unflatten (dims g) flat)]. *)

val apply : t -> int list -> int
(** [apply c idx] = [Group_by.apply_ints g idx]. *)

val clear_memo : unit -> unit
(** Drop this domain's fingerprint memo (tests / benchmarks). *)
