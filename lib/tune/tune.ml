module L = Lego_layout
module Exec = Lego_exec.Exec

type options = {
  budget : int;
  top : int;
  beam : int;
  seed : int;
  jobs : int;
  conform : bool;
  conform_points : int;
  fastpath : bool;
  oracle : bool;
  composed : bool;
}

let default_options =
  {
    budget = 256;
    top = 8;
    beam = 16;
    seed = 0;
    jobs = 1;
    conform = true;
    conform_points = 2048;
    fastpath = true;
    oracle = false;
    composed = false;
  }

type scored = {
  layout : L.Group_by.t;
  fingerprint : string;
  static_score : Predict.score;
  sim : Slot.sim option;
}

type result = {
  slot : Slot.t;
  winner : scored;
  ranking : scored list;
  explored : int;
  space_size : int;
  exhaustive : bool;
  oracle_scored : int;
  sim_scored : int;
  static_seconds : float;
  sim_seconds : float;
  candidates_per_s : float;
  conform : Lego_conform.Conform.outcome option;
  baselines : (string * Slot.sim) list;
}

let rec take_prefix n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take_prefix (n - 1) xs

(* The search is deterministic at any [jobs] by construction:

   - candidate generation is a pure function of [(shape, seed)]
     ({!Space}'s contract);
   - every parallel step is an {!Exec.map}, whose submission-order merge
     returns exactly the sequential result;
   - every {e decision} (dedup, budget truncation, beam survival, final
     ranking) happens sequentially in this driver, over totally ordered
     keys ({!Predict.compare_ranked}, and [(time_s, fingerprint)] for
     stage two);
   - the fingerprint-keyed memo table is only read and written between
     parallel sections.

   Only the [*_seconds] / [candidates_per_s] timings may vary. *)
let search ?(options = default_options) (slot : Slot.t) =
  if options.budget < 1 then invalid_arg "Tune.search: budget must be >= 1";
  if options.top < 1 then invalid_arg "Tune.search: top must be >= 1";
  if options.beam < 1 then invalid_arg "Tune.search: beam must be >= 1";
  (* Oracle mode also switches the space to F₂ class enumeration; the
     class key must use the widest shared element among the slot's
     phases (sub-word key bits for that element width are cost-inert
     for every narrower one too, so the partition stays sound). *)
  let elem_bytes =
    List.fold_left
      (fun acc phase ->
        match phase with
        | Predict.Shared { elem_bytes; _ } -> max acc elem_bytes
        | Predict.Global _ -> acc)
      1 slot.phases
  in
  let sp =
    Space.make ~seed:options.seed ~classes:options.oracle
      ~composed:options.composed ~elem_bytes ~rows:slot.rows ~cols:slot.cols ()
  in
  let space_size = List.length (Space.closure sp) in
  Exec.with_pool ~jobs:(max 1 options.jobs) @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  (* Stage one: beam-limited breadth-first exploration under the budget,
     scored by the static predictor.  [seen] doubles as the memo-cache
     key set: a fingerprint is scored at most once. *)
  let seen = Hashtbl.create 128 in
  let explored = ref [] and used = ref 0 and oracle_scored = ref 0 in
  let fresh gs =
    List.filter_map
      (fun g ->
        let fp = Fingerprint.of_layout g in
        if Hashtbl.mem seen fp then None
        else begin
          Hashtbl.add seen fp ();
          Some (fp, g)
        end)
      gs
  in
  let score_level cands =
    let arr = Array.of_list cands in
    let scores =
      Exec.map ~pool arr (fun (_, g) ->
          ( Predict.score ~compiled:options.fastpath ~oracle:options.oracle g
              slot.phases,
            options.oracle && Predict.linear_of g <> None ))
    in
    let level =
      List.mapi
        (fun i (fp, g) ->
          let score, via_oracle = scores.(i) in
          if via_oracle then incr oracle_scored;
          { layout = g; fingerprint = fp; static_score = score; sim = None })
        cands
    in
    explored := List.rev_append level !explored;
    used := !used + List.length level;
    level
  in
  let rec explore frontier =
    if frontier <> [] && !used < options.budget then begin
      let cands = take_prefix (options.budget - !used) (fresh frontier) in
      if cands <> [] then begin
        let level = score_level cands in
        let survivors =
          take_prefix options.beam
            (List.sort
               (fun a b ->
                 Predict.compare_ranked
                   (a.static_score, a.fingerprint)
                   (b.static_score, b.fingerprint))
               level)
        in
        explore (List.concat_map (fun s -> Space.children sp s.layout) survivors)
      end
    end
  in
  explore (Space.roots sp);
  let all = List.rev !explored in
  let static_seconds = Unix.gettimeofday () -. t0 in
  (* Stage two: full simulation of the statically best [top] survivors,
     ranked by roofline time. *)
  let t1 = Unix.gettimeofday () in
  let finalists =
    take_prefix options.top
      (List.sort
         (fun a b ->
           Predict.compare_ranked
             (a.static_score, a.fingerprint)
             (b.static_score, b.fingerprint))
         all)
  in
  let arr = Array.of_list finalists in
  let sims =
    Exec.map ~pool arr (fun sc -> slot.simulate ~fast:options.fastpath sc.layout)
  in
  (* Roofline time first; among roofline ties (the time model saturates
     on whichever resource bounds the kernel) prefer fewer simulated bank
     cycles, then the static order — ending, as always, at the
     fingerprint, so the ranking is total. *)
  let ranking =
    List.sort
      (fun a b ->
        let sa = Option.get a.sim and sb = Option.get b.sim in
        let c = compare sa.Slot.time_s sb.Slot.time_s in
        if c <> 0 then c
        else
          let c = compare sa.Slot.s_cycles sb.Slot.s_cycles in
          if c <> 0 then c
          else
            Predict.compare_ranked
              (a.static_score, a.fingerprint)
              (b.static_score, b.fingerprint))
      (List.mapi (fun i sc -> { sc with sim = Some sims.(i) }) finalists)
  in
  let sim_seconds = Unix.gettimeofday () -. t1 in
  let winner =
    match ranking with
    | w :: _ -> w
    | [] -> invalid_arg "Tune.search: empty candidate space"
  in
  let conform =
    if options.conform then
      Some
        (Lego_conform.Conform.check_layout ~max_points:options.conform_points
           winner.layout)
    else None
  in
  let baselines = List.map (fun (n, s) -> (n, Lazy.force s)) slot.baselines in
  let explored = List.length all in
  let wall = static_seconds +. sim_seconds in
  {
    slot;
    winner;
    ranking;
    explored;
    space_size;
    exhaustive = explored = space_size;
    oracle_scored = !oracle_scored;
    (* Candidates whose score involved address-level simulation: stage
       one's non-oracle evaluations plus stage two's full runs.  The
       headline economy of the F₂ path — [sim_scored] drops by the
       number of candidates the closed form absorbed (and the class
       space shrinks [explored] itself). *)
    sim_scored = explored - !oracle_scored + List.length ranking;
    static_seconds;
    sim_seconds;
    candidates_per_s = (if wall > 0.0 then float_of_int explored /. wall else 0.0);
    conform;
    baselines;
  }

let conform_ok r =
  match r.conform with
  | None -> None
  | Some o -> Some (o.Lego_conform.Conform.mismatch = None)

let pp_scored ppf sc =
  Format.fprintf ppf "@[<v 2>%s@,static: %a" sc.fingerprint Predict.pp
    sc.static_score;
  (match sc.sim with
  | Some s ->
    Format.fprintf ppf "@,simulated: %.3f us (smem %.0f cycles / %.0f accesses)"
      (s.Slot.time_s *. 1e6) s.Slot.s_cycles s.Slot.s_accesses
  | None -> ());
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>slot %s: %s@," r.slot.Slot.name r.slot.Slot.descr;
  Format.fprintf ppf
    "explored %d of %d candidates (%s), simulated %d, %.0f cand/s@," r.explored
    r.space_size
    (if r.exhaustive then "exhaustive" else "beam")
    (List.length r.ranking) r.candidates_per_s;
  if r.oracle_scored > 0 then
    Format.fprintf ppf "oracle: %d closed-form, %d address-level@,"
      r.oracle_scored r.sim_scored;
  List.iter
    (fun (n, s) ->
      Format.fprintf ppf "baseline %-14s %.3f us@," n (s.Slot.time_s *. 1e6))
    r.baselines;
  Format.fprintf ppf "winner: %a@," pp_scored r.winner;
  (match r.conform with
  | Some { mismatch = None; points; c_checked; _ } ->
    Format.fprintf ppf "conformance: ok (%d points%s)@," points
      (if c_checked then "" else ", C path skipped")
  | Some { mismatch = Some m; _ } ->
    Format.fprintf ppf "conformance: MISMATCH at %s: %s@,"
      m.Lego_conform.Conform.stage m.Lego_conform.Conform.detail
  | None -> ());
  Format.fprintf ppf "@]"
