module L = Lego_layout
module Exec = Lego_exec.Exec

type options = {
  budget : int;
  top : int;
  sample : int;
  seed : int;
  jobs : int;
  conform : bool;
  conform_points : int;
  fastpath : bool;
  oracle : bool;
  composed : bool;
  scale : bool;
}

let default_options =
  {
    budget = 256;
    top = 8;
    sample = 0;
    seed = 0;
    jobs = 1;
    conform = true;
    conform_points = 2048;
    fastpath = true;
    oracle = false;
    composed = false;
    scale = false;
  }

type scored = {
  layout : L.Group_by.t;
  fingerprint : string;
  static_score : Predict.score;
  sim : Slot.sim option;
}

type result = {
  slot : Slot.t;
  winner : scored;
  ranking : scored list;
  explored : int;
  space_size : int;
  exhaustive : bool;
  oracle_scored : int;
  sampled_scored : int;
  sim_scored : int;
  static_seconds : float;
  sim_seconds : float;
  candidates_per_s : float;
  conform : Lego_conform.Conform.outcome option;
  baselines : (string * Slot.sim) list;
}

let rec take_prefix n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take_prefix (n - 1) xs

(* Pull up to [n] elements off a sequence; returns them in order, the
   rest of the sequence, and whether the sequence ended inside the
   pull.  Each node of {!Space.stream} is forced exactly once across
   the whole search — the dedup state threads through the returned
   tail. *)
let take_seq n seq =
  let rec go n s acc =
    if n <= 0 then (List.rev acc, s, false)
    else
      match s () with
      | Seq.Nil -> (List.rev acc, Seq.empty, true)
      | Seq.Cons (x, tl) -> go (n - 1) tl (x :: acc)
  in
  go n seq []

let cmp_static a b =
  Predict.compare_ranked (a.static_score, a.fingerprint)
    (b.static_score, b.fingerprint)

(* Simulated order: roofline time first; among roofline ties (the time
   model saturates on whichever resource bounds the kernel) prefer
   fewer simulated bank cycles, then the static order — ending, as
   always, at the fingerprint, so the order is total. *)
let cmp_sim (a, sa) (b, sb) =
  let c = compare sa.Slot.time_s sb.Slot.time_s in
  if c <> 0 then c
  else
    let c = compare sa.Slot.s_cycles sb.Slot.s_cycles in
    if c <> 0 then c else cmp_static a b

(* The search is deterministic at any [jobs] by construction:

   - candidate generation is a pure function of [(shape, seed, scale)]
     ({!Space}'s contract), and the stream arrives pre-deduplicated;
   - every parallel step is an {!Exec.map}, whose submission-order merge
     returns exactly the sequential result;
   - every {e decision} (budget truncation, top-K retention, rung
     promotion, final ranking) happens sequentially in this driver,
     over totally ordered keys ({!Predict.compare_ranked}, and
     [(time_s, s_cycles, static, fingerprint)] for the sim rungs) — the
     chunk size only groups work, never reorders it, and the top-K
     retained set is order-independent under a total comparator;
   - the {!Cache} is read inside parallel sections (pure [find]) and
     written only between them, and every reported counter tallies the
     funnel's structure (rung sizes, linearity verdicts), not cache
     traffic — so a warm cache changes wall-clock only.

   Only the [*_seconds] / [candidates_per_s] timings may vary. *)
let search ?(options = default_options) ?cache (slot : Slot.t) =
  if options.budget < 1 then invalid_arg "Tune.search: budget must be >= 1";
  if options.top < 1 then invalid_arg "Tune.search: top must be >= 1";
  if options.sample < 0 then invalid_arg "Tune.search: sample must be >= 0";
  let cache =
    match cache with Some c -> c | None -> Cache.create ~max_entries:0 ()
  in
  (* Cache keys carry the full slot identity (name, device preset, smem
     dtype): scores and sims depend on the device model and element
     width, so "matmul" tuned under a100 must never satisfy a lookup
     for the same layout under h100. *)
  let cache_slot = Slot.identity slot in
  (* Oracle mode also switches the space to F₂ class enumeration; the
     class key must use the widest shared element among the slot's
     phases (sub-word key bits for that element width are cost-inert
     for every narrower one too, so the partition stays sound). *)
  let elem_bytes =
    List.fold_left
      (fun acc phase ->
        match phase with
        | Predict.Shared { elem_bytes; _ } -> max acc elem_bytes
        | Predict.Global _ -> acc)
      1 slot.phases
  in
  let sp =
    Space.make ~seed:options.seed ~classes:options.oracle
      ~composed:options.composed ~elem_bytes ~scale:options.scale
      ~rows:slot.rows ~cols:slot.cols ()
  in
  (* Successive-halving geometry: the sampled rung is [sample] wide when
     requested, 4 x [top] by default in scale mode (so the full-sim rung
     sees a 4:1 halving), and absent otherwise — which reproduces the
     pre-funnel two-stage search exactly. *)
  let sample_eff =
    if options.sample > 0 then options.sample
    else if options.scale then 4 * options.top
    else 0
  in
  let use_sampled = slot.simulate_sampled <> None && sample_eff > options.top in
  let heap_cap = if use_sampled then max options.top sample_eff else options.top in
  (* Caching policy: static scores are cached only on non-scale spaces
     (small, revisited by re-tuning); at mega-space scale per-candidate
     static entries would blow the memory bound for near-zero hit rate.
     Sim results (both rungs) are always cached — there are at most
     [heap_cap] per search and they dominate re-tuning cost. *)
  let cache_static = not options.scale in
  Exec.with_pool ~jobs:(max 1 options.jobs) @@ fun pool ->
  let t0 = Unix.gettimeofday () in
  (* Stage one: stream the space through the static predictor in
     chunks, retaining only the best [heap_cap] candidates (plus
     counters).  Memory is O(heap_cap) + the stream's own dedup set,
     whatever the space size. *)
  let chunk_len =
    max 64 (min 8192 (options.budget / (4 * max 1 options.jobs)))
  in
  let heap = Topk.create ~cap:heap_cap ~cmp:cmp_static in
  let explored = ref 0
  and oracle_scored = ref 0
  and hits = ref 0
  and drained = ref false in
  let stream = ref (Space.stream sp) in
  let score_candidate g =
    let fp = Fingerprint.of_layout g in
    let dg = Digest.string fp in
    match Cache.find cache ~slot:cache_slot ~fp_digest:dg with
    | Some ({ static_ = Some s; linear; _ } : Cache.entry)
      when (not options.oracle) || linear <> None ->
      (fp, dg, s, options.oracle && linear = Some true, true)
    | _ ->
      (* [memoize:false] at scale: the per-domain compiled/linear memo
         tables would grow with the stream while the stream never
         revisits a fingerprint.  [decomposed_ops] at scale: candidates
         share chain stages heavily, so the symbolic op count becomes a
         per-stage table hit instead of the dominant per-candidate
         cost. *)
      let memoize = not options.scale in
      let ops = if options.scale then Some (Predict.decomposed_ops g) else None
      in
      let s =
        Predict.score ~compiled:options.fastpath ~oracle:options.oracle
          ~memoize ?ops g slot.phases
      in
      let lin = options.oracle && Predict.linear_of ~memoize g <> None in
      (fp, dg, s, lin, false)
  in
  while (not !drained) && !explored < options.budget do
    let want = min chunk_len (options.budget - !explored) in
    let batch, rest, ended = take_seq want !stream in
    stream := rest;
    if ended then drained := true;
    if batch <> [] then begin
      let arr = Array.of_list batch in
      let scoresd = Exec.map ~pool arr score_candidate in
      (* Sequential merge: tallies, top-K retention, cache writes. *)
      Array.iteri
        (fun i (fp, dg, s, lin, hit) ->
          if lin then incr oracle_scored;
          if hit then incr hits
          else if cache_static then begin
            let e = Cache.ensure cache ~slot:cache_slot ~fp_digest:dg in
            e.Cache.static_ <- Some s;
            if options.oracle then e.Cache.linear <- Some lin
          end;
          Topk.add heap
            { layout = arr.(i); fingerprint = fp; static_score = s; sim = None })
        scoresd;
      explored := !explored + Array.length scoresd
    end
  done;
  Cache.note_hits cache !hits;
  Cache.note_misses cache (!explored - !hits);
  (* Peek once past the budget so [exhaustive] reflects the space, not
     the budget, when the budget lands exactly on the last candidate. *)
  if not !drained then begin
    match !stream () with
    | Seq.Nil -> drained := true
    | Seq.Cons _ -> ()
  end;
  let static_seconds = Unix.gettimeofday () -. t0 in
  let explored = !explored in
  (* Sim rung helper: look up the cached sim for [sc] under [field],
     simulate on a miss (in parallel, chunk 1 — few expensive tasks),
     write back, and pair each candidate with its sim. *)
  let run_rung ~get ~set ~simulate cands =
    let arr = Array.of_list cands in
    let digests =
      Array.map (fun sc -> Digest.string sc.fingerprint) arr
    in
    let sims =
      Exec.map ~chunk:1 ~pool
        (Array.mapi (fun i sc -> (sc, digests.(i))) arr)
        (fun (sc, dg) ->
          match Cache.find cache ~slot:cache_slot ~fp_digest:dg with
          | Some e when get e <> None -> (Option.get (get e), true)
          | _ -> (simulate ~fast:options.fastpath sc.layout, false))
    in
    let hits = ref 0 in
    Array.iteri
      (fun i (sim, hit) ->
        if hit then incr hits
        else begin
          let e = Cache.ensure cache ~slot:cache_slot ~fp_digest:digests.(i) in
          set e sim
        end)
      sims;
    Cache.note_hits cache !hits;
    Cache.note_misses cache (Array.length arr - !hits);
    List.mapi (fun i sc -> (sc, fst sims.(i))) cands
  in
  let t1 = Unix.gettimeofday () in
  (* Middle rung: sampled simulation of every heap survivor, promoting
     the best [top] to full simulation. *)
  let promoted = Topk.sorted heap in
  let sampled_scored, finalists =
    match slot.simulate_sampled with
    | Some simulate when use_sampled ->
      let ranked =
        List.sort cmp_sim
          (run_rung
             ~get:(fun e -> e.Cache.sampled)
             ~set:(fun e s -> e.Cache.sampled <- Some s)
             ~simulate promoted)
      in
      (List.length ranked, take_prefix options.top (List.map fst ranked))
    | _ -> (0, take_prefix options.top promoted)
  in
  (* Final rung: full simulation, ranked by roofline time. *)
  let ranking =
    List.sort
      (fun a b -> cmp_sim (a, Option.get a.sim) (b, Option.get b.sim))
      (List.map
         (fun (sc, sim) -> { sc with sim = Some sim })
         (run_rung
            ~get:(fun e -> e.Cache.full)
            ~set:(fun e s -> e.Cache.full <- Some s)
            ~simulate:slot.simulate finalists))
  in
  let sim_seconds = Unix.gettimeofday () -. t1 in
  let winner =
    match ranking with
    | w :: _ -> w
    | [] -> invalid_arg "Tune.search: empty candidate space"
  in
  (* Outside the timed sections: sizing a drained stream is free
     ([explored] covered it); otherwise one dedicated traversal. *)
  let space_size = if !drained then explored else Space.count sp in
  let conform =
    if options.conform then
      Some
        (Lego_conform.Conform.check_layout ~max_points:options.conform_points
           winner.layout)
    else None
  in
  let baselines = List.map (fun (n, s) -> (n, Lazy.force s)) slot.baselines in
  let wall = static_seconds +. sim_seconds in
  {
    slot;
    winner;
    ranking;
    explored;
    space_size;
    exhaustive = !drained;
    oracle_scored = !oracle_scored;
    sampled_scored;
    (* Candidates whose score involved address-level simulation: stage
       one's non-oracle evaluations plus both sim rungs.  The headline
       economy of the F₂ path — [sim_scored] drops by the number of
       candidates the closed form absorbed (and the class space shrinks
       [explored] itself).  Counts rung membership, not sim calls, so a
       warm {!Cache} cannot change it. *)
    sim_scored =
      explored - !oracle_scored + sampled_scored + List.length ranking;
    static_seconds;
    sim_seconds;
    candidates_per_s = (if wall > 0.0 then float_of_int explored /. wall else 0.0);
    conform;
    baselines;
  }

let conform_ok r =
  match r.conform with
  | None -> None
  | Some o -> Some (o.Lego_conform.Conform.mismatch = None)

let pp_scored ppf sc =
  Format.fprintf ppf "@[<v 2>%s@,static: %a" sc.fingerprint Predict.pp
    sc.static_score;
  (match sc.sim with
  | Some s ->
    Format.fprintf ppf "@,simulated: %.3f us (smem %.0f cycles / %.0f accesses)"
      (s.Slot.time_s *. 1e6) s.Slot.s_cycles s.Slot.s_accesses
  | None -> ());
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf "@[<v>slot %s: %s@," r.slot.Slot.name r.slot.Slot.descr;
  Format.fprintf ppf
    "explored %d of %d candidates (%s), simulated %d, %.0f cand/s@," r.explored
    r.space_size
    (if r.exhaustive then "exhaustive" else "budget-truncated")
    (List.length r.ranking) r.candidates_per_s;
  if r.sampled_scored > 0 then
    Format.fprintf ppf "funnel: %d streamed -> %d sampled -> %d simulated@,"
      r.explored r.sampled_scored (List.length r.ranking);
  if r.oracle_scored > 0 then
    Format.fprintf ppf "oracle: %d closed-form, %d address-level@,"
      r.oracle_scored r.sim_scored;
  List.iter
    (fun (n, s) ->
      Format.fprintf ppf "baseline %-14s %.3f us@," n (s.Slot.time_s *. 1e6))
    r.baselines;
  Format.fprintf ppf "winner: %a@," pp_scored r.winner;
  (match r.conform with
  | Some { mismatch = None; points; c_checked; _ } ->
    Format.fprintf ppf "conformance: ok (%d points%s)@," points
      (if c_checked then "" else ", C path skipped")
  | Some { mismatch = Some m; _ } ->
    Format.fprintf ppf "conformance: MISMATCH at %s: %s@,"
      m.Lego_conform.Conform.stage m.Lego_conform.Conform.detail
  | None -> ());
  Format.fprintf ppf "@]"
