(** The tuner's candidate space for a 2-D logical shape.

    Every candidate is a {!Lego_layout.Group_by.t} whose logical view is
    the plain [[rows; cols]] group, so a kernel slot can address any of
    them uniformly with [apply_ints g [i; j]].  The space is generated
    as a shallow refinement dag:

    - {b roots}: one [RegP] per sigma permutation of the two dimensions
      (row-major, column-major), plus the applicable gallery bijections
      (anti-diagonal, cyclic-diagonal, reverse, Morton, Hilbert);
    - {b tilings} (children of sigma roots): [TileOrderBy(P1, P2)] over
      every non-trivial divisor split of each extent and every sigma
      pair;
    - {b swizzles} (children of any swizzle-free candidate, when [cols]
      is a power of two): a prepended [swizzlex_m<mask>_s<shift>] GenP
      with prefix masks (widest first) and shifts 0..2.

    Determinism contract: the generated sequence is a pure function of
    [(rows, cols, seed)].  Seed 0 is the canonical order; a non-zero
    seed shuffles within each family with a [Random.State] derived only
    from [(seed, family tag)]. *)

type t

val make : ?seed:int -> rows:int -> cols:int -> unit -> t
(** Raises [Invalid_argument] on non-positive extents. *)

val roots : t -> Lego_layout.Group_by.t list
(** Generation 0: sigma roots then gallery roots. *)

val children : t -> Lego_layout.Group_by.t -> Lego_layout.Group_by.t list
(** Refinements of one candidate: its swizzle variants (swizzle-free
    candidates only) followed, for sigma roots, by the two-level tilings.
    May emit candidates already generated elsewhere — callers
    de-duplicate by {!Fingerprint.of_layout}. *)

val closure : t -> Lego_layout.Group_by.t list
(** Every reachable candidate, breadth-first from {!roots}, de-duplicated
    by fingerprint — the space the exhaustive strategy enumerates, and
    the denominator of the tuner's coverage report. *)

val has_gen : Lego_layout.Group_by.t -> bool
(** Whether any piece of the chain is a [GenP] (used to keep swizzles
    from stacking on named bijections). *)
