(** The tuner's candidate space for a 2-D logical shape.

    Every candidate is a {!Lego_layout.Group_by.t} whose logical view is
    the plain [[rows; cols]] group, so a kernel slot can address any of
    them uniformly with [apply_ints g [i; j]].  The space is generated
    as a shallow refinement dag:

    - {b roots}: one [RegP] per sigma permutation of the two dimensions
      (row-major, column-major), plus the applicable gallery bijections
      (anti-diagonal, cyclic-diagonal, reverse, Morton, Hilbert);
    - {b tilings} (children of sigma roots): [TileOrderBy(P1, P2)] over
      every non-trivial divisor split of each extent and every sigma
      pair;
    - {b swizzles} (children of any swizzle-free candidate, when [cols]
      is a power of two): a prepended [swizzlex_m<mask>_s<shift>] GenP.
      By default these sample prefix masks (widest first) with shifts
      0..2; with [~classes:true] (and power-of-two [rows]) they instead
      enumerate one canonical representative per provable F₂
      cost-equivalence class of the {e full} mask/shift grid
      ({!swizzle_classes}), covering the whole family with far fewer
      candidates;
    - {b composed} (extra roots, only with [~composed:true]): candidates
      built by the prover-discharged layout algebra
      ({!Lego_layout.Algebra}) — masked swizzles composed at the piece
      level with logical divides of the row-major space by row and
      column tiles ({!composed}).  They carry GenP pieces, so they are
      leaves of the dag.

    With [~scale:true] the space additionally crosses product axes on
    top of the sampled dag — ordered three-level tilings
    ([TileOrderBy(P1, P2, P3)] over every 3-factorization of each
    extent and every sigma triple), vectorization-width tilings (one
    dimension split off as a contiguous innermost [1; v] / [w; 1]
    vector), and the {e full} masked-swizzle grid (every mask >= 1
    crossed with every shift) prepended to every swizzle-free base —
    which lifts the matmul shape from ~1.6 x 10³ to ~1.8 x 10⁵ distinct
    candidates.  The scale space is only ever generated {e lazily}
    through {!stream} / {!count}; {!closure} would materialize it.

    Determinism contract: the generated sequence is a pure function of
    [(rows, cols, seed, classes, composed, elem_bytes, scale)].  Seed 0
    is the canonical order; a non-zero seed shuffles within each family
    with a [Random.State] derived only from [(seed, family tag)]. *)

type t

val make :
  ?seed:int -> ?classes:bool -> ?composed:bool -> ?elem_bytes:int ->
  ?scale:bool -> rows:int -> cols:int -> unit -> t
(** [elem_bytes] (default 4) is the shared-memory element width the
    class key assumes — pass the {e largest} element width among the
    slot's shared phases, which yields the finest (hence sound for every
    phase) class partition.  [scale] (default false) turns on the
    product axes above.  Raises [Invalid_argument] on non-positive
    extents or [elem_bytes]. *)

type swizzle_class = {
  sw_mask : int;  (** Canonical representative: the (shift, mask)- *)
  sw_shift : int;  (** lexicographic minimum of the class. *)
  sw_members : (int * int) list;
      (** Every [(mask, shift)] in the class, shift-major ascending;
          the representative is the head. *)
}

val swizzle_family : t -> (int * int) list
(** The full [(mask, shift)] grid for this shape: masks
    [0 .. cols - 1] crossed with shifts [0 .. num_bits (rows - 1) - 1]
    (shift-major).  Empty unless [cols] is a power of two [> 1]. *)

val swizzle_classes : t -> swizzle_class list
(** {!swizzle_family} partitioned into provable F₂ cost-equivalence
    classes (DESIGN.md section 12): two members are equivalent iff their
    key maps have the same image pair — over the word-relevant mask bits
    (those at or above [log2 (4 / elem_bytes)]), the set of mask bits
    that survive the shift into any row bit, and the subset surviving
    into a warp-lane row bit.  Classes are ordered
    highest-warp-image-rank first (fewest conflicts first), then
    highest-full-rank, then canonical representative.  Empty unless
    [rows], [cols] and [elem_bytes] are all powers of two with
    [cols > 1]. *)

val composed : t -> Lego_layout.Group_by.t list
(** The algebra-built composite family: for each tile (the contiguous
    row tile [(cols):(1)], whose divide is the identity, and the column
    tiles [(2):(cols)], [(4):(cols)] where they divide [rows]), the bare
    logical divide of the row-major space plus its compositions with
    masked XOR swizzles (prefix masks, shifts 0 and 1), every side
    condition discharged by the prover.  Empty unless the space was made
    with [~composed:true] and [cols] is a power of two [> 1]; raises
    [Invalid_argument] if a discharge fails (a construction bug, since
    the family is admissible by design). *)

val roots : t -> Lego_layout.Group_by.t list
(** Generation 0: sigma roots, then gallery roots, then — with
    [~composed:true] — the {!composed} family. *)

val children : t -> Lego_layout.Group_by.t -> Lego_layout.Group_by.t list
(** Refinements of one candidate: its swizzle variants (swizzle-free
    candidates only) followed, for sigma roots, by the two-level tilings.
    May emit candidates already generated elsewhere — callers
    de-duplicate by {!Fingerprint.of_layout}. *)

val stream : t -> Lego_layout.Group_by.t Seq.t
(** Every candidate of the space, {e lazily}: the breadth-first closure
    of {!roots} under {!children} first (in exactly the order the eager
    closure enumerated), followed — with [~scale:true] — by the scale
    product axes (three-level tilings, vectorization widths, every
    swizzle-free base crossed with the full mask >= 1 swizzle grid).
    De-duplicated by {!Fingerprint.digest}, so no two elements of the
    sequence have equal fingerprints and a layout reachable through two
    axes is generated once.  The only memory proportional to the space
    is the 16-byte-per-candidate dedup set, built as the consumer
    pulls; re-traversing the stream from the start rebuilds it, and
    every traversal yields the identical sequence (the determinism
    contract above). *)

val count : t -> int
(** Number of distinct candidates — one full traversal of {!stream},
    nothing retained beyond the dedup set. *)

val closure : t -> Lego_layout.Group_by.t list
(** [List.of_seq (stream t)] — every reachable candidate, breadth-first
    from {!roots}, de-duplicated by fingerprint: the space the
    exhaustive strategy enumerates, and the denominator of the tuner's
    coverage report.  Materializes the sequence; prefer {!stream} /
    {!count} on [~scale:true] spaces. *)

val has_gen : Lego_layout.Group_by.t -> bool
(** Whether any piece of the chain is a [GenP] (used to keep swizzles
    from stacking on named bijections). *)
