module L = Lego_layout

type t = { dims : L.Shape.t; numel : int; apply_flat : int -> int }

let dims t = t.dims
let numel t = t.numel
let apply_flat t flat = t.apply_flat flat
let apply t idx = t.apply_flat (L.Shape.flatten_ints t.dims idx)

(* A [Reg] piece is the sigma-permutation of mixed-radix digits: its
   flat-to-flat map is linear, [g c = sum_d digit_d(c) * out_stride_d],
   so it compiles to a handful of div/mod/mul per evaluation with no
   table at all — this is what lets the transpose slot's million-element
   global views go through the fast path. *)
let compile_reg dims sigma =
  let r = List.length dims in
  let ids = List.init r Fun.id in
  let perm_dims = Array.of_list (L.Sigma.permute sigma dims) in
  let perm_ids = Array.of_list (L.Sigma.permute sigma ids) in
  let out_stride = Array.make r 1 in
  for j = r - 2 downto 0 do
    out_stride.(j) <- out_stride.(j + 1) * perm_dims.(j + 1)
  done;
  let extent = Array.of_list dims in
  let in_stride = Array.make r 1 in
  for d = r - 2 downto 0 do
    in_stride.(d) <- in_stride.(d + 1) * extent.(d + 1)
  done;
  let out_of = Array.make r 0 in
  Array.iteri (fun j d -> out_of.(d) <- out_stride.(j)) perm_ids;
  (* Power-of-two extents (the overwhelmingly common case: tile sides
     and register blocks) let the digit extraction strength-reduce to
     shift-and-mask, and the rank-2 shape of every 2-D tile slot
     unrolls the loop away.  All variants compute the same sum. *)
  let pow2 x = x > 0 && x land (x - 1) = 0 in
  let log2 x =
    let k = ref 0 in
    let v = ref x in
    while !v > 1 do
      incr k;
      v := !v lsr 1
    done;
    !k
  in
  let all_pow2 = Array.for_all pow2 in_stride && Array.for_all pow2 extent in
  if all_pow2 && r = 2 then begin
    let s0 = log2 in_stride.(0)
    and m0 = extent.(0) - 1
    and o0 = out_of.(0)
    and s1 = log2 in_stride.(1)
    and m1 = extent.(1) - 1
    and o1 = out_of.(1) in
    fun c -> (((c lsr s0) land m0) * o0) + (((c lsr s1) land m1) * o1)
  end
  else if all_pow2 then begin
    let shift = Array.map log2 in_stride in
    let mask = Array.map (fun e -> e - 1) extent in
    fun c ->
      let acc = ref 0 in
      for d = 0 to r - 1 do
        acc := !acc + (((c lsr shift.(d)) land mask.(d)) * out_of.(d))
      done;
      !acc
  end
  else
    fun c ->
      let acc = ref 0 in
      for d = 0 to r - 1 do
        acc := !acc + (c / in_stride.(d) mod extent.(d) * out_of.(d))
      done;
      !acc

(* A [Gen] piece is an opaque bijection; its flat-to-flat map is
   tabulated lazily (-1 = not yet computed), so only the addresses a
   kernel actually touches are ever evaluated.  The table is keyed by
   the piece's printed identity ([Piece.equal] is (name, dims) equality)
   and shared by every layout that embeds the piece: a tuning space
   composes a handful of gallery bijections with many Reg tilings, so
   each bijection is evaluated at most once per index across the {e
   whole} search, not once per candidate. *)
let gen_tables : (string, int array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let compile_gen piece dims m =
  let tables = Domain.DLS.get gen_tables in
  let key = Format.asprintf "%a" L.Piece.pp piece in
  let tbl =
    match Hashtbl.find_opt tables key with
    | Some t -> t
    | None ->
      let t = Array.make m (-1) in
      Hashtbl.add tables key t;
      t
  in
  fun c ->
    let v = tbl.(c) in
    if v >= 0 then v
    else
      let v = L.Piece.apply_ints piece (L.Shape.unflatten_ints dims c) in
      tbl.(c) <- v;
      v

let compile_piece piece =
  let m = L.Piece.numel piece in
  let g =
    match piece with
    | L.Piece.Reg { dims; sigma } -> compile_reg dims sigma
    | L.Piece.Gen { dims; _ } -> compile_gen piece dims m
  in
  (g, m)

(* One [Order_by] stage.  Row-major flattening is hierarchical, so the
   flat input decomposes as [flat = sum_i c_i * D_i] with [c_i] piece
   [i]'s own flat index and [D_i] the suffix product of later pieces'
   element counts; the stage output re-assembles the mapped digits on
   the same strides: [sum_i g_i(c_i) * D_i] (figure 7's traversal,
   without materializing the logical index). *)
let compile_stage o =
  match List.map compile_piece (L.Order_by.pieces o) with
  | [ (g, _) ] -> g
  | gs ->
    let arr = Array.of_list gs in
    let k = Array.length arr in
    let suffix = Array.make k 1 in
    for i = k - 2 downto 0 do
      suffix.(i) <- suffix.(i + 1) * snd arr.(i + 1)
    done;
    fun flat ->
      let acc = ref 0 in
      for i = 0 to k - 1 do
        let g, m = arr.(i) in
        acc := !acc + (g (flat / suffix.(i) mod m) * suffix.(i))
      done;
      !acc

let compile g =
  let dims = L.Group_by.dims g in
  let stages =
    Array.of_list (List.map compile_stage (List.rev (L.Group_by.chain g)))
  in
  let apply_flat =
    match Array.length stages with
    | 0 -> Fun.id
    | 1 -> stages.(0)
    | 2 ->
      let s0 = stages.(0) and s1 = stages.(1) in
      fun flat -> s1 (s0 flat)
    | _ -> fun flat -> Array.fold_left (fun f stage -> stage f) flat stages
  in
  { dims; numel = L.Group_by.numel g; apply_flat }

(* Fingerprint-keyed memo, domain-local so tuner worker domains never
   share the (mutably filled) Gen tables. *)
let memo : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let of_layout g =
  let tbl = Domain.DLS.get memo in
  let fp = Fingerprint.of_layout g in
  match Hashtbl.find_opt tbl fp with
  | Some c -> c
  | None ->
    let c = compile g in
    Hashtbl.add tbl fp c;
    c

let clear_memo () =
  Hashtbl.reset (Domain.DLS.get memo);
  Hashtbl.reset (Domain.DLS.get gen_tables)
