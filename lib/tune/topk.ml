(* Bounded best-K retention for the streaming funnel.

   A binary max-heap (array-backed, worst-at-root) of capacity K: while
   fewer than K elements are held, [add] is a plain heap insert; once
   full, an element better than the current worst replaces the root and
   sifts down, and anything else is dropped in O(1).  Memory is K slots
   whatever the stream length, and the retained {e set} is a pure
   function of the multiset of added elements — independent of arrival
   order — because the comparator is total (the funnel's comparators
   all end in a fingerprint tie-break), so "the K smallest" is
   unambiguous. *)

type 'a t = {
  cmp : 'a -> 'a -> int;  (* total order; keep the [cmp]-smallest K *)
  cap : int;
  heap : 'a option array;  (* [0 .. size-1] live; root = worst kept *)
  mutable size : int;
}

let create ~cap ~cmp =
  if cap < 1 then invalid_arg "Topk.create: cap must be >= 1";
  { cmp; cap; heap = Array.make cap None; size = 0 }

let capacity t = t.cap
let size t = t.size

let get t i =
  match t.heap.(i) with Some x -> x | None -> assert false

(* Max-heap order on [cmp]: parent >= children, so the root is the
   worst retained element — the eviction candidate. *)
let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (get t i) (get t parent) > 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.size && t.cmp (get t l) (get t !largest) > 0 then largest := l;
  if r < t.size && t.cmp (get t r) (get t !largest) > 0 then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let add t x =
  if t.size < t.cap then begin
    t.heap.(t.size) <- Some x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)
  end
  else if t.cmp x (get t 0) < 0 then begin
    t.heap.(0) <- Some x;
    sift_down t 0
  end

let sorted t =
  let xs = List.init t.size (get t) in
  List.sort t.cmp xs
