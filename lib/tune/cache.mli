(** Reusable scoring cache for incremental re-tuning.

    One {!t} passed to successive [Tune.search] calls (the CLI creates
    one per run) lets later searches reuse what earlier ones computed:
    static {!Predict.score}s, F₂-linearity verdicts, and sampled/full
    simulator results, keyed by (slot {e identity}, fingerprint digest).
    The identity string is {!Slot.identity} — name, device preset and
    shared-memory dtype — so distinct slots never collide, and neither
    does the same slot tuned under different devices or dtypes (scores
    and sims depend on both).  Cached sims are valid across
    fast-path modes (interpreter and compiled runs are bit-identical by
    contract) and cached static scores across oracle modes (oracle and
    compiled scoring agree exactly) — the cache can change only
    wall-clock, never results or the reported counters, which the tuner
    derives from its own per-search tallies.

    Concurrency: {!find} is a pure read, safe from inside [Exec.map]
    tasks; everything else mutates and must be called only between
    parallel sections (the tuner's existing memo discipline).  The
    table stops growing at [max_entries] — {!ensure} then returns
    transient entries — so a mega-space stream cannot make the cache
    itself the memory hog the bounded top-K avoided. *)

type entry = {
  mutable static_ : Predict.score option;
  mutable linear : bool option;
      (** [Some l] once F₂-linearity is decided; [static_] was scored
          through the oracle iff [l].  An oracle-mode search treats a
          static score with [linear = None] as a miss (it needs the
          verdict for its oracle-scored counter), a non-oracle search
          reuses it directly. *)
  mutable sampled : Slot.sim option;
  mutable full : Slot.sim option;
}

type t

val default_max_entries : int
(** 2¹⁸ = 262144 — a few tens of MB at worst, far above the retained
    rung sizes, far below a 10⁶-candidate space. *)

val create : ?max_entries:int -> unit -> t
val find : t -> slot:string -> fp_digest:string -> entry option

val ensure : t -> slot:string -> fp_digest:string -> entry
(** The entry for the key, inserting a fresh empty one if absent — or a
    {e transient} fresh one (not inserted) once the table holds
    [max_entries].  Sequential sections only. *)

val iter :
  t -> (slot:string -> fp_digest:string -> entry -> unit) -> unit
(** Visit every entry (unspecified order) — the persistence hook the
    compile service uses to flush freshly simulated results to its
    on-disk store and to warm-start a cache from one.  Sequential
    sections only. *)

val note_hits : t -> int -> unit
val note_misses : t -> int -> unit
val hits : t -> int
val misses : t -> int
val length : t -> int
