(** Static cost pre-filter: analytic bank-conflict / coalescing
    prediction computed directly from a candidate layout, plus the
    symbolic operation count of its index expression.  No simulation —
    this is the cheap first stage that prunes the space before
    {!Slot.t.simulate} runs the survivors.

    Soundness of the pruning (DESIGN.md section 10): the bank and
    transaction arithmetic here is the {e same} arithmetic
    [Simt.cost_shared] / [Simt.cost_global] applies per warp round, so a
    phase list that faithfully samples the kernel's warp access patterns
    predicts the simulator's conflict degree exactly for those rounds;
    the prediction can only diverge from stage two on access patterns the
    phases do not sample. *)

type phase =
  | Shared of { elem_bytes : int; lanes : int -> int list option }
      (** One warp-wide shared access: [lanes t] is the {e logical} index
          lane [t] touches through the candidate layout ([None] =
          inactive lane). *)
  | Global of { elem_bytes : int; addrs : int -> int option }
      (** One warp-wide global access: [addrs t] is lane [t]'s physical
          element offset (already resolved — global patterns of the
          current slots do not route through the candidate). *)

type score = {
  smem_phases : int;  (** Shared phases with at least one active lane. *)
  smem_accesses : int;  (** Total active lanes across shared phases. *)
  smem_cycles : int;  (** Summed bank-conflict degree (1 = no conflict). *)
  gmem_txns : int;  (** Summed coalescing transaction count. *)
  ops : int;  (** {!Lego_symbolic.Cost.ops} of the symbolic offset. *)
}

val conflict_free : score -> bool
(** Every sampled shared phase ran at degree 1. *)

val bank_cycles : Lego_gpusim.Device.t -> elem_bytes:int -> int list -> int
(** {!Lego_gpusim.Access.bank_cycles} — re-exported so callers (and the
    Predict-vs-Simt differential tests) see one name for the arithmetic
    both stages share. *)

val txn_count : Lego_gpusim.Device.t -> elem_bytes:int -> int list -> int
(** {!Lego_gpusim.Access.txn_count}, likewise. *)

val linear_of :
  ?memoize:bool -> Lego_layout.Group_by.t -> Lego_f2.Linear.t option
(** The candidate's affine F₂ form ({!Lego_f2.Linear.of_layout}),
    fingerprint-memoized per domain — [Some] exactly when the oracle
    path of {!score} applies to it.  [~memoize:false] bypasses the
    table in both directions (no lookup, no insert): at mega-space
    scale the per-candidate memo would grow without bound while almost
    never hitting (the stream visits each fingerprint once). *)

val stage_ops : Lego_layout.Order_by.t -> int
(** Symbolic op count of one chain stage in isolation (default
    {!Lego_symbolic.Cost.weights}), memoized per domain by the stage's
    printed form.  The building block of {!decomposed_ops}. *)

val decomposed_ops : Lego_layout.Group_by.t -> int
(** Per-dimension decomposition of the op count: the sum of
    {!stage_ops} over the candidate's chain (the exact whole-layout
    count when the chain is empty).  Candidates sharing a tile prefix —
    every member of a swizzle grid over one base tiling, every tiling
    sharing pieces — reuse each stage's cost from the table, so at
    mega-space scale the dominant symbolic evaluation happens once per
    {e stage} instead of once per candidate.  A ranking surrogate: it
    drops the constant cross-stage glue cost (identical across a
    family, so family-internal order is preserved) — feed it to [score
    ?ops] where throughput matters, keep the default exact count
    elsewhere. *)

val score :
  ?device:Lego_gpusim.Device.t ->
  ?compiled:bool ->
  ?oracle:bool ->
  ?memoize:bool ->
  ?ops:int ->
  ?weights:Lego_symbolic.Cost.weights ->
  Lego_layout.Group_by.t ->
  phase list ->
  score
(** [compiled] (default true) evaluates the candidate's addresses
    through {!Compiled.of_layout}; [~compiled:false] keeps the
    interpreter ([Group_by.apply_ints]) — same score either way, kept
    for before/after benchmarking of the fast path.

    [oracle] (default false) scores F₂-linear candidates in closed form
    ({!Lego_f2.Oracle}): every full-warp affine phase costs two rank
    computations instead of 32 address evaluations plus a conflict
    count, and non-linear candidates (or phases outside the affine
    precondition) silently take the [compiled]-selected path.  Scores
    are bit-identical across all three paths — the oracle is exact, not
    an approximation (asserted against measured simulator counters by
    the test suite).

    [memoize] (default true) controls the domain-local per-candidate
    tables ({!linear_of}, [Compiled.of_layout]); [~memoize:false]
    compiles and linearizes directly, for streaming callers that visit
    each candidate once and must keep memory bounded.  [ops], when
    given, replaces the symbolic op count (use {!decomposed_ops} for
    the shared-prefix fast path); the bank/transaction arithmetic is
    unaffected. *)

val compare_ranked : score * string -> score * string -> int
(** Lexicographic [(smem_cycles, gmem_txns, ops, fingerprint)] — a total
    order (the fingerprint tie-break makes ranking independent of
    traversal and scheduling order). *)

val pp : Format.formatter -> score -> unit
