(** Static cost pre-filter: analytic bank-conflict / coalescing
    prediction computed directly from a candidate layout, plus the
    symbolic operation count of its index expression.  No simulation —
    this is the cheap first stage that prunes the space before
    {!Slot.t.simulate} runs the survivors.

    Soundness of the pruning (DESIGN.md section 10): the bank and
    transaction arithmetic here is the {e same} arithmetic
    [Simt.cost_shared] / [Simt.cost_global] applies per warp round, so a
    phase list that faithfully samples the kernel's warp access patterns
    predicts the simulator's conflict degree exactly for those rounds;
    the prediction can only diverge from stage two on access patterns the
    phases do not sample. *)

type phase =
  | Shared of { elem_bytes : int; lanes : int -> int list option }
      (** One warp-wide shared access: [lanes t] is the {e logical} index
          lane [t] touches through the candidate layout ([None] =
          inactive lane). *)
  | Global of { elem_bytes : int; addrs : int -> int option }
      (** One warp-wide global access: [addrs t] is lane [t]'s physical
          element offset (already resolved — global patterns of the
          current slots do not route through the candidate). *)

type score = {
  smem_phases : int;  (** Shared phases with at least one active lane. *)
  smem_accesses : int;  (** Total active lanes across shared phases. *)
  smem_cycles : int;  (** Summed bank-conflict degree (1 = no conflict). *)
  gmem_txns : int;  (** Summed coalescing transaction count. *)
  ops : int;  (** {!Lego_symbolic.Cost.ops} of the symbolic offset. *)
}

val conflict_free : score -> bool
(** Every sampled shared phase ran at degree 1. *)

val bank_cycles : Lego_gpusim.Device.t -> elem_bytes:int -> int list -> int
(** {!Lego_gpusim.Access.bank_cycles} — re-exported so callers (and the
    Predict-vs-Simt differential tests) see one name for the arithmetic
    both stages share. *)

val txn_count : Lego_gpusim.Device.t -> elem_bytes:int -> int list -> int
(** {!Lego_gpusim.Access.txn_count}, likewise. *)

val linear_of : Lego_layout.Group_by.t -> Lego_f2.Linear.t option
(** The candidate's affine F₂ form ({!Lego_f2.Linear.of_layout}),
    fingerprint-memoized per domain — [Some] exactly when the oracle
    path of {!score} applies to it. *)

val score :
  ?device:Lego_gpusim.Device.t ->
  ?compiled:bool ->
  ?oracle:bool ->
  ?weights:Lego_symbolic.Cost.weights ->
  Lego_layout.Group_by.t ->
  phase list ->
  score
(** [compiled] (default true) evaluates the candidate's addresses
    through {!Compiled.of_layout}; [~compiled:false] keeps the
    interpreter ([Group_by.apply_ints]) — same score either way, kept
    for before/after benchmarking of the fast path.

    [oracle] (default false) scores F₂-linear candidates in closed form
    ({!Lego_f2.Oracle}): every full-warp affine phase costs two rank
    computations instead of 32 address evaluations plus a conflict
    count, and non-linear candidates (or phases outside the affine
    precondition) silently take the [compiled]-selected path.  Scores
    are bit-identical across all three paths — the oracle is exact, not
    an approximation (asserted against measured simulator counters by
    the test suite). *)

val compare_ranked : score * string -> score * string -> int
(** Lexicographic [(smem_cycles, gmem_txns, ops, fingerprint)] — a total
    order (the fingerprint tie-break makes ranking independent of
    traversal and scheduling order). *)

val pp : Format.formatter -> score -> unit
