(** Bounded best-K retention: the streaming funnel's replacement for
    "score everything, sort, take K".

    [add] keeps the [cmp]-{e smallest} [cap] elements seen so far in a
    binary max-heap — O(log cap) when an element is retained, O(1) when
    it is dropped against the current worst — so ranking memory is
    O(cap) over a 10⁵–10⁶-candidate stream.  With a {e total} [cmp]
    (the tuner's comparators all end in a fingerprint tie-break) the
    retained set, and hence {!sorted}, is a pure function of the
    multiset of added elements: [sorted] equals
    [List.sort cmp all |> take cap] whatever the arrival order — the
    property the determinism tests assert. *)

type 'a t

val create : cap:int -> cmp:('a -> 'a -> int) -> 'a t
(** Raises [Invalid_argument] when [cap < 1].  [cmp] must be a total
    order; ties make the retained set depend on arrival order. *)

val add : 'a t -> 'a -> unit
val size : 'a t -> int
val capacity : 'a t -> int

val sorted : 'a t -> 'a list
(** The retained elements, best ([cmp]-smallest) first.  O(size log
    size); does not mutate the heap. *)
