module L = Lego_layout

(* [Group_by.pp] prints the full dotted notation — every OrderBy, every
   piece name (GenP parameters are encoded in their names, see
   {!Lego_layout.Gallery.xor_swizzle_masked}) and every sigma — so the
   rendered text is a faithful structural key.  Two layouts with equal
   fingerprints are [Group_by.equal]; the converse holds because [pp] is
   deterministic. *)
let of_layout (g : L.Group_by.t) : string =
  Format.asprintf "%a" L.Group_by.pp g

let compare = String.compare
