module L = Lego_layout

(* [Group_by.pp] prints the full dotted notation — every OrderBy, every
   piece name (GenP parameters are encoded in their names, see
   {!Lego_layout.Gallery.xor_swizzle_masked}) and every sigma — so the
   rendered text is a faithful structural key.  Two layouts with equal
   fingerprints are [Group_by.equal]; the converse holds because [pp] is
   deterministic. *)
let of_layout (g : L.Group_by.t) : string =
  Format.asprintf "%a" L.Group_by.pp g

let compare = String.compare

(* At mega-space scale (10^5-10^6 candidates) retaining every printed
   fingerprint for deduplication costs ~100-200 bytes each; the 16-byte
   MD5 of the printed form keys the same identity (collisions over a
   10^6-candidate space are vanishingly improbable) at a tenth of the
   memory.  [digest g = Digest.string (of_layout g)] by definition, so
   callers that already hold the printed fingerprint can derive the key
   without re-printing. *)
let digest (g : L.Group_by.t) : string = Digest.string (of_layout g)
