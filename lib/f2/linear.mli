(** The F₂-linear layout family.

    A layout whose every extent is a power of two and whose every piece
    is a bit-linear bijection (strided [RegP] permutations, XOR
    swizzles, [reverse], Morton order) acts on the {e bits} of the flat
    index: [apply g] is an affine map [x -> Mx lxor c] over GF(2).
    This module compiles such layouts into that explicit form, so bank
    conflicts and coalescing become rank computations ({!Oracle}) and
    layout composition becomes matrix multiplication.

    Compilation is exact, not heuristic: piece matrices are built
    analytically from the piece's published definition (strides for
    [RegP], the [i*cols + (j lxor ((i >> shift) land mask))] form for
    the swizzle family, bit complement for [reverse]) or by basis
    probing verified over the piece's whole index domain (Morton); any
    piece outside the family yields [None]. *)

type t = private { bits : int; mat : Bitmat.t; c : int }
(** [apply] is [fun x -> Bitmat.apply mat x lxor c]; [mat] is square
    [bits x bits] and [c < 2^bits]. *)

val bits : t -> int
val mat : t -> Bitmat.t
val const : t -> int

val make : bits:int -> mat:Bitmat.t -> c:int -> t
(** Raises [Invalid_argument] on shape mismatch. *)

val identity : int -> t

val apply : t -> int -> int

val compose : t -> t -> t
(** [compose f g] is [f] after [g] (so [apply (compose f g) x = apply f
    (apply g x)]). *)

val equal : t -> t -> bool

val invertible : t -> bool
(** Full rank — for a layout matrix this is exactly bijectivity. *)

val inverse : t -> t option

val of_piece : Lego_layout.Piece.t -> t option
(** The piece's flat-to-flat map as an affine form, when the piece is in
    the linear family (all extents powers of two and the piece one of:
    any [RegP]; [swizzle]; [swizzlex_m<mask>_s<shift>]; [reverse];
    [morton]).  Results are memoized per piece identity and per
    domain. *)

val of_layout : Lego_layout.Group_by.t -> t option
(** The whole layout's affine form: each [Order_by] stage is the
    block-diagonal assembly of its piece matrices on the stage's
    suffix-product bit fields, and the chain composes by matrix
    multiplication in application order.  [None] as soon as any stage
    holds a non-linear piece. *)

val pp : Format.formatter -> t -> unit
