(** Dense bit matrices over GF(2).

    A matrix is stored column-wise, one [int] bitmask per column (bit
    [i] of column [j] is entry [(i, j)]), so a matrix-vector product is
    an xor-fold over the set bits of the input — the representation the
    F₂ layout engine and its rank/coset oracle run on.  Row and column
    counts are bounded by the OCaml int width ([Sys.int_size - 1]),
    far beyond any layout this repo addresses (offsets are < 2^40). *)

type t

val rows : t -> int
val cols : t -> int

val zero : rows:int -> cols:int -> t
val identity : int -> t

val of_cols : rows:int -> int list -> t
(** Columns as bitmasks, leftmost first.  Raises [Invalid_argument] when
    a mask has bits at or above [rows]. *)

val of_fun : rows:int -> cols:int -> (int -> int -> bool) -> t
(** [of_fun ~rows ~cols f] has entry [(i, j)] = [f i j]. *)

val col : t -> int -> int
(** Column [j] as a bitmask. *)

val get : t -> int -> int -> bool
(** Entry [(i, j)]. *)

val apply : t -> int -> int
(** Matrix-vector product: [apply m x] xors the columns of [m] selected
    by the set bits of [x].  Bits of [x] at or above [cols m] must be
    zero (checked). *)

val mul : t -> t -> t
(** Matrix product (composition: [apply (mul a b) x = apply a (apply b
    x)]).  Raises [Invalid_argument] on dimension mismatch. *)

val transpose : t -> t
val equal : t -> t -> bool

val rank : t -> int

val row_reduce : t -> t
(** Reduced row-echelon form (Gauss-Jordan over GF(2)); row space and
    rank are preserved, and the result is the canonical representative
    of the row space. *)

val inverse : t -> t option
(** Inverse of a square matrix, [None] when singular. *)

val kernel : t -> int list
(** Basis of the null space [{x | apply m x = 0}], as input-space
    bitmasks; empty iff the columns are independent. *)

val image : t -> int list
(** Canonical (reduced column-echelon) basis of the column space, in
    decreasing leading-bit order — equal lists iff equal subspaces, so
    the result doubles as a subspace key. *)

val pp : Format.formatter -> t -> unit
