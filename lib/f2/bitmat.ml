type t = { rows : int; cols : int; col : int array }

let max_dim = Sys.int_size - 1

let check_dim what n =
  if n < 0 || n > max_dim then
    invalid_arg (Printf.sprintf "Bitmat: %s %d out of range 0..%d" what n max_dim)

let rows m = m.rows
let cols m = m.cols

let zero ~rows ~cols =
  check_dim "rows" rows;
  check_dim "cols" cols;
  { rows; cols; col = Array.make cols 0 }

let identity n =
  check_dim "size" n;
  { rows = n; cols = n; col = Array.init n (fun j -> 1 lsl j) }

let row_mask rows = if rows = 0 then 0 else (1 lsl rows) - 1

(* Index of the single set bit of a power of two. *)
let bit_index b =
  let k = ref 0 in
  let v = ref b in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

let of_cols ~rows cs =
  check_dim "rows" rows;
  let mask = row_mask rows in
  let col =
    Array.of_list
      (List.map
         (fun c ->
           if c land lnot mask <> 0 then
             invalid_arg "Bitmat.of_cols: column has bits outside the row range";
           c)
         cs)
  in
  check_dim "cols" (Array.length col);
  { rows; cols = Array.length col; col }

let of_fun ~rows ~cols f =
  check_dim "rows" rows;
  check_dim "cols" cols;
  let col =
    Array.init cols (fun j ->
        let c = ref 0 in
        for i = 0 to rows - 1 do
          if f i j then c := !c lor (1 lsl i)
        done;
        !c)
  in
  { rows; cols; col }

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Bitmat.col: column out of range";
  m.col.(j)

let get m i j =
  if i < 0 || i >= m.rows then invalid_arg "Bitmat.get: row out of range";
  col m j land (1 lsl i) <> 0

let apply m x =
  if x land lnot (row_mask m.cols) <> 0 then
    invalid_arg "Bitmat.apply: vector has bits outside the column range";
  let acc = ref 0 in
  let v = ref x in
  while !v <> 0 do
    let j = !v land - !v in
    acc := !acc lxor m.col.(bit_index j);
    v := !v lxor j
  done;
  !acc

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Bitmat.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  { rows = a.rows; cols = b.cols; col = Array.map (apply a) b.col }

let transpose m =
  of_fun ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

let equal a b = a.rows = b.rows && a.cols = b.cols && a.col = b.col

(* Row-space form: each row as a bitmask over columns — the shape
   Gaussian elimination wants. *)
let to_rows m =
  let r = Array.make m.rows 0 in
  for j = 0 to m.cols - 1 do
    let v = ref m.col.(j) in
    while !v <> 0 do
      let bit = !v land - !v in
      let i = bit_index bit in
      r.(i) <- r.(i) lor (1 lsl j);
      v := !v lxor bit
    done
  done;
  r

let of_rows ~rows ~cols r =
  of_fun ~rows ~cols (fun i j -> r.(i) land (1 lsl j) <> 0)

(* Gauss-Jordan elimination over row bitmasks, pivoting on the lowest
   column first.  Returns the reduced rows (pivot rows first, in pivot
   order, zero rows after) and the pivot columns; [aug] rows are carried
   through the same operations (used by {!inverse}). *)
let eliminate ncols rws aug =
  let nr = Array.length rws in
  let pivots = ref [] in
  let filled = ref 0 in
  for c = 0 to ncols - 1 do
    (* Find a row at or below the frontier with bit [c] set. *)
    let p = ref (-1) in
    for i = !filled to nr - 1 do
      if !p < 0 && rws.(i) land (1 lsl c) <> 0 then p := i
    done;
    if !p >= 0 then begin
      let swap (a : int array) i j =
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      in
      swap rws !filled !p;
      swap aug !filled !p;
      for i = 0 to nr - 1 do
        if i <> !filled && rws.(i) land (1 lsl c) <> 0 then begin
          rws.(i) <- rws.(i) lxor rws.(!filled);
          aug.(i) <- aug.(i) lxor aug.(!filled)
        end
      done;
      pivots := c :: !pivots;
      incr filled
    end
  done;
  List.rev !pivots

let rank m =
  let rws = to_rows m in
  List.length (eliminate m.cols rws (Array.make m.rows 0))

let row_reduce m =
  let rws = to_rows m in
  ignore (eliminate m.cols rws (Array.make m.rows 0));
  of_rows ~rows:m.rows ~cols:m.cols rws

let inverse m =
  if m.rows <> m.cols then invalid_arg "Bitmat.inverse: matrix not square";
  let rws = to_rows m in
  let aug = Array.init m.rows (fun i -> 1 lsl i) in
  let pivots = eliminate m.cols rws aug in
  if List.length pivots <> m.rows then None
  else Some (of_rows ~rows:m.rows ~cols:m.cols aug)

let kernel m =
  let rws = to_rows m in
  let pivots = eliminate m.cols rws (Array.make m.rows 0) in
  let pivot_of = Array.make m.cols (-1) in
  List.iteri (fun r c -> pivot_of.(c) <- r) pivots;
  let basis = ref [] in
  for f = m.cols - 1 downto 0 do
    if pivot_of.(f) < 0 then begin
      (* Free column [f]: set x_f = 1 and solve each pivot row, which
         reads [x_pc = row_r land bit f] in reduced form. *)
      let v = ref (1 lsl f) in
      List.iteri
        (fun r pc -> if rws.(r) land (1 lsl f) <> 0 then v := !v lor (1 lsl pc))
        pivots;
      basis := !v :: !basis
    end
  done;
  !basis

let image m =
  (* Column space of [m] = row space of [mᵀ]; the reduced row-echelon
     rows of the transpose are the canonical basis. *)
  let t = transpose m in
  let rws = to_rows t in
  let n = List.length (eliminate t.cols rws (Array.make t.rows 0)) in
  List.init n (fun i -> rws.(i))

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    for j = 0 to m.cols - 1 do
      Format.pp_print_char ppf (if get m i j then '1' else '0')
    done
  done;
  Format.fprintf ppf "@]"
