(** Exact analytic cost oracle for affine warp access patterns.

    A warp access is a map from the lane id [t] (a [log2 warp_size]-bit
    vector) to an element address.  When that map is affine over GF(2)
    — [addr(t) = A t lxor a0] — the address set is a coset of the
    column space of [A], and the simulator's counting rules collapse to
    rank computations:

    - byte and word addresses stay affine, because multiplying by a
      power-of-two element size and dropping sub-word bits are both
      F₂-linear ([*2^k] shifts rows up, [/2^k] drops rows);
    - the distinct shared {e words} a warp touches form a coset of
      [im W] ([W] = the word rows of [A]), so there are [2^rank W] of
      them, and the bank projection ([bank = word mod nbanks], the low
      rows [B] of [W]) is uniform on that coset: every touched bank
      serves exactly [2^(rank W - rank B)] distinct words.  That is
      precisely {!Lego_gpusim.Access.bank_cycles_arr}'s
      max-degree-over-distinct-words, so the conflict multiplicity is
      [2^(rank W - rank B)] — exactly, not on average;
    - the distinct global {e segments} are a coset of [im S] ([S] = the
      segment rows of [A]), so the transaction count of
      {!Lego_gpusim.Access.txn_count_arr} is [2^rank S].

    The offset [a0] never enters: translating a coset permutes words
    within banks and segments without changing any multiplicity. *)

val of_lanes : int array -> (Bitmat.t * int) option
(** [of_lanes addrs] recognizes [addrs] (indexed by lane id, length a
    power of two, entries non-negative) as an affine map: probes the
    constant and basis columns, then verifies {e every} lane, so a
    non-affine pattern is always [None], never mis-modeled. *)

val compose_warp : Linear.t -> Bitmat.t * int -> Bitmat.t * int
(** [compose_warp lay (l, x0)] routes an affine lane-to-logical-index
    map through an affine layout: the result maps the lane id straight
    to the physical element address.  Raises [Invalid_argument] when the
    lane map's range does not fit the layout's bit width. *)

val bank_cycles :
  nbanks:int -> bank_bytes:int -> elem_bytes:int -> Bitmat.t -> int option
(** Closed-form shared-memory conflict multiplicity [2^(rank W - rank
    B)] of a full affine warp ([A]'s columns spanning all lane bits).
    [None] when the geometry is not power-of-two (the caller falls back
    to enumeration). *)

val txn_count : txn_bytes:int -> elem_bytes:int -> Bitmat.t -> int option
(** Closed-form global transaction count [2^rank S]; [None] on
    non-power-of-two geometry. *)
