module L = Lego_layout

type t = { bits : int; mat : Bitmat.t; c : int }

let bits t = t.bits
let mat t = t.mat
let const t = t.c

let vec_mask bits = if bits = 0 then 0 else (1 lsl bits) - 1

let make ~bits ~mat ~c =
  if Bitmat.rows mat <> bits || Bitmat.cols mat <> bits then
    invalid_arg "Linear.make: matrix is not bits x bits";
  if c land lnot (vec_mask bits) <> 0 then
    invalid_arg "Linear.make: constant outside the bit range";
  { bits; mat; c }

let identity n = { bits = n; mat = Bitmat.identity n; c = 0 }
let apply t x = Bitmat.apply t.mat x lxor t.c

let compose f g =
  if f.bits <> g.bits then invalid_arg "Linear.compose: bit-width mismatch";
  { bits = f.bits; mat = Bitmat.mul f.mat g.mat; c = Bitmat.apply f.mat g.c lxor f.c }

let equal a b = a.bits = b.bits && a.c = b.c && Bitmat.equal a.mat b.mat
let invertible t = Bitmat.rank t.mat = t.bits

let inverse t =
  match Bitmat.inverse t.mat with
  | None -> None
  | Some inv -> Some { bits = t.bits; mat = inv; c = Bitmat.apply inv t.c }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let k = ref 0 in
  let v = ref n in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

(* [RegP]: the flat map is [sum_d digit_d(x) * out_stride_d] with every
   extent (hence every stride) a power of two, so digit [t] of dimension
   [d] moves input bit [log2 in_stride_d + t] to output bit
   [log2 out_stride_d + t] — a pure bit permutation. *)
let of_reg dims sigma =
  let r = List.length dims in
  let ids = List.init r Fun.id in
  let perm_dims = Array.of_list (L.Sigma.permute sigma dims) in
  let perm_ids = Array.of_list (L.Sigma.permute sigma ids) in
  let out_stride = Array.make r 1 in
  for j = r - 2 downto 0 do
    out_stride.(j) <- out_stride.(j + 1) * perm_dims.(j + 1)
  done;
  let extent = Array.of_list dims in
  let in_stride = Array.make r 1 in
  for d = r - 2 downto 0 do
    in_stride.(d) <- in_stride.(d + 1) * extent.(d + 1)
  done;
  let out_of = Array.make r 0 in
  Array.iteri (fun j d -> out_of.(d) <- out_stride.(j)) perm_ids;
  let bits = log2 (Array.fold_left ( * ) 1 extent) in
  let col = Array.make bits 0 in
  for d = 0 to r - 1 do
    let ib = log2 in_stride.(d) and ob = log2 out_of.(d) in
    for t = 0 to log2 extent.(d) - 1 do
      col.(ib + t) <- 1 lsl (ob + t)
    done
  done;
  { bits; mat = Bitmat.of_cols ~rows:bits (Array.to_list col); c = 0 }

(* The swizzle family: [x = i*cols + j |-> i*cols + (j lxor ((i >> shift)
   land mask))] is the identity plus, for every set mask bit [b], an xor
   of input bit [cbits + b + shift] (bit [b + shift] of [i]) into output
   bit [b]. *)
let of_swizzlex ~rows ~cols ~mask ~shift =
  let rbits = log2 rows and cbits = log2 cols in
  let bits = rbits + cbits in
  let col = Array.init bits (fun k -> 1 lsl k) in
  for b = 0 to cbits - 1 do
    if mask land (1 lsl b) <> 0 && b + shift < rbits then
      col.(cbits + b + shift) <- col.(cbits + b + shift) lxor (1 lsl b)
  done;
  { bits; mat = Bitmat.of_cols ~rows:bits (Array.to_list col); c = 0 }

(* Probed construction for pieces that are linear by definition but have
   no closed stride form (Morton interleaving): read the constant and
   the basis columns off the interpreter, then verify the affine form on
   the {e whole} domain, so a probe can never silently mis-model a
   piece.  Domains above the cap are refused rather than trusted. *)
let probe_cap = 1 lsl 16

let of_probe piece numel =
  if numel > probe_cap then None
  else begin
    let dims = L.Piece.dims piece in
    let eval flat = L.Piece.apply_ints piece (L.Shape.unflatten_ints dims flat) in
    let bits = log2 numel in
    let c = eval 0 in
    let cols = List.init bits (fun k -> eval (1 lsl k) lxor c) in
    let lin = { bits; mat = Bitmat.of_cols ~rows:bits cols; c } in
    let ok = ref true in
    for x = 0 to numel - 1 do
      if apply lin x <> eval x then ok := false
    done;
    if !ok then Some lin else None
  end

let of_piece_uncached piece =
  let dims = L.Piece.dims piece in
  if not (List.for_all is_pow2 dims) then None
  else
    let numel = L.Piece.numel piece in
    match piece with
    | L.Piece.Reg { dims; sigma } -> Some (of_reg dims sigma)
    | L.Piece.Gen { name; dims; _ } -> (
      match (name, dims) with
      | "reverse", _ ->
        Some
          {
            bits = log2 numel;
            mat = Bitmat.identity (log2 numel);
            c = numel - 1;
          }
      | "swizzle", [ rows; cols ] ->
        (* key = i mod cols, i.e. mask = cols - 1, shift = 0. *)
        Some (of_swizzlex ~rows ~cols ~mask:(cols - 1) ~shift:0)
      | "morton", _ -> of_probe piece numel
      | _, [ rows; cols ] -> (
        match L.Gallery.parse_swizzlex name with
        | Some (mask, shift) -> Some (of_swizzlex ~rows ~cols ~mask ~shift)
        | None -> None)
      | _ -> None)

(* Piece matrices are shared by every layout embedding the piece
   ([Piece.equal] is (name, dims) equality, which the printed form
   captures), and the swizzle search instantiates hundreds of layouts
   over a few dozen pieces — so memoize per piece identity, domain-local
   because scoring runs inside [Exec.map] workers. *)
let piece_memo : (string, t option) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let of_piece piece =
  let tbl = Domain.DLS.get piece_memo in
  let key = Format.asprintf "%a" L.Piece.pp piece in
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = of_piece_uncached piece in
    Hashtbl.add tbl key r;
    r

(* One [Order_by] stage: the flat input decomposes over the suffix
   products [flat = sum_i c_i * D_i], each piece maps its own bit field
   in place, so the stage matrix is block-diagonal on the fields (and
   the constants assemble on the same offsets). *)
let of_stage o =
  let ps = L.Order_by.pieces o in
  let rec build ps =
    match ps with
    | [] -> Some []
    | p :: rest -> (
      match (of_piece p, build rest) with
      | Some lin, Some tail -> Some ((lin, L.Piece.numel p) :: tail)
      | _ -> None)
  in
  match build ps with
  | None -> None
  | Some pieces ->
    let total_bits =
      List.fold_left (fun acc (lin, _) -> acc + lin.bits) 0 pieces
    in
    let col = Array.make total_bits 0 in
    let c = ref 0 in
    (* Pieces are listed outermost-first, so the head owns the top bit
       field and the offset descends to 0 at the innermost piece. *)
    let rec place off = function
      | [] -> assert (off = 0)
      | (lin, _) :: inner ->
        let off = off - lin.bits in
        for k = 0 to lin.bits - 1 do
          col.(off + k) <- Bitmat.col lin.mat k lsl off
        done;
        c := !c lxor (lin.c lsl off);
        place off inner
    in
    place total_bits pieces;
    Some
      {
        bits = total_bits;
        mat = Bitmat.of_cols ~rows:total_bits (Array.to_list col);
        c = !c;
      }

let of_layout g =
  let numel = L.Group_by.numel g in
  if not (is_pow2 numel) then None
  else begin
    let bits = log2 numel in
    let rec compose_chain acc = function
      | [] -> Some acc
      | o :: rest -> (
        match of_stage o with
        | None -> None
        | Some stage ->
          if stage.bits <> bits then None else compose_chain (compose acc stage) rest)
    in
    compose_chain (identity bits) (L.Group_by.chain g)
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>F2(%d bits, c=%d)@,%a@]" t.bits t.c Bitmat.pp t.mat
