let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let k = ref 0 in
  let v = ref n in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

let bits_needed v =
  let k = ref 0 in
  let x = ref v in
  while !x > 0 do
    incr k;
    x := !x lsr 1
  done;
  max 1 !k

let of_lanes addrs =
  let n = Array.length addrs in
  if n = 0 || not (is_pow2 n) || Array.exists (fun a -> a < 0) addrs then None
  else begin
    let lbits = log2 n in
    let a0 = addrs.(0) in
    let cols = List.init lbits (fun k -> addrs.(1 lsl k) lxor a0) in
    let hi = List.fold_left ( lor ) a0 cols in
    let rows = bits_needed hi in
    let mat = Bitmat.of_cols ~rows cols in
    let ok = ref true in
    for t = 0 to n - 1 do
      if Bitmat.apply mat t lxor a0 <> addrs.(t) then ok := false
    done;
    if !ok then Some (mat, a0) else None
  end

let compose_warp lay (l, x0) =
  let bits = Linear.bits lay in
  if Bitmat.rows l > bits then
    invalid_arg "Oracle.compose_warp: lane map wider than the layout";
  (* Widen the lane map to the layout's bit width (high rows zero). *)
  let l =
    if Bitmat.rows l = bits then l
    else
      Bitmat.of_cols ~rows:bits
        (List.init (Bitmat.cols l) (fun j -> Bitmat.col l j))
  in
  (Bitmat.mul (Linear.mat lay) l, Linear.apply lay x0)

(* Address bits map to word bits by [word = (addr * elem_bytes) /
   word_bytes]: bit [i] of the word is bit [i + shift] of the address
   with [shift = log2 word_bytes - log2 elem_bytes] (negative shift =
   sub-byte-packed elements widen the word map with zero rows). *)
let shifted_rows a ~shift =
  let rows = max 0 (Bitmat.rows a - shift) in
  let f v = if shift >= 0 then v lsr shift else v lsl -shift in
  Bitmat.of_cols ~rows (List.init (Bitmat.cols a) (fun j -> f (Bitmat.col a j)))

let bank_cycles ~nbanks ~bank_bytes ~elem_bytes a =
  if not (is_pow2 nbanks && is_pow2 bank_bytes && is_pow2 elem_bytes) then None
  else begin
    let w = shifted_rows a ~shift:(log2 bank_bytes - log2 elem_bytes) in
    let bank_bits = log2 nbanks in
    let b =
      Bitmat.of_cols
        ~rows:(min (Bitmat.rows w) bank_bits)
        (List.init (Bitmat.cols w) (fun j ->
             Bitmat.col w j land ((1 lsl bank_bits) - 1)))
    in
    Some (1 lsl (Bitmat.rank w - Bitmat.rank b))
  end

let txn_count ~txn_bytes ~elem_bytes a =
  if not (is_pow2 txn_bytes && is_pow2 elem_bytes) then None
  else
    let s = shifted_rows a ~shift:(log2 txn_bytes - log2 elem_bytes) in
    Some (1 lsl Bitmat.rank s)
