module L = Lego_layout
module S = Lego_symbolic
module Cp = Lego_codegen.C_printer
module Mg = Lego_codegen.Mlir_gen
module Mp = Lego_mlirsim.Mparser
module Mi = Lego_mlirsim.Minterp

type mismatch = { stage : string; detail : string }
type outcome = { points : int; c_checked : bool; mismatch : mismatch option }

exception Found of mismatch

let found stage fmt =
  Printf.ksprintf (fun detail -> raise (Found { stage; detail })) fmt

let pp_ints l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"

let default_max_points = 2048

let check_layout ?(max_points = default_max_points) ?(sample_seed = 0) g =
  let n = L.Group_by.numel g in
  let dims = L.Group_by.dims g in
  let names = List.mapi (fun k _ -> Printf.sprintf "i%d" k) dims in
  let points = ref 0 in
  let c_active = ref false in
  let mismatch =
    try
      (* Semantics (b): simplified symbolic expressions. *)
      let env_a = S.Sym.ranges_of g in
      let apply_sym = S.Sym.apply g in
      let inv_sym = S.Sym.inv g in
      let env_p = S.Range.env_of_list [ ("p", S.Range.of_extent n) ] in
      (* Semantics (c): the C backend's text under C arithmetic.  When
         the guard cannot prove truncation harmless the backend would
         refuse the expression, so the C leg is skipped and counted. *)
      let c_guard_ok =
        Cp.guard_nonneg ~env:env_a apply_sym = Ok ()
        && List.for_all (fun e -> Cp.guard_nonneg ~env:env_p e = Ok ()) inv_sym
      in
      let reparse e =
        let src = Cp.expr e in
        match Cexpr.parse src with
        | Ok t -> t
        | Error msg -> found "c-reparse" "cannot reparse %S: %s" src msg
      in
      let c_apply, c_inv =
        if c_guard_ok then (Some (reparse apply_sym), List.map reparse inv_sym)
        else (None, [])
      in
      c_active := c_guard_ok;
      (* Semantics (d): the MLIR backend, run by the interpreter. *)
      let m_apply = Mp.parse_module (Mg.layout_apply_func ~name:"apply" g) in
      let m_inv = Mp.parse_module (Mg.layout_inv_func ~name:"inv" g) in
      let seen = if n <= max_points then Some (Array.make n false) else None in
      let check_point idx =
        incr points;
        let pt = pp_ints idx in
        (* Semantics (a): the reference interpreter. *)
        let p = L.Group_by.apply_ints g idx in
        if p < 0 || p >= n then
          found "interp-bounds" "apply %s = %d, outside [0, %d)" pt p n;
        (match seen with
        | Some hit ->
          if hit.(p) then
            found "interp-injective" "offset %d produced twice (again at %s)"
              p pt;
          hit.(p) <- true
        | None -> ());
        let back = L.Group_by.inv_ints g p in
        if back <> idx then
          found "interp-roundtrip" "inv (apply %s) = %s" pt (pp_ints back);
        let bindings = List.combine names idx in
        let lookup v = List.assoc v bindings in
        let lookup_p v =
          if v = "p" then p else failwith ("unbound variable " ^ v)
        in
        let sp = S.Expr.eval ~env:lookup apply_sym in
        if sp <> p then
          found "symbolic-apply" "at %s: interpreter %d, symbolic %d" pt p sp;
        List.iteri
          (fun k (e, want) ->
            let got = S.Expr.eval ~env:lookup_p e in
            if got <> want then
              found "symbolic-inv"
                "component %d at p = %d: interpreter %d, symbolic %d" k p want
                got)
          (List.combine inv_sym idx);
        (match c_apply with
        | Some ca ->
          let cp = Cexpr.eval ~env:lookup ca in
          if cp <> p then
            found "c-apply" "at %s: interpreter %d, C %d" pt p cp;
          List.iteri
            (fun k (e, want) ->
              let got = Cexpr.eval ~env:lookup_p e in
              if got <> want then
                found "c-inv" "component %d at p = %d: interpreter %d, C %d" k
                  p want got)
            (List.combine c_inv idx)
        | None -> ());
        (match Mi.run_func m_apply "apply" (List.map (fun i -> Mi.Int i) idx) with
        | [ mp ] when mp = p -> ()
        | [ mp ] -> found "mlir-apply" "at %s: interpreter %d, MLIR %d" pt p mp
        | rs ->
          found "mlir-apply" "expected one result, got %d" (List.length rs));
        let mback = Mi.run_func m_inv "inv" [ Mi.Int p ] in
        if mback <> idx then
          found "mlir-inv" "at p = %d: interpreter %s, MLIR %s" p (pp_ints idx)
            (pp_ints mback)
      in
      (match seen with
      | Some _ -> Seq.iter check_point (L.Shape.indices dims)
      | None ->
        let rng = Random.State.make [| 0x5A11; sample_seed |] in
        for _ = 1 to max_points do
          check_point (List.map (fun e -> Random.State.int rng e) dims)
        done);
      None
    with
    | Found m -> Some m
    | exn -> Some { stage = "exception"; detail = Printexc.to_string exn }
  in
  { points = !points; c_checked = !c_active; mismatch }

type failure = {
  origin : string;
  repro : string option;
  layout : L.Group_by.t;
  shrunk : L.Group_by.t;
  mismatch : mismatch;
}

type report = {
  layouts : int;
  points : int;
  c_skipped : int;
  failures : failure list;
  seconds : float;
  budget_exhausted : bool;
}

let run ?(gallery = true) ?(random = 200) ?(seed = 42) ?max_points
    ?(budget_s = infinity) ?(progress = fun _ -> ()) () =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let layouts = ref 0 in
  let points = ref 0 in
  let c_skipped = ref 0 in
  let failures = ref [] in
  let budget_exhausted = ref false in
  let still_fails g = (check_layout ?max_points g).mismatch <> None in
  let check origin repro g =
    incr layouts;
    let o = check_layout ?max_points ~sample_seed:!layouts g in
    points := !points + o.points;
    if not o.c_checked then incr c_skipped;
    match o.mismatch with
    | None -> ()
    | Some m ->
      progress (Printf.sprintf "mismatch in %s [%s] — shrinking" origin m.stage);
      let shrunk = Shrink.minimize still_fails g in
      let mismatch =
        match (check_layout ?max_points shrunk).mismatch with
        | Some m' -> m'
        | None -> m (* shrinking preserves failure; defensive fallback *)
      in
      failures := { origin; repro; layout = g; shrunk; mismatch } :: !failures
  in
  if gallery then
    List.iter (fun (name, g) -> check ("gallery: " ^ name) None g) Corpus.all;
  (try
     for index = 0 to random - 1 do
       if elapsed () > budget_s then begin
         budget_exhausted := true;
         raise Exit
       end;
       check
         (Printf.sprintf "random layout #%d (seed %d)" index seed)
         (Some
            (Printf.sprintf "CONFORM_SEED=%d CONFORM_ITERS=%d legoc conform"
               seed (index + 1)))
         (Lgen.layout_of_seed ~seed ~index)
     done
   with Exit -> ());
  {
    layouts = !layouts;
    points = !points;
    c_skipped = !c_skipped;
    failures = List.rev !failures;
    seconds = elapsed ();
    budget_exhausted = !budget_exhausted;
  }

let pp_failure ppf f =
  Format.fprintf ppf "@[<v2>FAIL %s@,stage:   %s@,detail:  %s@,layout:  %a@,shrunk:  %a"
    f.origin f.mismatch.stage f.mismatch.detail L.Group_by.pp f.layout
    L.Group_by.pp f.shrunk;
  (match f.repro with
  | Some r -> Format.fprintf ppf "@,repro:   %s" r
  | None -> ());
  Format.fprintf ppf "@]"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>conform: %d layouts, %d points, %d C-guard-skipped, %d mismatches \
     (%.2fs, %.0f points/s)%s"
    r.layouts r.points r.c_skipped (List.length r.failures) r.seconds
    (float_of_int r.points /. (if r.seconds > 0. then r.seconds else 1e-9))
    (if r.budget_exhausted then " [time budget exhausted]" else "");
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_failure f) r.failures;
  Format.fprintf ppf "@]"
