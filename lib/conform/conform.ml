module L = Lego_layout
module S = Lego_symbolic
module Exec = Lego_exec.Exec
module Cp = Lego_codegen.C_printer
module Mg = Lego_codegen.Mlir_gen
module Mp = Lego_mlirsim.Mparser
module Mi = Lego_mlirsim.Minterp

type mismatch = { stage : string; detail : string }

type outcome = {
  points : int;
  c_checked : bool;
  f2_checked : bool;
  mismatch : mismatch option;
}

exception Found of mismatch

let found stage fmt =
  Printf.ksprintf (fun detail -> raise (Found { stage; detail })) fmt

let pp_ints l = "[" ^ String.concat ", " (List.map string_of_int l) ^ "]"

let default_max_points = 2048

let check_layout ?(max_points = default_max_points) ?(sample_seed = 0) g =
  let n = L.Group_by.numel g in
  let dims = L.Group_by.dims g in
  let names = List.mapi (fun k _ -> Printf.sprintf "i%d" k) dims in
  let points = ref 0 in
  let c_active = ref false in
  let f2_active = ref false in
  let mismatch =
    try
      (* Semantics (b): simplified symbolic expressions. *)
      let env_a = S.Sym.ranges_of g in
      let apply_sym = S.Sym.apply g in
      let inv_sym = S.Sym.inv g in
      let env_p = S.Range.env_of_list [ ("p", S.Range.of_extent n) ] in
      (* Semantics (c): the C backend's text under C arithmetic.  When
         the guard cannot prove truncation harmless the backend would
         refuse the expression, so the C leg is skipped and counted. *)
      let c_guard_ok =
        Cp.guard_nonneg ~env:env_a apply_sym = Ok ()
        && List.for_all (fun e -> Cp.guard_nonneg ~env:env_p e = Ok ()) inv_sym
      in
      let reparse e =
        let src = Cp.expr e in
        match Cexpr.parse src with
        | Ok t -> t
        | Error msg -> found "c-reparse" "cannot reparse %S: %s" src msg
      in
      let c_apply, c_inv =
        if c_guard_ok then (Some (reparse apply_sym), List.map reparse inv_sym)
        else (None, [])
      in
      c_active := c_guard_ok;
      (* Semantics (d): the MLIR backend, run by the interpreter. *)
      let m_apply = Mp.parse_module (Mg.layout_apply_func ~name:"apply" g) in
      let m_inv = Mp.parse_module (Mg.layout_inv_func ~name:"inv" g) in
      (* Semantics (e): the affine F₂ form, when the layout is in the
         bit-linear family.  Every layout is a bijection by
         construction, so a singular matrix here is itself a
         compilation bug, not a skip. *)
      let f2 =
        match Lego_f2.Linear.of_layout g with
        | None -> None
        | Some lin -> (
          match Lego_f2.Linear.inverse lin with
          | Some lin_inv -> Some (lin, lin_inv)
          | None ->
            found "f2-rank"
              "layout is bijective but its F2 matrix is singular (rank < %d)"
              (Lego_f2.Linear.bits lin))
      in
      f2_active := f2 <> None;
      let seen = if n <= max_points then Some (Array.make n false) else None in
      let check_point idx =
        incr points;
        let pt = pp_ints idx in
        (* Semantics (a): the reference interpreter. *)
        let p = L.Group_by.apply_ints g idx in
        if p < 0 || p >= n then
          found "interp-bounds" "apply %s = %d, outside [0, %d)" pt p n;
        (match seen with
        | Some hit ->
          if hit.(p) then
            found "interp-injective" "offset %d produced twice (again at %s)"
              p pt;
          hit.(p) <- true
        | None -> ());
        let back = L.Group_by.inv_ints g p in
        if back <> idx then
          found "interp-roundtrip" "inv (apply %s) = %s" pt (pp_ints back);
        let bindings = List.combine names idx in
        let lookup v = List.assoc v bindings in
        let lookup_p v =
          if v = "p" then p else failwith ("unbound variable " ^ v)
        in
        let sp = S.Expr.eval ~env:lookup apply_sym in
        if sp <> p then
          found "symbolic-apply" "at %s: interpreter %d, symbolic %d" pt p sp;
        List.iteri
          (fun k (e, want) ->
            let got = S.Expr.eval ~env:lookup_p e in
            if got <> want then
              found "symbolic-inv"
                "component %d at p = %d: interpreter %d, symbolic %d" k p want
                got)
          (List.combine inv_sym idx);
        (match c_apply with
        | Some ca ->
          let cp = Cexpr.eval ~env:lookup ca in
          if cp <> p then
            found "c-apply" "at %s: interpreter %d, C %d" pt p cp;
          List.iteri
            (fun k (e, want) ->
              let got = Cexpr.eval ~env:lookup_p e in
              if got <> want then
                found "c-inv" "component %d at p = %d: interpreter %d, C %d" k
                  p want got)
            (List.combine c_inv idx)
        | None -> ());
        (match Mi.run_func m_apply "apply" (List.map (fun i -> Mi.Int i) idx) with
        | [ mp ] when mp = p -> ()
        | [ mp ] -> found "mlir-apply" "at %s: interpreter %d, MLIR %d" pt p mp
        | rs ->
          found "mlir-apply" "expected one result, got %d" (List.length rs));
        let mback = Mi.run_func m_inv "inv" [ Mi.Int p ] in
        if mback <> idx then
          found "mlir-inv" "at p = %d: interpreter %s, MLIR %s" p (pp_ints idx)
            (pp_ints mback);
        match f2 with
        | None -> ()
        | Some (lin, lin_inv) ->
          let flat = L.Shape.flatten_ints dims idx in
          let fp = Lego_f2.Linear.apply lin flat in
          if fp <> p then
            found "f2-apply" "at %s (flat %d): interpreter %d, F2 %d" pt flat p
              fp;
          let fback = Lego_f2.Linear.apply lin_inv p in
          if fback <> flat then
            found "f2-inv" "at p = %d: flat index %d, F2 inverse %d" p flat
              fback
      in
      (match seen with
      | Some _ -> Seq.iter check_point (L.Shape.indices dims)
      | None ->
        let rng = Random.State.make [| 0x5A11; sample_seed |] in
        for _ = 1 to max_points do
          check_point (List.map (fun e -> Random.State.int rng e) dims)
        done);
      None
    with
    | Found m -> Some m
    | exn -> Some { stage = "exception"; detail = Printexc.to_string exn }
  in
  { points = !points; c_checked = !c_active; f2_checked = !f2_active; mismatch }

type failure = {
  origin : string;
  repro : string option;
  layout : L.Group_by.t;
  shrunk : L.Group_by.t;
  mismatch : mismatch;
}

type report = {
  layouts : int;
  points : int;
  c_skipped : int;
  f2_covered : int;
  failures : failure list;
  seconds : float;
  budget_exhausted : bool;
}

(* Point sampling is seeded purely by the layout's own identity — the
   gallery name, or the (stream seed, index) pair of a random layout —
   never by iteration order or a shared counter.  That is what makes a
   printed [CONFORM_SEED=… CONFORM_ITERS=…] repro line (and a
   [--skip-gallery] re-run) sample exactly the points of the original
   failing run, and what lets layouts be checked on any domain of the
   pool in any order with bit-identical reports. *)

let gallery_sample_seed name = Hashtbl.hash ("gallery", name)
let random_sample_seed ~seed ~index = Hashtbl.hash ("random", seed, index)
let algebra_sample_seed ~seed ~index = Hashtbl.hash ("algebra", seed, index)

(* One unit of fan-out work: a single layout checked (and, on mismatch,
   shrunk) entirely within one domain. *)
type task = {
  t_origin : string;
  t_repro : string option;
  t_sample_seed : int;
  t_layout : unit -> L.Group_by.t; (* generated inside the task *)
}

type task_result =
  | Skipped (* the time budget was already exhausted when its turn came *)
  | Checked of outcome * failure option

let exec_task ?max_points ~progress ~over_budget t =
  if over_budget () then Skipped
  else begin
    let g = t.t_layout () in
    let sample_seed = t.t_sample_seed in
    let o = check_layout ?max_points ~sample_seed g in
    let failure =
      match o.mismatch with
      | None -> None
      | Some m ->
        progress
          (Printf.sprintf "mismatch in %s [%s] — shrinking" t.t_origin m.stage);
        (* Shrink candidates are judged on the same point sample that
           exposed the mismatch, so sampled failures shrink reliably. *)
        let still_fails c =
          (check_layout ?max_points ~sample_seed c).mismatch <> None
        in
        let shrunk = Shrink.minimize still_fails g in
        let mismatch =
          match (check_layout ?max_points ~sample_seed shrunk).mismatch with
          | Some m' -> m'
          | None -> m (* shrinking preserves failure; defensive fallback *)
        in
        Some { origin = t.t_origin; repro = t.t_repro; layout = g; shrunk; mismatch }
    in
    Checked (o, failure)
  end

let run ?(gallery = true) ?(random = 200) ?(algebra = 0) ?(seed = 42)
    ?max_points ?(budget_s = infinity) ?(progress = fun _ -> ()) ?(jobs = 1) ()
    =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  (* The budget is checked before every layout — the gallery pass too —
     so a slow pass can overshoot by at most one layout, not unboundedly. *)
  let over_budget () = elapsed () > budget_s in
  let gallery_tasks =
    if not gallery then []
    else
      List.map
        (fun (name, g) ->
          {
            t_origin = "gallery: " ^ name;
            t_repro = None;
            t_sample_seed = gallery_sample_seed name;
            t_layout = (fun () -> g);
          })
        Corpus.all
  in
  let random_tasks =
    List.init random (fun index ->
        {
          t_origin = Printf.sprintf "random layout #%d (seed %d)" index seed;
          t_repro =
            Some
              (Printf.sprintf "CONFORM_SEED=%d CONFORM_ITERS=%d legoc conform"
                 seed (index + 1));
          t_sample_seed = random_sample_seed ~seed ~index;
          t_layout = (fun () -> Lgen.layout_of_seed ~seed ~index);
        })
  in
  let algebra_tasks =
    List.init algebra (fun index ->
        {
          t_origin = Printf.sprintf "algebra term #%d (seed %d)" index seed;
          t_repro =
            Some
              (Printf.sprintf
                 "CONFORM_SEED=%d CONFORM_ALGEBRA=%d legoc conform --iters 0 \
                  --skip-gallery"
                 seed (index + 1));
          t_sample_seed = algebra_sample_seed ~seed ~index;
          t_layout = (fun () -> Lgen.algebra_layout_of_seed ~seed ~index);
        })
  in
  let tasks = Array.of_list (gallery_tasks @ random_tasks @ algebra_tasks) in
  let results =
    Exec.with_pool ~jobs (fun pool ->
        Exec.map ~chunk:1 ~pool tasks
          (exec_task ?max_points ~progress ~over_budget))
  in
  (* Merge in submission order: counts, then failures, are identical for
     any pool size. *)
  let layouts = ref 0 in
  let points = ref 0 in
  let c_skipped = ref 0 in
  let f2_covered = ref 0 in
  let failures = ref [] in
  let budget_exhausted = ref false in
  Array.iter
    (function
      | Skipped -> budget_exhausted := true
      | Checked (o, failure) ->
        incr layouts;
        points := !points + o.points;
        if not o.c_checked then incr c_skipped;
        if o.f2_checked then incr f2_covered;
        Option.iter (fun f -> failures := f :: !failures) failure)
    results;
  {
    layouts = !layouts;
    points = !points;
    c_skipped = !c_skipped;
    f2_covered = !f2_covered;
    failures = List.rev !failures;
    seconds = elapsed ();
    budget_exhausted = !budget_exhausted;
  }

let pp_failure ppf f =
  Format.fprintf ppf "@[<v2>FAIL %s@,stage:   %s@,detail:  %s@,layout:  %a@,shrunk:  %a"
    f.origin f.mismatch.stage f.mismatch.detail L.Group_by.pp f.layout
    L.Group_by.pp f.shrunk;
  (match f.repro with
  | Some r -> Format.fprintf ppf "@,repro:   %s" r
  | None -> ());
  Format.fprintf ppf "@]"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>conform: %d layouts, %d points, %d C-guard-skipped, %d F2-covered, \
     %d mismatches (%.2fs, %.0f points/s)%s"
    r.layouts r.points r.c_skipped r.f2_covered (List.length r.failures)
    r.seconds
    (float_of_int r.points /. (if r.seconds > 0. then r.seconds else 1e-9))
    (if r.budget_exhausted then " [time budget exhausted]" else "");
  List.iter (fun f -> Format.fprintf ppf "@,%a" pp_failure f) r.failures;
  Format.fprintf ppf "@]"
