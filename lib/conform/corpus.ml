module L = Lego_layout

let all =
  [
    ( "row-major tiled A (DL_a)",
      L.Sugar.tiled_view ~group:[ [ 8; 4 ]; [ 16; 32 ] ] () );
    ( "column-major tiled A^T",
      L.Sugar.tiled_view
        ~order:[ L.Sugar.col [ 128; 128 ] ]
        ~group:[ [ 8; 4 ]; [ 16; 32 ] ]
        () );
    ( "grouped program ids (CL)",
      L.Sugar.tiled_view
        ~order:[ L.Sugar.col [ 4; 1 ]; L.Sugar.col [ 8; 16 ] ]
        ~group:[ [ 32; 16 ] ] () );
    ( "anti-diagonal NW buffer",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.antidiag 17 ] ]
        [ [ 17; 17 ] ] );
    ( "Z-Morton 16x16",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.morton ~d:2 ~bits:4 ] ]
        [ [ 16; 16 ] ] );
    ( "figure 9 ensemble",
      L.Group_by.make
        ~chain:
          [
            L.Order_by.make
              [
                L.Piece.reg ~dims:[ 2; 2 ] ~sigma:(L.Sigma.of_one_based [ 2; 1 ]);
                L.Gallery.antidiag 3;
              ];
            L.Order_by.make
              [
                L.Piece.reg ~dims:[ 2; 3; 2; 3 ]
                  ~sigma:(L.Sigma.of_one_based [ 1; 3; 2; 4 ]);
              ];
          ]
        [ [ 6; 6 ] ] );
    ( "Hilbert 8x8",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.hilbert ~bits:3 ] ]
        [ [ 8; 8 ] ] );
    ( "XOR-swizzled smem tile",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.xor_swizzle ~rows:16 ~cols:8 ] ]
        [ [ 16; 8 ] ] );
    ( "masked XOR-swizzled smem tile",
      L.Group_by.make
        ~chain:
          [
            L.Order_by.make
              [ L.Gallery.xor_swizzle_masked ~rows:32 ~cols:16 ~mask:7 ~shift:1 ];
          ]
        [ [ 32; 16 ] ] );
    ( "cyclic diagonal 9x9",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.cyclic_diag 9 ] ]
        [ [ 9; 9 ] ] );
  ]
