module L = Lego_layout
module A = L.Algebra
module D = Lego_symbolic.Discharge

(* Corpus construction is static, so a prover refusal here is a build
   bug: fail loudly rather than silently dropping the entry. *)
let get_ok what = function
  | Ok v -> v
  | Error e ->
    invalid_arg (Format.asprintf "Corpus.%s: %a" what A.pp_error e)

(* Column tiles of the row-major 8x4 image: the worked logical-divide
   example from the docs, as a conformance entry. *)
let divide_tiled =
  let a = A.row [ 8; 4 ] in
  let b = A.make ~shape:[ 4 ] ~stride:[ 4 ] in
  let l = get_ok "divide_tiled" (D.logical_divide a b) in
  let p = get_ok "divide_tiled" (D.to_piece l) in
  L.Group_by.make ~chain:[ L.Order_by.make [ p ] ] [ L.Piece.dims p ]

(* An 8-element column order repeated across 4 tiles by logical product. *)
let product_repeated =
  let b = A.make ~shape:[ 4; 2 ] ~stride:[ 2; 1 ] in
  let l = get_ok "product_repeated" (D.logical_product b (A.id 4)) in
  let p = get_ok "product_repeated" (D.to_piece l) in
  L.Group_by.make ~chain:[ L.Order_by.make [ p ] ] [ L.Piece.dims p ]

(* A gallery swizzle composed (at the piece level) with a strided
   transpose tile: exercises the composite (GenP) fallback through every
   backend. *)
let swizzle_of_tile =
  let swz = L.Gallery.xor_swizzle ~rows:16 ~cols:8 in
  let tile =
    L.Piece.reg ~dims:[ 8; 16 ] ~sigma:(L.Sigma.of_one_based [ 2; 1 ])
  in
  let p = get_ok "swizzle_of_tile" (D.compose_pieces swz tile) in
  L.Group_by.make ~chain:[ L.Order_by.make [ p ] ] [ L.Piece.dims p ]

let all =
  [
    ( "row-major tiled A (DL_a)",
      L.Sugar.tiled_view ~group:[ [ 8; 4 ]; [ 16; 32 ] ] () );
    ( "column-major tiled A^T",
      L.Sugar.tiled_view
        ~order:[ L.Sugar.col [ 128; 128 ] ]
        ~group:[ [ 8; 4 ]; [ 16; 32 ] ]
        () );
    ( "grouped program ids (CL)",
      L.Sugar.tiled_view
        ~order:[ L.Sugar.col [ 4; 1 ]; L.Sugar.col [ 8; 16 ] ]
        ~group:[ [ 32; 16 ] ] () );
    ( "anti-diagonal NW buffer",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.antidiag 17 ] ]
        [ [ 17; 17 ] ] );
    ( "Z-Morton 16x16",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.morton ~d:2 ~bits:4 ] ]
        [ [ 16; 16 ] ] );
    ( "figure 9 ensemble",
      L.Group_by.make
        ~chain:
          [
            L.Order_by.make
              [
                L.Piece.reg ~dims:[ 2; 2 ] ~sigma:(L.Sigma.of_one_based [ 2; 1 ]);
                L.Gallery.antidiag 3;
              ];
            L.Order_by.make
              [
                L.Piece.reg ~dims:[ 2; 3; 2; 3 ]
                  ~sigma:(L.Sigma.of_one_based [ 1; 3; 2; 4 ]);
              ];
          ]
        [ [ 6; 6 ] ] );
    ( "Hilbert 8x8",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.hilbert ~bits:3 ] ]
        [ [ 8; 8 ] ] );
    ( "XOR-swizzled smem tile",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.xor_swizzle ~rows:16 ~cols:8 ] ]
        [ [ 16; 8 ] ] );
    ( "masked XOR-swizzled smem tile",
      L.Group_by.make
        ~chain:
          [
            L.Order_by.make
              [ L.Gallery.xor_swizzle_masked ~rows:32 ~cols:16 ~mask:7 ~shift:1 ];
          ]
        [ [ 32; 16 ] ] );
    ( "cyclic diagonal 9x9",
      L.Group_by.make
        ~chain:[ L.Order_by.make [ L.Gallery.cyclic_diag 9 ] ]
        [ [ 9; 9 ] ] );
    ("divide-tiled row-major (algebra)", divide_tiled);
    ("product-repeated column order (algebra)", product_repeated);
    ("swizzle o transpose tile (algebra)", swizzle_of_tile);
  ]
