(** The shared differential-testing corpus: the Table-1 layouts of the
    paper's evaluation, used by the conformance harness, the benchmark
    suite and the simplifier fuzz tests so all three exercise the same
    ground truth. *)

val all : (string * Lego_layout.Group_by.t) list
(** Name / layout pairs; every layout is a bijection over a few thousand
    points at most, so exhaustive checks stay cheap. *)
