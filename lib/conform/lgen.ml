module L = Lego_layout

let pick rng xs =
  match xs with
  | [] -> invalid_arg "Lgen.pick: empty list"
  | _ -> List.nth xs (Random.State.int rng (List.length xs))

(* All divisors of [n] (n is at most a few hundred here). *)
let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

(* Split [n] into exactly [k] factors (each >= 1), drawn at random. *)
let rec factorization rng n k =
  if k <= 1 then [ n ]
  else
    let d = pick rng (divisors n) in
    d :: factorization rng (n / d) (k - 1)

let log2_exact m =
  let rec go acc m =
    if m = 1 then Some acc else if m mod 2 = 0 then go (acc + 1) (m / 2) else None
  in
  if m <= 0 then None else go 0 m

(* A random piece covering exactly [m] elements.  Gallery pieces are only
   offered when [m] meets their shape constraint. *)
let gen_piece rng m =
  let sq = L.Domain.int_isqrt m in
  let square = sq * sq = m && sq >= 2 in
  let choices = ref [] in
  let add c = choices := c :: !choices in
  (* Strided permutations are always available (and twice as likely,
     matching their prevalence in real mappings). *)
  let regp () =
    let rank = 1 + Random.State.int rng 3 in
    let dims = factorization rng m rank in
    let sigma = pick rng (L.Sigma.all rank) in
    L.Piece.reg ~dims ~sigma
  in
  add regp;
  add regp;
  add (fun () ->
      let rank = 1 + Random.State.int rng 2 in
      L.Gallery.reverse (factorization rng m rank));
  if square then begin
    add (fun () -> L.Gallery.antidiag sq);
    add (fun () -> L.Gallery.cyclic_diag sq)
  end;
  (match log2_exact m with
  | Some bits when bits >= 2 ->
    add (fun () ->
        let cols_bits = 1 + Random.State.int rng (bits - 1) in
        L.Gallery.xor_swizzle
          ~rows:(m lsr cols_bits)
          ~cols:(1 lsl cols_bits));
    add (fun () ->
        (* Masked swizzle: any key mask below [cols] (including 0 and
           non-prefix masks) and a small row shift. *)
        let cols_bits = 1 + Random.State.int rng (bits - 1) in
        let cols = 1 lsl cols_bits in
        L.Gallery.xor_swizzle_masked
          ~rows:(m lsr cols_bits)
          ~cols
          ~mask:(Random.State.int rng cols)
          ~shift:(Random.State.int rng 3));
    if bits mod 2 = 0 then begin
      add (fun () -> L.Gallery.morton ~d:2 ~bits:(bits / 2));
      add (fun () -> L.Gallery.hilbert ~bits:(bits / 2))
    end
  | _ -> ());
  (pick rng !choices) ()

(* Split [n] into the piece element-counts of one OrderBy: one to three
   factors, dropping trivial factors of 1. *)
let split_pieces rng n =
  if n = 1 then [ 1 ]
  else
    let k = 1 + Random.State.int rng 3 in
    match List.filter (fun f -> f > 1) (factorization rng n k) with
    | [] -> [ n ]
    | fs -> fs

let gen_order_by rng n =
  L.Order_by.make (List.map (gen_piece rng) (split_pieces rng n))

(* The grouping hierarchy: one or two levels whose element counts multiply
   to [n], each level a shape of one or two extents. *)
let gen_shapes rng n =
  let levels = 1 + Random.State.int rng 2 in
  let level_numels =
    match List.filter (fun f -> f > 1) (factorization rng n levels) with
    | [] -> [ n ]
    | fs -> fs
  in
  List.map
    (fun m ->
      let rank = 1 + Random.State.int rng 2 in
      factorization rng m rank)
    level_numels

(* Element counts biased toward shapes the gallery pieces accept: powers
   of four for Morton/Hilbert, perfect squares for the diagonal orders,
   smooth composites for everything else.  All small enough to check
   exhaustively. *)
let gen_numel rng =
  match Random.State.int rng 4 with
  | 0 -> pick rng [ 16; 64; 256 ]
  | 1 -> pick rng [ 2; 3; 4; 5; 6 ] |> fun k -> k * k * pick rng [ 1; 2; 3 ]
  | 2 -> pick rng [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 12 ] * pick rng [ 1; 2; 3; 4; 6; 8 ]
  | _ -> 1 + Random.State.int rng 360

let layout_of_seed ~seed ~index =
  let rng = Random.State.make [| 0xC04F; seed; index |] in
  let n = gen_numel rng in
  let shapes = gen_shapes rng n in
  let chain_len = Random.State.int rng 4 in
  let chain = List.init chain_len (fun _ -> gen_order_by rng n) in
  L.Group_by.make ~chain shapes

(* ---- random layout-algebra terms ---------------------------------- *)

module A = L.Algebra
module D = Lego_symbolic.Discharge

(* Split [bits] into exactly [rank] positive exponents. *)
let rec split_bits rng bits rank =
  if rank <= 1 then [ bits ]
  else
    let b = 1 + Random.State.int rng (bits - rank + 1) in
    b :: split_bits rng (bits - b) (rank - 1)

(* A random strided bijection on [2^bits] elements: a power-of-two shape
   under a random dimension permutation. *)
let gen_pow2_bijection rng bits =
  if bits = 0 then A.id 1
  else
    let rank = 1 + Random.State.int rng (min 3 bits) in
    let dims = List.map (fun b -> 1 lsl b) (split_bits rng bits rank) in
    let sigma = pick rng (L.Sigma.all rank) in
    match A.of_piece (L.Piece.reg ~dims ~sigma) with
    | Some l -> l
    | None -> assert false (* RegP pieces are always strided *)

(* A tile drawn from a random subset of [a]'s own modes.  Because [a] is
   a power-of-two bijection, any such subset satisfies the complement
   chain conditions, so [logical_divide a (sub_tile rng a)] is admissible
   by construction. *)
let sub_tile rng a =
  let modes =
    List.filter
      (fun (e, _) -> e > 1 && Random.State.bool rng)
      (List.combine (A.shape a) (A.stride a))
  in
  match modes with
  | [] -> A.id 1
  | _ -> A.make ~shape:(List.map fst modes) ~stride:(List.map snd modes)

(* One rewriting step.  Every candidate keeps the term a power-of-two
   bijection, so the prover discharges each operator's side conditions by
   construction; the [Error] fallbacks are defensive only. *)
let algebra_step rng a =
  match Random.State.int rng 3 with
  | 0 -> (
    (* Re-tile: divide by a sub-layout of [a]'s own modes. *)
    match D.logical_divide a (sub_tile rng a) with Ok l -> l | Error _ -> a)
  | 1 when A.size a <= 128 -> (
    (* Repeat the whole term across a fresh outer dimension. *)
    match D.logical_product a (A.id (pick rng [ 2; 4 ])) with
    | Ok l -> l
    | Error _ -> a)
  | 1 -> a
  | _ -> (
    (* Permute the domain by composing with a fresh bijection. *)
    match log2_exact (A.size a) with
    | Some bits -> (
      match D.compose a (gen_pow2_bijection rng bits) with
      | Ok l -> l
      | Error _ -> a)
    | None -> a)

let algebra_layout_of_seed ~seed ~index =
  let rng = Random.State.make [| 0xA16E; seed; index |] in
  let bits = 3 + Random.State.int rng 6 in
  (* 8 .. 256 elements *)
  let steps = Random.State.int rng 3 in
  let l =
    List.fold_left
      (fun a _ -> algebra_step rng a)
      (gen_pow2_bijection rng bits)
      (List.init steps Fun.id)
  in
  let piece =
    match D.to_piece l with
    | Ok p -> p
    | Error e ->
      (* Every step preserves bijectivity, so this cannot fire. *)
      invalid_arg
        (Format.asprintf "Lgen.algebra_layout_of_seed: %a" A.pp_error e)
  in
  (* A third of the stream routes the term through a gallery bijection at
     the piece level, exercising the composite (GenP) fallback. *)
  let piece =
    if Random.State.int rng 3 = 0 then
      match D.compose_pieces (gen_piece rng (L.Piece.numel piece)) piece with
      | Ok p -> p
      | Error _ -> piece
    else piece
  in
  L.Group_by.make ~chain:[ L.Order_by.make [ piece ] ] [ L.Piece.dims piece ]
