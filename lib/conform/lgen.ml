module L = Lego_layout

let pick rng xs =
  match xs with
  | [] -> invalid_arg "Lgen.pick: empty list"
  | _ -> List.nth xs (Random.State.int rng (List.length xs))

(* All divisors of [n] (n is at most a few hundred here). *)
let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

(* Split [n] into exactly [k] factors (each >= 1), drawn at random. *)
let rec factorization rng n k =
  if k <= 1 then [ n ]
  else
    let d = pick rng (divisors n) in
    d :: factorization rng (n / d) (k - 1)

let log2_exact m =
  let rec go acc m =
    if m = 1 then Some acc else if m mod 2 = 0 then go (acc + 1) (m / 2) else None
  in
  if m <= 0 then None else go 0 m

(* A random piece covering exactly [m] elements.  Gallery pieces are only
   offered when [m] meets their shape constraint. *)
let gen_piece rng m =
  let sq = L.Domain.int_isqrt m in
  let square = sq * sq = m && sq >= 2 in
  let choices = ref [] in
  let add c = choices := c :: !choices in
  (* Strided permutations are always available (and twice as likely,
     matching their prevalence in real mappings). *)
  let regp () =
    let rank = 1 + Random.State.int rng 3 in
    let dims = factorization rng m rank in
    let sigma = pick rng (L.Sigma.all rank) in
    L.Piece.reg ~dims ~sigma
  in
  add regp;
  add regp;
  add (fun () ->
      let rank = 1 + Random.State.int rng 2 in
      L.Gallery.reverse (factorization rng m rank));
  if square then begin
    add (fun () -> L.Gallery.antidiag sq);
    add (fun () -> L.Gallery.cyclic_diag sq)
  end;
  (match log2_exact m with
  | Some bits when bits >= 2 ->
    add (fun () ->
        let cols_bits = 1 + Random.State.int rng (bits - 1) in
        L.Gallery.xor_swizzle
          ~rows:(m lsr cols_bits)
          ~cols:(1 lsl cols_bits));
    add (fun () ->
        (* Masked swizzle: any key mask below [cols] (including 0 and
           non-prefix masks) and a small row shift. *)
        let cols_bits = 1 + Random.State.int rng (bits - 1) in
        let cols = 1 lsl cols_bits in
        L.Gallery.xor_swizzle_masked
          ~rows:(m lsr cols_bits)
          ~cols
          ~mask:(Random.State.int rng cols)
          ~shift:(Random.State.int rng 3));
    if bits mod 2 = 0 then begin
      add (fun () -> L.Gallery.morton ~d:2 ~bits:(bits / 2));
      add (fun () -> L.Gallery.hilbert ~bits:(bits / 2))
    end
  | _ -> ());
  (pick rng !choices) ()

(* Split [n] into the piece element-counts of one OrderBy: one to three
   factors, dropping trivial factors of 1. *)
let split_pieces rng n =
  if n = 1 then [ 1 ]
  else
    let k = 1 + Random.State.int rng 3 in
    match List.filter (fun f -> f > 1) (factorization rng n k) with
    | [] -> [ n ]
    | fs -> fs

let gen_order_by rng n =
  L.Order_by.make (List.map (gen_piece rng) (split_pieces rng n))

(* The grouping hierarchy: one or two levels whose element counts multiply
   to [n], each level a shape of one or two extents. *)
let gen_shapes rng n =
  let levels = 1 + Random.State.int rng 2 in
  let level_numels =
    match List.filter (fun f -> f > 1) (factorization rng n levels) with
    | [] -> [ n ]
    | fs -> fs
  in
  List.map
    (fun m ->
      let rank = 1 + Random.State.int rng 2 in
      factorization rng m rank)
    level_numels

(* Element counts biased toward shapes the gallery pieces accept: powers
   of four for Morton/Hilbert, perfect squares for the diagonal orders,
   smooth composites for everything else.  All small enough to check
   exhaustively. *)
let gen_numel rng =
  match Random.State.int rng 4 with
  | 0 -> pick rng [ 16; 64; 256 ]
  | 1 -> pick rng [ 2; 3; 4; 5; 6 ] |> fun k -> k * k * pick rng [ 1; 2; 3 ]
  | 2 -> pick rng [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 12 ] * pick rng [ 1; 2; 3; 4; 6; 8 ]
  | _ -> 1 + Random.State.int rng 360

let layout_of_seed ~seed ~index =
  let rng = Random.State.make [| 0xC04F; seed; index |] in
  let n = gen_numel rng in
  let shapes = gen_shapes rng n in
  let chain_len = Random.State.int rng 4 in
  let chain = List.init chain_len (fun _ -> gen_order_by rng n) in
  L.Group_by.make ~chain shapes
