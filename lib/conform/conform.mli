(** Differential conformance across the four executable layout semantics.

    For each layout, the harness evaluates every point (exhaustively when
    the space is small, seeded random samples otherwise) through:

    - the reference integer interpreter
      ({!Lego_layout.Group_by.apply_ints} / [inv_ints]);
    - the simplified symbolic expressions
      ({!Lego_symbolic.Sym.apply} / [inv] under the layout's range
      environment), evaluated with floor semantics;
    - the C backend's emitted text, re-parsed by {!Cexpr} and evaluated
      with C's truncating division (skipped — and counted — when
      {!Lego_codegen.C_printer.guard_nonneg} cannot certify the
      expressions, since the backend would refuse to emit them);
    - the MLIR backend's emitted functions, executed by
      {!Lego_mlirsim.Minterp}.

    All four must agree, the forward map must be bijective, and [inv]
    must invert [apply].  Any disagreement is minimized with {!Shrink}
    and reported with a copy-pasteable reproduction. *)

type mismatch = {
  stage : string;
      (** Which check failed, e.g. ["symbolic-apply"], ["c-inv"],
          ["interp-roundtrip"], ["exception"]. *)
  detail : string;  (** Human-readable point / expected / got. *)
}

type outcome = {
  points : int;  (** Points actually evaluated. *)
  c_checked : bool;
      (** False when the non-negativity guard refused the C path. *)
  mismatch : mismatch option;  (** First disagreement found, if any. *)
}

val check_layout :
  ?max_points:int -> ?sample_seed:int -> Lego_layout.Group_by.t -> outcome
(** Cross-check one layout.  Exhaustive (with a bijectivity check) when
    [numel <= max_points] (default 2048); otherwise [max_points] seeded
    samples, deterministic in [sample_seed]. *)

type failure = {
  origin : string;  (** ["gallery: <name>"] or ["random layout #k"]. *)
  repro : string option;  (** Command line reproducing the failure. *)
  layout : Lego_layout.Group_by.t;  (** Original failing layout. *)
  shrunk : Lego_layout.Group_by.t;  (** Minimized failing layout. *)
  mismatch : mismatch;  (** Disagreement on the {e shrunk} layout. *)
}

type report = {
  layouts : int;
  points : int;
  c_skipped : int;  (** Layouts whose C path the guard refused. *)
  failures : failure list;
  seconds : float;
  budget_exhausted : bool;
      (** True when the time budget cut random generation short. *)
}

val run :
  ?gallery:bool ->
  ?random:int ->
  ?seed:int ->
  ?max_points:int ->
  ?budget_s:float ->
  ?progress:(string -> unit) ->
  unit ->
  report
(** [run ()] checks the {!Corpus} gallery (unless [gallery:false]) and
    then [random] (default 200) generated layouts from [seed] (default
    42), stopping early — with [budget_exhausted] set — once [budget_s]
    seconds (default unlimited) have elapsed.  [progress] receives a line
    per detected failure before shrinking starts. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
(** Summary plus every failure; one line per count when clean. *)
