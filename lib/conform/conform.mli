(** Differential conformance across the four executable layout semantics.

    For each layout, the harness evaluates every point (exhaustively when
    the space is small, seeded random samples otherwise) through:

    - the reference integer interpreter
      ({!Lego_layout.Group_by.apply_ints} / [inv_ints]);
    - the simplified symbolic expressions
      ({!Lego_symbolic.Sym.apply} / [inv] under the layout's range
      environment), evaluated with floor semantics;
    - the C backend's emitted text, re-parsed by {!Cexpr} and evaluated
      with C's truncating division (skipped — and counted — when
      {!Lego_codegen.C_printer.guard_nonneg} cannot certify the
      expressions, since the backend would refuse to emit them);
    - the MLIR backend's emitted functions, executed by
      {!Lego_mlirsim.Minterp};
    - the affine F₂ form ({!Lego_f2.Linear.of_layout}) and its matrix
      inverse, when the layout is in the bit-linear family (checked —
      and counted — only there; a singular matrix on one of these
      always-bijective layouts is reported as a mismatch in its own
      right).

    All semantics must agree, the forward map must be bijective, and
    [inv] must invert [apply].  Any disagreement is minimized with
    {!Shrink} and reported with a copy-pasteable reproduction. *)

type mismatch = {
  stage : string;
      (** Which check failed, e.g. ["symbolic-apply"], ["c-inv"],
          ["interp-roundtrip"], ["exception"]. *)
  detail : string;  (** Human-readable point / expected / got. *)
}

type outcome = {
  points : int;  (** Points actually evaluated. *)
  c_checked : bool;
      (** False when the non-negativity guard refused the C path. *)
  f2_checked : bool;
      (** True when the layout compiled to an affine F₂ form and the
          ["f2-apply"] / ["f2-inv"] legs ran at every point. *)
  mismatch : mismatch option;  (** First disagreement found, if any. *)
}

val check_layout :
  ?max_points:int -> ?sample_seed:int -> Lego_layout.Group_by.t -> outcome
(** Cross-check one layout.  Exhaustive (with a bijectivity check) when
    [numel <= max_points] (default 2048); otherwise [max_points] seeded
    samples, deterministic in [sample_seed]. *)

val gallery_sample_seed : string -> int
(** The point-sampling seed {!run} uses for the gallery layout of that
    name — a pure function of the name, so a re-run (with or without the
    gallery, at any [jobs]) samples identical points. *)

val random_sample_seed : seed:int -> index:int -> int
(** The point-sampling seed {!run} uses for random layout [index] of
    stream [seed] — a pure function of [(seed, index)], matching what a
    [CONFORM_SEED=seed CONFORM_ITERS=index+1] reproduction samples. *)

val algebra_sample_seed : seed:int -> index:int -> int
(** The point-sampling seed {!run} uses for algebra term [index] of
    stream [seed] ({!Lgen.algebra_layout_of_seed}), matching a
    [CONFORM_SEED=seed CONFORM_ALGEBRA=index+1] reproduction. *)

type failure = {
  origin : string;  (** ["gallery: <name>"] or ["random layout #k"]. *)
  repro : string option;  (** Command line reproducing the failure. *)
  layout : Lego_layout.Group_by.t;  (** Original failing layout. *)
  shrunk : Lego_layout.Group_by.t;  (** Minimized failing layout. *)
  mismatch : mismatch;  (** Disagreement on the {e shrunk} layout. *)
}

type report = {
  layouts : int;
  points : int;
  c_skipped : int;  (** Layouts whose C path the guard refused. *)
  f2_covered : int;  (** Layouts the F₂ leg covered. *)
  failures : failure list;
  seconds : float;
  budget_exhausted : bool;
      (** True when the time budget cut random generation short. *)
}

val run :
  ?gallery:bool ->
  ?random:int ->
  ?algebra:int ->
  ?seed:int ->
  ?max_points:int ->
  ?budget_s:float ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  unit ->
  report
(** [run ()] checks the {!Corpus} gallery (unless [gallery:false]), then
    [random] (default 200) generated layouts from [seed] (default 42),
    then [algebra] (default 0) prover-discharged layout-algebra terms
    ({!Lgen.algebra_layout_of_seed}) from the same seed, stopping
    early — with [budget_exhausted] set — once [budget_s] seconds
    (default unlimited) have elapsed.  The budget is checked before
    {e every} layout, gallery included.  [progress] receives a line per
    detected failure before shrinking starts.

    [jobs] (default 1) fans layouts out across that many domains of a
    {!Lego_exec.Exec} pool.  Each layout is generated, checked, and
    shrunk entirely within one domain, seeded purely by its identity
    ({!gallery_sample_seed} / {!random_sample_seed}), and results are
    merged in submission order — so the report (counts, failures, their
    order, shrunk layouts, repro lines) is bit-identical for any [jobs].
    Only [seconds], and which layouts a too-small [budget_s] cuts, can
    vary.  [progress] may be called from any domain, concurrently. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
(** Summary plus every failure; one line per count when clean. *)
