(** Seeded random layout generator for the conformance harness.

    Generates structurally valid [GroupBy] layouts — random grouping
    hierarchies with chains of [OrderBy]s over [RegP] and gallery [GenP]
    pieces — with every shape constraint satisfied by construction
    (pieces only placed on element counts they fit: squares for
    anti-diagonals, powers of four for Morton/Hilbert, power-of-two
    columns for swizzles).  Element counts are kept small (a few hundred)
    so every generated layout can be checked exhaustively.

    Generation is deterministic: the same [(seed, index)] always yields
    the same layout, which is what makes printed reproductions
    ([CONFORM_SEED=... layout #k]) work. *)

val layout_of_seed : seed:int -> index:int -> Lego_layout.Group_by.t
(** The [index]-th layout of the stream identified by [seed].  Each index
    draws from an independent PRNG state, so a reproduction needs only
    the pair, not the whole stream prefix. *)
