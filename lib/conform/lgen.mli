(** Seeded random layout generator for the conformance harness.

    Generates structurally valid [GroupBy] layouts — random grouping
    hierarchies with chains of [OrderBy]s over [RegP] and gallery [GenP]
    pieces — with every shape constraint satisfied by construction
    (pieces only placed on element counts they fit: squares for
    anti-diagonals, powers of four for Morton/Hilbert, power-of-two
    columns for swizzles).  Element counts are kept small (a few hundred)
    so every generated layout can be checked exhaustively.

    Generation is deterministic: the same [(seed, index)] always yields
    the same layout, which is what makes printed reproductions
    ([CONFORM_SEED=... layout #k]) work. *)

val layout_of_seed : seed:int -> index:int -> Lego_layout.Group_by.t
(** The [index]-th layout of the stream identified by [seed].  Each index
    draws from an independent PRNG state, so a reproduction needs only
    the pair, not the whole stream prefix. *)

val algebra_layout_of_seed : seed:int -> index:int -> Lego_layout.Group_by.t
(** The [index]-th layout of the {e algebra} stream identified by
    [seed] — an independent stream from {!layout_of_seed}.  Each term
    starts from a random power-of-two strided bijection and applies up
    to two algebra operators (logical divide by a sub-tile of its own
    modes, logical product with an identity, composition with a fresh
    bijection), every side condition discharged by the prover; the terms
    are admissible by construction because all extents and strides stay
    powers of two.  A third of the stream additionally composes with a
    random gallery piece, exercising the composite (GenP) fallback of
    {!Lego_symbolic.Discharge.compose_pieces}. *)
