type t =
  | Int of int
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Mod of t * t
  | Le of t * t
  | Lt of t * t
  | Eq of t * t
  | Cond of t * t * t
  | Isqrt of t

(* ---- Tokenizer -------------------------------------------------------- *)

type token =
  | TInt of int
  | TIdent of string
  | TPlus
  | TMinus
  | TStar
  | TSlash
  | TPercent
  | TLParen
  | TRParen
  | TQuestion
  | TColon
  | TLe
  | TLt
  | TEqEq

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let digits = String.sub src start (!i - start) in
      match int_of_string_opt digits with
      | Some v -> push (TInt v)
      | None -> fail "integer literal %s does not fit" digits
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      push (TIdent (String.sub src start (!i - start)))
    end
    else begin
      (match c with
      | '+' -> push TPlus
      | '-' -> push TMinus
      | '*' -> push TStar
      | '/' -> push TSlash
      | '%' -> push TPercent
      | '(' -> push TLParen
      | ')' -> push TRParen
      | '?' -> push TQuestion
      | ':' -> push TColon
      | '<' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          incr i;
          push TLe
        end
        else push TLt
      | '=' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          incr i;
          push TEqEq
        end
        else fail "stray '=' at offset %d" !i
      | c -> fail "unexpected character %C at offset %d" c !i);
      incr i
    end
  done;
  List.rev !toks

(* ---- Recursive-descent parser ----------------------------------------- *)

type state = { mutable rest : token list }

let peek s = match s.rest with [] -> None | t :: _ -> Some t

let advance s =
  match s.rest with
  | [] -> fail "unexpected end of expression"
  | t :: rest ->
    s.rest <- rest;
    t

let expect s t what =
  let got = advance s in
  if got <> t then fail "expected %s" what

(* expr   := rel ('?' expr ':' expr)?          (right-assoc ternary)
   rel    := add (('<=' | '<' | '==') add)*
   add    := mul (('+' | '-') mul)*
   mul    := unary (('*' | '/' | '%') unary)*
   unary  := '-' unary | primary
   primary:= int | ident | 'lego_isqrt' '(' expr ')' | '(' expr ')' *)
let rec p_expr s =
  let c = p_rel s in
  match peek s with
  | Some TQuestion ->
    ignore (advance s);
    let a = p_expr s in
    expect s TColon "':'";
    let b = p_expr s in
    Cond (c, a, b)
  | _ -> c

and p_rel s =
  let rec loop acc =
    match peek s with
    | Some TLe ->
      ignore (advance s);
      loop (Le (acc, p_add s))
    | Some TLt ->
      ignore (advance s);
      loop (Lt (acc, p_add s))
    | Some TEqEq ->
      ignore (advance s);
      loop (Eq (acc, p_add s))
    | _ -> acc
  in
  loop (p_add s)

and p_add s =
  let rec loop acc =
    match peek s with
    | Some TPlus ->
      ignore (advance s);
      loop (Add (acc, p_mul s))
    | Some TMinus ->
      ignore (advance s);
      loop (Sub (acc, p_mul s))
    | _ -> acc
  in
  loop (p_mul s)

and p_mul s =
  let rec loop acc =
    match peek s with
    | Some TStar ->
      ignore (advance s);
      loop (Mul (acc, p_unary s))
    | Some TSlash ->
      ignore (advance s);
      loop (Div (acc, p_unary s))
    | Some TPercent ->
      ignore (advance s);
      loop (Mod (acc, p_unary s))
    | _ -> acc
  in
  loop (p_unary s)

and p_unary s =
  match peek s with
  | Some TMinus ->
    ignore (advance s);
    Neg (p_unary s)
  | _ -> p_primary s

and p_primary s =
  match advance s with
  | TInt n -> Int n
  | TIdent name -> (
    match peek s with
    | Some TLParen ->
      if name <> "lego_isqrt" then fail "unknown function %s" name;
      ignore (advance s);
      let a = p_expr s in
      expect s TRParen "')'";
      Isqrt a
    | _ -> Var name)
  | TLParen ->
    let e = p_expr s in
    expect s TRParen "')'";
    e
  | _ -> fail "expected an integer, identifier or '('"

let parse src =
  match
    let s = { rest = tokenize src } in
    let e = p_expr s in
    if s.rest <> [] then fail "trailing tokens after expression";
    e
  with
  | e -> Ok e
  | exception Error msg -> Error msg

(* ---- Evaluation with C semantics -------------------------------------- *)

let rec eval ~env (e : t) =
  match e with
  | Int n -> n
  | Var v -> env v
  | Neg a -> -eval ~env a
  | Add (a, b) -> eval ~env a + eval ~env b
  | Sub (a, b) -> eval ~env a - eval ~env b
  | Mul (a, b) -> eval ~env a * eval ~env b
  | Div (a, b) ->
    (* OCaml's native (/) truncates toward zero — exactly C99. *)
    eval ~env a / eval ~env b
  | Mod (a, b) -> eval ~env a mod eval ~env b
  | Le (a, b) -> if eval ~env a <= eval ~env b then 1 else 0
  | Lt (a, b) -> if eval ~env a < eval ~env b then 1 else 0
  | Eq (a, b) -> if eval ~env a = eval ~env b then 1 else 0
  | Cond (c, a, b) -> if eval ~env c <> 0 then eval ~env a else eval ~env b
  | Isqrt a -> Lego_layout.Domain.int_isqrt (eval ~env a)

let rec to_string (e : t) =
  let bin op a b =
    Printf.sprintf "(%s %s %s)" (to_string a) op (to_string b)
  in
  match e with
  | Int n -> string_of_int n
  | Var v -> v
  | Neg a -> Printf.sprintf "(-%s)" (to_string a)
  | Add (a, b) -> bin "+" a b
  | Sub (a, b) -> bin "-" a b
  | Mul (a, b) -> bin "*" a b
  | Div (a, b) -> bin "/" a b
  | Mod (a, b) -> bin "%" a b
  | Le (a, b) -> bin "<=" a b
  | Lt (a, b) -> bin "<" a b
  | Eq (a, b) -> bin "==" a b
  | Cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (to_string c) (to_string a) (to_string b)
  | Isqrt a -> Printf.sprintf "lego_isqrt(%s)" (to_string a)
