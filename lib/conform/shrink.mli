(** Greedy shrinking of failing layouts.

    Given a predicate that holds on a failing layout (e.g. "some backend
    disagrees with the reference interpreter"), repeatedly tries
    structure-removing rewrites — dropping a chained [OrderBy], replacing
    a piece with the identity row layout of the same size, flattening the
    grouping hierarchy — and keeps the first rewrite that still fails.
    The result is a (locally) minimal reproduction to print for the
    user. *)

val minimize :
  ?budget:int ->
  (Lego_layout.Group_by.t -> bool) ->
  Lego_layout.Group_by.t ->
  Lego_layout.Group_by.t
(** [minimize still_fails g] greedily shrinks [g] while [still_fails]
    holds, evaluating the predicate at most [budget] (default 200) times.
    [still_fails g] itself is assumed true and is not re-checked. *)
