module L = Lego_layout

(* The identity layout of [m] elements: a rank-1 RegP. *)
let flat_piece m = L.Piece.reg ~dims:[ m ] ~sigma:(L.Sigma.identity 1)

let set_nth xs i x = List.mapi (fun k y -> if k = i then x else y) xs

(* Candidate shrinks, ordered biggest-step first.  Every candidate
   preserves the element count, so it stays a well-formed layout. *)
let candidates g =
  let shapes = L.Group_by.shapes g in
  let chain = L.Group_by.chain g in
  let n = L.Group_by.numel g in
  let drop_order_by =
    List.mapi
      (fun i _ ->
        L.Group_by.make ~chain:(List.filteri (fun j _ -> j <> i) chain) shapes)
      chain
  in
  let flatten_group =
    if shapes <> [ [ n ] ] then [ L.Group_by.make ~chain [ [ n ] ] ] else []
  in
  let simplify_piece =
    List.concat
      (List.mapi
         (fun i o ->
           let pieces = L.Order_by.pieces o in
           List.concat
             (List.mapi
                (fun j p ->
                  let flat = flat_piece (L.Piece.numel p) in
                  if L.Piece.equal p flat then []
                  else
                    [
                      L.Group_by.make
                        ~chain:
                          (set_nth chain i
                             (L.Order_by.make (set_nth pieces j flat)))
                        shapes;
                    ])
                pieces))
         chain)
  in
  drop_order_by @ flatten_group @ simplify_piece

let minimize ?(budget = 200) still_fails g =
  let left = ref budget in
  let try_candidate c =
    !left > 0
    &&
    begin
      decr left;
      (* A candidate may still blow up inside the predicate (that can be
         the very bug being shrunk); treat an exception as "still
         fails" only if the caller's predicate says so — here we guard
         so shrinking never masks the original failure. *)
      match still_fails c with
      | fails -> fails
      | exception _ -> false
    end
  in
  let rec go g =
    match List.find_opt try_candidate (candidates g) with
    | Some c -> go c
    | None -> g
  in
  go g
