(** C semantics for the C backend's emitted index expressions.

    {!Lego_codegen.C_printer.expr} renders an index expression as C
    source; this module parses exactly that output back and evaluates it
    with C's arithmetic — [/] and [%] truncate toward zero (C99 6.5.5),
    unlike the algebra's floor semantics.  The conformance harness runs
    both sides on concrete points, so any place where truncation would
    change a result (and {!Lego_codegen.C_printer.guard_nonneg} failed to
    flag it) shows up as a mismatch. *)

type t =
  | Int of int
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t  (** truncating, like C [/] *)
  | Mod of t * t  (** truncating, like C [%] *)
  | Le of t * t
  | Lt of t * t
  | Eq of t * t
  | Cond of t * t * t  (** [c ? a : b]; only the taken branch evaluates *)
  | Isqrt of t  (** the [lego_isqrt] helper *)

val parse : string -> (t, string) result
(** Parse a C integer expression over [int] variables: literals,
    identifiers, [+ - * / %], comparisons [<= < ==], [?:], parentheses,
    unary minus and [lego_isqrt(e)] calls — the exact language
    {!Lego_codegen.C_printer} emits. *)

val eval : env:(string -> int) -> t -> int
(** Evaluate with C semantics: division/modulo truncate toward zero
    (OCaml's native [/] and [mod]), comparisons yield 0/1.  Raises
    [Division_by_zero], and [Invalid_argument] for [lego_isqrt] of a
    negative value. *)

val to_string : t -> string
(** Debug printer (fully parenthesized; not necessarily the original
    text). *)
