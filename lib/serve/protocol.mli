(** Wire protocol of the layout-compile service (DESIGN.md §15).

    {b Framing.}  A connection is a sequence of frames in each
    direction; one client frame carries one {e batch} (a JSON array of
    request objects), one server frame carries the response array, same
    length, {b submission order} — response [i] answers request [i]
    whatever parallelism served the batch.  A frame is a 4-byte
    big-endian byte length followed by that many bytes of JSON text.
    Frames above {!max_frame_bytes} are rejected (a corrupt or hostile
    length prefix must not allocate unbounded memory).

    {b Requests.}  Every request object carries an ["op"] field:
    - [{"op":"compile","layout":L,"emit":[...],"device":D}] — parse the
      layout expression, return its canonical form, fingerprint,
      simplified symbolic offset and generated C/Triton/MLIR text.
      ["emit"] (optional) selects backends for the response; the store
      always keeps all of them.
    - [{"op":"tune","slot":S,"device":D,"budget":N,"top":K,...}] — run
      (or answer from the store) the autotune search for a kernel slot
      under a device preset.
    - [{"op":"fingerprint","layout":L,"device":D}] — the layout's
      canonical fingerprint and content-address store key, for
      inspecting and correlating cache entries by hand.
    - [{"op":"stats"}] — deterministic server counters (no wall-clock).
    - [{"op":"shutdown"}] — reply, then stop the server cleanly.

    {b Responses} are objects with ["ok"] first: [true] followed by the
    op's payload fields, or [false] with ["error"]. *)

val max_frame_bytes : int
(** 64 MiB. *)

val write_frame : Unix.file_descr -> Json.t -> unit
(** Serialize and send one frame (handles short writes). *)

val read_frame : Unix.file_descr -> (Json.t option, string) result
(** [Ok None] on orderly EOF before a frame starts; [Error] on a
    truncated frame, an oversized length prefix, or unparseable JSON. *)

type tune_params = {
  slot : string;
  device : string;  (** {!Lego_gpusim.Device.presets} key, default "a100". *)
  budget : int option;
  top : int option;
  seed : int;
  oracle : bool;
  conform : bool;  (** Winner conformance check (default off: latency). *)
}

type request =
  | Compile of { layout : string; emit : string list; device : string }
  | Tune of tune_params
  | Fingerprint of { layout : string; device : string }
  | Stats
  | Shutdown

val request_of_json : Json.t -> (request, string) result
val json_of_request : request -> Json.t
(** Inverse of {!request_of_json} (used by the client and tests). *)

val error_response : string -> Json.t
(** [{"ok":false,"error":msg}]. *)
