(* The daemon core.  handle_batch is the entire service; everything
   else (socket loop, oneshot self-test, bench) is plumbing around it.

   Determinism discipline (the byte-identity contract of the .mli):
   phase 1 fans the pure requests (compile, fingerprint) over the Exec
   pool — store reads only, no mutation anywhere; phase 2 walks the
   drafts sequentially in submission order and is the only place that
   touches counters, the store, the tune cache, or runs a search.
   Tune.search spins up its own pool, so it must run here in the
   sequential walk, never inside a pool task. *)

module G = Lego_gpusim
module T = Lego_tune
module Exec = Lego_exec.Exec

type counters = {
  mutable requests : int;
  mutable batches : int;
  mutable compile_hits : int;
  mutable compile_misses : int;
  mutable tune_hits : int;
  mutable tune_misses : int;
  mutable fingerprints : int;
  mutable searches : int;  (* actual Tune.search invocations *)
  mutable errors : int;
}

type t = {
  store : Store.t;
  load : Store.load;
  cache : T.Cache.t;
  jobs : int;
  pool : Exec.pool Lazy.t;  (* forced in the serving domain *)
  slots : (string, (T.Slot.t, string) result) Hashtbl.t;
      (* (name@preset) -> constructed slot; transpose slots carry
         multi-MB arenas, so build each at most once per server *)
  c : counters;
  mutable stopped : bool;
  mutable released : bool;
}

(* ---- store record shapes ---------------------------------------------- *)

let sim_key ~identity ~fp_hex ~rung = Store.key [ "sim"; identity; fp_hex; rung ]

let sim_value ~identity ~fp_hex ~rung (s : T.Slot.sim) =
  Json.Obj
    [
      ("kind", Json.Str "sim");
      ("slot", Json.Str identity);
      ("fp", Json.Str fp_hex);
      ("rung", Json.Str rung);
      ("time_s", Json.Float s.T.Slot.time_s);
      ("s_accesses", Json.Float s.T.Slot.s_accesses);
      ("s_cycles", Json.Float s.T.Slot.s_cycles);
      ("g_txns", Json.Float s.T.Slot.g_txns);
    ]

(* Re-inflate persisted sim records into the tune cache, so even a tune
   request with a never-seen search shape reuses every simulator result
   a previous run paid for. *)
let warm_start store cache =
  Store.iter store (fun ~key:_ v ->
      if Json.mem_string "kind" v = Some "sim" then
        match
          ( Json.mem_string "slot" v,
            Json.mem_string "fp" v,
            Json.mem_string "rung" v,
            Json.mem_float "time_s" v,
            Json.mem_float "s_accesses" v,
            Json.mem_float "s_cycles" v,
            Json.mem_float "g_txns" v )
        with
        | ( Some slot,
            Some fp_hex,
            Some rung,
            Some time_s,
            Some s_accesses,
            Some s_cycles,
            Some g_txns ) -> (
          match Digest.from_hex fp_hex with
          | exception _ -> ()  (* unreadable key: skip, never crash *)
          | fp_digest ->
            let e = T.Cache.ensure cache ~slot ~fp_digest in
            let sim =
              { T.Slot.time_s; s_accesses; s_cycles; g_txns }
            in
            (match rung with
            | "sampled" -> if e.T.Cache.sampled = None then e.T.Cache.sampled <- Some sim
            | "full" -> if e.T.Cache.full = None then e.T.Cache.full <- Some sim
            | _ -> ()))
        | _ -> ())

(* Persist every sim result the cache holds; Store.put drops identical
   re-puts, so warm-started entries cost nothing on disk. *)
let flush_sims t =
  T.Cache.iter t.cache (fun ~slot ~fp_digest e ->
      let fp_hex = Digest.to_hex fp_digest in
      let put rung s =
        Store.put t.store
          ~key:(sim_key ~identity:slot ~fp_hex ~rung)
          (sim_value ~identity:slot ~fp_hex ~rung s)
      in
      Option.iter (put "sampled") e.T.Cache.sampled;
      Option.iter (put "full") e.T.Cache.full)

(* ---- create ------------------------------------------------------------ *)

let create ?db ?(jobs = 1) () =
  if jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  let store, load = Store.open_ ?path:db () in
  let cache = T.Cache.create () in
  warm_start store cache;
  {
    store;
    load;
    cache;
    jobs;
    pool = lazy (Exec.create ~jobs ());
    slots = Hashtbl.create 8;
    c =
      {
        requests = 0;
        batches = 0;
        compile_hits = 0;
        compile_misses = 0;
        tune_hits = 0;
        tune_misses = 0;
        fingerprints = 0;
        searches = 0;
        errors = 0;
      };
    stopped = false;
    released = false;
  }

let load t = t.load
let jobs t = t.jobs
let store t = t.store
let stopped t = t.stopped

let shutdown t =
  if not t.released then begin
    t.released <- true;
    Store.close t.store;
    if Lazy.is_val t.pool then Exec.shutdown (Lazy.force t.pool)
  end

(* ---- request helpers --------------------------------------------------- *)

let device_key name =
  let k = String.lowercase_ascii name in
  if G.Device.find k = None then
    Error
      (Printf.sprintf "unknown device %S (known: %s)" name
         (String.concat ", " (List.map fst G.Device.presets)))
  else Ok k

let slot_for t ~name ~device =
  let memo_key = name ^ "@" ^ device in
  match Hashtbl.find_opt t.slots memo_key with
  | Some r -> r
  | None ->
    let r =
      match G.Device.find device with
      | None -> Error (Printf.sprintf "unknown device %S" device)
      | Some d -> (
        match T.Slot.find ~device:d name with
        | Some s -> Ok s
        | None ->
          Error
            (Printf.sprintf "unknown slot %S (known: %s)" name
               (String.concat ", "
                  (List.map (fun s -> s.T.Slot.name) (T.Slot.all ())))))
    in
    Hashtbl.replace t.slots memo_key r;
    r

let compile_key ~fp ~device = Store.key [ "compile"; fp; device ]

(* The full compile artifact, as stored.  Pure. *)
let compile_value ~device g =
  let fp = T.Fingerprint.of_layout g in
  let offset = Lego_symbolic.Sym.apply g in
  ( fp,
    Json.Obj
      [
        ("kind", Json.Str "compile");
        ("fingerprint", Json.Str fp);
        ("digest", Json.Str (Digest.to_hex (Digest.string fp)));
        ("device", Json.Str device);
        ("numel", Json.Int (Lego_layout.Group_by.numel g));
        ("simplified", Json.Str (Lego_symbolic.Expr.to_string offset));
        ("c", Json.Str (Lego_codegen.C_printer.expr offset));
        ("triton", Json.Str (Lego_codegen.Triton_printer.expr offset));
        ("mlir", Json.Str (Lego_codegen.Mlir_gen.layout_apply_func ~name:"apply" g));
      ] )

type compile_draft =
  | C_hit of string * Json.t  (* store key, stored value *)
  | C_new of string * Json.t  (* store key, freshly computed value *)
  | C_err of string

(* Phase-1 work: parse, validate, look up or compute.  Store reads
   only — a second identical compile in the same batch also computes
   C_new here; the sequential walk converts it to a hit. *)
let compile_draft t (layout : string) (device : string) =
  match device_key device with
  | Error e -> C_err e
  | Ok device -> (
    match Lego_lang.Elab.layout_of_string layout with
    | Error e -> C_err (Printf.sprintf "layout: %s" e)
    | Ok g -> (
      let fp = T.Fingerprint.of_layout g in
      let key = compile_key ~fp ~device in
      match Store.get t.store key with
      | Some v -> C_hit (key, v)
      | None ->
        let _, v = compile_value ~device g in
        C_new (key, v)))

(* Project the stored artifact into a response, honouring "emit". *)
let compile_response ~emit ~key ~cached value =
  let fields = match value with Json.Obj fs -> fs | _ -> [] in
  let want name =
    match emit with
    | [] -> name <> "kind"
    | _ ->
      List.mem name [ "fingerprint"; "digest"; "device"; "numel" ]
      || List.mem name emit
  in
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("op", Json.Str "compile");
       ("key", Json.Str key);
       ("cached", Json.Bool cached);
     ]
    @ List.filter (fun (n, _) -> want n) fields)

let fingerprint_response (layout : string) (device : string) =
  match device_key device with
  | Error e -> Protocol.error_response e
  | Ok device -> (
    match Lego_lang.Elab.layout_of_string layout with
    | Error e -> Protocol.error_response (Printf.sprintf "layout: %s" e)
    | Ok g ->
      let fp = T.Fingerprint.of_layout g in
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("op", Json.Str "fingerprint");
          ("fingerprint", Json.Str fp);
          ("digest", Json.Str (Digest.to_hex (Digest.string fp)));
          ("device", Json.Str device);
          ("key", Json.Str (compile_key ~fp ~device));
        ])

(* ---- tune -------------------------------------------------------------- *)

let tune_options t (p : Protocol.tune_params) =
  let d = T.Tune.default_options in
  {
    d with
    T.Tune.budget = Option.value ~default:d.T.Tune.budget p.Protocol.budget;
    top = Option.value ~default:d.T.Tune.top p.Protocol.top;
    seed = p.Protocol.seed;
    jobs = t.jobs;
    conform = p.Protocol.conform;
    oracle = p.Protocol.oracle;
  }

(* The content address of one search: slot identity (name, device,
   dtype) plus every option that can change the reported result.
   [jobs] is deliberately absent — results are bit-identical at any
   parallelism, that's the whole point. *)
let tune_store_key slot (o : T.Tune.options) =
  Store.key
    [
      "tune";
      T.Slot.identity slot;
      Printf.sprintf "budget=%d;top=%d;sample=%d;seed=%d;oracle=%b;composed=%b;scale=%b;conform=%b"
        o.T.Tune.budget o.T.Tune.top o.T.Tune.sample o.T.Tune.seed
        o.T.Tune.oracle o.T.Tune.composed o.T.Tune.scale o.T.Tune.conform;
    ]

let tune_value slot (r : T.Tune.result) =
  let w = r.T.Tune.winner in
  let sim_fields =
    match w.T.Tune.sim with
    | None -> []
    | Some s ->
      [
        ("time_s", Json.Float s.T.Slot.time_s);
        ("s_cycles", Json.Float s.T.Slot.s_cycles);
        ("s_accesses", Json.Float s.T.Slot.s_accesses);
        ("g_txns", Json.Float s.T.Slot.g_txns);
      ]
  in
  let conflict_free =
    T.Predict.conflict_free w.T.Tune.static_score
    && ((not slot.T.Slot.full_warps)
       ||
       match w.T.Tune.sim with
       | Some s -> T.Slot.sim_conflict_free ~device:slot.T.Slot.device s
       | None -> false)
  in
  Json.Obj
    ([
       ("kind", Json.Str "tune");
       ("slot", Json.Str (T.Slot.identity slot));
       ("winner", Json.Str w.T.Tune.fingerprint);
     ]
    @ sim_fields
    @ [
        ("conflict_free", Json.Bool conflict_free);
        ("explored", Json.Int r.T.Tune.explored);
        ("space_size", Json.Int r.T.Tune.space_size);
        ("exhaustive", Json.Bool r.T.Tune.exhaustive);
        ("oracle_scored", Json.Int r.T.Tune.oracle_scored);
        ("sampled_scored", Json.Int r.T.Tune.sampled_scored);
        ("sim_scored", Json.Int r.T.Tune.sim_scored);
        ( "conform_ok",
          match T.Tune.conform_ok r with
          | Some b -> Json.Bool b
          | None -> Json.Null );
      ])

let tune_payload ~key ~cached value =
  let fields = match value with Json.Obj fs -> fs | _ -> [] in
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("op", Json.Str "tune");
       ("key", Json.Str key);
       ("cached", Json.Bool cached);
     ]
    @ List.filter (fun (n, _) -> n <> "kind") fields)

(* Sequential phase only: runs the tuner (which builds its own pool). *)
let handle_tune t (p : Protocol.tune_params) =
  match slot_for t ~name:p.Protocol.slot ~device:(String.lowercase_ascii p.Protocol.device) with
  | Error e ->
    t.c.errors <- t.c.errors + 1;
    Protocol.error_response e
  | Ok slot -> (
    let options = tune_options t p in
    let key = tune_store_key slot options in
    match Store.get t.store key with
    | Some v ->
      (* Warm path: answered from the store — zero simulator
         invocations, [searches] does not move. *)
      t.c.tune_hits <- t.c.tune_hits + 1;
      tune_payload ~key ~cached:true v
    | None ->
      t.c.tune_misses <- t.c.tune_misses + 1;
      t.c.searches <- t.c.searches + 1;
      let r = T.Tune.search ~options ~cache:t.cache slot in
      let v = tune_value slot r in
      Store.put t.store ~key v;
      flush_sims t;
      tune_payload ~key ~cached:false v)

(* ---- stats ------------------------------------------------------------- *)

(* Deliberately wall-clock-free, path-free and jobs-free: a stats
   response is a pure function of the request history, so it cannot
   break the byte-identity contract (responses must match across -j,
   so even the pool width stays out). *)
let stats_json t =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "stats");
      ("version", Json.Str Store.version);
      ("requests", Json.Int t.c.requests);
      ("batches", Json.Int t.c.batches);
      ("compile_hits", Json.Int t.c.compile_hits);
      ("compile_misses", Json.Int t.c.compile_misses);
      ("tune_hits", Json.Int t.c.tune_hits);
      ("tune_misses", Json.Int t.c.tune_misses);
      ("searches", Json.Int t.c.searches);
      ("fingerprints", Json.Int t.c.fingerprints);
      ("errors", Json.Int t.c.errors);
      ("store_entries", Json.Int (Store.length t.store));
      ("cache_entries", Json.Int (T.Cache.length t.cache));
    ]

(* ---- batch ------------------------------------------------------------- *)

type draft =
  | D_compile of string list * compile_draft  (* emit selection, draft *)
  | D_fingerprint of Json.t  (* finished response (pure) *)
  | D_seq of Protocol.request  (* tune / stats / shutdown: phase 2 *)
  | D_error of string

let phase1 t = function
  | Error e -> D_error e
  | Ok (Protocol.Compile { layout; emit; device }) ->
    D_compile (emit, compile_draft t layout device)
  | Ok (Protocol.Fingerprint { layout; device }) ->
    D_fingerprint (fingerprint_response layout device)
  | Ok r -> D_seq r

let phase2 t = function
  | D_error e ->
    t.c.requests <- t.c.requests + 1;
    t.c.errors <- t.c.errors + 1;
    Protocol.error_response e
  | D_fingerprint j ->
    t.c.requests <- t.c.requests + 1;
    if Json.mem_bool "ok" j = Some true then
      t.c.fingerprints <- t.c.fingerprints + 1
    else t.c.errors <- t.c.errors + 1;
    j
  | D_compile (emit, draft) -> (
    t.c.requests <- t.c.requests + 1;
    match draft with
    | C_err e ->
      t.c.errors <- t.c.errors + 1;
      Protocol.error_response e
    | C_hit (key, v) ->
      t.c.compile_hits <- t.c.compile_hits + 1;
      compile_response ~emit ~key ~cached:true v
    | C_new (key, v) -> (
      (* An earlier request in this batch (or a racing draft of the
         same layout) may have stored it already — re-check now that
         we are sequential, so duplicates inside one batch read as
         hits regardless of -j. *)
      match Store.get t.store key with
      | Some stored ->
        t.c.compile_hits <- t.c.compile_hits + 1;
        compile_response ~emit ~key ~cached:true stored
      | None ->
        Store.put t.store ~key v;
        t.c.compile_misses <- t.c.compile_misses + 1;
        compile_response ~emit ~key ~cached:false v))
  | D_seq (Protocol.Tune p) ->
    t.c.requests <- t.c.requests + 1;
    handle_tune t p
  | D_seq Protocol.Stats ->
    t.c.requests <- t.c.requests + 1;
    stats_json t
  | D_seq Protocol.Shutdown ->
    t.c.requests <- t.c.requests + 1;
    t.stopped <- true;
    Json.Obj
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "shutdown");
        ("stopping", Json.Bool true);
      ]
  | D_seq (Protocol.Compile _) | D_seq (Protocol.Fingerprint _) ->
    assert false (* handled in phase 1 *)

let handle_batch t batch =
  match batch with
  | Json.List reqs ->
    t.c.batches <- t.c.batches + 1;
    let parsed = Array.of_list (List.map Protocol.request_of_json reqs) in
    let drafts =
      if Array.length parsed <= 1 then Array.map (phase1 t) parsed
      else Exec.map ~pool:(Lazy.force t.pool) parsed (phase1 t)
    in
    let n = Array.length drafts in
    let out = Array.make n Json.Null in
    for i = 0 to n - 1 do
      out.(i) <- phase2 t drafts.(i)
    done;
    Store.flush t.store;
    Json.List (Array.to_list out)
  | _ -> Protocol.error_response "batch must be a JSON array of requests"

(* ---- socket loop ------------------------------------------------------- *)

let serve t ~socket =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close srv with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind srv (Unix.ADDR_UNIX socket);
      Unix.listen srv 16;
      while not t.stopped do
        let conn, _ = Unix.accept srv in
        (* One client at a time: batches are the concurrency unit, the
           pool is the parallelism.  A broken connection (EPIPE, reset,
           bad framing) drops that client and keeps serving. *)
        Fun.protect
          ~finally:(fun () ->
            try Unix.close conn with Unix.Unix_error _ -> ())
          (fun () ->
            try
              let continue = ref true in
              while !continue && not t.stopped do
                match Protocol.read_frame conn with
                | Ok None -> continue := false
                | Ok (Some batch) ->
                  Protocol.write_frame conn (handle_batch t batch)
                | Error e ->
                  (* Framing is desynchronized: answer once, hang up. *)
                  (try
                     Protocol.write_frame conn
                       (Json.List [ Protocol.error_response e ])
                   with _ -> ());
                  continue := false
              done
            with Unix.Unix_error _ -> ())
      done)
