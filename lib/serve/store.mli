(** Content-addressed persistent store (DESIGN.md §15).

    The compile pipeline is a pure function of its inputs, so its
    results are addressed by a digest of those inputs: {!key} hashes a
    canonical part list — always implicitly prefixed by the format
    {!version} — into a hex MD5 that names the entry.  Three entry
    kinds share the namespace (disambiguated by a kind tag inside the
    key parts {e and} the value): [compile] results (simplified form +
    generated code per backend), [tune] winners (layout, cost, search
    shape), and [sim] records (one simulator rung result for one
    (slot identity, layout) pair — the persistent half of
    {!Lego_tune.Cache}, warm-starting it across runs).

    {b On disk}: an append-only log — a fixed header line, then
    records of [4-byte big-endian length | payload | 16-byte MD5 of
    payload], each payload the JSON [{"k":hex,"v":value}].  Updates
    append (last record wins at load), so a crash can only damage the
    tail.  {!open_} replays the log; at the first bad record (short
    read, absurd length, checksum or JSON mismatch) it stops, keeps
    everything before it, and {b truncates} the file there so later
    appends stay readable — a corrupt db degrades to a shorter one,
    never a crash.  A foreign or damaged header degrades to an empty
    store (cold start), rewriting the file.

    In memory it is a hash table; [get] is safe from parallel readers
    {e while no writer runs} (the server writes only between its
    parallel sections, the same discipline as {!Lego_tune.Cache}). *)

type t

val version : string
(** Format/tool version baked into every {!key} — bump it and every
    old entry silently misses (the upgrade story for cost-model or
    codegen changes). *)

val header_line : string
(** First bytes of every db file (["LEGO-STORE v1\n"]); anything else
    is a foreign file and cold-starts. *)

type load = Fresh | Loaded of int | Recovered of int * string
    (** [Fresh]: new or memory-only db.  [Loaded n]: n entries, clean.
        [Recovered (n, why)]: n entries salvaged before corruption
        ([why] says what was wrong); the file was truncated to the
        salvaged prefix. *)

val open_ : ?path:string -> unit -> t * load
(** No [path] = memory-only (tests, ephemeral servers).  With [path],
    loads (or creates) the db file; the directory must exist or be
    creatable. *)

val key : string list -> string
(** Hex MD5 of the canonical encoding of [version :: parts].  Parts
    are length-delimited before hashing, so no two distinct part lists
    collide by concatenation. *)

val get : t -> string -> Json.t option
val mem : t -> string -> bool

val put : t -> key:string -> Json.t -> unit
(** Insert/overwrite, appending to the log when persistent.  A [put]
    whose value equals the stored one is a no-op (no disk append). *)

val length : t -> int
val iter : t -> (key:string -> Json.t -> unit) -> unit
val path : t -> string option

val flush : t -> unit
(** Flush buffered appends to the OS. *)

val close : t -> unit
(** Flush and close the log.  Idempotent; [put] after [close] raises. *)

val default_path : unit -> string
(** [$XDG_CACHE_HOME/lego/store.db] (or [~/.cache/lego/store.db]) —
    the daemon's default db location. *)
