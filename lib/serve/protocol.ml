(* Length-prefixed JSON framing + the request schema.  See the .mli and
   DESIGN.md §15 for the contract. *)

let max_frame_bytes = 1 lsl 26

(* ---- framing ---------------------------------------------------------- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd bytes !off (len - !off) in
    if n = 0 then failwith "Protocol.write_frame: zero-length write";
    off := !off + n
  done

(* Read exactly [len] bytes; [`Eof n] reports how many arrived before
   the stream ended. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    let n = Unix.read fd buf !off (len - !off) in
    if n = 0 then eof := true else off := !off + n
  done;
  if !eof then `Eof !off else `Full buf

let write_frame fd json =
  let payload = Bytes.of_string (Json.to_string json) in
  let len = Bytes.length payload in
  if len > max_frame_bytes then
    invalid_arg
      (Printf.sprintf "Protocol.write_frame: %d bytes exceeds max frame" len);
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int len);
  write_all fd header;
  write_all fd payload

let read_frame fd =
  match read_exact fd 4 with
  | `Eof 0 -> Ok None
  | `Eof n -> Error (Printf.sprintf "truncated frame header (%d of 4 bytes)" n)
  | `Full header -> (
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame_bytes then
      Error (Printf.sprintf "bad frame length %d" len)
    else
      match read_exact fd len with
      | `Eof n -> Error (Printf.sprintf "truncated frame (%d of %d bytes)" n len)
      | `Full payload -> (
        match Json.of_string (Bytes.to_string payload) with
        | Ok j -> Ok (Some j)
        | Error e -> Error (Printf.sprintf "bad frame JSON: %s" e)))

(* ---- request schema --------------------------------------------------- *)

type tune_params = {
  slot : string;
  device : string;
  budget : int option;
  top : int option;
  seed : int;
  oracle : bool;
  conform : bool;
}

type request =
  | Compile of { layout : string; emit : string list; device : string }
  | Tune of tune_params
  | Fingerprint of { layout : string; device : string }
  | Stats
  | Shutdown

let default_device = "a100"

let request_of_json j =
  let device () =
    Option.value ~default:default_device (Json.mem_string "device" j)
  in
  match Json.mem_string "op" j with
  | None -> Error "request has no \"op\" field"
  | Some "compile" -> (
    match Json.mem_string "layout" j with
    | None -> Error "compile: missing \"layout\""
    | Some layout ->
      let emit =
        match Json.member "emit" j with
        | Some (Json.List xs) -> List.filter_map Json.get_string xs
        | _ -> []
      in
      Ok (Compile { layout; emit; device = device () }))
  | Some "tune" -> (
    match Json.mem_string "slot" j with
    | None -> Error "tune: missing \"slot\""
    | Some slot ->
      Ok
        (Tune
           {
             slot;
             device = device ();
             budget = Json.mem_int "budget" j;
             top = Json.mem_int "top" j;
             seed = Option.value ~default:0 (Json.mem_int "seed" j);
             oracle = Option.value ~default:false (Json.mem_bool "oracle" j);
             conform = Option.value ~default:false (Json.mem_bool "conform" j);
           }))
  | Some "fingerprint" -> (
    match Json.mem_string "layout" j with
    | None -> Error "fingerprint: missing \"layout\""
    | Some layout -> Ok (Fingerprint { layout; device = device () }))
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

let json_of_request = function
  | Compile { layout; emit; device } ->
    Json.Obj
      ([ ("op", Json.Str "compile"); ("layout", Json.Str layout) ]
      @ (if emit = [] then []
         else [ ("emit", Json.List (List.map (fun e -> Json.Str e) emit)) ])
      @ [ ("device", Json.Str device) ])
  | Tune { slot; device; budget; top; seed; oracle; conform } ->
    Json.Obj
      ([ ("op", Json.Str "tune"); ("slot", Json.Str slot);
         ("device", Json.Str device) ]
      @ (match budget with Some b -> [ ("budget", Json.Int b) ] | None -> [])
      @ (match top with Some t -> [ ("top", Json.Int t) ] | None -> [])
      @ (if seed <> 0 then [ ("seed", Json.Int seed) ] else [])
      @ (if oracle then [ ("oracle", Json.Bool true) ] else [])
      @ if conform then [ ("conform", Json.Bool true) ] else [])
  | Fingerprint { layout; device } ->
    Json.Obj
      [
        ("op", Json.Str "fingerprint");
        ("layout", Json.Str layout);
        ("device", Json.Str device);
      ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

let error_response msg =
  Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
