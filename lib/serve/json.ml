(* Minimal strict JSON with deterministic printing (see the .mli for
   why determinism is the point).  Hand-rolled recursive descent; the
   grammar is small and the container ships no JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 || Char.code c >= 0x7f ->
        (* Control and non-ASCII bytes escape to \u00XX: the output stays
           7-bit clean and printing needs no UTF-8 awareness.  (Non-ASCII
           bytes round-trip as single bytes, which is all the store and
           protocol require of them.) *)
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest %.g formatting that round-trips: fixed rule, so equal floats
   always print identically (the determinism contract). *)
let float_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float"
  else
    let exact fmt =
      let s = Printf.sprintf fmt f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match exact "%.12g" with
      | Some s -> s
      | None -> (
        match exact "%.15g" with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" f)
    in
    (* Keep floats recognizably floats: 2.0 prints as "2.0", not "2". *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
    else s ^ ".0"

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        print_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  print_to buf j;
  Buffer.contents buf

(* ---- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> parse_error "at %d: expected %c, got %c" st.pos c c'
  | None -> parse_error "at %d: expected %c, got end of input" st.pos c

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c when c >= '0' && c <= '9' -> v := (!v * 16) + Char.code c - 48
    | Some c when c >= 'a' && c <= 'f' -> v := (!v * 16) + Char.code c - 87
    | Some c when c >= 'A' && c <= 'F' -> v := (!v * 16) + Char.code c - 55
    | _ -> parse_error "at %d: bad \\u escape" st.pos);
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'u' ->
        advance st;
        let v = parse_hex4 st in
        if v < 0x100 then Buffer.add_char buf (Char.chr v)
        else begin
          (* Encode BMP code points as UTF-8; printing only ever emits
             \u00XX, so this path serves foreign producers. *)
          if v < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xc0 lor (v lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xe0 lor (v lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
            Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3f)))
          end
        end
      | _ -> parse_error "at %d: bad escape" st.pos);
      go ()
    | Some c when Char.code c < 0x20 ->
      parse_error "at %d: raw control character in string" st.pos
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let consume () = advance st in
  (match peek st with Some '-' -> consume () | _ -> ());
  let digits () =
    let n = ref 0 in
    while (match peek st with Some c when c >= '0' && c <= '9' -> true | _ -> false)
    do
      incr n;
      consume ()
    done;
    !n
  in
  if digits () = 0 then parse_error "at %d: bad number" st.pos;
  (match peek st with
  | Some '.' ->
    is_float := true;
    consume ();
    if digits () = 0 then parse_error "at %d: bad number (no fraction)" st.pos
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    is_float := true;
    consume ();
    (match peek st with Some ('+' | '-') -> consume () | _ -> ());
    if digits () = 0 then parse_error "at %d: bad number (no exponent)" st.pos
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let parse_literal st word value =
  String.iter (fun c -> expect st c) word;
  value

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields_loop ()
        | Some '}' -> advance st
        | _ -> parse_error "at %d: expected , or } in object" st.pos
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items_loop ()
        | Some ']' -> advance st
        | _ -> parse_error "at %d: expected , or ] in array" st.pos
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_error "at %d: unexpected character %C" st.pos c

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at %d" st.pos)
    else Ok v
  | exception Parse_error m -> Error m

(* ---- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let get_string = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List xs -> Some xs | _ -> None
let mem_string k j = Option.bind (member k j) get_string
let mem_int k j = Option.bind (member k j) get_int
let mem_float k j = Option.bind (member k j) get_float
let mem_bool k j = Option.bind (member k j) get_bool
let equal (a : t) (b : t) = a = b
