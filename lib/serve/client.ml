type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ?(retries = 50) ~socket () =
  let addr = Unix.ADDR_UNIX socket in
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { fd; closed = false }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) when n > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (* The daemon may still be binding; poll briefly. *)
      Unix.sleepf 0.02;
      go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" socket (Unix.error_message e))
  in
  go retries

let rpc t batch =
  if t.closed then Error "client is closed"
  else
    match Protocol.write_frame t.fd batch with
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send: %s" (Unix.error_message e))
    | () -> (
      match Protocol.read_frame t.fd with
      | Ok (Some j) -> Ok j
      | Ok None -> Error "server closed the connection"
      | Error e -> Error e)

let batch t reqs =
  match rpc t (Json.List (List.map Protocol.json_of_request reqs)) with
  | Error e -> Error e
  | Ok (Json.List rs) -> Ok rs
  | Ok j -> Error (Printf.sprintf "non-array response: %s" (Json.to_string j))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
