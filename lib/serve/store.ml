(* Append-only content-addressed store.  Format and recovery contract
   are documented in the .mli; the load path is deliberately paranoid —
   every field of every record is validated before it is believed, and
   the first lie truncates the log back to the last good byte. *)

let version = "1"

let header_line = "LEGO-STORE v1\n"

type t = {
  tbl : (string, Json.t) Hashtbl.t;
  path : string option;
  mutable chan : out_channel option;  (* open for append iff persistent *)
  mutable closed : bool;
}

type load = Fresh | Loaded of int | Recovered of int * string

(* ---- keys ------------------------------------------------------------- *)

(* Length-delimited canonical encoding: ["ab"; "c"] and ["a"; "bc"]
   must hash differently, and no part may smuggle a delimiter. *)
let key parts =
  let buf = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    (version :: parts);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---- record encoding -------------------------------------------------- *)

let encode_record ~key value =
  let payload =
    Json.to_string (Json.Obj [ ("k", Json.Str key); ("v", value) ])
  in
  let sum = Digest.string payload in
  let len = String.length payload in
  let buf = Buffer.create (4 + len + 16) in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Buffer.add_bytes buf hdr;
  Buffer.add_string buf payload;
  Buffer.add_string buf sum;
  Buffer.contents buf

(* One record off [ic]; [Ok None] = clean EOF at a record boundary.
   A partial read is never a clean EOF — even a 1-byte tail must be
   reported (and truncated away) or later appends would land after
   junk and poison every future load. *)
let read_record ic =
  let read_exactly n =
    let b = Bytes.create n in
    let rec go off =
      if off = n then `Full b
      else
        let r = input ic b off (n - off) in
        if r = 0 then `Eof off else go (off + r)
    in
    go 0
  in
  match read_exactly 4 with
  | `Eof 0 -> Ok None
  | `Eof _ -> Error "truncated record header"
  | `Full hdr -> (
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len <= 0 || len > Protocol.max_frame_bytes then
      Error (Printf.sprintf "record length %d out of range" len)
    else
      match read_exactly len with
      | `Eof _ -> Error "truncated record payload"
      | `Full payload -> (
        match read_exactly 16 with
        | `Eof _ -> Error "truncated record checksum"
        | `Full sum ->
          let payload = Bytes.to_string payload in
          if Digest.string payload <> Bytes.to_string sum then
            Error "record checksum mismatch"
          else (
            match Json.of_string payload with
            | Error e -> Error (Printf.sprintf "record JSON: %s" e)
            | Ok j -> (
              match (Json.mem_string "k" j, Json.member "v" j) with
              | Some k, Some v -> Ok (Some (k, v))
              | _ -> Error "record missing k/v"))))

(* ---- open / load ------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let default_path () =
  let cache_root =
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> d
    | _ ->
      Filename.concat
        (Option.value ~default:"." (Sys.getenv_opt "HOME"))
        ".cache"
  in
  Filename.concat (Filename.concat cache_root "lego") "store.db"

(* Replay the log into [tbl]; returns the load verdict and the byte
   offset of the end of the good prefix (for truncation). *)
let load_file path tbl =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let hlen = String.length header_line in
      let header =
        let b = Bytes.create hlen in
        try
          really_input ic b 0 hlen;
          Some (Bytes.to_string b)
        with End_of_file -> None
      in
      if header <> Some header_line then (Recovered (0, "bad header"), 0)
      else begin
        let count = ref 0 in
        let rec go () =
          let good_end = pos_in ic in
          match read_record ic with
          | Ok None -> (Loaded !count, good_end)
          | Ok (Some (k, v)) ->
            if not (Hashtbl.mem tbl k) then incr count;
            Hashtbl.replace tbl k v;
            go ()
          | Error why -> (Recovered (Hashtbl.length tbl, why), good_end)
        in
        go ()
      end)

let open_ ?path () =
  let tbl = Hashtbl.create 256 in
  match path with
  | None -> ({ tbl; path = None; chan = None; closed = false }, Fresh)
  | Some p ->
    mkdir_p (Filename.dirname p);
    let verdict =
      if not (Sys.file_exists p) then begin
        (* Fresh db: write the header so the first load validates. *)
        let oc = open_out_bin p in
        output_string oc header_line;
        close_out oc;
        Fresh
      end
      else begin
        match load_file p tbl with
        | Loaded n, _ -> Loaded n
        | Fresh, _ -> Fresh
        | Recovered (0, "bad header"), _ ->
          (* Foreign/blank file: restart it wholesale. *)
          let oc = open_out_bin p in
          output_string oc header_line;
          close_out oc;
          Recovered (0, "bad header")
        | Recovered (n, why), good_end ->
          (* Cut the corrupt tail so appends land at a record boundary. *)
          let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd good_end;
          Unix.close fd;
          Recovered (n, why)
      end
    in
    let chan = open_out_gen [ Open_append; Open_binary ] 0o644 p in
    ({ tbl; path = Some p; chan = Some chan; closed = false }, verdict)

(* ---- operations ------------------------------------------------------- *)

let get t k = Hashtbl.find_opt t.tbl k
let mem t k = Hashtbl.mem t.tbl k

let put t ~key value =
  if t.closed then invalid_arg "Store.put: store is closed";
  match get t key with
  | Some v when Json.equal v value -> ()
  | _ ->
    Hashtbl.replace t.tbl key value;
    Option.iter
      (fun oc ->
        output_string oc (encode_record ~key value);
        flush oc)
      t.chan

let length t = Hashtbl.length t.tbl
let iter t f = Hashtbl.iter (fun key v -> f ~key v) t.tbl
let path t = t.path
let flush t = Option.iter Stdlib.flush t.chan

let close t =
  if not t.closed then begin
    t.closed <- true;
    Option.iter close_out_noerr t.chan;
    t.chan <- None
  end
