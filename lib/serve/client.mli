(** Client side of the compile-service protocol: connect to the
    daemon's Unix-domain socket, exchange one frame per batch. *)

type t

val connect : ?retries:int -> socket:string -> unit -> (t, string) result
(** Connect to the daemon at [socket].  [retries] (default 50) polls at
    20 ms intervals while the socket file does not exist yet or refuses
    connections — covers the race of a client started alongside the
    daemon (the oneshot self-test and [make serve-smoke] do exactly
    that). *)

val rpc : t -> Json.t -> (Json.t, string) result
(** Send one batch (a JSON array of requests), wait for the response
    frame.  [Error] on a broken or desynchronized connection. *)

val batch :
  t -> Protocol.request list -> (Json.t list, string) result
(** [rpc] over typed requests; returns the response objects in
    submission order ([Error] if the server answers with anything but
    an array, e.g. the unparseable-frame error object). *)

val close : t -> unit
(** Idempotent. *)
