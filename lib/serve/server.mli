(** The layout-compile daemon (DESIGN.md §15).

    One {!t} owns the content-addressed {!Store}, a persistent
    {!Lego_tune.Cache} warm-started from it, and a lazy
    {!Lego_exec.Exec} pool.  {!handle_batch} is the whole service as a
    function — the socket loop ({!serve}), the [--oneshot] self-test,
    the bench harness and the tests all drive the same entry point.

    {b Determinism contract.}  Identical request batches produce
    byte-identical response batches at any [jobs], against servers in
    identical states: pure requests (compile, fingerprint) fan out over
    the pool via [Exec.map] (submission-order merge), all state
    mutation — store writes, counters, the tune cache — happens in a
    sequential walk in submission order, and no response field carries
    wall-clock.  The store is read inside the parallel section and
    written only in the sequential walk, mirroring the tune cache's
    discipline.

    {b Warm path.}  A [tune] request whose content address is already
    stored is answered from the store without invoking the tuner (zero
    simulator invocations — the [searches] counter stands still); a
    near-miss (same slot, different search shape) still warm-starts
    from persisted per-layout [sim] records injected into the tune
    cache at startup and flushed after every cold search.

    {b Threading.}  [handle_batch]/[serve] must run in one domain —
    the one that first calls them (the pool is created there); [create]
    may run anywhere. *)

type t

val create : ?db:string -> ?jobs:int -> unit -> t
(** [db]: the store's backing file ({!Store.default_path} is the
    daemon's conventional location; omit for a memory-only store).
    [jobs] (default 1) sizes the request fan-out pool and every tune
    search. *)

val load : t -> Store.load
(** How the store came up (clean / recovered / fresh) — the server
    keeps running on a recovered or fresh store (cold start), it never
    refuses to boot over a damaged cache. *)

val jobs : t -> int
val store : t -> Store.t
val stopped : t -> bool
(** A [shutdown] request was served. *)

val compile_key : fp:string -> device:string -> string
(** The store key of a compile artifact: {!Store.key} over the layout's
    canonical fingerprint and the (lowercased) device preset.  Exported
    so [legoc fingerprint] prints exactly the address the daemon uses. *)

val handle_batch : t -> Json.t -> Json.t
(** Serve one batch (a JSON array of requests); returns the response
    array, same length, submission order.  A non-array input yields a
    single error object. *)

val serve : t -> socket:string -> unit
(** Bind a Unix-domain socket at [socket] (replacing a stale file),
    then accept connections one at a time, answering frame per frame,
    until a [shutdown] request has been served.  The socket file is
    removed on exit. *)

val shutdown : t -> unit
(** Release resources: flush + close the store, stop the pool.
    Idempotent.  ({!serve} does not call this — the owner does, so a
    oneshot run can still inspect the store after serving.) *)

val stats_json : t -> Json.t
(** The same deterministic counter object a [stats] request returns. *)
