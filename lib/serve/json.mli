(** Minimal JSON for the compile service.

    The container has no JSON library, and the protocol needs very
    little: finite scalars, strings, arrays, objects.  What it {e does}
    need — and what this module guarantees — is {b deterministic
    printing}: [to_string] is a pure function of the value (object
    fields print in construction order, numbers through a fixed
    shortest-round-trip rule), because the server's contract is that
    identical request batches produce {e byte-identical} response
    frames at any [-j].

    Ints and floats are kept distinct ([Int] prints without a decimal
    point and re-parses as [Int]), so integer counters survive a
    round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Finite only: printing nan/inf raises. *)
  | Str of string  (** Arbitrary bytes; non-ASCII prints escaped. *)
  | List of t list
  | Obj of (string * t) list  (** Field order is significant for printing. *)

val to_string : t -> string
(** Compact (no whitespace), deterministic.  Raises [Invalid_argument]
    on a non-finite float. *)

val of_string : string -> (t, string) result
(** Strict JSON parse of the whole input (trailing garbage is an
    error).  Numbers without [.]/[e] that fit in [int] parse as [Int],
    everything else as [Float]. *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val get_string : t -> string option
val get_int : t -> int option
val get_float : t -> float option
(** [get_float] accepts [Int] too (widening). *)

val get_bool : t -> bool option
val get_list : t -> t list option

val mem_string : string -> t -> string option
val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
val mem_bool : string -> t -> bool option
(** [mem_* f j] = [member f j |> get_*] — field accessors. *)

val equal : t -> t -> bool
(** Structural equality (field order significant, like printing). *)
