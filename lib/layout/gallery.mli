(** A library of general (non-strided) bijections packaged as [GenP]
    pieces.

    These are the layouts the paper singles out as inexpressible in the
    CuTe/Graphene stride algebra (section 3.3 and section 8): the
    anti-diagonal order of figure 8, Z-Morton order, Hilbert order, XOR
    swizzles, cyclic diagonal storage, and table-driven run-time
    permutations.  Every bijection is written against {!Domain.S}, so the
    same definition evaluates on concrete indices and generates symbolic
    index expressions. *)

val antidiag : int -> Piece.t
(** [antidiag n] lays an [n x n] logical space out in the order elements
    appear on the [2n - 1] anti-diagonals, first diagonal = [(0,0)]
    (figure 8 of the paper; used to remove the NW benchmark's shared-memory
    bank conflicts). *)

val reverse : Shape.t -> Piece.t
(** Row-major order of the index with every component complemented
    ([i_k -> n_k - 1 - i_k]); the paper's figure 4 uses the 2-D case for
    its innermost tile. *)

val morton : d:int -> bits:int -> Piece.t
(** [morton ~d ~bits] is d-dimensional Z-Morton order on a
    [2^bits x ... x 2^bits] space: bit [b] of dimension [t] lands at
    position [b*d + (d-1-t)] of the flat offset. *)

val hilbert : bits:int -> Piece.t
(** 2-D Hilbert-curve order on a [2^bits x 2^bits] space. *)

val xor_swizzle : rows:int -> cols:int -> Piece.t
(** [xor_swizzle ~rows ~cols] (with [cols] a power of two) stores logical
    [(i, j)] at [i*cols + (j lxor (i mod cols))] — the classic
    shared-memory bank-conflict swizzle. *)

val xor_swizzle_masked :
  rows:int -> cols:int -> mask:int -> shift:int -> Piece.t
(** [xor_swizzle_masked ~rows ~cols ~mask ~shift] (with [cols] a power of
    two and [0 <= mask < cols]) stores logical [(i, j)] at
    [i*cols + (j lxor (((i lsr shift)) land mask))] — the parameterized
    swizzle family the autotuner searches over.  [mask = cols-1, shift =
    0] recovers {!xor_swizzle}; [mask = 0] is plain row-major.  The piece
    is named [swizzlex_m<mask>_s<shift>] so distinct parameters compare
    unequal and the name round-trips through {!lookup}. *)

val cyclic_diag : int -> Piece.t
(** [cyclic_diag n] stores logical [(i, j)] at [((j - i) mod n) * n + i]:
    diagonal storage for an [n x n] matrix. *)

val of_table : name:string -> dims:Shape.t -> (int list -> int) -> Piece.t
(** [of_table ~name ~dims f] tabulates the bijection [f] over the whole
    (small) index space and packages it as a [GenP].  In symbolic domains
    the lookup becomes a chain of selects, supporting the paper's
    "run-time permutations" remark.  Raises [Invalid_argument] if [f] is
    not a bijection onto [0 .. numel dims - 1]. *)

val parse_swizzlex : string -> (int * int) option
(** [parse_swizzlex "swizzlex_m<mask>_s<shift>"] recovers [(mask,
    shift)] from the canonical name {!xor_swizzle_masked} assigns.  Only
    the exact decimal spelling [Printf "%d"] produces round-trips:
    hex/octal/underscore/signed/leading-zero forms return [None] (they
    would alias a canonical name under a different string, breaking
    name-keyed piece identity). *)

val lookup :
  string -> Shape.t -> args:int list -> Piece.t option
(** Registry used by the surface-syntax elaborator: [lookup name dims
    ~args] returns the gallery piece called [name] instantiated at [dims],
    if any.  [args] carries extra static parameters (currently unused by
    the built-ins). *)

val names : unit -> string list
(** Names understood by {!lookup}. *)
