(* Sequential reference: scan the logical space in order, stopping at the
   first violation. *)
let check_image_seq ~what ~numel ~apply ~inv =
  let seen = Array.make numel false in
  let result = ref (Ok ()) in
  (try
     for k = 0 to numel - 1 do
       let physical = apply k in
       if physical < 0 || physical >= numel then begin
         result :=
           Error
             (Printf.sprintf "%s: logical %d maps to %d, outside 0..%d" what k
                physical (numel - 1));
         raise Exit
       end;
       if seen.(physical) then begin
         result :=
           Error
             (Printf.sprintf "%s: physical offset %d hit twice (at logical %d)"
                what physical k);
         raise Exit
       end;
       seen.(physical) <- true;
       let back = inv physical in
       if back <> k then begin
         result :=
           Error
             (Printf.sprintf "%s: inv (apply %d) = %d, expected identity" what
                k back);
         raise Exit
       end
     done
   with Exit -> ());
  !result

(* Parallel path: the index space is split into contiguous ranges, each
   evaluated on a pool domain — [apply]/[inv] are the expensive part —
   and the occupancy ("seen") merge replays the ranges sequentially in
   submission order.  Per logical index the merge applies the same
   bounds -> duplicate -> roundtrip check order as the sequential scan,
   so the first reported violation (and its message) is byte-identical
   at any [jobs]. *)

(* A range task's first violation, at logical index [err_k]; entries of
   [physical] (and [back]) below [err_k - lo] are valid. *)
type range_err = Bounds of int (* the offending physical *) | Roundtrip of int

type range_result = {
  lo : int;
  physical : int array;
  err : (int * range_err) option;
}

let eval_range ~numel ~apply ~inv (lo, hi) =
  let len = hi - lo in
  let physical = Array.make len (-1) in
  let err = ref None in
  (try
     for k = lo to hi - 1 do
       let p = apply k in
       if p < 0 || p >= numel then begin
         err := Some (k, Bounds p);
         raise Exit
       end;
       physical.(k - lo) <- p;
       let b = inv p in
       if b <> k then begin
         err := Some (k, Roundtrip b);
         raise Exit
       end
     done
   with Exit -> ());
  { lo; physical; err = !err }

exception Found of string

let merge_ranges ~what ~numel results =
  let seen = Array.make numel false in
  let fail fmt = Printf.ksprintf (fun m -> raise (Found m)) fmt in
  try
    Array.iter
      (fun r ->
        let stop =
          match r.err with Some (ek, _) -> ek - r.lo | None -> Array.length r.physical
        in
        for i = 0 to stop - 1 do
          let k = r.lo + i in
          let p = r.physical.(i) in
          if seen.(p) then
            fail "%s: physical offset %d hit twice (at logical %d)" what p k;
          seen.(p) <- true
        done;
        match r.err with
        | None -> ()
        | Some (ek, Bounds p) ->
          fail "%s: logical %d maps to %d, outside 0..%d" what ek p (numel - 1)
        | Some (ek, Roundtrip b) ->
          (* Sequential order at one index: bounds, duplicate, then
             roundtrip — the duplicate check wins at the same [ek]. *)
          let p = r.physical.(ek - r.lo) in
          if seen.(p) then
            fail "%s: physical offset %d hit twice (at logical %d)" what p ek;
          seen.(p) <- true;
          fail "%s: inv (apply %d) = %d, expected identity" what ek b)
      results;
    Ok ()
  with Found m -> Error m

(* Index spaces below this size are not worth fanning out. *)
let parallel_threshold = 1 lsl 12

let check_image ?(jobs = 1) ~what ~numel ~apply ~inv () =
  if numel = 0 then Ok ()
  else if jobs <= 1 || numel < parallel_threshold then
    check_image_seq ~what ~numel ~apply ~inv
  else begin
    let ranges =
      let n = jobs * 4 in
      let step = (numel + n - 1) / n in
      Array.init ((numel + step - 1) / step) (fun i ->
          (i * step, min numel ((i + 1) * step)))
    in
    let results =
      Lego_exec.Exec.with_pool ~jobs (fun pool ->
          Lego_exec.Exec.map ~chunk:1 ~pool ranges
            (eval_range ~numel ~apply ~inv))
    in
    merge_ranges ~what ~numel results
  end

let piece ?jobs p =
  let dims = Piece.dims p in
  check_image ?jobs
    ~what:(Format.asprintf "%a" Piece.pp p)
    ~numel:(Piece.numel p)
    ~apply:(fun k -> Piece.apply_ints p (Shape.unflatten_ints dims k))
    ~inv:(fun physical -> Shape.flatten_ints dims (Piece.inv_ints p physical))
    ()

let layout ?jobs g =
  let dims = Group_by.dims g in
  check_image ?jobs
    ~what:(Format.asprintf "%a" Group_by.pp g)
    ~numel:(Group_by.numel g)
    ~apply:(fun k -> Group_by.apply_ints g (Shape.unflatten_ints dims k))
    ~inv:(fun physical -> Shape.flatten_ints dims (Group_by.inv_ints g physical))
    ()

let table g =
  let dims = Group_by.dims g in
  Array.init (Group_by.numel g) (fun k ->
      Group_by.apply_ints g (Shape.unflatten_ints dims k))

let physical_to_logical g =
  Array.init (Group_by.numel g) (fun physical ->
      Array.of_list (Group_by.inv_ints g physical))
