(** Exhaustive validation of layouts.

    LEGO layouts are bijections by construction only when their pieces are;
    [GenP] pieces carry arbitrary user functions, so these checkers verify
    the claim by enumeration (intended for tests and for validating small
    user-supplied layouts at construction time). *)

val piece : ?jobs:int -> Piece.t -> (unit, string) result
(** Check that a piece's [apply] is a bijection onto [0 .. numel - 1] and
    that [inv] is its exact inverse.  [jobs] (default 1) splits large
    index spaces into ranges checked in parallel on a {!Lego_exec.Exec}
    pool, with a sequential occupancy merge: the verdict — including the
    first violation reported and its message — is byte-identical at any
    [jobs]. *)

val layout : ?jobs:int -> Group_by.t -> (unit, string) result
(** Same check (and the same [jobs] contract) for a whole ensemble. *)

val table : Group_by.t -> int array
(** [table g] tabulates [apply] over the logical space in row-major order:
    element [k] is the physical offset of the logical index with flat
    position [k] — e.g. the contents of the paper's figure 9 pictures. *)

val physical_to_logical : Group_by.t -> int array array
(** [physical_to_logical g] lists, for each physical offset, the logical
    multi-index stored there (the inverse picture). *)
