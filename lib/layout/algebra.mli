(** CuTe-style layout algebra over strided layouts (Cecka, {e CuTe Layout
    Representation and Algebra}; Colfax, {e Categorical Foundations for
    CuTe Layouts}).

    A {!t} is a flat strided layout: a shape [n1 x ... x nd] (repo
    convention — first mode outermost, last mode fastest, matching
    {!Shape.flatten}) together with one integer stride per mode.  It
    denotes the function

      [x  |->  sum_k  (unflatten shape x)_k * stride_k]

    on the domain [0 .. size - 1].  The four operators of the CuTe
    algebra — composition [A o B], complement [complement(A, M)], logical
    division [A / B] and logical product [A * B] — are partial: each has
    divisibility / disjointness / size side conditions.  Rather than
    checking those conditions internally, every operator {e emits} them
    as {!obligation}s through a caller-supplied {!discharge} function, so
    the conditions can be proven symbolically (see
    {!Lego_symbolic.Discharge}, which routes each goal through the
    prover) or checked concretely ({!concrete}).  An operator application
    either returns the proven layout or an {!error} naming the operator
    and the failed condition.

    This module deliberately depends only on the layout core: obligations
    carry {!Domain.S}-polymorphic data ({!apply} on a symbolic domain),
    never prover types, keeping the dependency order
    [layout -> symbolic] intact. *)

type t = private { shape : int list; stride : int list }

val make : shape:int list -> stride:int list -> t
(** Validates: non-empty equal-length lists, positive extents,
    non-negative strides.  Raises [Invalid_argument] otherwise. *)

val shape : t -> int list
val stride : t -> int list

val size : t -> int
(** Product of the extents: the domain is [0 .. size - 1]. *)

val cosize : t -> int
(** [1 + sum_k (n_k - 1) * stride_k]: one past the largest image point. *)

val id : int -> t
(** [id n] is [(n):(1)] — the identity layout on [0 .. n - 1].
    [id 1] is the canonical trivial layout [(1):(0)]. *)

val row : int list -> t
(** Row-major strides for the given shape (the identity function). *)

val col : int list -> t
(** Column-major strides: the {e first} mode gets stride 1. *)

val concat : t -> t -> t
(** [concat a b] juxtaposes mode lists, [a] outermost.  The denoted
    function of the concatenation is [x -> a(outer digits) + b(inner
    digits)] — mode contributions are additive. *)

val coalesce : t -> t
(** Drop extent-1 modes and merge adjacent modes whose strides chain
    ([outer.stride = inner.stride * inner.extent]); the denoted function
    is unchanged.  Normal form used by the equality tests. *)

val apply : (module Domain.S with type t = 'a) -> t -> 'a -> 'a
(** The denoted function, generic in the index domain (symbolic
    evaluation of this is how image-bound obligations are proven). *)

val apply_int : t -> int -> int

val equal : t -> t -> bool
(** Structural equality of shape and stride lists. *)

val equivalent : t -> t -> bool
(** Functional equality: same size and pointwise equal images (domains
    here are small; this is an exhaustive check for tests). *)

val is_bijection : t -> bool
(** Concretely: is the layout a bijection onto [0 .. size - 1]?  True
    iff the modes with extent > 1, sorted by stride, form a complete
    mixed-radix chain ([d_(1) = 1], [d_(i+1) = d_(i) * n_(i)]). *)

val pp : Format.formatter -> t -> unit
(** CuTe-style [(n1,...,nd):(s1,...,sd)]. *)

val to_string : t -> string

(** {1 Side conditions as obligations} *)

type goal =
  | Divides of { divisor : int; value : int }
      (** [divisor] divides [value] (the stride-divisibility goals). *)
  | Le of { lhs : int; rhs : int }
  | Eq of { lhs : int; rhs : int }
  | Image_bounded of { layout : t; bound : int }
      (** [forall x in [0, size layout): 0 <= layout x < bound] — proven
          symbolically by evaluating {!apply} over an interval domain. *)

type error = {
  op : string;  (** Operator whose application failed ("o", "divide", ...). *)
  cond : string;
      (** The violated side condition: ["left-divisibility"],
          ["disjointness"], ["coverage"], ["size"], ["injectivity"] or
          ["bijectivity"]. *)
  detail : string;  (** Human-readable instance of the condition. *)
}

type obligation = { goal : goal; on_fail : error }
(** One emitted side condition: the goal to prove, and the positioned
    error the operator reports if the discharge fails. *)

type discharge = obligation -> bool
(** A prover for obligations.  Must be {e sound} (never accept a false
    goal); incompleteness only makes operators fail more often. *)

val concrete : discharge
(** Direct integer checking of each goal — the reference discharge the
    symbolic prover is tested against. *)

val pp_error : Format.formatter -> error -> unit

(** {1 Operators}

    Every operator takes the discharge function used to prove its side
    conditions and returns either the resulting layout or the first
    failed condition. *)

val compose : prove:discharge -> t -> t -> (t, error) result
(** [compose ~prove a b] is the strided layout of [a o b] (apply [b],
    then [a]).  Side conditions: [b]'s image must lie in [a]'s domain
    (["size"]), and [b]'s strides and extents must peel through [a]'s
    modes by the left-divisibility discipline
    (["left-divisibility"]). *)

val complement : prove:discharge -> t -> int -> (t, error) result
(** [complement ~prove a m] is the layout [a*] covering exactly the
    offsets of [0 .. m - 1] that [a] misses, ordered ascending.  Side
    conditions: strides positive (["injectivity"]), sorted modes
    pairwise disjoint by the divisibility chain (["disjointness"]), and
    [a]'s image contained in [0 .. m - 1] with the chain dividing [m]
    (["coverage"]).  [concat a* a] restricted-sorts into a bijection on
    [0 .. m - 1] — the property the QCheck suite asserts. *)

val tiler : prove:discharge -> t -> int -> (t, error) result
(** [tiler ~prove b m] is [concat (complement b m) b] — the bijection on
    [0 .. m - 1] that enumerates [b]'s tile fastest, then the complement
    (tile-grid) positions.  Equals [logical_product b (id (m / size b))]
    up to coalescing. *)

val logical_divide : prove:discharge -> t -> t -> (t, error) result
(** [logical_divide ~prove a b] is [a o (tiler b (size a))]: [a]
    re-expressed in the tile basis of [b] — inner modes walk one [b]
    tile through [a], outer modes walk the complement (the tile grid).
    Adds the side condition [size b | size a] (["size"]). *)

val logical_product : prove:discharge -> t -> t -> (t, error) result
(** [logical_product ~prove a b] is
    [concat ((complement a (size a * cosize b)) o b) a]: one copy of [a]
    in the inner modes, replicated across the image of [b] applied to
    [a]'s complement in the outer modes. *)

val inverse : t -> t option
(** The strided layout of the inverse function, when [t] is a bijection
    ({!is_bijection}); [None] otherwise. *)

(** {1 Bridging to pieces} *)

val of_piece : Piece.t -> t option
(** The strided layout denoting the same flat function as a [RegP]
    piece; [None] for [GenP] (not strided in general). *)

val to_piece : ?op:string -> prove:discharge -> t -> (Piece.t, error) result
(** Package a layout as a [RegP] piece.  Emits the ["bijectivity"]
    obligations (the sorted strides must chain exactly to [size]); on
    success the piece's [apply] agrees pointwise with {!apply_int}.
    [op] labels errors (default ["to_piece"]). *)

val compose_pieces :
  ?name:string -> prove:discharge -> Piece.t -> Piece.t -> (Piece.t, error) result
(** Function composition [a o b] at the piece level (equal element
    counts — the ["size"] obligation).  When both pieces are strided and
    the strided composition's side conditions hold, the result is again
    a [RegP]; otherwise it is a composite [GenP] whose
    {!Domain.S}-polymorphic bijection evaluates [b], reinterprets the
    flat offset in [a]'s logical space, and evaluates [a] — so the
    composite works in every backend (C / Triton / MLIR / symbolic).
    [name] overrides the generated composite name. *)
