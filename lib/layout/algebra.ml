(* CuTe-style layout algebra over flat strided layouts.

   Conventions.  [shape]/[stride] are stored in repo order — first mode
   outermost, last mode fastest, matching {!Shape.flatten} — but every
   algorithm below works on the reversed, fastest-first list of
   [(extent, stride)] pairs ([ff]): the CuTe formulations (stride
   peeling, complement chains) are naturally stated innermost-out.

   Side conditions are never checked inline: each one is emitted as an
   [obligation] through the caller's [discharge] function and a failed
   discharge aborts the operator with the obligation's positioned
   [error].  [Lego_symbolic.Discharge.prover] discharges these goals
   with the range prover; [concrete] checks them directly. *)

type t = { shape : int list; stride : int list }

let shape t = t.shape
let stride t = t.stride

let make ~shape ~stride =
  if shape = [] then invalid_arg "Algebra.make: empty shape";
  if List.length shape <> List.length stride then
    invalid_arg "Algebra.make: shape/stride rank mismatch";
  Shape.validate shape;
  List.iter
    (fun s -> if s < 0 then invalid_arg "Algebra.make: negative stride")
    stride;
  { shape; stride }

let size t = Shape.numel t.shape

let cosize t =
  List.fold_left2 (fun acc e d -> acc + ((e - 1) * d)) 1 t.shape t.stride

let trivial = { shape = [ 1 ]; stride = [ 0 ] }
let id n = if n = 1 then trivial else make ~shape:[ n ] ~stride:[ 1 ]

let row_major_strides shape =
  (* Row-major: stride of mode k is the product of the extents after it. *)
  let _, strides =
    List.fold_left
      (fun (acc, out) e -> (acc * e, acc :: out))
      (1, []) (List.rev shape)
  in
  strides

let row shape = make ~shape ~stride:(row_major_strides shape)

let col shape =
  (* Column-major: stride of mode k is the product of the extents before
     it (the first mode is fastest). *)
  let _, rev_strides =
    List.fold_left (fun (acc, out) e -> (acc * e, acc :: out)) (1, []) shape
  in
  make ~shape ~stride:(List.rev rev_strides)

let concat a b =
  { shape = a.shape @ b.shape; stride = a.stride @ b.stride }

(* Fastest-first [(extent, stride)] modes and back. *)
let ff t = List.rev (List.combine t.shape t.stride)

let of_ff = function
  | [] -> trivial
  | modes ->
      let repo = List.rev modes in
      make ~shape:(List.map fst repo) ~stride:(List.map snd repo)

let coalesce t =
  let merged =
    List.fold_left
      (fun acc (e, d) ->
        if e = 1 then acc
        else
          match acc with
          | (e0, d0) :: rest when d = d0 * e0 -> ((e0 * e, d0) :: rest)
          | _ -> (e, d) :: acc)
      [] (ff t)
  in
  (* [merged] was consed fastest-first, so it already sits in repo order. *)
  match merged with
  | [] -> trivial
  | repo -> make ~shape:(List.map fst repo) ~stride:(List.map snd repo)

let apply (type x) (module D : Domain.S with type t = x) t (i : x) : x =
  let digits = Shape.unflatten (module D) t.shape i in
  List.fold_left2
    (fun acc digit s -> D.add acc (D.mul digit (D.const s)))
    (D.const 0) digits t.stride

let apply_int t i = apply (module Domain.Int) t i
let equal a b = a.shape = b.shape && a.stride = b.stride

let equivalent a b =
  size a = size b
  &&
  let n = size a in
  let rec go i = i >= n || (apply_int a i = apply_int b i && go (i + 1)) in
  go 0

let is_bijection t =
  let modes = List.filter (fun (e, _) -> e > 1) (List.combine t.shape t.stride) in
  let sorted = List.sort (fun (_, d1) (_, d2) -> compare d1 d2) modes in
  let rec chain cur = function
    | [] -> cur = size t
    | (e, d) :: rest -> d = cur && chain (cur * e) rest
  in
  chain 1 sorted

let pp_ints ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Format.pp_print_int ppf l

let pp ppf t = Format.fprintf ppf "(%a):(%a)" pp_ints t.shape pp_ints t.stride
let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* Obligations                                                         *)
(* ------------------------------------------------------------------ *)

type goal =
  | Divides of { divisor : int; value : int }
  | Le of { lhs : int; rhs : int }
  | Eq of { lhs : int; rhs : int }
  | Image_bounded of { layout : t; bound : int }

type error = { op : string; cond : string; detail : string }
type obligation = { goal : goal; on_fail : error }
type discharge = obligation -> bool

let concrete { goal; _ } =
  match goal with
  | Divides { divisor; value } -> divisor <> 0 && value mod divisor = 0
  | Le { lhs; rhs } -> lhs <= rhs
  | Eq { lhs; rhs } -> lhs = rhs
  | Image_bounded { layout; bound } ->
      (* Strides are non-negative, so the image maximum is [cosize - 1]. *)
      cosize layout <= bound

let pp_error ppf { op; cond; detail } =
  Format.fprintf ppf "%s: unproven side condition %S: %s" op cond detail

exception Unproven of error

let require prove goal on_fail =
  if not (prove { goal; on_fail }) then raise (Unproven on_fail)

let run f = try Ok (f ()) with Unproven e -> Error e
let get = function Ok v -> v | Error e -> raise (Unproven e)

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

let compose ~prove a b =
  run @@ fun () ->
  require prove
    (Image_bounded { layout = b; bound = size a })
    {
      op = "o";
      cond = "size";
      detail =
        Printf.sprintf "image of %s must lie within the domain [0,%d) of %s"
          (to_string b) (size a) (to_string a);
    };
  let a_ff = ff a in
  (* [peel c modes] divides the layout [modes] (fastest-first) by the
     offset multiplier [c]: consumed extents must divide [c] exactly so
     that multiples of [c] land on whole digits of [a]. *)
  let rec peel c modes =
    if c = 1 then modes
    else
      match modes with
      | [] -> []
      | (s, d) :: rest ->
          if c >= s then (
            require prove
              (Divides { divisor = s; value = c })
              {
                op = "o";
                cond = "left-divisibility";
                detail =
                  Printf.sprintf
                    "mode extent %d of %s must divide the stride %d it is \
                     peeled by"
                    s (to_string a) c;
              };
            peel (c / s) rest)
          else (
            require prove
              (Divides { divisor = c; value = s })
              {
                op = "o";
                cond = "left-divisibility";
                detail =
                  Printf.sprintf
                    "stride %d must divide the mode extent %d of %s it splits"
                    c s (to_string a);
              };
            (s / c, d * c) :: rest)
  in
  (* [take r modes] keeps the first [r] elements of the peeled layout:
     fully consumed modes must have extents dividing what remains. *)
  let rec take r modes =
    if r = 1 then []
    else
      match modes with
      | [] ->
          require prove
            (Eq { lhs = r; rhs = 1 })
            {
              op = "o";
              cond = "size";
              detail =
                Printf.sprintf
                  "extent %d walks past the end of the domain of %s" r
                  (to_string a);
            };
          []
      | (s, d) :: rest ->
          if r >= s then (
            require prove
              (Divides { divisor = s; value = r })
              {
                op = "o";
                cond = "left-divisibility";
                detail =
                  Printf.sprintf
                    "mode extent %d of %s must divide the remaining extent %d"
                    s (to_string a) r;
              };
            (s, d) :: take (r / s) rest)
          else [ (r, d) ]
  in
  let contribution (e, d) =
    if e = 1 then []
    else if d = 0 then [ (e, 0) ]
    else take e (peel d a_ff)
  in
  of_ff (List.concat_map contribution (ff b))

(* ------------------------------------------------------------------ *)
(* Complement                                                          *)
(* ------------------------------------------------------------------ *)

let complement ~prove a m =
  run @@ fun () ->
  require prove
    (Le { lhs = 1; rhs = m })
    {
      op = "complement";
      cond = "coverage";
      detail = Printf.sprintf "codomain size %d must be positive" m;
    };
  let modes = List.filter (fun (e, _) -> e > 1) (ff a) in
  List.iter
    (fun (_, d) ->
      require prove
        (Le { lhs = 1; rhs = d })
        {
          op = "complement";
          cond = "injectivity";
          detail =
            Printf.sprintf "stride %d of %s is not positive" d (to_string a);
        })
    modes;
  let sorted = List.sort (fun (_, d1) (_, d2) -> compare d1 d2) modes in
  let cur, acc =
    List.fold_left
      (fun (cur, acc) (e, d) ->
        require prove
          (Divides { divisor = cur; value = d })
          {
            op = "complement";
            cond = "disjointness";
            detail =
              Printf.sprintf
                "accumulated block size %d must divide the next stride %d of \
                 %s"
                cur d (to_string a);
          };
        let acc = if d / cur > 1 then (d / cur, cur) :: acc else acc in
        (d * e, acc))
      (1, []) sorted
  in
  require prove
    (Image_bounded { layout = a; bound = m })
    {
      op = "complement";
      cond = "coverage";
      detail =
        Printf.sprintf "image of %s must lie within [0,%d)" (to_string a) m;
    };
  require prove
    (Divides { divisor = cur; value = m })
    {
      op = "complement";
      cond = "coverage";
      detail =
        Printf.sprintf
          "final block size %d of %s must divide the codomain size %d" cur
          (to_string a) m;
    };
  let acc = if m / cur > 1 then (m / cur, cur) :: acc else acc in
  (* [acc] was consed in ascending-stride order, so its head is the
     largest stride: it is already the repo (outermost-first) order. *)
  match acc with
  | [] -> trivial
  | repo -> make ~shape:(List.map fst repo) ~stride:(List.map snd repo)

let tiler ~prove b m =
  Result.map (fun c -> concat c b) (complement ~prove b m)

let logical_divide ~prove a b =
  run @@ fun () ->
  require prove
    (Divides { divisor = size b; value = size a })
    {
      op = "divide";
      cond = "size";
      detail =
        Printf.sprintf "tile size %d of %s must divide the size %d of %s"
          (size b) (to_string b) (size a) (to_string a);
    };
  let t = get (tiler ~prove b (size a)) in
  get (compose ~prove a t)

let logical_product ~prove a b =
  run @@ fun () ->
  let c = get (complement ~prove a (size a * cosize b)) in
  let cb = get (compose ~prove c b) in
  concat cb a

(* ------------------------------------------------------------------ *)
(* Inverse and piece bridging                                          *)
(* ------------------------------------------------------------------ *)

let inverse t =
  if not (is_bijection t) then None
  else
    let rs = row_major_strides t.shape in
    let modes =
      List.map2 (fun (e, d) r -> (e, d, r)) (List.combine t.shape t.stride) rs
    in
    let nontrivial = List.filter (fun (e, _, _) -> e > 1) modes in
    let sorted =
      List.sort (fun (_, d1, _) (_, d2, _) -> compare d1 d2) nontrivial
    in
    (* The mode with stride [d_i] reads digit [i] of the argument (the
       chain radix, fastest first) and writes it at the row-major
       position the mode occupied in [t]'s logical space. *)
    let inv_ff = List.map (fun (e, _, r) -> (e, r)) sorted in
    Some (of_ff inv_ff)

let of_piece = function
  | Piece.Gen _ -> None
  | Piece.Reg { dims; sigma } ->
      let n = List.length dims in
      if n = 0 then Some trivial
      else
        let pdims = Array.of_list (Sigma.permute sigma dims) in
        let pstrides = Array.make n 1 in
        for k = n - 2 downto 0 do
          pstrides.(k) <- pstrides.(k + 1) * pdims.(k + 1)
        done;
        let lstr = Array.make n 0 in
        for k = 0 to n - 1 do
          lstr.(Sigma.apply sigma k) <- pstrides.(k)
        done;
        Some (make ~shape:dims ~stride:(Array.to_list lstr))

let to_piece ?(op = "to_piece") ~prove t =
  run @@ fun () ->
  let modes =
    List.mapi (fun i (e, d) -> (i, e, d)) (List.combine t.shape t.stride)
  in
  let nontrivial = List.filter (fun (_, e, _) -> e > 1) modes in
  let sorted =
    List.sort (fun (_, _, d1) (_, _, d2) -> compare d1 d2) nontrivial
  in
  let cur =
    List.fold_left
      (fun cur (_, e, d) ->
        require prove
          (Eq { lhs = d; rhs = cur })
          {
            op;
            cond = "bijectivity";
            detail =
              Printf.sprintf
                "stride %d of %s must equal the accumulated block size %d" d
                (to_string t) cur;
          };
        cur * e)
      1 sorted
  in
  require prove
    (Eq { lhs = cur; rhs = size t })
    {
      op;
      cond = "bijectivity";
      detail =
        Printf.sprintf "strides of %s cover %d of %d elements" (to_string t)
          cur (size t);
    };
  (* Physical order: strides descending (largest outermost), original
     position as the deterministic tie-break; extent-1 modes may land
     anywhere without changing the denoted function. *)
  let order =
    List.sort
      (fun (i1, _, d1) (i2, _, d2) ->
        if d1 <> d2 then compare d2 d1 else compare i1 i2)
      modes
  in
  let sigma = Sigma.of_list (List.map (fun (i, _, _) -> i) order) in
  Piece.reg ~dims:t.shape ~sigma

let compose_pieces ?name ~prove a b =
  run @@ fun () ->
  let na = Piece.numel a and nb = Piece.numel b in
  require prove
    (Eq { lhs = nb; rhs = na })
    {
      op = "o";
      cond = "size";
      detail =
        Printf.sprintf "piece element counts must agree (%d vs %d)" na nb;
    };
  let strided =
    match (of_piece a, of_piece b) with
    | Some la, Some lb -> (
        match compose ~prove la lb with
        | Ok lc -> (
            match to_piece ~op:"o" ~prove lc with
            | Ok p -> Some p
            | Error _ -> None)
        | Error _ -> None)
    | _ -> None
  in
  match strided with
  | Some p -> p
  | None ->
      let cname =
        match name with
        | Some n -> n
        | None -> Format.asprintf "(%a o %a)" Piece.pp a Piece.pp b
      in
      let dims_a = Piece.dims a in
      let bij =
        {
          Piece.gb_apply =
            (fun (type x) (module D : Domain.S with type t = x)
                 (idx : x list) : x ->
              Piece.apply (module D) a
                (Shape.unflatten (module D) dims_a (Piece.apply (module D) b idx)));
          gb_inv =
            (fun (type x) (module D : Domain.S with type t = x) (flat : x) :
                 x list ->
              Piece.inv (module D) b
                (Shape.flatten (module D) dims_a (Piece.inv (module D) a flat)));
        }
      in
      Piece.gen ~name:cname ~dims:(Piece.dims b) bij
