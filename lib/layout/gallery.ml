let two_idx name = function
  | [ i; j ] -> (i, j)
  | _ -> invalid_arg (name ^ ": expected a 2-dimensional index")

(* Generic bit tricks shared by the power-of-two layouts. *)

let bit (type a) (module D : Domain.S with type t = a) (x : a) p : a =
  D.rem (D.div x (D.const (1 lsl p))) (D.const 2)

let shl (type a) (module D : Domain.S with type t = a) (x : a) p : a =
  D.mul x (D.const (1 lsl p))

let xor_bit (type a) (module D : Domain.S with type t = a) (a : a) (b : a) : a
    =
  (* For 0/1 values: a lxor b = a + b - 2ab. *)
  D.sub (D.add a b) (D.mul (D.const 2) (D.mul a b))

let xor_word (type a) (module D : Domain.S with type t = a) ~bits (x : a)
    (y : a) : a =
  let acc = ref (D.const 0) in
  for b = 0 to bits - 1 do
    let xb = bit (module D) x b and yb = bit (module D) y b in
    acc := D.add !acc (shl (module D) (xor_bit (module D) xb yb) b)
  done;
  !acc

let log2_exact name n =
  let rec go acc m =
    if m = 1 then acc
    else if m mod 2 <> 0 then invalid_arg (name ^ ": size must be a power of 2")
    else go (acc + 1) (m / 2)
  in
  if n <= 0 then invalid_arg (name ^ ": size must be positive");
  go 0 n

(* Anti-diagonal order (paper, figure 8). *)

let antidiag_apply (type a) (module D : Domain.S with type t = a) n idx : a =
  let i, j = two_idx "antidiag" idx in
  let c k = D.const k in
  let adg = D.add (D.add i j) (c 1) in
  (* gauss t = t*(t-1)/2, exact because t*(t-1) is even. *)
  let gauss t = D.div (D.mul t (D.sub t (c 1))) (c 2) in
  let lower = D.add i (gauss adg) in
  let adg' = D.sub (c (2 * n)) adg in
  let upper = D.sub (D.add (c ((n * n) - n)) i) (gauss adg') in
  D.select (D.le adg (c n)) lower upper

let antidiag_inv (type a) (module D : Domain.S with type t = a) n flat : a list
    =
  let c k = D.const k in
  let s = n * (n + 1) / 2 in
  let in_lower = D.lt flat (c s) in
  let x = D.select in_lower flat (D.sub (c ((n * n) - 1)) flat) in
  let adg0 = D.isqrt (D.mul (c 2) x) in
  (* bump when x >= adg0*(adg0+1)/2 *)
  let tri = D.div (D.mul adg0 (D.add adg0 (c 1))) (c 2) in
  let adg = D.add adg0 (D.sub (c 1) (D.lt x tri)) in
  let i = D.sub x (D.div (D.mul adg (D.sub adg (c 1))) (c 2)) in
  let j = D.sub (D.sub adg i) (c 1) in
  let flip t = D.sub (c (n - 1)) t in
  [ D.select in_lower i (flip i); D.select in_lower j (flip j) ]

let antidiag n =
  if n <= 0 then invalid_arg "Gallery.antidiag: size must be positive";
  Piece.gen ~name:"antidiag" ~dims:[ n; n ]
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          antidiag_apply (module D) n idx);
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          antidiag_inv (module D) n flat);
    }

(* Complemented row-major order. *)

let reverse dims =
  Shape.validate dims;
  let complement (type a) (module D : Domain.S with type t = a) idx =
    List.map2 (fun n i -> D.sub (D.const (n - 1)) i) dims idx
  in
  Piece.gen ~name:"reverse" ~dims
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          Shape.flatten (module D) dims (complement (module D) idx));
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          complement (module D) (Shape.unflatten (module D) dims flat));
    }

(* Z-Morton order. *)

let morton ~d ~bits =
  if d <= 0 || bits <= 0 then
    invalid_arg "Gallery.morton: dimension and bit count must be positive";
  let n = 1 lsl bits in
  let dims = List.init d (fun _ -> n) in
  let apply (type a) (module D : Domain.S with type t = a) idx : a =
    let acc = ref (D.const 0) in
    List.iteri
      (fun t i ->
        for b = 0 to bits - 1 do
          let pos = (b * d) + (d - 1 - t) in
          acc := D.add !acc (shl (module D) (bit (module D) i b) pos)
        done)
      idx;
    !acc
  in
  let inv (type a) (module D : Domain.S with type t = a) flat : a list =
    List.init d (fun t ->
        let acc = ref (D.const 0) in
        for b = 0 to bits - 1 do
          let pos = (b * d) + (d - 1 - t) in
          acc := D.add !acc (shl (module D) (bit (module D) flat pos) b)
        done;
        !acc)
  in
  Piece.gen ~name:"morton" ~dims
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          apply (module D) idx);
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          inv (module D) flat);
    }

(* 2-D Hilbert-curve order (iterative rotate-and-accumulate form). *)

let hilbert ~bits =
  if bits <= 0 then invalid_arg "Gallery.hilbert: bit count must be positive";
  let n = 1 lsl bits in
  let apply (type a) (module D : Domain.S with type t = a) idx : a =
    let x0, y0 = two_idx "hilbert" idx in
    let c k = D.const k in
    let acc = ref (D.const 0) and x = ref x0 and y = ref y0 in
    for level = bits - 1 downto 0 do
      let s = 1 lsl level in
      let rx = bit (module D) !x level and ry = bit (module D) !y level in
      let quadrant = D.select rx (D.sub (c 3) ry) ry in
      acc := D.add !acc (D.mul (c (s * s)) quadrant);
      (* Rotate the sub-square when ry = 0 (flip first when rx = 1); the
         flip complements only the bits below [level], so mask first. *)
      let xl = D.rem !x (c s) and yl = D.rem !y (c s) in
      let flipped_x = D.select rx (D.sub (c (s - 1)) xl) xl in
      let flipped_y = D.select rx (D.sub (c (s - 1)) yl) yl in
      let ry_zero = D.eq ry (c 0) in
      x := D.select ry_zero flipped_y xl;
      y := D.select ry_zero flipped_x yl
    done;
    !acc
  in
  let inv (type a) (module D : Domain.S with type t = a) flat : a list =
    let c k = D.const k in
    let x = ref (c 0) and y = ref (c 0) and t = ref flat in
    for level = 0 to bits - 1 do
      let s = 1 lsl level in
      let rx = bit (module D) !t 1 in
      let ry = xor_bit (module D) (bit (module D) !t 0) rx in
      let flipped_x = D.select rx (D.sub (c (s - 1)) !x) !x in
      let flipped_y = D.select rx (D.sub (c (s - 1)) !y) !y in
      let ry_zero = D.eq ry (c 0) in
      let x' = D.select ry_zero flipped_y !x in
      let y' = D.select ry_zero flipped_x !y in
      x := D.add x' (D.mul (c s) rx);
      y := D.add y' (D.mul (c s) ry);
      t := D.div !t (c 4)
    done;
    [ !x; !y ]
  in
  Piece.gen ~name:"hilbert" ~dims:[ n; n ]
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          apply (module D) idx);
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          inv (module D) flat);
    }

(* XOR swizzle. *)

let xor_swizzle ~rows ~cols =
  if rows <= 0 then invalid_arg "Gallery.xor_swizzle: rows must be positive";
  let bits = log2_exact "Gallery.xor_swizzle" cols in
  let swz (type a) (module D : Domain.S with type t = a) i j : a =
    xor_word (module D) ~bits j (D.rem i (D.const cols))
  in
  Piece.gen ~name:"swizzle" ~dims:[ rows; cols ]
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          let i, j = two_idx "swizzle" idx in
          D.add (D.mul i (D.const cols)) (swz (module D) i j));
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          let i = D.div flat (D.const cols) in
          let j' = D.rem flat (D.const cols) in
          [ i; swz (module D) i j' ]);
    }

(* Parameterized XOR swizzle: the autotuner's shared-memory family.  The
   row key xored into the column is [((i >> shift) land mask)]; [mask <
   cols] keeps the xor inside the row, so each row is permuted in place
   and the whole map stays a bijection.  [mask = cols-1, shift = 0] is
   the classic {!xor_swizzle}; [mask = 0] degenerates to row-major. *)

let xor_swizzle_masked ~rows ~cols ~mask ~shift =
  if rows <= 0 then
    invalid_arg "Gallery.xor_swizzle_masked: rows must be positive";
  let bits = log2_exact "Gallery.xor_swizzle_masked" cols in
  if mask < 0 || mask >= cols then
    invalid_arg "Gallery.xor_swizzle_masked: mask must be in 0 .. cols-1";
  if shift < 0 || shift > Sys.int_size - 2 then
    invalid_arg "Gallery.xor_swizzle_masked: bad shift";
  let key (type a) (module D : Domain.S with type t = a) (i : a) : a =
    let shifted = if shift = 0 then i else D.div i (D.const (1 lsl shift)) in
    if mask = 0 then D.const 0
    else if (mask + 1) land mask = 0 then
      (* Prefix mask: a single mod keeps the expression cheap. *)
      D.rem shifted (D.const (mask + 1))
    else begin
      (* General mask: extract exactly the selected bits. *)
      let acc = ref (D.const 0) in
      for b = 0 to bits - 1 do
        if mask land (1 lsl b) <> 0 then
          acc := D.add !acc (shl (module D) (bit (module D) shifted b) b)
      done;
      !acc
    end
  in
  let swz (type a) (module D : Domain.S with type t = a) i j : a =
    xor_word (module D) ~bits j (key (module D) i)
  in
  Piece.gen
    ~name:(Printf.sprintf "swizzlex_m%d_s%d" mask shift)
    ~dims:[ rows; cols ]
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          let i, j = two_idx "swizzlex" idx in
          D.add (D.mul i (D.const cols)) (swz (module D) i j));
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          let i = D.div flat (D.const cols) in
          let j' = D.rem flat (D.const cols) in
          [ i; swz (module D) i j' ]);
    }

(* Cyclic diagonal storage. *)

let cyclic_diag n =
  if n <= 0 then invalid_arg "Gallery.cyclic_diag: size must be positive";
  Piece.gen ~name:"cyclicdiag" ~dims:[ n; n ]
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          let i, j = two_idx "cyclicdiag" idx in
          let diag = D.rem (D.add (D.sub j i) (D.const n)) (D.const n) in
          D.add (D.mul diag (D.const n)) i);
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          let i = D.rem flat (D.const n) in
          let diag = D.div flat (D.const n) in
          [ i; D.rem (D.add diag i) (D.const n) ]);
    }

(* Table-driven permutations. *)

let of_table ~name ~dims f =
  Shape.validate dims;
  let total = Shape.numel dims in
  let forward = Array.make total (-1) and backward = Array.make total (-1) in
  Seq.iter
    (fun idx ->
      let src = Shape.flatten_ints dims idx in
      let dst = f idx in
      if dst < 0 || dst >= total then
        invalid_arg
          (Printf.sprintf "Gallery.of_table(%s): image %d out of range" name dst);
      if backward.(dst) >= 0 then
        invalid_arg
          (Printf.sprintf "Gallery.of_table(%s): not injective at %d" name dst);
      forward.(src) <- dst;
      backward.(dst) <- src)
    (Shape.indices dims);
  let select_chain (type a) (module D : Domain.S with type t = a) table
      (key : a) : a =
    let acc = ref (D.const table.(total - 1)) in
    for k = total - 2 downto 0 do
      acc := D.select (D.eq key (D.const k)) (D.const table.(k)) !acc
    done;
    !acc
  in
  Piece.gen ~name ~dims
    {
      gb_apply =
        (fun (type a) (module D : Domain.S with type t = a) idx ->
          let flat = Shape.flatten (module D) dims idx in
          select_chain (module D) forward flat);
      gb_inv =
        (fun (type a) (module D : Domain.S with type t = a) flat ->
          Shape.unflatten (module D) dims
            (select_chain (module D) backward flat));
    }

(* Registry for the surface-language elaborator. *)

let names () =
  [
    "antidiag";
    "reverse";
    "morton";
    "hilbert";
    "swizzle";
    "swizzlex_m1_s0";
    "cyclicdiag";
  ]

(* The masked-swizzle family encodes its parameters in the piece name
   ([Piece.equal] compares [GenP]s by name and dims), so the registry
   parses them back out: [swizzlex_m<mask>_s<shift>].  Parsed by hand —
   [Scanf]'s [%d] would swallow the separating underscores as digit
   separators, and [int_of_string]'s hex/octal/binary/underscore forms
   would let "m0x1f" alias "m31" under a different name, breaking the
   name round-trip (and every name-keyed identity built on it: name-based
   [Piece.equal], fingerprint memoization, the F₂ compiler's family
   gate).  Only the canonical decimal spelling [Printf "%d"] emits is
   accepted: digits only, no sign, no leading zero. *)
let parse_swizzlex name =
  let decimal s =
    let n = String.length s in
    if n = 0 || (n > 1 && s.[0] = '0') then None
    else if String.exists (fun ch -> ch < '0' || ch > '9') s then None
    else int_of_string_opt s
  in
  let tagged_int tag s =
    if String.length s > 1 && s.[0] = tag then
      decimal (String.sub s 1 (String.length s - 1))
    else None
  in
  match String.split_on_char '_' name with
  | [ "swizzlex"; m; s ] -> (
    match (tagged_int 'm' m, tagged_int 's' s) with
    | Some mask, Some shift -> Some (mask, shift)
    | _ -> None)
  | _ -> None

let lookup name dims ~args =
  ignore args;
  match parse_swizzlex name with
  | Some (mask, shift) -> (
    match dims with
    | [ rows; cols ] -> (
      try Some (xor_swizzle_masked ~rows ~cols ~mask ~shift)
      with Invalid_argument _ -> None)
    | _ -> None)
  | None -> (
  match (name, dims) with
  | "antidiag", [ n; m ] when n = m -> Some (antidiag n)
  | "reverse", dims -> Some (reverse dims)
  | "morton", (n0 :: _ as dims) when List.for_all (( = ) n0) dims ->
    (try Some (morton ~d:(List.length dims) ~bits:(log2_exact "morton" n0))
     with Invalid_argument _ -> None)
  | "hilbert", [ n; m ] when n = m ->
    (try Some (hilbert ~bits:(log2_exact "hilbert" n))
     with Invalid_argument _ -> None)
  | "swizzle", [ rows; cols ] ->
    (try Some (xor_swizzle ~rows ~cols) with Invalid_argument _ -> None)
  | "cyclicdiag", [ n; m ] when n = m -> Some (cyclic_diag n)
  | _ -> None)
