module E = Lego_symbolic.Expr

type atom = Avar of string | Aconst of int

type opcode =
  | Add
  | Mul
  | Divf
  | Rem
  | CmpLe
  | CmpLt
  | CmpEq
  | Sel
  | Isqrt

type instr = { dst : string; op : opcode; args : atom list }

let opcode_name = function
  | Add -> "add"
  | Mul -> "mul"
  | Divf -> "divf"
  | Rem -> "rem"
  | CmpLe -> "cmple"
  | CmpLt -> "cmplt"
  | CmpEq -> "cmpeq"
  | Sel -> "select"
  | Isqrt -> "isqrt"

let lower ?(prefix = "t") roots =
  let table : (opcode * atom list, atom) Hashtbl.t = Hashtbl.create 64 in
  let instrs = ref [] in
  let counter = ref 0 in
  let emit op args =
    match Hashtbl.find_opt table (op, args) with
    | Some atom -> atom
    | None ->
      let dst = Printf.sprintf "%s%d" prefix !counter in
      incr counter;
      instrs := { dst; op; args } :: !instrs;
      let atom = Avar dst in
      Hashtbl.add table (op, args) atom;
      atom
  in
  let rec chain op = function
    | [] -> invalid_arg "Cse.lower: empty n-ary node"
    | [ a ] -> a
    | a :: b :: rest -> chain op (emit op [ a; b ] :: rest)
  in
  (* Hash-consed expressions make shared subtrees physically equal, so a
     memo over nodes skips re-lowering them entirely (the instruction
     table below still dedupes structurally identical chains). *)
  let memo : (E.t, atom) Hashtbl.t = Hashtbl.create 64 in
  let rec go (e : E.t) : atom =
    match e with
    | Const n -> Aconst n
    | Var v -> Avar v
    | _ -> (
      match Hashtbl.find_opt memo e with
      | Some a -> a
      | None ->
        let a = lower_node e in
        Hashtbl.add memo e a;
        a)
  and lower_node (e : E.t) : atom =
    match e with
    | Const n -> Aconst n
    | Var v -> Avar v
    | Add xs -> chain Add (List.map go xs)
    | Mul xs -> chain Mul (List.map go xs)
    | Div (a, b) -> emit Divf [ go a; go b ]
    | Mod (a, b) -> emit Rem [ go a; go b ]
    | Le (a, b) -> emit CmpLe [ go a; go b ]
    | Lt (a, b) -> emit CmpLt [ go a; go b ]
    | Eq (a, b) -> emit CmpEq [ go a; go b ]
    | Select (c, a, b) -> emit Sel [ go c; go a; go b ]
    | Isqrt a -> emit Isqrt [ go a ]
  in
  let results = List.map go roots in
  (List.rev !instrs, results)

let eval ~env instrs roots =
  let values = Hashtbl.create 64 in
  let atom = function
    | Aconst n -> n
    | Avar v -> (
      match Hashtbl.find_opt values v with Some n -> n | None -> env v)
  in
  List.iter
    (fun { dst; op; args } ->
      let a = List.map atom args in
      let v =
        match (op, a) with
        | Add, [ x; y ] -> x + y
        | Mul, [ x; y ] -> x * y
        | Divf, [ x; y ] -> Lego_layout.Domain.floor_div x y
        | Rem, [ x; y ] -> Lego_layout.Domain.floor_rem x y
        | CmpLe, [ x; y ] -> if x <= y then 1 else 0
        | CmpLt, [ x; y ] -> if x < y then 1 else 0
        | CmpEq, [ x; y ] -> if x = y then 1 else 0
        | Sel, [ c; x; y ] -> if c <> 0 then x else y
        | Isqrt, [ x ] -> Lego_layout.Domain.int_isqrt x
        | _ -> invalid_arg "Cse.eval: arity mismatch"
      in
      Hashtbl.replace values dst v)
    instrs;
  List.map atom roots

let pp_atom ppf = function
  | Avar v -> Format.fprintf ppf "%%%s" v
  | Aconst n -> Format.pp_print_int ppf n

let pp_instr ppf { dst; op; args } =
  Format.fprintf ppf "%%%s = %s %a" dst (opcode_name op)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_atom)
    args
