module E = Lego_symbolic.Expr
module R = Lego_symbolic.Range
module L = Lego_layout

type index = Fix of E.t | All

let arange_var k = Printf.sprintf "__arange%d" k

let rec pr prec (e : E.t) =
  let paren p s = if prec > p then "(" ^ s ^ ")" else s in
  match e with
  | Const n -> if n < 0 then paren 10 (string_of_int n) else string_of_int n
  | Var v -> v
  | Add xs ->
    paren 4
      (String.concat ""
         (List.mapi
            (fun k x ->
              if k = 0 then pr 4 x
              else
                match E.as_linear_term x with
                | c, fs when c < 0 -> " - " ^ pr 5 (E.of_linear_term (-c, fs))
                | _ -> " + " ^ pr 5 x)
            xs))
  | Mul xs -> paren 5 (String.concat " * " (List.map (pr 6) xs))
  | Div (a, b) -> paren 5 (pr 5 a ^ " // " ^ pr 6 b)
  | Mod (a, b) -> paren 5 (pr 5 a ^ " % " ^ pr 6 b)
  | Select (c, a, b) ->
    paren 1 ("tl.where(" ^ pr 0 c ^ ", " ^ pr 0 a ^ ", " ^ pr 0 b ^ ")")
  | Le (a, b) -> paren 3 (pr 4 a ^ " <= " ^ pr 4 b)
  | Lt (a, b) -> paren 3 (pr 4 a ^ " < " ^ pr 4 b)
  | Eq (a, b) -> paren 3 (pr 4 a ^ " == " ^ pr 4 b)
  | Isqrt a -> "tl.sqrt(" ^ pr 0 a ^ ").to(tl.int32)"

let expr e = pr 0 e

(* Assign arange variables to the [`All] positions, mirroring
   [slice_offset]'s numbering, and return the per-position component
   expressions plus the (var, extent) slice bindings in order. *)
let components_of indices dims =
  let slice_count = ref 0 in
  let components, slice_info =
    List.fold_left2
      (fun (components, info) index extent ->
        match index with
        | Fix e -> (e :: components, info)
        | All ->
          let k = !slice_count in
          incr slice_count;
          let v = arange_var k in
          (E.var v :: components, (v, extent) :: info))
      ([], []) indices dims
  in
  (List.rev components, List.rev slice_info)

let broadcast ~nslices k =
  if nslices = 1 then "" else if k = 0 then "[:, None]" else "[None, :]"

(* Literal substring replacement (the arange variables are generated
   names, so no overlap subtleties arise). *)
let replace_all ~sub ~by text =
  let sn = String.length sub and n = String.length text in
  if sn = 0 then text
  else begin
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i <= n - sn do
      if String.sub text !i sn = sub then begin
        Buffer.add_string buf by;
        i := !i + sn
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub text !i (n - !i));
    Buffer.contents buf
  end

let render_with_aranges ~slice_info text =
  let nslices = List.length slice_info in
  List.fold_left
    (fun text (k, (v, extent)) ->
      replace_all ~sub:v
        ~by:(Printf.sprintf "tl.arange(0, %d)%s" extent (broadcast ~nslices k))
        text)
    text
    (List.mapi (fun k b -> (k, b)) slice_info)

let slice_mask ?(env = R.empty_env) ~group ~extents indices =
  let dims = List.concat group in
  if List.length indices <> List.length dims then
    invalid_arg "Triton_printer.slice_mask: index rank mismatch";
  let d = List.length extents in
  List.iter
    (fun level ->
      if List.length level <> d then
        invalid_arg "Triton_printer.slice_mask: level rank mismatch")
    group;
  let components, slice_info = components_of indices dims in
  if List.length slice_info > 2 then
    invalid_arg
      "Triton_printer.slice_mask: at most two sliced dimensions supported";
  let env =
    List.fold_left
      (fun env (v, extent) -> R.env_add v (R.of_extent extent) env)
      env slice_info
  in
  let q = List.length group in
  (* Random access below runs per dimension inside the guard loop;
     arrays keep it linear in the rank where [List.nth] in those loops
     was quadratic. *)
  let group_a = Array.of_list (List.map Array.of_list group) in
  let components_a = Array.of_list components in
  let extents_a = Array.of_list extents in
  (* Global coordinate of dimension k: the canonical flattening of its
     per-level components. *)
  let coord k =
    let level_extents =
      List.init q (fun h -> group_a.(h).(k))
    in
    let level_components = List.init q (fun h -> components_a.((h * d) + k)) in
    Lego_layout.Shape.flatten
      (module Lego_symbolic.Sym.Dom)
      level_extents level_components
  in
  let terms =
    List.filteri
      (fun k _ ->
        let padded_extent =
          Array.fold_left (fun acc level -> acc * level.(k)) 1 group_a
        in
        padded_extent > extents_a.(k))
      (List.init d Fun.id)
    |> List.map (fun k ->
           let guard =
             Lego_symbolic.Simplify.simplify ~env
               (E.lt (coord k) (E.const extents_a.(k)))
           in
           "(" ^ pr 0 guard ^ ")")
  in
  match terms with
  | [] -> None
  | terms ->
    Some (render_with_aranges ~slice_info (String.concat " & " terms))

let slice_offset ?(simplify = true) ?(env = R.empty_env) layout indices =
  let dims = L.Group_by.dims layout in
  if List.length indices <> List.length dims then
    invalid_arg "Triton_printer.slice_offset: index rank mismatch";
  let components, slice_info = components_of indices dims in
  if List.length slice_info > 2 then
    invalid_arg
      "Triton_printer.slice_offset: at most two sliced dimensions supported";
  let env =
    List.fold_left
      (fun env (v, extent) -> R.env_add v (R.of_extent extent) env)
      env slice_info
  in
  let raw = L.Group_by.apply (module Lego_symbolic.Sym.Dom) layout components in
  let offset =
    if simplify then Lego_symbolic.Simplify.simplify ~env raw else raw
  in
  (* Synthetic names are unique words; plain textual substitution is safe
     because they cannot occur in user variables. *)
  render_with_aranges ~slice_info (expr offset)
