(* Self-contained marker scanner.  The previous implementation used the
   [Str] library, whose global match state is non-reentrant — unsafe once
   templates are rendered inside the conformance harness's loops.  A
   marker is "{{", any number of spaces, an identifier, any number of
   spaces, "}}"; anything else (including a lone "{{") is literal text. *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || (c >= '0' && c <= '9')

(* [next_marker tpl pos] finds the first marker at or after [pos]:
   [Some (start, stop, name)] with [stop] one past the closing braces. *)
let next_marker tpl pos =
  let n = String.length tpl in
  let try_match start =
    let i = ref (start + 2) in
    while !i < n && tpl.[!i] = ' ' do
      incr i
    done;
    if !i < n && is_ident_start tpl.[!i] then begin
      let id0 = !i in
      while !i < n && is_ident tpl.[!i] do
        incr i
      done;
      let name = String.sub tpl id0 (!i - id0) in
      while !i < n && tpl.[!i] = ' ' do
        incr i
      done;
      if !i + 1 < n && tpl.[!i] = '}' && tpl.[!i + 1] = '}' then
        Some (start, !i + 2, name)
      else None
    end
    else None
  in
  let rec find i =
    if i + 1 >= n then None
    else if tpl.[i] = '{' && tpl.[i + 1] = '{' then
      match try_match i with Some m -> Some m | None -> find (i + 1)
    else find (i + 1)
  in
  find pos

(* Fold [f] over every marker left to right. *)
let fold_markers tpl ~literal ~marker acc =
  let rec go acc pos =
    match next_marker tpl pos with
    | None -> literal acc (String.sub tpl pos (String.length tpl - pos))
    | Some (start, stop, name) ->
      let acc = literal acc (String.sub tpl pos (start - pos)) in
      go (marker acc name) stop
  in
  go acc 0

let placeholders tpl =
  List.rev
    (fold_markers tpl
       ~literal:(fun acc _ -> acc)
       ~marker:(fun acc name -> if List.mem name acc then acc else name :: acc)
       [])

let render ~bindings tpl =
  let buf = Buffer.create (String.length tpl) in
  let missing =
    fold_markers tpl
      ~literal:(fun acc s ->
        Buffer.add_string buf s;
        acc)
      ~marker:(fun acc name ->
        match List.assoc_opt name bindings with
        | Some value ->
          Buffer.add_string buf value;
          acc
        | None -> if List.mem name acc then acc else name :: acc)
      []
  in
  match missing with
  | [] -> Ok (Buffer.contents buf)
  | names ->
    Error
      (Printf.sprintf "template: unbound placeholders: %s"
         (String.concat ", " (List.rev names)))

let render_exn ~bindings tpl =
  match render ~bindings tpl with
  | Ok s -> s
  | Error msg -> invalid_arg msg
