(* A domain pool with deterministic fan-out/merge.

   Batches are published by bumping a generation counter under [lock];
   workers wait for the generation to move, claim chunks from the
   batch's atomic cursor, and write results into slots owned by exactly
   one task each.  The caller participates as a worker, then blocks
   until [active] drops to zero — that mutex round-trip is also the
   happens-before edge that makes every slot written by a worker
   visible to the caller.  A worker that sleeps through an entire batch
   wakes to an exhausted cursor and simply moves on: every batch's work
   function is a no-op once its cursor has passed the end. *)

type batch = { work : unit -> unit }

type pool = {
  size : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable generation : int;
  mutable current : batch option;
  mutable active : int; (* workers inside the current batch's work fn *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  owner : Domain.id;
  mutable busy : bool; (* a map call is in flight on the owner domain *)
}

let default_jobs () =
  match Sys.getenv_opt "LEGO_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs p = p.size

let worker pool () =
  let gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while pool.generation = !gen && not pool.stopping do
      Condition.wait pool.cond pool.lock
    done;
    if pool.stopping then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      gen := pool.generation;
      let batch = pool.current in
      pool.active <- pool.active + 1;
      Mutex.unlock pool.lock;
      (match batch with Some b -> b.work () | None -> ());
      Mutex.lock pool.lock;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.cond;
      Mutex.unlock pool.lock
    end
  done

(* Spawning more domains than the machine has cores is a strict loss
   for this pool: OCaml 5 minor collections are stop-the-world
   handshakes across every running domain, so oversubscribed workers
   add GC synchronization and OS timeslicing without adding
   parallelism (the cause of the nw j2 < j1 regression measured on a
   single-core host).  [create] therefore clamps the number of
   {e spawned} domains to the hardware count; the pool still reports
   the requested [jobs] (the determinism contract makes results
   independent of how many domains actually run). *)
let create ?jobs ?(oversubscribe = false) () =
  let size = match jobs with Some j -> j | None -> default_jobs () in
  if size < 1 then invalid_arg "Exec.create: jobs must be >= 1";
  let spawned =
    if oversubscribe then size - 1
    else min (size - 1) (max 0 (Domain.recommended_domain_count () - 1))
  in
  let pool =
    {
      size;
      lock = Mutex.create ();
      cond = Condition.create ();
      generation = 0;
      current = None;
      active = 0;
      stopping = false;
      domains = [];
      owner = Domain.self ();
      busy = false;
    }
  in
  pool.domains <- List.init spawned (fun _ -> Domain.spawn (worker pool));
  pool

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.cond;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.domains;
  pool.domains <- []

let with_pool ?jobs ?oversubscribe f =
  let pool = create ?jobs ?oversubscribe () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* One slot per task: the task's value or its captured exception. *)
type 'b slot =
  | Pending
  | Value of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ?chunk ~pool xs f =
  if Domain.self () <> pool.owner then
    invalid_arg "Exec.map: pool used from a foreign domain";
  if pool.busy then invalid_arg "Exec.map: nested map on the same pool";
  if pool.stopping then invalid_arg "Exec.map: pool is shut down";
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    pool.busy <- true;
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Exec.map: chunk must be >= 1"
      (* Adaptive default: n / (8 * jobs) amortizes cursor traffic, but
         on mega-batches an uncapped chunk lets one slow chunk strand
         the batch tail on a single worker; 1024 keeps >= 8 steals per
         worker beyond ~8k tasks while tiny batches still get chunk 1
         (perfect balance for few expensive sims). *)
      | None -> max 1 (min 1024 (n / (8 * pool.size)))
    in
    let slots = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let work () =
      let continue_ = ref true in
      while !continue_ do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then continue_ := false
        else
          for i = start to min n (start + chunk) - 1 do
            slots.(i) <-
              (match f xs.(i) with
              | v -> Value v
              | exception e -> Raised (e, Printexc.get_raw_backtrace ()))
          done
      done
    in
    Fun.protect
      ~finally:(fun () -> pool.busy <- false)
      (fun () ->
        (* Publish the batch, participate, then join it. *)
        Mutex.lock pool.lock;
        pool.current <- Some { work };
        pool.generation <- pool.generation + 1;
        Condition.broadcast pool.cond;
        Mutex.unlock pool.lock;
        work ();
        Mutex.lock pool.lock;
        while pool.active > 0 do
          Condition.wait pool.cond pool.lock
        done;
        Mutex.unlock pool.lock;
        Array.map
          (function
            | Value v -> v
            | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
            | Pending -> assert false)
          slots)
  end
