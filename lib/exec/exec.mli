(** Deterministic multicore fan-out over an OCaml 5 domain pool.

    The hot loops of this repository — differential conformance, the
    figure sweeps of the benchmark harness, and exhaustive bijectivity
    checking — are embarrassingly parallel: every layout, kernel
    configuration, and index range is independent.  This module gives
    them a shared work-distribution layer with a strict determinism
    contract:

    - {b Submission-order merge.}  [map ~pool xs f] returns exactly
      [Array.map f xs]: result [i] is [f xs.(i)], whatever domain
      computed it and in whatever order tasks were stolen.
    - {b Deterministic exceptions.}  Exceptions are captured per task;
      after every task has either finished or raised, the exception of
      the {e lowest} task index is re-raised (with its backtrace).
      Later tasks still run, so the observable outcome does not depend
      on scheduling.
    - {b Chunked work-stealing.}  Tasks are handed out in contiguous
      index chunks from a shared atomic cursor, so cheap items amortize
      the cursor traffic while expensive items still balance.

    Tasks must be self-contained: any task-visible mutable state has to
    be owned by the task (or be domain-local, as the symbolic engine's
    memo tables are).  A task must not call [map] on the pool that is
    running it — that is detected and rejected.

    The pool spawns [jobs - 1] worker domains; the calling domain is the
    remaining worker, so [jobs = 1] degrades to an inline sequential
    loop with the same semantics (and no domains spawned). *)

type pool

val default_jobs : unit -> int
(** Pool size used when [create] is given no [jobs]: the [LEGO_JOBS]
    environment variable when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> ?oversubscribe:bool -> unit -> pool
(** [create ()] makes a pool of [jobs] (default {!default_jobs})
    workers, including the caller.  The number of domains actually
    {e spawned} is clamped to [Domain.recommended_domain_count () - 1]:
    oversubscribing a host strictly loses here, because OCaml 5 minor
    collections are stop-the-world handshakes across all running
    domains, so extra domains add GC synchronization and timeslicing
    without adding parallelism.  The clamp never changes results (the
    determinism contract holds at any domain count) — only wall-clock.
    [~oversubscribe:true] disables the clamp (used by tests exercising
    multi-domain interleavings on small hosts).  Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : pool -> int
(** The pool's {e requested} worker count (>= 1), counting the calling
    domain — not reduced by the hardware clamp, so callers can key
    determinism-relevant decisions (none exist today) and reporting on
    the configured [-j]. *)

val shutdown : pool -> unit
(** Join every worker domain.  Idempotent.  The pool must not be used
    afterwards. *)

val with_pool : ?jobs:int -> ?oversubscribe:bool -> (pool -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool, shutting it down on exit
    (normal or exceptional). *)

val map : ?chunk:int -> pool:pool -> 'a array -> ('a -> 'b) -> 'b array
(** [map ~pool xs f] computes [Array.map f xs] across the pool's
    domains under the determinism contract above.  [chunk] (default:
    [length / (8 * jobs)] clamped to [1 .. 1024]) is the number of
    consecutive indices a worker claims at a time — the cap keeps
    mega-batches stealing finely enough that one slow chunk cannot
    strand the tail, while tiny batches degrade to chunk 1 (one steal
    per expensive task).  Only the domain that created the pool may
    call [map], and not from inside a task of the same pool (both
    raise [Invalid_argument]). *)
