type perm =
  | Reg_p of int list * int list
  | Gen_p of string * int list
  | Row of int list
  | Col of int list

type aexpr =
  | Atom of perm
  | Strided of int list * int list
  | Compose of aexpr * aexpr
  | Complement of aexpr * int
  | Divide of aexpr * aexpr
  | Product of aexpr * aexpr

type block =
  | Order_by of aexpr list
  | Group_by of int list list
  | Tile_by of int list list
  | Tile_order_by of aexpr list

type chain = block list

let pp_ints ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    l

let pp_perm ppf = function
  | Reg_p (dims, sigma) ->
    Format.fprintf ppf "RegP(%a, %a)" pp_ints dims pp_ints sigma
  | Gen_p (name, dims) -> Format.fprintf ppf "GenP(%s%a)" name pp_ints dims
  | Row dims -> Format.fprintf ppf "Row(%a)" pp_ints dims
  | Col dims -> Format.fprintf ppf "Col(%a)" pp_ints dims

let rec pp_aexpr ppf = function
  | Atom p -> pp_perm ppf p
  | Strided (shape, stride) ->
    Format.fprintf ppf "Strided(%a, %a)" pp_ints shape pp_ints stride
  | Compose (a, b) -> Format.fprintf ppf "(%a o %a)" pp_aexpr a pp_aexpr b
  | Complement (a, m) -> Format.fprintf ppf "complement(%a, %d)" pp_aexpr a m
  | Divide (a, b) -> Format.fprintf ppf "divide(%a, %a)" pp_aexpr a pp_aexpr b
  | Product (a, b) -> Format.fprintf ppf "product(%a, %a)" pp_aexpr a pp_aexpr b

let pp_list pp ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf l

let pp_block ppf = function
  | Order_by exprs -> Format.fprintf ppf "OrderBy(%a)" (pp_list pp_aexpr) exprs
  | Group_by shapes -> Format.fprintf ppf "GroupBy(%a)" (pp_list pp_ints) shapes
  | Tile_by shapes -> Format.fprintf ppf "TileBy(%a)" (pp_list pp_ints) shapes
  | Tile_order_by exprs ->
    Format.fprintf ppf "TileOrderBy(%a)" (pp_list pp_aexpr) exprs

let pp_chain ppf chain =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ".")
    pp_block ppf chain
