(** Surface-syntax AST, mirroring the grammar of the paper's figure 5
    plus the dotted-chain notation, the sugar of section 3.2, and the
    CuTe-style algebra operators. *)

type perm =
  | Reg_p of int list * int list  (** dims, 1-based permutation *)
  | Gen_p of string * int list  (** gallery bijection name, dims *)
  | Row of int list
  | Col of int list

type aexpr =
  | Atom of perm
  | Strided of int list * int list
      (** [Strided([shape], [stride])] — a raw strided layout literal,
          useful as an operand of the operators below (it need not be a
          bijection by itself). *)
  | Compose of aexpr * aexpr  (** infix [a o b]; left-associative *)
  | Complement of aexpr * int  (** [complement(a, M)] *)
  | Divide of aexpr * aexpr  (** [divide(a, b)] — logical division *)
  | Product of aexpr * aexpr  (** [product(a, b)] — logical product *)

type block =
  | Order_by of aexpr list
  | Group_by of int list list
  | Tile_by of int list list
  | Tile_order_by of aexpr list

type chain = block list
(** Written order: the final block is the grouping ([GroupBy]/[TileBy]),
    preceding blocks are reorderings applied right-to-left. *)

val pp_chain : Format.formatter -> chain -> unit
