(** Tokens of the LEGO surface notation, with source positions. *)

type t =
  | INT of int
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | COMPOSE  (** the bare identifier [o] — infix layout composition *)
  | EOF

type pos = { line : int; col : int }
type spanned = { token : t; pos : pos }

val describe : t -> string
val pp_pos : Format.formatter -> pos -> unit
