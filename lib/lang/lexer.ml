exception Lex_error of Token.pos * string

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let pos () = { Token.line = !line; col = !col } in
  let push token p = tokens := { Token.token; pos = p } :: !tokens in
  let i = ref 0 in
  let advance () =
    (if !i < n then
       match src.[!i] with
       | '\n' ->
         incr line;
         col := 1
       | _ -> incr col);
    incr i
  in
  while !i < n do
    let c = src.[!i] and p = pos () in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let digits = String.sub src start (!i - start) in
      match int_of_string_opt digits with
      | Some v -> push (Token.INT v) p
      | None ->
        raise
          (Lex_error
             (p, Printf.sprintf "integer literal %s does not fit" digits))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        advance ()
      done;
      match String.sub src start (!i - start) with
      (* The bare word [o] is the composition operator, never a name. *)
      | "o" -> push Token.COMPOSE p
      | word -> push (Token.IDENT word) p
    end
    else begin
      (match c with
      | '(' -> push Token.LPAREN p
      | ')' -> push Token.RPAREN p
      | '[' -> push Token.LBRACKET p
      | ']' -> push Token.RBRACKET p
      | ',' -> push Token.COMMA p
      | '.' -> push Token.DOT p
      | c -> raise (Lex_error (p, Printf.sprintf "unexpected character %C" c)));
      advance ()
    end
  done;
  push Token.EOF (pos ());
  List.rev !tokens
