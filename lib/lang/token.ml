type t =
  | INT of int
  | IDENT of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | DOT
  | COMPOSE
  | EOF

type pos = { line : int; col : int }
type spanned = { token : t; pos : pos }

let describe = function
  | INT n -> Printf.sprintf "integer %d" n
  | IDENT s -> Printf.sprintf "identifier %S" s
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | COMPOSE -> "'o'"
  | EOF -> "end of input"

let pp_pos ppf { line; col } = Format.fprintf ppf "%d:%d" line col
