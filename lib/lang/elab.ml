module L = Lego_layout
module A = L.Algebra
module D = Lego_symbolic.Discharge

exception Elab_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

let elab_perm = function
  | Ast.Reg_p (dims, sigma) ->
    if List.length dims <> List.length sigma then
      err "RegP: %d dimensions but a %d-entry permutation" (List.length dims)
        (List.length sigma);
    L.Piece.reg ~dims ~sigma:(L.Sigma.of_one_based sigma)
  | Ast.Gen_p (name, dims) -> (
    match L.Gallery.lookup name dims ~args:[] with
    | Some piece -> piece
    | None ->
      err "GenP: no gallery bijection %S at %s (known: %s)" name
        (Format.asprintf "%a" L.Shape.pp dims)
        (String.concat ", " (L.Gallery.names ())))
  | Ast.Row dims -> L.Sugar.row dims
  | Ast.Col dims -> L.Sugar.col dims

(* Algebra expressions elaborate to either a strided layout (kept
   strided so further operators stay in the exact algebra) or a piece
   (once a gallery bijection is involved).  Every operator's side
   conditions are discharged by the prover; a failed discharge surfaces
   as the positioned error Algebra.pp_error renders. *)
type aval = Strided_v of A.t | Piece_v of L.Piece.t

let algebra_err (e : A.error) = err "%s" (Format.asprintf "%a" A.pp_error e)
let get = function Ok v -> v | Error e -> algebra_err e

let layout_of = function
  | Strided_v l -> Some l
  | Piece_v p -> A.of_piece p

let piece_of = function
  | Piece_v p -> p
  | Strided_v l -> get (D.to_piece l)

let rec elab_aexpr = function
  | Ast.Atom p -> Piece_v (elab_perm p)
  | Ast.Strided (shape, stride) -> Strided_v (A.make ~shape ~stride)
  | Ast.Compose (ea, eb) -> (
    let va = elab_aexpr ea and vb = elab_aexpr eb in
    match (layout_of va, layout_of vb) with
    | Some la, Some lb -> (
      match D.compose la lb with
      | Ok l -> Strided_v l
      | Error e ->
        (* Bijective operands that fail the strided divisibility can
           still compose as a general (GenP) bijection. *)
        if A.is_bijection la && A.is_bijection lb then
          Piece_v (get (D.compose_pieces (piece_of va) (piece_of vb)))
        else algebra_err e)
    | _ -> Piece_v (get (D.compose_pieces (piece_of va) (piece_of vb))))
  | Ast.Complement (ea, m) -> (
    match layout_of (elab_aexpr ea) with
    | Some la -> Strided_v (get (D.complement la m))
    | None -> err "complement: operand is not a strided layout")
  | Ast.Divide (ea, eb) -> (
    let va = elab_aexpr ea in
    let vb = elab_aexpr eb in
    match layout_of vb with
    | None -> err "divide: the tile operand must be a strided layout"
    | Some lb -> (
      match layout_of va with
      | Some la -> Strided_v (get (D.logical_divide la lb))
      | None ->
        (* General left operand: A o tiler(B, |A|) at the piece level. *)
        let pa = piece_of va in
        let t = get (D.tiler lb (L.Piece.numel pa)) in
        Piece_v (get (D.compose_pieces pa (get (D.to_piece t))))))
  | Ast.Product (ea, eb) -> (
    match (layout_of (elab_aexpr ea), layout_of (elab_aexpr eb)) with
    | Some la, Some lb -> Strided_v (get (D.logical_product la lb))
    | _ -> err "product: operands must be strided layouts")

let elab_piece e = piece_of (elab_aexpr e)

let elab_reorder = function
  | Ast.Order_by exprs -> [ L.Order_by.make (List.map elab_piece exprs) ]
  | Ast.Tile_order_by exprs -> L.Sugar.tile_order_by (List.map elab_piece exprs)
  | Ast.Tile_by shapes -> [ L.Sugar.tile_by shapes ]
  | Ast.Group_by _ -> err "GroupBy may only end a chain"

let chain blocks =
  match List.rev blocks with
  | [] -> err "empty chain"
  | last :: rev_prefix ->
    let prefix = List.rev rev_prefix in
    let reorders = List.concat_map elab_reorder prefix in
    (match last with
    | Ast.Group_by shapes -> L.Group_by.make ~chain:reorders shapes
    | Ast.Tile_by shapes ->
      L.Group_by.make ~chain:(reorders @ [ L.Sugar.tile_by shapes ]) shapes
    | Ast.Order_by _ | Ast.Tile_order_by _ ->
      err "a chain must end in GroupBy or TileBy")

let layout_of_string text =
  match Parser.parse text with
  | Error e -> Error e
  | Ok ast -> (
    match chain ast with
    | layout -> Ok layout
    | exception Elab_error msg -> Error msg
    | exception Invalid_argument msg -> Error msg)

let roundtrip layout =
  layout_of_string (Format.asprintf "%a" L.Group_by.pp layout)
