exception Parse_error of Token.pos * string

type state = { mutable rest : Token.spanned list }

let fail pos msg = raise (Parse_error (pos, msg))

let peek st =
  match st.rest with
  | [] -> assert false (* the lexer always terminates the list with EOF *)
  | s :: _ -> s

let advance st =
  match st.rest with [] -> assert false | _ :: rest -> st.rest <- rest

let expect st token =
  let s = peek st in
  if s.Token.token = token then advance st
  else
    fail s.Token.pos
      (Printf.sprintf "expected %s, found %s" (Token.describe token)
         (Token.describe s.Token.token))

let parse_int st =
  let s = peek st in
  match s.Token.token with
  | Token.INT n ->
    advance st;
    n
  | t -> fail s.Token.pos ("expected an integer, found " ^ Token.describe t)

let parse_shape st =
  expect st Token.LBRACKET;
  let rec go acc =
    let n = parse_int st in
    let s = peek st in
    match s.Token.token with
    | Token.COMMA ->
      advance st;
      go (n :: acc)
    | Token.RBRACKET ->
      advance st;
      List.rev (n :: acc)
    | t -> fail s.Token.pos ("expected ',' or ']', found " ^ Token.describe t)
  in
  go []

let parse_comma_sep st parse_item =
  let rec go acc =
    let item = parse_item st in
    let s = peek st in
    match s.Token.token with
    | Token.COMMA ->
      advance st;
      go (item :: acc)
    | Token.RPAREN ->
      advance st;
      List.rev (item :: acc)
    | t -> fail s.Token.pos ("expected ',' or ')', found " ^ Token.describe t)
  in
  go []

(* Plain integer list for Row/Col arguments (no brackets). *)
let parse_ints_to_rparen st = parse_comma_sep st parse_int

(* Keywords may carry an arity suffix: "OrderBy4".  Returns the base word
   and the optional arity; an over-long suffix is a positioned error
   rather than an escaping [Failure "int_of_string"]. *)
let split_arity pos word =
  let n = String.length word in
  let k = ref n in
  while !k > 0 && word.[!k - 1] >= '0' && word.[!k - 1] <= '9' do
    decr k
  done;
  if !k = n then (word, None)
  else
    let suffix = String.sub word !k (n - !k) in
    match int_of_string_opt suffix with
    | Some a -> (String.sub word 0 !k, Some a)
    | None ->
      fail pos (Printf.sprintf "arity suffix %s does not fit in an int" suffix)

let rec parse_perm st =
  let s = peek st in
  match s.Token.token with
  | Token.IDENT "RegP" ->
    advance st;
    expect st Token.LPAREN;
    let dims = parse_shape st in
    expect st Token.COMMA;
    let sigma = parse_shape st in
    expect st Token.RPAREN;
    Ast.Reg_p (dims, sigma)
  | Token.IDENT "GenP" ->
    advance st;
    expect st Token.LPAREN;
    let name =
      let s = peek st in
      match s.Token.token with
      | Token.IDENT name ->
        advance st;
        name
      | t ->
        fail s.Token.pos ("expected a bijection name, found " ^ Token.describe t)
    in
    let dims = parse_shape st in
    expect st Token.RPAREN;
    Ast.Gen_p (name, dims)
  | Token.IDENT "Row" ->
    advance st;
    expect st Token.LPAREN;
    Ast.Row (parse_ints_to_rparen st)
  | Token.IDENT "Col" ->
    advance st;
    expect st Token.LPAREN;
    Ast.Col (parse_ints_to_rparen st)
  | t -> fail s.Token.pos ("expected a permutation, found " ^ Token.describe t)

and parse_block st =
  let s = peek st in
  match s.Token.token with
  | Token.IDENT word -> (
    let base, arity = split_arity s.Token.pos word in
    let check_arity what got =
      match arity with
      | Some a when a <> got ->
        fail s.Token.pos
          (Printf.sprintf "%s%d annotation does not match its %d-entry body"
             what a got)
      | _ -> ()
    in
    advance st;
    expect st Token.LPAREN;
    match base with
    | "OrderBy" ->
      let perms = parse_comma_sep st parse_perm in
      (* The paper's subscript is the per-tile dimensionality d. *)
      List.iter
        (fun p ->
          let rank =
            match p with
            | Ast.Reg_p (d, _) | Ast.Gen_p (_, d) | Ast.Row d | Ast.Col d ->
              List.length d
          in
          check_arity "OrderBy" rank)
        perms;
      Ast.Order_by perms
    | "TileOrderBy" ->
      let perms = parse_comma_sep st parse_perm in
      Ast.Tile_order_by perms
    | "GroupBy" ->
      let shapes = parse_comma_sep st parse_shape in
      List.iter (fun s -> check_arity "GroupBy" (List.length s)) shapes;
      Ast.Group_by shapes
    | "TileBy" ->
      let shapes = parse_comma_sep st parse_shape in
      Ast.Tile_by shapes
    | other -> fail s.Token.pos (Printf.sprintf "unknown block %S" other))
  | t -> fail s.Token.pos ("expected a block, found " ^ Token.describe t)

let parse_chain text =
  let st = { rest = Lexer.tokenize text } in
  let rec go acc =
    let block = parse_block st in
    let s = peek st in
    match s.Token.token with
    | Token.DOT ->
      advance st;
      go (block :: acc)
    | Token.EOF -> List.rev (block :: acc)
    | t -> fail s.Token.pos ("expected '.' or end of input, found " ^ Token.describe t)
  in
  go []

let parse text =
  match parse_chain text with
  | chain -> Ok chain
  | exception Parse_error (pos, msg) ->
    Error (Format.asprintf "%a: %s" Token.pp_pos pos msg)
  | exception Lexer.Lex_error (pos, msg) ->
    Error (Format.asprintf "%a: %s" Token.pp_pos pos msg)
