exception Parse_error of Token.pos * string

type state = { mutable rest : Token.spanned list }

let fail pos msg = raise (Parse_error (pos, msg))

let peek st =
  match st.rest with
  | [] -> assert false (* the lexer always terminates the list with EOF *)
  | s :: _ -> s

let advance st =
  match st.rest with [] -> assert false | _ :: rest -> st.rest <- rest

let expect st token =
  let s = peek st in
  if s.Token.token = token then advance st
  else
    fail s.Token.pos
      (Printf.sprintf "expected %s, found %s" (Token.describe token)
         (Token.describe s.Token.token))

let parse_int st =
  let s = peek st in
  match s.Token.token with
  | Token.INT n ->
    advance st;
    n
  | t -> fail s.Token.pos ("expected an integer, found " ^ Token.describe t)

let parse_shape st =
  expect st Token.LBRACKET;
  let rec go acc =
    let n = parse_int st in
    let s = peek st in
    match s.Token.token with
    | Token.COMMA ->
      advance st;
      go (n :: acc)
    | Token.RBRACKET ->
      advance st;
      List.rev (n :: acc)
    | t -> fail s.Token.pos ("expected ',' or ']', found " ^ Token.describe t)
  in
  go []

let parse_comma_sep st parse_item =
  let rec go acc =
    let item = parse_item st in
    let s = peek st in
    match s.Token.token with
    | Token.COMMA ->
      advance st;
      go (item :: acc)
    | Token.RPAREN ->
      advance st;
      List.rev (item :: acc)
    | t -> fail s.Token.pos ("expected ',' or ')', found " ^ Token.describe t)
  in
  go []

(* Plain integer list for Row/Col arguments (no brackets). *)
let parse_ints_to_rparen st = parse_comma_sep st parse_int

(* Keywords may carry an arity suffix: "OrderBy4".  Returns the base word
   and the optional arity; an over-long suffix is a positioned error
   rather than an escaping [Failure "int_of_string"]. *)
let split_arity pos word =
  let n = String.length word in
  let k = ref n in
  while !k > 0 && word.[!k - 1] >= '0' && word.[!k - 1] <= '9' do
    decr k
  done;
  if !k = n then (word, None)
  else
    let suffix = String.sub word !k (n - !k) in
    match int_of_string_opt suffix with
    | Some a -> (String.sub word 0 !k, Some a)
    | None ->
      fail pos (Printf.sprintf "arity suffix %s does not fit in an int" suffix)

(* Rank of an algebra expression when statically evident — used only for
   the optional OrderByN arity annotation.  Operator results have no
   syntactic rank, so the check is skipped for them. *)
let static_rank = function
  | Ast.Atom (Ast.Reg_p (d, _) | Ast.Gen_p (_, d) | Ast.Row d | Ast.Col d) ->
    Some (List.length d)
  | Ast.Strided (shape, _) -> Some (List.length shape)
  | Ast.Compose _ | Ast.Divide _ | Ast.Product _ | Ast.Complement _ -> None

let rec parse_perm st =
  let s = peek st in
  match s.Token.token with
  | Token.IDENT "RegP" ->
    advance st;
    expect st Token.LPAREN;
    let dims = parse_shape st in
    expect st Token.COMMA;
    let sigma = parse_shape st in
    expect st Token.RPAREN;
    Ast.Reg_p (dims, sigma)
  | Token.IDENT "GenP" ->
    advance st;
    expect st Token.LPAREN;
    let name =
      let s = peek st in
      match s.Token.token with
      | Token.IDENT name ->
        advance st;
        name
      | t ->
        fail s.Token.pos ("expected a bijection name, found " ^ Token.describe t)
    in
    let dims = parse_shape st in
    expect st Token.RPAREN;
    Ast.Gen_p (name, dims)
  | Token.IDENT "Row" ->
    advance st;
    expect st Token.LPAREN;
    Ast.Row (parse_ints_to_rparen st)
  | Token.IDENT "Col" ->
    advance st;
    expect st Token.LPAREN;
    Ast.Col (parse_ints_to_rparen st)
  | t -> fail s.Token.pos ("expected a permutation, found " ^ Token.describe t)

(* aexpr ::= aterm ('o' aterm)*  — 'o' is left-associative. *)
and parse_aexpr st =
  let rec infix lhs =
    let s = peek st in
    match s.Token.token with
    | Token.COMPOSE ->
      advance st;
      let rhs = parse_aterm st in
      infix (Ast.Compose (lhs, rhs))
    | _ -> lhs
  in
  infix (parse_aterm st)

and parse_aterm st =
  let s = peek st in
  match s.Token.token with
  | Token.LPAREN ->
    advance st;
    let e = parse_aexpr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT "Strided" ->
    advance st;
    expect st Token.LPAREN;
    let shape = parse_shape st in
    expect st Token.COMMA;
    let stride = parse_shape st in
    expect st Token.RPAREN;
    Ast.Strided (shape, stride)
  | Token.IDENT "complement" ->
    advance st;
    expect st Token.LPAREN;
    let a = parse_aexpr st in
    expect st Token.COMMA;
    let m = parse_int st in
    expect st Token.RPAREN;
    Ast.Complement (a, m)
  | Token.IDENT "divide" ->
    advance st;
    expect st Token.LPAREN;
    let a = parse_aexpr st in
    expect st Token.COMMA;
    let b = parse_aexpr st in
    expect st Token.RPAREN;
    Ast.Divide (a, b)
  | Token.IDENT "product" ->
    advance st;
    expect st Token.LPAREN;
    let a = parse_aexpr st in
    expect st Token.COMMA;
    let b = parse_aexpr st in
    expect st Token.RPAREN;
    Ast.Product (a, b)
  | _ -> Ast.Atom (parse_perm st)

and parse_block st =
  let s = peek st in
  match s.Token.token with
  | Token.IDENT word -> (
    let base, arity = split_arity s.Token.pos word in
    let check_arity what got =
      match arity with
      | Some a when a <> got ->
        fail s.Token.pos
          (Printf.sprintf "%s%d annotation does not match its %d-entry body"
             what a got)
      | _ -> ()
    in
    advance st;
    expect st Token.LPAREN;
    match base with
    | "OrderBy" ->
      let exprs = parse_comma_sep st parse_aexpr in
      (* The paper's subscript is the per-tile dimensionality d; operator
         results carry no syntactic rank, so only atoms are checked. *)
      List.iter
        (fun e ->
          match static_rank e with
          | Some rank -> check_arity "OrderBy" rank
          | None -> ())
        exprs;
      Ast.Order_by exprs
    | "TileOrderBy" ->
      let exprs = parse_comma_sep st parse_aexpr in
      Ast.Tile_order_by exprs
    | "GroupBy" ->
      let shapes = parse_comma_sep st parse_shape in
      List.iter (fun s -> check_arity "GroupBy" (List.length s)) shapes;
      Ast.Group_by shapes
    | "TileBy" ->
      let shapes = parse_comma_sep st parse_shape in
      Ast.Tile_by shapes
    | other -> fail s.Token.pos (Printf.sprintf "unknown block %S" other))
  | t -> fail s.Token.pos ("expected a block, found " ^ Token.describe t)

let parse_chain text =
  let st = { rest = Lexer.tokenize text } in
  let rec go acc =
    let block = parse_block st in
    let s = peek st in
    match s.Token.token with
    | Token.DOT ->
      advance st;
      go (block :: acc)
    | Token.EOF -> List.rev (block :: acc)
    | t -> fail s.Token.pos ("expected '.' or end of input, found " ^ Token.describe t)
  in
  go []

let parse text =
  match parse_chain text with
  | chain -> Ok chain
  | exception Parse_error (pos, msg) ->
    Error (Format.asprintf "%a: %s" Token.pp_pos pos msg)
  | exception Lexer.Lex_error (pos, msg) ->
    Error (Format.asprintf "%a: %s" Token.pp_pos pos msg)
