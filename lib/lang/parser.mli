(** Recursive-descent parser for the LEGO notation.

    Accepted notation (arity suffixes like [OrderBy4] are optional and
    checked when present):

    {v
    chain  ::= block ('.' block)*
    block  ::= OrderByN '(' aexpr (',' aexpr)* ')'
             | TileOrderBy '(' aexpr (',' aexpr)* ')'
             | GroupByN '(' shape (',' shape)* ')'
             | TileBy '(' shape (',' shape)* ')'
    aexpr  ::= aterm ('o' aterm)*            (left-associative compose)
    aterm  ::= perm
             | Strided '(' shape ',' shape ')'
             | complement '(' aexpr ',' int ')'
             | divide '(' aexpr ',' aexpr ')'
             | product '(' aexpr ',' aexpr ')'
             | '(' aexpr ')'
    perm   ::= RegP '(' shape ',' shape ')'
             | GenP '(' ident shape ')'
             | Row '(' ints ')'  |  Col '(' ints ')'
    shape  ::= '[' int (',' int)* ']'
    v}

    The arity annotation on [OrderByN] applies to atoms and [Strided]
    literals; operator results have no syntactic rank and are exempt. *)

exception Parse_error of Token.pos * string

val parse_chain : string -> Ast.chain
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse : string -> (Ast.chain, string) result
(** Error message includes the position. *)
