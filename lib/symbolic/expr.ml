type t =
  | Const of int
  | Var of string
  | Add of t list
  | Mul of t list
  | Div of t * t
  | Mod of t * t
  | Select of t * t * t
  | Le of t * t
  | Lt of t * t
  | Eq of t * t
  | Isqrt of t

let tag = function
  | Const _ -> 0
  | Var _ -> 1
  | Add _ -> 2
  | Mul _ -> 3
  | Div _ -> 4
  | Mod _ -> 5
  | Select _ -> 6
  | Le _ -> 7
  | Lt _ -> 8
  | Eq _ -> 9
  | Isqrt _ -> 10

let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Const x, Const y -> Int.compare x y
    | Var x, Var y -> String.compare x y
    | Add xs, Add ys | Mul xs, Mul ys -> List.compare compare xs ys
    | Div (x1, x2), Div (y1, y2) | Mod (x1, x2), Mod (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
    | Le (x1, x2), Le (y1, y2)
    | Lt (x1, x2), Lt (y1, y2)
    | Eq (x1, x2), Eq (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
    | Select (x1, x2, x3), Select (y1, y2, y3) ->
      let c = compare x1 y1 in
      if c <> 0 then c
      else
        let c = compare x2 y2 in
        if c <> 0 then c else compare x3 y3
    | Isqrt x, Isqrt y -> compare x y
    | _ -> Int.compare (tag a) (tag b)

let equal a b = a == b || compare a b = 0

(* ---- Hash-consing ----------------------------------------------------- *)

(* Every freshly allocated node is routed through a unique table so that
   structurally equal expressions are physically equal in the common case.
   Children are interned before their parents, so both the polymorphic
   hash (depth-bounded) and the polymorphic equality used by [Hashtbl]
   short-circuit on physical identity, making each intern O(1).  The
   table is bounded: when it fills up it is flushed (counted as an
   eviction), after which [==] stays sound but loses completeness — which
   is why [equal]/[compare] keep a structural fallback.

   The table (and its counters) are domain-local: each domain of the
   execution layer (lib/exec) owns a private unique table, so interning
   is lock-free and [==] completeness holds within a domain.  Nodes that
   cross domains (e.g. built inside a worker task and returned) are
   still sound — [equal]/[compare]'s structural fallback covers pairs
   interned by different domains. *)

type intern_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type intern_state = { tbl : (t, t) Hashtbl.t; counters : intern_stats }

let intern_capacity = 1 lsl 17

let intern_key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 4096; counters = { hits = 0; misses = 0; evictions = 0 } })

let intern e =
  let st = Domain.DLS.get intern_key in
  match Hashtbl.find_opt st.tbl e with
  | Some e' ->
    st.counters.hits <- st.counters.hits + 1;
    e'
  | None ->
    st.counters.misses <- st.counters.misses + 1;
    if Hashtbl.length st.tbl >= intern_capacity then begin
      Hashtbl.reset st.tbl;
      st.counters.evictions <- st.counters.evictions + 1
    end;
    Hashtbl.add st.tbl e e;
    e

let intern_stats () =
  let c = (Domain.DLS.get intern_key).counters in
  { hits = c.hits; misses = c.misses; evictions = c.evictions }

let reset_intern_stats () =
  let c = (Domain.DLS.get intern_key).counters in
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let intern_size () = Hashtbl.length (Domain.DLS.get intern_key).tbl

let const n = intern (Const n)
let var name = intern (Var name)
let zero = const 0
let one = const 1
let mk_add es = intern (Add es)
let mk_mul es = intern (Mul es)

(* ---- Overflow-safe constant folding ----------------------------------- *)

(* Constant folds must never wrap: a fold that overflows the native int is
   skipped and the node stays symbolic (the guard-by-division idiom of
   [Range.sat_mul]).  [min_int] is rejected outright so that [abs] is
   total. *)

let add_no_ovf a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then None
  else Some s

let mul_no_ovf a b =
  if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
  else if abs a > max_int / abs b then None
  else Some (a * b)

(* (coefficient, non-constant factors) view of a product. *)
let as_linear_term = function
  | Const n -> (n, [])
  | Mul (Const n :: rest) -> (n, rest)
  | Mul factors -> (1, factors)
  | e -> (1, [ e ])

let of_linear_term (coeff, factors) =
  match (coeff, factors) with
  | 0, _ -> zero
  | n, [] -> const n
  | 1, [ f ] -> f
  | 1, fs -> mk_mul fs
  | n, fs -> mk_mul (const n :: fs)

let sum terms =
  (* Flatten, fold constants, collect like terms, order canonically. *)
  let flat =
    List.concat_map (function Add xs -> xs | e -> [ e ]) terms
  in
  let constant = ref 0 in
  (* Constants whose fold would overflow stay as separate summands. *)
  let unfolded = ref [] in
  let module M = Map.Make (struct
    type nonrec t = t list

    let compare = List.compare compare
  end) in
  let by_factors =
    List.fold_left
      (fun acc e ->
        let coeff, factors = as_linear_term e in
        if factors = [] then begin
          (match add_no_ovf !constant coeff with
          | Some s -> constant := s
          | None -> unfolded := coeff :: !unfolded);
          acc
        end
        else
          M.update factors
            (function
              | None -> Some [ coeff ]
              | Some (c :: cs) -> (
                match add_no_ovf c coeff with
                | Some s -> Some (s :: cs)
                | None -> Some (coeff :: c :: cs))
              | Some [] -> Some [ coeff ])
            acc)
      M.empty flat
  in
  let monomials =
    M.fold
      (fun factors coeffs acc ->
        List.fold_left
          (fun acc coeff ->
            if coeff = 0 then acc else of_linear_term (coeff, factors) :: acc)
          acc coeffs)
      by_factors []
  in
  let monomials = List.sort compare monomials in
  let extras = List.map const !unfolded in
  let with_const =
    if !constant = 0 && (monomials <> [] || extras <> []) then
      extras @ monomials
    else (const !constant :: extras) @ monomials
  in
  match with_const with [] -> zero | [ e ] -> e | es -> mk_add es

let scale_term_opt c t =
  let coeff, factors = as_linear_term t in
  Option.map (fun cc -> of_linear_term (cc, factors)) (mul_no_ovf c coeff)

let sum_distributed c terms =
  let scaled = List.filter_map (scale_term_opt c) terms in
  if List.length scaled = List.length terms then Some (sum scaled) else None

let product factors =
  let flat =
    List.concat_map (function Mul xs -> xs | e -> [ e ]) factors
  in
  let constant = ref 1 in
  let rest =
    List.filter
      (function
        | Const n -> (
          match mul_no_ovf !constant n with
          | Some c ->
            constant := c;
            false
          | None -> true (* overflow: keep the constant as a factor *))
        | _ -> true)
      flat
  in
  if !constant = 0 then zero
  else
    let generic rest =
      let rest = List.sort compare rest in
      let with_const =
        if !constant = 1 && rest <> [] then rest else const !constant :: rest
      in
      match with_const with [] -> one | [ e ] -> e | es -> mk_mul es
    in
    match rest with
    | [ Add terms ] -> (
      (* Distribute a constant over a lone sum so that differences of
         equal sums cancel in the Add normal form (the prover depends on
         this); skipped when a scaled coefficient would overflow. *)
      match sum_distributed !constant terms with
      | Some e -> e
      | None -> generic rest)
    | _ -> generic rest

let add a b = sum [ a; b ]
let mul a b = product [ a; b ]
let neg a = mul (const (-1)) a
let sub a b = add a (neg b)

let div a b =
  match (a, b) with
  | _, Const 1 -> a
  | Const x, Const y when y <> 0 && not (x = min_int && y = -1) ->
    const (Lego_layout.Domain.floor_div x y)
  | Const 0, _ -> zero
  | _ -> intern (Div (a, b))

let md a b =
  match (a, b) with
  | _, Const 1 -> zero
  | Const x, Const y when y <> 0 && not (x = min_int && y = -1) ->
    const (Lego_layout.Domain.floor_rem x y)
  | Const 0, _ -> zero
  | _ -> intern (Mod (a, b))

let bool_fold op a b mk =
  match (a, b) with
  | Const x, Const y -> const (if op x y then 1 else 0)
  | _ when equal a b -> const (if op 0 0 then 1 else 0)
  | _ -> intern (mk (a, b))

let le a b = bool_fold ( <= ) a b (fun (a, b) -> Le (a, b))
let lt a b = bool_fold ( < ) a b (fun (a, b) -> Lt (a, b))
let eq a b = bool_fold ( = ) a b (fun (a, b) -> Eq (a, b))

let select c a b =
  match c with
  | Const 0 -> b
  | Const _ -> a
  | _ -> if equal a b then a else intern (Select (c, a, b))

let isqrt = function
  | Const n when n >= 0 -> const (Lego_layout.Domain.int_isqrt n)
  | e -> intern (Isqrt e)

let same_list xs ys = List.for_all2 (fun x y -> x == y) xs ys

let map_children f e =
  (* When every child maps to itself the node is returned unchanged: with
     hash-consed children this makes no-op rewrite passes O(1) per node
     and lets fixpoint detection hit the physical-equality fast path. *)
  match e with
  | Const _ | Var _ -> e
  | Add xs ->
    let xs' = List.map f xs in
    if same_list xs xs' then e else sum xs'
  | Mul xs ->
    let xs' = List.map f xs in
    if same_list xs xs' then e else product xs'
  | Div (a, b) ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then e else div a' b'
  | Mod (a, b) ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then e else md a' b'
  | Select (c, a, b) ->
    let c' = f c and a' = f a and b' = f b in
    if c' == c && a' == a && b' == b then e else select c' a' b'
  | Le (a, b) ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then e else le a' b'
  | Lt (a, b) ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then e else lt a' b'
  | Eq (a, b) ->
    let a' = f a and b' = f b in
    if a' == a && b' == b then e else eq a' b'
  | Isqrt a ->
    let a' = f a in
    if a' == a then e else isqrt a'

let rec rebuild e = map_children rebuild e

let vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var v -> v :: acc
    | Add xs | Mul xs -> List.fold_left go acc xs
    | Div (a, b) | Mod (a, b) | Le (a, b) | Lt (a, b) | Eq (a, b) ->
      go (go acc a) b
    | Select (c, a, b) -> go (go (go acc c) a) b
    | Isqrt a -> go acc a
  in
  List.sort_uniq String.compare (go [] e)

let rec subst bindings e =
  match e with
  | Var v -> ( match List.assoc_opt v bindings with Some e' -> e' | None -> e)
  | Const _ -> e
  | _ -> map_children (subst bindings) e

let rec eval ~env e =
  match e with
  | Const n -> n
  | Var v -> env v
  | Add xs -> List.fold_left (fun acc x -> acc + eval ~env x) 0 xs
  | Mul xs -> List.fold_left (fun acc x -> acc * eval ~env x) 1 xs
  | Div (a, b) ->
    let d = eval ~env b in
    if d = 0 then raise Division_by_zero;
    Lego_layout.Domain.floor_div (eval ~env a) d
  | Mod (a, b) ->
    let d = eval ~env b in
    if d = 0 then raise Division_by_zero;
    Lego_layout.Domain.floor_rem (eval ~env a) d
  | Select (c, a, b) -> if eval ~env c <> 0 then eval ~env a else eval ~env b
  | Le (a, b) -> if eval ~env a <= eval ~env b then 1 else 0
  | Lt (a, b) -> if eval ~env a < eval ~env b then 1 else 0
  | Eq (a, b) -> if eval ~env a = eval ~env b then 1 else 0
  | Isqrt a -> Lego_layout.Domain.int_isqrt (eval ~env a)

let rec size = function
  | Const _ | Var _ -> 1
  | Add xs | Mul xs -> List.fold_left (fun acc x -> acc + size x) 1 xs
  | Div (a, b) | Mod (a, b) | Le (a, b) | Lt (a, b) | Eq (a, b) ->
    1 + size a + size b
  | Select (c, a, b) -> 1 + size c + size a + size b
  | Isqrt a -> 1 + size a

(* Pretty-printing with C-like precedence. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Const n ->
    if n < 0 then paren 10 (fun ppf -> Format.fprintf ppf "%d" n)
    else Format.fprintf ppf "%d" n
  | Var v -> Format.pp_print_string ppf v
  | Add xs ->
    paren 4 (fun ppf ->
        List.iteri
          (fun k x ->
            if k > 0 then
              match as_linear_term x with
              | c, factors when c < 0 ->
                Format.fprintf ppf " - %a" (pp_prec 5)
                  (of_linear_term (-c, factors))
              | _ -> Format.fprintf ppf " + %a" (pp_prec 5) x
            else pp_prec 5 ppf x)
          xs)
  | Mul xs ->
    paren 5 (fun ppf ->
        List.iteri
          (fun k x ->
            if k > 0 then Format.fprintf ppf "*%a" (pp_prec 6) x
            else pp_prec 6 ppf x)
          xs)
  | Div (a, b) ->
    paren 5 (fun ppf ->
        Format.fprintf ppf "%a / %a" (pp_prec 5) a (pp_prec 6) b)
  | Mod (a, b) ->
    paren 5 (fun ppf ->
        Format.fprintf ppf "%a %% %a" (pp_prec 5) a (pp_prec 6) b)
  | Select (c, a, b) ->
    paren 1 (fun ppf ->
        Format.fprintf ppf "%a ? %a : %a" (pp_prec 2) c (pp_prec 2) a
          (pp_prec 1) b)
  | Le (a, b) ->
    paren 3 (fun ppf ->
        Format.fprintf ppf "%a <= %a" (pp_prec 4) a (pp_prec 4) b)
  | Lt (a, b) ->
    paren 3 (fun ppf ->
        Format.fprintf ppf "%a < %a" (pp_prec 4) a (pp_prec 4) b)
  | Eq (a, b) ->
    paren 3 (fun ppf ->
        Format.fprintf ppf "%a == %a" (pp_prec 4) a (pp_prec 4) b)
  | Isqrt a -> Format.fprintf ppf "isqrt(%a)" (pp_prec 0) a

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
