(** Interval (range) analysis for index expressions.

    The paper derives the ranges of index variables from the layout
    specification and propagates them through the generated expressions so
    that the div/mod simplification side conditions can be discharged.
    This module is that propagation: a classic saturating interval
    domain. *)

type t = { lo : int; hi : int }
(** Inclusive bounds.  Values at or beyond {!pinf}/{!ninf} mean "unknown in
    that direction"; all arithmetic saturates there. *)

val pinf : int
val ninf : int

val top : t
val exact : int -> t
val make : lo:int -> hi:int -> t
(** Raises [Invalid_argument] when [lo > hi]. *)

val of_extent : int -> t
(** [of_extent n] is [0 .. n-1] — the range of an index over a dimension
    of extent [n]. *)

val is_bottom_free : t -> bool
val contains : t -> int -> bool
val pp : Format.formatter -> t -> unit

type env

val empty_env : env
val env_of_list : (string * t) list -> env
val env_add : string -> t -> env -> env
val env_find : string -> env -> t
(** Unknown variables get {!top}. *)

val env_bindings : env -> (string * t) list

val of_expr : env -> Expr.t -> t
(** Range of an expression under variable ranges [env].  Sound
    over-approximation: evaluation under any environment consistent with
    [env] (and not raising) lands in the result.

    Results are memoized per environment (keyed by physical env identity,
    so any [env_add] invalidates) in a bounded cache over hash-consed
    expression nodes. *)

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;  (** env LRU drops and per-env table flushes *)
}

val cache_stats : unit -> cache_stats
(** Snapshot of the process-lifetime {!of_expr} cache counters. *)

val reset_cache_stats : unit -> unit

val clear_cache : unit -> unit
(** Drop every cached environment table (counters are kept). *)
