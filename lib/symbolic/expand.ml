let expand (root : Expr.t) : Expr.t =
  (* Hash-consing makes repeated subtrees physically shared, so a per-call
     memo table turns the tree traversal into a DAG traversal. *)
  let memo : (Expr.t, Expr.t) Hashtbl.t = Hashtbl.create 64 in
  let rec go (e : Expr.t) : Expr.t =
    match e with
    | Const _ | Var _ -> e
    | _ -> (
      match Hashtbl.find_opt memo e with
      | Some r -> r
      | None ->
        let r = compute e in
        Hashtbl.add memo e r;
        r)
  and compute (e : Expr.t) : Expr.t =
    match e with
    | Const _ | Var _ -> e
    | Mul factors ->
      let factors = List.map go factors in
      (* Fold factors together, distributing over any sum encountered. *)
      List.fold_left
        (fun acc f ->
          let acc_terms =
            match (acc : Expr.t) with Add xs -> xs | e -> [ e ]
          in
          let f_terms = match (f : Expr.t) with Add xs -> xs | e -> [ e ] in
          Expr.sum
            (List.concat_map
               (fun a -> List.map (fun b -> Expr.mul a b) f_terms)
               acc_terms))
        Expr.one factors
    | _ -> Expr.map_children go e
  in
  go root
