module A = Lego_layout.Algebra

(* Constant goals fold under Expr's smart constructors, so Prover.le on
   the folded forms decides them exactly; the two-sided queries double as
   a live check that the prover agrees with plain integer arithmetic. *)
let const_le lhs rhs =
  Prover.le Range.empty_env (Expr.const lhs) (Expr.const rhs)

let const_eq lhs rhs = const_le lhs rhs && const_le rhs lhs

let prover (o : A.obligation) =
  match o.A.goal with
  | A.Divides { divisor; value } ->
      divisor <> 0
      &&
      let r = Expr.md (Expr.const value) (Expr.const divisor) in
      Prover.le Range.empty_env r Expr.zero
      && Prover.le Range.empty_env Expr.zero r
  | A.Le { lhs; rhs } -> const_le lhs rhs
  | A.Eq { lhs; rhs } -> const_eq lhs rhs
  | A.Image_bounded { layout; bound } ->
      (* A fresh environment per query: the discharge may run on any
         execution-layer domain, so no state is shared across calls. *)
      let env = Range.env_of_list [ ("x", Range.of_extent (A.size layout)) ] in
      let offset = A.apply (module Sym.Dom) layout (Expr.var "x") in
      Prover.in_half_open env offset (Expr.const bound)

let compose a b = A.compose ~prove:prover a b
let complement a m = A.complement ~prove:prover a m
let tiler b m = A.tiler ~prove:prover b m
let logical_divide a b = A.logical_divide ~prove:prover a b
let logical_product a b = A.logical_product ~prove:prover a b
let to_piece ?op t = A.to_piece ?op ~prove:prover t
let compose_pieces ?name a b = A.compose_pieces ?name ~prove:prover a b
