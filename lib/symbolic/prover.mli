(** Side-condition prover (the paper's Z3 role).

    Each Table-1 rewrite fires only when its side condition — a
    non-negativity, upper-bound or non-zero check — holds.  The paper
    discharges these with Z3 over the index ranges derived from the layout
    specification; here a sound-but-incomplete decision procedure combines
    the interval domain of {!Range} with the cancellation performed by
    {!Expr}'s normal form (differences of syntactically equal terms vanish
    before the interval query).  Failing to prove a true fact is safe: the
    rewrite simply does not fire. *)

type stats = {
  mutable queries : int;  (** all goals asked, cached or not *)
  mutable proved : int;  (** goals that held (failed = queries - proved) *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

val stats : unit -> stats
val global_stats : unit -> stats
(** The calling domain's live counter record, reported by the Table-1
    benchmark.  Counters (and the query cache) are domain-local: each
    execution-layer domain proves and counts its own goals. *)

val snapshot : unit -> stats
(** Copy of [global_stats ()], for per-experiment deltas. *)

val reset : unit -> unit
(** Zero the calling domain's counters (the query cache is kept:
    verdicts stay valid). *)

val diff : stats -> stats -> stats
(** [diff after before] — field-wise difference of two snapshots. *)

val clear_cache : unit -> unit
(** Drop every cached environment's verdict table. *)

val nonneg : Range.env -> Expr.t -> bool
(** [nonneg env e]: is [0 <= e] valid under [env]? *)

val positive : Range.env -> Expr.t -> bool
val nonzero : Range.env -> Expr.t -> bool

val le : Range.env -> Expr.t -> Expr.t -> bool
(** [le env a b]: is [a <= b] valid?  Decided as [nonneg (b - a)] so that
    common terms cancel. *)

val lt : Range.env -> Expr.t -> Expr.t -> bool

val in_half_open : Range.env -> Expr.t -> Expr.t -> bool
(** [in_half_open env x a]: is [0 <= x < a] valid — the guard shared by
    rules 3, 4 and 5 of Table 1? *)
