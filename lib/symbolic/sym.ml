module L = Lego_layout

module Dom = struct
  type t = Expr.t

  let const = Expr.const
  let add = Expr.add
  let sub = Expr.sub
  let mul = Expr.mul
  let div = Expr.div
  let rem = Expr.md
  let le = Expr.le
  let lt = Expr.lt
  let eq = Expr.eq
  let select = Expr.select
  let isqrt = Expr.isqrt
  let pp = Expr.pp
end

let var_names ?(prefix = "i") g =
  List.mapi
    (fun k _ -> Printf.sprintf "%s%d" prefix k)
    (L.Group_by.dims g)

let index_vars ?prefix g = List.map Expr.var (var_names ?prefix g)

(* The {!Simplify} / {!Range} / {!Prover} memo caches are keyed by
   {e physical} env identity, so a fresh env per call starts them cold:
   every candidate in a tuning space shares the same dims — the same
   ranges — yet each rebuilt env threw the caches away.  Interning the
   env per (prefix, dims) keeps one physical env per logical space, so
   sub-expression rewrites shared across candidates actually hit.
   Domain-local (envs are immutable maps; the interning table itself
   must not be shared).  Growth is bounded by the number of distinct
   (prefix, dims) a process ever queries. *)
let ranges_memo : (string * int list, Range.env) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let ranges_of ?(prefix = "i") g =
  let dims = L.Group_by.dims g in
  let tbl = Domain.DLS.get ranges_memo in
  let key = (prefix, dims) in
  match Hashtbl.find_opt tbl key with
  | Some env -> env
  | None ->
    let env =
      Range.env_of_list
        (List.map2
           (fun name extent -> (name, Range.of_extent extent))
           (var_names ~prefix g) dims)
    in
    Hashtbl.add tbl key env;
    env

let apply_to ?(simplify = true) ?(env = Range.empty_env) g idx =
  let raw = L.Group_by.apply (module Dom) g idx in
  if simplify then Simplify.simplify ~env raw else raw

let apply ?simplify ?prefix g =
  apply_to ?simplify ~env:(ranges_of ?prefix g) g (index_vars ?prefix g)

let inv ?(simplify = true) ?(var = "p") ?(extra = Range.empty_env) g =
  let env =
    List.fold_left
      (fun env (name, r) -> Range.env_add name r env)
      (Range.env_add var (Range.of_extent (L.Group_by.numel g)) extra)
      []
  in
  let env =
    List.fold_left
      (fun env (name, r) -> Range.env_add name r env)
      env (Range.env_bindings extra)
  in
  let raw = L.Group_by.inv (module Dom) g (Expr.var var) in
  if simplify then List.map (Simplify.simplify ~env) raw else raw

let check_roundtrip g ~samples =
  let dims = L.Group_by.dims g in
  let names = var_names g in
  let sym = apply g in
  let state = Random.State.make [| 0x1e60; List.length dims; samples |] in
  let rec go k =
    if k >= samples then Ok ()
    else begin
      let idx = List.map (fun n -> Random.State.int state n) dims in
      let bindings = List.combine names idx in
      let env name = List.assoc name bindings in
      let expect = L.Group_by.apply_ints g idx in
      let got = Expr.eval ~env sym in
      if got <> expect then
        Error
          (Printf.sprintf
             "symbolic apply disagrees at [%s]: symbolic %d, concrete %d"
             (String.concat ", " (List.map string_of_int idx))
             got expect)
      else go (k + 1)
    end
  in
  go 0
