type weights = {
  add : int;
  mul : int;
  div : int;
  md : int;
  select : int;
  cmp : int;
  isqrt : int;
}

let default_weights =
  { add = 1; mul = 1; div = 3; md = 3; select = 1; cmp = 1; isqrt = 3 }

let ops ?(weights = default_weights) e =
  (* Memoized per call: hash-consed sharing means a repeated subtree is
     costed once (its tree cost, which every occurrence contributes). *)
  let memo : (Expr.t, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go (e : Expr.t) =
    match e with
    | Const _ | Var _ -> 0
    | _ -> (
      match Hashtbl.find_opt memo e with
      | Some n -> n
      | None ->
        let n = compute e in
        Hashtbl.add memo e n;
        n)
  and compute (e : Expr.t) =
    match e with
    | Const _ | Var _ -> 0
    | Add xs ->
      ((List.length xs - 1) * weights.add)
      + List.fold_left (fun acc x -> acc + go x) 0 xs
    | Mul xs ->
      ((List.length xs - 1) * weights.mul)
      + List.fold_left (fun acc x -> acc + go x) 0 xs
    | Div (a, b) -> weights.div + go a + go b
    | Mod (a, b) -> weights.md + go a + go b
    | Select (c, a, b) -> weights.select + go c + go a + go b
    | Le (a, b) | Lt (a, b) | Eq (a, b) -> weights.cmp + go a + go b
    | Isqrt a -> weights.isqrt + go a
  in
  go e

let cheapest ?weights = function
  | [] -> invalid_arg "Cost.cheapest: empty candidate list"
  | e :: rest ->
    let better best cand = if ops ?weights cand < ops ?weights best then cand else best in
    List.fold_left better e rest

let best_of_expansion ?weights ~env e =
  let plain = Simplify.simplify ~env e in
  let expanded = Simplify.simplify ~env (Expand.expand e) in
  cheapest ?weights [ plain; expanded ]
