(** The five integer division/modulo rewrite rules of the paper's Table 1,
    plus supporting structural rules, with side conditions discharged by
    {!Prover} over layout-derived ranges.

    | # | pattern                  | result    | condition      |
    |---|--------------------------|-----------|----------------|
    | 1 | [(d*q + r) mod d]        | [r mod d] | [d <> 0]       |
    | 2 | [a*(x/a) + x mod a]      | [x]       | [a <> 0]       |
    | 3 | [x / a]                  | [0]       | [0 <= x < a]   |
    | 4 | [x mod a]                | [x]       | [0 <= x < a]   |
    | 5 | [(d*q + r) / d]          | [q]       | [0 <= r < d]   |

    Rules 1 and 5 match constant [d] by splitting a sum into the terms
    whose coefficient [d] divides and the remainder.  When rule 5's bound
    on the remainder cannot be proved, the weaker—but unconditionally
    sound for [d > 0]—split [(d*q + r)/d -> q + r/d] is applied instead
    (counted under [extra]). *)

type stats = {
  mutable r1 : int;
  mutable r2 : int;
  mutable r3 : int;
  mutable r4 : int;
  mutable r5 : int;
  mutable extra : int;
  mutable passes : int;  (** rewrite passes consumed (fuel spent) *)
  mutable fuel_exhausted : int;
      (** simplifications that ran out of fuel while still making
          progress (the result is sound but may not be a fixpoint) *)
}

val stats : unit -> stats

val total : stats -> int
(** Total rule applications ([passes]/[fuel_exhausted] excluded). *)

val pp_stats : Format.formatter -> stats -> unit

val default_fuel : int

val rewrite_once : ?stats:stats -> Range.env -> Expr.t -> Expr.t
(** One bottom-up pass applying every rule at every node. *)

val simplify : ?stats:stats -> ?fuel:int -> env:Range.env -> Expr.t -> Expr.t
(** Iterate {!rewrite_once} to a fixpoint, bounded by [fuel]
    (default {!default_fuel}) passes; exhaustion is observable via
    [stats.fuel_exhausted].

    When no [stats] record is passed, per-pass rewrites and full fixpoint
    results are memoized per environment (physical env identity, like the
    {!Range} cache); passing [stats] bypasses the memo so the reported
    rule counts stay exact. *)

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

val cache_stats : unit -> cache_stats
(** Snapshot of the process-lifetime simplify-memo counters. *)

val reset_cache_stats : unit -> unit
val clear_cache : unit -> unit

val simplify_closed : ?stats:stats -> ?fuel:int -> Expr.t -> Expr.t
(** {!simplify} under the empty range environment. *)

val set_test_only_break_rule : bool -> unit
(** TEST ONLY.  When enabled, rule 4's side condition is deliberately
    wrong ([x mod d -> x] already for [0 <= x < 2d]) — a seeded bug the
    conformance harness must catch and shrink.  Flushes the simplify memo
    on every flip so stale fixpoints cannot leak across the flag. *)
