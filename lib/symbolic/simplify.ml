type stats = {
  mutable r1 : int;
  mutable r2 : int;
  mutable r3 : int;
  mutable r4 : int;
  mutable r5 : int;
  mutable extra : int;
  mutable passes : int;
  mutable fuel_exhausted : int;
}

let stats () =
  {
    r1 = 0;
    r2 = 0;
    r3 = 0;
    r4 = 0;
    r5 = 0;
    extra = 0;
    passes = 0;
    fuel_exhausted = 0;
  }

let total s = s.r1 + s.r2 + s.r3 + s.r4 + s.r5 + s.extra

let pp_stats ppf s =
  Format.fprintf ppf
    "r1(mod-split)=%d r2(recombine)=%d r3(div-elim)=%d r4(mod-elim)=%d \
     r5(div-split)=%d extra=%d passes=%d fuel-exhausted=%d"
    s.r1 s.r2 s.r3 s.r4 s.r5 s.extra s.passes s.fuel_exhausted

let terms (e : Expr.t) = match e with Add xs -> xs | e -> [ e ]

(* Split the summands of [e] into [d*q] and [r]: terms whose integer
   coefficient [d] divides (returned already divided) and the rest. *)
let split_multiples d e =
  let quotient, remainder =
    List.partition_map
      (fun t ->
        let coeff, factors = Expr.as_linear_term t in
        if coeff mod d = 0 then
          Left (Expr.of_linear_term (coeff / d, factors))
        else Right t)
      (terms e)
  in
  (quotient, remainder)

(* Rules 3 and 5 (and the unconditional pull-out). *)
let rule_div ?stats env (a : Expr.t) (b : Expr.t) : Expr.t option =
  let bump f = Option.iter f stats in
  if Prover.in_half_open env a b then begin
    bump (fun s -> s.r3 <- s.r3 + 1);
    Some Expr.zero
  end
  else
    match b with
    | Expr.Const d when d > 1 -> (
      match split_multiples d a with
      | [], _ -> (
        (* No multiples to pull out; try merging nested divisions. *)
        match a with
        | Expr.Div (x, Expr.Const d') when d' > 0 ->
          bump (fun s -> s.extra <- s.extra + 1);
          Some (Expr.div x (Expr.const (d * d')))
        | _ -> None)
      | quotient, remainder ->
        let q = Expr.sum quotient and r = Expr.sum remainder in
        if Prover.in_half_open env r b then begin
          bump (fun s -> s.r5 <- s.r5 + 1);
          Some q
        end
        else begin
          (* floor((d*q + r)/d) = q + floor(r/d) for d > 0, any r. *)
          bump (fun s -> s.extra <- s.extra + 1);
          Some (Expr.add q (Expr.div r b))
        end)
    | _ -> None

(* Deliberately-broken rule 4, used only by the conformance harness's
   self-test: when enabled, [x mod d] is eliminated already for
   [0 <= x < 2d] (an off-by-factor-2 side condition).  Never enable
   outside tests; flip it via {!set_test_only_break_rule} so the memo
   caches are flushed.  Atomic so that execution-layer domains spawned
   after the flip observe it (domains must not be running while it is
   flipped: their domain-local memo caches are not flushed). *)
let test_only_break_rule = Atomic.make false

let broken_half_open env (a : Expr.t) (b : Expr.t) =
  Atomic.get test_only_break_rule
  &&
  match b with
  | Expr.Const d when d > 1 ->
    let r = Range.of_expr env a in
    r.Range.lo >= 0 && r.Range.hi < 2 * d
  | _ -> false

(* Rules 1 and 4. *)
let rule_mod ?stats env (a : Expr.t) (b : Expr.t) : Expr.t option =
  let bump f = Option.iter f stats in
  if Prover.in_half_open env a b || broken_half_open env a b then begin
    bump (fun s -> s.r4 <- s.r4 + 1);
    Some a
  end
  else
    match b with
    | Expr.Const d when d > 1 -> (
      match split_multiples d a with
      | _ :: _, remainder ->
        bump (fun s -> s.r1 <- s.r1 + 1);
        Some (Expr.md (Expr.sum remainder) b)
      | [], _ -> (
        match a with
        | Expr.Mod (x, Expr.Const d') when d' > 0 && d' mod d = 0 ->
          (* (x mod d') mod d = x mod d when d | d'. *)
          bump (fun s -> s.extra <- s.extra + 1);
          Some (Expr.md x b)
        | _ -> None))
    | _ -> None

(* Rule 2: a*(x/a) + x mod a -> x (coefficient-scaled form:
   k*a*(x/a) + k*(x mod a) -> k*x). *)
let rule_recombine ?stats env (summands : Expr.t list) : Expr.t list option =
  let bump f = Option.iter f stats in
  let arr = Array.of_list summands in
  let n = Array.length arr in
  let found = ref None in
  let is_div_of x a (f : Expr.t) =
    match f with
    | Expr.Div (x', a') -> Expr.equal x x' && Expr.equal a a'
    | _ -> false
  in
  for i = 0 to n - 1 do
    if !found = None then
      match Expr.as_linear_term arr.(i) with
      | k, [ Expr.Mod (x, a) ] ->
        let divisor_ok =
          match a with
          | Expr.Const ca -> ca <> 0
          | _ -> Prover.nonzero env a
        in
        if divisor_ok then
          for j = 0 to n - 1 do
            if j <> i && !found = None then begin
              let kj, factors = Expr.as_linear_term arr.(j) in
              let matches =
                match (a, factors) with
                | Expr.Const ca, [ f ] -> is_div_of x a f && kj = k * ca
                | _, [ f1; f2 ] ->
                  kj = k
                  && ((Expr.equal f1 a && is_div_of x a f2)
                     || (Expr.equal f2 a && is_div_of x a f1))
                | _ -> false
              in
              if matches then found := Some (i, j, k, x)
            end
          done
      | _ -> ()
  done;
  match !found with
  | None -> None
  | Some (i, j, k, x) ->
    bump (fun s -> s.r2 <- s.r2 + 1);
    let rest =
      List.filteri (fun idx _ -> idx <> i && idx <> j) summands
    in
    Some (Expr.mul (Expr.const k) x :: rest)

(* Decide comparisons from ranges so selects collapse. *)
let rule_compare ?stats env (e : Expr.t) : Expr.t option =
  let bump f = Option.iter f stats in
  let decide yes no =
    if yes then begin
      bump (fun s -> s.extra <- s.extra + 1);
      Some Expr.one
    end
    else if no then begin
      bump (fun s -> s.extra <- s.extra + 1);
      Some Expr.zero
    end
    else None
  in
  match e with
  | Expr.Le (a, b) -> decide (Prover.le env a b) (Prover.lt env b a)
  | Expr.Lt (a, b) -> decide (Prover.lt env a b) (Prover.le env b a)
  | Expr.Eq (a, b) ->
    decide
      (Prover.le env a b && Prover.le env b a)
      (Prover.lt env a b || Prover.lt env b a)
  | _ -> None

let rewrite_node ?stats env (e : Expr.t) : Expr.t =
  match e with
  | Expr.Div (a, b) -> (
    match rule_div ?stats env a b with Some e' -> e' | None -> e)
  | Expr.Mod (a, b) -> (
    match rule_mod ?stats env a b with Some e' -> e' | None -> e)
  | Expr.Add xs -> (
    match rule_recombine ?stats env xs with
    | Some xs' -> Expr.sum xs'
    | None -> e)
  | Expr.Le _ | Expr.Lt _ | Expr.Eq _ -> (
    match rule_compare ?stats env e with Some e' -> e' | None -> e)
  | _ -> e

let rec rewrite_once ?stats env e =
  let e = Expr.map_children (rewrite_once ?stats env) e in
  rewrite_node ?stats env e

let default_fuel = 64

(* ---- Memoized fixpoint driver ----------------------------------------- *)

(* Rewriting is a pure function of (env, node), so both the single-pass
   action and the full fixpoint result are cached per environment (keyed
   by physical env identity, like the {!Range} and {!Prover} caches).
   The memo is bypassed when the caller asks for a [stats] record, so
   reported rule counts stay exact and deterministic. *)

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type env_cache = {
  rewrites : (Expr.t, Expr.t) Hashtbl.t;  (* one rewrite_once pass *)
  results : (Expr.t, Expr.t) Hashtbl.t;  (* full fixpoint, default fuel *)
}

(* Memo tables and counters are domain-local (like the {!Range} and
   {!Prover} caches): each execution-layer domain rewrites against its
   own memo, lock-free. *)

type cache_state = {
  counters : cache_stats;
  mutable env_caches : (Range.env * env_cache) list;
}

let cache_key =
  Domain.DLS.new_key (fun () ->
      { counters = { hits = 0; misses = 0; evictions = 0 }; env_caches = [] })

let cache_stats () =
  let c = (Domain.DLS.get cache_key).counters in
  { hits = c.hits; misses = c.misses; evictions = c.evictions }

let reset_cache_stats () =
  let c = (Domain.DLS.get cache_key).counters in
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let max_cached_envs = 8
let max_cache_entries = 1 lsl 16

let clear_cache () = (Domain.DLS.get cache_key).env_caches <- []

let cache_for env =
  let st = Domain.DLS.get cache_key in
  match List.find_opt (fun (e, _) -> e == env) st.env_caches with
  | Some (_, c) -> c
  | None ->
    let c = { rewrites = Hashtbl.create 256; results = Hashtbl.create 64 } in
    let kept = List.filteri (fun i _ -> i < max_cached_envs - 1) st.env_caches in
    if List.compare_length_with st.env_caches (max_cached_envs - 1) > 0 then
      st.counters.evictions <- st.counters.evictions + 1;
    st.env_caches <- (env, c) :: kept;
    c

let memo_find tbl e =
  let counters = (Domain.DLS.get cache_key).counters in
  match Hashtbl.find_opt tbl e with
  | Some r ->
    counters.hits <- counters.hits + 1;
    Some r
  | None ->
    counters.misses <- counters.misses + 1;
    None

let memo_add tbl e r =
  if Hashtbl.length tbl >= max_cache_entries then begin
    Hashtbl.reset tbl;
    let counters = (Domain.DLS.get cache_key).counters in
    counters.evictions <- counters.evictions + 1
  end;
  Hashtbl.add tbl e r

let rec rewrite_memo env cache (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Var _ -> e
  | _ -> (
    match memo_find cache.rewrites e with
    | Some r -> r
    | None ->
      let e' = Expr.map_children (rewrite_memo env cache) e in
      let r = rewrite_node env e' in
      memo_add cache.rewrites e r;
      r)

let run_fixpoint ?stats ~fuel ~pass e =
  let bump f = Option.iter f stats in
  let left = ref fuel in
  let cur = ref e in
  let continue_ = ref true in
  while !continue_ && !left > 0 do
    decr left;
    bump (fun s -> s.passes <- s.passes + 1);
    let next = pass !cur in
    if Expr.equal next !cur then continue_ := false else cur := next
  done;
  (* Loop left while still making progress: the result is sound but may
     not be a fixpoint. *)
  if !continue_ then bump (fun s -> s.fuel_exhausted <- s.fuel_exhausted + 1);
  !cur

let simplify ?stats ?(fuel = default_fuel) ~env e =
  match stats with
  | Some _ -> run_fixpoint ?stats ~fuel ~pass:(rewrite_once ?stats env) e
  | None ->
    let cache = cache_for env in
    if fuel = default_fuel then
      match memo_find cache.results e with
      | Some r -> r
      | None ->
        let r = run_fixpoint ~fuel ~pass:(rewrite_memo env cache) e in
        memo_add cache.results e r;
        r
    else run_fixpoint ~fuel ~pass:(rewrite_memo env cache) e

let simplify_closed ?stats ?fuel e =
  simplify ?stats ?fuel ~env:Range.empty_env e

let set_test_only_break_rule enabled =
  Atomic.set test_only_break_rule enabled;
  (* Cached fixpoints were computed under the other rule set.  Only the
     calling domain's memo is flushed — flip the flag before spawning
     execution-layer domains, never while they run. *)
  clear_cache ()
