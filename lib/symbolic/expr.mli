(** Symbolic integer index expressions.

    This module replaces the paper's use of SymPy: a small normal-form
    expression algebra over the integers with floor division, remainder,
    comparisons, selection and integer square root — exactly the operations
    the LEGO layout algebra needs.  Smart constructors keep expressions in
    a light normal form (n-ary sums/products, folded constants, collected
    like terms, canonical argument order) so that structural equality is a
    useful notion and the rewrite rules of {!Rules} can match.

    Expressions are hash-consed: every node built by a smart constructor
    is routed through a bounded unique table, so structurally equal
    expressions are physically equal in the common case and
    {!equal}/{!compare} short-circuit on [==].  Constant folding is
    overflow-safe: a fold that would wrap the native int is skipped and
    the node stays symbolic (which may relax the "at most one constant"
    invariant below in that corner case). *)

type t = private
  | Const of int
  | Var of string
  | Add of t list
      (** n-ary sum; invariant: >= 2 summands, no nested [Add], at most one
          leading constant, like terms collected, canonically ordered. *)
  | Mul of t list
      (** n-ary product; invariant: >= 2 factors, no nested [Mul], at most
          one leading constant, canonically ordered. *)
  | Div of t * t  (** floor division *)
  | Mod of t * t  (** remainder matching floor division *)
  | Select of t * t * t  (** [Select (c, a, b)]: [a] if [c <> 0] else [b] *)
  | Le of t * t
  | Lt of t * t
  | Eq of t * t
  | Isqrt of t

val const : int -> t
val var : string -> t
val zero : t
val one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val div : t -> t -> t
val md : t -> t -> t
val select : t -> t -> t -> t
val le : t -> t -> t
val lt : t -> t -> t
val eq : t -> t -> t
val isqrt : t -> t

val sum : t list -> t
val product : t list -> t

val compare : t -> t -> int
(** Total structural order (also the canonical argument order), with a
    physical-equality fast path at every node. *)

val equal : t -> t -> bool
(** [equal a b] is [a == b || compare a b = 0]; with hash-consing the
    physical test decides almost every call in O(1). *)

type intern_stats = {
  mutable hits : int;  (** constructions resolved to an existing node *)
  mutable misses : int;  (** fresh nodes added to the unique table *)
  mutable evictions : int;  (** table flushes on reaching capacity *)
}

val intern_stats : unit -> intern_stats
(** Snapshot of the process-lifetime hash-consing counters. *)

val reset_intern_stats : unit -> unit
val intern_size : unit -> int
(** Current number of live nodes in the unique table. *)

val rebuild : t -> t
(** Re-apply all smart constructors bottom-up (used after surgical rule
    rewrites). *)

val map_children : (t -> t) -> t -> t
(** Apply [f] to immediate children and rebuild the node with smart
    constructors; leaves are returned unchanged. *)

val vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val subst : (string * t) list -> t -> t
(** Simultaneous capture-free substitution (variables are free-only). *)

val eval : env:(string -> int) -> t -> int
(** Evaluate under a total environment.  Raises [Division_by_zero] when a
    divisor evaluates to 0, and [Invalid_argument] on [Isqrt] of a
    negative. *)

val as_linear_term : t -> int * t list
(** [as_linear_term e] decomposes [e] as [coeff * factors] with [factors]
    the non-constant part of a product (empty for a constant). *)

val of_linear_term : int * t list -> t

val size : t -> int
(** Number of AST nodes (used by the cost model and as rewrite fuel). *)

val pp : Format.formatter -> t -> unit
(** Human-readable infix form (C-like precedence, explicit parens where
    needed). *)

val to_string : t -> string
