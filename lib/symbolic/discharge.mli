(** Prover-backed discharge of layout-algebra side conditions.

    {!Lego_layout.Algebra} emits its operators' side conditions as
    neutral {!Lego_layout.Algebra.obligation} values; this module is the
    other half of that contract, routing each goal through {!Prover}:

    - [Divides]/[Le]/[Eq] goals fold to constants under {!Expr}'s smart
      constructors and are decided exactly by [Prover.le] on the folded
      forms (so they also exercise the prover's cancellation path);
    - [Image_bounded] goals are proven {e symbolically}: the layout is
      applied to a fresh index variable [x] ranged over its domain via
      {!Sym.Dom}, and [Prover.in_half_open] bounds the resulting offset
      expression with the interval analysis of {!Range}.

    [prover] is sound and — because strides are non-negative and the
    interval join over independent digit ranges is exact for strided
    layouts — agrees with [Algebra.concrete] on every obligation the
    operators emit (property-tested in the algebra suite).  A fresh
    range environment is built per query, keeping the discharge safe to
    call from any execution-layer domain. *)

val prover : Lego_layout.Algebra.discharge

(** {1 Operators with the prover pre-applied} *)

val compose :
  Lego_layout.Algebra.t ->
  Lego_layout.Algebra.t ->
  (Lego_layout.Algebra.t, Lego_layout.Algebra.error) result

val complement :
  Lego_layout.Algebra.t ->
  int ->
  (Lego_layout.Algebra.t, Lego_layout.Algebra.error) result

val tiler :
  Lego_layout.Algebra.t ->
  int ->
  (Lego_layout.Algebra.t, Lego_layout.Algebra.error) result

val logical_divide :
  Lego_layout.Algebra.t ->
  Lego_layout.Algebra.t ->
  (Lego_layout.Algebra.t, Lego_layout.Algebra.error) result

val logical_product :
  Lego_layout.Algebra.t ->
  Lego_layout.Algebra.t ->
  (Lego_layout.Algebra.t, Lego_layout.Algebra.error) result

val to_piece :
  ?op:string ->
  Lego_layout.Algebra.t ->
  (Lego_layout.Piece.t, Lego_layout.Algebra.error) result

val compose_pieces :
  ?name:string ->
  Lego_layout.Piece.t ->
  Lego_layout.Piece.t ->
  (Lego_layout.Piece.t, Lego_layout.Algebra.error) result
