type stats = {
  mutable queries : int;
  mutable proved : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let stats () = { queries = 0; proved = 0; cache_hits = 0; cache_misses = 0 }

(* Counters and the query cache are domain-local (like the {!Range}
   caches): each domain of the execution layer proves and counts its own
   goals without contention. *)

type state = {
  counters : stats;
  mutable env_caches : (Range.env * (int * Expr.t * Expr.t, bool) Hashtbl.t) list;
}

let state_key =
  Domain.DLS.new_key (fun () -> { counters = stats (); env_caches = [] })

let global_stats () = (Domain.DLS.get state_key).counters

let snapshot () =
  let g = global_stats () in
  {
    queries = g.queries;
    proved = g.proved;
    cache_hits = g.cache_hits;
    cache_misses = g.cache_misses;
  }

let reset () =
  let g = global_stats () in
  g.queries <- 0;
  g.proved <- 0;
  g.cache_hits <- 0;
  g.cache_misses <- 0

let diff a b =
  {
    queries = a.queries - b.queries;
    proved = a.proved - b.proved;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
  }

let record ok =
  let g = global_stats () in
  g.queries <- g.queries + 1;
  if ok then g.proved <- g.proved + 1;
  ok

(* ---- Query cache ------------------------------------------------------ *)

(* Goal verdicts are cached per environment (physical identity, like the
   {!Range.of_expr} cache) and keyed by (goal kind, operand pair) — the
   operands as given, not the normalized difference, so a cache hit skips
   the [Expr.sub] construction entirely.  With hash-consed expressions the
   key hashes and compares in O(1).  A cached verdict still counts as a
   query in [global_stats] so proved/failed totals keep their meaning. *)

let max_cached_envs = 8
let max_cache_entries = 1 lsl 16

let clear_cache () = (Domain.DLS.get state_key).env_caches <- []

let cache_for env =
  let st = Domain.DLS.get state_key in
  match List.find_opt (fun (e, _) -> e == env) st.env_caches with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 256 in
    let kept = List.filteri (fun i _ -> i < max_cached_envs - 1) st.env_caches in
    st.env_caches <- (env, tbl) :: kept;
    tbl

let goal_nonneg = 0
let goal_positive = 1
let goal_nonzero = 2
let goal_le = 3
let goal_lt = 4

let query goal env a b decide =
  let tbl = cache_for env in
  let g = global_stats () in
  match Hashtbl.find_opt tbl (goal, a, b) with
  | Some ok ->
    g.cache_hits <- g.cache_hits + 1;
    record ok
  | None ->
    g.cache_misses <- g.cache_misses + 1;
    let ok = decide () in
    if Hashtbl.length tbl >= max_cache_entries then Hashtbl.reset tbl;
    Hashtbl.add tbl (goal, a, b) ok;
    record ok

let nonneg env e =
  query goal_nonneg env e Expr.zero (fun () ->
      (Range.of_expr env e).Range.lo >= 0)

let positive env e =
  query goal_positive env e Expr.zero (fun () ->
      (Range.of_expr env e).Range.lo > 0)

let nonzero env e =
  query goal_nonzero env e Expr.zero (fun () ->
      let r = Range.of_expr env e in
      r.Range.lo > 0 || r.Range.hi < 0)

let le env a b =
  query goal_le env a b (fun () ->
      (* Decide on the normalized difference so common terms cancel. *)
      (Range.of_expr env (Expr.sub b a)).Range.lo >= 0)

let lt env a b =
  query goal_lt env a b (fun () ->
      (Range.of_expr env (Expr.sub b (Expr.add a Expr.one))).Range.lo >= 0)

let in_half_open env x a = nonneg env x && lt env x a
