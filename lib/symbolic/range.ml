type t = { lo : int; hi : int }

let pinf = max_int / 2
let ninf = -pinf

let clamp v = if v >= pinf then pinf else if v <= ninf then ninf else v

let sat_add a b =
  (* Both inputs are within [ninf, pinf], so the exact sum fits in int. *)
  clamp (a + b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else begin
    (* Guard by division: the product of two 63-bit ints overflows even
       Int64, so never multiply when the magnitude would exceed pinf. *)
    let positive = a > 0 = (b > 0) in
    if abs a > pinf / abs b then if positive then pinf else ninf
    else clamp (a * b)
  end

let top = { lo = ninf; hi = pinf }
let exact n = { lo = clamp n; hi = clamp n }

let make ~lo ~hi =
  if lo > hi then invalid_arg "Range.make: lo > hi";
  { lo = clamp lo; hi = clamp hi }

let of_extent n =
  if n <= 0 then invalid_arg "Range.of_extent: extent must be positive";
  make ~lo:0 ~hi:(n - 1)

let is_bottom_free r = r.lo <= r.hi
let contains r v = r.lo <= v && v <= r.hi

let pp ppf r =
  let bound v =
    if v >= pinf then "+inf" else if v <= ninf then "-inf" else string_of_int v
  in
  Format.fprintf ppf "[%s, %s]" (bound r.lo) (bound r.hi)

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }

let mul a b =
  let products =
    [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo;
      sat_mul a.hi b.hi ]
  in
  {
    lo = List.fold_left min pinf products;
    hi = List.fold_left max ninf products;
  }

let fdiv = Lego_layout.Domain.floor_div

let div a b =
  if b.lo > 0 || b.hi < 0 then begin
    (* Divisor sign is known; floor division is monotone in the dividend,
       antitone in the divisor, so endpoints suffice.  Infinite endpoints
       stay infinite (dividing by the smallest magnitude only shrinks). *)
    let quotients =
      List.concat_map
        (fun x ->
          List.map
            (fun y -> if x >= pinf then (if y > 0 then pinf else ninf)
              else if x <= ninf then (if y > 0 then ninf else pinf)
              else fdiv x y)
            [ b.lo; b.hi ])
        [ a.lo; a.hi ]
    in
    {
      lo = clamp (List.fold_left min pinf quotients);
      hi = clamp (List.fold_left max ninf quotients);
    }
  end
  else top (* divisor may be 0: evaluation raises, result unconstrained *)

let rem a b =
  if b.lo > 0 then
    if a.lo >= 0 && a.hi < b.lo then a (* the mod is the identity *)
    else { lo = 0; hi = clamp (b.hi - 1) }
  else if b.hi < 0 then { lo = clamp (b.lo + 1); hi = 0 }
  else top

let boolean = { lo = 0; hi = 1 }

let le a b =
  if a.hi <= b.lo then exact 1 else if a.lo > b.hi then exact 0 else boolean

let lt a b =
  if a.hi < b.lo then exact 1 else if a.lo >= b.hi then exact 0 else boolean

let eq a b =
  if a.lo = a.hi && b.lo = b.hi && a.lo = b.lo then exact 1
  else if a.hi < b.lo || b.hi < a.lo then exact 0
  else boolean

let isqrt a =
  let hi = if a.hi >= pinf then pinf else Lego_layout.Domain.int_isqrt (max a.hi 0) in
  let lo = if a.lo <= 0 then 0 else Lego_layout.Domain.int_isqrt a.lo in
  { lo; hi }

module StringMap = Map.Make (String)

type env = t StringMap.t

let empty_env = StringMap.empty
let env_of_list l = StringMap.of_seq (List.to_seq l)
let env_add = StringMap.add
let env_find v env = Option.value ~default:top (StringMap.find_opt v env)
let env_bindings env = StringMap.bindings env

(* ---- Memoized range analysis ------------------------------------------ *)

(* [of_expr] results are cached per environment, keyed by physical env
   identity (envs are persistent maps, so [env_add] yields a new identity
   and thereby invalidates).  A small LRU of recent envs each owns a
   bounded table keyed by (hash-consed) expression nodes, so repeated
   prover side-condition queries over shared subtrees are O(1). *)

type cache_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* Caches and counters are domain-local (like the {!Expr} unique table):
   each domain of the execution layer keeps its own LRU of environments,
   so parallel range analysis never contends or races. *)

type cache_state = {
  counters : cache_stats;
  mutable env_caches : (env * (Expr.t, t) Hashtbl.t) list;
}

let cache_key =
  Domain.DLS.new_key (fun () ->
      { counters = { hits = 0; misses = 0; evictions = 0 }; env_caches = [] })

let cache_stats () =
  let c = (Domain.DLS.get cache_key).counters in
  { hits = c.hits; misses = c.misses; evictions = c.evictions }

let reset_cache_stats () =
  let c = (Domain.DLS.get cache_key).counters in
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let max_cached_envs = 8
let max_cache_entries = 1 lsl 16

let clear_cache () = (Domain.DLS.get cache_key).env_caches <- []

let cache_for env =
  let st = Domain.DLS.get cache_key in
  match List.find_opt (fun (e, _) -> e == env) st.env_caches with
  | Some (_, tbl) -> tbl
  | None ->
    let tbl = Hashtbl.create 256 in
    let kept = List.filteri (fun i _ -> i < max_cached_envs - 1) st.env_caches in
    if List.compare_length_with st.env_caches (max_cached_envs - 1) > 0 then
      st.counters.evictions <- st.counters.evictions + 1;
    st.env_caches <- (env, tbl) :: kept;
    tbl

let rec cached env tbl (e : Expr.t) =
  match e with
  | Const n -> exact n
  | Var v -> env_find v env
  | _ -> (
    let counters = (Domain.DLS.get cache_key).counters in
    match Hashtbl.find_opt tbl e with
    | Some r ->
      counters.hits <- counters.hits + 1;
      r
    | None ->
      counters.misses <- counters.misses + 1;
      let r = compute env tbl e in
      if Hashtbl.length tbl >= max_cache_entries then begin
        Hashtbl.reset tbl;
        counters.evictions <- counters.evictions + 1
      end;
      Hashtbl.add tbl e r;
      r)

and compute env tbl (e : Expr.t) =
  let of_expr = cached env tbl in
  match e with
  | Const n -> exact n
  | Var v -> env_find v env
  | Add xs ->
    List.fold_left (fun acc x -> add acc (of_expr x)) (exact 0) xs
  | Mul xs ->
    List.fold_left (fun acc x -> mul acc (of_expr x)) (exact 1) xs
  | Div (a, b) -> div (of_expr a) (of_expr b)
  | Mod (a, b) -> rem (of_expr a) (of_expr b)
  | Select (c, a, b) ->
    let rc = of_expr c in
    if rc.lo > 0 || rc.hi < 0 then of_expr a
    else if rc.lo = 0 && rc.hi = 0 then of_expr b
    else hull (of_expr a) (of_expr b)
  | Le (a, b) -> le (of_expr a) (of_expr b)
  | Lt (a, b) -> lt (of_expr a) (of_expr b)
  | Eq (a, b) -> eq (of_expr a) (of_expr b)
  | Isqrt a -> isqrt (of_expr a)

let of_expr env e = cached env (cache_for env) e
