examples/nw_layout.ml: Fun Gallery Group_by Lego_apps Lego_codegen Lego_layout Lego_symbolic List Nw Order_by Printf String
