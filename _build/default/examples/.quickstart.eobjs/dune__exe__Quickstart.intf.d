examples/quickstart.mli:
