examples/quickstart.ml: Check Gallery Group_by Lego_codegen Lego_lang Lego_layout Lego_symbolic List Order_by Piece Printf Sigma String
