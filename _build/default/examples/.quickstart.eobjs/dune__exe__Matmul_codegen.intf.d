examples/matmul_codegen.mli:
