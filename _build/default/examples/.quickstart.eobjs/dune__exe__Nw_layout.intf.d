examples/nw_layout.mli:
