examples/mlir_transpose.ml: Array Gallery Group_by Lego_codegen Lego_layout Lego_mlirsim Lego_symbolic Order_by Printf Sugar
