examples/matmul_codegen.ml: Lego_codegen Lego_layout Lego_symbolic Sugar
