examples/layout_explorer.ml: Array Check Format Gallery Group_by Lego_lang Lego_layout List Order_by Piece Printf Seq Shape Sys
