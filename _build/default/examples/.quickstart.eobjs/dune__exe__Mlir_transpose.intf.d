examples/mlir_transpose.mli:
