(* Explore the gallery of general bijections that the CuTe/Graphene
   stride algebra cannot express (section 3.3 / section 8 of the paper).

   Run with: dune exec examples/layout_explorer.exe -- [notation] *)

open Lego_layout

let print_table g =
  match Group_by.dims g with
  | [ rows; cols ] ->
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        Printf.printf "%4d" (Group_by.apply_ints g [ i; j ])
      done;
      print_newline ()
    done
  | dims ->
    Printf.printf "(%d-D layout; showing flat table)\n" (List.length dims);
    Seq.iter
      (fun idx -> Printf.printf "%d " (Group_by.apply_ints g idx))
      (Shape.indices dims);
    print_newline ()

let show name g =
  Printf.printf "\n-- %s: %s --\n" name (Format.asprintf "%a" Group_by.pp g);
  print_table g;
  match Check.layout g with
  | Ok () -> ()
  | Error e -> Printf.printf "NOT A BIJECTION: %s\n" e

let of_piece piece =
  Group_by.make
    ~chain:[ Order_by.make [ piece ] ]
    [ Piece.dims piece ]

let () =
  match List.tl (Array.to_list Sys.argv) with
  | notation :: _ -> (
    (* Explore any layout given in the textual notation. *)
    match Lego_lang.Elab.layout_of_string notation with
    | Ok g -> show "user layout" g
    | Error e ->
      prerr_endline e;
      exit 1)
  | [] ->
    show "anti-diagonal 5x5" (of_piece (Gallery.antidiag 5));
    show "Z-Morton 8x8" (of_piece (Gallery.morton ~d:2 ~bits:3));
    show "Hilbert 8x8" (of_piece (Gallery.hilbert ~bits:3));
    show "XOR swizzle 8x8" (of_piece (Gallery.xor_swizzle ~rows:8 ~cols:8));
    show "cyclic diagonal 5x5" (of_piece (Gallery.cyclic_diag 5));
    show "complemented row-major 4x6" (of_piece (Gallery.reverse [ 4; 6 ]));
    print_endline
      "\npass a layout in LEGO notation to explore your own, e.g.:\n\
      \  dune exec examples/layout_explorer.exe -- \
       'OrderBy(GenP(hilbert[16,16])).GroupBy([16,16])'"
