(* Section 5 of the paper: instantiating a layout-independent Triton
   matmul template.  The kernel text is fixed; the four transpose
   variants differ only in the Row/Col pieces below.

   Run with: dune exec examples/matmul_codegen.exe *)

open Lego_layout
module E = Lego_symbolic.Expr
module R = Lego_symbolic.Range
module T = Lego_codegen.Triton_printer

let template =
  {|@triton.jit
def matmul_kernel(a_ptr, b_ptr, c_ptr, M, N, K,
                  BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr,
                  GM: tl.constexpr):
    pid = tl.program_id(axis=0)
    lpid_m = {{ lpid_m }}
    lpid_n = {{ lpid_n }}
    accumulator = tl.zeros((BM, BN), dtype=tl.float32)
    for k in range(0, tl.cdiv(K, BK)):
        a_ptrs = a_ptr + {{ la_optr }}
        b_ptrs = b_ptr + {{ lb_optr }}
        a = tl.load(a_ptrs)
        b = tl.load(b_ptrs)
        accumulator = tl.dot(a, b, accumulator)
    c = accumulator.to(tl.float16)
    c_ptrs = c_ptr + {{ lc_optr }}
    tl.store(c_ptrs, c)
|}

let () =
  (* Concrete instantiation sizes (Triton requires static arange bounds). *)
  let m = 1024 and n = 1024 and k = 512 in
  let bm = 128 and bn = 128 and bk = 32 and gm = 8 in
  let num_pid_m = m / bm and num_pid_n = n / bn in

  (* Computation layout: Triton's grouped program-id ordering. *)
  let cl =
    Sugar.tiled_view
      ~order:[ Sugar.col [ num_pid_m / gm; 1 ]; Sugar.col [ gm; num_pid_n ] ]
      ~group:[ [ num_pid_m; num_pid_n ] ] ()
  in
  let lpid_m, lpid_n =
    match Lego_symbolic.Sym.inv ~var:"pid" cl with
    | [ a; b ] -> (T.expr a, T.expr b)
    | _ -> assert false
  in

  (* Data layouts: change `row` to `col` here to generate the transposed
     kernels — nothing else changes. *)
  let dl rows cols brows bcols order =
    Sugar.tiled_view ~order:[ order ]
      ~group:[ [ rows / brows; cols / bcols ]; [ brows; bcols ] ] ()
  in
  let dla = dl m k bm bk (Sugar.row [ m; k ]) in
  let dlb = dl k n bk bn (Sugar.row [ k; n ]) in
  let dlc = dl m n bm bn (Sugar.row [ m; n ]) in

  let env =
    R.env_of_list
      [
        ("lpid_m", R.of_extent num_pid_m);
        ("lpid_n", R.of_extent num_pid_n);
        ("k", R.of_extent (k / bk));
      ]
  in
  let tile layout indices = T.slice_offset ~env layout indices in
  let bindings =
    [
      ("lpid_m", lpid_m);
      ("lpid_n", lpid_n);
      ( "la_optr",
        tile dla [ T.Fix (E.var "lpid_m"); T.Fix (E.var "k"); T.All; T.All ] );
      ( "lb_optr",
        tile dlb [ T.Fix (E.var "k"); T.Fix (E.var "lpid_n"); T.All; T.All ] );
      ( "lc_optr",
        tile dlc
          [ T.Fix (E.var "lpid_m"); T.Fix (E.var "lpid_n"); T.All; T.All ] );
    ]
  in
  print_string (Lego_codegen.Template.render_exn ~bindings template)
