(* Quickstart: the paper's figure-9 layout, built three ways.

   Run with: dune exec examples/quickstart.exe *)

open Lego_layout

let print_table g =
  let dims = Group_by.dims g in
  match dims with
  | [ rows; cols ] ->
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        Printf.printf "%4d" (Group_by.apply_ints g [ i; j ])
      done;
      print_newline ()
    done
  | _ -> invalid_arg "print_table: 2-D layouts only"

let () =
  (* 1. The core API: a 6x6 logical view, tiled 2x2 of 3x3 blocks, the
     grid transposed and each block laid out anti-diagonally. *)
  let o2 =
    Order_by.make
      [ Piece.reg ~dims:[ 2; 3; 2; 3 ] ~sigma:(Sigma.of_one_based [ 1; 3; 2; 4 ]) ]
  in
  let o1 =
    Order_by.make
      [
        Piece.reg ~dims:[ 2; 2 ] ~sigma:(Sigma.of_one_based [ 2; 1 ]);
        Gallery.antidiag 3;
      ]
  in
  let fig9 = Group_by.make ~chain:[ o1; o2 ] [ [ 6; 6 ] ] in
  print_endline "figure 9: physical offset of each logical (i, j):";
  print_table fig9;
  Printf.printf "\nlogical [4, 2] lives at physical %d (the paper's 15)\n"
    (Group_by.apply_ints fig9 [ 4; 2 ]);
  Printf.printf "physical 15 holds logical [%s]\n"
    (String.concat ", " (List.map string_of_int (Group_by.inv_ints fig9 15)));

  (* 2. The same layout in the textual notation. *)
  let notation =
    "OrderBy2(RegP([2,2],[2,1]), GenP(antidiag[3,3]))\
     .OrderBy4(RegP([2,3,2,3],[1,3,2,4])).GroupBy2([6,6])"
  in
  (match Lego_lang.Elab.layout_of_string notation with
  | Ok parsed ->
    Printf.printf "\nnotation parses to the same layout: %b\n"
      (Group_by.equal parsed fig9)
  | Error e -> Printf.printf "parse error: %s\n" e);

  (* 3. Every layout is checked to be a bijection. *)
  (match Check.layout fig9 with
  | Ok () -> print_endline "bijectivity verified over the whole index space"
  | Error e -> print_endline e);

  (* 4. And every layout has symbolic index expressions, ready for code
     generation. *)
  let offset = Lego_symbolic.Sym.apply fig9 in
  Printf.printf "\ngenerated index expression (C syntax):\n  %s\n"
    (Lego_codegen.C_printer.expr offset);
  Printf.printf "operation count after simplification: %d\n"
    (Lego_symbolic.Cost.ops offset)
