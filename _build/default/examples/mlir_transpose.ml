(* Section 6.3 of the paper: the MLIR backend.  A 2-D transpose is a
   pure layout change; LEGO emits the scf/arith/memref module, which the
   bundled mini-MLIR interpreter then executes and verifies.

   Run with: dune exec examples/mlir_transpose.exe *)

open Lego_layout

let () =
  let m = 8 and n = 6 in
  let src_view = Sugar.tiled_view ~group:[ [ m; n ] ] () in
  let dst_view =
    Sugar.tiled_view ~order:[ Sugar.col [ m; n ] ] ~group:[ [ m; n ] ] ()
  in
  let text =
    Lego_codegen.Mlir_gen.copy_func ~name:"transpose"
      ~src_offset:(Lego_symbolic.Sym.apply src_view)
      ~dst_offset:(Lego_symbolic.Sym.apply dst_view)
      ~dims:[ m; n ]
  in
  print_endline "generated MLIR:";
  print_string text;
  let modul = Lego_mlirsim.Mparser.parse_module text in
  let src = Array.init (m * n) (fun k -> k * k mod 97) in
  let dst = Array.make (m * n) 0 in
  ignore (Lego_mlirsim.Minterp.run_func modul "transpose" [ Mem src; Mem dst ]);
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      if dst.((j * m) + i) <> src.((i * n) + j) then ok := false
    done
  done;
  Printf.printf "\ninterpreted the module: transpose correct = %b\n" !ok;

  (* The index functions of any layout can be emitted the same way. *)
  let morton =
    Group_by.make
      ~chain:[ Order_by.make [ Gallery.morton ~d:2 ~bits:2 ] ]
      [ [ 4; 4 ] ]
  in
  print_endline "\nZ-Morton order as an MLIR index function:";
  print_string (Lego_codegen.Mlir_gen.layout_apply_func ~name:"morton" morton)
