(* Tests for the stride derivation of section 3.3 (LEGO -> CuTe/Graphene
   shape:stride descriptions) and for partial-tile padding + masks. *)

open Lego_layout
module A = Lego_symbolic.Affine
module E = Lego_symbolic.Expr
module T = Lego_codegen.Triton_printer

let test_eq6_strides () =
  (* The paper's equation 6: tiling a row-major 6x6 into 3x3 blocks gives
     B: (2,2):(18,3) . (3,3):(6,1) — as a 4-D stride table,
     (2,2,3,3):(18,3,6,1). *)
  let g = Sugar.tiled_view ~group:[ [ 2; 2 ]; [ 3; 3 ] ] () in
  match A.of_layout g with
  | None -> Alcotest.fail "tiled view should be affine"
  | Some t ->
    Alcotest.(check string) "CuTe rendering" "(2, 2, 3, 3):(18, 3, 6, 1)"
      (A.to_cute t);
    Alcotest.(check (result unit string)) "validated" (Ok ()) (A.check g t)

let test_col_major_strides () =
  let g =
    Sugar.tiled_view ~order:[ Sugar.col [ 4; 6 ] ] ~group:[ [ 4; 6 ] ] ()
  in
  match A.of_layout g with
  | None -> Alcotest.fail "column-major is affine"
  | Some t ->
    Alcotest.(check string) "strides" "(4, 6):(1, 4)" (A.to_cute t)

let test_nonaffine_rejected () =
  (* Anti-diagonal and Morton orders lie outside the stride algebra —
     the paper's expressiveness argument. *)
  let antidiag =
    Group_by.make ~chain:[ Order_by.make [ Gallery.antidiag 4 ] ] [ [ 4; 4 ] ]
  in
  Alcotest.(check bool) "antidiag has no strides" true
    (A.of_layout antidiag = None);
  let morton =
    Group_by.make
      ~chain:[ Order_by.make [ Gallery.morton ~d:2 ~bits:2 ] ]
      [ [ 4; 4 ] ]
  in
  Alcotest.(check bool) "morton has no strides" true (A.of_layout morton = None)

let test_linearize () =
  let e = E.(add (mul (const 6) (var "i0")) (add (var "i1") (const 5))) in
  (match A.linearize ~vars:[ "i0"; "i1" ] e with
  | Some (5, [ ("i0", 6); ("i1", 1) ]) -> ()
  | _ -> Alcotest.fail "linearize affine");
  Alcotest.(check bool) "division is not affine" true
    (A.linearize ~vars:[ "i0" ] E.(div (var "i0") (const 2)) = None);
  Alcotest.(check bool) "foreign variable rejected" true
    (A.linearize ~vars:[ "i0" ] (E.var "j") = None)

let prop_affine_strides_correct =
  QCheck2.Test.make ~name:"derived strides reproduce the layout" ~count:100
    QCheck2.Gen.(
      quad (int_range 1 3) (int_range 1 3) (int_range 1 4) (int_range 1 4))
    (fun (tm, tk, bm, bk) ->
      let g = Sugar.tiled_view ~group:[ [ tm; tk ]; [ bm; bk ] ] () in
      match A.of_layout g with
      | None -> false
      | Some t -> A.check g t = Ok ())

(* --- Partial tiles and masks ------------------------------------------ *)

let test_padded_view () =
  let view, extents = Sugar.padded_tiled_view ~dims:[ 100; 50 ] ~tile:[ 32; 16 ] () in
  Alcotest.(check (list int)) "true extents kept" [ 100; 50 ] extents;
  Alcotest.(check (list int))
    "padded tiled dims" [ 4; 4; 32; 16 ]
    (Group_by.dims view);
  Alcotest.(check (result unit string))
    "padded space is a bijection" (Ok ()) (Check.layout view);
  (* In-bounds offsets match the unpadded row-major space padded to 128x64. *)
  Alcotest.(check int) "offset of (33, 17)" ((33 * 64) + 17)
    (Group_by.apply_ints view [ 33 / 32; 17 / 16; 33 mod 32; 17 mod 16 ])

let test_slice_mask () =
  let _view, extents =
    Sugar.padded_tiled_view ~dims:[ 100; 50 ] ~tile:[ 32; 16 ] ()
  in
  let group = [ [ 4; 4 ]; [ 32; 16 ] ] in
  let mask =
    T.slice_mask ~group ~extents
      [ T.Fix (E.var "pid_m"); T.Fix (E.var "k"); T.All; T.All ]
  in
  match mask with
  | None -> Alcotest.fail "padding requires a mask"
  | Some m ->
    List.iter
      (fun fragment ->
        if not (Str.string_match (Str.regexp (".*" ^ Str.quote fragment ^ ".*")) m 0)
        then Alcotest.failf "mask %S lacks %S" m fragment)
      [ "< 100"; "< 50"; "tl.arange(0, 32)[:, None]"; "tl.arange(0, 16)[None, :]"; " & " ]

let test_no_mask_when_divisible () =
  let _view, extents =
    Sugar.padded_tiled_view ~dims:[ 128; 64 ] ~tile:[ 32; 16 ] ()
  in
  Alcotest.(check bool) "no padding, no mask" true
    (T.slice_mask ~group:[ [ 4; 4 ]; [ 32; 16 ] ] ~extents
       [ T.Fix (E.var "pid_m"); T.Fix (E.var "k"); T.All; T.All ]
    = None)

let test_mask_semantics () =
  (* The mask expression evaluated over all tile cells is exactly the
     in-bounds predicate. *)
  let dims = [ 10; 7 ] in
  let coord_ok pid_m pid_n tm tn =
    let i = (pid_m * 4) + tm and j = (pid_n * 4) + tn in
    i < List.nth dims 0 && j < List.nth dims 1
  in
  (* Rebuild the mask as an expression (what slice_mask renders) and
     compare against the predicate. *)
  let mask_expr =
    E.(
      mul
        (lt
           (add (mul (const 4) (var "pid_m")) (var "tm"))
           (const (List.nth dims 0)))
        (lt
           (add (mul (const 4) (var "pid_n")) (var "tn"))
           (const (List.nth dims 1))))
  in
  for pid_m = 0 to 2 do
    for pid_n = 0 to 1 do
      for tm = 0 to 3 do
        for tn = 0 to 3 do
          let env = function
            | "pid_m" -> pid_m
            | "pid_n" -> pid_n
            | "tm" -> tm
            | "tn" -> tn
            | _ -> 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "(%d,%d,%d,%d)" pid_m pid_n tm tn)
            (coord_ok pid_m pid_n tm tn)
            (E.eval ~env mask_expr <> 0)
        done
      done
    done
  done

let suite =
  ( "affine",
    [
      Alcotest.test_case "equation 6 strides" `Quick test_eq6_strides;
      Alcotest.test_case "column-major strides" `Quick test_col_major_strides;
      Alcotest.test_case "non-affine layouts rejected" `Quick
        test_nonaffine_rejected;
      Alcotest.test_case "linearize" `Quick test_linearize;
      Alcotest.test_case "padded tiled view" `Quick test_padded_view;
      Alcotest.test_case "slice masks" `Quick test_slice_mask;
      Alcotest.test_case "no mask when divisible" `Quick
        test_no_mask_when_divisible;
      Alcotest.test_case "mask semantics" `Quick test_mask_semantics;
    ]
    @ [ QCheck_alcotest.to_alcotest ~long:false prop_affine_strides_correct ] )
