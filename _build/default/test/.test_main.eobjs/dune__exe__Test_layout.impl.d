test/test_layout.ml: Alcotest Check Format Fun Gallery Group_by Lego_layout List Order_by Piece Printf QCheck2 QCheck_alcotest Shape Sigma Sugar
