test/test_gpusim.ml: Alcotest Array Lego_gpusim Mem Metrics Printf Simt
