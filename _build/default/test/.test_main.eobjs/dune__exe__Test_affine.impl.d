test/test_affine.ml: Alcotest Check Gallery Group_by Lego_codegen Lego_layout Lego_symbolic List Order_by Printf QCheck2 QCheck_alcotest Str Sugar
