test/test_lang.ml: Alcotest Check Gallery Group_by Lego_lang Lego_layout List Order_by Piece QCheck2 QCheck_alcotest Sigma Str Sugar
