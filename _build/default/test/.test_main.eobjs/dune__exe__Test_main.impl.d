test/test_main.ml: Alcotest Test_affine Test_apps Test_codegen Test_gpusim Test_lang Test_layout Test_symbolic
