test/test_apps.ml: Alcotest Group_gemm Lego_apps Lego_gpusim Lego_layout List Matmul Nw Printf Softmax Transpose
