test/test_symbolic.ml: Alcotest Cost Expand Expr Lego_layout Lego_symbolic List Printf Prover QCheck2 QCheck_alcotest Range Simplify Sym
