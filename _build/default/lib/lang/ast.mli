(** Surface-syntax AST, mirroring the grammar of the paper's figure 5
    plus the dotted-chain notation and sugar of section 3.2. *)

type perm =
  | Reg_p of int list * int list  (** dims, 1-based permutation *)
  | Gen_p of string * int list  (** gallery bijection name, dims *)
  | Row of int list
  | Col of int list

type block =
  | Order_by of perm list
  | Group_by of int list list
  | Tile_by of int list list
  | Tile_order_by of perm list

type chain = block list
(** Written order: the final block is the grouping ([GroupBy]/[TileBy]),
    preceding blocks are reorderings applied right-to-left. *)

val pp_chain : Format.formatter -> chain -> unit
