lib/lang/parser.ml: Ast Format Lexer List Printf String Token
