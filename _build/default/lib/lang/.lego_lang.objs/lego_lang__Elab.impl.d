lib/lang/elab.ml: Ast Format Lego_layout List Parser Printf String
