lib/lang/elab.mli: Ast Lego_layout
