(** Recursive-descent parser for the LEGO notation.

    Accepted notation (arity suffixes like [OrderBy4] are optional and
    checked when present):

    {v
    chain  ::= block ('.' block)*
    block  ::= OrderByN '(' perm (',' perm)* ')'
             | TileOrderBy '(' perm (',' perm)* ')'
             | GroupByN '(' shape (',' shape)* ')'
             | TileBy '(' shape (',' shape)* ')'
    perm   ::= RegP '(' shape ',' shape ')'
             | GenP '(' ident shape ')'
             | Row '(' ints ')'  |  Col '(' ints ')'
    shape  ::= '[' int (',' int)* ']'
    v} *)

exception Parse_error of Token.pos * string

val parse_chain : string -> Ast.chain
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse : string -> (Ast.chain, string) result
(** Error message includes the position. *)
