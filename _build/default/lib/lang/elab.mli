(** Elaboration of the surface AST into core layouts.

    A chain must end in a grouping block ([GroupBy] or [TileBy]); every
    preceding block elaborates to reorderings, with sugar expanded per
    section 3.2 of the paper.  [GenP] names resolve through
    {!Lego_layout.Gallery.lookup}. *)

exception Elab_error of string

val chain : Ast.chain -> Lego_layout.Group_by.t
(** Raises {!Elab_error} (or [Invalid_argument] from core validation,
    e.g. element-count mismatches). *)

val layout_of_string : string -> (Lego_layout.Group_by.t, string) result
(** Parse and elaborate in one step. *)

val roundtrip : Lego_layout.Group_by.t -> (Lego_layout.Group_by.t, string) result
(** Print with {!Lego_layout.Group_by.pp} and re-read — used to test that
    the notation is self-describing. *)
