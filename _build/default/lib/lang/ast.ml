type perm =
  | Reg_p of int list * int list
  | Gen_p of string * int list
  | Row of int list
  | Col of int list

type block =
  | Order_by of perm list
  | Group_by of int list list
  | Tile_by of int list list
  | Tile_order_by of perm list

type chain = block list

let pp_ints ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    l

let pp_perm ppf = function
  | Reg_p (dims, sigma) ->
    Format.fprintf ppf "RegP(%a, %a)" pp_ints dims pp_ints sigma
  | Gen_p (name, dims) -> Format.fprintf ppf "GenP(%s%a)" name pp_ints dims
  | Row dims -> Format.fprintf ppf "Row(%a)" pp_ints dims
  | Col dims -> Format.fprintf ppf "Col(%a)" pp_ints dims

let pp_list pp ppf l =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf l

let pp_block ppf = function
  | Order_by perms -> Format.fprintf ppf "OrderBy(%a)" (pp_list pp_perm) perms
  | Group_by shapes -> Format.fprintf ppf "GroupBy(%a)" (pp_list pp_ints) shapes
  | Tile_by shapes -> Format.fprintf ppf "TileBy(%a)" (pp_list pp_ints) shapes
  | Tile_order_by perms ->
    Format.fprintf ppf "TileOrderBy(%a)" (pp_list pp_perm) perms

let pp_chain ppf chain =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ".")
    pp_block ppf chain
