(** Hand-written lexer for the LEGO notation. *)

exception Lex_error of Token.pos * string

val tokenize : string -> Token.spanned list
(** Ends with an [EOF] token.  Raises {!Lex_error} on unexpected input. *)
