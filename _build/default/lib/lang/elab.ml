module L = Lego_layout

exception Elab_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

let elab_perm = function
  | Ast.Reg_p (dims, sigma) ->
    if List.length dims <> List.length sigma then
      err "RegP: %d dimensions but a %d-entry permutation" (List.length dims)
        (List.length sigma);
    L.Piece.reg ~dims ~sigma:(L.Sigma.of_one_based sigma)
  | Ast.Gen_p (name, dims) -> (
    match L.Gallery.lookup name dims ~args:[] with
    | Some piece -> piece
    | None ->
      err "GenP: no gallery bijection %S at %s (known: %s)" name
        (Format.asprintf "%a" L.Shape.pp dims)
        (String.concat ", " (L.Gallery.names ())))
  | Ast.Row dims -> L.Sugar.row dims
  | Ast.Col dims -> L.Sugar.col dims

let elab_reorder = function
  | Ast.Order_by perms -> [ L.Order_by.make (List.map elab_perm perms) ]
  | Ast.Tile_order_by perms -> L.Sugar.tile_order_by (List.map elab_perm perms)
  | Ast.Tile_by shapes -> [ L.Sugar.tile_by shapes ]
  | Ast.Group_by _ -> err "GroupBy may only end a chain"

let chain blocks =
  match List.rev blocks with
  | [] -> err "empty chain"
  | last :: rev_prefix ->
    let prefix = List.rev rev_prefix in
    let reorders = List.concat_map elab_reorder prefix in
    (match last with
    | Ast.Group_by shapes -> L.Group_by.make ~chain:reorders shapes
    | Ast.Tile_by shapes ->
      L.Group_by.make ~chain:(reorders @ [ L.Sugar.tile_by shapes ]) shapes
    | Ast.Order_by _ | Ast.Tile_order_by _ ->
      err "a chain must end in GroupBy or TileBy")

let layout_of_string text =
  match Parser.parse text with
  | Error e -> Error e
  | Ok ast -> (
    match chain ast with
    | layout -> Ok layout
    | exception Elab_error msg -> Error msg
    | exception Invalid_argument msg -> Error msg)

let roundtrip layout =
  layout_of_string (Format.asprintf "%a" L.Group_by.pp layout)
