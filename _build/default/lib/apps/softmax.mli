(** Row-wise softmax (figure 12d of the paper).

    The LEGO/Triton implementation is a single fused kernel — each row is
    loaded once, reduced, exponentiated and written once.  The PyTorch
    eager baseline executes one kernel per algebraic step, re-reading the
    operand from global memory each time; at large row lengths both
    fused versions beat it by the traffic ratio, which is the effect the
    paper's figure shows. *)

type config = {
  rows : int;
  cols : int;
  dtype : Lego_gpusim.Mem.dtype;
  compute_values : bool;
}

val default_config : ?rows:int -> int -> config
(** [default_config cols] with 4096 rows, FP32, values off. *)

type result = {
  time_s : float;
  gbps : float;  (** effective bandwidth on the useful 2N bytes *)
  reports : Lego_gpusim.Simt.report list;
}

val row_layout : config -> Lego_layout.Group_by.t
(** Row-major [rows x cols] LEGO view used for the offsets. *)

val run_fused :
  ?device:Lego_gpusim.Device.t ->
  ?sample_blocks:int ->
  ?input:Lego_gpusim.Mem.buffer ->
  ?output:Lego_gpusim.Mem.buffer ->
  config ->
  result
(** The LEGO-generated (and, identically, Triton reference) fused kernel:
    one block per row. *)

val run_eager :
  ?device:Lego_gpusim.Device.t ->
  ?sample_blocks:int ->
  config ->
  result
(** PyTorch eager baseline: max, subtract+exp, sum, divide as four
    separate kernel launches. *)

val check_numerics : config -> (unit, string) Stdlib.result
