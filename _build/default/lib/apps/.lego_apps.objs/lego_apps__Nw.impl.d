lib/apps/nw.ml: Array Device Float Hashtbl Lego_gpusim Lego_layout List Mem Metrics Printf Simt
