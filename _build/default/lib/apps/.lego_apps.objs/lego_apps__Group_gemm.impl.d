lib/apps/group_gemm.ml: Lego_layout Matmul
