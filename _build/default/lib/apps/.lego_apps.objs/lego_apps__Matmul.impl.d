lib/apps/matmul.ml: Array Device Float Fun Lego_gpusim Lego_layout Lego_symbolic List Mem Metrics Printf Simt
