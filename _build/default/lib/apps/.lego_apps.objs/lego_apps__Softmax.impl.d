lib/apps/softmax.ml: Array Device Float Fun Lego_gpusim Lego_layout Mem Metrics Printf Simt
