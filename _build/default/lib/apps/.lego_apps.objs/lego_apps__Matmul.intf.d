lib/apps/matmul.mli: Lego_gpusim Lego_layout Stdlib
