lib/apps/transpose.ml: Device Float Lego_gpusim Lego_layout Mem Metrics Printf Simt
