lib/apps/group_gemm.mli: Lego_gpusim Lego_layout Matmul
