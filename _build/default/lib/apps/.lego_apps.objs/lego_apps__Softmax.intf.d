lib/apps/softmax.mli: Lego_gpusim Lego_layout Stdlib
