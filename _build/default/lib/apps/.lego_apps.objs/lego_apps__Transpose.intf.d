lib/apps/transpose.mli: Lego_gpusim Stdlib
