lib/apps/nw.mli: Lego_gpusim Stdlib
