(** Grouped GEMM (figure 12c of the paper).

    Following the Triton repository benchmark the paper uses: a group of
    same-shaped GEMMs is either launched one kernel per GEMM (paying a
    launch and an under-occupied grid each time) or as a single kernel
    whose program ids range over every tile of every member.  The mapping
    [pid -> (gemm, tile_m, tile_n)] of the grouped kernel is itself a LEGO
    grouping ({!pid_layout}). *)

type config = {
  gemms : int;
  base : Matmul.config;  (** shape shared by the group members *)
}

val default_config : ?gemms:int -> int -> config
(** [default_config size] — [gemms] (default 8) square GEMMs. *)

val pid_layout : config -> Lego_layout.Group_by.t
(** Logical [(gemm, pid_m, pid_n)] view of the grouped kernel's flat
    program-id space. *)

val run_individual :
  ?device:Lego_gpusim.Device.t -> config -> Matmul.result
(** One launch per GEMM; times add. *)

val run_grouped :
  ?device:Lego_gpusim.Device.t -> config -> Matmul.result
(** Single launch covering the whole group. *)
