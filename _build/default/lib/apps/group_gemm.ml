module L = Lego_layout

type config = { gemms : int; base : Matmul.config }

let default_config ?(gemms = 8) size =
  { gemms; base = Matmul.default_config size }

let pid_layout cfg =
  let npm = cfg.base.Matmul.m / cfg.base.Matmul.bm in
  let npn = cfg.base.Matmul.n / cfg.base.Matmul.bn in
  L.Sugar.tiled_view ~group:[ [ cfg.gemms; npm; npn ] ] ()

let run_individual ?device cfg =
  let one = Matmul.run_lego ?device cfg.base Matmul.NN in
  let time_s = float_of_int cfg.gemms *. one.Matmul.time_s in
  let useful =
    2.0
    *. float_of_int (cfg.gemms * cfg.base.Matmul.m)
    *. float_of_int cfg.base.Matmul.n
    *. float_of_int cfg.base.Matmul.k
  in
  {
    Matmul.time_s;
    gflops = useful /. time_s /. 1e9;
    reports = one.Matmul.reports;
  }

let run_grouped ?device cfg =
  (* One launch whose grid covers every tile of every member; for
     same-shaped members this is cost-equivalent to a single GEMM with
     [gemms]-times as many M tiles (the pid mapping is {!pid_layout}),
     which is how we simulate it. *)
  let base = cfg.base in
  let stacked = { base with Matmul.m = base.Matmul.m * cfg.gemms } in
  let r = Matmul.run_lego ?device stacked Matmul.NN in
  let useful =
    2.0
    *. float_of_int (cfg.gemms * base.Matmul.m)
    *. float_of_int base.Matmul.n
    *. float_of_int base.Matmul.k
  in
  { r with Matmul.gflops = useful /. r.Matmul.time_s /. 1e9 }
