module L = Lego_layout
module G = Lego_gpusim
open G

type config = {
  rows : int;
  cols : int;
  dtype : Mem.dtype;
  compute_values : bool;
}

let default_config ?(rows = 4096) cols =
  { rows; cols; dtype = Mem.F32; compute_values = false }

type result = {
  time_s : float;
  gbps : float;
  reports : Simt.report list;
}

let row_layout cfg = L.Sugar.tiled_view ~group:[ [ cfg.rows; cfg.cols ] ] ()

let threads = 256

(* Block-wide tree reduction through shared memory.  [op] combines, the
   thread's partial lives in [smem slot tid]. *)
let block_reduce ~tid op partial =
  Simt.sstore tid partial;
  Simt.sync ();
  let stride = ref (threads / 2) in
  let acc = ref partial in
  while !stride > 0 do
    if tid < !stride then begin
      let other = Simt.sload (tid + !stride) in
      acc := op !acc other;
      Simt.sstore tid !acc
    end;
    Simt.sync ();
    stride := !stride / 2
  done;
  let result = Simt.sload 0 in
  Simt.sync ();
  result

let fused_kernel cfg layout ~wrap input output (ctx : Simt.ctx) =
  let tid = Simt.linear_tid ctx in
  let row = ctx.bx in
  let per_thread = (cfg.cols + threads - 1) / threads in
  let addr c = wrap (L.Group_by.apply_ints layout [ row; c ]) in
  (* Load the row slice and find the local max. *)
  let local = Array.make per_thread neg_infinity in
  let local_max = ref neg_infinity in
  for l = 0 to per_thread - 1 do
    let c = tid + (l * threads) in
    if c < cfg.cols then begin
      Simt.alu 2;
      let v = Simt.gload input (addr c) in
      local.(l) <- v;
      local_max := Float.max !local_max v
    end
  done;
  Simt.flops cfg.dtype per_thread;
  let row_max = block_reduce ~tid Float.max !local_max in
  (* exp and sum *)
  let local_sum = ref 0.0 in
  for l = 0 to per_thread - 1 do
    let c = tid + (l * threads) in
    if c < cfg.cols then begin
      let e = if cfg.compute_values then exp (local.(l) -. row_max) else 1.0 in
      local.(l) <- e;
      local_sum := !local_sum +. e
    end
  done;
  Simt.flops cfg.dtype (2 * per_thread);
  let row_sum = block_reduce ~tid ( +. ) !local_sum in
  (* normalize and store *)
  for l = 0 to per_thread - 1 do
    let c = tid + (l * threads) in
    if c < cfg.cols then begin
      Simt.alu 2;
      let v = if cfg.compute_values then local.(l) /. row_sum else 0.0 in
      Simt.gstore output (addr c) v
    end
  done;
  Simt.flops cfg.dtype per_thread

let run_fused ?(device = Device.a100) ?(sample_blocks = 4) ?input ?output cfg
    =
  let layout = row_layout cfg in
  let n = cfg.rows * cfg.cols in
  let cap = if cfg.compute_values then n else 1 lsl 22 in
  let input, wrap =
    match input with
    | Some b -> (b, Fun.id)
    | None -> Mem.create_arena ~label:"x" cfg.dtype n ~cap
  in
  let output =
    match output with
    | Some b -> b
    | None -> fst (Mem.create_arena ~label:"y" cfg.dtype n ~cap)
  in
  let sample_blocks = if cfg.compute_values then None else Some sample_blocks in
  let report =
    Simt.run ~device ?sample_blocks ~grid:(cfg.rows, 1) ~block:(threads, 1)
      ~smem_words:threads
      (fused_kernel cfg layout ~wrap input output)
  in
  let time_s = Metrics.time_s report in
  let useful_bytes =
    2.0 *. float_of_int n *. float_of_int (Mem.dtype_bytes cfg.dtype)
  in
  { time_s; gbps = Metrics.gbps ~useful_bytes time_s; reports = [ report ] }

(* Eager baseline building blocks: strided elementwise / row-reduce
   kernels, one launch each. *)
let eager_rowreduce cfg layout ~wrap input stats =
  fun (ctx : Simt.ctx) ->
    let tid = Simt.linear_tid ctx in
    let row = ctx.bx in
    let per_thread = (cfg.cols + threads - 1) / threads in
    let partial = ref 0.0 in
    for l = 0 to per_thread - 1 do
      let c = tid + (l * threads) in
      if c < cfg.cols then begin
        Simt.alu 2;
        partial := !partial +. Simt.gload input (wrap (L.Group_by.apply_ints layout [ row; c ]))
      end
    done;
    Simt.flops cfg.dtype per_thread;
    let total = block_reduce ~tid ( +. ) !partial in
    if tid = 0 then Simt.gstore stats row total

let eager_map2 cfg layout ~wrap input stats output =
  fun (ctx : Simt.ctx) ->
    let tid = Simt.linear_tid ctx in
    let row = ctx.bx in
    let per_thread = (cfg.cols + threads - 1) / threads in
    let s = Simt.gload stats row in
    ignore s;
    for l = 0 to per_thread - 1 do
      let c = tid + (l * threads) in
      if c < cfg.cols then begin
        Simt.alu 2;
        let v = Simt.gload input (wrap (L.Group_by.apply_ints layout [ row; c ])) in
        Simt.gstore output (wrap (L.Group_by.apply_ints layout [ row; c ])) v
      end
    done;
    Simt.flops cfg.dtype per_thread

let run_eager ?(device = Device.a100) ?(sample_blocks = 4) cfg =
  let layout = row_layout cfg in
  let n = cfg.rows * cfg.cols in
  let x, wrap = Mem.create_arena ~label:"x" cfg.dtype n ~cap:(1 lsl 22) in
  let tmp = fst (Mem.create_arena ~label:"tmp" cfg.dtype n ~cap:(1 lsl 22)) in
  let stats = Mem.create ~label:"stats" cfg.dtype cfg.rows in
  let launch body =
    Simt.run ~device ~sample_blocks ~grid:(cfg.rows, 1) ~block:(threads, 1)
      ~smem_words:threads body
  in
  let reports =
    [
      launch (eager_rowreduce cfg layout ~wrap x stats);   (* max *)
      launch (eager_map2 cfg layout ~wrap x stats tmp);    (* subtract + exp *)
      launch (eager_rowreduce cfg layout ~wrap tmp stats); (* sum *)
      launch (eager_map2 cfg layout ~wrap tmp stats tmp);  (* divide *)
    ]
  in
  let time_s = Metrics.sum_times_s reports in
  let useful_bytes =
    2.0 *. float_of_int n *. float_of_int (Mem.dtype_bytes cfg.dtype)
  in
  { time_s; gbps = Metrics.gbps ~useful_bytes time_s; reports }

let check_numerics cfg =
  let cfg = { cfg with compute_values = true } in
  let n = cfg.rows * cfg.cols in
  let input = Mem.create ~label:"x" cfg.dtype n in
  Mem.fill_random ~seed:7 input;
  let output = Mem.create ~label:"y" cfg.dtype n in
  let _ = run_fused ~input ~output cfg in
  let worst = ref 0.0 in
  for r = 0 to cfg.rows - 1 do
    let row = Array.init cfg.cols (fun c -> Mem.get input ((r * cfg.cols) + c)) in
    let mx = Array.fold_left Float.max neg_infinity row in
    let exps = Array.map (fun v -> exp (v -. mx)) row in
    let s = Array.fold_left ( +. ) 0.0 exps in
    Array.iteri
      (fun c e ->
        let got = Mem.get output ((r * cfg.cols) + c) in
        worst := Float.max !worst (Float.abs (got -. (e /. s))))
      exps
  done;
  if !worst <= 1e-6 then Ok ()
  else Error (Printf.sprintf "softmax: max |err| = %g" !worst)
