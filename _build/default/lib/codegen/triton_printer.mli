(** Triton (Python) code generation with NumPy-style slicing (sections
    4.1 and 5 of the paper).

    Indexing a layout with a mix of fixed indices and [`All] slices (the
    paper's [DL_a[lpid_m, k, :, :]]) produces a tensor-valued offset
    expression: each sliced dimension becomes a [tl.arange(0, n)] ranged
    variable, broadcast against the other slices with [[:, None]] /
    [[None, :]] suffixes.  The bounds come from the layout — they must be
    static, which Triton requires of [tl.arange]. *)

type index = Fix of Lego_symbolic.Expr.t | All
(** One logical index position: a fixed (scalar) expression or a [:]. *)

val expr : Lego_symbolic.Expr.t -> string
(** Scalar Python rendering ([//] and [%] — Python floor semantics match
    the algebra exactly). *)

val slice_offset :
  ?simplify:bool ->
  ?env:Lego_symbolic.Range.env ->
  Lego_layout.Group_by.t ->
  index list ->
  string
(** The tensor offset expression for the given mixed indexing.  Sliced
    dimensions are ranged over their full extent during simplification,
    so tile-local bound proofs still fire.  Raises [Invalid_argument] if
    the index list's length differs from the layout rank or more than two
    positions are sliced (Triton tensors in this template are <= 2-D). *)

val slice_mask :
  ?env:Lego_symbolic.Range.env ->
  group:Lego_layout.Shape.t list ->
  extents:Lego_layout.Shape.t ->
  index list ->
  string option
(** Masks for partial tiles (section 3.3 of the paper): for a (possibly
    padded) tiled view with hierarchy [group] whose {e true} per-dimension
    extents are [extents], produce the boolean tensor expression guarding
    a load/store at the given mixed indexing — one [coord < extent]
    conjunct per dimension whose padded extent exceeds the true one
    ([None] when no padding, so no mask is needed).  Broadcast suffixes
    match {!slice_offset} for the same index list. *)

val arange_var : int -> string
(** Name of the synthetic variable standing for slice number [k] (exposed
    for tests). *)
