(** Minimal Jinja-style template instantiation (section 4.1 of the paper).

    Kernel templates contain [{{ placeholder }}] markers; LEGO replaces
    each with a generated index expression.  Unknown placeholders are an
    error (catching template/layout drift), unused bindings are
    reported. *)

val placeholders : string -> string list
(** Placeholder names appearing in the template, in order, deduplicated. *)

val render :
  bindings:(string * string) list -> string -> (string, string) result
(** Substitute every [{{ name }}]; [Error] describes missing bindings. *)

val render_exn : bindings:(string * string) list -> string -> string
(** Like {!render}; raises [Invalid_argument] with the same message. *)
