lib/codegen/c_printer.ml: Lego_symbolic List Printf String
