lib/codegen/cse.mli: Format Lego_symbolic
