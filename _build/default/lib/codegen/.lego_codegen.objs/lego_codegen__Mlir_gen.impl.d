lib/codegen/mlir_gen.ml: Buffer Cse Hashtbl Lego_layout Lego_symbolic List Printf String
