lib/codegen/cse.ml: Format Hashtbl Lego_layout Lego_symbolic List Printf
