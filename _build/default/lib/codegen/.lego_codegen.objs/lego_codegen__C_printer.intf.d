lib/codegen/c_printer.mli: Lego_symbolic
