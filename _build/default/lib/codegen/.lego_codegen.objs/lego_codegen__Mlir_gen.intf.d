lib/codegen/mlir_gen.mli: Lego_layout Lego_symbolic
