lib/codegen/triton_printer.mli: Lego_layout Lego_symbolic
