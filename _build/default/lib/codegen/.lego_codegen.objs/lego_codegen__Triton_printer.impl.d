lib/codegen/triton_printer.ml: Fun Lego_layout Lego_symbolic List Printf Str String
