lib/codegen/template.mli:
