lib/codegen/template.ml: List Printf Str String
