module E = Lego_symbolic.Expr

let rec pr prec (e : E.t) =
  let paren p s = if prec > p then "(" ^ s ^ ")" else s in
  match e with
  | Const n -> if n < 0 then paren 10 (string_of_int n) else string_of_int n
  | Var v -> v
  | Add xs ->
    paren 4
      (String.concat ""
         (List.mapi
            (fun k x ->
              if k = 0 then pr 4 x
              else
                match E.as_linear_term x with
                | c, fs when c < 0 -> " - " ^ pr 5 (E.of_linear_term (-c, fs))
                | _ -> " + " ^ pr 5 x)
            xs))
  | Mul xs -> paren 5 (String.concat " * " (List.map (pr 6) xs))
  | Div (a, b) -> paren 5 (pr 5 a ^ " / " ^ pr 6 b)
  | Mod (a, b) -> paren 5 (pr 5 a ^ " % " ^ pr 6 b)
  | Select (c, a, b) -> paren 1 (pr 2 c ^ " ? " ^ pr 2 a ^ " : " ^ pr 1 b)
  | Le (a, b) -> paren 3 (pr 4 a ^ " <= " ^ pr 4 b)
  | Lt (a, b) -> paren 3 (pr 4 a ^ " < " ^ pr 4 b)
  | Eq (a, b) -> paren 3 (pr 4 a ^ " == " ^ pr 4 b)
  | Isqrt a -> "lego_isqrt(" ^ pr 0 a ^ ")"

let expr e = pr 0 e
let define ~name e = Printf.sprintf "int %s = %s;" name (expr e)

let function_def ~name ~params e =
  Printf.sprintf
    "__host__ __device__ static inline int %s(%s) {\n  return %s;\n}" name
    (String.concat ", " (List.map (fun p -> "int " ^ p) params))
    (expr e)

let isqrt_helper =
  "__host__ __device__ static inline int lego_isqrt(int x) {\n\
  \  int r = (int)sqrtf((float)x);\n\
  \  while (r * r > x) --r;\n\
  \  while ((r + 1) * (r + 1) <= x) ++r;\n\
  \  return r;\n\
   }"

let guard_nonneg ~env e =
  let module R = Lego_symbolic.Range in
  let module P = Lego_symbolic.Prover in
  let bad = ref None in
  let rec go (e : E.t) =
    (match e with
    | Div (a, b) | Mod (a, b) ->
      if !bad = None && not (P.nonneg env a && P.positive env b) then
        bad := Some (E.to_string e)
    | _ -> ());
    match e with
    | Const _ | Var _ -> ()
    | Add xs | Mul xs -> List.iter go xs
    | Div (a, b) | Mod (a, b) | Le (a, b) | Lt (a, b) | Eq (a, b) ->
      go a;
      go b
    | Select (c, a, b) ->
      go c;
      go a;
      go b
    | Isqrt a -> go a
  in
  go e;
  match !bad with
  | None -> Ok ()
  | Some s ->
    Error
      (Printf.sprintf
         "C division truncates toward zero but %s is not provably \
          non-negative/positive"
         s)
