(** C/CUDA expression printing (the paper's CUDA template path).

    Renders an index expression as a C expression over [int] variables —
    what gets spliced into an [Arr2D]-style overloaded [operator[]] or a
    kernel template.  Division/modulo print as [/] and [%], which agree
    with the algebra's floor semantics on the non-negative index ranges
    LEGO guarantees; {!guard_nonneg} checks that claim with the range
    engine when an environment is supplied. *)

val expr : Lego_symbolic.Expr.t -> string
(** C expression text (ternaries for selects, [lego_isqrt] for integer
    square roots). *)

val define : name:string -> Lego_symbolic.Expr.t -> string
(** [int name = <expr>;] *)

val function_def :
  name:string -> params:string list -> Lego_symbolic.Expr.t -> string
(** A complete [__host__ __device__] helper returning the expression. *)

val isqrt_helper : string
(** Definition of [lego_isqrt], emitted once per translation unit. *)

val guard_nonneg :
  env:Lego_symbolic.Range.env -> Lego_symbolic.Expr.t -> (unit, string) result
(** Verify every division/modulo dividend is provably non-negative under
    [env], so C truncation equals floor division. *)
