(** MLIR emission (section 4.2 of the paper).

    Index expressions lower (through {!Cse}) to [arith]-dialect SSA over
    [index] values, packaged as [func.func]s; integer square root emits
    the one-op custom dialect [lego.isqrt], mirroring the paper's remark
    that user dialects can build on the layout algebra.  Whole data
    movements (e.g. the figure-13 transpose) emit [scf.for] loops over
    [memref]s.  Everything emitted here round-trips through
    {!Lego_mlirsim}. *)

val index_func :
  name:string -> params:string list -> Lego_symbolic.Expr.t list -> string
(** A module with one function from the given index parameters to one
    result per expression. *)

val layout_apply_func :
  name:string -> Lego_layout.Group_by.t -> string
(** [index_func] for a layout's simplified symbolic [apply] (parameters
    [i0 ... i(d-1)]). *)

val layout_inv_func : name:string -> Lego_layout.Group_by.t -> string
(** The inverse mapping: one flat parameter [p], d results. *)

val copy_func :
  name:string ->
  src_offset:Lego_symbolic.Expr.t ->
  dst_offset:Lego_symbolic.Expr.t ->
  dims:int list ->
  string
(** A nest of [scf.for] loops over logical indices [i0..], copying
    [dst[dst_offset] := src[src_offset]] between two 1-D memrefs — the
    layout-change data movement of the paper's transpose example. *)
