module L = Lego_layout

let atom_name const_names = function
  | Cse.Avar v -> "%" ^ v
  | Cse.Aconst n -> Hashtbl.find const_names n

(* Emit the arith ops for [instrs], interning constants; returns the
   rendered lines.  Comparison results are i1 and may only feed selects;
   Cse's typing guarantees that for expressions built by the algebra. *)
let emit_instrs b ~indent const_names instrs =
  let pad = String.make indent ' ' in
  let ensure_const n =
    if not (Hashtbl.mem const_names n) then begin
      let name =
        if n < 0 then Printf.sprintf "%%cm%d" (-n) else Printf.sprintf "%%c%d" n
      in
      Hashtbl.add const_names n name;
      Buffer.add_string b
        (Printf.sprintf "%s%s = arith.constant %d : index\n" pad name n)
    end
  in
  List.iter
    (fun { Cse.dst = _; op = _; args } ->
      List.iter (function Cse.Aconst n -> ensure_const n | _ -> ()) args)
    instrs;
  let name = atom_name const_names in
  List.iter
    (fun { Cse.dst; op; args } ->
      let line =
        match (op, args) with
        | Cse.Add, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.addi %s, %s : index" dst (name a)
            (name b')
        | Cse.Mul, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.muli %s, %s : index" dst (name a)
            (name b')
        | Cse.Divf, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.floordivsi %s, %s : index" dst (name a)
            (name b')
        | Cse.Rem, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.remsi %s, %s : index" dst (name a)
            (name b')
        | Cse.CmpLe, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.cmpi sle, %s, %s : index" dst (name a)
            (name b')
        | Cse.CmpLt, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.cmpi slt, %s, %s : index" dst (name a)
            (name b')
        | Cse.CmpEq, [ a; b' ] ->
          Printf.sprintf "%%%s = arith.cmpi eq, %s, %s : index" dst (name a)
            (name b')
        | Cse.Sel, [ c; a; b' ] ->
          Printf.sprintf "%%%s = arith.select %s, %s, %s : index" dst (name c)
            (name a) (name b')
        | Cse.Isqrt, [ a ] ->
          Printf.sprintf "%%%s = lego.isqrt %s : index" dst (name a)
        | _ -> invalid_arg "Mlir_gen: malformed instruction"
      in
      Buffer.add_string b (pad ^ line ^ "\n"))
    instrs

let index_func ~name ~params exprs =
  let b = Buffer.create 1024 in
  let instrs, results = Cse.lower exprs in
  let const_names = Hashtbl.create 16 in
  Buffer.add_string b "module {\n";
  Buffer.add_string b
    (Printf.sprintf "  func.func @%s(%s) -> (%s) {\n" name
       (String.concat ", " (List.map (fun p -> "%" ^ p ^ ": index") params))
       (String.concat ", " (List.map (fun _ -> "index") results)));
  (* Roots that are plain constants still need materialization. *)
  List.iter
    (function
      | Cse.Aconst n ->
        if not (Hashtbl.mem const_names n) then begin
          let cname =
            if n < 0 then Printf.sprintf "%%cm%d" (-n)
            else Printf.sprintf "%%c%d" n
          in
          Hashtbl.add const_names n cname;
          Buffer.add_string b
            (Printf.sprintf "    %s = arith.constant %d : index\n" cname n)
        end
      | Cse.Avar _ -> ())
    results;
  emit_instrs b ~indent:4 const_names instrs;
  Buffer.add_string b
    (Printf.sprintf "    return %s : %s\n"
       (String.concat ", " (List.map (atom_name const_names) results))
       (String.concat ", " (List.map (fun _ -> "index") results)));
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let layout_apply_func ~name layout =
  let d = L.Group_by.rank layout in
  let params = List.init d (Printf.sprintf "i%d") in
  index_func ~name ~params [ Lego_symbolic.Sym.apply layout ]

let layout_inv_func ~name layout =
  index_func ~name ~params:[ "p" ] (Lego_symbolic.Sym.inv layout)

let copy_func ~name ~src_offset ~dst_offset ~dims =
  let b = Buffer.create 2048 in
  let d = List.length dims in
  let instrs, results = Cse.lower [ src_offset; dst_offset ] in
  let const_names = Hashtbl.create 16 in
  Buffer.add_string b "module {\n";
  Buffer.add_string b
    (Printf.sprintf
       "  func.func @%s(%%src: memref<?xindex>, %%dst: memref<?xindex>) {\n"
       name);
  (* Loop-bound and step constants. *)
  let need = 0 :: 1 :: dims in
  List.iter
    (fun n ->
      if not (Hashtbl.mem const_names n) then begin
        let cname = Printf.sprintf "%%c%d" n in
        Hashtbl.add const_names n cname;
        Buffer.add_string b
          (Printf.sprintf "    %s = arith.constant %d : index\n" cname n)
      end)
    need;
  let rec loops k indent =
    let pad = String.make indent ' ' in
    if k = d then begin
      emit_instrs b ~indent const_names instrs;
      let src, dst =
        match results with [ s; t ] -> (s, t) | _ -> assert false
      in
      Buffer.add_string b
        (Printf.sprintf "%s%%v = memref.load %%src[%s] : memref<?xindex>\n" pad
           (atom_name const_names src));
      Buffer.add_string b
        (Printf.sprintf "%smemref.store %%v, %%dst[%s] : memref<?xindex>\n" pad
           (atom_name const_names dst))
    end
    else begin
      Buffer.add_string b
        (Printf.sprintf "%sscf.for %%i%d = %%c0 to %%c%d step %%c1 {\n" pad k
           (List.nth dims k));
      loops (k + 1) (indent + 2);
      Buffer.add_string b (pad ^ "}\n")
    end
  in
  loops 0 4;
  Buffer.add_string b "    return\n  }\n}\n";
  Buffer.contents b
