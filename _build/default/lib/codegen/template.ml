let marker_re = Str.regexp "{{ *\\([A-Za-z_][A-Za-z0-9_]*\\) *}}"

let placeholders tpl =
  let rec go acc pos =
    match Str.search_forward marker_re tpl pos with
    | exception Not_found -> List.rev acc
    | start ->
      let name = Str.matched_group 1 tpl in
      let acc = if List.mem name acc then acc else name :: acc in
      go acc (start + String.length (Str.matched_string tpl))
  in
  go [] 0

let render ~bindings tpl =
  let missing = ref [] in
  let result =
    Str.global_substitute marker_re
      (fun whole ->
        let name = Str.matched_group 1 whole in
        match List.assoc_opt name bindings with
        | Some value -> value
        | None ->
          if not (List.mem name !missing) then missing := name :: !missing;
          "")
      tpl
  in
  match !missing with
  | [] -> Ok result
  | names ->
    Error
      (Printf.sprintf "template: unbound placeholders: %s"
         (String.concat ", " (List.rev names)))

let render_exn ~bindings tpl =
  match render ~bindings tpl with
  | Ok s -> s
  | Error msg -> invalid_arg msg
