(** Lowering expressions to three-address code with common-subexpression
    elimination.

    N-ary sums/products are flattened into binary instruction chains and
    structurally equal subcomputations are assigned a single name — the
    form the MLIR backend prints as [arith] SSA (the paper leans on
    MLIR's CSE for the same cleanup). *)

type atom = Avar of string | Aconst of int

type opcode =
  | Add
  | Mul
  | Divf  (** floor division *)
  | Rem
  | CmpLe
  | CmpLt
  | CmpEq
  | Sel
  | Isqrt

type instr = { dst : string; op : opcode; args : atom list }

val lower :
  ?prefix:string -> Lego_symbolic.Expr.t list -> instr list * atom list
(** [lower roots] returns the instruction sequence (dependencies first)
    and one result atom per root.  Free variables become [Avar]
    arguments; constants stay inline as [Aconst]. *)

val eval :
  env:(string -> int) -> instr list -> atom list -> int list
(** Reference interpreter for the three-address form (differential
    testing against {!Lego_symbolic.Expr.eval}). *)

val pp_instr : Format.formatter -> instr -> unit
