(** AST for the MLIR subset the LEGO backend emits: [func] over [index]
    and 1-D [memref] values, [arith] ops, [scf.for], [memref.load]/
    [memref.store], and the custom [lego.isqrt]. *)

type binop = Add | Mul | FloorDiv | Rem
type cmp = Le | Lt | Eq

type op =
  | Constant of { dst : string; value : int }
  | Binop of { dst : string; kind : binop; lhs : string; rhs : string }
  | Cmpi of { dst : string; kind : cmp; lhs : string; rhs : string }
  | Select of { dst : string; cond : string; if_true : string; if_false : string }
  | Isqrt of { dst : string; arg : string }
  | Load of { dst : string; mem : string; idx : string }
  | Store of { value : string; mem : string; idx : string }
  | For of { var : string; lb : string; ub : string; step : string; body : op list }
  | Return of string list

type param_type = Index | Memref

type func = {
  fname : string;
  params : (string * param_type) list;
  body : op list;
}

type modul = func list

val find_func : modul -> string -> func option
val pp_op : Format.formatter -> op -> unit
