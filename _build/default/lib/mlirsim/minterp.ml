type value = Int of int | Mem of int array

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type env = (string, value) Hashtbl.t

let lookup (env : env) name =
  match Hashtbl.find_opt env name with
  | Some v -> v
  | None -> err "unbound SSA value %%%s" name

let int_of env name =
  match lookup env name with
  | Int n -> n
  | Mem _ -> err "%%%s is a memref, expected an index" name

let mem_of env name =
  match lookup env name with
  | Mem a -> a
  | Int _ -> err "%%%s is an index, expected a memref" name

exception Returned of int list

let rec exec_ops (env : env) ops =
  List.iter (exec_op env) ops

and exec_op env (op : Mast.op) =
  match op with
  | Constant { dst; value } -> Hashtbl.replace env dst (Int value)
  | Binop { dst; kind; lhs; rhs } ->
    let a = int_of env lhs and b = int_of env rhs in
    let v =
      match kind with
      | Mast.Add -> a + b
      | Mast.Mul -> a * b
      | Mast.FloorDiv ->
        if b = 0 then raise Division_by_zero
        else Lego_layout.Domain.floor_div a b
      | Mast.Rem ->
        if b = 0 then raise Division_by_zero
        else Lego_layout.Domain.floor_rem a b
    in
    Hashtbl.replace env dst (Int v)
  | Cmpi { dst; kind; lhs; rhs } ->
    let a = int_of env lhs and b = int_of env rhs in
    let v =
      match kind with
      | Mast.Le -> a <= b
      | Mast.Lt -> a < b
      | Mast.Eq -> a = b
    in
    Hashtbl.replace env dst (Int (Bool.to_int v))
  | Select { dst; cond; if_true; if_false } ->
    let v = if int_of env cond <> 0 then if_true else if_false in
    Hashtbl.replace env dst (Int (int_of env v))
  | Isqrt { dst; arg } ->
    Hashtbl.replace env dst (Int (Lego_layout.Domain.int_isqrt (int_of env arg)))
  | Load { dst; mem; idx } ->
    let a = mem_of env mem and i = int_of env idx in
    if i < 0 || i >= Array.length a then
      err "load out of bounds: %%%s[%d] (size %d)" mem i (Array.length a);
    Hashtbl.replace env dst (Int a.(i))
  | Store { value; mem; idx } ->
    let a = mem_of env mem and i = int_of env idx in
    if i < 0 || i >= Array.length a then
      err "store out of bounds: %%%s[%d] (size %d)" mem i (Array.length a);
    a.(i) <- int_of env value
  | For { var; lb; ub; step; body } ->
    let lb = int_of env lb and ub = int_of env ub and step = int_of env step in
    if step <= 0 then err "scf.for with non-positive step %d" step;
    let i = ref lb in
    while !i < ub do
      Hashtbl.replace env var (Int !i);
      exec_ops env body;
      i := !i + step
    done
  | Return names -> raise (Returned (List.map (int_of env) names))

let run_func m name args =
  match Mast.find_func m name with
  | None -> err "no function @%s in module" name
  | Some f ->
    if List.length args <> List.length f.Mast.params then
      err "@%s expects %d arguments, got %d" name
        (List.length f.Mast.params) (List.length args);
    let env : env = Hashtbl.create 64 in
    List.iter2
      (fun (pname, ty) arg ->
        (match (ty, arg) with
        | Mast.Index, Int _ | Mast.Memref, Mem _ -> ()
        | Mast.Index, Mem _ -> err "@%s: %%%s expects an index" name pname
        | Mast.Memref, Int _ -> err "@%s: %%%s expects a memref" name pname);
        Hashtbl.replace env pname arg)
      f.Mast.params args;
    (try
       exec_ops env f.Mast.body;
       []
     with Returned vs -> vs)
