type binop = Add | Mul | FloorDiv | Rem
type cmp = Le | Lt | Eq

type op =
  | Constant of { dst : string; value : int }
  | Binop of { dst : string; kind : binop; lhs : string; rhs : string }
  | Cmpi of { dst : string; kind : cmp; lhs : string; rhs : string }
  | Select of { dst : string; cond : string; if_true : string; if_false : string }
  | Isqrt of { dst : string; arg : string }
  | Load of { dst : string; mem : string; idx : string }
  | Store of { value : string; mem : string; idx : string }
  | For of { var : string; lb : string; ub : string; step : string; body : op list }
  | Return of string list

type param_type = Index | Memref

type func = {
  fname : string;
  params : (string * param_type) list;
  body : op list;
}

type modul = func list

let find_func m name = List.find_opt (fun f -> f.fname = name) m

let binop_name = function
  | Add -> "addi"
  | Mul -> "muli"
  | FloorDiv -> "floordivsi"
  | Rem -> "remsi"

let cmp_name = function Le -> "sle" | Lt -> "slt" | Eq -> "eq"

let rec pp_op ppf = function
  | Constant { dst; value } ->
    Format.fprintf ppf "%%%s = arith.constant %d : index" dst value
  | Binop { dst; kind; lhs; rhs } ->
    Format.fprintf ppf "%%%s = arith.%s %%%s, %%%s : index" dst
      (binop_name kind) lhs rhs
  | Cmpi { dst; kind; lhs; rhs } ->
    Format.fprintf ppf "%%%s = arith.cmpi %s, %%%s, %%%s : index" dst
      (cmp_name kind) lhs rhs
  | Select { dst; cond; if_true; if_false } ->
    Format.fprintf ppf "%%%s = arith.select %%%s, %%%s, %%%s : index" dst cond
      if_true if_false
  | Isqrt { dst; arg } ->
    Format.fprintf ppf "%%%s = lego.isqrt %%%s : index" dst arg
  | Load { dst; mem; idx } ->
    Format.fprintf ppf "%%%s = memref.load %%%s[%%%s] : memref<?xindex>" dst
      mem idx
  | Store { value; mem; idx } ->
    Format.fprintf ppf "memref.store %%%s, %%%s[%%%s] : memref<?xindex>" value
      mem idx
  | For { var; lb; ub; step; body } ->
    Format.fprintf ppf "scf.for %%%s = %%%s to %%%s step %%%s { %a }" var lb ub
      step
      (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_op)
      body
  | Return names ->
    Format.fprintf ppf "return %s"
      (String.concat ", " (List.map (fun n -> "%" ^ n) names))
