(** Interpreter for the MLIR subset: executes emitted index functions and
    [scf.for] copy loops so the MLIR backend can be validated end-to-end
    against the layout algebra (the role the MLIR toolchain plays in the
    paper's section 6.3). *)

type value = Int of int | Mem of int array

exception Runtime_error of string

val run_func : Mast.modul -> string -> value list -> int list
(** [run_func m name args] executes function [name]; [Mem] arguments are
    mutated in place (that is how copy kernels return their result).
    Returns the [return] operands.  Raises {!Runtime_error} on missing
    functions, arity mismatches, unbound names or out-of-bounds memory
    accesses, and [Division_by_zero] as the arithmetic does. *)
