(** Parser for the emitted MLIR subset (see {!Mast}).

    Line-oriented recursive-descent: enough to round-trip everything
    {!Lego_codegen.Mlir_gen} produces, with positioned error messages. *)

exception Parse_error of int * string
(** Line number (1-based) and description. *)

val parse_module : string -> Mast.modul
(** Raises {!Parse_error}. *)

val parse_module_result : string -> (Mast.modul, string) result
