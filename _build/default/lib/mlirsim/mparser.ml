exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let strip s = String.trim s

(* "%name" -> "name" *)
let ssa line s =
  let s = strip s in
  if String.length s > 1 && s.[0] = '%' then String.sub s 1 (String.length s - 1)
  else fail line (Printf.sprintf "expected an SSA name, got %S" s)

let split_commas s = List.map strip (String.split_on_char ',' s)

(* Split "lhs : type" and return lhs. *)
let drop_type line s =
  match String.index_opt s ':' with
  | Some k -> strip (String.sub s 0 k)
  | None -> fail line (Printf.sprintf "missing type annotation in %S" s)

let re_func =
  Str.regexp
    {|func\.func @\([A-Za-z0-9_]+\)(\([^)]*\))\( -> .*\)? {|}

let re_assign = Str.regexp {|\(%[A-Za-z0-9_]+\) = \(.*\)|}

let re_for =
  Str.regexp
    {|scf\.for \(%[A-Za-z0-9_]+\) = \(%[A-Za-z0-9_]+\) to \(%[A-Za-z0-9_]+\) step \(%[A-Za-z0-9_]+\) {|}

let re_load = Str.regexp {|memref\.load \(%[A-Za-z0-9_]+\)\[\(%[A-Za-z0-9_]+\)\]|}

let re_store =
  Str.regexp
    {|memref\.store \(%[A-Za-z0-9_]+\), \(%[A-Za-z0-9_]+\)\[\(%[A-Za-z0-9_]+\)\]|}

let parse_param line p =
  match String.split_on_char ':' p with
  | [ name; ty ] ->
    let name = ssa line name in
    let ty = strip ty in
    if ty = "index" then (name, Mast.Index)
    else if String.length ty >= 6 && String.sub ty 0 6 = "memref" then
      (name, Mast.Memref)
    else fail line (Printf.sprintf "unsupported parameter type %S" ty)
  | _ -> fail line (Printf.sprintf "malformed parameter %S" p)

(* Parse the right-hand side of an assignment. *)
let parse_rhs line dst rhs : Mast.op =
  let binop kind rest =
    match split_commas (drop_type line rest) with
    | [ a; b ] -> Mast.Binop { dst; kind; lhs = ssa line a; rhs = ssa line b }
    | _ -> fail line "binary op expects two operands"
  in
  let word, rest =
    match String.index_opt rhs ' ' with
    | Some k ->
      ( String.sub rhs 0 k,
        strip (String.sub rhs (k + 1) (String.length rhs - k - 1)) )
    | None -> (rhs, "")
  in
  match word with
  | "arith.constant" -> (
    match int_of_string_opt (drop_type line rest) with
    | Some value -> Mast.Constant { dst; value }
    | None -> fail line (Printf.sprintf "bad constant %S" rest))
  | "arith.addi" -> binop Mast.Add rest
  | "arith.muli" -> binop Mast.Mul rest
  | "arith.floordivsi" -> binop Mast.FloorDiv rest
  | "arith.remsi" -> binop Mast.Rem rest
  | "arith.cmpi" -> (
    match split_commas (drop_type line rest) with
    | [ pred; a; b ] ->
      let kind =
        match pred with
        | "sle" -> Mast.Le
        | "slt" -> Mast.Lt
        | "eq" -> Mast.Eq
        | p -> fail line (Printf.sprintf "unsupported cmpi predicate %S" p)
      in
      Mast.Cmpi { dst; kind; lhs = ssa line a; rhs = ssa line b }
    | _ -> fail line "cmpi expects predicate and two operands")
  | "arith.select" -> (
    match split_commas (drop_type line rest) with
    | [ c; a; b ] ->
      Mast.Select
        { dst; cond = ssa line c; if_true = ssa line a; if_false = ssa line b }
    | _ -> fail line "select expects three operands")
  | "lego.isqrt" -> Mast.Isqrt { dst; arg = ssa line (drop_type line rest) }
  | "memref.load" ->
    if Str.string_match re_load rhs 0 then
      Mast.Load
        {
          dst;
          mem = ssa line (Str.matched_group 1 rhs);
          idx = ssa line (Str.matched_group 2 rhs);
        }
    else fail line (Printf.sprintf "malformed load %S" rhs)
  | other -> fail line (Printf.sprintf "unsupported operation %S" other)

let parse_module text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n = Array.length lines in
  let pos = ref 0 in
  let peek () = if !pos < n then Some (strip lines.(!pos)) else None in
  (* Line number of the most recently consumed line. *)
  let cur_line = ref 0 in
  let lineno () = !cur_line in
  let next () =
    let l = peek () in
    cur_line := !pos + 1;
    incr pos;
    l
  in
  (* Parse ops until a lone "}" closes the current region. *)
  let rec parse_ops acc =
    match next () with
    | None -> fail (lineno ()) "unexpected end of input inside a region"
    | Some "" -> parse_ops acc
    | Some "}" -> List.rev acc
    | Some line when Str.string_match re_for line 0 ->
      let var = ssa (lineno ()) (Str.matched_group 1 line) in
      let lb = ssa (lineno ()) (Str.matched_group 2 line) in
      let ub = ssa (lineno ()) (Str.matched_group 3 line) in
      let step = ssa (lineno ()) (Str.matched_group 4 line) in
      let body = parse_ops [] in
      parse_ops (Mast.For { var; lb; ub; step; body } :: acc)
    | Some line when Str.string_match re_store line 0 ->
      let value = ssa (lineno ()) (Str.matched_group 1 line) in
      let mem = ssa (lineno ()) (Str.matched_group 2 line) in
      let idx = ssa (lineno ()) (Str.matched_group 3 line) in
      parse_ops (Mast.Store { value; mem; idx } :: acc)
    | Some line when String.length line >= 6 && String.sub line 0 6 = "return"
      ->
      let rest = strip (String.sub line 6 (String.length line - 6)) in
      let names =
        if rest = "" then []
        else
          let operands =
            match String.index_opt rest ':' with
            | Some k -> String.sub rest 0 k
            | None -> rest
          in
          List.map (ssa (lineno ())) (split_commas operands)
      in
      parse_ops (Mast.Return names :: acc)
    | Some line when Str.string_match re_assign line 0 ->
      let dst = ssa (lineno ()) (Str.matched_group 1 line) in
      let rhs = strip (Str.matched_group 2 line) in
      parse_ops (parse_rhs (lineno ()) dst rhs :: acc)
    | Some line -> fail (lineno ()) (Printf.sprintf "cannot parse %S" line)
  in
  let rec parse_funcs acc =
    match next () with
    | None -> List.rev acc
    | Some "" -> parse_funcs acc
    | Some "module {" -> parse_funcs acc
    | Some "}" -> parse_funcs acc
    | Some line when Str.string_match re_func line 0 ->
      let fname = Str.matched_group 1 line in
      let params_text = Str.matched_group 2 line in
      let params =
        if strip params_text = "" then []
        else List.map (parse_param (lineno ())) (split_commas params_text)
      in
      let body = parse_ops [] in
      parse_funcs ({ Mast.fname; params; body } :: acc)
    | Some line -> fail (lineno ()) (Printf.sprintf "cannot parse %S" line)
  in
  parse_funcs []

let parse_module_result text =
  match parse_module text with
  | m -> Ok m
  | exception Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)
