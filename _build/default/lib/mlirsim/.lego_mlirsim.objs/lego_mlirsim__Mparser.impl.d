lib/mlirsim/mparser.ml: Array List Mast Printf Str String
