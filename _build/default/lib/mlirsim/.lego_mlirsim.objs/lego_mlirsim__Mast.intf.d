lib/mlirsim/mast.mli: Format
