lib/mlirsim/mast.ml: Format List String
