lib/mlirsim/mparser.mli: Mast
