lib/mlirsim/minterp.mli: Mast
