lib/mlirsim/minterp.ml: Array Bool Hashtbl Lego_layout List Mast Printf
