let check_image ~what ~numel ~apply ~inv =
  let seen = Array.make numel false in
  let result = ref (Ok ()) in
  (try
     for k = 0 to numel - 1 do
       let physical = apply k in
       if physical < 0 || physical >= numel then begin
         result :=
           Error
             (Printf.sprintf "%s: logical %d maps to %d, outside 0..%d" what k
                physical (numel - 1));
         raise Exit
       end;
       if seen.(physical) then begin
         result :=
           Error
             (Printf.sprintf "%s: physical offset %d hit twice (at logical %d)"
                what physical k);
         raise Exit
       end;
       seen.(physical) <- true;
       let back = inv physical in
       if back <> k then begin
         result :=
           Error
             (Printf.sprintf "%s: inv (apply %d) = %d, expected identity" what
                k back);
         raise Exit
       end
     done
   with Exit -> ());
  !result

let piece p =
  let dims = Piece.dims p in
  check_image
    ~what:(Format.asprintf "%a" Piece.pp p)
    ~numel:(Piece.numel p)
    ~apply:(fun k -> Piece.apply_ints p (Shape.unflatten_ints dims k))
    ~inv:(fun physical -> Shape.flatten_ints dims (Piece.inv_ints p physical))

let layout g =
  let dims = Group_by.dims g in
  check_image
    ~what:(Format.asprintf "%a" Group_by.pp g)
    ~numel:(Group_by.numel g)
    ~apply:(fun k -> Group_by.apply_ints g (Shape.unflatten_ints dims k))
    ~inv:(fun physical -> Shape.flatten_ints dims (Group_by.inv_ints g physical))

let table g =
  let dims = Group_by.dims g in
  Array.init (Group_by.numel g) (fun k ->
      Group_by.apply_ints g (Shape.unflatten_ints dims k))

let physical_to_logical g =
  Array.init (Group_by.numel g) (fun physical ->
      Array.of_list (Group_by.inv_ints g physical))
