(** Dimension vectors and the canonical bijections [B] / [B^-1].

    A shape is the list of extents [n1; ...; nd] of a d-dimensional index
    space.  The canonical bijection [B] of the paper's equation (2) maps a
    multi-dimensional index to the flat row-major offset, and [B^-1] maps it
    back; they are the glue binding LEGO blocks together and never reorder
    elements in memory. *)

type t = int list

val validate : t -> unit
(** Ensure every extent is positive; raises [Invalid_argument] otherwise. *)

val numel : t -> int
(** Product of the extents (the size of the flat space). *)

val rank : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val flatten :
  (module Domain.S with type t = 'a) -> t -> 'a list -> 'a
(** [flatten (module D) dims idx] is the canonical bijection
    [B_dims idx = i1 * n2 * ... * nd + ... + i(d-1) * nd + id].
    Raises [Invalid_argument] when [idx] and [dims] disagree in length. *)

val unflatten :
  (module Domain.S with type t = 'a) -> t -> 'a -> 'a list
(** [unflatten (module D) dims flat] is [B^-1_dims flat]: peels components
    from the innermost dimension outwards using floor div/mod. *)

val flatten_ints : t -> int list -> int
(** {!flatten} specialised to the integer domain. *)

val unflatten_ints : t -> int -> int list
(** {!unflatten} specialised to the integer domain. *)

val indices : t -> int list Seq.t
(** All multi-dimensional indices of the shape in row-major order. *)
