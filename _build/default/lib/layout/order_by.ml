type t = Piece.t list

let make = function
  | [] -> invalid_arg "Order_by.make: at least one piece is required"
  | pieces -> pieces

let pieces t = t
let dims t = List.concat_map Piece.dims t
let numel t = List.fold_left (fun acc p -> acc * Piece.numel p) 1 t

(* Split [idx] into a prefix of length [n] and the remainder. *)
let split_at n idx =
  let rec go acc n rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> invalid_arg "Order_by: index too short for the tile hierarchy"
      | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n idx

let apply (type a) (module D : Domain.S with type t = a) t (idx : a list) : a =
  if List.length idx <> List.length (dims t) then
    invalid_arg "Order_by.apply: index rank does not match hierarchy rank";
  (* Outermost level first: i_flat <- piece(i_cur) + i_flat * numel(piece). *)
  let flat, rest =
    List.fold_left
      (fun (flat, rest) piece ->
        let cur, rest = split_at (Piece.rank piece) rest in
        let cur_flat = Piece.apply (module D) piece cur in
        (D.add cur_flat (D.mul flat (D.const (Piece.numel piece))), rest))
      (D.const 0, idx) t
  in
  assert (rest = []);
  flat

let inv (type a) (module D : Domain.S with type t = a) t (flat : a) : a list =
  (* Innermost level first: peel each level's flat component with div/mod. *)
  let idx, _flat =
    List.fold_left
      (fun (acc, flat) piece ->
        let p = Piece.numel piece in
        let cur_flat = D.rem flat (D.const p) in
        let flat = D.div flat (D.const p) in
        (Piece.inv (module D) piece cur_flat @ acc, flat))
      ([], flat) (List.rev t)
  in
  idx

let apply_ints t idx = apply (module Domain.Int) t idx
let inv_ints t flat = inv (module Domain.Int) t flat
let equal a b = List.equal Piece.equal a b

let pp ppf t =
  (* The paper's subscript is the shared per-tile dimensionality, when
     there is one. *)
  let suffix =
    match List.sort_uniq Int.compare (List.map Piece.rank t) with
    | [ d ] -> string_of_int d
    | _ -> ""
  in
  Format.fprintf ppf "OrderBy%s(%a)" suffix
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Piece.pp)
    t
