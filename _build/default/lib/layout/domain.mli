(** Index domains.

    The LEGO algebra is generic in the kind of value an index component is:
    evaluating a layout over machine integers yields concrete physical
    offsets, while evaluating it over symbolic expressions yields the index
    {e expressions} that the code generators print (the paper's SymPy
    path).  A domain packages the integer-arithmetic operations both
    interpretations share. *)

module type S = sig
  type t

  val const : int -> t
  (** [const n] embeds the literal [n]. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  val div : t -> t -> t
  (** Floor division.  Layout indices are non-negative, but the domain must
      still be total on negatives so that user-defined [GenP] bijections may
      compute intermediate negative values. *)

  val rem : t -> t -> t
  (** Remainder paired with {!div}: [add (mul (div a b) b) (rem a b) = a]. *)

  val le : t -> t -> t
  (** [le a b] is 1 when [a <= b], else 0 (booleans are 0/1 values so that
      user bijections stay expressible in every domain). *)

  val lt : t -> t -> t
  val eq : t -> t -> t

  val select : t -> t -> t -> t
  (** [select c a b] is [a] when [c] is non-zero and [b] otherwise. *)

  val isqrt : t -> t
  (** Integer square root (floor); used by e.g. the inverse anti-diagonal
      bijection of the paper's figure 8. *)

  val pp : Format.formatter -> t -> unit
end

module Int : S with type t = int
(** The concrete interpretation: machine integers with floor division. *)

val floor_div : int -> int -> int
(** Floor division on integers ([-7 / 2 = -4]), exposed for reuse. *)

val floor_rem : int -> int -> int
(** Remainder matching {!floor_div} (same sign as the divisor). *)

val int_isqrt : int -> int
(** [int_isqrt n] is the largest [r] with [r * r <= n]; raises
    [Invalid_argument] on negative input. *)
