(** The [OrderBy] block of figure 5: a hierarchy of permuted tiles.

    [OrderBy(p1, ..., pq)] reorders a flat index space whose logical view is
    the concatenation of the pieces' tile shapes, outermost level first.
    [apply] flattens level by level from the outside in, [inv] unflattens
    from the inside out (figure 6 of the paper). *)

type t

val make : Piece.t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val pieces : t -> Piece.t list

val dims : t -> Shape.t
(** Concatenation of the pieces' logical shapes (level-major). *)

val numel : t -> int

val apply : (module Domain.S with type t = 'a) -> t -> 'a list -> 'a
val inv : (module Domain.S with type t = 'a) -> t -> 'a -> 'a list
val apply_ints : t -> int list -> int
val inv_ints : t -> int -> int list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
