let row dims = Piece.reg ~dims ~sigma:(Sigma.identity (Shape.rank dims))
let col dims = Piece.reg ~dims ~sigma:(Sigma.reversal (Shape.rank dims))

let interleave ~d ~q =
  if d <= 0 || q <= 0 then invalid_arg "Sugar.interleave: d and q positive";
  (* Level-major position h*d + k holds dimension-major position k*q + h
     (0-based): physical (dimension-major) position p = k*q + h reads
     logical (level-major) position h*d + k. *)
  Sigma.of_list
    (List.init (d * q) (fun p ->
         let k = p / q and h = p mod q in
         (h * d) + k))

let same_rank name shapes =
  match shapes with
  | [] -> invalid_arg (name ^ ": at least one level is required")
  | s0 :: rest ->
    let d = Shape.rank s0 in
    List.iter
      (fun s ->
        if Shape.rank s <> d then
          invalid_arg (name ^ ": all levels must share a dimensionality"))
      rest;
    d

let full_dims shapes =
  let d = same_rank "Sugar.full_dims" shapes in
  List.init d (fun k ->
      List.fold_left (fun acc s -> acc * List.nth s k) 1 shapes)

let tile_by shapes =
  let d = same_rank "Sugar.tile_by" shapes in
  let q = List.length shapes in
  Order_by.make
    [ Piece.reg ~dims:(List.concat shapes) ~sigma:(interleave ~d ~q) ]

let tile_order_by pieces =
  match pieces with
  | [] -> invalid_arg "Sugar.tile_order_by: at least one piece is required"
  | _ ->
    let shapes = List.map Piece.dims pieces in
    let d = same_rank "Sugar.tile_order_by" shapes in
    let q = List.length pieces in
    let sigma = interleave ~d ~q in
    (* The inner RegP views the flat space dimension-major and reorders it
       level-major; the outer OrderBy then permutes each level. *)
    let dim_major_dims = Sigma.permute sigma (List.concat shapes) in
    [
      Order_by.make pieces;
      Order_by.make [ Piece.reg ~dims:dim_major_dims ~sigma:(Sigma.inverse sigma) ];
    ]

let ceil_div a b =
  if b <= 0 then invalid_arg "Sugar.ceil_div: non-positive divisor";
  (a + b - 1) / b

let tiled_view ?order ~group () =
  let tiling = tile_by group in
  let order =
    match order with
    | Some pieces -> pieces
    | None -> [ row (full_dims group) ]
  in
  Group_by.make ~chain:(tile_order_by order @ [ tiling ]) group

let padded_tiled_view ?order ~dims ~tile () =
  if List.length dims <> List.length tile then
    invalid_arg "Sugar.padded_tiled_view: dims/tile rank mismatch";
  let outer = List.map2 ceil_div dims tile in
  (tiled_view ?order ~group:[ outer; tile ] (), dims)
