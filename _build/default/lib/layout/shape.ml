type t = int list

let validate dims =
  if dims = [] then invalid_arg "Shape.validate: empty shape";
  List.iter
    (fun n ->
      if n <= 0 then
        invalid_arg (Printf.sprintf "Shape.validate: non-positive extent %d" n))
    dims

let numel dims = List.fold_left ( * ) 1 dims
let rank = List.length
let equal (a : t) (b : t) = a = b

let pp ppf dims =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    dims

let flatten (type a) (module D : Domain.S with type t = a) dims (idx : a list)
    : a =
  if List.length dims <> List.length idx then
    invalid_arg "Shape.flatten: index rank does not match shape rank";
  match idx with
  | [] -> D.const 0
  | i0 :: rest ->
    (* Horner evaluation of B: ((i1 * n2 + i2) * n3 + i3) ... *)
    let rec go acc dims idx =
      match (dims, idx) with
      | [], [] -> acc
      | n :: dims, i :: idx -> go (D.add (D.mul acc (D.const n)) i) dims idx
      | _ -> assert false
    in
    go i0 (List.tl dims) rest

let unflatten (type a) (module D : Domain.S with type t = a) dims (flat : a) :
    a list =
  validate dims;
  (* Peel from the innermost dimension outwards; the outermost component
     keeps the undivided quotient, matching the paper's B^-1. *)
  let rec go acc rev_dims flat =
    match rev_dims with
    | [] -> assert false
    | [ _outermost ] -> flat :: acc
    | n :: rest ->
      go (D.rem flat (D.const n) :: acc) rest (D.div flat (D.const n))
  in
  go [] (List.rev dims) flat

let flatten_ints dims idx = flatten (module Domain.Int) dims idx
let unflatten_ints dims flat = unflatten (module Domain.Int) dims flat

let indices dims =
  validate dims;
  let total = numel dims in
  Seq.map (fun flat -> unflatten_ints dims flat) (Seq.init total Fun.id)
