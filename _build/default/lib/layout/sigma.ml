type t = int array

let check_permutation a =
  let d = Array.length a in
  if d = 0 then invalid_arg "Sigma.of_list: empty permutation";
  let seen = Array.make d false in
  Array.iter
    (fun p ->
      if p < 0 || p >= d then
        invalid_arg
          (Printf.sprintf "Sigma.of_list: entry %d out of range 0..%d" p (d - 1));
      if seen.(p) then
        invalid_arg (Printf.sprintf "Sigma.of_list: duplicate entry %d" p);
      seen.(p) <- true)
    a

let of_list l =
  let a = Array.of_list l in
  check_permutation a;
  a

let of_one_based l = of_list (List.map pred l)
let to_list s = Array.to_list s
let to_one_based s = List.map succ (to_list s)
let identity d = Array.init d Fun.id
let reversal d = Array.init d (fun k -> d - 1 - k)
let rank = Array.length
let equal (a : t) (b : t) = a = b
let is_identity s = Array.for_all2 ( = ) s (identity (rank s))

let inverse s =
  let inv = Array.make (rank s) 0 in
  Array.iteri (fun k p -> inv.(p) <- k) s;
  inv

let compose s2 s1 =
  if rank s1 <> rank s2 then invalid_arg "Sigma.compose: rank mismatch";
  (* permute (compose s2 s1) xs = permute s2 (permute s1 xs):
     position k of the result reads s1.(s2.(k)) of the original. *)
  Array.map (fun p -> s1.(p)) s2

let permute s xs =
  let a = Array.of_list xs in
  if Array.length a <> rank s then invalid_arg "Sigma.permute: rank mismatch";
  Array.to_list (Array.map (fun p -> a.(p)) s)

let apply s k =
  if k < 0 || k >= rank s then invalid_arg "Sigma.apply: out of range";
  s.(k)

let pp ppf s =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (to_one_based s)

let all d =
  let rec perms = function
    | [] -> [ [] ]
    | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (perms rest))
        xs
  in
  List.map of_list (perms (List.init d Fun.id))
