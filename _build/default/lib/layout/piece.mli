(** LEGO's basic pieces: the [Perm] syntactic category of figure 5.

    A piece is a bijection between the logical index space of one tile and
    its canonical flat space.  [RegP] permutes whole dimensions by a static
    permutation; [GenP] is an arbitrary user-defined bijection written once
    against {!Domain.S} so that it evaluates both on concrete integers and
    on symbolic expressions. *)

type gen_bij = {
  gb_apply : 'a. (module Domain.S with type t = 'a) -> 'a list -> 'a;
      (** Logical multi-index to flat physical offset. *)
  gb_inv : 'a. (module Domain.S with type t = 'a) -> 'a -> 'a list;
      (** Flat physical offset back to the logical multi-index. *)
}

type t =
  | Gen of { dims : Shape.t; name : string; bij : gen_bij }
      (** [GenP]: [name] identifies the bijection for printing, parsing and
          structural comparison (functions are not comparable). *)
  | Reg of { dims : Shape.t; sigma : Sigma.t }  (** [RegP]. *)

val gen : name:string -> dims:Shape.t -> gen_bij -> t
(** Smart constructor; validates [dims]. *)

val reg : dims:Shape.t -> sigma:Sigma.t -> t
(** Smart constructor; validates [dims] and that the permutation rank
    matches the shape rank. *)

val dims : t -> Shape.t
val rank : t -> int
val numel : t -> int

val apply : (module Domain.S with type t = 'a) -> t -> 'a list -> 'a
(** The paper's [Perm::apply].  For [Reg]:
    [apply i = B_(sigma dims) (sigma i)]. *)

val inv : (module Domain.S with type t = 'a) -> t -> 'a -> 'a list
(** The paper's [Perm::inv].  For [Reg]:
    [inv flat = sigma^-1 (B^-1_(sigma dims) flat)]. *)

val apply_ints : t -> int list -> int
val inv_ints : t -> int -> int list

val equal : t -> t -> bool
(** Structural equality; [Gen] pieces compare by [name] and [dims]. *)

val pp : Format.formatter -> t -> unit
