(** Static permutations of dimension positions.

    A [Sigma.t] is the statically-known permutation used by [RegP]: if the
    logical shape of a tile is [n1 x ... x nd] then the physical shape is
    [n_sigma(1) x ... x n_sigma(d)].  Internally 0-based; the textual
    notation (and {!of_one_based}) is 1-based to match the paper. *)

type t

val of_list : int list -> t
(** [of_list [p0; ...; p(d-1)]] builds the permutation mapping physical
    position [k] to logical position [pk] (0-based).  Raises
    [Invalid_argument] if the list is not a permutation of [0..d-1]. *)

val of_one_based : int list -> t
(** The paper's notation: [of_one_based [2; 1]] swaps two dimensions. *)

val to_list : t -> int list
val to_one_based : t -> int list

val identity : int -> t
val reversal : int -> t
(** [reversal d] is [[d; ...; 1]] in paper notation — column-major order. *)

val rank : t -> int
val equal : t -> t -> bool
val is_identity : t -> bool

val inverse : t -> t
(** Obtained by scattering [0..d-1] at the positions of sigma. *)

val compose : t -> t -> t
(** [compose s2 s1] applies [s1] first: [permute (compose s2 s1) xs =
    permute s2 (permute s1 xs)]. *)

val permute : t -> 'a list -> 'a list
(** [permute s xs] is the list [ys] with [ys_k = xs_(s k)] — the paper's
    [sigma(x)] applied to dimensions or index components. *)

val apply : t -> int -> int
(** [apply s k] is the logical position stored at physical position [k]. *)

val pp : Format.formatter -> t -> unit
(** Prints in 1-based paper notation, e.g. [[2, 1]]. *)

val all : int -> t list
(** Every permutation of rank [d] (use only for small [d], e.g. tests). *)
