type gen_bij = {
  gb_apply : 'a. (module Domain.S with type t = 'a) -> 'a list -> 'a;
  gb_inv : 'a. (module Domain.S with type t = 'a) -> 'a -> 'a list;
}

type t =
  | Gen of { dims : Shape.t; name : string; bij : gen_bij }
  | Reg of { dims : Shape.t; sigma : Sigma.t }

let gen ~name ~dims bij =
  Shape.validate dims;
  Gen { dims; name; bij }

let reg ~dims ~sigma =
  Shape.validate dims;
  if Sigma.rank sigma <> Shape.rank dims then
    invalid_arg "Piece.reg: permutation rank does not match shape rank";
  Reg { dims; sigma }

let dims = function Gen { dims; _ } | Reg { dims; _ } -> dims
let rank p = Shape.rank (dims p)
let numel p = Shape.numel (dims p)

let apply (type a) (module D : Domain.S with type t = a) piece (idx : a list) :
    a =
  if List.length idx <> rank piece then
    invalid_arg "Piece.apply: index rank does not match piece rank";
  match piece with
  | Gen { bij; _ } -> bij.gb_apply (module D) idx
  | Reg { dims; sigma } ->
    Shape.flatten (module D) (Sigma.permute sigma dims) (Sigma.permute sigma idx)

let inv (type a) (module D : Domain.S with type t = a) piece (flat : a) :
    a list =
  match piece with
  | Gen { bij; _ } -> bij.gb_inv (module D) flat
  | Reg { dims; sigma } ->
    let physical = Shape.unflatten (module D) (Sigma.permute sigma dims) flat in
    Sigma.permute (Sigma.inverse sigma) physical

let apply_ints piece idx = apply (module Domain.Int) piece idx
let inv_ints piece flat = inv (module Domain.Int) piece flat

let equal a b =
  match (a, b) with
  | Gen { dims = d1; name = n1; _ }, Gen { dims = d2; name = n2; _ } ->
    Shape.equal d1 d2 && String.equal n1 n2
  | Reg { dims = d1; sigma = s1 }, Reg { dims = d2; sigma = s2 } ->
    Shape.equal d1 d2 && Sigma.equal s1 s2
  | Gen _, Reg _ | Reg _, Gen _ -> false

let pp ppf = function
  | Gen { dims; name; _ } ->
    Format.fprintf ppf "GenP(%s%a)" name Shape.pp dims
  | Reg { dims; sigma } ->
    Format.fprintf ppf "RegP(%a, %a)" Shape.pp dims Sigma.pp sigma
