(** The [GroupBy] block of figure 5: a logical view plus a chain of
    reorderings.

    [GroupBy(shapes, [O1; ...; Ov])] gives the user a logical
    multi-dimensional view of a flat index space of [N] elements and
    composes the reordering transformations right-to-left: [apply] first
    flattens the logical index canonically, then (figure 7) traverses the
    chain in {e reverse} order, re-viewing the running flat index in each
    [OrderBy]'s logical space before applying it.  In the paper's dotted
    notation [O1.O2.GroupBy(shape)], the chain is [[O1; O2]] and [O2] acts
    first. *)

type t

val make : ?chain:Order_by.t list -> Shape.t list -> t
(** [make ~chain shapes] builds a grouping with hierarchy levels [shapes]
    (each level one shape; a plain d-dimensional view is a single level).
    Raises [Invalid_argument] if any chained [OrderBy] covers a different
    number of elements than the grouping. *)

val shapes : t -> Shape.t list
val chain : t -> Order_by.t list

val dims : t -> Shape.t
(** Concatenated logical dimensions, outermost level first — the shape of
    the index [apply] expects. *)

val numel : t -> int
val rank : t -> int

val prepend : Order_by.t -> t -> t
(** [prepend o g] is the layout written [o . g] in dotted notation: [o]
    becomes the {e last} reordering applied on the way to physical space
    (the outermost element of the chain). *)

val apply : (module Domain.S with type t = 'a) -> t -> 'a list -> 'a
val inv : (module Domain.S with type t = 'a) -> t -> 'a -> 'a list
val apply_ints : t -> int list -> int
val inv_ints : t -> int -> int list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
