(** Syntactic sugar of section 3.2 of the paper.

    [TileBy] and [TileOrderBy] manipulate a q-level hierarchy over d
    dimensions; the interleave permutation [sigma_{d x q}] converts between
    the {e level-major} order (level 1's d extents, then level 2's, ...)
    and the {e dimension-major} order (dimension 1's q extents outer to
    inner, then dimension 2's, ...). *)

val row : Shape.t -> Piece.t
(** [Row([n1; ...; nd])]: row-major order — [RegP] with the identity. *)

val col : Shape.t -> Piece.t
(** [Col([n1; ...; nd])]: column-major order — [RegP] with the reversal
    permutation.  (The paper's literal definition also reverses the
    argument list; see DESIGN.md section 4 for why this convention
    reproduces the paper's own examples.) *)

val interleave : d:int -> q:int -> Sigma.t
(** [sigma_{d x q}]: maps level-major position [(h-1)*d + k] to
    dimension-major position [(k-1)*q + h] (1-based description, 0-based
    value).  E.g. [interleave ~d:2 ~q:3 = [1,3,5,2,4,6]] in paper
    notation. *)

val tile_by : Shape.t list -> Order_by.t
(** [TileBy([level1]; ...; [levelq])]: hierarchical tiling of [d]
    dimensions on [q] levels whose physical order is the canonical
    dimension-major strip-mining — flattening the logical tiled index
    yields the row-major offset of the untiled space. *)

val tile_order_by : Piece.t list -> Order_by.t list
(** [TileOrderBy(P1, ..., Pq)]: reorders the flat space whose
    dimension-major tiled view has level [h] of dimension [k] of extent
    [(Ph.dims)_k], applying each [Ph] to level [h].  Expands to the chain
    [OrderBy(P1, ..., Pq) . OrderBy(RegP(dim-major dims, interleave))]
    (two chain entries, listed outermost-first). *)

val tiled_view :
  ?order:Piece.t list -> group:Shape.t list -> unit -> Group_by.t
(** [tiled_view ~order ~group ()] is the common pattern
    [TileOrderBy(order).TileBy(group)]: a [Group_by.t] whose logical view
    is the tiled hierarchy [group] (level-major) over a physical space
    reordered by [order] ([row (full dims)] when omitted — i.e. plain
    row-major).  This is the paper's
    [L(d).TileOrderBy(...).TileBy(...)] notation. *)

val full_dims : Shape.t list -> Shape.t
(** The untiled extents: dimension [k]'s extent is the product over levels
    of level-shape component [k].  All level shapes must share a rank. *)

val ceil_div : int -> int -> int

val padded_tiled_view :
  ?order:Piece.t list ->
  dims:Shape.t ->
  tile:Shape.t ->
  unit ->
  Group_by.t * Shape.t
(** When tile sizes do not divide the extents, LEGO conceptually pads the
    dimensions (the CuTe oversampling approach the paper references in
    section 3.3) and the indices stay correct; accesses to the pad must
    then be masked.  [padded_tiled_view ~dims ~tile ()] rounds each
    extent up to a tile multiple and returns the two-level tiled view of
    the padded space together with the {e true} extents, from which
    {!Lego_codegen.Triton_printer.slice_mask} derives the masks. *)
