lib/layout/domain.ml: Format
