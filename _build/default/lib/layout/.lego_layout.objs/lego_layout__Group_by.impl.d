lib/layout/group_by.ml: Domain Format Int List Order_by Printf Shape
