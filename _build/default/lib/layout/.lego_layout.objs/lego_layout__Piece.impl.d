lib/layout/piece.ml: Domain Format List Shape Sigma String
