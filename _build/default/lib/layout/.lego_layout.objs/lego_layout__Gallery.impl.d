lib/layout/gallery.ml: Array Domain List Piece Printf Seq Shape
