lib/layout/sigma.mli: Format
