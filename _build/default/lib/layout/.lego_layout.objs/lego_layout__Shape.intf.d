lib/layout/shape.mli: Domain Format Seq
