lib/layout/piece.mli: Domain Format Shape Sigma
