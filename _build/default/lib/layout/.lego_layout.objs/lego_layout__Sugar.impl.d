lib/layout/sugar.ml: Group_by List Order_by Piece Shape Sigma
