lib/layout/check.mli: Group_by Piece
