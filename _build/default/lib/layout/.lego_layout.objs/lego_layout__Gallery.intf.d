lib/layout/gallery.mli: Piece Shape
