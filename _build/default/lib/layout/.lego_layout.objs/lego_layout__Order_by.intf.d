lib/layout/order_by.mli: Domain Format Piece Shape
