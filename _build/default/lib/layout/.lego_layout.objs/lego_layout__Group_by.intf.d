lib/layout/group_by.mli: Domain Format Order_by Shape
