lib/layout/shape.ml: Domain Format Fun List Printf Seq
