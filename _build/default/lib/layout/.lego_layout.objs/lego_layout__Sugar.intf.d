lib/layout/sugar.mli: Group_by Order_by Piece Shape Sigma
