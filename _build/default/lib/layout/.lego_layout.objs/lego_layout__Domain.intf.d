lib/layout/domain.mli: Format
