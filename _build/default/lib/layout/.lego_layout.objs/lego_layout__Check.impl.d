lib/layout/check.ml: Array Format Group_by Piece Printf Shape
