lib/layout/sigma.ml: Array Format Fun List Printf
