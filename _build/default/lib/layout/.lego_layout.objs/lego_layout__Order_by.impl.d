lib/layout/order_by.ml: Domain Format Int List Piece
