type t = { shapes : Shape.t list; chain : Order_by.t list }

let make ?(chain = []) shapes =
  if shapes = [] then invalid_arg "Group_by.make: empty level list";
  List.iter Shape.validate shapes;
  let n = List.fold_left (fun acc s -> acc * Shape.numel s) 1 shapes in
  List.iter
    (fun o ->
      if Order_by.numel o <> n then
        invalid_arg
          (Printf.sprintf
             "Group_by.make: OrderBy covers %d elements but the grouping has \
              %d"
             (Order_by.numel o) n))
    chain;
  { shapes; chain }

let shapes t = t.shapes
let chain t = t.chain
let dims t = List.concat t.shapes
let numel t = Shape.numel (dims t)
let rank t = List.length (dims t)
let prepend o t = make ~chain:(o :: t.chain) t.shapes

let apply (type a) (module D : Domain.S with type t = a) t (idx : a list) : a =
  if List.length idx <> rank t then
    invalid_arg "Group_by.apply: index rank does not match grouping rank";
  let flat = Shape.flatten (module D) (dims t) idx in
  List.fold_left
    (fun flat o ->
      let logical = Shape.unflatten (module D) (Order_by.dims o) flat in
      Order_by.apply (module D) o logical)
    flat (List.rev t.chain)

let inv (type a) (module D : Domain.S with type t = a) t (flat : a) : a list =
  let flat =
    List.fold_left
      (fun flat o ->
        let logical = Order_by.inv (module D) o flat in
        Shape.flatten (module D) (Order_by.dims o) logical)
      flat t.chain
  in
  Shape.unflatten (module D) (dims t) flat

let apply_ints t idx = apply (module Domain.Int) t idx
let inv_ints t flat = inv (module Domain.Int) t flat

let equal a b =
  List.equal Shape.equal a.shapes b.shapes
  && List.equal Order_by.equal a.chain b.chain

let pp ppf t =
  List.iter (fun o -> Format.fprintf ppf "%a." Order_by.pp o) t.chain;
  let suffix =
    match List.sort_uniq Int.compare (List.map Shape.rank t.shapes) with
    | [ d ] -> string_of_int d
    | _ -> ""
  in
  Format.fprintf ppf "GroupBy%s(%a)" suffix
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Shape.pp)
    t.shapes
