module type S = sig
  type t

  val const : int -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val rem : t -> t -> t
  val le : t -> t -> t
  val lt : t -> t -> t
  val eq : t -> t -> t
  val select : t -> t -> t -> t
  val isqrt : t -> t
  val pp : Format.formatter -> t -> unit
end

let floor_div a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let floor_rem a b =
  let r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then r + b else r

let int_isqrt n =
  if n < 0 then invalid_arg "Domain.int_isqrt: negative argument";
  if n < 2 then n
  else begin
    (* Newton iteration seeded from the float sqrt, then corrected; exact
       for every non-negative [int]. *)
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r * !r > n do
      decr r
    done;
    while (!r + 1) * (!r + 1) <= n do
      incr r
    done;
    !r
  end

module Int = struct
  type t = int

  let const n = n
  let add = ( + )
  let sub = ( - )
  let mul = ( * )
  let div = floor_div
  let rem = floor_rem
  let le a b = if a <= b then 1 else 0
  let lt a b = if a < b then 1 else 0
  let eq a b = if a = b then 1 else 0
  let select c a b = if c <> 0 then a else b
  let isqrt = int_isqrt
  let pp = Format.pp_print_int
end
