type t = {
  name : string;
  num_sms : int;
  warp_size : int;
  clock_ghz : float;
  dram_bw_gbps : float;
  smem_banks : int;
  smem_bank_bytes : int;
  global_txn_bytes : int;
  fp32_tflops : float;
  fp16_tflops : float;
  tensor_fp16_tflops : float;
  tensor_fp8_tflops : float;
  issue_per_sm_per_cycle : int;
  kernel_launch_us : float;
  max_threads_per_block : int;
}

let a100 =
  {
    name = "A100-80GB (simulated)";
    num_sms = 108;
    warp_size = 32;
    clock_ghz = 1.41;
    dram_bw_gbps = 1935.0;
    smem_banks = 32;
    smem_bank_bytes = 4;
    global_txn_bytes = 32;
    fp32_tflops = 19.5;
    fp16_tflops = 78.0;
    tensor_fp16_tflops = 312.0;
    tensor_fp8_tflops = 624.0;
    issue_per_sm_per_cycle = 4;
    kernel_launch_us = 3.0;
    max_threads_per_block = 1024;
  }

let scale d f =
  {
    d with
    dram_bw_gbps = d.dram_bw_gbps *. f;
    fp32_tflops = d.fp32_tflops *. f;
    fp16_tflops = d.fp16_tflops *. f;
    tensor_fp16_tflops = d.tensor_fp16_tflops *. f;
    tensor_fp8_tflops = d.tensor_fp8_tflops *. f;
  }
