(** Roofline time model turning simulator counters into kernel times.

    A kernel's time is the launch overhead plus the maximum of its
    compute-, memory-, shared-memory- and issue-limited times — the
    standard roofline approximation.  Small grids scale throughput by SM
    occupancy, which is what makes per-GEMM launches lose to grouped
    launches in the paper's figure 12c. *)

type breakdown = {
  launch_s : float;
  compute_s : float;
  dram_s : float;
  smem_s : float;
  issue_s : float;
  total_s : float;
}

val breakdown : Simt.report -> breakdown

val time_s : Simt.report -> float
(** [breakdown.total_s]. *)

val sum_times_s : Simt.report list -> float
(** Serialized launches: the sum of per-launch times. *)

val gflops : useful_flops:float -> float -> float
(** [gflops ~useful_flops time_s]: throughput in GFLOP/s based on the
    algorithmic (not simulated) operation count, as the paper plots. *)

val gbps : useful_bytes:float -> float -> float

val pp_breakdown : Format.formatter -> breakdown -> unit
