lib/gpusim/metrics.ml: Device Float Format List Simt
