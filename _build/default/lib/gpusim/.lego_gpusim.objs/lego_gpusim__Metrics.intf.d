lib/gpusim/metrics.mli: Format Simt
