lib/gpusim/device.ml:
