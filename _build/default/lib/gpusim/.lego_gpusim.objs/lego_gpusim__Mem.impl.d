lib/gpusim/mem.ml: Array Float Fun Random
