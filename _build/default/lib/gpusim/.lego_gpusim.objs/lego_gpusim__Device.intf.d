lib/gpusim/device.mli:
