lib/gpusim/simt.mli: Device Mem
