lib/gpusim/simt.ml: Array Device Effect Fun Hashtbl Int List Mem Option Printf Set
