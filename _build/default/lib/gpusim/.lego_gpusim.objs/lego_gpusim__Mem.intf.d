lib/gpusim/mem.mli:
