type stats = { mutable queries : int; mutable proved : int }

let stats () = { queries = 0; proved = 0 }
let global_stats = stats ()

let record ok =
  global_stats.queries <- global_stats.queries + 1;
  if ok then global_stats.proved <- global_stats.proved + 1;
  ok

let nonneg env e =
  let r = Range.of_expr env e in
  record (r.Range.lo >= 0)

let positive env e =
  let r = Range.of_expr env e in
  record (r.Range.lo > 0)

let nonzero env e =
  let r = Range.of_expr env e in
  record (r.Range.lo > 0 || r.Range.hi < 0)

let le env a b = nonneg env (Expr.sub b a)
let lt env a b = nonneg env (Expr.sub b (Expr.add a Expr.one))
let in_half_open env x a = nonneg env x && lt env x a
