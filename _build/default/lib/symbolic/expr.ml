type t =
  | Const of int
  | Var of string
  | Add of t list
  | Mul of t list
  | Div of t * t
  | Mod of t * t
  | Select of t * t * t
  | Le of t * t
  | Lt of t * t
  | Eq of t * t
  | Isqrt of t

let tag = function
  | Const _ -> 0
  | Var _ -> 1
  | Add _ -> 2
  | Mul _ -> 3
  | Div _ -> 4
  | Mod _ -> 5
  | Select _ -> 6
  | Le _ -> 7
  | Lt _ -> 8
  | Eq _ -> 9
  | Isqrt _ -> 10

let rec compare a b =
  match (a, b) with
  | Const x, Const y -> Int.compare x y
  | Var x, Var y -> String.compare x y
  | Add xs, Add ys | Mul xs, Mul ys -> List.compare compare xs ys
  | Div (x1, x2), Div (y1, y2) | Mod (x1, x2), Mod (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | Le (x1, x2), Le (y1, y2)
  | Lt (x1, x2), Lt (y1, y2)
  | Eq (x1, x2), Eq (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2
  | Select (x1, x2, x3), Select (y1, y2, y3) ->
    let c = compare x1 y1 in
    if c <> 0 then c
    else
      let c = compare x2 y2 in
      if c <> 0 then c else compare x3 y3
  | Isqrt x, Isqrt y -> compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0
let const n = Const n
let var name = Var name
let zero = Const 0
let one = Const 1

(* (coefficient, non-constant factors) view of a product. *)
let as_linear_term = function
  | Const n -> (n, [])
  | Mul (Const n :: rest) -> (n, rest)
  | Mul factors -> (1, factors)
  | e -> (1, [ e ])

let of_linear_term (coeff, factors) =
  match (coeff, factors) with
  | 0, _ -> Const 0
  | n, [] -> Const n
  | 1, [ f ] -> f
  | 1, fs -> Mul fs
  | n, fs -> Mul (Const n :: fs)

let sum terms =
  (* Flatten, fold constants, collect like terms, order canonically. *)
  let flat =
    List.concat_map (function Add xs -> xs | e -> [ e ]) terms
  in
  let constant = ref 0 in
  let module M = Map.Make (struct
    type nonrec t = t list

    let compare = List.compare compare
  end) in
  let by_factors =
    List.fold_left
      (fun acc e ->
        let coeff, factors = as_linear_term e in
        if factors = [] then begin
          constant := !constant + coeff;
          acc
        end
        else
          M.update factors
            (function None -> Some coeff | Some c -> Some (c + coeff))
            acc)
      M.empty flat
  in
  let monomials =
    M.fold
      (fun factors coeff acc ->
        if coeff = 0 then acc else of_linear_term (coeff, factors) :: acc)
      by_factors []
  in
  let monomials = List.sort compare monomials in
  let with_const =
    if !constant = 0 && monomials <> [] then monomials
    else Const !constant :: monomials
  in
  match with_const with [] -> Const 0 | [ e ] -> e | es -> Add es

let scale_term c t =
  let coeff, factors = as_linear_term t in
  of_linear_term (c * coeff, factors)

let sum_distributed c terms = sum (List.map (scale_term c) terms)

let product factors =
  let flat =
    List.concat_map (function Mul xs -> xs | e -> [ e ]) factors
  in
  let constant = ref 1 in
  let rest =
    List.filter
      (function
        | Const n ->
          constant := !constant * n;
          false
        | _ -> true)
      flat
  in
  if !constant = 0 then Const 0
  else
    match rest with
    | [ Add terms ] ->
      (* Distribute a constant over a lone sum so that differences of
         equal sums cancel in the Add normal form (the prover depends on
         this). *)
      let c = !constant in
      sum_distributed c terms
    | _ ->
      let rest = List.sort compare rest in
      let with_const = if !constant = 1 && rest <> [] then rest
        else Const !constant :: rest
      in
      (match with_const with [] -> Const 1 | [ e ] -> e | es -> Mul es)

let add a b = sum [ a; b ]
let mul a b = product [ a; b ]
let neg a = mul (Const (-1)) a
let sub a b = add a (neg b)

let div a b =
  match (a, b) with
  | _, Const 1 -> a
  | Const x, Const y when y <> 0 -> Const (Lego_layout.Domain.floor_div x y)
  | Const 0, _ -> Const 0
  | _ -> Div (a, b)

let md a b =
  match (a, b) with
  | _, Const 1 -> Const 0
  | Const x, Const y when y <> 0 -> Const (Lego_layout.Domain.floor_rem x y)
  | Const 0, _ -> Const 0
  | _ -> Mod (a, b)

let bool_fold op a b mk =
  match (a, b) with
  | Const x, Const y -> Const (if op x y then 1 else 0)
  | _ when equal a b -> Const (if op 0 0 then 1 else 0)
  | _ -> mk (a, b)

let le a b = bool_fold ( <= ) a b (fun (a, b) -> Le (a, b))
let lt a b = bool_fold ( < ) a b (fun (a, b) -> Lt (a, b))
let eq a b = bool_fold ( = ) a b (fun (a, b) -> Eq (a, b))

let select c a b =
  match c with
  | Const 0 -> b
  | Const _ -> a
  | _ -> if equal a b then a else Select (c, a, b)

let isqrt = function
  | Const n when n >= 0 -> Const (Lego_layout.Domain.int_isqrt n)
  | e -> Isqrt e

let map_children f e =
  match e with
  | Const _ | Var _ -> e
  | Add xs -> sum (List.map f xs)
  | Mul xs -> product (List.map f xs)
  | Div (a, b) -> div (f a) (f b)
  | Mod (a, b) -> md (f a) (f b)
  | Select (c, a, b) -> select (f c) (f a) (f b)
  | Le (a, b) -> le (f a) (f b)
  | Lt (a, b) -> lt (f a) (f b)
  | Eq (a, b) -> eq (f a) (f b)
  | Isqrt a -> isqrt (f a)

let rec rebuild e = map_children rebuild e

let vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var v -> v :: acc
    | Add xs | Mul xs -> List.fold_left go acc xs
    | Div (a, b) | Mod (a, b) | Le (a, b) | Lt (a, b) | Eq (a, b) ->
      go (go acc a) b
    | Select (c, a, b) -> go (go (go acc c) a) b
    | Isqrt a -> go acc a
  in
  List.sort_uniq String.compare (go [] e)

let rec subst bindings e =
  match e with
  | Var v -> ( match List.assoc_opt v bindings with Some e' -> e' | None -> e)
  | Const _ -> e
  | _ -> map_children (subst bindings) e

let rec eval ~env e =
  match e with
  | Const n -> n
  | Var v -> env v
  | Add xs -> List.fold_left (fun acc x -> acc + eval ~env x) 0 xs
  | Mul xs -> List.fold_left (fun acc x -> acc * eval ~env x) 1 xs
  | Div (a, b) ->
    let d = eval ~env b in
    if d = 0 then raise Division_by_zero;
    Lego_layout.Domain.floor_div (eval ~env a) d
  | Mod (a, b) ->
    let d = eval ~env b in
    if d = 0 then raise Division_by_zero;
    Lego_layout.Domain.floor_rem (eval ~env a) d
  | Select (c, a, b) -> if eval ~env c <> 0 then eval ~env a else eval ~env b
  | Le (a, b) -> if eval ~env a <= eval ~env b then 1 else 0
  | Lt (a, b) -> if eval ~env a < eval ~env b then 1 else 0
  | Eq (a, b) -> if eval ~env a = eval ~env b then 1 else 0
  | Isqrt a -> Lego_layout.Domain.int_isqrt (eval ~env a)

let rec size = function
  | Const _ | Var _ -> 1
  | Add xs | Mul xs -> List.fold_left (fun acc x -> acc + size x) 1 xs
  | Div (a, b) | Mod (a, b) | Le (a, b) | Lt (a, b) | Eq (a, b) ->
    1 + size a + size b
  | Select (c, a, b) -> 1 + size c + size a + size b
  | Isqrt a -> 1 + size a

(* Pretty-printing with C-like precedence. *)
let rec pp_prec prec ppf e =
  let paren p body =
    if prec > p then Format.fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Const n ->
    if n < 0 then paren 10 (fun ppf -> Format.fprintf ppf "%d" n)
    else Format.fprintf ppf "%d" n
  | Var v -> Format.pp_print_string ppf v
  | Add xs ->
    paren 4 (fun ppf ->
        List.iteri
          (fun k x ->
            if k > 0 then
              match as_linear_term x with
              | c, factors when c < 0 ->
                Format.fprintf ppf " - %a" (pp_prec 5)
                  (of_linear_term (-c, factors))
              | _ -> Format.fprintf ppf " + %a" (pp_prec 5) x
            else pp_prec 5 ppf x)
          xs)
  | Mul xs ->
    paren 5 (fun ppf ->
        List.iteri
          (fun k x ->
            if k > 0 then Format.fprintf ppf "*%a" (pp_prec 6) x
            else pp_prec 6 ppf x)
          xs)
  | Div (a, b) ->
    paren 5 (fun ppf ->
        Format.fprintf ppf "%a / %a" (pp_prec 5) a (pp_prec 6) b)
  | Mod (a, b) ->
    paren 5 (fun ppf ->
        Format.fprintf ppf "%a %% %a" (pp_prec 5) a (pp_prec 6) b)
  | Select (c, a, b) ->
    paren 1 (fun ppf ->
        Format.fprintf ppf "%a ? %a : %a" (pp_prec 2) c (pp_prec 2) a
          (pp_prec 1) b)
  | Le (a, b) ->
    paren 3 (fun ppf ->
        Format.fprintf ppf "%a <= %a" (pp_prec 4) a (pp_prec 4) b)
  | Lt (a, b) ->
    paren 3 (fun ppf ->
        Format.fprintf ppf "%a < %a" (pp_prec 4) a (pp_prec 4) b)
  | Eq (a, b) ->
    paren 3 (fun ppf ->
        Format.fprintf ppf "%a == %a" (pp_prec 4) a (pp_prec 4) b)
  | Isqrt a -> Format.fprintf ppf "isqrt(%a)" (pp_prec 0) a

let pp ppf e = pp_prec 0 ppf e
let to_string e = Format.asprintf "%a" pp e
