(** The five integer division/modulo rewrite rules of the paper's Table 1,
    plus supporting structural rules, with side conditions discharged by
    {!Prover} over layout-derived ranges.

    | # | pattern                  | result    | condition      |
    |---|--------------------------|-----------|----------------|
    | 1 | [(d*q + r) mod d]        | [r mod d] | [d <> 0]       |
    | 2 | [a*(x/a) + x mod a]      | [x]       | [a <> 0]       |
    | 3 | [x / a]                  | [0]       | [0 <= x < a]   |
    | 4 | [x mod a]                | [x]       | [0 <= x < a]   |
    | 5 | [(d*q + r) / d]          | [q]       | [0 <= r < d]   |

    Rules 1 and 5 match constant [d] by splitting a sum into the terms
    whose coefficient [d] divides and the remainder.  When rule 5's bound
    on the remainder cannot be proved, the weaker—but unconditionally
    sound for [d > 0]—split [(d*q + r)/d -> q + r/d] is applied instead
    (counted under [extra]). *)

type stats = {
  mutable r1 : int;
  mutable r2 : int;
  mutable r3 : int;
  mutable r4 : int;
  mutable r5 : int;
  mutable extra : int;
}

val stats : unit -> stats
val total : stats -> int
val pp_stats : Format.formatter -> stats -> unit

val rewrite_once : ?stats:stats -> Range.env -> Expr.t -> Expr.t
(** One bottom-up pass applying every rule at every node. *)

val simplify : ?stats:stats -> env:Range.env -> Expr.t -> Expr.t
(** Iterate {!rewrite_once} to a fixpoint (bounded fuel). *)

val simplify_closed : Expr.t -> Expr.t
(** {!simplify} under the empty range environment. *)
