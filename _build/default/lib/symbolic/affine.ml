module L = Lego_layout

type t = { offset : int; dims : (int * int) list }

let linearize ~vars (e : Expr.t) =
  let exception Not_affine in
  let coeffs = Hashtbl.create 8 in
  let offset = ref 0 in
  let add_var v c =
    if not (List.mem v vars) then raise Not_affine;
    Hashtbl.replace coeffs v (c + Option.value ~default:0 (Hashtbl.find_opt coeffs v))
  in
  let add_term t =
    match Expr.as_linear_term t with
    | c, [] -> offset := !offset + c
    | c, [ Expr.Var v ] -> add_var v c
    | _ -> raise Not_affine
  in
  match
    (match e with
    | Expr.Add ts -> List.iter add_term ts
    | e -> add_term e)
  with
  | () ->
    Some (!offset, List.map (fun v -> (v, Option.value ~default:0 (Hashtbl.find_opt coeffs v))) vars)
  | exception Not_affine -> None

let of_layout g =
  let dims = L.Group_by.dims g in
  let e = Sym.apply g in
  let vars = List.mapi (fun k _ -> Printf.sprintf "i%d" k) dims in
  match linearize ~vars e with
  | None -> None
  | Some (offset, coeffs) ->
    Some { offset; dims = List.map2 (fun n (_, c) -> (n, c)) dims coeffs }

let check g t =
  let dims = L.Group_by.dims g in
  if List.map fst t.dims <> dims then Error "stride table has the wrong shape"
  else begin
    let bad = ref None in
    Seq.iter
      (fun idx ->
        if !bad = None then begin
          let predicted =
            t.offset
            + List.fold_left2 (fun acc i (_, s) -> acc + (i * s)) 0 idx t.dims
          in
          let actual = L.Group_by.apply_ints g idx in
          if predicted <> actual then bad := Some (idx, predicted, actual)
        end)
      (L.Shape.indices dims);
    match !bad with
    | None -> Ok ()
    | Some (idx, predicted, actual) ->
      Error
        (Printf.sprintf "strides predict %d at [%s], layout says %d" predicted
           (String.concat ", " (List.map string_of_int idx))
           actual)
  end

let to_cute t =
  let shapes = List.map (fun (n, _) -> string_of_int n) t.dims in
  let strides = List.map (fun (_, s) -> string_of_int s) t.dims in
  let base =
    Printf.sprintf "(%s):(%s)"
      (String.concat ", " shapes)
      (String.concat ", " strides)
  in
  if t.offset = 0 then base else Printf.sprintf "%s + %d" base t.offset

let pp ppf t = Format.pp_print_string ppf (to_cute t)
