lib/symbolic/range.ml: Expr Format Lego_layout List Map Option String
