lib/symbolic/cost.mli: Expr Range
