lib/symbolic/affine.mli: Expr Format Lego_layout
