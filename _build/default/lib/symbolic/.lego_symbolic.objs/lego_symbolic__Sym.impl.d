lib/symbolic/sym.ml: Expr Lego_layout List Printf Random Range Simplify String
