lib/symbolic/range.mli: Expr Format
