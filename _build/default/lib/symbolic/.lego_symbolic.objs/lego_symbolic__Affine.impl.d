lib/symbolic/affine.ml: Expr Format Hashtbl Lego_layout List Option Printf Seq String Sym
