lib/symbolic/expr.ml: Format Int Lego_layout List Map String
