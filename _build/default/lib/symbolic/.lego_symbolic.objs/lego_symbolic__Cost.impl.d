lib/symbolic/cost.ml: Expand Expr List Simplify
