lib/symbolic/simplify.ml: Array Expr Format List Option Prover Range
