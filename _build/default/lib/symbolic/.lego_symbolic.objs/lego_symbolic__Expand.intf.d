lib/symbolic/expand.mli: Expr
