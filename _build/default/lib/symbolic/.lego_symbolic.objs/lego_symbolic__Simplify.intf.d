lib/symbolic/simplify.mli: Expr Format Range
