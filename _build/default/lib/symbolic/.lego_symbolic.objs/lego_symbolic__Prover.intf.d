lib/symbolic/prover.mli: Expr Range
