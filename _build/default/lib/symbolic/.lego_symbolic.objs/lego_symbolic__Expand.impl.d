lib/symbolic/expand.ml: Expr List
