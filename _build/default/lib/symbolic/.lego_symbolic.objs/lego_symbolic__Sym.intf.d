lib/symbolic/sym.mli: Expr Lego_layout Range
