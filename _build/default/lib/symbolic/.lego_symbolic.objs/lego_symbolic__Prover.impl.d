lib/symbolic/prover.ml: Expr Range
