(** Symbolic instantiation of the layout algebra.

    [Dom] makes {!Expr.t} an index domain, so every layout's [apply]/[inv]
    can be evaluated over symbolic indices to yield the index {e
    expressions} the paper's code generators print.  The helpers here also
    derive the range environment from the layout specification — the
    information the paper's custom SymPy traversal and Z3 queries rely
    on. *)

module Dom : Lego_layout.Domain.S with type t = Expr.t

val index_vars : ?prefix:string -> Lego_layout.Group_by.t -> Expr.t list
(** Fresh symbolic index components [i0, i1, ...] (or [prefix0, ...]) for
    each logical dimension of the layout. *)

val ranges_of :
  ?prefix:string -> Lego_layout.Group_by.t -> Range.env
(** Each logical index component ranges over [0 .. extent - 1]; this is
    the paper's "range information propagated through the layout". *)

val apply :
  ?simplify:bool ->
  ?prefix:string ->
  Lego_layout.Group_by.t ->
  Expr.t
(** [apply g] is the symbolic physical offset of the logical index
    [prefix0, ..., prefix(d-1)], simplified under {!ranges_of} unless
    [simplify:false]. *)

val apply_to :
  ?simplify:bool ->
  ?env:Range.env ->
  Lego_layout.Group_by.t ->
  Expr.t list ->
  Expr.t
(** Apply to caller-supplied symbolic components (e.g. a mix of variables
    and constants); the environment defaults to empty. *)

val inv :
  ?simplify:bool ->
  ?var:string ->
  ?extra:Range.env ->
  Lego_layout.Group_by.t ->
  Expr.t list
(** [inv g] is the symbolic logical index of physical offset [var]
    (default ["p"], ranged over [0 .. numel-1]).  [extra] adds variable
    ranges for free variables of user pieces. *)

val check_roundtrip :
  Lego_layout.Group_by.t -> samples:int -> (unit, string) result
(** Cross-validate: the simplified symbolic [apply] evaluated on [samples]
    random concrete indices must agree with the integer-domain [apply]
    (a differential test of engine + simplifier + prover). *)
