(** Affine (stride) analysis of layouts.

    Section 3.3 of the paper: CuTe/Graphene describe layouts as
    shape/stride pairs that the programmer writes by hand, while LEGO
    derives them from the tiling specification.  This module performs
    that derivation in reverse engineering form — given any layout, it
    recovers the per-dimension strides whenever the mapping is affine
    (all [RegP]-built layouts are), and reports the non-affine pieces
    (anti-diagonal, Morton, ...) as inexpressible in the stride algebra,
    which is the paper's expressiveness comparison made executable. *)

type t = {
  offset : int;
  dims : (int * int) list;  (** (extent, stride) per logical dimension *)
}

val linearize :
  vars:string list -> Expr.t -> (int * (string * int) list) option
(** [linearize ~vars e] decomposes [e] as [offset + sum coeff_v * v] when
    [e] is affine in exactly the given variables (no divisions, selects,
    or products of variables); [None] otherwise. *)

val of_layout : Lego_layout.Group_by.t -> t option
(** The shape/stride description of the layout's (simplified) [apply]
    mapping, or [None] when the layout is not affine — i.e. when it lies
    outside the CuTe/Graphene stride algebra. *)

val check : Lego_layout.Group_by.t -> t -> (unit, string) result
(** Exhaustively validate a stride description against the layout. *)

val to_cute : t -> string
(** Render in CuTe/Graphene notation, e.g. ["(6, 6):(6, 1)"] for the
    paper's equation 6 example. *)

val pp : Format.formatter -> t -> unit
