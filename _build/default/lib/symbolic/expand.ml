let rec expand (e : Expr.t) : Expr.t =
  match e with
  | Const _ | Var _ -> e
  | Mul factors ->
    let factors = List.map expand factors in
    (* Fold factors together, distributing over any sum encountered. *)
    List.fold_left
      (fun acc f ->
        let acc_terms = match (acc : Expr.t) with Add xs -> xs | e -> [ e ] in
        let f_terms = match (f : Expr.t) with Add xs -> xs | e -> [ e ] in
        Expr.sum
          (List.concat_map
             (fun a -> List.map (fun b -> Expr.mul a b) f_terms)
             acc_terms))
      Expr.one factors
  | _ -> Expr.map_children expand e
