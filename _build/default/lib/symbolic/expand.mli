(** Pre-expansion of index expressions (section 4.1 of the paper).

    Distributing products over sums before simplification can expose
    rewrite opportunities, but can also inflate the operation count (the
    paper observes the NW benchmark is faster {e without} expansion); the
    choice is left to the cost model of {!Cost}. *)

val expand : Expr.t -> Expr.t
(** Fully distribute [Mul] over [Add] (recursively, including under
    division, modulo and select nodes). *)
