(** Operation-count cost model (section 4.1 of the paper).

    The paper generates both the expanded and the unexpanded variant of an
    index expression and keeps the one with the fewest operations; this
    module provides that count and the selection. *)

type weights = {
  add : int;
  mul : int;
  div : int;
  md : int;
  select : int;
  cmp : int;
  isqrt : int;
}

val default_weights : weights
(** Uniform cost 1 for cheap ALU ops; division, modulo and square root are
    costed higher (3), mirroring GPU instruction throughput. *)

val ops : ?weights:weights -> Expr.t -> int
(** Weighted operation count ([Add]/[Mul] of [n] arguments count [n-1]
    operations; leaves are free). *)

val cheapest : ?weights:weights -> Expr.t list -> Expr.t
(** The lowest-cost expression of a non-empty list (first wins ties).
    Raises [Invalid_argument] on an empty list. *)

val best_of_expansion :
  ?weights:weights -> env:Range.env -> Expr.t -> Expr.t
(** Simplify both the original and the pre-expanded form and return the
    cheaper result — the paper's cost-model-guided choice. *)
