(* legoc: the LEGO layout compiler CLI.

   Takes a layout in the textual notation and prints its table, applies
   or inverts indices, or emits C / Triton / MLIR index code — the
   standalone-tool role the paper describes.

     dune exec bin/legoc.exe -- 'OrderBy(GenP(antidiag[3,3])).GroupBy([3,3])' --table
     dune exec bin/legoc.exe -- 'TileOrderBy(Col(8, 6)).TileBy([4,2],[2,3])' --emit-c
     dune exec bin/legoc.exe -- '...' --apply 4,2 --inv 15 *)

open Cmdliner
module L = Lego_layout

let layout_arg =
  let doc = "Layout in LEGO notation, e.g. \
             'OrderBy2(RegP([2,2],[2,1])).GroupBy2([4,4])'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LAYOUT" ~doc)

let table_flag =
  Arg.(value & flag & info [ "table" ] ~doc:"Print the logical-to-physical table.")

let apply_arg =
  let doc = "Apply the layout to a comma-separated logical index." in
  Arg.(value & opt (some string) None & info [ "apply" ] ~docv:"I,J,..." ~doc)

let inv_arg =
  let doc = "Invert a flat physical offset." in
  Arg.(value & opt (some int) None & info [ "inv" ] ~docv:"P" ~doc)

let c_flag =
  Arg.(value & flag & info [ "emit-c" ] ~doc:"Emit the C index expression.")

let triton_flag =
  Arg.(value & flag & info [ "emit-triton" ] ~doc:"Emit the Triton index expression.")

let mlir_flag =
  Arg.(value & flag & info [ "emit-mlir" ] ~doc:"Emit an MLIR index function.")

let check_flag =
  Arg.(value & flag & info [ "check" ] ~doc:"Exhaustively verify bijectivity.")

let parse_index s =
  try List.map int_of_string (String.split_on_char ',' (String.trim s))
  with Failure _ -> failwith (Printf.sprintf "bad index %S" s)

let run layout_text table apply_idx inv_p emit_c emit_triton emit_mlir check =
  match Lego_lang.Elab.layout_of_string layout_text with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok g ->
    let nothing_requested =
      (not table) && apply_idx = None && inv_p = None && (not emit_c)
      && (not emit_triton) && (not emit_mlir) && not check
    in
    Printf.printf "layout: %s\n" (Format.asprintf "%a" L.Group_by.pp g);
    Printf.printf "logical shape: %s, %d elements\n"
      (Format.asprintf "%a" L.Shape.pp (L.Group_by.dims g))
      (L.Group_by.numel g);
    if table || nothing_requested then begin
      print_endline "table (row-major logical order):";
      Seq.iter
        (fun idx ->
          Printf.printf "  [%s] -> %d\n"
            (String.concat ", " (List.map string_of_int idx))
            (L.Group_by.apply_ints g idx))
        (Seq.take (min 64 (L.Group_by.numel g))
           (L.Shape.indices (L.Group_by.dims g)));
      if L.Group_by.numel g > 64 then print_endline "  ... (first 64 shown)"
    end;
    Option.iter
      (fun s ->
        let idx = parse_index s in
        Printf.printf "apply [%s] = %d\n" s (L.Group_by.apply_ints g idx))
      apply_idx;
    Option.iter
      (fun p ->
        Printf.printf "inv %d = [%s]\n" p
          (String.concat ", "
             (List.map string_of_int (L.Group_by.inv_ints g p))))
      inv_p;
    let offset = lazy (Lego_symbolic.Sym.apply g) in
    if emit_c then
      Printf.printf "C: %s\n" (Lego_codegen.C_printer.expr (Lazy.force offset));
    if emit_triton then
      Printf.printf "Triton: %s\n"
        (Lego_codegen.Triton_printer.expr (Lazy.force offset));
    if emit_mlir then
      print_string (Lego_codegen.Mlir_gen.layout_apply_func ~name:"apply" g);
    if check then begin
      match L.Check.layout g with
      | Ok () -> print_endline "bijection: verified"
      | Error e ->
        Printf.printf "bijection: FAILED (%s)\n" e
    end;
    0

let cmd =
  let doc = "derive index mappings from LEGO layout expressions" in
  let info = Cmd.info "legoc" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      const run $ layout_arg $ table_flag $ apply_arg $ inv_arg $ c_flag
      $ triton_flag $ mlir_flag $ check_flag)

let () = exit (Cmd.eval' cmd)
