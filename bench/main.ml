(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 6) on the simulated A100.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- fig12a  -- one experiment
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks

   --json FILE writes every recorded (experiment, metric, value) triple
   as JSON for machine consumption (see README).

   Absolute numbers correspond to the simulator's no-cache memory system
   (see DESIGN.md); the paper's claims are relative and those shapes are
   asserted by the test suite. *)

open Lego_apps
module L = Lego_layout
module S = Lego_symbolic
module X = Lego_exec.Exec

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let row fmt = Printf.printf fmt

(* ---- Execution layer --------------------------------------------------- *)

(* Figure sweeps fan independent gpusim configurations out across the
   pool: each task builds (and simulates) its own kernel run, so the
   effect-handler simulator state is domain-local by construction.
   Results are merged in submission order — rows print identically at
   any -j. *)

let jobs = ref 1
let the_pool : X.pool option ref = ref None

let pmap xs f =
  match !the_pool with
  | Some pool -> Array.to_list (X.map ~chunk:1 ~pool (Array.of_list xs) f)
  | None -> List.map f xs

(* ---- Machine-readable results (--json FILE) ---------------------------- *)

(* Experiments push (experiment, metric, value) triples here; the main
   driver writes them out at exit so future runs can track a performance
   trajectory (BENCH_*.json). *)

let json_file : string option ref = ref None
let json_results : (string * string * float) list ref = ref []

let record ~experiment ~metric value =
  json_results := (experiment, metric, value) :: !json_results

let write_json () =
  Option.iter
    (fun path ->
      let items = List.rev !json_results in
      let oc = open_out path in
      output_string oc "{\n  \"results\": [\n";
      let last = List.length items - 1 in
      List.iteri
        (fun i (e, m, v) ->
          Printf.fprintf oc
            "    {\"experiment\": %S, \"metric\": %S, \"value\": %.9g}%s\n" e m
            v
            (if i = last then "" else ","))
        items;
      output_string oc "  ]\n}\n";
      close_out oc;
      Printf.printf "\nwrote %d results to %s\n" (List.length items) path)
    !json_file

(* Hit/miss/eviction counters of the memoized symbolic engine (process
   lifetime; see lib/symbolic). *)
let engine_counters () =
  let i = S.Expr.intern_stats () in
  row "expr intern:  %d hits / %d misses / %d evictions (%d live nodes)\n"
    i.S.Expr.hits i.S.Expr.misses i.S.Expr.evictions (S.Expr.intern_size ());
  let rc = S.Range.cache_stats () in
  row "range cache:  %d hits / %d misses / %d evictions\n" rc.S.Range.hits
    rc.S.Range.misses rc.S.Range.evictions;
  let p = S.Prover.snapshot () in
  row "prover cache: %d hits / %d misses; %d/%d goals proved\n"
    p.S.Prover.cache_hits p.S.Prover.cache_misses p.S.Prover.proved
    p.S.Prover.queries;
  let sc = S.Simplify.cache_stats () in
  row "simplify memo: %d hits / %d misses / %d evictions\n" sc.S.Simplify.hits
    sc.S.Simplify.misses sc.S.Simplify.evictions

(* ---- Table 1: simplification rules ----------------------------------- *)

let table1 () =
  header "Table 1: div/mod simplification rules on layout-generated indices";
  let corpus = Lego_conform.Corpus.all in
  row "%-28s %6s %6s %6s %6s %6s %6s | %9s %9s | %15s\n" "layout" "r1" "r2"
    "r3" "r4" "r5" "extra" "ops-raw" "ops-simpl" "prover p/q";
  let totals = S.Simplify.stats () in
  S.Prover.reset ();
  List.iter
    (fun (name, layout) ->
      let stats = S.Simplify.stats () in
      let before = S.Prover.snapshot () in
      let process roots =
        List.map
          (fun e -> S.Simplify.simplify ~stats ~env:(S.Sym.ranges_of layout) e)
          roots
      in
      let raw_apply = S.Sym.apply ~simplify:false layout in
      let raw_inv = S.Sym.inv ~simplify:false layout in
      let simplified = process (raw_apply :: raw_inv) in
      let prover = S.Prover.(diff (snapshot ()) before) in
      let raw_ops =
        List.fold_left (fun a e -> a + S.Cost.ops e) 0 (raw_apply :: raw_inv)
      in
      let simpl_ops =
        List.fold_left (fun a e -> a + S.Cost.ops e) 0 simplified
      in
      row "%-28s %6d %6d %6d %6d %6d %6d | %9d %9d | %7d/%7d\n" name
        stats.S.Simplify.r1 stats.S.Simplify.r2 stats.S.Simplify.r3
        stats.S.Simplify.r4 stats.S.Simplify.r5 stats.S.Simplify.extra raw_ops
        simpl_ops prover.S.Prover.proved prover.S.Prover.queries;
      totals.S.Simplify.r1 <- totals.S.Simplify.r1 + stats.S.Simplify.r1;
      totals.S.Simplify.r2 <- totals.S.Simplify.r2 + stats.S.Simplify.r2;
      totals.S.Simplify.r3 <- totals.S.Simplify.r3 + stats.S.Simplify.r3;
      totals.S.Simplify.r4 <- totals.S.Simplify.r4 + stats.S.Simplify.r4;
      totals.S.Simplify.r5 <- totals.S.Simplify.r5 + stats.S.Simplify.r5;
      totals.S.Simplify.extra <- totals.S.Simplify.extra + stats.S.Simplify.extra;
      totals.S.Simplify.passes <- totals.S.Simplify.passes + stats.S.Simplify.passes;
      totals.S.Simplify.fuel_exhausted <-
        totals.S.Simplify.fuel_exhausted + stats.S.Simplify.fuel_exhausted)
    corpus;
  let prover_totals = S.Prover.snapshot () in
  row "TOTAL rule applications: %d;  prover: %d/%d side conditions proved\n"
    (S.Simplify.total totals) prover_totals.S.Prover.proved
    prover_totals.S.Prover.queries;
  row "simplify: %s\n" (Format.asprintf "%a" S.Simplify.pp_stats totals);
  engine_counters ();
  (* Wall-clock for the whole corpus, the engine's hot path end to end. *)
  let reps = 20 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    List.iter
      (fun (_, layout) ->
        let env = S.Sym.ranges_of layout in
        let raw_apply = S.Sym.apply ~simplify:false layout in
        let raw_inv = S.Sym.inv ~simplify:false layout in
        List.iter
          (fun e -> ignore (S.Simplify.simplify ~env e))
          (raw_apply :: raw_inv))
      corpus
  done;
  let t1 = Unix.gettimeofday () in
  row "corpus x%d: %.1f ms total, %.2f ms/iter\n" reps
    ((t1 -. t0) *. 1e3)
    ((t1 -. t0) *. 1e3 /. float_of_int reps)

(* ---- Figures 12a/12b: matmul ------------------------------------------ *)

let matmul_sizes = [ 256; 512; 1024; 2048; 4096; 8192 ]

let fig12_matmul ~dtype ~label () =
  header label;
  let tasks =
    List.concat_map
      (fun variant -> List.map (fun size -> (variant, size)) matmul_sizes)
      Matmul.variants
  in
  let results =
    pmap tasks (fun (variant, size) ->
        let cfg = Matmul.default_config ~dtype size in
        let lego = Matmul.run_lego cfg variant in
        let triton = Matmul.run_triton_ref cfg variant in
        let cublas = Matmul.run_cublas cfg variant in
        (lego.Matmul.gflops, triton.Matmul.gflops, cublas.Matmul.gflops))
  in
  List.iter2
    (fun (variant, size) (lego, triton, cublas) ->
      if size = List.hd matmul_sizes then begin
        row "-- %s --\n" (Matmul.variant_name variant);
        row "%8s %12s %12s %12s\n" "size" "LEGO" "Triton" "cuBLAS"
      end;
      row "%8d %12.0f %12.0f %12.0f\n" size lego triton cublas)
    tasks results

let fig12a () =
  fig12_matmul ~dtype:Lego_gpusim.Mem.F16
    ~label:"Figure 12a: FP16 matmul, GFLOP/s (4 transpose variants)" ()

let fig12b () =
  fig12_matmul ~dtype:Lego_gpusim.Mem.F8
    ~label:"Figure 12b: FP8 matmul, GFLOP/s (4 transpose variants)" ()

(* ---- Figure 12c: group GEMM ------------------------------------------- *)

let fig12c () =
  header "Figure 12c: group GEMM (8 members), GFLOP/s";
  row "%8s %14s %14s %8s\n" "size" "individual" "grouped" "ratio";
  let sizes = [ 128; 256; 512; 1024; 2048 ] in
  let results =
    pmap sizes (fun size ->
        let cfg = Group_gemm.default_config ~gemms:8 size in
        (Group_gemm.run_individual cfg, Group_gemm.run_grouped cfg))
  in
  List.iter2
    (fun size (individual, grouped) ->
      row "%8d %14.0f %14.0f %8.2f\n" size individual.Matmul.gflops
        grouped.Matmul.gflops
        (grouped.Matmul.gflops /. individual.Matmul.gflops))
    sizes results

(* ---- Figure 12d: softmax ---------------------------------------------- *)

let fig12d () =
  header "Figure 12d: fused softmax vs eager PyTorch, GB/s";
  row "%8s %10s %10s %10s %8s\n" "cols" "LEGO" "Triton" "PyTorch" "speedup";
  let cols_list = [ 256; 1024; 4096; 16384; 65536 ] in
  let results =
    pmap cols_list (fun cols ->
        let cfg = Softmax.default_config cols in
        (* The LEGO-generated and reference Triton kernels are the same
           code; both are reported, as in the paper's figure. *)
        (Softmax.run_fused cfg, Softmax.run_eager cfg))
  in
  List.iter2
    (fun cols (fused, eager) ->
      row "%8d %10.0f %10.0f %10.0f %8.2f\n" cols fused.Softmax.gbps
        fused.Softmax.gbps eager.Softmax.gbps
        (eager.Softmax.time_s /. fused.Softmax.time_s))
    cols_list results

(* ---- Figure 13: transpose --------------------------------------------- *)

let fig13 () =
  header "Figure 13: 2-D transpose, GB/s (MLIR backend vs CUDA)";
  row "%8s %12s %12s %12s %12s\n" "size" "MLIR-naive" "CUDA-naive"
    "MLIR-shared" "CUDA-shared";
  let sizes = [ 512; 1024; 2048; 4096; 8192 ] in
  let results =
    pmap sizes (fun size ->
        let cfg = Transpose.default_config size in
        (* The MLIR and CUDA paths generate the same data movement from the
           same layouts (validated in the test suite); both columns run the
           kernel, reproducing the paper's ``comparable performance''. *)
        let naive = Transpose.run_naive cfg in
        let naive' = Transpose.run_naive cfg in
        let shared = Transpose.run_shared ~smem_layout:Transpose.Swizzled cfg in
        let shared' = Transpose.run_shared ~smem_layout:Transpose.Padded cfg in
        (naive, naive', shared, shared'))
  in
  List.iter2
    (fun size (naive, naive', shared, shared') ->
      row "%8d %12.0f %12.0f %12.0f %12.0f\n" size naive.Transpose.gbps
        naive'.Transpose.gbps shared.Transpose.gbps shared'.Transpose.gbps;
      record ~experiment:"fig13"
        ~metric:(Printf.sprintf "shared_over_naive_%d" size)
        (shared.Transpose.gbps /. naive.Transpose.gbps))
    sizes results

(* ---- Figure 14: NW ----------------------------------------------------- *)

let fig14 () =
  header "Figure 14: Rodinia NW vs anti-diagonal layout";
  row "%8s %12s %12s %9s\n" "length" "rodinia(ms)" "antidiag(ms)" "speedup";
  let lengths = [ 512; 1024; 2048; 4096; 8192; 16384 ] in
  let results =
    pmap lengths (fun len ->
        let cfg = Nw.default_config len in
        (Nw.run Nw.RowMajor cfg, Nw.run Nw.AntiDiagonal cfg))
  in
  List.iter2
    (fun len (rm, ad) ->
      row "%8d %12.2f %12.2f %9.2f\n" len (rm.Nw.time_s *. 1e3)
        (ad.Nw.time_s *. 1e3)
        (rm.Nw.time_s /. ad.Nw.time_s);
      record ~experiment:"fig14"
        ~metric:(Printf.sprintf "antidiag_speedup_%d" len)
        (rm.Nw.time_s /. ad.Nw.time_s))
    lengths results

(* ---- Section 4.1 ablation: pre-expansion vs cost model ----------------- *)

let ablation () =
  header "Ablation (section 4.1): pre-expansion vs original form (op count)";
  row "%-28s %10s %10s %10s\n" "index expression" "plain" "expanded" "chosen";
  let cases =
    [
      ("NW anti-diagonal apply",
       L.Group_by.make ~chain:[ L.Order_by.make [ L.Gallery.antidiag 17 ] ]
         [ [ 17; 17 ] ]);
      ("tiled row-major apply",
       L.Sugar.tiled_view ~group:[ [ 8; 4 ]; [ 16; 32 ] ] ());
      ("tiled col-major apply",
       L.Sugar.tiled_view ~order:[ L.Sugar.col [ 128; 128 ] ]
         ~group:[ [ 8; 4 ]; [ 16; 32 ] ] ());
    ]
  in
  List.iter
    (fun (name, layout) ->
      let env = S.Sym.ranges_of layout in
      let raw = S.Sym.apply ~simplify:false layout in
      let plain = S.Simplify.simplify ~env raw in
      let expanded = S.Simplify.simplify ~env (S.Expand.expand raw) in
      let chosen = S.Cost.best_of_expansion ~env raw in
      row "%-28s %10d %10d %10d\n" name (S.Cost.ops plain)
        (S.Cost.ops expanded) (S.Cost.ops chosen))
    cases;
  row "(the cost model keeps the cheaper variant, as the paper does for NW)\n"

(* ---- Conformance: four-semantics differential check -------------------- *)

let conform () =
  header "Conformance: interpreter vs symbolic vs C vs MLIR";
  let open Lego_conform.Conform in
  (* Serial and parallel runs of the same corpus: identical reports
     (asserted by the test suite), differing only in wall clock.  Both
     points/sec figures land in BENCH_*.json so the speedup is tracked. *)
  let serial = run ~random:100 ~seed:42 ~jobs:1 () in
  let par_jobs = max 2 !jobs in
  let parallel = run ~random:100 ~seed:42 ~jobs:par_jobs () in
  row "%-24s %10d\n" "layouts" serial.layouts;
  row "%-24s %10d\n" "points" serial.points;
  row "%-24s %10d\n" "C-guard-skipped" serial.c_skipped;
  row "%-24s %10d\n" "mismatches" (List.length serial.failures);
  let pps r = float_of_int r.points /. r.seconds in
  row "%-24s %10.0f points/s\n" "throughput -j 1" (pps serial);
  row "%-24s %10.0f points/s (x%.2f)\n"
    (Printf.sprintf "throughput -j %d" par_jobs)
    (pps parallel)
    (pps parallel /. pps serial);
  record ~experiment:"conform" ~metric:"points_per_s_j1" (pps serial);
  record ~experiment:"conform"
    ~metric:(Printf.sprintf "points_per_s_j%d" par_jobs)
    (pps parallel);
  List.iter
    (fun f -> row "%s\n" (Format.asprintf "%a" pp_failure f))
    serial.failures

(* ---- Autotuner: rediscovering the paper's layouts ----------------------- *)

module T = Lego_tune

(* Runs the lib/tune search three times per slot (-j 1, -j N, and -j 1
   with the fast path off) and asserts the determinism contract
   (identical winner, identical score at any -j), the fast-path contract
   (bit-identical ranking and counters against the effect-handler
   reference, >= 4x aggregate candidates/s at -j 1), plus the paper's
   qualitative claims: a conflict-free swizzle for the matmul staging
   tile, >= 2x over the naive transpose, and the anti-diagonal family
   beating row-major for NW. *)
let tune () =
  header "Autotune: layout search against the simulator (lib/tune)";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let jn = max 2 !jobs in
  let fast_wall = ref 0.0 and slow_wall = ref 0.0 in
  List.iter
    (fun (slot : T.Slot.t) ->
      (* Tune.search builds its own pool; it must run from the main
         domain (never inside [pmap]) because pools don't nest. *)
      let search ~fastpath jobs =
        T.Tune.search
          ~options:{ T.Tune.default_options with jobs; fastpath }
          slot
      in
      let r = search ~fastpath:true 1 in
      let r' = search ~fastpath:true jn in
      (* The "before" reference: interpreted addresses in stage one, the
         effect-handler simulator in stage two — the pre-fast-path
         engine, same search, same decisions. *)
      let rs = search ~fastpath:false 1 in
      let name = slot.T.Slot.name in
      let w = r.T.Tune.winner and w' = r'.T.Tune.winner in
      row "-- %s: %s --\n" name slot.T.Slot.descr;
      row "winner %s\n" w.T.Tune.fingerprint;
      let wtime = (Option.get w.T.Tune.sim).T.Slot.time_s in
      row "%-18s %10.3f us\n" "winner" (wtime *. 1e6);
      record ~experiment:"tune" ~metric:(name ^ "_winner_us") (wtime *. 1e6);
      List.iter
        (fun (bname, (b : T.Slot.sim)) ->
          row "%-18s %10.3f us\n" bname (b.T.Slot.time_s *. 1e6);
          record ~experiment:"tune"
            ~metric:(Printf.sprintf "%s_%s_us" name bname)
            (b.T.Slot.time_s *. 1e6))
        r.T.Tune.baselines;
      row "explored %d of %d (%s); %.0f cand/s -j1, %.0f cand/s -j%d (x%.2f)\n"
        r.T.Tune.explored r.T.Tune.space_size
        (if r.T.Tune.exhaustive then "exhaustive" else "budget-truncated")
        r.T.Tune.candidates_per_s r'.T.Tune.candidates_per_s jn
        (r'.T.Tune.candidates_per_s /. r.T.Tune.candidates_per_s);
      record ~experiment:"tune" ~metric:(name ^ "_space_size")
        (float_of_int r.T.Tune.space_size);
      record ~experiment:"tune" ~metric:(name ^ "_cand_per_s_j1")
        r.T.Tune.candidates_per_s;
      record ~experiment:"tune"
        ~metric:(Printf.sprintf "%s_cand_per_s_j%d" name jn)
        r'.T.Tune.candidates_per_s;
      (* Fast path vs effect-handler reference: identical decisions and
         bit-identical simulated counters, wall-clock apart. *)
      row "effect-handler path: %.0f cand/s -j1 (fast path x%.1f)\n"
        rs.T.Tune.candidates_per_s
        (r.T.Tune.candidates_per_s /. rs.T.Tune.candidates_per_s);
      record ~experiment:"tune"
        ~metric:(name ^ "_cand_per_s_j1_effectpath")
        rs.T.Tune.candidates_per_s;
      record ~experiment:"tune"
        ~metric:(name ^ "_fastpath_speedup_j1")
        (r.T.Tune.candidates_per_s /. rs.T.Tune.candidates_per_s);
      (* F2 oracle mode (lib/f2): closed-form conflict/coalescing
         scoring over GL(n,F2) cost-equivalence classes.  Engages only
         on power-of-two slots; elsewhere it degrades to the sampled
         space and the comparison is skipped. *)
      let ro =
        T.Tune.search
          ~options:{ T.Tune.default_options with jobs = 1; oracle = true }
          slot
      in
      if ro.T.Tune.oracle_scored > 0 then begin
        let elem_bytes =
          List.fold_left
            (fun acc -> function
              | T.Predict.Shared { elem_bytes; _ } -> max acc elem_bytes
              | T.Predict.Global _ -> acc)
            1 slot.T.Slot.phases
        in
        let sp =
          T.Space.make ~classes:true ~elem_bytes ~rows:slot.T.Slot.rows
            ~cols:slot.T.Slot.cols ()
        in
        let family = List.length (T.Space.swizzle_family sp) in
        let nclasses = List.length (T.Space.swizzle_classes sp) in
        row
          "oracle path: %d/%d closed-form; %d address-level sims vs %d \
           (x%.1f fewer); %d swizzle classes cover %d (mask,shift) pairs\n"
          ro.T.Tune.oracle_scored ro.T.Tune.explored ro.T.Tune.sim_scored
          r.T.Tune.sim_scored
          (float_of_int r.T.Tune.sim_scored
          /. float_of_int (max 1 ro.T.Tune.sim_scored))
          nclasses family;
        record ~experiment:"tune" ~metric:(name ^ "_sim_scored_sampled")
          (float_of_int r.T.Tune.sim_scored);
        record ~experiment:"tune" ~metric:(name ^ "_sim_scored_f2")
          (float_of_int ro.T.Tune.sim_scored);
        record ~experiment:"tune" ~metric:(name ^ "_f2_sim_reduction")
          (float_of_int r.T.Tune.sim_scored
          /. float_of_int (max 1 ro.T.Tune.sim_scored));
        record ~experiment:"tune" ~metric:(name ^ "_f2_swizzle_family")
          (float_of_int family);
        record ~experiment:"tune" ~metric:(name ^ "_f2_swizzle_classes")
          (float_of_int nclasses);
        record ~experiment:"tune" ~metric:(name ^ "_oracle_cand_per_s_j1")
          ro.T.Tune.candidates_per_s;
        let wo = ro.T.Tune.winner in
        let wotime = (Option.get wo.T.Tune.sim).T.Slot.time_s in
        if wotime > wtime then
          fail "%s: oracle-mode winner %s is slower than sampled-mode %s" name
            wo.T.Tune.fingerprint w.T.Tune.fingerprint;
        if name = "matmul" then begin
          if not (T.Predict.conflict_free wo.T.Tune.static_score) then
            fail "matmul: oracle-mode winner is not predicted conflict-free";
          if not (T.Slot.sim_conflict_free (Option.get wo.T.Tune.sim)) then
            fail "matmul: oracle-mode winner is not conflict-free in simulation";
          if 10 * ro.T.Tune.sim_scored > r.T.Tune.sim_scored then
            fail
              "matmul: oracle path simulated %d candidates, sampled path %d \
               (< 10x reduction)"
              ro.T.Tune.sim_scored r.T.Tune.sim_scored
        end
      end;
      fast_wall := !fast_wall +. r.T.Tune.static_seconds +. r.T.Tune.sim_seconds;
      slow_wall :=
        !slow_wall +. rs.T.Tune.static_seconds +. rs.T.Tune.sim_seconds;
      let sim_key (sc : T.Tune.scored) =
        let s = Option.get sc.T.Tune.sim in
        ( sc.T.Tune.fingerprint,
          s.T.Slot.time_s,
          s.T.Slot.s_accesses,
          s.T.Slot.s_cycles )
      in
      if
        List.map sim_key r.T.Tune.ranking
        <> List.map sim_key rs.T.Tune.ranking
      then
        fail "%s: fast-path ranking/counters differ from effect-handler path"
          name;
      (* Determinism: bit-identical winner and score at any -j. *)
      if w.T.Tune.fingerprint <> w'.T.Tune.fingerprint then
        fail "%s: winners differ across -j1/-j%d (%s vs %s)" name jn
          w.T.Tune.fingerprint w'.T.Tune.fingerprint;
      let wtime' = (Option.get w'.T.Tune.sim).T.Slot.time_s in
      if wtime <> wtime' then
        fail "%s: winner times differ across -j1/-j%d (%g vs %g)" name jn
          wtime wtime';
      (match T.Tune.conform_ok r with
      | Some false -> fail "%s: winner failed conformance" name
      | _ -> ());
      let baseline bname = List.assoc bname r.T.Tune.baselines in
      (match name with
      | "matmul" ->
        if not (T.Predict.conflict_free w.T.Tune.static_score) then
          fail "matmul: winner is not predicted conflict-free";
        if not (T.Slot.sim_conflict_free (Option.get w.T.Tune.sim)) then
          fail "matmul: winner is not conflict-free in simulation";
        if wtime >= (baseline "row-major").T.Slot.time_s then
          fail "matmul: winner does not beat row-major"
      | "transpose" ->
        let naive = (baseline "naive").T.Slot.time_s in
        let speedup = naive /. wtime in
        row "transpose speedup over naive: %.2fx\n" speedup;
        record ~experiment:"tune" ~metric:"transpose_speedup_over_naive"
          speedup;
        (* The L2 sector model credits naive's uncoalesced column writes
           with cross-warp sector reuse, so the modelled gap over naive
           narrows from >2x (pre-L2) to ~1.5x; the ordering is what the
           paper claims, the margin threshold just tracks the model. *)
        if speedup < 1.4 then
          fail "transpose: winner only %.2fx over naive (< 1.4x)" speedup
      | "nw" ->
        (* The hand-written baselines use their own (cheaper) address
           code, so the figure-14 claim is asserted within the ranking,
           where every candidate pays the same capped address cost. *)
        if wtime >= (baseline "row-major").T.Slot.time_s then
          fail "nw: winner does not beat the row-major baseline";
        let ranked sub =
          List.find_opt
            (fun (sc : T.Tune.scored) ->
              let fp = sc.T.Tune.fingerprint in
              let n = String.length sub in
              let rec has i =
                i + n <= String.length fp
                && (String.sub fp i n = sub || has (i + 1))
              in
              has 0)
            r.T.Tune.ranking
        in
        (match (ranked "antidiag", ranked "RegP([17, 17], [1, 2])") with
        | Some ad, Some rm ->
          let t (sc : T.Tune.scored) = (Option.get sc.T.Tune.sim).T.Slot.time_s in
          record ~experiment:"tune" ~metric:"nw_antidiag_over_row_major"
            (t rm /. t ad);
          if t ad >= t rm then
            fail "nw: anti-diagonal candidate does not beat row-major"
        | _ -> fail "nw: ranking is missing the antidiag or row-major candidate")
      | _ -> ());
      row "\n")
    (T.Slot.all ());
  (* Mega-space scale mode: the full product space (three-level tilings
     x vectorization x the whole masked-swizzle grid) streamed through
     the successive-halving funnel with O(top-K) ranking memory.  The
     per-candidate throughput floor tracks the F2 closed-form rate — the
     funnel's static pass must stay at least that cheap per candidate
     even though this space is ~100x larger. *)
  let rscale =
    T.Tune.search
      ~options:
        {
          T.Tune.default_options with
          scale = true;
          budget = 250_000;
          jobs = 1;
          conform = false;
        }
      (T.Slot.matmul_smem ())
  in
  row
    "matmul --scale: %d of %d candidates (%s); funnel %d -> %d sampled -> %d \
     simulated; %.0f cand/s -j1\n"
    rscale.T.Tune.explored rscale.T.Tune.space_size
    (if rscale.T.Tune.exhaustive then "exhaustive" else "budget-truncated")
    rscale.T.Tune.explored rscale.T.Tune.sampled_scored
    (List.length rscale.T.Tune.ranking)
    rscale.T.Tune.candidates_per_s;
  record ~experiment:"tune" ~metric:"matmul_scale_space_size"
    (float_of_int rscale.T.Tune.space_size);
  record ~experiment:"tune" ~metric:"matmul_cand_per_s_scaled"
    rscale.T.Tune.candidates_per_s;
  if rscale.T.Tune.space_size < 100_000 then
    fail "matmul --scale: space only %d candidates (< 1e5)"
      rscale.T.Tune.space_size;
  if rscale.T.Tune.candidates_per_s < 2000.0 then
    fail "matmul --scale: only %.0f cand/s (< 2000)"
      rscale.T.Tune.candidates_per_s;
  if
    not
      (T.Slot.sim_conflict_free (Option.get rscale.T.Tune.winner.T.Tune.sim))
  then fail "matmul --scale: winner is not conflict-free in simulation";
  (* Aggregate over the three slots: same candidate set both ways, so
     the candidates/s ratio is the wall-clock ratio. *)
  let overall = if !fast_wall > 0.0 then !slow_wall /. !fast_wall else 0.0 in
  row "fast path aggregate speedup at -j1: %.1fx\n" overall;
  record ~experiment:"tune" ~metric:"fastpath_speedup_overall_j1" overall;
  (* The floor was 10x under the beam search, whose explored set was
     dominated by swizzle children — the candidates where the
     interpreter is slowest.  The streamed funnel scores a broader
     tiling-heavy prefix (cheap for the interpreter too), compressing
     the aggregate to ~7x; per-candidate fast-path cost is unchanged. *)
  if overall < 4.0 then
    fail "fast path only %.1fx over the effect-handler path (< 4x)" overall;
  match !failures with
  | [] -> row "all tuning assertions hold\n"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) (List.rev fs);
    exit 1

(* ---- Compile service: req/s, hit rates, latency ------------------------- *)

module Sv = Lego_serve

(* Drives a real daemon (spawned domain, Unix socket, framed batches)
   with a seeded adversarial request mix — skewed layout popularity,
   in-batch duplicates, malformed layouts, unknown devices — twice: a
   cold pass against an empty store and a warm pass repeating the
   identical mix.  Reports sustained req/s, per-batch p50/p99 latency,
   compile hit rates for both passes, and the cold-vs-warm latency of a
   tune request (the warm one is answered from the store with zero
   simulator work — asserted >= 10x faster). *)
let serve_bench () =
  header "Compile service: sustained req/s, hit rates, latency (lib/serve)";
  let dir = Filename.temp_dir "lego-bench-serve" "" in
  let socket = Filename.concat dir "legoc.sock" in
  let db = Filename.concat dir "store.db" in
  let sjobs = max 2 !jobs in
  (* The server owns its Exec pool, so the whole server lives in the
     spawned domain; this domain plays a real client over the socket. *)
  let server =
    Domain.spawn (fun () ->
        let t = Sv.Server.create ~db ~jobs:sjobs () in
        Fun.protect
          ~finally:(fun () -> Sv.Server.shutdown t)
          (fun () -> Sv.Server.serve t ~socket))
  in
  let c =
    match Sv.Client.connect ~socket () with
    | Ok c -> c
    | Error e ->
      Printf.eprintf "serve bench: %s\n" e;
      exit 1
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* A gallery of distinct layouts: tiled column-major views over a grid
     of tile shapes, plus the anti-diagonal family. *)
  let layouts =
    Array.of_list
      (List.concat_map
         (fun (a, b) ->
           List.map
             (fun (c, d) ->
               Printf.sprintf "TileOrderBy(Col(%d, %d)).TileBy([%d,%d],[%d,%d])"
                 (a * b) (c * d) a b c d)
             [ (2, 3); (3, 2); (2, 2); (4, 2) ])
         [ (2, 2); (4, 2); (2, 4); (8, 2); (4, 4) ]
      @ List.map
          (fun n ->
            Printf.sprintf "OrderBy(GenP(antidiag[%d,%d])).GroupBy([%d,%d])" n
              n n n)
          [ 3; 4; 5; 6 ])
  in
  (* Zipf-ish popularity: weight 1/(rank+1) — a few hot layouts, a long
     cold tail, plenty of duplicates inside and across batches. *)
  let rng = Random.State.make [| 0xC0FFEE |] in
  let zipf_total =
    Array.fold_left ( +. ) 0.0
      (Array.init (Array.length layouts) (fun r -> 1.0 /. float_of_int (r + 1)))
  in
  let draw_layout () =
    let u = Random.State.float rng zipf_total in
    let rec go r acc =
      let acc = acc +. (1.0 /. float_of_int (r + 1)) in
      if u < acc || r = Array.length layouts - 1 then layouts.(r)
      else go (r + 1) acc
    in
    go 0 0.0
  in
  let compile ?(device = "a100") layout =
    Sv.Json.Obj
      [
        ("op", Sv.Json.Str "compile");
        ("layout", Sv.Json.Str layout);
        ("emit", Sv.Json.List [ Sv.Json.Str "c" ]);
        ("device", Sv.Json.Str device);
      ]
  in
  let mk_request () =
    let u = Random.State.float rng 1.0 in
    if u < 0.05 then
      Sv.Json.Obj
        [
          ("op", Sv.Json.Str "fingerprint");
          ("layout", Sv.Json.Str (draw_layout ()));
        ]
    else if u < 0.08 then compile "Tile((("  (* parse error *)
    else if u < 0.10 then compile ~device:"volta" (draw_layout ())
      (* unknown device *)
    else compile (draw_layout ())
  in
  let n_batches = 40 and batch_size = 16 in
  (* One fixed script, replayed for the warm pass: identical requests,
     this time all answerable from the store. *)
  let script =
    Array.init n_batches (fun _ ->
        Sv.Json.List (List.init batch_size (fun _ -> mk_request ())))
  in
  let stats () =
    match Sv.Client.batch c [ Sv.Protocol.Stats ] with
    | Ok [ r ] -> r
    | Ok _ | Error _ ->
      fail "stats round-trip failed";
      Sv.Json.Null
  in
  let stat name j = Option.value ~default:0 (Sv.Json.mem_int name j) in
  let run_pass label =
    let before = stats () in
    let times =
      Array.map
        (fun b ->
          let t0 = Unix.gettimeofday () in
          (match Sv.Client.rpc c b with
          | Ok (Sv.Json.List rs) ->
            if List.length rs <> batch_size then
              fail "%s: response batch length mismatch" label
          | Ok _ -> fail "%s: non-array response" label
          | Error e -> fail "%s: %s" label e);
          Unix.gettimeofday () -. t0)
        script
    in
    let after = stats () in
    let hits = stat "compile_hits" after - stat "compile_hits" before in
    let misses = stat "compile_misses" after - stat "compile_misses" before in
    let wall = Array.fold_left ( +. ) 0.0 times in
    let sorted = Array.copy times in
    Array.sort compare sorted;
    let pct p =
      let n = Array.length sorted in
      sorted.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)))
    in
    let reqs = n_batches * batch_size in
    let rps = float_of_int reqs /. wall in
    let hit_rate =
      if hits + misses = 0 then 0.0
      else float_of_int hits /. float_of_int (hits + misses)
    in
    row
      "%-6s %6d reqs in %6.1f ms: %8.0f req/s; batch p50 %6.3f ms, p99 %6.3f \
       ms; compile hits %d / misses %d (%.2f)\n"
      label reqs (wall *. 1e3) rps
      (pct 50.0 *. 1e3)
      (pct 99.0 *. 1e3)
      hits misses hit_rate;
    record ~experiment:"serve" ~metric:("reqs_per_s_" ^ label) rps;
    record ~experiment:"serve"
      ~metric:("batch_p50_ms_" ^ label)
      (pct 50.0 *. 1e3);
    record ~experiment:"serve"
      ~metric:("batch_p99_ms_" ^ label)
      (pct 99.0 *. 1e3);
    record ~experiment:"serve" ~metric:("hit_rate_" ^ label) hit_rate;
    hit_rate
  in
  let cold_rate = run_pass "cold" in
  let warm_rate = run_pass "warm" in
  (* The mix repeats hot layouts, so even the cold pass hits sometimes;
     the warm pass must hit on every well-formed compile. *)
  if warm_rate < 1.0 then fail "warm pass hit rate %.2f < 1.0" warm_rate;
  if cold_rate >= warm_rate then
    fail "cold hit rate %.2f not below warm %.2f" cold_rate warm_rate;
  (* Tune: one cold search, then the identical request answered from
     the store — the >= 10x warm-path contract, measured end to end. *)
  let tune_req =
    Sv.Protocol.Tune
      {
        Sv.Protocol.slot = "matmul";
        device = "a100";
        budget = Some 48;
        top = Some 3;
        seed = 0;
        oracle = false;
        conform = false;
      }
  in
  let timed_tune label =
    let t0 = Unix.gettimeofday () in
    match Sv.Client.batch c [ tune_req ] with
    | Ok [ r ] when Sv.Json.mem_bool "ok" r = Some true ->
      let dt = Unix.gettimeofday () -. t0 in
      (dt, Sv.Json.mem_bool "cached" r)
    | _ ->
      fail "%s tune round-trip failed" label;
      (0.0, None)
  in
  let tune_cold, cached_cold = timed_tune "cold" in
  let tune_warm, cached_warm = timed_tune "warm" in
  if cached_cold <> Some false then fail "cold tune unexpectedly cached";
  if cached_warm <> Some true then fail "warm tune not served from the store";
  let speedup = if tune_warm > 0.0 then tune_cold /. tune_warm else 0.0 in
  row "tune:  cold %8.2f ms -> warm %8.3f ms (x%.0f, store-answered)\n"
    (tune_cold *. 1e3) (tune_warm *. 1e3) speedup;
  record ~experiment:"serve" ~metric:"tune_cold_ms" (tune_cold *. 1e3);
  record ~experiment:"serve" ~metric:"tune_warm_ms" (tune_warm *. 1e3);
  record ~experiment:"serve" ~metric:"tune_warm_speedup" speedup;
  if speedup < 10.0 then
    fail "warm tune only %.1fx faster than cold (< 10x)" speedup;
  let final = stats () in
  row "server: %d requests, %d store entries, %d errors (malformed mix lines)\n"
    (stat "requests" final) (stat "store_entries" final) (stat "errors" final);
  record ~experiment:"serve" ~metric:"store_entries"
    (float_of_int (stat "store_entries" final));
  (match Sv.Client.batch c [ Sv.Protocol.Shutdown ] with
  | Ok [ r ] when Sv.Json.mem_bool "ok" r = Some true -> ()
  | _ -> fail "shutdown round-trip failed");
  Sv.Client.close c;
  Domain.join server;
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ db; socket ];
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  match !failures with
  | [] -> row "all serve assertions hold\n"
  | fs ->
    List.iter (fun f -> Printf.eprintf "FAIL: %s\n" f) (List.rev fs);
    exit 1

(* ---- Bechamel micro-benchmarks ----------------------------------------- *)

let micro () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let fig9 =
    L.Group_by.make
      ~chain:
        [
          L.Order_by.make
            [
              L.Piece.reg ~dims:[ 2; 2 ] ~sigma:(L.Sigma.of_one_based [ 2; 1 ]);
              L.Gallery.antidiag 3;
            ];
          L.Order_by.make
            [
              L.Piece.reg ~dims:[ 2; 3; 2; 3 ]
                ~sigma:(L.Sigma.of_one_based [ 1; 3; 2; 4 ]);
            ];
        ]
      [ [ 6; 6 ] ]
  in
  let tiled = L.Sugar.tiled_view ~group:[ [ 8; 4 ]; [ 16; 32 ] ] () in
  let notation =
    "OrderBy2(RegP([2,2],[2,1]), \
     GenP(antidiag[3,3])).OrderBy4(RegP([2,3,2,3],[1,3,2,4])).GroupBy2([6,6])"
  in
  let raw = Lego_symbolic.Sym.apply ~simplify:false tiled in
  let env = Lego_symbolic.Sym.ranges_of tiled in
  let tests =
    [
      Test.make ~name:"apply_ints (fig 9)"
        (Staged.stage (fun () -> L.Group_by.apply_ints fig9 [ 4; 2 ]));
      Test.make ~name:"inv_ints (fig 9)"
        (Staged.stage (fun () -> L.Group_by.inv_ints fig9 15));
      Test.make ~name:"apply_ints (tiled view)"
        (Staged.stage (fun () ->
             L.Group_by.apply_ints tiled [ 3; 2; 11; 17 ]));
      Test.make ~name:"symbolic apply + simplify"
        (Staged.stage (fun () -> Lego_symbolic.Simplify.simplify ~env raw));
      Test.make ~name:"parse + elaborate notation"
        (Staged.stage (fun () -> Lego_lang.Elab.layout_of_string notation));
    ]
  in
  let grouped = Test.make_grouped ~name:"lego" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> (name, t) :: acc
        | _ -> (name, nan) :: acc)
      results []
  in
  List.iter
    (fun (name, t) -> Printf.printf "%-44s %12.1f ns/run\n" name t)
    (List.sort compare rows);
  Printf.printf "\n-- engine counters (process lifetime) --\n";
  engine_counters ()

let experiments =
  [
    ("table1", table1);
    ("fig12a", fig12a);
    ("fig12b", fig12b);
    ("fig12c", fig12c);
    ("fig12d", fig12d);
    ("fig13", fig13);
    ("fig14", fig14);
    ("ablation", ablation);
    ("conform", conform);
    ("tune", tune);
    ("serve", serve_bench);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  (* -j / --jobs N selects the pool width; default is LEGO_JOBS or the
     recommended domain count. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse acc rest
      | _ ->
        Printf.eprintf "-j expects a positive integer, got %S\n" n;
        exit 1)
    | ("-j" | "--jobs") :: [] ->
      Printf.eprintf "-j expects an argument\n";
      exit 1
    | "--json" :: path :: rest ->
      json_file := Some path;
      parse acc rest
    | "--json" :: [] ->
      Printf.eprintf "--json expects a file path\n";
      exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  jobs := X.default_jobs ();
  let names = parse [] args in
  (* at_exit so results are flushed even when an experiment exits 1. *)
  at_exit write_json;
  if !jobs > 1 then the_pool := Some (X.create ~jobs:!jobs ());
  let shutdown () =
    match !the_pool with
    | Some pool ->
      X.shutdown pool;
      the_pool := None
    | None -> ()
  in
  Fun.protect ~finally:shutdown (fun () ->
      match names with
      | [] ->
        List.iter (fun (_, f) -> f ())
          (List.filter (fun (n, _) -> n <> "micro") experiments);
        micro ()
      | names ->
        List.iter
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> f ()
            | None ->
              Printf.eprintf "unknown experiment %S; known: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
          names)
