(* legoc: the LEGO layout compiler CLI.

   Takes a layout in the textual notation and prints its table, applies
   or inverts indices, or emits C / Triton / MLIR index code — the
   standalone-tool role the paper describes.

     dune exec bin/legoc.exe -- 'OrderBy(GenP(antidiag[3,3])).GroupBy([3,3])' --table
     dune exec bin/legoc.exe -- 'TileOrderBy(Col(8, 6)).TileBy([4,2],[2,3])' --emit-c
     dune exec bin/legoc.exe -- '...' --apply 4,2 --inv 15 *)

open Cmdliner
module L = Lego_layout

(* One-line docs, shared between each sub-command's man page and the
   top-level overview so the listing cannot drift. *)
let layout_doc = "derive index mappings from LEGO layout expressions"

let conform_doc =
  "differentially test the four layout semantics against each other"

let tune_doc = "autotune shared-memory layouts against the SIMT cost model"

let serve_doc =
  "run the persistent layout-compile service (content-addressed store, \
   warm-start cache)"

let client_doc = "send request batches to a running compile service"

let fingerprint_doc =
  "print a layout's canonical fingerprint and content-address store key"

let layout_arg =
  let doc = "Layout in LEGO notation, e.g. \
             'OrderBy2(RegP([2,2],[2,1])).GroupBy2([4,4])'." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LAYOUT" ~doc)

let table_flag =
  Arg.(value & flag & info [ "table" ] ~doc:"Print the logical-to-physical table.")

let apply_arg =
  let doc = "Apply the layout to a comma-separated logical index." in
  Arg.(value & opt (some string) None & info [ "apply" ] ~docv:"I,J,..." ~doc)

let inv_arg =
  let doc = "Invert a flat physical offset." in
  Arg.(value & opt (some int) None & info [ "inv" ] ~docv:"P" ~doc)

let c_flag =
  Arg.(value & flag & info [ "emit-c" ] ~doc:"Emit the C index expression.")

let triton_flag =
  Arg.(value & flag & info [ "emit-triton" ] ~doc:"Emit the Triton index expression.")

let mlir_flag =
  Arg.(value & flag & info [ "emit-mlir" ] ~doc:"Emit an MLIR index function.")

let check_flag =
  Arg.(value & flag & info [ "check" ] ~doc:"Exhaustively verify bijectivity.")

let jobs_arg =
  let env =
    Cmd.Env.info "LEGO_JOBS"
      ~doc:"Default worker-domain count for parallel runs."
  in
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~env ~docv:"N"
        ~doc:
          "Worker-domain count for parallel checking.  Results are \
           bit-identical for any $(docv); 0 selects the recommended \
           domain count for this machine.")

let resolve_jobs jobs =
  if jobs < 0 then failwith "--jobs must be >= 0"
  else if jobs = 0 then Lego_exec.Exec.default_jobs ()
  else jobs

let parse_index s =
  try List.map int_of_string (String.split_on_char ',' (String.trim s))
  with Failure _ -> failwith (Printf.sprintf "bad index %S" s)

let run layout_text table apply_idx inv_p emit_c emit_triton emit_mlir check
    jobs =
  match Lego_lang.Elab.layout_of_string layout_text with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    1
  | Ok g ->
    let nothing_requested =
      (not table) && apply_idx = None && inv_p = None && (not emit_c)
      && (not emit_triton) && (not emit_mlir) && not check
    in
    Printf.printf "layout: %s\n" (Format.asprintf "%a" L.Group_by.pp g);
    Printf.printf "logical shape: %s, %d elements\n"
      (Format.asprintf "%a" L.Shape.pp (L.Group_by.dims g))
      (L.Group_by.numel g);
    if table || nothing_requested then begin
      print_endline "table (row-major logical order):";
      Seq.iter
        (fun idx ->
          Printf.printf "  [%s] -> %d\n"
            (String.concat ", " (List.map string_of_int idx))
            (L.Group_by.apply_ints g idx))
        (Seq.take (min 64 (L.Group_by.numel g))
           (L.Shape.indices (L.Group_by.dims g)));
      if L.Group_by.numel g > 64 then print_endline "  ... (first 64 shown)"
    end;
    Option.iter
      (fun s ->
        let idx = parse_index s in
        Printf.printf "apply [%s] = %d\n" s (L.Group_by.apply_ints g idx))
      apply_idx;
    Option.iter
      (fun p ->
        Printf.printf "inv %d = [%s]\n" p
          (String.concat ", "
             (List.map string_of_int (L.Group_by.inv_ints g p))))
      inv_p;
    let offset = lazy (Lego_symbolic.Sym.apply g) in
    if emit_c then
      Printf.printf "C: %s\n" (Lego_codegen.C_printer.expr (Lazy.force offset));
    if emit_triton then
      Printf.printf "Triton: %s\n"
        (Lego_codegen.Triton_printer.expr (Lazy.force offset));
    if emit_mlir then
      print_string (Lego_codegen.Mlir_gen.layout_apply_func ~name:"apply" g);
    if check then begin
      match L.Check.layout ~jobs:(resolve_jobs jobs) g with
      | Ok () -> print_endline "bijection: verified"
      | Error e ->
        Printf.printf "bijection: FAILED (%s)\n" e
    end;
    0

(* ---- legoc conform: the differential conformance harness -------------- *)

let seed_arg =
  let env = Cmd.Env.info "CONFORM_SEED" ~doc:"Random-layout stream seed." in
  Arg.(
    value
    & opt int 42
    & info [ "seed" ] ~env ~docv:"SEED"
        ~doc:"Seed for the random layout stream.")

let iters_arg =
  let env = Cmd.Env.info "CONFORM_ITERS" ~doc:"Number of random layouts." in
  Arg.(
    value
    & opt int 200
    & info [ "iters" ] ~env ~docv:"N"
        ~doc:"Number of seeded random layouts to cross-check.")

let algebra_arg =
  let env =
    Cmd.Env.info "CONFORM_ALGEBRA" ~doc:"Number of random algebra terms."
  in
  Arg.(
    value
    & opt int 0
    & info [ "algebra" ] ~env ~docv:"N"
        ~doc:
          "Number of seeded random layout-algebra terms (compose / \
           complement / divide / product, side conditions discharged by \
           the prover) to cross-check.")

let max_points_arg =
  Arg.(
    value
    & opt int 2048
    & info [ "max-points" ] ~docv:"N"
        ~doc:
          "Exhaustive check threshold: layouts with at most $(docv) \
           elements are checked on every point (with a bijectivity \
           check); larger ones on $(docv) seeded samples.")

let budget_arg =
  Arg.(
    value
    & opt float 30.
    & info [ "budget" ] ~docv:"SECONDS"
        ~doc:
          "Stop generating random layouts once this much wall-clock time \
           has elapsed (already-started layouts finish).")

let skip_gallery_flag =
  Arg.(
    value
    & flag
    & info [ "skip-gallery" ] ~doc:"Skip the fixed gallery corpus.")

let require_f2_flag =
  Arg.(
    value
    & flag
    & info [ "require-f2" ]
        ~doc:
          "Exit non-zero unless the affine-F2 leg covered at least one \
           layout (guards against the bit-linear family silently \
           vanishing from the corpus).")

let break_simplify_flag =
  Arg.(
    value
    & flag
    & info [ "break-simplify" ]
        ~doc:
          "TEST ONLY: enable a deliberately wrong simplifier rule to \
           verify the harness catches and shrinks it (the run is expected \
           to fail).")

let run_conform seed iters algebra max_points budget skip_gallery require_f2
    break_simplify jobs =
  (* Flip before any pool exists: domains spawned later see the flag and
     start with empty memo caches. *)
  if break_simplify then Lego_symbolic.Simplify.set_test_only_break_rule true;
  let report =
    Lego_conform.Conform.run ~gallery:(not skip_gallery) ~random:iters
      ~algebra ~seed ~max_points ~budget_s:budget
      ~progress:(fun line -> Printf.eprintf "%s\n%!" line)
      ~jobs:(resolve_jobs jobs) ()
  in
  if break_simplify then Lego_symbolic.Simplify.set_test_only_break_rule false;
  Format.printf "%a@." Lego_conform.Conform.pp_report report;
  if require_f2 && report.Lego_conform.Conform.f2_covered = 0 then begin
    Printf.eprintf "error: --require-f2 but no layout exercised the F2 leg\n";
    1
  end
  else if report.Lego_conform.Conform.failures = [] then 0
  else 1

let conform_cmd =
  let doc = conform_doc in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Cross-checks the reference interpreter, the simplified symbolic \
         expressions, the C backend (under C's truncating division), the \
         MLIR backend, and — on the bit-linear family — the affine-F2 \
         matrix form on concrete points, over the built-in gallery \
         corpus plus a stream of seeded random layouts.  Exits non-zero \
         on any disagreement, printing a shrunk minimal layout and the \
         seed that reproduces it.";
    ]
  in
  Cmd.v
    (Cmd.info "conform" ~doc ~man)
    Term.(
      const run_conform $ seed_arg $ iters_arg $ algebra_arg $ max_points_arg
      $ budget_arg $ skip_gallery_flag $ require_f2_flag $ break_simplify_flag
      $ jobs_arg)

(* ---- legoc tune: the layout autotuner --------------------------------- *)

module T = Lego_tune

let slots_arg =
  let doc =
    "Kernel slots to tune (matmul, transpose, nw); all of them when \
     omitted."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"SLOT" ~doc)

let tune_budget_arg =
  Arg.(
    value
    & opt int T.Tune.default_options.T.Tune.budget
    & info [ "budget" ] ~docv:"N"
        ~doc:"Maximum candidates scored by the static pre-filter.")

let tune_top_arg =
  Arg.(
    value
    & opt int T.Tune.default_options.T.Tune.top
    & info [ "top"; "top-k" ] ~docv:"K"
        ~doc:
          "Size of the bounded top-K retained by the static pass and \
           run through the full simulator.")

let tune_sample_arg =
  Arg.(
    value
    & opt int T.Tune.default_options.T.Tune.sample
    & info [ "sample" ] ~docv:"W"
        ~doc:
          "Width of the sampled-simulation rung of the funnel; 0 \
           (default) selects 4*K in --scale mode and disables the rung \
           otherwise.")

let scale_flag =
  Arg.(
    value
    & flag
    & info [ "scale" ]
        ~doc:
          "Mega-space mode: cross the full tiling x vectorization x \
           swizzle product axes (~1.8e5 candidates on matmul), stream \
           them through the staged funnel with O(K) ranking memory.  \
           Unless --budget is given explicitly, raises it to 250000.")

let tune_seed_arg =
  let env =
    Cmd.Env.info "LEGO_TUNE_SEED" ~doc:"Search-space enumeration seed."
  in
  Arg.(
    value
    & opt int 0
    & info [ "seed" ] ~env ~docv:"SEED"
        ~doc:
          "Space-enumeration seed; 0 keeps the canonical candidate order.")

let expect_cf_flag =
  Arg.(
    value
    & flag
    & info
        [ "expect-conflict-free" ]
        ~doc:
          "Exit non-zero unless every slot's winner is bank-conflict-free \
           (predicted, and simulated where the kernel is full-warp).")

let no_conform_flag =
  Arg.(
    value
    & flag
    & info [ "no-conform" ]
        ~doc:"Skip the four-semantics conformance check of the winners.")

let oracle_flag =
  Arg.(
    value
    & flag
    & info [ "oracle" ]
        ~doc:
          "F2 mode: score affine-linear candidates in closed form and \
           enumerate the swizzle family by GF(2) cost-equivalence class \
           — same verdicts, far fewer address-level evaluations.")

let composed_flag =
  Arg.(
    value
    & flag
    & info [ "composed" ]
        ~doc:
          "Include the algebra-built composite candidates (masked \
           swizzles composed with logical divides of the row-major \
           space, side conditions discharged by the prover) as extra \
           search roots.")

let device_arg =
  let doc =
    Printf.sprintf
      "Device preset the cost model simulates (%s).  Part of every \
       cache/store identity: tuning under one preset never reuses \
       another's results."
      (String.concat ", " (List.map fst Lego_gpusim.Device.presets))
  in
  Arg.(value & opt string "a100" & info [ "device" ] ~docv:"PRESET" ~doc)

let run_tune slot_names device budget top sample seed jobs expect_cf no_conform
    oracle composed scale =
  let jobs = resolve_jobs jobs in
  let device_name = String.lowercase_ascii device in
  (* --scale without an explicit --budget would silently search a tiny
     prefix of the mega-space; raise the default to cover it. *)
  let budget =
    if scale && budget = T.Tune.default_options.T.Tune.budget then 250_000
    else budget
  in
  let slots =
    match Lego_gpusim.Device.find device_name with
    | None ->
      Error
        (Printf.sprintf "unknown device %S (known: %s)" device
           (String.concat ", " (List.map fst Lego_gpusim.Device.presets)))
    | Some device -> (
      match slot_names with
      | [] -> Ok (T.Slot.all ~device ())
      | names ->
        List.fold_right
          (fun n acc ->
            match (acc, T.Slot.find ~device n) with
            | Error _, _ -> acc
            | Ok _, None ->
              Error
                (Printf.sprintf "unknown slot %S (known: %s)" n
                   (String.concat ", "
                      (List.map (fun s -> s.T.Slot.name) (T.Slot.all ()))))
            | Ok ss, Some s -> Ok (s :: ss))
          names (Ok []))
  in
  match slots with
  | Error e ->
    Printf.eprintf "error: %s\n" e;
    2
  | Ok slots ->
    let options =
      {
        T.Tune.default_options with
        T.Tune.budget;
        top;
        sample;
        seed;
        jobs;
        conform = not no_conform;
        oracle;
        composed;
        scale;
      }
    in
    (* One cache for the whole invocation: re-tuned slots (repeated on
       the command line, or shared across modes) reuse static scores
       and sim results instead of recomputing. *)
    let cache = T.Cache.create () in
    let ok = ref true in
    List.iter
      (fun s ->
        let r = T.Tune.search ~options ~cache s in
        Format.printf "%a@." T.Tune.pp_result r;
        (match T.Tune.conform_ok r with
        | Some false -> ok := false
        | Some true | None -> ());
        if expect_cf then begin
          let pred_cf =
            T.Predict.conflict_free r.T.Tune.winner.T.Tune.static_score
          in
          let sim_cf =
            (not s.T.Slot.full_warps)
            ||
            match r.T.Tune.winner.T.Tune.sim with
            | Some sim -> T.Slot.sim_conflict_free sim
            | None -> false
          in
          if not (pred_cf && sim_cf) then begin
            Printf.eprintf "slot %s: winner is not conflict-free\n"
              s.T.Slot.name;
            ok := false
          end
        end)
      slots;
    if T.Cache.hits cache > 0 then
      Printf.printf "cache: %d hits / %d misses (%d entries)\n"
        (T.Cache.hits cache) (T.Cache.misses cache) (T.Cache.length cache);
    if !ok then 0 else 1

let tune_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Searches a seeded, deterministic space of LEGO layouts (sigma \
         permutations, tilings, XOR-swizzle families — with --scale, \
         the full tiling x vectorization x swizzle product space, \
         streamed lazily) for each kernel slot: a cheap static \
         bank-conflict/coalescing predictor prunes the stream into a \
         bounded top-K, a sampled-simulation rung halves the survivors, \
         the finalists run the full SIMT simulator, and the winner is \
         cross-checked by the conformance harness.  Results are \
         bit-identical for any --jobs.";
    ]
  in
  Cmd.v
    (Cmd.info "tune" ~doc:tune_doc ~man)
    Term.(
      const run_tune $ slots_arg $ device_arg $ tune_budget_arg $ tune_top_arg
      $ tune_sample_arg $ tune_seed_arg $ jobs_arg $ expect_cf_flag
      $ no_conform_flag $ oracle_flag $ composed_flag $ scale_flag)

(* ---- legoc serve / client / fingerprint: the compile service ---------- *)

module S = Lego_serve

let socket_arg =
  let doc = "Unix-domain socket path the service listens (connects) on." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let db_arg =
  let doc =
    "Path of the content-addressed store db (default: \
     ~/.cache/lego/store.db; a scratch file in --oneshot mode)."
  in
  Arg.(value & opt (some string) None & info [ "db" ] ~docv:"PATH" ~doc)

let no_db_flag =
  Arg.(
    value
    & flag
    & info [ "no-db" ]
        ~doc:"Run with a memory-only store (nothing persisted).")

let oneshot_flag =
  Arg.(
    value
    & flag
    & info [ "oneshot" ]
        ~doc:
          "Self-test mode: start the service on a scratch socket and db \
           (unless given), drive a scripted cold/warm batch mix through \
           a real client connection, assert the warm requests hit the \
           store, shut down cleanly, and exit non-zero on any mismatch.")

exception Oneshot_failure of string

let run_oneshot ~socket ~db ~no_db ~jobs =
  let dir = Filename.temp_dir "lego-serve" "" in
  let socket = Option.value ~default:(Filename.concat dir "legoc.sock") socket in
  let db =
    if no_db then None
    else Some (Option.value ~default:(Filename.concat dir "store.db") db)
  in
  (* The Exec pool must be created (lazily) by the domain that serves,
     so the whole server lives in the spawned domain; the main domain
     plays client over the real socket. *)
  let server =
    Domain.spawn (fun () ->
        let t = S.Server.create ?db ~jobs () in
        Fun.protect
          ~finally:(fun () -> S.Server.shutdown t)
          (fun () -> S.Server.serve t ~socket))
  in
  let expect b msg = if not b then raise (Oneshot_failure msg) in
  let ok r = S.Json.mem_bool "ok" r = Some true in
  let cached r = S.Json.mem_bool "cached" r in
  let l1 = "TileOrderBy(Col(8, 6)).TileBy([4,2],[2,3])" in
  let l2 = "OrderBy(GenP(antidiag[3,3])).GroupBy([3,3])" in
  let compile layout =
    S.Protocol.Compile { layout; emit = [ "c" ]; device = "a100" }
  in
  let tune =
    S.Protocol.Tune
      {
        S.Protocol.slot = "matmul";
        device = "a100";
        budget = Some 24;
        top = Some 2;
        seed = 0;
        oracle = false;
        conform = false;
      }
  in
  let script = [ compile l1; compile l2; compile l1; tune; S.Protocol.Stats ] in
  let status =
    match S.Client.connect ~socket () with
    | Error e ->
      Printf.eprintf "oneshot: cannot connect: %s\n" e;
      1
    | Ok c -> (
      let finish () =
        (match S.Client.batch c [ S.Protocol.Shutdown ] with
        | Ok [ r ] -> expect (ok r) "shutdown acknowledged"
        | Ok _ | Error _ -> raise (Oneshot_failure "shutdown round-trip"));
        S.Client.close c
      in
      try
        (match S.Client.batch c script with
        | Error e -> raise (Oneshot_failure ("cold batch: " ^ e))
        | Ok rs ->
          expect (List.length rs = List.length script) "cold batch length";
          expect (List.for_all ok rs) "cold batch all ok";
          let nth = List.nth rs in
          expect (cached (nth 0) = Some false) "cold compile is a miss";
          expect
            (cached (nth 2) = Some true)
            "duplicate compile in one batch reads as a hit";
          expect (cached (nth 3) = Some false) "cold tune is a miss";
          expect
            (S.Json.mem_int "searches" (nth 4) = Some 1)
            "one tuner invocation after the cold batch");
        (match S.Client.batch c script with
        | Error e -> raise (Oneshot_failure ("warm batch: " ^ e))
        | Ok rs ->
          expect (List.for_all ok rs) "warm batch all ok";
          expect
            (List.for_all
               (fun r -> cached r <> Some false)
               (List.filteri (fun i _ -> i < 4) rs))
            "warm batch serves every request from the store";
          expect
            (S.Json.mem_int "searches" (List.nth rs 4) = Some 1)
            "warm tune ran zero additional searches");
        finish ();
        Printf.printf
          "oneshot: OK (cold misses, warm hits, 1 tuner run, clean shutdown; \
           jobs=%d)\n"
          jobs;
        0
      with Oneshot_failure msg ->
        Printf.eprintf "oneshot: FAIL: %s\n" msg;
        (try finish () with _ -> ());
        1)
  in
  Domain.join server;
  (* Best-effort scratch cleanup. *)
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    (Option.to_list db @ [ socket ]);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  status

let run_serve socket db no_db oneshot jobs =
  let jobs = resolve_jobs jobs in
  if oneshot then run_oneshot ~socket ~db ~no_db ~jobs
  else
    match socket with
    | None ->
      Printf.eprintf "error: serve needs --socket PATH (or --oneshot)\n";
      2
    | Some socket ->
      let db =
        if no_db then None
        else Some (Option.value ~default:(S.Store.default_path ()) db)
      in
      let t = S.Server.create ?db ~jobs () in
      (match S.Server.load t with
      | S.Store.Recovered (n, why) ->
        Printf.eprintf
          "warning: store damaged (%s); recovered %d entries, truncated the \
           rest\n"
          why n
      | S.Store.Loaded n ->
        Printf.eprintf "store: %d entries (warm start)\n" n
      | S.Store.Fresh -> ());
      Printf.printf "legoc serve: listening on %s (db: %s, jobs=%d)\n%!" socket
        (match db with Some p -> p | None -> "none")
        jobs;
      S.Server.serve t ~socket;
      S.Server.shutdown t;
      0

let serve_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Keeps the compiler hot: a long-running daemon on a Unix-domain \
         socket, answering length-prefixed JSON request batches (compile, \
         tune, fingerprint, stats, shutdown).  Results are addressed by a \
         digest of their inputs in an append-only on-disk store, which \
         also warm-starts the autotuner's simulation cache across \
         restarts.  Identical batches get byte-identical response frames \
         at any --jobs.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc:serve_doc ~man)
    Term.(
      const run_serve $ socket_arg $ db_arg $ no_db_flag $ oneshot_flag
      $ jobs_arg)

let client_batch_arg =
  let doc =
    "Request batch to send: a JSON array of request objects, or a single \
     object (wrapped into a one-element batch)."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"JSON" ~doc)

let client_stats_flag =
  Arg.(value & flag & info [ "stats" ] ~doc:"Also request server counters.")

let client_shutdown_flag =
  Arg.(
    value & flag & info [ "shutdown" ] ~doc:"Also ask the server to stop.")

let run_client socket json_arg stats shutdown =
  match socket with
  | None ->
    Printf.eprintf "error: client needs --socket PATH\n";
    2
  | Some socket -> (
    let parsed =
      match json_arg with
      | None -> Ok []
      | Some s -> (
        match S.Json.of_string s with
        | Ok (S.Json.List _ as b) -> Ok [ b ]
        | Ok (S.Json.Obj _ as o) -> Ok [ S.Json.List [ o ] ]
        | Ok _ -> Error "batch must be a JSON array or object"
        | Error e -> Error e)
    in
    match parsed with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      2
    | Ok batches -> (
      let one op = S.Json.List [ S.Json.Obj [ ("op", S.Json.Str op) ] ] in
      let batches =
        batches
        @ (if stats then [ one "stats" ] else [])
        @ if shutdown then [ one "shutdown" ] else []
      in
      if batches = [] then begin
        Printf.eprintf
          "error: nothing to send (give a JSON batch, --stats or --shutdown)\n";
        2
      end
      else
        match S.Client.connect ~socket () with
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          1
        | Ok c ->
          let all_ok = ref true in
          List.iter
            (fun b ->
              match S.Client.rpc c b with
              | Error e ->
                Printf.eprintf "error: %s\n" e;
                all_ok := false
              | Ok reply ->
                print_endline (S.Json.to_string reply);
                (match reply with
                | S.Json.List rs ->
                  List.iter
                    (fun r ->
                      if S.Json.mem_bool "ok" r <> Some true then
                        all_ok := false)
                    rs
                | _ -> all_ok := false))
            batches;
          S.Client.close c;
          if !all_ok then 0 else 1))

let client_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Connects to a running $(b,legoc serve) socket, sends each batch \
         as one frame and prints each response frame as one line of \
         JSON.  Exits non-zero if any response carries \
         $(b,\"ok\":false).";
    ]
  in
  Cmd.v
    (Cmd.info "client" ~doc:client_doc ~man)
    Term.(
      const run_client $ socket_arg $ client_batch_arg $ client_stats_flag
      $ client_shutdown_flag)

let run_fingerprint layout_text device =
  let device = String.lowercase_ascii device in
  match Lego_gpusim.Device.find device with
  | None ->
    Printf.eprintf "error: unknown device %S (known: %s)\n" device
      (String.concat ", " (List.map fst Lego_gpusim.Device.presets));
    2
  | Some _ -> (
    match Lego_lang.Elab.layout_of_string layout_text with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      1
    | Ok g ->
      let fp = T.Fingerprint.of_layout g in
      Printf.printf "fingerprint: %s\n" fp;
      Printf.printf "digest: %s\n" (Digest.to_hex (Digest.string fp));
      Printf.printf "device: %s\n" device;
      Printf.printf "key: %s\n" (S.Server.compile_key ~fp ~device);
      0)

let fingerprint_cmd =
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses the layout, prints its canonical fingerprint (the stable \
         printed notation every cache is keyed by), the fingerprint's \
         MD5 digest, and the content-address under which $(b,legoc \
         serve) stores the compile artifact for the given device preset \
         — for correlating store entries and debugging cache behaviour \
         by hand.";
    ]
  in
  Cmd.v
    (Cmd.info "fingerprint" ~doc:fingerprint_doc ~man)
    Term.(const run_fingerprint $ layout_arg $ device_arg)

let layout_cmd =
  let doc = layout_doc in
  let man =
    [
      `S Manpage.s_description;
      `P
        "See also: $(b,legoc conform), the differential conformance \
         harness for the layout backends.";
    ]
  in
  Cmd.v
    (Cmd.info "legoc" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ layout_arg $ table_flag $ apply_arg $ inv_arg $ c_flag
      $ triton_flag $ mlir_flag $ check_flag $ jobs_arg)

let subcommand_cmds =
  [ conform_cmd; tune_cmd; serve_cmd; client_cmd; fingerprint_cmd ]

let subcommands =
  Cmd.group (Cmd.info "legoc" ~version:"1.0.0" ~doc:layout_doc) subcommand_cmds

(* The top-level overview: every sub-command with its one-line doc, plus
   the default layout-expression mode.  Printed (exit 0) for a bare
   `legoc`, `legoc --help`/-h, and `legoc help`. *)
let print_overview () =
  print_endline "legoc - the LEGO layout compiler (v1.0.0)";
  print_newline ();
  print_endline "Usage:";
  Printf.printf "  legoc LAYOUT [OPTION]...\n      %s\n" layout_doc;
  List.iter
    (fun (cmd, doc) ->
      Printf.printf "  legoc %s [OPTION]...\n      %s\n" (Cmd.name cmd) doc)
    [
      (conform_cmd, conform_doc);
      (tune_cmd, tune_doc);
      (serve_cmd, serve_doc);
      (client_cmd, client_doc);
      (fingerprint_cmd, fingerprint_doc);
    ];
  print_newline ();
  print_endline
    "Run `legoc <command> --help' (or `legoc LAYOUT --help') for the full \
     option list of each mode."

(* A layout expression is a positional argument, which cmdliner's command
   groups would swallow as an (unknown) sub-command name — so dispatch on
   the first word ourselves: known sub-commands go through the group,
   anything else is the classic layout CLI. *)
let () =
  let wants_overview =
    Array.length Sys.argv <= 1
    || (Array.length Sys.argv = 2
       && List.mem Sys.argv.(1) [ "--help"; "-h"; "help" ])
  in
  if wants_overview then begin
    print_overview ();
    exit 0
  end;
  let is_subcommand =
    List.mem Sys.argv.(1) (List.map Cmd.name subcommand_cmds)
  in
  exit (Cmd.eval' (if is_subcommand then subcommands else layout_cmd))
