# Tier-1 gate: the repo must build and its test suite must pass.
.PHONY: check build test conform bench clean

check: build test conform

build:
	dune build

test:
	dune runtest

# Differential conformance: interpreter vs symbolic vs C vs MLIR over the
# gallery corpus plus seeded random layouts.  Bounded by a wall-clock
# budget; override the stream with CONFORM_SEED / CONFORM_ITERS.
conform:
	dune exec bin/legoc.exe -- conform --budget 30

bench:
	dune exec bench/main.exe

clean:
	dune clean
