# Tier-1 gate: the repo must build and its test suite must pass.
.PHONY: check build test conform conform-serial f2-conform algebra-conform \
	tune-smoke tune-scale serve-smoke bench bench-json clean

check: build test conform f2-conform algebra-conform tune-smoke tune-scale \
	serve-smoke bench-json

build:
	dune build

test:
	dune runtest

# Differential conformance: interpreter vs symbolic vs C vs MLIR over the
# gallery corpus plus seeded random layouts.  Bounded by a wall-clock
# budget; override the stream with CONFORM_SEED / CONFORM_ITERS and the
# domain count with LEGO_JOBS (the report is bit-identical at any -j).
# The gate runs at -j 2 to exercise the execution layer on every check.
conform:
	dune exec bin/legoc.exe -- conform --budget 30 -j 2

# Same corpus on a single domain — the reference for determinism triage.
conform-serial:
	dune exec bin/legoc.exe -- conform --budget 30 -j 1

# The affine-F2 leg must actually engage: a short run over the gallery
# corpus (which contains the bit-linear family) that fails if no layout
# was cross-checked against its GF(2) matrix form.
f2-conform:
	dune exec bin/legoc.exe -- conform --budget 10 --iters 50 -j 2 --require-f2

# Random layout-algebra terms (compose / complement / divide / product,
# side conditions discharged by the prover) through all five conformance
# legs.  The stream is power-of-two throughout, so the F2 leg must
# engage; --require-f2 enforces that.
algebra-conform:
	dune exec bin/legoc.exe -- conform --algebra 120 --iters 0 --skip-gallery --budget 20 -j 2 --require-f2

# Autotuner smoke test: a tiny budget on two domains must still
# rediscover the conflict-free XOR swizzle for the matmul staging tile
# (and its winner must pass the four-semantics conformance check).
tune-smoke:
	dune exec bin/legoc.exe -- tune matmul --budget 48 --top 6 -j 2 --expect-conflict-free

# Mega-space smoke: --scale crosses the full product axes (three-level
# tilings x vectorization x the whole masked-swizzle grid, >= 1e5
# distinct candidates on the matmul shape).  The stream must drain
# through the successive-halving funnel under the default scale budget
# (wall-clock well under a minute, ranking memory O(top-K)) and still
# rediscover the conflict-free swizzle at -j 2.
tune-scale:
	dune exec bin/legoc.exe -- tune matmul --scale -j 2 --expect-conflict-free

# Compile-service smoke test: boots the daemon on a scratch socket and
# db, drives a scripted client through cold misses, an in-batch
# duplicate hit, one tuner run and a warm replay where everything must
# hit the store, then shuts it down cleanly.
serve-smoke:
	dune exec bin/legoc.exe -- serve --oneshot -j 2

bench:
	dune exec bench/main.exe

# Autotune + compile-service benchmarks with machine-readable output:
# refreshes BENCH_tune.json (candidates/s on the fast path vs the
# effect-handler path, plus winner timings) and BENCH_serve.json
# (daemon req/s, cold/warm hit rates, batch p50/p99, warm-tune
# speedup), enforcing each harness's assertions — the >= 10x floors
# among them.
bench-json:
	dune exec bench/main.exe -- tune -j 2 --json BENCH_tune.json
	dune exec bench/main.exe -- serve -j 2 --json BENCH_serve.json

clean:
	dune clean
