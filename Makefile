# Tier-1 gate: the repo must build and its test suite must pass.
.PHONY: check build test conform conform-serial bench clean

check: build test conform

build:
	dune build

test:
	dune runtest

# Differential conformance: interpreter vs symbolic vs C vs MLIR over the
# gallery corpus plus seeded random layouts.  Bounded by a wall-clock
# budget; override the stream with CONFORM_SEED / CONFORM_ITERS and the
# domain count with LEGO_JOBS (the report is bit-identical at any -j).
# The gate runs at -j 2 to exercise the execution layer on every check.
conform:
	dune exec bin/legoc.exe -- conform --budget 30 -j 2

# Same corpus on a single domain — the reference for determinism triage.
conform-serial:
	dune exec bin/legoc.exe -- conform --budget 30 -j 1

bench:
	dune exec bench/main.exe

clean:
	dune clean
