# Tier-1 gate: the repo must build and its test suite must pass.
.PHONY: check build test bench clean

check: build test

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
